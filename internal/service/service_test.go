package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"rfprotect/internal/core"
	"rfprotect/internal/detect"
	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
	"rfprotect/internal/pipeline"
	"rfprotect/internal/radar"
	"rfprotect/internal/scene"
)

// smokeTraj builds the human and ghost trajectories the smoke rooms use,
// anchored to the radar position exactly like the experiments do.
func smokeTraj(cx float64, n int) (human, ghost geom.Trajectory) {
	human = make(geom.Trajectory, n)
	ghost = make(geom.Trajectory, n)
	for i := range human {
		f := float64(i) / float64(n-1)
		human[i] = geom.Point{X: cx - 3 + 2*f, Y: 4.5 - 1.5*f}
		ghost[i] = geom.Point{X: cx + 0.4 + f, Y: 2.8 + 1.8*f}
	}
	return human, ghost
}

// referenceTracks runs cfg through the library path — the same assembly a
// caller of core+pipeline would write by hand — and returns the tracker's
// full-resolution dumps. The service must be bit-identical to this.
func referenceTracks(t *testing.T, cfg RoomConfig) []TrackDump {
	t.Helper()
	env, err := roomByName(cfg.Room)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := core.NewSession(core.SessionConfig{Room: env, NoMultipath: cfg.NoMultipath})
	if err != nil {
		t.Fatal(err)
	}
	sc := sess.Scene
	for _, h := range cfg.Humans {
		rate := h.Rate
		if rate == 0 {
			rate = sc.Params.FrameRate
		}
		sc.Humans = append(sc.Humans, scene.NewHuman(h.trajectory(), rate))
	}
	for _, g := range cfg.Ghosts {
		rate := g.Rate
		if rate == 0 {
			rate = sc.Params.FrameRate
		}
		if _, err := sess.Ctl.ProgramForRadar(g.trajectory(), sc.Radar, rate, g.Start); err != nil {
			t.Fatal(err)
		}
	}
	pr := radar.NewProcessor(radar.DefaultConfig())
	pools := pipeline.NewPools(sc.Params)
	stages := pipeline.FrontEndStagesPooled(pr, sc.Radar, pools)
	var trk *pipeline.TrackStage
	if cfg.DopplerWindow > 0 {
		stages = append(stages, pipeline.NewDopplerPooled(pr, cfg.DopplerWindow, 0, pools.Doppler))
		trk = pipeline.NewTrackWithVelocity(radar.TrackerConfig{}, sc.Radar)
	} else {
		trk = pipeline.NewTrack(radar.TrackerConfig{})
	}
	stages = append(stages, trk)
	src := sc.Stream(0, cfg.Frames, rand.New(rand.NewSource(cfg.Seed))).UsePool(pools.Frames)
	p := pipeline.New(src, stages...).UsePools(pools)
	if _, err := p.Run(nil); err != nil {
		t.Fatal(err)
	}
	trs := trk.Tracks()
	out := make([]TrackDump, len(trs))
	for i, tr := range trs {
		out[i] = trackDump(tr, detect.TrackScore{})
	}
	return out
}

// waitLeakFree polls until the goroutine count returns to the baseline,
// mirroring the parallel package's leak checks.
func waitLeakFree(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d live, baseline %d\n%s", n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSmokeConcurrentRoomsBitIdentical is the daemon smoke: 8 concurrent
// synthetic rooms × 64 frames through the full HTTP surface — create,
// NDJSON stream, status, tracks — each room's exported tracks compared
// bit-for-bit against the library path run by hand with the same
// configuration. Half the rooms carry a Doppler stage to cover the
// velocity-attributed variant.
func TestSmokeConcurrentRoomsBitIdentical(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := NewManager(ctx, 4)
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	const rooms, frames = 8, 64
	cx := scene.NewScene(scene.HomeRoom(), fmcw.DefaultParams()).Radar.Position.X
	human, ghost := smokeTraj(cx, frames)

	cfgs := make([]RoomConfig, rooms)
	for i := range cfgs {
		cfgs[i] = RoomConfig{
			ID:     fmt.Sprintf("smoke-%d", i),
			Seed:   100 + int64(i),
			Frames: frames,
			Humans: []TrajSpec{{Points: human}},
			Ghosts: []TrajSpec{{Points: ghost}},
		}
		if i%2 == 1 {
			cfgs[i].DopplerWindow = 8
		}
	}

	// Create all rooms and attach one NDJSON stream reader per room.
	var wg sync.WaitGroup
	finals := make([]Event, rooms)
	for i, cfg := range cfgs {
		body, _ := json.Marshal(cfg)
		resp, err := http.Post(srv.URL+"/v1/rooms", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %s: status %d", cfg.ID, resp.StatusCode)
		}
		resp.Body.Close()
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			resp, err := http.Get(srv.URL + "/v1/rooms/" + id + "/stream")
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 1<<20), 1<<20)
			for sc.Scan() {
				var ev Event
				if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
					t.Errorf("room %s: bad NDJSON line: %v", id, err)
					return
				}
				if ev.Final {
					finals[i] = ev
					return
				}
			}
			t.Errorf("room %s: stream ended without a final event", id)
		}(i, cfg.ID)
	}
	wg.Wait()

	for i, cfg := range cfgs {
		if !finals[i].Final {
			t.Fatalf("room %s: no final event", cfg.ID)
		}
		if finals[i].Error != "" {
			t.Fatalf("room %s failed: %s", cfg.ID, finals[i].Error)
		}

		// Status: all frames processed, state done.
		resp, err := http.Get(srv.URL + "/v1/rooms/" + cfg.ID)
		if err != nil {
			t.Fatal(err)
		}
		var st RoomStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.State != stateDone || st.Frames != frames {
			t.Fatalf("room %s: state %q frames %d, want done/%d", cfg.ID, st.State, st.Frames, frames)
		}

		// Tracks: bit-identical to the library path.
		resp, err = http.Get(srv.URL + "/v1/rooms/" + cfg.ID + "/tracks")
		if err != nil {
			t.Fatal(err)
		}
		var dump struct {
			Tracks []TrackDump `json:"tracks"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		want := referenceTracks(t, cfg)
		if len(dump.Tracks) != len(want) || len(want) == 0 {
			t.Fatalf("room %s: %d tracks via API, %d via library (want equal, nonzero)", cfg.ID, len(dump.Tracks), len(want))
		}
		for j := range want {
			got := dump.Tracks[j]
			if got.ID != want[j].ID || got.Confirmed != want[j].Confirmed ||
				got.HasVelocity != want[j].HasVelocity || got.RadialVelocity != want[j].RadialVelocity {
				t.Fatalf("room %s track %d: header mismatch: got %+v want %+v", cfg.ID, j, got, want[j])
			}
			if len(got.Points) != len(want[j].Points) {
				t.Fatalf("room %s track %d: %d points, want %d", cfg.ID, j, len(got.Points), len(want[j].Points))
			}
			for k := range want[j].Points {
				if got.Points[k] != want[j].Points[k] {
					t.Fatalf("room %s track %d point %d: got %+v want %+v (not bit-identical)",
						cfg.ID, j, k, got.Points[k], want[j].Points[k])
				}
			}
		}
	}

	// Metrics: per-shard queue depth and frame counters are exposed.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if _, err := fmt.Fprint(&sb, mustRead(t, resp)); err != nil {
		t.Fatal(err)
	}
	metrics := sb.String()
	for _, want := range []string{
		`rfprotect_queue_depth{shard="0"}`,
		`rfprotect_queue_depth{shard="3"}`,
		`rfprotect_frames_total{shard="0"}`,
		"rfprotect_frames_per_second",
		"rfprotect_allocs_per_frame",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}

	// Unknown room → 404.
	resp404, err := http.Get(srv.URL + "/v1/rooms/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp404.Body.Close()
	if resp404.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown room: status %d, want 404", resp404.StatusCode)
	}

	if err := m.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	srv.Close()
	waitLeakFree(t, baseline)
}

func mustRead(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestIngestDrainNoFrameLoss pins the drain guarantee: every frame whose
// Push returned nil is fully processed before Drain returns, even with a
// pusher racing the drain.
func TestIngestDrainNoFrameLoss(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := NewManager(ctx, 2)
	r, err := m.CreateRoom(RoomConfig{ID: "live", QueueDepth: 128})
	if err != nil {
		t.Fatal(err)
	}

	accepted := make(chan int, 1)
	go func() {
		n := 0
		for i := 0; ; i++ {
			f := r.pools.Frames.Get(float64(i) * 0.05)
			if err := r.Push(context.Background(), f); err != nil {
				r.pools.Frames.Put(f)
				break
			}
			n++
			if n == 200 {
				break
			}
		}
		accepted <- n
	}()

	// Let the pusher get going, then drain mid-stream.
	time.Sleep(20 * time.Millisecond)
	if err := m.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	n := <-accepted
	if n == 0 {
		t.Fatal("pusher got no frames in before the drain; test proves nothing")
	}
	if got := r.Status().Frames; got != n {
		t.Fatalf("drain dropped in-flight frames: %d accepted, %d processed", n, got)
	}
	if st := r.Status().State; st != stateDone {
		t.Fatalf("room state %q after drain, want done", st)
	}
	waitLeakFree(t, baseline)

	// Post-drain API behavior: new rooms and new frames are refused.
	if _, err := m.CreateRoom(RoomConfig{ID: "late"}); err != ErrDraining {
		t.Fatalf("create after drain: err %v, want ErrDraining", err)
	}
	f := r.pools.Frames.Get(0)
	if err := r.Push(context.Background(), f); err != ErrDraining {
		t.Fatalf("push after drain: err %v, want ErrDraining", err)
	}
	r.pools.Frames.Put(f)
}

// TestQueuePolicies exercises the full-queue paths deterministically by
// never starting a runner: the queue fills and stays full.
func TestQueuePolicies(t *testing.T) {
	sh := &shard{rooms: make(map[string]*Room)}

	// Shed policy: the queue absorbs QueueDepth frames, then fails fast.
	cfg := RoomConfig{ID: "shed", QueueDepth: 2, Shed: true}
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
	r, err := newRoom(cfg, 0, sh, newPlanCache())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := r.Push(nil, r.pools.Frames.Get(0)); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	if err := r.Push(nil, r.pools.Frames.Get(0)); err != ErrBacklogged {
		t.Fatalf("push to full shed queue: err %v, want ErrBacklogged", err)
	}
	if d := r.Status().Dropped; d != 1 {
		t.Fatalf("dropped counter %d, want 1", d)
	}
	if d := r.Status().QueueDepth; d != 2 {
		t.Fatalf("queue depth %d, want 2", d)
	}

	// Backpressure policy: a full queue blocks until ctx expires.
	cfg = RoomConfig{ID: "block", QueueDepth: 1}
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
	rb, err := newRoom(cfg, 0, sh, newPlanCache())
	if err != nil {
		t.Fatal(err)
	}
	if err := rb.Push(nil, rb.pools.Frames.Get(0)); err != nil {
		t.Fatal(err)
	}
	tctx, tcancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer tcancel()
	if err := rb.Push(tctx, rb.pools.Frames.Get(0)); err != context.DeadlineExceeded {
		t.Fatalf("blocked push: err %v, want DeadlineExceeded", err)
	}

	// Drain wakes blocked pushers and closes the intake.
	rb.beginDrain()
	if err := rb.Push(nil, rb.pools.Frames.Get(0)); err != ErrDraining {
		t.Fatalf("push after room drain: err %v, want ErrDraining", err)
	}

	// Pushing to a synthetic room is a mode error.
	rs, err := newRoom(RoomConfig{ID: "synth", Frames: 4, QueueDepth: 64}, 0, sh, newPlanCache())
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Push(nil, nil); err != ErrNotIngest {
		t.Fatalf("push to synthetic room: err %v, want ErrNotIngest", err)
	}
}

// TestCloseRoomRemoves covers the DELETE path: the room drains, its queued
// frames finish, and the table forgets it.
func TestCloseRoomRemoves(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := NewManager(ctx, 2)
	r, err := m.CreateRoom(RoomConfig{ID: "gone"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := r.Push(context.Background(), r.pools.Frames.Get(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	st, err := m.CloseRoom(context.Background(), "gone")
	if err != nil {
		t.Fatal(err)
	}
	if st.Frames != 8 || st.State != stateDone {
		t.Fatalf("closed room: %+v, want 8 frames done", st)
	}
	if _, err := m.Room("gone"); err != ErrNoRoom {
		t.Fatalf("room still listed after close: err %v", err)
	}
	if err := m.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestDuplicateRoomRejected pins the 409 path.
func TestDuplicateRoomRejected(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := NewManager(ctx, 2)
	if _, err := m.CreateRoom(RoomConfig{ID: "dup", Frames: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CreateRoom(RoomConfig{ID: "dup", Frames: 2}); err != ErrRoomExists {
		t.Fatalf("duplicate create: err %v, want ErrRoomExists", err)
	}
	if err := m.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestSpoofScoresConcurrentWithStreaming hammers the spoof-score read path
// while the room's runner is mid-capture: the emit stage advances the
// tracker and feeds the scorer under trkMu on the runner goroutine while
// several goroutines poll dumps, statuses, and the suspect count. Run under
// -race this pins the locking contract; the final dump must show the scorer
// actually observed frames.
func TestSpoofScoresConcurrentWithStreaming(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := NewManager(ctx, 2)
	cx := scene.NewScene(scene.HomeRoom(), fmcw.DefaultParams()).Radar.Position.X
	human, ghost := smokeTraj(cx, 96)
	r, err := m.CreateRoom(RoomConfig{
		ID: "spoof", Seed: 7, Frames: 96, DopplerWindow: 8,
		Humans: []TrajSpec{{Points: human}}, Ghosts: []TrajSpec{{Points: ghost}},
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-r.done:
					return
				default:
				}
				for _, d := range r.TrackDumps() {
					if math.IsNaN(d.Suspicion) || d.Suspicion < 0 {
						t.Errorf("mid-capture suspicion %v on track %d", d.Suspicion, d.ID)
						return
					}
				}
				if s := r.Status(); s.Suspects < 0 || s.Suspects > s.Tracks {
					t.Errorf("suspects %d out of range for %d tracks", s.Suspects, s.Tracks)
					return
				}
			}
		}()
	}
	<-r.done
	wg.Wait()

	dumps := r.TrackDumps()
	if len(dumps) == 0 {
		t.Fatal("capture produced no tracks")
	}
	scored := 0
	for _, d := range dumps {
		scored += d.ScoredFrames
	}
	if scored == 0 {
		t.Fatal("spoof scorer observed no range–Doppler frames")
	}
	if err := m.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestGhostProgramming covers the disclosure endpoints' backing logic: a
// running synthetic room refuses (it would race synthesis), a finished one
// accepts, and records accumulate.
func TestGhostProgramming(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := NewManager(ctx, 1)
	_, ghost := smokeTraj(3, 16)
	r, err := m.CreateRoom(RoomConfig{ID: "g", Frames: 16, Ghosts: []TrajSpec{{Points: ghost}}})
	if err != nil {
		t.Fatal(err)
	}
	<-r.done
	if n := len(r.GhostStatuses()); n != 1 {
		t.Fatalf("%d ghost records after create, want 1", n)
	}
	if _, err := r.ProgramGhost(TrajSpec{Points: ghost}); err != nil {
		t.Fatalf("program on finished room: %v", err)
	}
	if n := len(r.GhostStatuses()); n != 2 {
		t.Fatalf("%d ghost records after program, want 2", n)
	}
	if err := m.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}
