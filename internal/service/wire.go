package service

import (
	"errors"
	"fmt"

	"rfprotect/internal/detect"
	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
	"rfprotect/internal/radar"
	"rfprotect/internal/scene"
)

// Sentinel errors mapped to HTTP statuses by the API layer.
var (
	// ErrDraining rejects work submitted after a drain began (503).
	ErrDraining = errors.New("service: draining")
	// ErrBacklogged sheds a frame whose room queue is full under the
	// "shed" policy (429).
	ErrBacklogged = errors.New("service: room queue full")
	// ErrRoomExists rejects a duplicate room ID (409).
	ErrRoomExists = errors.New("service: room already exists")
	// ErrNoRoom is returned for an unknown room ID (404).
	ErrNoRoom = errors.New("service: no such room")
	// ErrNotIngest rejects frame pushes to a synthetic room (409).
	ErrNotIngest = errors.New("service: room is not in ingest mode")
	// ErrBusy rejects an operation that would race the room's running
	// capture, e.g. programming a ghost on a running synthetic room (409).
	ErrBusy = errors.New("service: room is busy; retry once it finishes")
)

// RoomConfig is the create-room request body: one tenant session to host.
// The zero value of every optional field selects the standard evaluation
// setup, mirroring core.SessionConfig.
type RoomConfig struct {
	// ID names the room; empty means the manager assigns "room-<n>".
	ID string `json:"id,omitempty"`
	// Room selects the environment: "home" (default) or "office".
	Room string `json:"room,omitempty"`
	// Seed drives all randomness in the room's capture. Two rooms with the
	// same configuration and seed produce bit-identical output.
	Seed int64 `json:"seed,omitempty"`
	// Frames > 0 runs a synthetic source of that many frames (the room
	// synthesizes its own capture and finishes). Frames == 0 selects
	// ingest mode: the room processes frames POSTed to /frames until
	// closed or drained.
	Frames int `json:"frames,omitempty"`
	// FrameRate, for synthetic rooms, paces the source at that many frames
	// per second of wall time (a live capture); 0 synthesizes as fast as
	// the pipeline drains.
	FrameRate float64 `json:"frame_rate,omitempty"`
	// QueueDepth bounds the ingest queue (default 64, ingest mode only).
	QueueDepth int `json:"queue_depth,omitempty"`
	// Shed selects the full-queue policy for ingest pushes: false (the
	// default) blocks the producer until space frees — backpressure —
	// while true drops the frame immediately with ErrBacklogged (429) —
	// load-shedding.
	Shed bool `json:"shed,omitempty"`
	// NoMultipath disables the scene's first-order wall multipath.
	NoMultipath bool `json:"no_multipath,omitempty"`
	// DopplerWindow > 0 inserts a sliding-window range–Doppler stage of
	// that window length and attaches per-track radial velocities.
	DopplerWindow int `json:"doppler_window,omitempty"`
	// Humans walk the room: each trajectory is sampled at Rate points/s.
	Humans []TrajSpec `json:"humans,omitempty"`
	// Ghosts are programmed on the room's tag (calibrated against the
	// room's radar) before the capture starts.
	Ghosts []TrajSpec `json:"ghosts,omitempty"`
}

// TrajSpec is a trajectory on the wire: world-coordinate points sampled
// uniformly at Rate points per second, starting at Start seconds.
type TrajSpec struct {
	Points []geom.Point `json:"points"`
	// Rate is the trajectory sample rate in points/s; 0 means the room's
	// radar frame rate.
	Rate float64 `json:"rate,omitempty"`
	// Start offsets the trajectory (ghost program) start time in seconds.
	Start float64 `json:"start,omitempty"`
}

func (ts TrajSpec) trajectory() geom.Trajectory {
	tr := make(geom.Trajectory, len(ts.Points))
	copy(tr, ts.Points)
	return tr
}

// roomByName maps the wire name to a scene room.
func roomByName(name string) (scene.Room, error) {
	switch name {
	case "", "home":
		return scene.HomeRoom(), nil
	case "office":
		return scene.OfficeRoom(), nil
	default:
		return scene.Room{}, fmt.Errorf("service: unknown room environment %q (want home or office)", name)
	}
}

// validate normalizes a RoomConfig and reports the first problem.
func (c *RoomConfig) validate() error {
	if _, err := roomByName(c.Room); err != nil {
		return err
	}
	if c.Frames < 0 {
		return fmt.Errorf("service: frames %d must be >= 0", c.Frames)
	}
	if c.FrameRate < 0 {
		return fmt.Errorf("service: frame_rate %v must be >= 0", c.FrameRate)
	}
	if c.QueueDepth < 0 {
		return fmt.Errorf("service: queue_depth %d must be >= 0", c.QueueDepth)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	for i, h := range c.Humans {
		if len(h.Points) < 2 {
			return fmt.Errorf("service: humans[%d] needs >= 2 trajectory points", i)
		}
	}
	for i, g := range c.Ghosts {
		if len(g.Points) < 2 {
			return fmt.Errorf("service: ghosts[%d] needs >= 2 trajectory points", i)
		}
	}
	return nil
}

// FrameSpec is one ingested radar frame on the wire: Data[k][i] is IF
// sample i on antenna k as an [re, im] pair. Its shape must match the
// room's radar parameters.
type FrameSpec struct {
	Time float64        `json:"time"`
	Data [][][2]float64 `json:"data"`
}

// toFrame validates the spec's shape against dst's and fills dst in place.
func (fs *FrameSpec) toFrame(dst *fmcw.Frame) error {
	if len(fs.Data) != len(dst.Data) {
		return fmt.Errorf("service: frame has %d antennas, room expects %d", len(fs.Data), len(dst.Data))
	}
	for k, row := range fs.Data {
		if len(row) != len(dst.Data[k]) {
			return fmt.Errorf("service: antenna %d has %d samples, room expects %d", k, len(row), len(dst.Data[k]))
		}
	}
	dst.Time = fs.Time
	for k, row := range fs.Data {
		for i, s := range row {
			dst.Data[k][i] = complex(s[0], s[1])
		}
	}
	return nil
}

// Event is one NDJSON line of a room's output stream: the tracker state
// after one frame completed every stage.
type Event struct {
	Room  string  `json:"room"`
	Frame int     `json:"frame"`
	Time  float64 `json:"time"`
	// Detections holds this frame's extracted peaks (omitted for frames
	// before the background history is seeded).
	Detections []DetectionSpec `json:"detections,omitempty"`
	// Tracks is the latest position of every confirmed track.
	Tracks []TrackSpec `json:"tracks,omitempty"`
	// Final marks the room's last event: the pipeline has finished
	// (completed, drained, or failed) and the stream will close.
	Final bool `json:"final,omitempty"`
	// Error carries the failure on a final event of a failed room.
	Error string `json:"error,omitempty"`
}

// DetectionSpec is a radar.Detection on the wire.
type DetectionSpec struct {
	Range float64 `json:"range"`
	AoA   float64 `json:"aoa"`
	Power float64 `json:"power"`
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
}

// TrackSpec is the wire snapshot of one track: its latest point, the
// Doppler radial velocity when a Doppler stage is attached, and the live
// spoof-suspicion score from the adversary suite.
type TrackSpec struct {
	ID             int     `json:"id"`
	Confirmed      bool    `json:"confirmed"`
	Points         int     `json:"points"`
	Time           float64 `json:"time"`
	X              float64 `json:"x"`
	Y              float64 `json:"y"`
	RadialVelocity float64 `json:"radial_velocity,omitempty"`
	HasVelocity    bool    `json:"has_velocity,omitempty"`
	// Suspicion is the combined spoof score in threshold units: >= 1 means
	// some detector crossed its default threshold and the track is flagged.
	Suspicion float64 `json:"suspicion,omitempty"`
	Suspect   bool    `json:"suspect,omitempty"`
}

// trackSpec snapshots a live track's latest point.
func trackSpec(tr *radar.Track, sc detect.TrackScore) TrackSpec {
	ts := TrackSpec{
		ID:             tr.ID,
		Confirmed:      tr.Confirmed,
		Points:         len(tr.Points),
		RadialVelocity: tr.RadialVelocity,
		HasVelocity:    tr.HasVelocity,
		Suspicion:      sc.Suspicion,
		Suspect:        sc.Flagged(),
	}
	if n := len(tr.Points); n > 0 {
		ts.Time = tr.Points[n-1].Time
		ts.X = tr.Points[n-1].Pos.X
		ts.Y = tr.Points[n-1].Pos.Y
	}
	return ts
}

// TrackDump is the full-resolution track export of GET /rooms/{id}/tracks.
type TrackDump struct {
	ID             int     `json:"id"`
	Confirmed      bool    `json:"confirmed"`
	RadialVelocity float64 `json:"radial_velocity,omitempty"`
	HasVelocity    bool    `json:"has_velocity,omitempty"`
	// The spoof-suspicion breakdown: the raw switching-harmonic and
	// kinematic-consistency scores, the combined suspicion in threshold
	// units, the number of range–Doppler frames that contributed harmonic
	// evidence, and the flag verdict at the default thresholds.
	SpoofHarmonic  float64      `json:"spoof_harmonic,omitempty"`
	SpoofKinematic float64      `json:"spoof_kinematic,omitempty"`
	Suspicion      float64      `json:"suspicion,omitempty"`
	ScoredFrames   int          `json:"scored_frames,omitempty"`
	Suspect        bool         `json:"suspect,omitempty"`
	Points         []TimedPoint `json:"points"`
}

// TimedPoint is one tracked position sample.
type TimedPoint struct {
	Time float64 `json:"time"`
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
}

// trackDump exports a track at full resolution.
func trackDump(tr *radar.Track, sc detect.TrackScore) TrackDump {
	d := TrackDump{
		ID:             tr.ID,
		Confirmed:      tr.Confirmed,
		RadialVelocity: tr.RadialVelocity,
		HasVelocity:    tr.HasVelocity,
		SpoofHarmonic:  sc.Harmonic,
		SpoofKinematic: sc.Kinematic,
		Suspicion:      sc.Suspicion,
		ScoredFrames:   sc.Frames,
		Suspect:        sc.Flagged(),
		Points:         make([]TimedPoint, len(tr.Points)),
	}
	for i, p := range tr.Points {
		d.Points[i] = TimedPoint{Time: p.Time, X: p.Pos.X, Y: p.Pos.Y}
	}
	return d
}

// RoomStatus is the status document of GET /rooms/{id} and the per-room
// rows of GET /rooms.
type RoomStatus struct {
	ID     string `json:"id"`
	State  string `json:"state"` // running | draining | done | failed
	Mode   string `json:"mode"`  // synthetic | ingest
	Shard  int    `json:"shard"`
	Frames int    `json:"frames"` // frames fully processed
	// QueueDepth is the current ingest backlog (ingest rooms).
	QueueDepth int `json:"queue_depth"`
	// Dropped counts frames shed by the full-queue policy.
	Dropped int64 `json:"dropped,omitempty"`
	Tracks  int   `json:"tracks"`
	// Suspects counts tracks flagged by the spoof-detection suite at the
	// default thresholds.
	Suspects int    `json:"suspect_tracks"`
	Error    string `json:"error,omitempty"`
}

// GhostStatus is one disclosure record on the wire.
type GhostStatus struct {
	Index   int     `json:"index"`
	Start   float64 `json:"start"`
	Tick    float64 `json:"tick"`
	Entries int     `json:"entries"`
}
