package service

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"rfprotect/internal/fmcw"
	"rfprotect/internal/radar"
)

// planKey identifies one compiled front-end shape: the processing
// configuration plus the frame parameters. Both are flat comparable structs,
// so the key is a plain map key.
type planKey struct {
	cfg    radar.Config
	params fmcw.Params
}

// planCache shares compiled plans across rooms — radar.FrontEndPlans for the
// processing side and fmcw.SynthPlans for the synthesis side: every room with
// the same shape reuses one plan of each kind — steering tables, windows,
// phasor-table scratch, and warmed executor free lists included — so an
// N-room daemon compiles each shape once instead of once per room.
type planCache struct {
	//rfvet:lockrank 30
	mu    sync.Mutex
	plans map[planKey]*radar.FrontEndPlan
	synth map[fmcw.Params]*fmcw.SynthPlan
}

func newPlanCache() *planCache {
	return &planCache{
		plans: make(map[planKey]*radar.FrontEndPlan),
		synth: make(map[fmcw.Params]*fmcw.SynthPlan),
	}
}

// get returns the shared plan for the shape, compiling it on first use. The
// compile runs under the cache lock — it is cheap (tables only), contended
// only at room creation, and holding the lock keeps a racing creation from
// compiling the same shape twice.
func (c *planCache) get(cfg radar.Config, p fmcw.Params) *radar.FrontEndPlan {
	key := planKey{cfg: cfg, params: p}
	c.mu.Lock()
	pl := c.plans[key]
	if pl == nil {
		pl = radar.CompileFrontEndPlan(cfg, p)
		c.plans[key] = pl
	}
	c.mu.Unlock()
	return pl
}

// getSynth is get for synthesis plans: rooms simulating one frame shape share
// one fmcw.SynthPlan (keyed by Params alone — synthesis is independent of the
// processing config), compiled under the cache lock on first use.
func (c *planCache) getSynth(p fmcw.Params) *fmcw.SynthPlan {
	c.mu.Lock()
	pl := c.synth[p]
	if pl == nil {
		pl = fmcw.CompileSynthPlan(p)
		c.synth[p] = pl
	}
	c.mu.Unlock()
	return pl
}

// shard is one slice of the room table: its own lock, its own map, its own
// counters, so room lookup and per-frame accounting never contend across
// shards no matter how many rooms the daemon hosts.
type shard struct {
	// Lock hierarchy (DESIGN.md "Lock order", enforced by rfvet's
	// lockorder analyzer): shard.mu (20) → Room.mu (40) → Room.qMu (50)
	// → Room.ghostMu (60) → Room.trkMu (70, leaf). In practice the
	// service never nests these — each is released before the next is
	// taken — but the ranks pin the only legal nesting direction if that
	// ever changes.
	//
	//rfvet:lockrank 20
	mu    sync.Mutex
	rooms map[string]*Room

	frames        atomic.Int64 // frames fully processed by this shard's rooms
	dropped       atomic.Int64 // ingest frames shed by full-queue policy
	eventsDropped atomic.Int64 // stream events shed by slow consumers
}

// Manager hosts many concurrent rooms behind a sharded table. It owns every
// runner goroutine (one per room, joined through wg) and the drain
// protocol; the HTTP layer in this package is a thin translation onto it.
type Manager struct {
	shards []*shard
	plans  *planCache

	// baseCtx parents every room's context; cancel hard-stops all rooms
	// (the drain-deadline fallback). The caller's ctx passed to NewManager
	// must be non-nil — cancel it to hard-stop the whole service.
	baseCtx context.Context
	cancel  context.CancelFunc

	wg       sync.WaitGroup
	draining atomic.Bool
	nextID   atomic.Int64

	//rfvet:lockrank 10
	scrapeMu   sync.Mutex
	lastScrape scrape
}

// NewManager returns a manager with the given shard count (<= 0 means 8)
// whose rooms all descend from ctx. ctx must be non-nil; cancelling it
// hard-stops every room, which is the abandon path — orderly shutdown is
// Drain.
func NewManager(ctx context.Context, shards int) *Manager {
	if shards <= 0 {
		shards = 8
	}
	m := &Manager{shards: make([]*shard, shards), plans: newPlanCache()}
	for i := range m.shards {
		m.shards[i] = &shard{rooms: make(map[string]*Room)}
	}
	m.baseCtx, m.cancel = context.WithCancel(ctx)
	return m
}

// Shards reports the shard count.
func (m *Manager) Shards() int { return len(m.shards) }

// shardOf maps a room ID to its shard by FNV-1a.
func (m *Manager) shardOf(id string) int {
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32() % uint32(len(m.shards)))
}

// CreateRoom validates cfg, assembles the room, registers it, and starts
// its runner. The returned room is already live.
func (m *Manager) CreateRoom(cfg RoomConfig) (*Room, error) {
	if m.draining.Load() {
		return nil, ErrDraining
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.ID == "" {
		cfg.ID = fmt.Sprintf("room-%d", m.nextID.Add(1))
	}
	si := m.shardOf(cfg.ID)
	sh := m.shards[si]
	r, err := newRoom(cfg, si, sh, m.plans)
	if err != nil {
		return nil, err
	}
	sh.mu.Lock()
	if _, ok := sh.rooms[cfg.ID]; ok {
		sh.mu.Unlock()
		return nil, ErrRoomExists
	}
	sh.rooms[cfg.ID] = r
	sh.mu.Unlock()
	// Re-check after publishing: if a drain started between the first check
	// and the insert, its room sweep may have missed this room, so withdraw
	// rather than start a runner the drain will never join.
	if m.draining.Load() {
		sh.mu.Lock()
		delete(sh.rooms, cfg.ID)
		sh.mu.Unlock()
		return nil, ErrDraining
	}
	rctx, rcancel := context.WithCancel(m.baseCtx)
	r.cancel = rcancel
	m.wg.Add(1)
	//rfvet:allow goroleak -- room runners are long-lived by design; Drain joins them all via m.wg
	go func() {
		defer m.wg.Done()
		defer rcancel()
		r.run(rctx)
	}()
	return r, nil
}

// Room looks up a live (or finished but not yet deleted) room.
func (m *Manager) Room(id string) (*Room, error) {
	sh := m.shards[m.shardOf(id)]
	sh.mu.Lock()
	r, ok := sh.rooms[id]
	sh.mu.Unlock()
	if !ok {
		return nil, ErrNoRoom
	}
	return r, nil
}

// Rooms snapshots every room's status, sorted by ID.
func (m *Manager) Rooms() []RoomStatus {
	var rooms []*Room
	for _, sh := range m.shards {
		sh.mu.Lock()
		for _, r := range sh.rooms {
			rooms = append(rooms, r)
		}
		sh.mu.Unlock()
	}
	out := make([]RoomStatus, len(rooms))
	for i, r := range rooms {
		out[i] = r.Status()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CloseRoom drains one room and, once its runner has finished, removes it
// from the table. If ctx expires first the room keeps draining in the
// background and stays listed (state "draining" / "done") until a later
// CloseRoom completes; the returned error is then ctx.Err().
func (m *Manager) CloseRoom(ctx context.Context, id string) (RoomStatus, error) {
	r, err := m.Room(id)
	if err != nil {
		return RoomStatus{}, err
	}
	r.beginDrain()
	select {
	case <-r.done:
	case <-ctxDone(ctx):
		return r.Status(), ctx.Err()
	}
	sh := m.shards[m.shardOf(id)]
	sh.mu.Lock()
	delete(sh.rooms, id)
	sh.mu.Unlock()
	return r.Status(), nil
}

// Drain is the orderly shutdown: refuse new rooms and new frames, let every
// queued and in-flight frame finish, then join all runners. If ctx expires
// first, the stragglers are hard-cancelled (their remaining frames abort
// with ctx.Err()) and Drain still joins every runner before returning
// ctx.Err() — no goroutine outlives the call either way.
func (m *Manager) Drain(ctx context.Context) error {
	m.draining.Store(true)
	for _, sh := range m.shards {
		sh.mu.Lock()
		rooms := make([]*Room, 0, len(sh.rooms))
		for _, r := range sh.rooms {
			rooms = append(rooms, r)
		}
		sh.mu.Unlock()
		for _, r := range rooms {
			r.beginDrain()
		}
	}
	done := make(chan struct{})
	//rfvet:allow goroleak -- joined on both return paths via the done receive below
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctxDone(ctx):
		m.cancel()
		<-done
		return ctx.Err()
	}
}
