// Package service hosts many concurrent RF-Protect sessions behind a
// sharded room manager with an HTTP/streaming API — the multi-tenant layer
// between the single-session library (internal/core + internal/pipeline)
// and the rfprotectd daemon.
//
// # Rooms
//
// A Room is one tenant deployment: its own core.Session (scene, tag,
// controller), its own radar.Processor, its own pipeline.Pools, and a
// pooled stage chain ending in a tracker — assembled in exactly the order a
// library caller would use, so a synthetic room's detections and tracks are
// bit-identical to the same configuration run by hand. Rooms come in two
// modes. A synthetic room (Frames > 0) synthesizes its own capture from a
// seed, optionally paced to a real-time frame rate, and finishes on its
// own. An ingest room (Frames == 0) processes frames POSTed to it through
// a bounded queue until closed or drained; the full-queue policy is per
// room — block the producer (backpressure, the default) or drop with a 429
// (load-shedding).
//
// # Manager
//
// The Manager shards the room table by FNV-1a of the room ID: each shard
// has its own lock, map, and counters, so lookups and per-frame accounting
// scale across rooms. Every room is driven by exactly one runner goroutine,
// spawned at creation and joined by Drain through one WaitGroup — the
// package never leaks a goroutine past Drain's return.
//
// # Drain
//
// Drain is the orderly shutdown behind SIGTERM: new rooms and new frames
// are refused, synthetic sources stop at the next frame boundary, ingest
// queues close, and every frame already accepted — queued or in flight —
// still completes every stage before the runner exits. Enqueue vs. close is
// serialized (non-blocking sends under a read lock against close under the
// write lock), so a Push that returned success has its frame in the buffer
// and the closed channel delivers it to the pipeline before io.EOF: a clean
// drain drops nothing. Only when the drain deadline expires are stragglers
// hard-cancelled.
//
// # Output
//
// Each processed frame is broadcast to the room's subscribers as one NDJSON
// Event (detections plus the post-frame track snapshot). Subscriber buffers
// are bounded; a slow stream consumer sheds events (counted per shard)
// rather than stalling the room. /metrics exposes rooms, summed ingest
// queue depth, and processed/dropped counters per shard, plus global
// frames/sec and allocations/frame between scrapes.
//
// DESIGN.md ("Service architecture") documents the invariants; API.md
// documents every endpoint with examples.
package service
