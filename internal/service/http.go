package service

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
)

// Handler returns the daemon's HTTP API: room lifecycle, frame ingest, the
// NDJSON output stream, track export, ghost programming, and /metrics.
// Every endpoint is documented with examples in API.md.
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", m.handleHealth)
	mux.HandleFunc("GET /metrics", m.handleMetrics)
	mux.HandleFunc("POST /v1/rooms", m.handleCreateRoom)
	mux.HandleFunc("GET /v1/rooms", m.handleListRooms)
	mux.HandleFunc("GET /v1/rooms/{id}", m.handleRoomStatus)
	mux.HandleFunc("DELETE /v1/rooms/{id}", m.handleCloseRoom)
	mux.HandleFunc("POST /v1/rooms/{id}/frames", m.handleIngest)
	mux.HandleFunc("GET /v1/rooms/{id}/stream", m.handleStream)
	mux.HandleFunc("GET /v1/rooms/{id}/tracks", m.handleTracks)
	mux.HandleFunc("POST /v1/rooms/{id}/ghosts", m.handleProgramGhost)
	mux.HandleFunc("GET /v1/rooms/{id}/ghosts", m.handleGhosts)
	return mux
}

// errorBody is the JSON error envelope of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

// writeError maps service errors onto HTTP statuses: the sentinel errors
// carry their status, anything else from request handling is the client's
// fault (400).
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrNoRoom):
		status = http.StatusNotFound
	case errors.Is(err, ErrRoomExists), errors.Is(err, ErrNotIngest), errors.Is(err, ErrBusy):
		status = http.StatusConflict
	case errors.Is(err, ErrDraining):
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrBacklogged):
		status = http.StatusTooManyRequests
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func (m *Manager) handleHealth(w http.ResponseWriter, req *http.Request) {
	state := "ok"
	if m.draining.Load() {
		state = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": state})
}

func (m *Manager) handleCreateRoom(w http.ResponseWriter, req *http.Request) {
	var cfg RoomConfig
	if err := json.NewDecoder(req.Body).Decode(&cfg); err != nil {
		writeError(w, err)
		return
	}
	r, err := m.CreateRoom(cfg)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, r.Status())
}

func (m *Manager) handleListRooms(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"rooms": m.Rooms()})
}

func (m *Manager) handleRoomStatus(w http.ResponseWriter, req *http.Request) {
	r, err := m.Room(req.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, r.Status())
}

func (m *Manager) handleCloseRoom(w http.ResponseWriter, req *http.Request) {
	st, err := m.CloseRoom(req.Context(), req.PathValue("id"))
	if errors.Is(err, ErrNoRoom) {
		writeError(w, err)
		return
	}
	if err != nil {
		// Deadline hit while draining: the room keeps draining in the
		// background; the client re-issues DELETE to reap it.
		writeJSON(w, http.StatusAccepted, st)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleIngest accepts one frame or an NDJSON batch of frames (one JSON
// FrameSpec per line / concatenated values) and pushes each through the
// room's bounded queue, honoring its backpressure/shed policy.
func (m *Manager) handleIngest(w http.ResponseWriter, req *http.Request) {
	r, err := m.Room(req.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	if r.Mode() != "ingest" {
		writeError(w, ErrNotIngest)
		return
	}
	dec := json.NewDecoder(req.Body)
	ingested := 0
	for {
		var spec FrameSpec
		if err := dec.Decode(&spec); err == io.EOF {
			break
		} else if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error(), "ingested": ingested})
			return
		}
		f := r.pools.Frames.Get(spec.Time)
		if err := spec.toFrame(f); err != nil {
			r.pools.Frames.Put(f)
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error(), "ingested": ingested})
			return
		}
		if err := r.Push(req.Context(), f); err != nil {
			r.pools.Frames.Put(f)
			status := http.StatusServiceUnavailable
			if errors.Is(err, ErrBacklogged) {
				status = http.StatusTooManyRequests
			}
			writeJSON(w, status, map[string]any{"error": err.Error(), "ingested": ingested})
			return
		}
		ingested++
	}
	writeJSON(w, http.StatusOK, map[string]any{"ingested": ingested, "queue_depth": r.QueueDepth()})
}

// handleStream serves the room's NDJSON event stream: one Event per
// processed frame as long as the client keeps up (a slow client drops
// events rather than stalling the room), terminated by one Final event once
// the room finishes.
func (m *Manager) handleStream(w http.ResponseWriter, req *http.Request) {
	r, err := m.Room(req.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	sub := r.Subscribe(64)
	defer r.Unsubscribe(sub)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	flush := func() {
		if fl != nil {
			fl.Flush()
		}
	}
	flush()
	ctx := req.Context()
	for {
		select {
		case ev, ok := <-sub.ch:
			if !ok {
				// Room finished: the terminal snapshot is stable, emit it
				// as the stream's last line.
				_ = enc.Encode(r.FinalEvent())
				flush()
				return
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			flush()
		case <-ctx.Done():
			return
		}
	}
}

func (m *Manager) handleTracks(w http.ResponseWriter, req *http.Request) {
	r, err := m.Room(req.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"room": r.ID, "tracks": r.TrackDumps()})
}

func (m *Manager) handleProgramGhost(w http.ResponseWriter, req *http.Request) {
	r, err := m.Room(req.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	var spec TrajSpec
	if err := json.NewDecoder(req.Body).Decode(&spec); err != nil {
		writeError(w, err)
		return
	}
	if len(spec.Points) < 2 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "service: ghost needs >= 2 trajectory points"})
		return
	}
	rec, err := r.ProgramGhost(spec)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, GhostStatus{
		Index:   len(r.GhostStatuses()) - 1,
		Start:   rec.Start,
		Tick:    rec.Tick,
		Entries: len(rec.Entries),
	})
}

func (m *Manager) handleGhosts(w http.ResponseWriter, req *http.Request) {
	r, err := m.Room(req.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"room": r.ID, "ghosts": r.GhostStatuses()})
}
