package service

import (
	"fmt"
	"net/http"
	"runtime"
	"time"
)

// scrape is one /metrics observation point: the rate metrics are deltas
// between successive scrapes, so the first scrape reports 0 rates.
type scrape struct {
	when    time.Time
	frames  int64
	mallocs uint64
}

// handleMetrics serves the daemon's metrics in Prometheus text exposition
// format (hand-rolled — the module stays dependency-free): per shard, the
// live room count, summed ingest queue depth, processed-frame and dropped
// counters; globally, frames/sec and heap allocations per frame since the
// previous scrape.
//
//rfvet:allow wallclock -- frames/sec is a rate over real time between scrapes; determinism is irrelevant to telemetry
func (m *Manager) handleMetrics(w http.ResponseWriter, req *http.Request) {
	var totalFrames int64
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	fmt.Fprintf(w, "# HELP rfprotect_rooms Live rooms per shard.\n# TYPE rfprotect_rooms gauge\n")
	type shardRow struct {
		rooms, depth, suspects int
	}
	rows := make([]shardRow, len(m.shards))
	for i, sh := range m.shards {
		sh.mu.Lock()
		rows[i].rooms = len(sh.rooms)
		for _, r := range sh.rooms {
			rows[i].depth += r.QueueDepth()
			rows[i].suspects += r.SuspectTracks()
		}
		sh.mu.Unlock()
	}
	for i, row := range rows {
		fmt.Fprintf(w, "rfprotect_rooms{shard=\"%d\"} %d\n", i, row.rooms)
	}
	fmt.Fprintf(w, "# HELP rfprotect_queue_depth Buffered ingest frames per shard.\n# TYPE rfprotect_queue_depth gauge\n")
	for i, row := range rows {
		fmt.Fprintf(w, "rfprotect_queue_depth{shard=\"%d\"} %d\n", i, row.depth)
	}
	fmt.Fprintf(w, "# HELP rfprotect_suspect_tracks Tracks flagged by the spoof-detection suite, per shard.\n# TYPE rfprotect_suspect_tracks gauge\n")
	for i, row := range rows {
		fmt.Fprintf(w, "rfprotect_suspect_tracks{shard=\"%d\"} %d\n", i, row.suspects)
	}
	fmt.Fprintf(w, "# HELP rfprotect_frames_total Frames fully processed per shard.\n# TYPE rfprotect_frames_total counter\n")
	for i, sh := range m.shards {
		n := sh.frames.Load()
		totalFrames += n
		fmt.Fprintf(w, "rfprotect_frames_total{shard=\"%d\"} %d\n", i, n)
	}
	fmt.Fprintf(w, "# HELP rfprotect_frames_dropped_total Ingest frames shed by the full-queue policy, per shard.\n# TYPE rfprotect_frames_dropped_total counter\n")
	for i, sh := range m.shards {
		fmt.Fprintf(w, "rfprotect_frames_dropped_total{shard=\"%d\"} %d\n", i, sh.dropped.Load())
	}
	fmt.Fprintf(w, "# HELP rfprotect_events_dropped_total Stream events shed by slow consumers, per shard.\n# TYPE rfprotect_events_dropped_total counter\n")
	for i, sh := range m.shards {
		fmt.Fprintf(w, "rfprotect_events_dropped_total{shard=\"%d\"} %d\n", i, sh.eventsDropped.Load())
	}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	now := time.Now()
	m.scrapeMu.Lock()
	prev := m.lastScrape
	m.lastScrape = scrape{when: now, frames: totalFrames, mallocs: ms.Mallocs}
	m.scrapeMu.Unlock()

	fps, apf := 0.0, 0.0
	if !prev.when.IsZero() {
		if dt := now.Sub(prev.when).Seconds(); dt > 0 {
			fps = float64(totalFrames-prev.frames) / dt
		}
		if df := totalFrames - prev.frames; df > 0 {
			apf = float64(ms.Mallocs-prev.mallocs) / float64(df)
		}
	}
	fmt.Fprintf(w, "# HELP rfprotect_frames_per_second Frames processed per second since the previous scrape.\n# TYPE rfprotect_frames_per_second gauge\n")
	fmt.Fprintf(w, "rfprotect_frames_per_second %g\n", fps)
	fmt.Fprintf(w, "# HELP rfprotect_allocs_per_frame Heap allocations per processed frame since the previous scrape (whole process, all rooms).\n# TYPE rfprotect_allocs_per_frame gauge\n")
	fmt.Fprintf(w, "rfprotect_allocs_per_frame %g\n", apf)
	fmt.Fprintf(w, "# HELP rfprotect_goroutines Live goroutines.\n# TYPE rfprotect_goroutines gauge\n")
	fmt.Fprintf(w, "rfprotect_goroutines %d\n", runtime.NumGoroutine())
}
