package service

import (
	"context"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"

	"rfprotect/internal/core"
	"rfprotect/internal/detect"
	"rfprotect/internal/fmcw"
	"rfprotect/internal/pipeline"
	"rfprotect/internal/radar"
	"rfprotect/internal/reflector"
	"rfprotect/internal/scene"
)

// Room states, as reported by RoomStatus.State.
const (
	stateRunning  = "running"
	stateDraining = "draining"
	stateDone     = "done"
	stateFailed   = "failed"
)

// Room hosts one tenant session: a core.Session with its own buffer pools,
// processor, and pooled stage chain, driven by a single runner goroutine
// owned by the Manager. All cross-goroutine access (status, track dumps,
// ingest pushes, subscriptions) goes through the Room's own synchronization;
// the pipeline itself stays single-threaded and bit-identical to the
// library path.
type Room struct {
	ID  string
	cfg RoomConfig

	sess  *core.Session
	pools *pipeline.Pools
	pipe  *pipeline.Pipeline
	trk   *pipeline.TrackStage
	// det accumulates spoof-suspicion evidence against the room's tracks.
	// Guarded by trkMu like the tracker itself: the emit stage feeds it on
	// the runner goroutine, HTTP handlers score through it.
	det *detect.TrackScorer

	sh       *shard
	shardIdx int
	cancel   context.CancelFunc // hard-cancels the runner (set by the Manager)

	// stop ends the room's source: a synthetic source EOFs at the next
	// frame boundary, an ingest queue closes (its buffered frames still
	// drain through the pipeline). done closes when the runner has
	// finished and the final state is readable.
	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	// Ingest queue (ingest mode only). qMu serializes enqueues against the
	// drain-time close: pushes are non-blocking sends under the read lock,
	// so close(q) under the write lock can never race a send in flight —
	// every Push that returned nil has its frame in the buffer, and the
	// closed channel hands those frames to the source before io.EOF. That
	// is the no-dropped-in-flight-frames drain guarantee.
	q chan *fmcw.Frame
	//rfvet:lockrank 50
	qMu     sync.RWMutex
	qClosed bool
	space   chan struct{} // capacity 1: pulsed when the source frees a slot

	framesDone atomic.Int64
	dropped    atomic.Int64

	// trkMu guards the tracker: the emit stage mutates it on the runner
	// goroutine while status/track handlers read it from HTTP goroutines.
	// It is the leaf of the lock hierarchy — nothing is acquired under it.
	//
	//rfvet:lockrank 70
	trkMu sync.Mutex

	// ghostMu serializes the controller's disclosure log across handlers.
	//
	//rfvet:lockrank 60
	ghostMu sync.Mutex

	//rfvet:lockrank 40
	mu       sync.Mutex
	state    string
	runErr   error
	lastTime float64
	subs     map[*subscriber]struct{}
	finished bool
}

// ctxDone adapts a possibly-nil ctx for select: a nil ctx yields a nil
// channel, which blocks forever — i.e. never cancels, matching the
// pipeline's nil-ctx convention.
func ctxDone(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// newRoom assembles a room exactly as a library caller would: session,
// humans, ghosts, shared plan, pools, planned front end, optional Doppler,
// tracker — in that order, so a synthetic room's output is bit-identical to
// the same assembly run by hand. The plan comes from the manager's cache:
// rooms with the same (config, params) shape share one compiled plan.
func newRoom(cfg RoomConfig, shardIdx int, sh *shard, plans *planCache) (*Room, error) {
	env, err := roomByName(cfg.Room)
	if err != nil {
		return nil, err
	}
	sess, err := core.NewSession(core.SessionConfig{Room: env, NoMultipath: cfg.NoMultipath})
	if err != nil {
		return nil, err
	}
	sc := sess.Scene
	for _, h := range cfg.Humans {
		rate := h.Rate
		if rate == 0 {
			rate = sc.Params.FrameRate
		}
		sc.Humans = append(sc.Humans, scene.NewHuman(h.trajectory(), rate))
	}
	for _, g := range cfg.Ghosts {
		rate := g.Rate
		if rate == 0 {
			rate = sc.Params.FrameRate
		}
		if _, err := sess.Ctl.ProgramForRadar(g.trajectory(), sc.Radar, rate, g.Start); err != nil {
			return nil, err
		}
	}

	r := &Room{
		ID:       cfg.ID,
		cfg:      cfg,
		sess:     sess,
		sh:       sh,
		shardIdx: shardIdx,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		state:    stateRunning,
		subs:     make(map[*subscriber]struct{}),
	}

	plan := plans.get(radar.DefaultConfig(), sc.Params)
	sc.UseSynthPlan(plans.getSynth(sc.Params))
	r.pools = pipeline.NewPools(sc.Params)
	stages := pipeline.FrontEndStagesPlanned(plan, sc.Radar, r.pools)
	if cfg.DopplerWindow > 0 {
		stages = append(stages, pipeline.NewDopplerPlanned(plan, cfg.DopplerWindow, 0, r.pools.Doppler))
		// Velocity history feeds the kinematic Doppler-consistency check.
		r.trk = pipeline.NewTrackWithVelocity(radar.TrackerConfig{KeepVelocityHistory: true}, sc.Radar)
	} else {
		r.trk = pipeline.NewTrack(radar.TrackerConfig{})
	}
	r.det = detect.NewTrackScorer(detect.Config{}, sc.Radar)
	stages = append(stages, &emitStage{r: r})

	var src pipeline.Source
	if cfg.Frames > 0 {
		fs := sc.Stream(0, cfg.Frames, rand.New(rand.NewSource(cfg.Seed))).UsePool(r.pools.Frames)
		src = pipeline.Source(fs)
		if cfg.FrameRate > 0 {
			src = pipeline.NewPaced(src, cfg.FrameRate)
		}
		src = &drainSource{src: src, stop: r.stop}
	} else {
		r.q = make(chan *fmcw.Frame, cfg.QueueDepth)
		r.space = make(chan struct{}, 1)
		src = &queueSource{r: r}
	}
	r.pipe = pipeline.New(src, stages...).UsePools(r.pools)
	return r, nil
}

// Mode reports "synthetic" or "ingest".
func (r *Room) Mode() string {
	if r.cfg.Frames > 0 {
		return "synthetic"
	}
	return "ingest"
}

// run drives the room's pipeline to completion. It is the runner
// goroutine's body; the Manager joins it through its WaitGroup.
func (r *Room) run(ctx context.Context) {
	_, err := r.pipe.Run(ctx)
	r.finish(err)
}

// drainSource ends a synthetic stream at the next frame boundary once the
// room drains: the frame in flight always completes every stage, so a drain
// never abandons partial work.
type drainSource struct {
	src  pipeline.Source
	stop chan struct{}
}

func (s *drainSource) Next(ctx context.Context) (*fmcw.Frame, error) {
	select {
	case <-s.stop:
		return nil, io.EOF
	default:
	}
	return s.src.Next(ctx)
}

// queueSource feeds an ingest room from its bounded queue. A closed queue
// (drain) still yields its buffered frames before io.EOF.
type queueSource struct{ r *Room }

func (s *queueSource) Next(ctx context.Context) (*fmcw.Frame, error) {
	select {
	case f, ok := <-s.r.q:
		if !ok {
			return nil, io.EOF
		}
		s.r.signalSpace()
		return f, nil
	case <-ctxDone(ctx):
		return nil, ctx.Err()
	}
}

// signalSpace pulses the space channel so one blocked pusher retries.
func (r *Room) signalSpace() {
	select {
	case r.space <- struct{}{}:
	default:
	}
}

// Push enqueues one frame into an ingest room. Ownership of f transfers to
// the room only on a nil return; on any error the caller keeps f (and
// should recycle it). The full-queue policy is the room's: block until
// space frees (backpressure, the default) or fail fast with ErrBacklogged
// (load-shedding, Shed: true). Pushing to a synthetic room returns
// ErrNotIngest; pushing after a drain began returns ErrDraining.
func (r *Room) Push(ctx context.Context, f *fmcw.Frame) error {
	if r.q == nil {
		return ErrNotIngest
	}
	for {
		r.qMu.RLock()
		if r.qClosed {
			r.qMu.RUnlock()
			return ErrDraining
		}
		select {
		case r.q <- f:
			r.qMu.RUnlock()
			return nil
		default:
		}
		r.qMu.RUnlock()
		if r.cfg.Shed {
			r.dropped.Add(1)
			r.sh.dropped.Add(1)
			return ErrBacklogged
		}
		select {
		case <-r.space:
			// A slot freed (or a stale pulse): retry the enqueue.
		case <-r.stop:
			return ErrDraining
		case <-ctxDone(ctx):
			return ctx.Err()
		}
	}
}

// beginDrain stops the room's intake exactly once: synthetic sources EOF at
// the next frame, ingest queues close (buffered frames still process), and
// the state flips to draining until the runner finishes.
func (r *Room) beginDrain() {
	r.stopOnce.Do(func() {
		r.mu.Lock()
		if r.state == stateRunning {
			r.state = stateDraining
		}
		r.mu.Unlock()
		close(r.stop)
		if r.q != nil {
			r.qMu.Lock()
			r.qClosed = true
			close(r.q)
			r.qMu.Unlock()
		}
	})
}

// emitStage is the room's sink stage: it advances the tracker and the spoof
// scorer under trkMu (HTTP handlers read the same tracker and scorer),
// counts the frame, and broadcasts the post-frame snapshot to every
// subscriber.
type emitStage struct{ r *Room }

func (s *emitStage) Name() string { return "track-emit" }

func (s *emitStage) Process(ctx context.Context, it *pipeline.Item) error {
	r := s.r
	r.trkMu.Lock()
	err := r.trk.Process(ctx, it)
	if err == nil && it.RangeDoppler != nil {
		r.det.Observe(it.RangeDoppler, r.trk.Tracker())
	}
	r.trkMu.Unlock()
	if err != nil {
		return err
	}
	r.observe(it)
	return nil
}

// observe builds and broadcasts the per-frame event. Runs on the runner
// goroutine only.
func (r *Room) observe(it *pipeline.Item) {
	r.framesDone.Add(1)
	r.sh.frames.Add(1)
	ev := Event{Room: r.ID, Frame: it.Index, Time: it.Frame.Time}
	if it.HasDets {
		ev.Detections = make([]DetectionSpec, len(it.Detections))
		for i, d := range it.Detections {
			ev.Detections[i] = DetectionSpec{Range: d.Range, AoA: d.AoA, Power: d.Power, X: d.Pos.X, Y: d.Pos.Y}
		}
	}
	ev.Tracks = r.trackSpecs()
	r.mu.Lock()
	r.lastTime = it.Frame.Time
	for sub := range r.subs {
		select {
		case sub.ch <- ev:
		default:
			// Slow consumer: drop this event rather than stall the room —
			// output-side load-shedding. The count is observable per shard.
			sub.dropped.Add(1)
			r.sh.eventsDropped.Add(1)
		}
	}
	r.mu.Unlock()
}

// finish records the terminal state and closes every subscriber stream.
// Subscribers observe the closure and fetch the final snapshot themselves
// (FinalEvent), which is immutable from here on.
func (r *Room) finish(err error) {
	r.mu.Lock()
	if err != nil {
		r.state = stateFailed
		r.runErr = err
	} else {
		r.state = stateDone
	}
	r.finished = true
	subs := r.subs
	r.subs = nil
	r.mu.Unlock()
	for sub := range subs {
		close(sub.ch)
	}
	close(r.done)
}

// subscriber is one NDJSON stream consumer: a bounded event buffer that
// sheds (with a count) instead of backpressuring the room.
type subscriber struct {
	ch      chan Event
	dropped atomic.Int64
}

// Subscribe registers a stream consumer with the given buffer (<= 0 means
// 16). If the room has already finished, the returned channel is closed
// immediately — the consumer goes straight to FinalEvent.
func (r *Room) Subscribe(buf int) *subscriber {
	if buf <= 0 {
		buf = 16
	}
	sub := &subscriber{ch: make(chan Event, buf)}
	r.mu.Lock()
	if r.finished {
		r.mu.Unlock()
		close(sub.ch)
		return sub
	}
	r.subs[sub] = struct{}{}
	r.mu.Unlock()
	return sub
}

// Unsubscribe detaches a consumer. Safe after finish (the map is gone).
func (r *Room) Unsubscribe(sub *subscriber) {
	r.mu.Lock()
	if r.subs != nil {
		delete(r.subs, sub)
	}
	r.mu.Unlock()
}

// trackSpecs snapshots the confirmed tracks' latest points with their live
// spoof-suspicion scores.
func (r *Room) trackSpecs() []TrackSpec {
	r.trkMu.Lock()
	defer r.trkMu.Unlock()
	trs := r.trk.Tracks()
	if len(trs) == 0 {
		return nil
	}
	out := make([]TrackSpec, len(trs))
	for i, tr := range trs {
		out[i] = trackSpec(tr, r.det.Score(tr))
	}
	return out
}

// TrackDumps exports every confirmed track at full resolution, scored.
func (r *Room) TrackDumps() []TrackDump {
	r.trkMu.Lock()
	defer r.trkMu.Unlock()
	trs := r.trk.Tracks()
	out := make([]TrackDump, len(trs))
	for i, tr := range trs {
		out[i] = trackDump(tr, r.det.Score(tr))
	}
	return out
}

// SuspectTracks counts confirmed tracks whose suspicion crosses the default
// thresholds — the per-room value behind the /metrics gauge.
func (r *Room) SuspectTracks() int {
	r.trkMu.Lock()
	defer r.trkMu.Unlock()
	return r.suspectTracksLocked()
}

// suspectTracksLocked is SuspectTracks without the lock (caller holds trkMu).
func (r *Room) suspectTracksLocked() int {
	n := 0
	for _, tr := range r.trk.Tracks() {
		if r.det.Score(tr).Flagged() {
			n++
		}
	}
	return n
}

// FinalEvent is the room's closing stream line: the terminal snapshot sent
// after the event channel closes.
func (r *Room) FinalEvent() Event {
	r.mu.Lock()
	ev := Event{
		Room:  r.ID,
		Frame: int(r.framesDone.Load()) - 1,
		Time:  r.lastTime,
		Final: true,
	}
	if r.runErr != nil {
		ev.Error = r.runErr.Error()
	}
	r.mu.Unlock()
	ev.Tracks = r.trackSpecs()
	return ev
}

// QueueDepth reports the current ingest backlog (0 for synthetic rooms).
func (r *Room) QueueDepth() int {
	if r.q == nil {
		return 0
	}
	return len(r.q)
}

// Status snapshots the room for the API.
func (r *Room) Status() RoomStatus {
	r.mu.Lock()
	state := r.state
	errStr := ""
	if r.runErr != nil {
		errStr = r.runErr.Error()
	}
	r.mu.Unlock()
	st := RoomStatus{
		ID:         r.ID,
		State:      state,
		Mode:       r.Mode(),
		Shard:      r.shardIdx,
		Frames:     int(r.framesDone.Load()),
		QueueDepth: r.QueueDepth(),
		Dropped:    r.dropped.Load(),
		Error:      errStr,
	}
	r.trkMu.Lock()
	st.Tracks = len(r.trk.Tracks())
	st.Suspects = r.suspectTracksLocked()
	r.trkMu.Unlock()
	return st
}

// ProgramGhost appends a ghost program to the room's tag and disclosure
// log. Synthetic rooms synthesize from the tag on the runner goroutine, so
// programming one mid-capture would race the synthesis — it is rejected
// with ErrBusy until the room finishes. Ingest rooms never synthesize; their
// tag exists for the disclosure workflow and accepts programs any time.
func (r *Room) ProgramGhost(spec TrajSpec) (reflector.GhostRecord, error) {
	if r.Mode() == "synthetic" {
		r.mu.Lock()
		running := !r.finished
		r.mu.Unlock()
		if running {
			return reflector.GhostRecord{}, ErrBusy
		}
	}
	rate := spec.Rate
	if rate == 0 {
		rate = r.sess.Scene.Params.FrameRate
	}
	r.ghostMu.Lock()
	defer r.ghostMu.Unlock()
	return r.sess.Ctl.ProgramForRadar(spec.trajectory(), r.sess.Scene.Radar, rate, spec.Start)
}

// GhostStatuses lists the room's disclosure records.
func (r *Room) GhostStatuses() []GhostStatus {
	r.ghostMu.Lock()
	recs := r.sess.Ctl.Records()
	r.ghostMu.Unlock()
	out := make([]GhostStatus, len(recs))
	for i, rec := range recs {
		out[i] = GhostStatus{Index: i, Start: rec.Start, Tick: rec.Tick, Entries: len(rec.Entries)}
	}
	return out
}
