package pulse

import (
	"math"
	"math/rand"
	"testing"

	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
)

func TestParamsValidate(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := p
	bad.SampleRate = p.Bandwidth / 2
	if err := bad.Validate(); err == nil {
		t.Fatal("under-sampling accepted")
	}
	bad = p
	bad.Window = p.PulseWidth
	if err := bad.Validate(); err == nil {
		t.Fatal("short window accepted")
	}
	bad = p
	bad.Bandwidth = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
}

func TestResolutionMatchesFMCW(t *testing.T) {
	p := DefaultParams()
	if math.Abs(p.RangeResolution()-0.15) > 0.001 {
		t.Fatalf("resolution %v, want ~0.15 m", p.RangeResolution())
	}
	if p.MaxRange() < 20 {
		t.Fatalf("max range %v too small", p.MaxRange())
	}
}

func TestMatchedFilterLocalizesTarget(t *testing.T) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(1))
	for _, dist := range []float64{2.0, 5.5, 11.0} {
		ret := Return{Delay: 2 * dist / fmcw.C, Amplitude: 1}
		rx := Capture(p, []Return{ret}, rng)
		prof := MatchedFilter(p, rx)
		ranges := DetectRanges(p, prof, 1)
		if len(ranges) != 1 {
			t.Fatalf("dist %v: %d detections", dist, len(ranges))
		}
		if math.Abs(ranges[0]-dist) > p.RangeResolution() {
			t.Fatalf("target at %v detected at %v", dist, ranges[0])
		}
	}
}

func TestMatchedFilterSeparatesTwoTargets(t *testing.T) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(2))
	rx := Capture(p, []Return{
		{Delay: 2 * 3.0 / fmcw.C, Amplitude: 1},
		{Delay: 2 * 6.0 / fmcw.C, Amplitude: 0.8},
	}, rng)
	ranges := DetectRanges(p, MatchedFilter(p, rx), 2)
	if len(ranges) != 2 {
		t.Fatalf("detections: %v", ranges)
	}
	found3, found6 := false, false
	for _, r := range ranges {
		if math.Abs(r-3) < 0.3 {
			found3 = true
		}
		if math.Abs(r-6) < 0.3 {
			found6 = true
		}
	}
	if !found3 || !found6 {
		t.Fatalf("targets not separated: %v", ranges)
	}
}

func TestDelayLineTagSpoofsPulsedRadar(t *testing.T) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(3))
	radarPos := geom.Point{}
	tag := NewDelayLineTag(geom.Point{X: 0, Y: 1.5})
	for _, line := range []int{0, 3, 7} {
		tag.Active = line
		rx := Capture(p, tag.Returns(radarPos), rng)
		ranges := DetectRanges(p, MatchedFilter(p, rx), 1)
		if len(ranges) != 1 {
			t.Fatalf("line %d: %d detections", line, len(ranges))
		}
		want := tag.SpoofedDistance(radarPos)
		if math.Abs(ranges[0]-want) > p.RangeResolution() {
			t.Fatalf("line %d: ghost at %v, want %v", line, ranges[0], want)
		}
	}
	tag.Active = -1
	if tag.Returns(radarPos) != nil {
		t.Fatal("disabled tag reflecting")
	}
	if !math.IsNaN(tag.SpoofedDistance(radarPos)) {
		t.Fatal("disabled tag has a spoofed distance")
	}
}

func TestDelayLineTrajectoryOnPulsedRadar(t *testing.T) {
	// Switching lines over time walks the ghost outward — the pulsed-radar
	// analogue of Fig. 10c.
	p := DefaultParams()
	rng := rand.New(rand.NewSource(4))
	radarPos := geom.Point{}
	tag := NewDelayLineTag(geom.Point{X: 0, Y: 1.5})
	var got []float64
	for line := 0; line < len(tag.Lines); line++ {
		tag.Active = line
		rx := Capture(p, tag.Returns(radarPos), rng)
		ranges := DetectRanges(p, MatchedFilter(p, rx), 1)
		if len(ranges) != 1 {
			t.Fatalf("line %d lost", line)
		}
		got = append(got, ranges[0])
	}
	for i := 1; i < len(got); i++ {
		step := got[i] - got[i-1]
		if step < 0.7 || step > 1.3 {
			t.Fatalf("ghost steps %v, want ~1 m increments", got)
		}
	}
}

func TestCaptureSuperposition(t *testing.T) {
	p := DefaultParams()
	r1 := Return{Delay: 2 * 2.0 / fmcw.C, Amplitude: 0.6}
	r2 := Return{Delay: 2 * 4.0 / fmcw.C, Amplitude: 0.4, Phase: 1}
	both := Capture(p, []Return{r1, r2}, nil)
	a := Capture(p, []Return{r1}, nil)
	b := Capture(p, []Return{r2}, nil)
	for i := range both {
		if d := both[i] - (a[i] + b[i]); math.Abs(real(d))+math.Abs(imag(d)) > 1e-12 {
			t.Fatal("capture not linear")
		}
	}
}
