// Package pulse implements the §13 "New Sensor Types" extension: a pulsed
// radar with pulse compression, and the delay-line variant of the
// RF-Protect tag the paper sketches for it ("distance spoofing in such
// radars need to be achieved through other mechanisms — e.g. by adding a
// set of delay lines and switching between them").
//
// The radar transmits a linear-FM pulse and matched-filters the received
// baseband; a scatterer at round-trip delay τ compresses to a peak at τ
// with range resolution C/(2B), exactly like the FMCW system it parallels.
// The tag cannot use switching-frequency tricks here (there is no beat
// frequency), so it routes the incident pulse through one of a bank of
// physical delay lines before re-radiating it.
package pulse

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"rfprotect/internal/dsp"
	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
)

// Params configures the pulsed radar.
type Params struct {
	CenterFreq float64 // carrier in Hz
	Bandwidth  float64 // LFM sweep inside the pulse, Hz
	PulseWidth float64 // pulse duration in seconds
	SampleRate float64 // baseband sampling rate in Hz (>= Bandwidth)
	Window     float64 // listening window in seconds (sets max range)
	NoiseStd   float64
}

// DefaultParams returns a UWB-style indoor pulse radar: 500 MHz LFM pulse
// (30 cm resolution), 2 µs pulse, 0.35 µs... rather: 300 ns listening per
// meter — a 0.3 µs window covers 45 m round trip.
func DefaultParams() Params {
	return Params{
		CenterFreq: 6.5e9,
		Bandwidth:  1e9,
		PulseWidth: 0.2e-6,
		SampleRate: 2e9,
		Window:     0.5e-6,
		NoiseStd:   0.01,
	}
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	switch {
	case p.Bandwidth <= 0 || p.PulseWidth <= 0 || p.SampleRate <= 0 || p.Window <= 0:
		return fmt.Errorf("pulse: non-positive parameter in %+v", p)
	case p.SampleRate < p.Bandwidth:
		return fmt.Errorf("pulse: sample rate %v under-samples bandwidth %v", p.SampleRate, p.Bandwidth)
	case p.Window <= p.PulseWidth:
		return fmt.Errorf("pulse: window %v must exceed pulse width %v", p.Window, p.PulseWidth)
	}
	return nil
}

// RangeResolution returns C/(2B).
func (p Params) RangeResolution() float64 { return fmcw.C / (2 * p.Bandwidth) }

// MaxRange returns the one-way range covered by the listening window.
func (p Params) MaxRange() float64 { return fmcw.C * (p.Window - p.PulseWidth) / 2 }

// samples returns the listening-window length in samples.
func (p Params) samples() int { return int(p.SampleRate * p.Window) }

// waveform returns the baseband LFM pulse.
func (p Params) waveform() []complex128 {
	n := int(p.SampleRate * p.PulseWidth)
	out := make([]complex128, n)
	k := p.Bandwidth / p.PulseWidth
	for i := range out {
		t := float64(i) / p.SampleRate
		ph := 2 * math.Pi * (0.5*k*t*t - p.Bandwidth/2*t)
		out[i] = cmplx.Exp(complex(0, ph))
	}
	return out
}

// Return is one reflection: a delayed, attenuated copy of the pulse.
type Return struct {
	Delay     float64 // round-trip delay in seconds
	Amplitude float64
	Phase     float64
}

// Capture synthesizes the received baseband for a set of returns.
func Capture(p Params, returns []Return, rng *rand.Rand) []complex128 {
	n := p.samples()
	rx := make([]complex128, n)
	wf := p.waveform()
	for _, r := range returns {
		if r.Amplitude == 0 {
			continue
		}
		start := r.Delay * p.SampleRate
		i0 := int(start)
		carrier := -2*math.Pi*p.CenterFreq*r.Delay + r.Phase
		rot := cmplx.Exp(complex(0, carrier)) * complex(r.Amplitude, 0)
		for i, w := range wf {
			j := i0 + i
			if j < 0 || j >= n {
				continue
			}
			rx[j] += w * rot
		}
	}
	if rng != nil && p.NoiseStd > 0 {
		for i := range rx {
			rx[i] += complex(rng.NormFloat64()*p.NoiseStd, rng.NormFloat64()*p.NoiseStd)
		}
	}
	return rx
}

// MatchedFilter compresses the capture against the pulse waveform,
// returning the magnitude profile over delay samples.
func MatchedFilter(p Params, rx []complex128) []float64 {
	n := dsp.NextPowerOfTwo(2 * len(rx))
	a := make([]complex128, n)
	copy(a, rx)
	b := make([]complex128, n)
	copy(b, p.waveform())
	// Correlation via FFT: corr(rx, wf)[k] = IFFT(FFT(rx) · conj(FFT(wf)))[k]
	// peaks at the round-trip delay.
	dsp.FFTInPlace(a)
	dsp.FFTInPlace(b)
	for i := range a {
		a[i] *= cmplx.Conj(b[i])
	}
	dsp.IFFTInPlace(a)
	out := make([]float64, len(rx))
	for i := range out {
		out[i] = cmplx.Abs(a[i])
	}
	return out
}

// DetectRanges returns the distances of the strongest peaks in the
// compressed profile.
func DetectRanges(p Params, profile []float64, maxTargets int) []float64 {
	maxV := 0.0
	for _, v := range profile {
		if v > maxV {
			maxV = v
		}
	}
	if maxV == 0 {
		return nil
	}
	minDist := int(p.SampleRate / p.Bandwidth * 2) // ~2 resolution cells
	peaks := dsp.FindPeaks(profile, 0.25*maxV, minDist)
	if maxTargets > 0 && len(peaks) > maxTargets {
		peaks = peaks[:maxTargets]
	}
	out := make([]float64, 0, len(peaks))
	for _, pk := range peaks {
		off := dsp.QuadraticInterp(profile, pk.Index)
		delay := (float64(pk.Index) + off) / p.SampleRate
		out = append(out, fmcw.C*delay/2)
	}
	return out
}

// DelayLineTag is the pulsed-radar variant of the RF-Protect reflector: the
// incident pulse is routed through one of a bank of delay lines and
// re-radiated, placing the ghost C·delay/2 beyond the tag. Like the FMCW
// tag it is passive-relay hardware — no waveform synthesis, no
// synchronization with the radar.
type DelayLineTag struct {
	Position geom.Point
	// Lines is the bank of available delays in seconds.
	Lines []float64
	// Active selects the current line (index into Lines); -1 disables.
	Active int
	// Gain is the relay amplitude gain.
	Gain float64
}

// NewDelayLineTag returns a tag with a geometrically spaced delay bank
// covering roughly 1–8 m of spoofed extra distance.
func NewDelayLineTag(pos geom.Point) *DelayLineTag {
	lines := make([]float64, 8)
	for i := range lines {
		extra := 1.0 + float64(i) // meters
		lines[i] = 2 * extra / fmcw.C
	}
	return &DelayLineTag{Position: pos, Lines: lines, Active: 0, Gain: 8}
}

// SpoofedDistance returns the ghost distance the active line creates for a
// radar at the given position.
func (t *DelayLineTag) SpoofedDistance(radarPos geom.Point) float64 {
	if t.Active < 0 || t.Active >= len(t.Lines) {
		return math.NaN()
	}
	return radarPos.Dist(t.Position) + fmcw.C*t.Lines[t.Active]/2
}

// Returns produces the tag's reflection for a radar at radarPos.
func (t *DelayLineTag) Returns(radarPos geom.Point) []Return {
	if t.Active < 0 || t.Active >= len(t.Lines) {
		return nil
	}
	d := radarPos.Dist(t.Position)
	if d < 0.3 {
		d = 0.3
	}
	return []Return{{
		Delay:     2*d/fmcw.C + t.Lines[t.Active],
		Amplitude: t.Gain / (d * d),
	}}
}
