package detect

import (
	"math"
	"math/rand"
	"testing"
)

func TestEstimateSyncLag(t *testing.T) {
	const fs, floor = 1000.0, 1e-4
	samples := make([]float64, 500)
	for i := range samples {
		if float64(i)/fs < 0.08 {
			samples[i] = 1.0 // spoofer still transmitting
		} else {
			samples[i] = floor / 2
		}
	}
	got := EstimateSyncLag(samples, fs, 10*floor)
	if math.Abs(got-0.08) > 2/fs {
		t.Errorf("EstimateSyncLag = %v, want ~0.08", got)
	}
	// Passive reflector: nothing above threshold.
	quiet := make([]float64, 500)
	for i := range quiet {
		quiet[i] = floor / 2
	}
	if got := EstimateSyncLag(quiet, fs, 10*floor); got != 0 {
		t.Errorf("EstimateSyncLag on quiet samples = %v, want 0", got)
	}
	if got := EstimateSyncLag(samples, 0, 10*floor); got != 0 {
		t.Errorf("EstimateSyncLag with fs=0 = %v, want 0", got)
	}
	if got := EstimateSyncLag(nil, fs, 10*floor); got != 0 {
		t.Errorf("EstimateSyncLag on empty = %v, want 0", got)
	}
}

func TestJitterScoreSeparatesReplayFromSmoothMotion(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	smooth := make([]float64, 50)
	jittery := make([]float64, 50)
	for i := range smooth {
		base := 4.0 + 0.04*float64(i) // 0.8 m/s at 20 Hz
		smooth[i] = base + 0.01*rng.NormFloat64()
		jittery[i] = base + 0.3*(2*rng.Float64()-1)
	}
	s, j := JitterScore(smooth), JitterScore(jittery)
	if s >= j/5 {
		t.Errorf("JitterScore smooth=%v jittery=%v, want clear separation", s, j)
	}
	if j < 0.2 {
		t.Errorf("JitterScore jittery = %v, want >= 0.2 (±0.3 m per-chirp error)", j)
	}
}

func TestJitterScoreDegenerate(t *testing.T) {
	if got := JitterScore(nil); got != 0 {
		t.Errorf("JitterScore(nil) = %v, want 0", got)
	}
	if got := JitterScore([]float64{1, 2}); got != 0 {
		t.Errorf("JitterScore(2 samples) = %v, want 0", got)
	}
	if got := JitterScore([]float64{1, math.NaN(), 2, 3}); got != hugeScore {
		t.Errorf("JitterScore with NaN = %v, want hugeScore", got)
	}
	if got := JitterScore([]float64{1, math.Inf(1), 2, 3}); got != hugeScore {
		t.Errorf("JitterScore with Inf = %v, want hugeScore", got)
	}
}
