package detect

import "math"

// Chirp-parameter estimation against the active replay spoofer
// (internal/replayspoof). Unlike the passive tag, a replay attacker must
// entrain its own transmitter onto the victim's chirp schedule, and that
// entrainment leaks twice:
//
//   - Turn-off lag: after the radar abruptly stops transmitting, the
//     spoofer keeps emitting for its synchronization lag. EstimateSyncLag
//     turns the radar-off probe's power samples into a lag estimate; any
//     positive lag is an active device (the passive tag estimates 0).
//   - Per-chirp timing error: the spoofer re-locks onto every chirp with
//     finite clock accuracy, so its phantom's apparent range jitters chirp
//     to chirp by C·ε/2. JitterScore measures that high-frequency range
//     residual; physical scatterers (humans and the tag's ghosts alike)
//     move smoothly at chirp timescales.

// EstimateSyncLag estimates an active spoofer's synchronization lag from
// radar-off probe samples: power measurements at rate fs (Hz) starting the
// instant the radar went silent. It returns the time of the last sample
// above threshold — 0 when nothing exceeded it (a passive reflector) or on
// degenerate input (fs <= 0).
func EstimateSyncLag(samples []float64, fs, threshold float64) float64 {
	if fs <= 0 {
		return 0
	}
	last := -1
	for i, p := range samples {
		if p > threshold {
			last = i
		}
	}
	return finiteOrHuge(float64(last+1) / fs)
}

// JitterScore measures chirp-entrainment range jitter: the RMS second
// difference of a per-chirp range series, in meters. Smooth motion at chirp
// timescales contributes ~(v·Δt)² curvature — microns — while a replay
// spoofer's independent per-chirp timing error of ±ε seconds contributes
// ~C·ε RMS. Fewer than 3 samples score 0; the result is always finite and
// non-negative.
func JitterScore(ranges []float64) float64 {
	if len(ranges) < 3 {
		return 0
	}
	sum, n := 0.0, 0
	for i := 2; i < len(ranges); i++ {
		d := ranges[i] - 2*ranges[i-1] + ranges[i-2]
		if !finite(d) {
			return hugeScore
		}
		sum += d * d
		n++
	}
	return finiteOrHuge(math.Sqrt(sum / float64(n)))
}
