package detect

import (
	"math"
	"math/rand"
	"testing"

	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
	"rfprotect/internal/motion"
	"rfprotect/internal/radar"
)

// testArray places the radar at the origin facing +y, matching the scene
// convention.
func testArray() fmcw.Array {
	return fmcw.Array{Position: geom.Point{X: 0, Y: 0}}
}

// walkPoints samples a constant-velocity walk from start with the given
// velocity, dt apart.
func walkPoints(start, vel geom.Point, n int, dt float64) []radar.TimedPoint {
	pts := make([]radar.TimedPoint, n)
	for i := range pts {
		t := float64(i) * dt
		pts[i] = radar.TimedPoint{Time: t, Pos: geom.Point{X: start.X + vel.X*t, Y: start.Y + vel.Y*t}}
	}
	return pts
}

func TestKinematicsSmoothWalkPasses(t *testing.T) {
	pts := walkPoints(geom.Point{X: 1, Y: 3}, geom.Point{X: 0.7, Y: -0.7}, 40, 0.05)
	st := AnalyzeKinematics(pts, nil, testArray(), 0, KinematicBounds{})
	if st.Samples == 0 {
		t.Fatal("no samples analyzed")
	}
	if math.Abs(st.MaxSpeed-math.Hypot(0.7, 0.7)) > 0.05 {
		t.Errorf("MaxSpeed = %v, want ~%v", st.MaxSpeed, math.Hypot(0.7, 0.7))
	}
	b := KinematicBounds{}
	if s := b.Score(st); s >= 1 {
		t.Errorf("smooth walk Score = %v, want < 1", s)
	}
	if !b.Consistent(st) {
		t.Error("smooth walk should be Consistent")
	}
}

// Property: human-motion-model trajectories always pass the bounds — the
// GAN's training distribution must not be flagged, or the detector frames
// everyone.
func TestKinematicsMotionModelTrajectoriesPass(t *testing.T) {
	b := KinematicBounds{}
	for seed := int64(0); seed < 20; seed++ {
		tr := motion.NewGenerator(motion.DefaultConfig(), seed).Trace()
		pts := make([]radar.TimedPoint, len(tr))
		for i, p := range tr {
			pts[i] = radar.TimedPoint{Time: float64(i) / motion.SampleRate, Pos: geom.Point{X: p.X + 5, Y: p.Y + 8}}
		}
		st := AnalyzeKinematics(pts, nil, testArray(), 0, b)
		if s := b.Score(st); s >= 1 {
			t.Errorf("seed %d: motion-model trace Score = %v (stats %+v), want < 1", seed, s, st)
		}
	}
}

// Property: a teleporting track always fails, wherever and however far it
// jumps.
func TestKinematicsTeleportAlwaysFails(t *testing.T) {
	b := KinematicBounds{}
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		pts := walkPoints(geom.Point{X: 1, Y: 3}, geom.Point{X: 0.5, Y: 0.3}, 40, 0.05)
		at := 5 + rng.Intn(30)
		jump := 2 + rng.Float64()*8
		ang := rng.Float64() * 2 * math.Pi
		for i := at; i < len(pts); i++ {
			pts[i].Pos.X += jump * math.Cos(ang)
			pts[i].Pos.Y += jump * math.Sin(ang)
		}
		st := AnalyzeKinematics(pts, nil, testArray(), 0, b)
		if s := b.Score(st); s < 1 {
			t.Errorf("seed %d: teleport of %.1f m at sample %d Score = %v, want >= 1", seed, jump, at, s)
		}
	}
}

func TestKinematicsDopplerAgreement(t *testing.T) {
	// Straight radial approach at 1 m/s: trajectory velocity (positive
	// approaching) is +1.
	pts := walkPoints(geom.Point{X: 0, Y: 5}, geom.Point{X: 0, Y: -1}, 40, 0.05)
	var hist []radar.TimedVelocity
	for i := 2; i < 38; i += 2 {
		hist = append(hist, radar.TimedVelocity{Time: float64(i) * 0.05, Velocity: 1.0})
	}
	b := KinematicBounds{}
	st := AnalyzeKinematics(pts, hist, testArray(), 0, b)
	if st.VelSamples == 0 {
		t.Fatal("no velocity samples analyzed")
	}
	if st.DopplerMismatch > 0.2 {
		t.Errorf("consistent Doppler mismatch = %v, want ~0", st.DopplerMismatch)
	}

	// The same track claiming the opposite radial velocity must fail.
	for i := range hist {
		hist[i].Velocity = -1.0
	}
	st = AnalyzeKinematics(pts, hist, testArray(), 0, b)
	if st.DopplerMismatch < 1.5 {
		t.Errorf("inconsistent Doppler mismatch = %v, want ~2", st.DopplerMismatch)
	}
	if s := b.Score(st); s < 1 {
		t.Errorf("inconsistent track Score = %v, want >= 1", s)
	}
}

func TestKinematicsDopplerAgreementFoldsAliases(t *testing.T) {
	// vmax = 0.6 m/s: a true +1 m/s approach aliases to 1 − 2·0.6 = −0.2.
	pts := walkPoints(geom.Point{X: 0, Y: 5}, geom.Point{X: 0, Y: -1}, 40, 0.05)
	var hist []radar.TimedVelocity
	for i := 2; i < 38; i += 2 {
		hist = append(hist, radar.TimedVelocity{Time: float64(i) * 0.05, Velocity: -0.2})
	}
	st := AnalyzeKinematics(pts, hist, testArray(), 0.6, KinematicBounds{})
	if st.VelSamples == 0 {
		t.Fatal("no velocity samples analyzed")
	}
	if st.DopplerMismatch > 0.2 {
		t.Errorf("aliased-consistent mismatch = %v, want ~0 after folding", st.DopplerMismatch)
	}
}

func TestKinematicsDegenerateTracks(t *testing.T) {
	b := KinematicBounds{}
	cases := []struct {
		name string
		pts  []radar.TimedPoint
	}{
		{"empty", nil},
		{"single point", []radar.TimedPoint{{Time: 0, Pos: geom.Point{X: 1, Y: 2}}}},
		{"zero duration", []radar.TimedPoint{{Time: 1, Pos: geom.Point{X: 1, Y: 2}}, {Time: 1, Pos: geom.Point{X: 3, Y: 4}}}},
		{"NaN time", []radar.TimedPoint{{Time: math.NaN(), Pos: geom.Point{X: 1, Y: 2}}, {Time: 1, Pos: geom.Point{X: 3, Y: 4}}}},
		{"NaN position", []radar.TimedPoint{{Time: 0, Pos: geom.Point{X: math.NaN(), Y: 2}}, {Time: 1, Pos: geom.Point{X: 3, Y: 4}}}},
		{"absurd duration", []radar.TimedPoint{{Time: 0, Pos: geom.Point{X: 1, Y: 2}}, {Time: 1e12, Pos: geom.Point{X: 3, Y: 4}}}},
	}
	for _, tc := range cases {
		st := AnalyzeKinematics(tc.pts, nil, testArray(), 0, b)
		if st.Samples != 0 {
			t.Errorf("%s: Samples = %d, want 0", tc.name, st.Samples)
		}
		if s := b.Score(st); s != 0 {
			t.Errorf("%s: Score = %v, want 0 (no evidence)", tc.name, s)
		}
		for _, v := range []float64{st.MaxSpeed, st.MaxAccel, st.MaxJerk, st.DopplerMismatch} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s: non-finite stat in %+v", tc.name, st)
			}
		}
	}
}

func TestFoldedVelocityDiff(t *testing.T) {
	cases := []struct {
		a, b, vmax, want float64
	}{
		{1, 1, 0, 0},
		{1, -1, 0, 2},
		{1, -0.2, 0.6, 0},     // 1.2 is one full period
		{0.5, -0.5, 0.6, 0.2}, // 1.0 folds to -0.2
		{3, 1, -1, 2},         // vmax <= 0: no folding
	}
	for _, tc := range cases {
		if got := foldedVelocityDiff(tc.a, tc.b, tc.vmax); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("foldedVelocityDiff(%v, %v, %v) = %v, want %v", tc.a, tc.b, tc.vmax, got, tc.want)
		}
	}
	if got := foldedVelocityDiff(math.NaN(), 1, 0.6); got != hugeScore {
		t.Errorf("foldedVelocityDiff(NaN, ...) = %v, want hugeScore", got)
	}
}
