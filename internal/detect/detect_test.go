package detect

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
	"rfprotect/internal/pipeline"
	"rfprotect/internal/radar"
	"rfprotect/internal/scene"
)

func TestThresholdsDefaults(t *testing.T) {
	th := Thresholds{}.withDefaults()
	if th != DefaultThresholds() {
		t.Fatalf("zero thresholds = %+v, want defaults %+v", th, DefaultThresholds())
	}
	custom := Thresholds{Harmonic: 0.5, Kinematic: 2}.withDefaults()
	if custom.Harmonic != 0.5 || custom.Kinematic != 2 {
		t.Fatalf("custom thresholds clobbered: %+v", custom)
	}
}

func TestTrackScoreFlagged(t *testing.T) {
	if (TrackScore{Suspicion: 0.99}).Flagged() {
		t.Error("Suspicion 0.99 should not flag")
	}
	if !(TrackScore{Suspicion: 1.0}).Flagged() {
		t.Error("Suspicion 1.0 should flag")
	}
}

// feedTracker drives a tracker along a straight walk and returns it with
// its dominant track.
func feedTracker(n int) (*radar.Tracker, *radar.Track) {
	tr := radar.NewTracker(radar.TrackerConfig{KeepVelocityHistory: true, MinTrackPoints: 5})
	for i := 0; i < n; i++ {
		t := float64(i) * 0.05
		pos := geom.Point{X: 1 + 0.05*t, Y: 3 - 0.8*t}
		tr.Observe(t, []radar.Detection{{
			Range: math.Hypot(pos.X, pos.Y), Pos: pos, Power: 100, Time: t,
		}})
	}
	ts := tr.Tracks()
	if len(ts) == 0 {
		return tr, nil
	}
	return tr, ts[0]
}

func TestTrackScorerObserveAndScore(t *testing.T) {
	tr, trk := feedTracker(40)
	if trk == nil {
		t.Fatal("tracker produced no track")
	}
	sc := NewTrackScorer(Config{}, testArray())
	m, _ := synthFixture()
	// Plant the comb at the track's own range row instead of the fixture's.
	for i := range m.Power {
		m.Power[i] = synthFloor
	}
	last := trk.Points[len(trk.Points)-1].Pos
	r1 := int(math.Round(m.BinOfRange(math.Hypot(last.X, last.Y))))
	m.Power[r1*synthCols+fundCol] = 1.0
	m.Power[45*synthCols+harm2Col] = 0.2
	for i := 0; i < 8; i++ {
		sc.Observe(m, tr)
	}
	got := sc.Score(trk)
	if got.TrackID != trk.ID {
		t.Errorf("TrackID = %d, want %d", got.TrackID, trk.ID)
	}
	if got.Frames != 8 {
		t.Errorf("Frames = %d, want 8", got.Frames)
	}
	if got.Harmonic < 0.15 {
		t.Errorf("Harmonic = %v, want ~0.2 (planted comb)", got.Harmonic)
	}
	if !got.Flagged() {
		t.Errorf("planted comb should flag; score %+v", got)
	}
	if math.IsNaN(got.Suspicion) || math.IsInf(got.Suspicion, 0) {
		t.Errorf("non-finite Suspicion %v", got.Suspicion)
	}

	// Scores preserves input order.
	all := sc.Scores([]*radar.Track{trk, trk})
	if len(all) != 2 || all[0].TrackID != trk.ID || all[1].TrackID != trk.ID {
		t.Errorf("Scores order broken: %+v", all)
	}
}

func TestTrackScorerNoEvidence(t *testing.T) {
	tr, trk := feedTracker(40)
	if trk == nil {
		t.Fatal("tracker produced no track")
	}
	sc := NewTrackScorer(Config{}, testArray())
	sc.Observe(nil, tr) // nil map ignored
	got := sc.Score(trk)
	if got.Frames != 0 || got.Harmonic != 0 {
		t.Errorf("nil-map evidence leaked: %+v", got)
	}
	if got.Flagged() {
		t.Errorf("smooth walk with no harmonic evidence flagged: %+v", got)
	}
}

// scoreStage mirrors the armsrace/service wiring for the pipeline test.
type scoreStage struct {
	sc  *TrackScorer
	trk *pipeline.TrackStage
}

func (s *scoreStage) Name() string { return "spoof-score" }

func (s *scoreStage) Process(ctx context.Context, it *pipeline.Item) error {
	if it.RangeDoppler != nil {
		s.sc.Observe(it.RangeDoppler, s.trk.Tracker())
	}
	return nil
}

// scoreHumanCapture runs a fixed human capture through the streaming stack
// with the given worker count and returns the dominant track's score.
func scoreHumanCapture(t *testing.T, workers int) TrackScore {
	t.Helper()
	sc := scene.NewScene(scene.HomeRoom(), fmcw.DefaultParams())
	sc.Multipath = false
	traj := geom.Trajectory{
		{X: sc.Radar.Position.X + 0.3, Y: 3.0},
		{X: sc.Radar.Position.X + 0.4, Y: 3.3},
		{X: sc.Radar.Position.X + 0.5, Y: 3.6},
		{X: sc.Radar.Position.X + 0.6, Y: 3.9},
	}
	sc.Humans = append(sc.Humans, scene.NewHuman(traj, 1))
	cfg := radar.DefaultConfig()
	cfg.Workers = workers
	pr := radar.NewProcessor(cfg)
	trkStage := pipeline.NewTrackWithVelocity(radar.TrackerConfig{KeepVelocityHistory: true}, sc.Radar)
	scorer := NewTrackScorer(Config{}, sc.Radar)
	stages := pipeline.FrontEndStages(pr, sc.Radar)
	stages = append(stages, pipeline.NewDoppler(pr, 8, 0), trkStage, &scoreStage{sc: scorer, trk: trkStage})
	rng := rand.New(rand.NewSource(11))
	if _, err := pipeline.New(sc.Stream(0, 50, rng), stages...).Run(nil); err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	var best *radar.Track
	for _, trk := range trkStage.Tracks() {
		if best == nil || len(trk.Points) > len(best.Points) {
			best = trk
		}
	}
	if best == nil {
		t.Fatal("no track from human capture")
	}
	return scorer.Score(best)
}

// Property: spoof scores are bit-identical for any pipeline worker count —
// the repo-wide determinism invariant extends to the adversary suite.
func TestTrackScorerWorkerCountBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full capture in -short mode")
	}
	base := scoreHumanCapture(t, 1)
	for _, w := range []int{2, 0} {
		if got := scoreHumanCapture(t, w); got != base {
			t.Fatalf("Workers=%d score %+v differs from Workers=1 %+v", w, got, base)
		}
	}
	if base.Flagged() {
		t.Errorf("walking human flagged: %+v", base)
	}
}
