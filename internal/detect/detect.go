// Package detect implements the tracker-side adversary of the spoofing
// arms race: a suite of detectors that try to tell RF-Protect ghosts (and
// replay-spoofer phantoms) apart from real humans in the eavesdropper's own
// output. RF-Protect's threat model (§12) assumes a naive tracker; the
// spoof-detection literature does not — chirp-parameter estimation and
// signal fingerprinting defeat naive injectors, and vehicular radar work
// adds kinematic-consistency checks. This package builds those attacks so
// the defense can be evaluated, and hardened, against them.
//
// Three detector families, one per tell the simulator actually produces:
//
//   - Switching-harmonic fingerprinting (harmonic.go): the tag's square-wave
//     switch reflects at ±2, ±3 multiples of its fundamental, and in a
//     chirp-coherent processor those harmonics land at exactly-predictable
//     aliased Doppler columns — a comb no human return has.
//   - Kinematic consistency (kinematic.go): a track's finite-difference
//     trajectory velocity must agree with its Doppler radial velocity, and
//     its speed/acceleration/jerk must stay humanly possible. The tag's
//     free-running switch phase gives ghosts a pseudo-random Doppler
//     signature their trajectory cannot explain.
//   - Chirp-parameter estimation (chirp.go): an active replay spoofer
//     re-locks onto every chirp with finite accuracy, so its phantom's range
//     jitters chirp to chirp, and its synchronization lag is measurable in
//     the radar-off probe.
//
// Every detector reduces to a scalar score that is deterministic, finite
// for arbitrary (even adversarial) inputs, and bit-identical for any
// pipeline worker count; internal/metrics turns score populations into
// ROC/AUC, and the armsrace experiment closes the loop against the
// reflector's hardening knobs.
package detect

import (
	"math"

	"rfprotect/internal/dsp"
	"rfprotect/internal/fmcw"
	"rfprotect/internal/radar"
)

// hugeScore stands in for "maximally suspicious" when a computation on
// adversarial input would produce NaN or ±Inf: every exported score is
// finite by contract (see FuzzDetect).
const hugeScore = 1e12

// finiteOrHuge saturates suspicion values at hugeScore — NaN, ±Inf, and
// finite overshoots alike. An input weird enough to break arithmetic (or to
// score astronomically) is not a human, and the ceiling keeps every exported
// score within [0, hugeScore].
func finiteOrHuge(x float64) float64 {
	if math.IsNaN(x) || x > hugeScore {
		return hugeScore
	}
	if math.IsInf(x, -1) {
		return hugeScore
	}
	return x
}

// Thresholds are the operating points that turn scores into verdicts.
type Thresholds struct {
	// Harmonic flags tracks whose harmonic-comb score (noise-subtracted
	// probe-to-peak power ratio) reaches this value. The naive tag's third
	// harmonic carries (c3/c1)² ≈ 1/9 of the ghost's power per side — well
	// above this — while humans keep a small residual from micro-Doppler
	// and speckle leakage, well below it.
	Harmonic float64
	// Kinematic flags tracks whose kinematic score reaches this value; the
	// score is pre-normalized so 1 means "at the human limit".
	Kinematic float64
}

// DefaultThresholds returns operating points calibrated on the armsrace
// experiment's fixed-seed captures: humans score well below, naive ghosts
// well above.
func DefaultThresholds() Thresholds {
	return Thresholds{Harmonic: 0.1, Kinematic: 1.0}
}

// withDefaults fills zero fields.
func (t Thresholds) withDefaults() Thresholds {
	def := DefaultThresholds()
	if t.Harmonic <= 0 {
		t.Harmonic = def.Harmonic
	}
	if t.Kinematic <= 0 {
		t.Kinematic = def.Kinematic
	}
	return t
}

// Config bundles the suite's tuning.
type Config struct {
	Harmonic   HarmonicConfig
	Bounds     KinematicBounds
	Thresholds Thresholds
}

// withDefaults fills zero fields throughout.
func (c Config) withDefaults() Config {
	c.Harmonic = c.Harmonic.withDefaults()
	c.Bounds = c.Bounds.withDefaults()
	c.Thresholds = c.Thresholds.withDefaults()
	return c
}

// TrackScore is the suite's verdict on one track.
type TrackScore struct {
	TrackID int
	// Frames counts the range–Doppler frames that contributed harmonic
	// evidence.
	Frames int
	// Harmonic is the per-track switching-harmonic score: a high percentile
	// of the per-frame probe-to-peak power ratios.
	Harmonic float64
	// Kinematic is the consistency score (1 = at the human limit), the
	// maximum of the normalized speed/accel/jerk excesses and the
	// Doppler-mismatch excess.
	Kinematic float64
	// Kin carries the underlying kinematic statistics.
	Kin KinematicStats
	// Suspicion is the combined score: the maximum of each detector's score
	// over its threshold, so >= 1 means at least one detector fired.
	Suspicion float64
}

// Flagged reports whether any detector reached its operating point.
func (s TrackScore) Flagged() bool { return s.Suspicion >= 1 }

// TrackScorer accumulates per-frame harmonic evidence against live tracks
// and renders combined verdicts. It is deterministic and single-threaded;
// callers streaming frames concurrently must serialize Observe and Score
// calls with the same lock that guards the tracker (the service room uses
// its emit-stage mutex).
type TrackScorer struct {
	cfg   Config
	array fmcw.Array
	// vmax is the unambiguous velocity band of the most recent map, used to
	// fold trajectory velocities for the Doppler-mismatch check.
	vmax float64
	// harm accumulates per-frame harmonic scores by track ID.
	harm map[int][]float64
}

// NewTrackScorer returns a scorer for tracks observed through the given
// array geometry; zero-valued config fields take defaults.
func NewTrackScorer(cfg Config, array fmcw.Array) *TrackScorer {
	return &TrackScorer{cfg: cfg.withDefaults(), array: array, harm: make(map[int][]float64)}
}

// Observe scores every active track of the tracker against one
// range–Doppler frame, accumulating the evidence by track ID. Nil maps are
// ignored.
func (s *TrackScorer) Observe(m *radar.RangeDopplerMap, tr *radar.Tracker) {
	if m == nil || tr == nil {
		return
	}
	s.vmax = m.MaxUnambiguousVelocity()
	tr.ForEachActive(func(t *radar.Track) {
		if len(t.Points) == 0 {
			return
		}
		r := s.array.DistanceOf(t.Points[len(t.Points)-1].Pos)
		s.harm[t.ID] = append(s.harm[t.ID], HarmonicScore(m, r, s.cfg.Harmonic))
	})
}

// Score renders the combined verdict for one track from the accumulated
// harmonic evidence and the track's own kinematics.
func (s *TrackScorer) Score(t *radar.Track) TrackScore {
	out := TrackScore{TrackID: t.ID}
	if scores := s.harm[t.ID]; len(scores) > 0 {
		out.Frames = len(scores)
		out.Harmonic = finiteOrHuge(dsp.Percentile(scores, s.cfg.Harmonic.Percentile))
	}
	out.Kin = AnalyzeKinematics(t.Points, t.VelHist, s.array, s.vmax, s.cfg.Bounds)
	out.Kinematic = s.cfg.Bounds.Score(out.Kin)
	th := s.cfg.Thresholds
	out.Suspicion = math.Max(out.Harmonic/th.Harmonic, out.Kinematic/th.Kinematic)
	return out
}

// Scores renders verdicts for a track set (typically Tracker.Tracks()),
// ordered as given.
func (s *TrackScorer) Scores(tracks []*radar.Track) []TrackScore {
	out := make([]TrackScore, len(tracks))
	for i, t := range tracks {
		out[i] = s.Score(t)
	}
	return out
}
