package detect

import (
	"math"

	"rfprotect/internal/dsp"
	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
	"rfprotect/internal/radar"
)

// Kinematic consistency. Two independent checks:
//
//   - Motion bounds: resample the track on a uniform grid, smooth, and
//     bound speed, acceleration, and jerk by what a walking human can do. A
//     GAN trained on human motion produces trajectories that pass; a
//     teleporting or discontinuous synthetic track cannot.
//   - Doppler agreement: the radial velocity implied by the trajectory
//     (finite differences of range over a ≥2·ResampleDt baseline) must
//     match the Doppler-measured radial velocity, modulo aliasing into the
//     map's unambiguous band. A human's Doppler is its actual motion; the
//     tag's free-running switch hands its ghost an essentially arbitrary
//     aliased Doppler column that the ghost's trajectory cannot explain,
//     and no controller knob fixes it without synchronizing the switch to
//     the victim's chirp clock.

// KinematicBounds are the human-motion limits and the analysis resolution.
type KinematicBounds struct {
	MaxSpeed float64 // m/s, default 4 (fast walk/jog)
	MaxAccel float64 // m/s², default 12
	MaxJerk  float64 // m/s³, default 250
	// MaxDopplerMismatch bounds the median |trajectory velocity − Doppler
	// velocity| (after folding into the unambiguous band), in m/s.
	// Default 1.5.
	MaxDopplerMismatch float64
	// ResampleDt is the uniform analysis grid in seconds; differences over
	// finer native spacing are too noise-dominated to bound. Default 0.05.
	ResampleDt float64
}

// withDefaults fills zero fields.
func (b KinematicBounds) withDefaults() KinematicBounds {
	if b.MaxSpeed <= 0 {
		b.MaxSpeed = 4
	}
	if b.MaxAccel <= 0 {
		b.MaxAccel = 12
	}
	if b.MaxJerk <= 0 {
		b.MaxJerk = 250
	}
	if b.MaxDopplerMismatch <= 0 {
		b.MaxDopplerMismatch = 1.5
	}
	if b.ResampleDt <= 0 {
		b.ResampleDt = 0.05
	}
	return b
}

// KinematicStats summarizes one track's motion consistency.
type KinematicStats struct {
	MaxSpeed float64 // m/s over the smoothed resampled track
	MaxAccel float64 // m/s²
	MaxJerk  float64 // m/s³
	// DopplerMismatch is the median folded |v_traj − v_doppler| in m/s;
	// meaningful when VelSamples > 0.
	DopplerMismatch float64
	// Samples is the resampled grid length; VelSamples counts the Doppler
	// samples that entered the mismatch statistic.
	Samples    int
	VelSamples int
}

// Score reduces stats to the kinematic suspicion score: the largest
// per-bound excess ratio, so 1 means "exactly at the human limit". Tracks
// too short to analyze (Samples == 0) score 0 — no evidence either way.
func (b KinematicBounds) Score(st KinematicStats) float64 {
	b = b.withDefaults()
	if st.Samples == 0 {
		return 0
	}
	s := st.MaxSpeed / b.MaxSpeed
	s = math.Max(s, st.MaxAccel/b.MaxAccel)
	s = math.Max(s, st.MaxJerk/b.MaxJerk)
	if st.VelSamples > 0 {
		s = math.Max(s, st.DopplerMismatch/b.MaxDopplerMismatch)
	}
	return finiteOrHuge(math.Max(s, 0))
}

// Consistent reports whether the stats stay within every bound.
func (b KinematicBounds) Consistent(st KinematicStats) bool { return b.Score(st) < 1 }

// AnalyzeKinematics computes motion statistics for a tracked point series,
// plus Doppler agreement when a velocity history is available. array gives
// the radar geometry that converts positions to ranges; vmax is the
// Doppler map's unambiguous velocity band (±vmax), or <= 0 to compare
// unfolded. The result's fields are always finite (adversarial inputs
// saturate at a huge value instead of going NaN/Inf).
func AnalyzeKinematics(points []radar.TimedPoint, velHist []radar.TimedVelocity, array fmcw.Array, vmax float64, b KinematicBounds) KinematicStats {
	b = b.withDefaults()
	var st KinematicStats
	grid := resampleTrack(points, b.ResampleDt)
	st.Samples = len(grid)
	if len(grid) < 3 {
		return st
	}
	dt := b.ResampleDt

	// Velocity by central difference, then a light moving average: a
	// velocity change concentrated between two native samples would
	// otherwise read as a dt-scale impulse and overstate acceleration.
	n := len(grid)
	vx := make([]float64, n-2)
	vy := make([]float64, n-2)
	for i := 1; i < n-1; i++ {
		vx[i-1] = (grid[i+1].X - grid[i-1].X) / (2 * dt)
		vy[i-1] = (grid[i+1].Y - grid[i-1].Y) / (2 * dt)
	}
	vx = dsp.MovingAverage(vx, 5)
	vy = dsp.MovingAverage(vy, 5)
	for i := range vx {
		st.MaxSpeed = math.Max(st.MaxSpeed, math.Hypot(vx[i], vy[i]))
	}
	// Each derivative stage is smoothed before taking its max: the bounds are
	// on *sustained* motion, and a single mis-associated detection otherwise
	// reads as a dt-scale accel/jerk impulse that flags a real human. A
	// teleporting track survives any smoothing — its displacement is real, so
	// the speed bound still trips with a wide margin.
	ax, ay := diffSeries(vx, dt), diffSeries(vy, dt)
	ax = dsp.MovingAverage(ax, 5)
	ay = dsp.MovingAverage(ay, 5)
	for i := range ax {
		st.MaxAccel = math.Max(st.MaxAccel, math.Hypot(ax[i], ay[i]))
	}
	jx, jy := diffSeries(ax, dt), diffSeries(ay, dt)
	jx = dsp.MovingAverage(jx, 5)
	jy = dsp.MovingAverage(jy, 5)
	for i := range jx {
		st.MaxJerk = math.Max(st.MaxJerk, math.Hypot(jx[i], jy[i]))
	}
	st.MaxSpeed = finiteOrHuge(st.MaxSpeed)
	st.MaxAccel = finiteOrHuge(st.MaxAccel)
	st.MaxJerk = finiteOrHuge(st.MaxJerk)

	// Doppler agreement over the same grid: trajectory radial velocity from
	// ranges one grid step apart (positive approaching, matching
	// RangeDopplerMap.VelocityOfBin's sign convention).
	if len(velHist) == 0 {
		return st
	}
	t0 := points[0].Time
	ranges := make([]float64, n)
	for i, p := range grid {
		ranges[i] = array.DistanceOf(p)
	}
	var mismatches []float64
	for _, v := range velHist {
		i := int(math.Round((v.Time - t0) / dt))
		if i < 1 || i > n-2 {
			continue
		}
		vTraj := -(ranges[i+1] - ranges[i-1]) / (2 * dt)
		mismatches = append(mismatches, foldedVelocityDiff(vTraj, v.Velocity, vmax))
	}
	st.VelSamples = len(mismatches)
	if len(mismatches) > 0 {
		st.DopplerMismatch = finiteOrHuge(dsp.Percentile(mismatches, 50))
	}
	return st
}

// resampleTrack interpolates the point series onto a uniform dt grid
// starting at the first sample. Points must be in non-decreasing time
// order (trackers emit them that way); non-finite samples abort the
// resample (empty result), which the callers score as "no evidence" on the
// bounds and huge on anything arithmetic.
func resampleTrack(points []radar.TimedPoint, dt float64) []geom.Point {
	if len(points) < 2 {
		return nil
	}
	t0, t1 := points[0].Time, points[len(points)-1].Time
	if !finite(t0) || !finite(t1) || t1 <= t0 {
		return nil
	}
	n := int((t1-t0)/dt) + 1
	const maxGrid = 1 << 20
	if n < 2 || n > maxGrid {
		return nil
	}
	out := make([]geom.Point, 0, n)
	j := 0
	for i := 0; i < n; i++ {
		t := t0 + float64(i)*dt
		for j < len(points)-2 && points[j+1].Time <= t {
			j++
		}
		a, b := points[j], points[j+1]
		if !finite(a.Pos.X) || !finite(a.Pos.Y) || !finite(b.Pos.X) || !finite(b.Pos.Y) || !finite(a.Time) || !finite(b.Time) {
			return nil
		}
		var p geom.Point
		if b.Time <= a.Time {
			p = b.Pos
		} else {
			frac := (t - a.Time) / (b.Time - a.Time)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			p = geom.Lerp(a.Pos, b.Pos, frac)
		}
		out = append(out, p)
	}
	return out
}

// diffSeries returns the successive differences of x divided by dt.
func diffSeries(x []float64, dt float64) []float64 {
	if len(x) < 2 {
		return nil
	}
	out := make([]float64, len(x)-1)
	for i := 1; i < len(x); i++ {
		out[i-1] = (x[i] - x[i-1]) / dt
	}
	return out
}

// foldedVelocityDiff returns |a − b| on the aliasing circle of period
// 2·vmax (the unambiguous band is (−vmax, vmax]); vmax <= 0 compares
// directly.
func foldedVelocityDiff(a, b, vmax float64) float64 {
	d := a - b
	if vmax > 0 && finite(d) {
		period := 2 * vmax
		d = math.Mod(d, period)
		if d > vmax {
			d -= period
		} else if d < -vmax {
			d += period
		}
	}
	return finiteOrHuge(math.Abs(d))
}

// finite reports whether x is neither NaN nor ±Inf.
func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }
