package detect

import (
	"encoding/binary"
	"math"
	"testing"

	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
	"rfprotect/internal/radar"
)

// fuzzReader decodes primitive values from the fuzz input, cycling when the
// bytes run out so short inputs still exercise every decoder.
type fuzzReader struct {
	data []byte
	off  int
}

func (r *fuzzReader) byte() byte {
	if len(r.data) == 0 {
		return 0
	}
	b := r.data[r.off%len(r.data)]
	r.off++
	return b
}

// float decodes a raw IEEE-754 double — NaN, ±Inf, subnormals and absurd
// magnitudes all come out of the corpus naturally.
func (r *fuzzReader) float() float64 {
	var buf [8]byte
	for i := range buf {
		buf[i] = r.byte()
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
}

func (r *fuzzReader) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.byte()) % n
}

// checkScore asserts the universal detector contract: finite, non-negative,
// never NaN. hugeScore is the designated "certainly fake" ceiling and is
// allowed.
func checkScore(t *testing.T, name string, v float64) {
	t.Helper()
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("%s = %v, want finite", name, v)
	}
	if v < 0 {
		t.Fatalf("%s = %v, want non-negative", name, v)
	}
	if v > hugeScore {
		t.Fatalf("%s = %v, exceeds hugeScore", name, v)
	}
}

// FuzzDetect throws arbitrary range–Doppler maps, tracks, velocity
// histories, and sample streams at every detector entry point. The contract
// under test: no panics, and every score/statistic stays finite and
// non-negative no matter how degenerate or adversarial the input — the
// detectors run inside the live service loop where a NaN would poison the
// suspicion gauge forever.
func FuzzDetect(f *testing.F) {
	f.Add([]byte{})                                               // empty everything
	f.Add([]byte{1})                                              // single byte → single-point track
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})                         // all-zero floats
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xf0, 0x7f}) // NaN bits
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0xf0, 0x7f, 1, 2, 3})          // +Inf bits
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0xf0, 0xff, 9, 9})             // −Inf bits
	nominal := make([]byte, 0, 128)
	for i := 0; i < 16; i++ {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(float64(i)*0.3+1))
		nominal = append(nominal, buf[:]...)
	}
	f.Add(nominal) // plausible monotone floats

	f.Fuzz(func(t *testing.T, data []byte) {
		r := &fuzzReader{data: data}

		// Range–Doppler map with capped dims; dims may also disagree with
		// the Power slice length.
		nr, nd := r.intn(17), r.intn(9)
		m := &radar.RangeDopplerMap{
			Params:      fmcw.DefaultParams(),
			PRI:         r.float(),
			RangeBins:   nr,
			DopplerBins: nd,
			Power:       make([]float64, r.intn(nr*nd+2)),
		}
		for i := range m.Power {
			m.Power[i] = r.float()
		}
		checkScore(t, "HarmonicScore", HarmonicScore(m, r.float(), HarmonicConfig{}))
		checkScore(t, "HarmonicScore(custom)", HarmonicScore(m, 2.5, HarmonicConfig{
			RangeGuard: r.intn(6), ColTol: r.intn(4), CenterGuard: r.intn(4),
			Percentile: float64(r.intn(120)), MinSNR: r.float(),
		}))

		// Track + velocity history: empty and single-point shapes fall out of
		// small inputs, NaN/Inf coordinates out of the raw float decoder.
		pts := make([]radar.TimedPoint, r.intn(24))
		for i := range pts {
			pts[i] = radar.TimedPoint{Time: r.float(), Pos: geom.Point{X: r.float(), Y: r.float()}}
		}
		hist := make([]radar.TimedVelocity, r.intn(12))
		for i := range hist {
			hist[i] = radar.TimedVelocity{Time: r.float(), Velocity: r.float()}
		}
		b := KinematicBounds{}
		st := AnalyzeKinematics(pts, hist, testArray(), r.float(), b)
		for _, v := range []float64{st.MaxSpeed, st.MaxAccel, st.MaxJerk, st.DopplerMismatch} {
			checkScore(t, "AnalyzeKinematics stat", v)
		}
		checkScore(t, "KinematicBounds.Score", b.Score(st))

		// Sample-stream probes.
		samples := make([]float64, r.intn(32))
		for i := range samples {
			samples[i] = r.float()
		}
		checkScore(t, "JitterScore", JitterScore(samples))
		lag := EstimateSyncLag(samples, r.float(), r.float())
		if math.IsNaN(lag) || math.IsInf(lag, 0) || lag < 0 {
			t.Fatalf("EstimateSyncLag = %v, want finite non-negative", lag)
		}
	})
}
