package detect

import (
	"math"
	"testing"

	"rfprotect/internal/fmcw"
	"rfprotect/internal/radar"
)

// synthMap builds a range–Doppler map with a uniform noise floor, default
// prototype params, and the given chirp interval.
func synthMap(rangeBins, dopplerBins int, pri, floor float64) *radar.RangeDopplerMap {
	m := &radar.RangeDopplerMap{
		Params:      fmcw.DefaultParams(),
		PRI:         pri,
		RangeBins:   rangeBins,
		DopplerBins: dopplerBins,
		Power:       make([]float64, rangeBins*dopplerBins),
	}
	for i := range m.Power {
		m.Power[i] = floor
	}
	return m
}

// The synthetic fixture: a 64×32 map at 500 Hz with the track's fundamental
// at row 20, column 23 (seven bins right of center 16). The second harmonic
// of that tone lands at column 30; the third (21 bins) aliases to column 5;
// the −2 and −3 orders probe columns 2 and 27; the mirror (−1) column is 9.
// All probe bands are disjoint, so a planted cell is counted exactly once.
const (
	synthRows  = 64
	synthCols  = 32
	synthPRI   = 0.002
	synthFloor = 1e-3
	fundRow    = 20
	fundCol    = 23
	harm2Col   = 30
	harm3Col   = 5
)

func synthFixture() (*radar.RangeDopplerMap, float64) {
	m := synthMap(synthRows, synthCols, synthPRI, synthFloor)
	m.Power[fundRow*synthCols+fundCol] = 1.0
	return m, m.RangeOfBin(fundRow)
}

func TestHarmonicScoreFlagsPredictedComb(t *testing.T) {
	m, trackRange := synthFixture()
	// Second harmonic: 2·(7 bins) = 14 bins right of center → column 30,
	// far from the track's row.
	m.Power[45*synthCols+harm2Col] = 0.2
	got := HarmonicScore(m, trackRange, HarmonicConfig{})
	if got < 0.15 || got > 0.25 {
		t.Fatalf("HarmonicScore with planted second harmonic = %v, want ~0.2", got)
	}
}

func TestHarmonicScoreFlagsAliasedThirdHarmonic(t *testing.T) {
	m, trackRange := synthFixture()
	// Third harmonic: 3·(7 bins) = 21 bins folds to −11 → column 5.
	m.Power[45*synthCols+harm3Col] = 0.11
	got := HarmonicScore(m, trackRange, HarmonicConfig{})
	if got < 0.08 || got > 0.14 {
		t.Fatalf("HarmonicScore with aliased third harmonic = %v, want ~0.11", got)
	}
}

func TestHarmonicScoreIgnoresUnpredictedColumns(t *testing.T) {
	m, trackRange := synthFixture()
	// Strong second mover at column 18 — not a predicted harmonic of the
	// fundamental (and not its mirror at 9).
	m.Power[45*synthCols+18] = 0.5
	got := HarmonicScore(m, trackRange, HarmonicConfig{})
	if got > 0.02 {
		t.Fatalf("HarmonicScore with off-comb energy = %v, want ~0", got)
	}
}

func TestHarmonicScoreIgnoresMirrorImage(t *testing.T) {
	// A 48-column map with the fundamental 12 bins right of center 24: the
	// third harmonic (36 bins) aliases exactly onto the −1 mirror column
	// (12), and the −3 order onto the fundamental itself. Every physical
	// modulator is ±1 symmetric, so energy there proves nothing — without
	// the mirror guard the planted 0.5 would score ~0.5.
	const nd = 48
	m := synthMap(synthRows, nd, synthPRI, synthFloor)
	m.Power[fundRow*nd+36] = 1.0
	m.Power[45*nd+12] = 0.5
	got := HarmonicScore(m, m.RangeOfBin(fundRow), HarmonicConfig{})
	if got > 0.02 {
		t.Fatalf("HarmonicScore with mirror-image energy = %v, want ~0", got)
	}
}

func TestHarmonicScoreIgnoresRangeLocalEnergy(t *testing.T) {
	m, trackRange := synthFixture()
	// Harmonic-column energy inside the track's own range guard: human
	// micro-Doppler is range-local and must not count.
	m.Power[(fundRow+2)*synthCols+harm2Col] = 0.5
	got := HarmonicScore(m, trackRange, HarmonicConfig{})
	if got > 0.02 {
		t.Fatalf("HarmonicScore with range-local energy = %v, want ~0", got)
	}
}

func TestHarmonicScoreSNRGate(t *testing.T) {
	m, trackRange := synthFixture()
	// Fundamental barely above the floor: the frame proves nothing.
	m.Power[fundRow*synthCols+fundCol] = 10 * synthFloor
	m.Power[45*synthCols+harm2Col] = 0.2
	if got := HarmonicScore(m, trackRange, HarmonicConfig{}); got != 0 {
		t.Fatalf("HarmonicScore below SNR gate = %v, want 0", got)
	}
}

func TestHarmonicScoreDegenerateInputs(t *testing.T) {
	m, trackRange := synthFixture()
	cases := []struct {
		name string
		m    *radar.RangeDopplerMap
		r    float64
	}{
		{"nil map", nil, 3},
		{"NaN range", m, math.NaN()},
		{"Inf range", m, math.Inf(1)},
		{"range out of map", m, 1e9},
		{"zero dims", &radar.RangeDopplerMap{}, 3},
		{"short power slice", &radar.RangeDopplerMap{RangeBins: 100, DopplerBins: 100, Power: make([]float64, 10)}, 3},
	}
	for _, tc := range cases {
		if got := HarmonicScore(tc.m, tc.r, HarmonicConfig{}); got != 0 {
			t.Errorf("%s: HarmonicScore = %v, want 0", tc.name, got)
		}
	}
	_ = trackRange
}

func TestHarmonicScoreFiniteOnAdversarialPower(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		m, trackRange := synthFixture()
		m.Power[45*synthCols+harm2Col] = 0.2
		m.Power[50*synthCols+2] = bad
		got := HarmonicScore(m, trackRange, HarmonicConfig{})
		if math.IsNaN(got) || math.IsInf(got, 0) || got < 0 {
			t.Fatalf("HarmonicScore with %v cell = %v, want finite non-negative", bad, got)
		}
	}
}
