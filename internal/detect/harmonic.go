package detect

import (
	"math"

	"rfprotect/internal/dsp"
	"rfprotect/internal/radar"
)

// Switching-harmonic fingerprinting. The tag's duty-d square wave reflects
// the chirp at every multiple of its switching fundamental f_sw with
// amplitude |sin(πnd)/(πn)|, so next to the ghost (the n = ±1 image) the
// range–Doppler map carries images at beat offsets ±2·f_sw, ±3·f_sw. Two
// facts make those images a fingerprint the tag cannot trivially shed:
//
//   - In slow time the n-th harmonic beats at n times the fundamental's
//     Doppler frequency, and aliasing commutes with that multiplication:
//     fold(n·f) == fold(n·fold(f)). The observed (aliased) Doppler of the
//     ghost therefore *predicts* the exact Doppler columns of its
//     harmonics, no matter how heavily either one aliases.
//   - The harmonics appear at ranges r_ant + n·Δd — far from the ghost's
//     own range row — while a real human's micro-Doppler spread is
//     range-local. Energy at the predicted columns away from the track's
//     row has no human explanation.
//
// The per-frame score is the ratio of probe-column power (away from the
// track's rows) to the track's own peak power; per-track evidence is a high
// percentile of the per-frame scores, which rides out the frames where the
// tag's per-tick frequency hop smears the comb.

// HarmonicConfig tunes the fingerprint probe.
type HarmonicConfig struct {
	// RangeGuard excludes rows within ±RangeGuard range bins of the track's
	// row from the probe, so the target's own (range-local) energy cannot
	// score against it. Default 3.
	RangeGuard int
	// ColTol widens each probed Doppler column by ±ColTol bins to absorb
	// the k-fold growth of the fundamental's sub-bin estimation error.
	// Default 1.
	ColTol int
	// CenterGuard excludes Doppler columns within ±CenterGuard of zero
	// velocity — residual static clutter. Default 1.
	CenterGuard int
	// Percentile selects the per-track statistic over per-frame scores.
	// Default 75: high enough to key on the cleanly-resolved windows (the
	// comb smears in windows that straddle a control tick), low enough to
	// need sustained evidence. In (0, 100].
	Percentile float64
	// MinSNR gates the fundamental: the track's peak must exceed MinSNR
	// times the map's mean non-static power, or the frame contributes no
	// evidence. Without it, a target with little radial motion (a human
	// crossing tangentially) leaves only a weak micro-Doppler tail as its
	// "fundamental", and noise maxima relative to that weak peak read as
	// harmonic evidence — enough to frame a real human. A tag ghost never
	// hides this way: its Doppler tone is the switching frequency itself,
	// strong regardless of the spoofed trajectory's direction. Default 100.
	MinSNR float64
}

// withDefaults fills zero fields.
func (c HarmonicConfig) withDefaults() HarmonicConfig {
	if c.RangeGuard <= 0 {
		c.RangeGuard = 3
	}
	if c.ColTol <= 0 {
		c.ColTol = 1
	}
	if c.CenterGuard <= 0 {
		c.CenterGuard = 1
	}
	if c.Percentile <= 0 || c.Percentile > 100 {
		c.Percentile = 75
	}
	if c.MinSNR <= 0 {
		c.MinSNR = 100
	}
	return c
}

// harmonicOrders are the probed multiples of the track's Doppler
// fundamental. ±3 carries the naive 50%-duty tag's strongest extra image
// (even harmonics vanish at exactly half duty); ±2 catches any other duty.
var harmonicOrders = [...]int{-3, -2, 2, 3}

// noiseFactor scales the probed band's mean power into the noise baseline
// subtracted from its peak (≈ the 95th percentile of exponential noise), so
// noise-only bands score near zero.
const noiseFactor = 3.0

// HarmonicScore scores one range–Doppler frame for switching-harmonic
// evidence against a track at the given range (meters): the summed probe
// power at the predicted harmonic Doppler columns outside the track's own
// rows, normalized by the track's peak power. 0 means no evidence (or no
// usable peak); the result is always finite and non-negative.
func HarmonicScore(m *radar.RangeDopplerMap, trackRange float64, cfg HarmonicConfig) float64 {
	cfg = cfg.withDefaults()
	if m == nil || m.RangeBins <= 0 || m.DopplerBins <= 0 || m.RangeBins > len(m.Power)/m.DopplerBins {
		return 0
	}
	if math.IsNaN(trackRange) || math.IsInf(trackRange, 0) {
		return 0
	}
	nd := m.DopplerBins
	center := nd / 2
	r1 := int(math.Round(m.BinOfRange(trackRange)))
	if r1 < 0 || r1 >= m.RangeBins {
		return 0
	}
	// The track's Doppler fundamental: the strongest non-static column in
	// the rows around its range, sub-bin refined.
	bestR, bestD, bestP := -1, -1, 0.0
	for r := r1 - 1; r <= r1+1; r++ {
		if r < 0 || r >= m.RangeBins {
			continue
		}
		row := m.Power[r*nd : (r+1)*nd]
		for d, p := range row {
			if absInt(d-center) <= cfg.CenterGuard {
				continue
			}
			if p > bestP {
				bestR, bestD, bestP = r, d, p
			}
		}
	}
	if bestR < 0 || bestP <= 0 || math.IsNaN(bestP) || math.IsInf(bestP, 0) {
		return 0
	}
	// SNR gate: compare the peak against the map-wide mean power outside
	// the static ridge. A scintillating target that faded into the noise
	// this frame proves nothing either way.
	noiseSum, noiseCells := 0.0, 0
	for r := 0; r < m.RangeBins; r++ {
		base := r * nd
		for d := 0; d < nd; d++ {
			if absInt(d-center) <= cfg.CenterGuard {
				continue
			}
			noiseSum += m.Power[base+d]
			noiseCells++
		}
	}
	if noiseCells == 0 || !finite(noiseSum) || bestP < cfg.MinSNR*noiseSum/float64(noiseCells) {
		return 0
	}
	row := m.Power[bestR*nd : (bestR+1)*nd]
	d1 := float64(bestD) + dsp.QuadraticInterp(row, bestD)
	f1 := (d1 - float64(center)) / (float64(nd) * m.PRI)
	// The fundamental's own −1 partner (every real modulator is symmetric in
	// ±1) sits at the mirrored Doppler column; a probe landing there proves
	// nothing about higher harmonics, so it is excluded like the fundamental.
	mirrorD := (((2*center - bestD) % nd) + nd) % nd

	// Probe the predicted harmonic columns. Columns colliding with the
	// fundamental's own (or the static ridge) prove nothing and are
	// skipped. The max over a probed band rides on noise order statistics
	// (the max of ~10² noise cells is several times their mean), so each
	// order's evidence is the peak's excess over noiseFactor times the
	// band's mean — a real harmonic is a spike in a single range row and
	// barely moves the mean, while pure noise cancels to near zero.
	probe := 0.0
	for _, k := range harmonicOrders {
		fk := radar.AliasedDoppler(float64(k)*f1, m.PRI)
		ck := int(math.Round(fk*float64(nd)*m.PRI + float64(center)))
		ck = ((ck % nd) + nd) % nd
		if absInt(ck-center) <= cfg.CenterGuard || absInt(ck-bestD) <= cfg.ColTol || absInt(ck-mirrorD) <= cfg.ColTol {
			continue
		}
		// Best cell across the probed column band, rows away from the
		// track's own, plus the band mean as the noise baseline.
		best, sum, cells := 0.0, 0.0, 0
		for dc := -cfg.ColTol; dc <= cfg.ColTol; dc++ {
			c := ((ck+dc)%nd + nd) % nd
			if absInt(c-center) <= cfg.CenterGuard {
				continue
			}
			for r := 0; r < m.RangeBins; r++ {
				if absInt(r-r1) <= cfg.RangeGuard {
					continue
				}
				p := m.Power[r*nd+c]
				if p > best {
					best = p
				}
				sum += p
				cells++
			}
		}
		if cells > 0 {
			if excess := best - noiseFactor*sum/float64(cells); excess > 0 {
				probe += excess
			}
		}
	}
	return finiteOrHuge(math.Max(probe/bestP, 0))
}

// absInt returns |x|.
func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
