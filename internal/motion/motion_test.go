package motion

import (
	"math"
	"testing"

	"rfprotect/internal/dsp"
	"rfprotect/internal/geom"
)

func TestGenerateShape(t *testing.T) {
	ds := Generate(200, 1)
	if len(ds.Traces) != 200 || len(ds.Labels) != 200 {
		t.Fatalf("sizes %d/%d", len(ds.Traces), len(ds.Labels))
	}
	for i, tr := range ds.Traces {
		if len(tr) != TraceLen {
			t.Fatalf("trace %d has %d points", i, len(tr))
		}
		if tr[0] != (geom.Point{}) {
			t.Fatalf("trace %d does not start at origin", i)
		}
		if l := ds.Labels[i]; l < 0 || l >= NumClasses {
			t.Fatalf("label %d out of range", l)
		}
		if ds.Labels[i] != Classify(tr) {
			t.Fatal("label inconsistent with Classify")
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(5, 42)
	b := Generate(5, 42)
	for i := range a.Traces {
		for j := range a.Traces[i] {
			if a.Traces[i][j] != b.Traces[i][j] {
				t.Fatal("same seed must reproduce the corpus")
			}
		}
	}
	c := Generate(5, 43)
	same := true
	for j := range a.Traces[0] {
		if a.Traces[0][j] != c.Traces[0][j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestCorpusCoversAllClasses(t *testing.T) {
	ds := Generate(1000, 7)
	byClass := ds.ByClass()
	for c, idxs := range byClass {
		if len(idxs) == 0 {
			t.Fatalf("class %d empty", c)
		}
	}
}

func TestTracesHaveHumanSpeeds(t *testing.T) {
	ds := Generate(300, 3)
	var speeds []float64
	for _, tr := range ds.Traces {
		speeds = append(speeds, tr.Speeds(SampleRate)...)
	}
	med := dsp.Median(speeds)
	if med < 0.05 || med > 2.5 {
		t.Fatalf("median speed %v m/s is not human walking", med)
	}
	if p99 := dsp.Percentile(speeds, 99); p99 > 4.0 {
		t.Fatalf("99th percentile speed %v m/s is superhuman", p99)
	}
}

func TestTracesAreSmootherThanRandom(t *testing.T) {
	// Mean absolute turning angle of human traces must be well below a
	// white-noise random walk's (which is ~uniform, mean π/2).
	ds := Generate(100, 5)
	var human []float64
	for _, tr := range ds.Traces {
		for _, a := range tr.TurningAngles() {
			human = append(human, math.Abs(a))
		}
	}
	var rnd []float64
	for _, tr := range RandomWalk(100, 6) {
		for _, a := range tr.TurningAngles() {
			rnd = append(rnd, math.Abs(a))
		}
	}
	if dsp.Mean(human) >= 0.75*dsp.Mean(rnd) {
		t.Fatalf("human turning %v not smoother than random %v", dsp.Mean(human), dsp.Mean(rnd))
	}
}

func TestClassify(t *testing.T) {
	small := geom.Trajectory{{X: 0, Y: 0}, {X: 0.3, Y: 0.3}}
	if Classify(small) != 0 {
		t.Fatalf("small range class %d", Classify(small))
	}
	big := geom.Trajectory{{X: 0, Y: 0}, {X: 8, Y: 0}}
	if Classify(big) != NumClasses-1 {
		t.Fatalf("large range class %d", Classify(big))
	}
	mid := geom.Trajectory{{X: 0, Y: 0}, {X: 2.5, Y: 0}}
	if got := Classify(mid); got != 2 {
		t.Fatalf("mid range class %d", got)
	}
}

func TestSplit(t *testing.T) {
	ds := Generate(10, 1)
	a, b := ds.Split()
	if len(a.Traces) != 5 || len(b.Traces) != 5 {
		t.Fatalf("split sizes %d/%d", len(a.Traces), len(b.Traces))
	}
	if a.Traces[0][1] != ds.Traces[0][1] || b.Traces[0][1] != ds.Traces[1][1] {
		t.Fatal("split order wrong")
	}
}

func TestSingleTrajIsRepetitive(t *testing.T) {
	trs := SingleTraj(10, 1)
	if len(trs) != 10 {
		t.Fatal("count")
	}
	// All traces nearly identical.
	for _, tr := range trs[1:] {
		if e := geom.MeanPointwiseError(tr, trs[0]); e > 0.05 {
			t.Fatalf("single-traj traces differ by %v", e)
		}
	}
}

func TestULMIsLinear(t *testing.T) {
	for _, tr := range ULM(10, 2) {
		for _, a := range tr.TurningAngles() {
			if math.Abs(a) > 1e-9 {
				t.Fatalf("ULM trace turns by %v", a)
			}
		}
	}
}

func TestRandomWalkIsRough(t *testing.T) {
	trs := RandomWalk(50, 3)
	var angles []float64
	for _, tr := range trs {
		for _, a := range tr.TurningAngles() {
			angles = append(angles, math.Abs(a))
		}
	}
	// White-noise headings: mean |turn| near π/2.
	if m := dsp.Mean(angles); m < 1.0 {
		t.Fatalf("random walk too smooth: mean |turn| %v", m)
	}
}
