package motion

import (
	"math"
	"math/rand"

	"rfprotect/internal/geom"
)

// The three baseline trajectory families RF-Protect's cGAN is compared
// against in Fig. 12 (right). Each produces TraceLen-point traces.

// SingleTraj returns traces of one fixed trajectory — a loop the "user"
// performs repeatedly — with only tiny execution noise. The eavesdropper's
// counter is that repeating the identical path is not human (§6).
func SingleTraj(n int, seed int64) []geom.Trajectory {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Trajectory, n)
	for i := range out {
		tr := make(geom.Trajectory, TraceLen)
		for j := 0; j < TraceLen; j++ {
			// A figure-eight walked over the trace duration.
			ph := 2 * math.Pi * float64(j) / float64(TraceLen-1)
			tr[j] = geom.Point{
				X: 1.5*math.Sin(ph) + rng.NormFloat64()*0.01,
				Y: 0.8*math.Sin(2*ph) + rng.NormFloat64()*0.01,
			}
		}
		out[i] = tr
	}
	return out
}

// ULM returns uniform-linear-motion traces: constant velocity between two
// random endpoints. Smooth but unrealistically regular.
func ULM(n int, seed int64) []geom.Trajectory {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Trajectory, n)
	for i := range out {
		a := geom.Point{X: rng.NormFloat64() * 1.5, Y: rng.NormFloat64() * 1.5}
		b := geom.Point{X: rng.NormFloat64() * 1.5, Y: rng.NormFloat64() * 1.5}
		tr := make(geom.Trajectory, TraceLen)
		for j := 0; j < TraceLen; j++ {
			tr[j] = geom.Lerp(a, b, float64(j)/float64(TraceLen-1))
		}
		out[i] = tr
	}
	return out
}

// RandomWalk returns white-noise random motion: independent steps with no
// smoothness or continuity. Easily flagged as noise by an eavesdropper.
func RandomWalk(n int, seed int64) []geom.Trajectory {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Trajectory, n)
	for i := range out {
		tr := make(geom.Trajectory, TraceLen)
		var p geom.Point
		for j := 0; j < TraceLen; j++ {
			p = p.Add(geom.Point{X: rng.NormFloat64() * 0.35, Y: rng.NormFloat64() * 0.35})
			tr[j] = p
		}
		out[i] = tr
	}
	return out
}
