// Package motion generates the human-trajectory corpus the paper collected
// from volunteers (7000 traces of ~10 s, 50 2-D points each, §6) and the
// baseline trajectory families of Fig. 12 (single repeated trajectory,
// uniform linear motion, random motion).
//
// The generative model is a waypoint walker with Ornstein–Uhlenbeck velocity
// dynamics: people head toward successive goals with smooth accelerations,
// occasionally pausing — which yields the smoothness and continuity the
// paper identifies as the signature of real human motion.
package motion

import (
	"math"
	"math/rand"

	"rfprotect/internal/geom"
)

// TraceLen is the number of points per trace, matching the paper's dataset.
const TraceLen = 50

// SampleRate is the trace sample rate in Hz (50 points over ~10 s).
const SampleRate = 5.0

// NumClasses is the number of range-of-motion classes (§6).
const NumClasses = 5

// classBounds are the range-of-motion thresholds (meters) separating the
// five classes: [0,1), [1,2), [2,3.5), [3.5,5.5), [5.5,∞).
var classBounds = [NumClasses - 1]float64{1.0, 2.0, 3.5, 5.5}

// Classify returns the range class (0..4) of a trajectory from its range of
// motion, the paper's coarse label fed to the conditional GAN.
func Classify(t geom.Trajectory) int {
	r := t.RangeOfMotion()
	for i, b := range classBounds {
		if r < b {
			return i
		}
	}
	return NumClasses - 1
}

// Config tunes the human walker.
type Config struct {
	Speed        float64 // preferred walking speed in m/s
	SpeedJitter  float64 // per-trace speed variation
	Relax        float64 // velocity relaxation rate (1/s); higher = snappier
	PauseProb    float64 // probability per waypoint of pausing
	PauseMean    float64 // mean pause duration in seconds
	AreaRadius   float64 // radius of the roaming area in meters
	WaypointStop float64 // distance at which a waypoint counts as reached
}

// DefaultConfig returns typical indoor ambling/walking behavior.
func DefaultConfig() Config {
	return Config{
		Speed:        1.0,
		SpeedJitter:  0.4,
		Relax:        1.5,
		PauseProb:    0.25,
		PauseMean:    1.0,
		AreaRadius:   3.0,
		WaypointStop: 0.25,
	}
}

// Generator produces human-like trajectories.
type Generator struct {
	cfg Config
	rng *rand.Rand
}

// NewGenerator returns a generator seeded deterministically.
func NewGenerator(cfg Config, seed int64) *Generator {
	return &Generator{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Trace generates one TraceLen-point trajectory starting at the origin.
// The walker roams an area whose radius is drawn per trace, which spreads
// traces across all five range classes.
func (g *Generator) Trace() geom.Trajectory {
	cfg := g.cfg
	// Per-trace personality: speed and roaming radius.
	speed := cfg.Speed + cfg.SpeedJitter*g.rng.NormFloat64()
	if speed < 0.15 {
		speed = 0.15
	}
	area := cfg.AreaRadius * (0.15 + 1.7*g.rng.Float64())
	dt := 1 / SampleRate
	pos := geom.Point{}
	var vel geom.Point
	goal := g.randomGoal(area)
	pauseLeft := 0.0
	out := make(geom.Trajectory, TraceLen)
	out[0] = pos
	for i := 1; i < TraceLen; i++ {
		if pauseLeft > 0 {
			pauseLeft -= dt
			// Small sway while paused.
			pos = pos.Add(geom.Point{X: g.rng.NormFloat64() * 0.005, Y: g.rng.NormFloat64() * 0.005})
			vel = geom.Point{}
			out[i] = pos
			continue
		}
		if pos.Dist(goal) < cfg.WaypointStop {
			goal = g.randomGoal(area)
			if g.rng.Float64() < cfg.PauseProb {
				pauseLeft = cfg.PauseMean * (0.5 + g.rng.Float64())
			}
		}
		// OU relaxation toward the goal direction at preferred speed.
		dir := goal.Sub(pos)
		if n := dir.Norm(); n > 1e-9 {
			dir = dir.Scale(1 / n)
		}
		want := dir.Scale(speed)
		vel = vel.Add(want.Sub(vel).Scale(cfg.Relax * dt))
		// Smooth stochastic steering.
		vel = vel.Add(geom.Point{X: g.rng.NormFloat64(), Y: g.rng.NormFloat64()}.Scale(0.08 * math.Sqrt(dt)))
		pos = pos.Add(vel.Scale(dt))
		out[i] = pos
	}
	return out
}

func (g *Generator) randomGoal(area float64) geom.Point {
	a := g.rng.Float64() * 2 * math.Pi
	r := area * math.Sqrt(g.rng.Float64())
	return geom.Point{X: r * math.Cos(a), Y: r * math.Sin(a)}
}

// Dataset is a labeled trajectory corpus.
type Dataset struct {
	Traces []geom.Trajectory
	Labels []int
}

// Generate produces n traces with range-class labels — the stand-in for the
// paper's 7000-trace office corpus.
func Generate(n int, seed int64) Dataset {
	g := NewGenerator(DefaultConfig(), seed)
	ds := Dataset{
		Traces: make([]geom.Trajectory, n),
		Labels: make([]int, n),
	}
	for i := 0; i < n; i++ {
		tr := g.Trace()
		ds.Traces[i] = tr
		ds.Labels[i] = Classify(tr)
	}
	return ds
}

// ByClass groups trace indices by label.
func (d Dataset) ByClass() [NumClasses][]int {
	var out [NumClasses][]int
	for i, l := range d.Labels {
		if l >= 0 && l < NumClasses {
			out[l] = append(out[l], i)
		}
	}
	return out
}

// Split partitions the dataset into two halves deterministically
// (even/odd), used to compute the real-vs-real FID normalizer.
func (d Dataset) Split() (a, b Dataset) {
	for i := range d.Traces {
		if i%2 == 0 {
			a.Traces = append(a.Traces, d.Traces[i])
			a.Labels = append(a.Labels, d.Labels[i])
		} else {
			b.Traces = append(b.Traces, d.Traces[i])
			b.Labels = append(b.Labels, d.Labels[i])
		}
	}
	return a, b
}
