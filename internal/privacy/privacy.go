// Package privacy implements the information-theoretic analysis of §7: with
// X ~ Bin(N, p) real occupants and Y ~ Bin(M, q) RF-Protect phantoms, the
// eavesdropper observes Z = X + Y, and the leakage about the true occupancy
// distribution is the mutual information I(X; Z) of Eq. 5/6. The package
// also covers the instance-level guarantees: occupancy always reads
// positive, and a breathing trace is real with probability N/(M+N).
package privacy

import (
	"fmt"
	"math"
)

// BinomialPMF returns P(K = k) for K ~ Bin(n, p).
func BinomialPMF(n int, p float64, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	// log C(n,k) via lgamma for robustness at larger n.
	lg := func(x float64) float64 { v, _ := math.Lgamma(x); return v }
	logC := lg(float64(n+1)) - lg(float64(k+1)) - lg(float64(n-k+1))
	return math.Exp(logC + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p))
}

// BinomialDist returns the full PMF vector of Bin(n, p), indices 0..n.
func BinomialDist(n int, p float64) []float64 {
	out := make([]float64, n+1)
	for k := 0; k <= n; k++ {
		out[k] = BinomialPMF(n, p, k)
	}
	return out
}

// Model is the occupancy model of §7.
type Model struct {
	N int     // maximum real occupancy
	P float64 // probability a single human is moving (paper uses 0.2)
	M int     // maximum number of phantoms (RF-Protect controls this)
	Q float64 // probability a single reflector spawns a phantom (controlled)
}

// Validate reports parameter errors.
func (m Model) Validate() error {
	switch {
	case m.N < 0 || m.M < 0:
		return fmt.Errorf("privacy: N=%d, M=%d must be non-negative", m.N, m.M)
	case m.P < 0 || m.P > 1:
		return fmt.Errorf("privacy: P=%v out of [0,1]", m.P)
	case m.Q < 0 || m.Q > 1:
		return fmt.Errorf("privacy: Q=%v out of [0,1]", m.Q)
	}
	return nil
}

// MutualInformation computes I(X; Z) in bits via Eq. 6. Since X and Y are
// independent and Z = X + Y, P(Z=z | X=x) = P(Y = z-x).
func (m Model) MutualInformation() float64 {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	px := BinomialDist(m.N, m.P)
	py := BinomialDist(m.M, m.Q)
	// Marginal P(Z=z) = Σ_x P(X=x)·P(Y=z-x).
	pz := make([]float64, m.N+m.M+1)
	for x := 0; x <= m.N; x++ {
		for y := 0; y <= m.M; y++ {
			pz[x+y] += px[x] * py[y]
		}
	}
	mi := 0.0
	for x := 0; x <= m.N; x++ {
		if px[x] == 0 {
			continue
		}
		for y := 0; y <= m.M; y++ {
			joint := px[x] * py[y]
			if joint == 0 {
				continue
			}
			z := x + y
			mi += joint * math.Log2(py[y]/pz[z])
		}
	}
	if mi < 0 {
		mi = 0 // round-off guard: MI is non-negative
	}
	return mi
}

// EntropyX returns H(X) in bits, the upper bound of I(X; Z).
func (m Model) EntropyX() float64 {
	h := 0.0
	for _, p := range BinomialDist(m.N, m.P) {
		if p > 0 {
			h -= p * math.Log2(p)
		}
	}
	return h
}

// MISweep evaluates I(X; Z) across a grid of q values, reproducing one
// curve of Fig. 7.
func (m Model) MISweep(qs []float64) []float64 {
	out := make([]float64, len(qs))
	for i, q := range qs {
		mm := m
		mm.Q = q
		out[i] = mm.MutualInformation()
	}
	return out
}

// BreathingGuessProbability returns the probability a random guess picks a
// real breathing trace among n real and m fake ones (§7, Breath
// Monitoring): n/(m+n).
func BreathingGuessProbability(n, m int) float64 {
	if n+m == 0 {
		return 0
	}
	return float64(n) / float64(n+m)
}

// OccupancyReadsPositive reports what an eavesdropper's "is someone home"
// query returns when there are realHumans occupants and ghostActive
// phantoms — with RF-Protect spoofing, the answer is always yes (§7).
func OccupancyReadsPositive(realHumans int, ghostActive bool) bool {
	return realHumans > 0 || ghostActive
}

// ObservedCount is what occupant counting reports: real plus fake.
func ObservedCount(realHumans, ghosts int) int { return realHumans + ghosts }
