package privacy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, n := range []int{0, 1, 4, 10, 30} {
		for _, p := range []float64{0, 0.2, 0.5, 0.9, 1} {
			sum := 0.0
			for _, v := range BinomialDist(n, p) {
				sum += v
			}
			if math.Abs(sum-1) > 1e-10 {
				t.Fatalf("Bin(%d,%v) sums to %v", n, p, sum)
			}
		}
	}
}

func TestBinomialPMFKnownValues(t *testing.T) {
	if got := BinomialPMF(4, 0.5, 2); math.Abs(got-0.375) > 1e-12 {
		t.Fatalf("Bin(4,0.5) at 2 = %v", got)
	}
	if BinomialPMF(4, 0.5, -1) != 0 || BinomialPMF(4, 0.5, 5) != 0 {
		t.Fatal("out of support should be 0")
	}
	if BinomialPMF(3, 0, 0) != 1 || BinomialPMF(3, 1, 3) != 1 {
		t.Fatal("degenerate p")
	}
}

func TestMutualInformationEndpoints(t *testing.T) {
	// Fig. 7: q=0 (no phantoms) and q=1 (reflectors always on) both leak
	// everything: I(X;Z) = H(X). q near 0.5 leaks far less.
	m := Model{N: 4, P: 0.2, M: 4}
	hx := m.EntropyX()
	m.Q = 0
	if got := m.MutualInformation(); math.Abs(got-hx) > 1e-9 {
		t.Fatalf("q=0: I=%v, want H(X)=%v", got, hx)
	}
	m.Q = 1
	if got := m.MutualInformation(); math.Abs(got-hx) > 1e-9 {
		t.Fatalf("q=1: I=%v, want H(X)=%v", got, hx)
	}
	m.Q = 0.5
	mid := m.MutualInformation()
	if mid > 0.6*hx {
		t.Fatalf("q=0.5: I=%v not clearly below H(X)=%v", mid, hx)
	}
}

func TestMutualInformationDecreasesWithM(t *testing.T) {
	// Fig. 7's second claim: more spoofable phantoms, less leakage.
	prev := math.Inf(1)
	for _, M := range []int{2, 4, 6, 8} {
		m := Model{N: 4, P: 0.2, M: M, Q: 0.5}
		mi := m.MutualInformation()
		if mi >= prev {
			t.Fatalf("I(X;Z) did not decrease: M=%d gives %v (prev %v)", M, mi, prev)
		}
		prev = mi
	}
}

func TestMutualInformationBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := seed
		if r < 0 {
			r = -r
		}
		m := Model{
			N: int(r%5) + 1,
			P: float64((r/5)%11) / 10,
			M: int((r/55)%5) + 1,
			Q: float64((r/275)%11) / 10,
		}
		mi := m.MutualInformation()
		return mi >= 0 && mi <= m.EntropyX()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMISweepMatchesPointwise(t *testing.T) {
	m := Model{N: 4, P: 0.2, M: 6}
	qs := []float64{0, 0.25, 0.5, 0.75, 1}
	sweep := m.MISweep(qs)
	for i, q := range qs {
		mm := m
		mm.Q = q
		if sweep[i] != mm.MutualInformation() {
			t.Fatal("sweep disagrees with pointwise")
		}
	}
}

func TestModelValidate(t *testing.T) {
	bad := []Model{
		{N: -1}, {M: -1}, {P: -0.1}, {P: 1.1}, {Q: 2},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := (Model{N: 4, P: 0.2, M: 4, Q: 0.5}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBreathingGuessProbability(t *testing.T) {
	if got := BreathingGuessProbability(1, 3); got != 0.25 {
		t.Fatalf("got %v", got)
	}
	if got := BreathingGuessProbability(0, 0); got != 0 {
		t.Fatalf("empty: %v", got)
	}
	if got := BreathingGuessProbability(2, 0); got != 1 {
		t.Fatalf("no fakes: %v", got)
	}
}

func TestOccupancy(t *testing.T) {
	if !OccupancyReadsPositive(0, true) {
		t.Fatal("ghost should make home look occupied")
	}
	if OccupancyReadsPositive(0, false) {
		t.Fatal("empty home without ghosts")
	}
	if ObservedCount(2, 2) != 4 {
		t.Fatal("count")
	}
}
