package dsp

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanVarianceMedian(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	if Mean(x) != 3 {
		t.Fatalf("Mean = %v", Mean(x))
	}
	if Variance(x) != 2 {
		t.Fatalf("Variance = %v", Variance(x))
	}
	if Median(x) != 3 {
		t.Fatalf("Median = %v", Median(x))
	}
	if Median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Fatalf("even Median = %v", Median([]float64{1, 2, 3, 4}))
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty-slice stats should be 0")
	}
	if !math.IsNaN(Median(nil)) {
		t.Fatal("Median(nil) should be NaN")
	}
}

func TestPercentileBounds(t *testing.T) {
	x := []float64{9, 1, 5}
	if Percentile(x, 0) != 1 || Percentile(x, 100) != 9 {
		t.Fatal("percentile bounds wrong")
	}
	// Input must not be reordered.
	if x[0] != 9 || x[1] != 1 || x[2] != 5 {
		t.Fatal("Percentile mutated input")
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 10
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := Percentile(x, p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEmpiricalCDF(t *testing.T) {
	cdf := EmpiricalCDF([]float64{3, 1, 2})
	if len(cdf) != 3 {
		t.Fatalf("len = %d", len(cdf))
	}
	if cdf[0].Value != 1 || cdf[2].Value != 3 {
		t.Fatalf("values not sorted: %v", cdf)
	}
	if cdf[2].P != 1 {
		t.Fatalf("last P = %v", cdf[2].P)
	}
	if !sort.SliceIsSorted(cdf, func(i, j int) bool { return cdf[i].P < cdf[j].P }) {
		t.Fatal("CDF P not monotone")
	}
	if p := CDFAt([]float64{1, 2, 3, 4}, 2.5); p != 0.5 {
		t.Fatalf("CDFAt = %v", p)
	}
}

func TestMovingAverageConstant(t *testing.T) {
	x := []float64{5, 5, 5, 5, 5}
	y := MovingAverage(x, 3)
	for i, v := range y {
		if v != 5 {
			t.Fatalf("index %d: %v", i, v)
		}
	}
}

func TestMovingAverageSmooths(t *testing.T) {
	x := []float64{0, 0, 10, 0, 0}
	y := MovingAverage(x, 3)
	if math.Abs(y[2]-10.0/3) > 1e-12 {
		t.Fatalf("center = %v", y[2])
	}
}

func TestMedianFilterRejectsSpike(t *testing.T) {
	x := []float64{1, 1, 100, 1, 1}
	y := MedianFilter(x, 3)
	if y[2] != 1 {
		t.Fatalf("spike survived: %v", y)
	}
}

func TestExponentialSmoothing(t *testing.T) {
	x := []float64{0, 1, 1, 1}
	y := ExponentialSmoothing(x, 0.5)
	want := []float64{0, 0.5, 0.75, 0.875}
	for i := range want {
		if math.Abs(y[i]-want[i]) > 1e-12 {
			t.Fatalf("y = %v want %v", y, want)
		}
	}
	// alpha=1 is identity.
	z := ExponentialSmoothing(x, 1)
	for i := range x {
		if z[i] != x[i] {
			t.Fatal("alpha=1 should be identity")
		}
	}
}

func TestUnwrapLinearPhase(t *testing.T) {
	// A linearly increasing phase wrapped to (-pi, pi] must unwrap back to a line.
	n := 100
	truth := make([]float64, n)
	wrapped := make([]float64, n)
	for i := range truth {
		truth[i] = 0.4 * float64(i)
		wrapped[i] = WrapAngle(truth[i])
	}
	un := Unwrap(wrapped)
	for i := range un {
		if math.Abs(un[i]-truth[i]) > 1e-9 {
			t.Fatalf("index %d: got %v want %v", i, un[i], truth[i])
		}
	}
}

func TestWrapAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
	}
	for _, c := range cases {
		if got := WrapAngle(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("WrapAngle(%v) = %v want %v", c.in, got, c.want)
		}
	}
}

func TestDominantFrequency(t *testing.T) {
	const fs = 100.0
	const f0 = 7.3
	n := 512
	x := make([]float64, n)
	for i := range x {
		x[i] = 2 + math.Sin(2*math.Pi*f0*float64(i)/fs) // DC offset must be ignored
	}
	got := DominantFrequency(x, fs)
	if math.Abs(got-f0) > 0.2 {
		t.Fatalf("DominantFrequency = %v want %v", got, f0)
	}
}

func TestFindPeaks(t *testing.T) {
	x := []float64{0, 1, 0, 3, 0, 2, 0}
	peaks := FindPeaks(x, 0.5, 1)
	if len(peaks) != 3 {
		t.Fatalf("got %d peaks %v", len(peaks), peaks)
	}
	if peaks[0].Index != 3 || peaks[1].Index != 5 || peaks[2].Index != 1 {
		t.Fatalf("order wrong: %v", peaks)
	}
	// min distance suppresses both smaller neighbors (each within 2 samples).
	peaks = FindPeaks(x, 0.5, 3)
	if len(peaks) != 1 || peaks[0].Index != 3 {
		t.Fatalf("minDistance: %v", peaks)
	}
	// min distance 2 keeps the farther smaller peak.
	peaks = FindPeaks(x, 0.5, 2)
	if len(peaks) != 3 {
		t.Fatalf("minDistance=2: %v", peaks)
	}
	// threshold
	peaks = FindPeaks(x, 2.5, 1)
	if len(peaks) != 1 || peaks[0].Index != 3 {
		t.Fatalf("threshold: %v", peaks)
	}
}

func TestFindPeaksPlateau(t *testing.T) {
	x := []float64{0, 2, 2, 0}
	peaks := FindPeaks(x, 0, 1)
	if len(peaks) != 1 || peaks[0].Index != 1 {
		t.Fatalf("plateau: %v", peaks)
	}
}

func TestFindPeaks2D(t *testing.T) {
	g := []float64{
		0, 0, 0, 0,
		0, 5, 0, 0,
		0, 0, 0, 3,
		0, 0, 0, 0,
	}
	peaks := FindPeaks2D(g, 4, 4, 1, 1)
	if len(peaks) != 2 {
		t.Fatalf("peaks = %v", peaks)
	}
	if peaks[0].Row != 1 || peaks[0].Col != 1 || peaks[0].Value != 5 {
		t.Fatalf("strongest = %v", peaks[0])
	}
	if peaks[1].Row != 2 || peaks[1].Col != 3 {
		t.Fatalf("second = %v", peaks[1])
	}
	// Separation: minDistance 3 suppresses the weaker peak (Chebyshev dist 2).
	peaks = FindPeaks2D(g, 4, 4, 1, 3)
	if len(peaks) != 1 {
		t.Fatalf("separation: %v", peaks)
	}
}

func TestQuadraticInterp(t *testing.T) {
	// Parabola peaked exactly between samples 1 and 2 -> offset +0.5 at 1.
	x := []float64{0, 3, 3, 0}
	if off := QuadraticInterp(x, 1); math.Abs(off-0.5) > 1e-12 {
		t.Fatalf("off = %v", off)
	}
	if off := QuadraticInterp(x, 0); off != 0 {
		t.Fatalf("boundary off = %v", off)
	}
}

func TestWindowCoefficients(t *testing.T) {
	for _, w := range []Window{Rectangular, Hann, Hamming, Blackman} {
		c := w.Coefficients(64)
		if len(c) != 64 {
			t.Fatalf("%v: len %d", w, len(c))
		}
		for i, v := range c {
			if v < -1e-12 || v > 1+1e-12 {
				t.Fatalf("%v coeff[%d] = %v out of [0,1]", w, i, v)
			}
		}
	}
	// Hann endpoints are 0, Hamming endpoints are 0.08.
	h := Hann.Coefficients(9)
	if math.Abs(h[0]) > 1e-12 || math.Abs(h[8]) > 1e-12 {
		t.Fatal("hann endpoints nonzero")
	}
	hm := Hamming.Coefficients(9)
	if math.Abs(hm[0]-0.08) > 1e-12 {
		t.Fatalf("hamming endpoint %v", hm[0])
	}
	if Rectangular.String() != "rectangular" || Hann.String() != "hann" {
		t.Fatal("window names")
	}
	if got := Window(42).String(); got != "unknown" {
		t.Fatalf("unknown window name %q", got)
	}
	if Hann.Coefficients(0) != nil {
		t.Fatal("n=0 should be nil")
	}
	if c := Hann.Coefficients(1); len(c) != 1 || c[0] != 1 {
		t.Fatal("n=1 should be [1]")
	}
}
