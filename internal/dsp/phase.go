package dsp

import (
	"math"
	"math/cmplx"
)

// Phase returns the wrapped phase angle of each element of x in (-π, π].
func Phase(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = cmplx.Phase(v)
	}
	return out
}

// Unwrap removes 2π discontinuities from a wrapped phase series, returning a
// new slice.
func Unwrap(phase []float64) []float64 {
	out := make([]float64, len(phase))
	if len(phase) == 0 {
		return out
	}
	out[0] = phase[0]
	offset := 0.0
	for i := 1; i < len(phase); i++ {
		d := phase[i] - phase[i-1]
		if d > math.Pi {
			offset -= 2 * math.Pi
		} else if d < -math.Pi {
			offset += 2 * math.Pi
		}
		out[i] = phase[i] + offset
	}
	return out
}

// WrapAngle wraps an angle to (-π, π].
func WrapAngle(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	if a > math.Pi {
		a -= 2 * math.Pi
	} else if a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}

// DominantFrequency estimates the strongest nonzero frequency component of a
// real series sampled at fs Hz, using a windowed real-input FFT with
// quadratic peak interpolation. It returns 0 for series shorter than 4
// samples.
func DominantFrequency(x []float64, fs float64) float64 {
	n := len(x)
	if n < 4 {
		return 0
	}
	// Remove the mean so the DC bin does not dominate.
	m := Mean(x)
	c := make([]float64, n)
	for i, v := range x {
		c[i] = v - m
	}
	spec := WindowedRFFT(c, Hann.Coefficients(n))
	mag := Magnitude(spec[:n/2])
	best, bestVal := 0, 0.0
	for i := 1; i < len(mag); i++ {
		if mag[i] > bestVal {
			best, bestVal = i, mag[i]
		}
	}
	if best == 0 {
		return 0
	}
	off := QuadraticInterp(mag, best)
	return (float64(best) + off) * fs / float64(n)
}
