package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSym(rng *rand.Rand, n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func randSPD(rng *rand.Rand, n int) *Matrix {
	a := NewMatrix(n, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	return a.Mul(a.Transpose()) // A·Aᵀ is PSD; add εI to make it PD.
}

func maxAbsDiff(a, b *Matrix) float64 {
	d := 0.0
	for i := range a.Data {
		v := math.Abs(a.Data[i] - b.Data[i])
		if v > d {
			d = v
		}
	}
	return d
}

func TestMatrixMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randSym(rng, 5)
	if d := maxAbsDiff(a.Mul(Identity(5)), a); d > 1e-12 {
		t.Fatalf("A·I != A, diff %v", d)
	}
	if d := maxAbsDiff(Identity(5).Mul(a), a); d > 1e-12 {
		t.Fatalf("I·A != A, diff %v", d)
	}
}

func TestMatrixOps(t *testing.T) {
	a := NewMatrix(2, 3)
	copy(a.Data, []float64{1, 2, 3, 4, 5, 6})
	b := a.Transpose()
	if b.Rows != 3 || b.Cols != 2 || b.At(0, 1) != 4 || b.At(2, 0) != 3 {
		t.Fatalf("Transpose wrong: %+v", b)
	}
	p := a.Mul(b) // 2x2
	want := [][]float64{{14, 32}, {32, 77}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if p.At(i, j) != want[i][j] {
				t.Fatalf("Mul(%d,%d) = %v want %v", i, j, p.At(i, j), want[i][j])
			}
		}
	}
	if tr := p.Trace(); tr != 91 {
		t.Fatalf("Trace = %v want 91", tr)
	}
	s := a.Scale(2)
	if s.At(1, 2) != 12 {
		t.Fatalf("Scale wrong")
	}
	sum := a.Add(a).Sub(a)
	if d := maxAbsDiff(sum, a); d != 0 {
		t.Fatalf("Add/Sub roundtrip diff %v", d)
	}
}

func TestSymEigenReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 3, 5, 8, 12} {
		a := randSym(rng, n)
		w, v := SymEigen(a)
		d := NewMatrix(n, n)
		for i, lam := range w {
			d.Set(i, i, lam)
		}
		rec := v.Mul(d).Mul(v.Transpose())
		if diff := maxAbsDiff(rec, a); diff > 1e-8 {
			t.Fatalf("n=%d reconstruction diff %v", n, diff)
		}
		// Eigenvectors orthonormal: VᵀV = I.
		vtv := v.Transpose().Mul(v)
		if diff := maxAbsDiff(vtv, Identity(n)); diff > 1e-8 {
			t.Fatalf("n=%d VᵀV not identity, diff %v", n, diff)
		}
	}
}

func TestSymEigenKnownValues(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{2, 1, 1, 2})
	w, _ := SymEigen(a)
	lo, hi := math.Min(w[0], w[1]), math.Max(w[0], w[1])
	if math.Abs(lo-1) > 1e-10 || math.Abs(hi-3) > 1e-10 {
		t.Fatalf("eigenvalues %v, want [1 3]", w)
	}
}

func TestSqrtSPDProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		a := randSPD(rng, n)
		s := SqrtSPD(a)
		return maxAbsDiff(s.Mul(s), a) < 1e-7*(1+a.Trace())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCovarianceMatrix(t *testing.T) {
	xs := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	cov := CovarianceMatrix(xs)
	// Both dims have variance 4 (sample, n-1) and covariance 4.
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if math.Abs(cov.At(i, j)-4) > 1e-12 {
				t.Fatalf("cov(%d,%d) = %v want 4", i, j, cov.At(i, j))
			}
		}
	}
}

func TestMeanVec(t *testing.T) {
	xs := [][]float64{{1, 10}, {3, 20}}
	mu := MeanVec(xs)
	if mu[0] != 2 || mu[1] != 15 {
		t.Fatalf("MeanVec = %v", mu)
	}
}
