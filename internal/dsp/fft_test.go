package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqualC(a, b complex128, tol float64) bool {
	return cmplx.Abs(a-b) <= tol
}

// naiveDFT is the O(n^2) reference used to validate the FFT.
func naiveDFT(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var s complex128
		for t := 0; t < n; t++ {
			s += x[t] * cmplx.Exp(complex(0, sign*2*math.Pi*float64(k)*float64(t)/float64(n)))
		}
		if inverse {
			s /= complex(float64(n), 0)
		}
		out[k] = s
	}
	return out
}

func randComplex(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 31, 32, 100, 128, 257} {
		x := randComplex(rng, n)
		got := FFT(x)
		want := naiveDFT(x, false)
		for i := range got {
			if !almostEqualC(got[i], want[i], 1e-8*float64(n)) {
				t.Fatalf("n=%d bin %d: got %v want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 3, 8, 15, 64, 129} {
		x := randComplex(rng, n)
		y := IFFT(FFT(x))
		for i := range x {
			if !almostEqualC(x[i], y[i], 1e-9*float64(n)) {
				t.Fatalf("n=%d index %d: got %v want %v", n, i, y[i], x[i])
			}
		}
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 8 << (uint(r.Intn(3)))
		x := randComplex(r, n)
		y := randComplex(r, n)
		a := complex(r.NormFloat64(), r.NormFloat64())
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = a*x[i] + y[i]
		}
		fx, fy, fsum := FFT(x), FFT(y), FFT(sum)
		for i := range fsum {
			if !almostEqualC(fsum[i], a*fx[i]+fy[i], 1e-7) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFFTParsevalProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 16 + r.Intn(50) // exercises Bluestein path for non-powers of two
		x := randComplex(r, n)
		fx := FFT(x)
		var et, ef float64
		for i := range x {
			et += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
			ef += real(fx[i])*real(fx[i]) + imag(fx[i])*imag(fx[i])
		}
		return math.Abs(et-ef/float64(n)) < 1e-7*et
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTSingleToneBin(t *testing.T) {
	const n = 256
	const bin = 37
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*float64(bin)*float64(i)/float64(n)))
	}
	fx := FFT(x)
	mag := Magnitude(fx)
	best, bestVal := 0, 0.0
	for i, v := range mag {
		if v > bestVal {
			best, bestVal = i, v
		}
	}
	if best != bin {
		t.Fatalf("tone at bin %d detected at %d", bin, best)
	}
	if math.Abs(bestVal-float64(n)) > 1e-6 {
		t.Fatalf("tone magnitude %v, want %v", bestVal, n)
	}
}

func TestFFTShift(t *testing.T) {
	x := []complex128{0, 1, 2, 3}
	got := FFTShift(x)
	want := []complex128{2, 3, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	odd := []complex128{0, 1, 2, 3, 4}
	gotOdd := FFTShift(odd)
	wantOdd := []complex128{3, 4, 0, 1, 2}
	for i := range wantOdd {
		if gotOdd[i] != wantOdd[i] {
			t.Fatalf("odd: got %v want %v", gotOdd, wantOdd)
		}
	}
}

func TestBinFrequency(t *testing.T) {
	const n = 8
	const fs = 8000.0
	cases := []struct {
		k    int
		want float64
	}{
		{0, 0}, {1, 1000}, {4, 4000}, {5, -3000}, {7, -1000}, {-1, -1000}, {9, 1000},
	}
	for _, c := range cases {
		if got := BinFrequency(c.k, n, fs); got != c.want {
			t.Errorf("BinFrequency(%d) = %v, want %v", c.k, got, c.want)
		}
	}
}

func TestNextPowerOfTwo(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1023: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPowerOfTwo(in); got != want {
			t.Errorf("NextPowerOfTwo(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestMagnitudePowerDB(t *testing.T) {
	x := []complex128{3 + 4i, 0}
	if m := Magnitude(x); m[0] != 5 || m[1] != 0 {
		t.Fatalf("Magnitude = %v", m)
	}
	if p := Power(x); p[0] != 25 || p[1] != 0 {
		t.Fatalf("Power = %v", p)
	}
	db := PowerDB(x, 1e-12)
	if math.Abs(db[0]-10*math.Log10(25)) > 1e-9 {
		t.Fatalf("PowerDB[0] = %v", db[0])
	}
	if db[1] != 10*math.Log10(1e-12) {
		t.Fatalf("PowerDB[1] = %v", db[1])
	}
}

func BenchmarkFFT1024(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x := randComplex(rng, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFTInPlace(x)
	}
}
