package dsp

import "math"

// Window identifies a tapering function applied before an FFT to control
// spectral leakage.
type Window int

const (
	// Rectangular applies no tapering.
	Rectangular Window = iota
	// Hann is the raised-cosine window; first sidelobe -31.5 dB.
	Hann
	// Hamming is the optimized raised-cosine window; first sidelobe -42.7 dB.
	Hamming
	// Blackman is the three-term cosine window; first sidelobe -58 dB.
	Blackman
)

// String returns the conventional window name.
func (w Window) String() string {
	switch w {
	case Rectangular:
		return "rectangular"
	case Hann:
		return "hann"
	case Hamming:
		return "hamming"
	case Blackman:
		return "blackman"
	}
	return "unknown"
}

// Coefficients returns the n window coefficients. n <= 0 returns nil; n == 1
// returns [1].
func (w Window) Coefficients(n int) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	if n == 1 {
		out[0] = 1
		return out
	}
	den := float64(n - 1)
	for i := range out {
		x := float64(i) / den
		switch w {
		case Hann:
			out[i] = 0.5 - 0.5*math.Cos(2*math.Pi*x)
		case Hamming:
			out[i] = 0.54 - 0.46*math.Cos(2*math.Pi*x)
		case Blackman:
			out[i] = 0.42 - 0.5*math.Cos(2*math.Pi*x) + 0.08*math.Cos(4*math.Pi*x)
		default:
			out[i] = 1
		}
	}
	return out
}

// Apply multiplies x element-wise by the window in place and returns x.
// It panics if lengths differ from the window length implied by x.
func (w Window) Apply(x []complex128) []complex128 {
	c := w.Coefficients(len(x))
	for i := range x {
		x[i] *= complex(c[i], 0)
	}
	return x
}

// ApplyFloat multiplies x element-wise by the window in place and returns x.
func (w Window) ApplyFloat(x []float64) []float64 {
	c := w.Coefficients(len(x))
	for i := range x {
		x[i] *= c[i]
	}
	return x
}
