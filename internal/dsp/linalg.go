package dsp

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major float64 matrix. The zero value is unusable;
// construct with NewMatrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("dsp: NewMatrix(%d, %d)", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Add returns m + b as a new matrix. It panics on shape mismatch.
func (m *Matrix) Add(b *Matrix) *Matrix {
	m.mustSameShape(b)
	out := m.Clone()
	for i, v := range b.Data {
		out.Data[i] += v
	}
	return out
}

// Sub returns m - b as a new matrix. It panics on shape mismatch.
func (m *Matrix) Sub(b *Matrix) *Matrix {
	m.mustSameShape(b)
	out := m.Clone()
	for i, v := range b.Data {
		out.Data[i] -= v
	}
	return out
}

// Scale returns s*m as a new matrix.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// Mul returns the matrix product m·b. It panics if the inner dimensions
// disagree.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("dsp: Mul shape mismatch %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.Data[i*m.Cols+k]
			if a == 0 {
				continue
			}
			row := b.Data[k*b.Cols : (k+1)*b.Cols]
			outRow := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, v := range row {
				outRow[j] += a * v
			}
		}
	}
	return out
}

// Transpose returns mᵀ as a new matrix.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*out.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// Trace returns the sum of the diagonal. It panics for non-square matrices.
func (m *Matrix) Trace() float64 {
	if m.Rows != m.Cols {
		panic("dsp: Trace of non-square matrix")
	}
	s := 0.0
	for i := 0; i < m.Rows; i++ {
		s += m.Data[i*m.Cols+i]
	}
	return s
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

func (m *Matrix) mustSameShape(b *Matrix) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic(fmt.Sprintf("dsp: shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
}

// SymEigen computes the eigendecomposition of a symmetric matrix with the
// cyclic Jacobi method, returning eigenvalues and the matrix whose columns
// are the corresponding eigenvectors (A = V·diag(w)·Vᵀ). The input is not
// modified. It panics for non-square input.
func SymEigen(a *Matrix) (eigenvalues []float64, eigenvectors *Matrix) {
	if a.Rows != a.Cols {
		panic("dsp: SymEigen of non-square matrix")
	}
	n := a.Rows
	m := a.Clone()
	v := Identity(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m.At(i, j) * m.At(i, j)
			}
		}
		if off < 1e-24 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) < 1e-30 {
					continue
				}
				app, aqq := m.At(p, p), m.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// Rotate rows/columns p and q.
				for k := 0; k < n; k++ {
					mkp, mkq := m.At(k, p), m.At(k, q)
					m.Set(k, p, c*mkp-s*mkq)
					m.Set(k, q, s*mkp+c*mkq)
				}
				for k := 0; k < n; k++ {
					mpk, mqk := m.At(p, k), m.At(q, k)
					m.Set(p, k, c*mpk-s*mqk)
					m.Set(q, k, s*mpk+c*mqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		w[i] = m.At(i, i)
	}
	return w, v
}

// SqrtSPD returns the principal square root of a symmetric positive
// semi-definite matrix via its eigendecomposition. Small negative
// eigenvalues caused by round-off are clamped to zero.
func SqrtSPD(a *Matrix) *Matrix {
	w, v := SymEigen(a)
	n := a.Rows
	d := NewMatrix(n, n)
	for i, lam := range w {
		if lam < 0 {
			lam = 0
		}
		d.Set(i, i, math.Sqrt(lam))
	}
	return v.Mul(d).Mul(v.Transpose())
}
