package dsp

import (
	"context"

	"rfprotect/internal/parallel"
)

// ParallelMap applies transform to every row of batch across a worker pool
// (workers <= 0 means one per available CPU). Rows are independent: each
// worker touches only its own row, so the result is identical for any
// worker count, and with one worker the batch runs inline. It is the
// batch-processing primitive behind FFTEach/IFFTEach and is exported for
// callers with their own per-row kernels (windowing, beamforming rows,
// per-antenna pipelines).
func ParallelMap(batch [][]complex128, workers int, transform func([]complex128)) {
	parallel.ForEach(len(batch), workers, func(i int) { transform(batch[i]) })
}

// ParallelMapCtx is ParallelMap with cooperative cancellation: rows stop
// being claimed once ctx is done and the call returns ctx.Err(). Rows
// already transformed stay transformed — on cancellation the caller must
// discard the batch. A nil ctx is exactly ParallelMap.
func ParallelMapCtx(ctx context.Context, batch [][]complex128, workers int, transform func([]complex128)) error {
	return parallel.ForEachCtx(ctx, len(batch), workers, func(i int) { transform(batch[i]) })
}

// FFTEach transforms every row of batch in place, concurrently. Rows may
// have different lengths; each length's plan is built once and shared.
func FFTEach(batch [][]complex128, workers int) {
	warmPlans(batch)
	ParallelMap(batch, workers, FFTInPlace)
}

// FFTEachCtx is FFTEach with cooperative cancellation (see ParallelMapCtx
// for the partial-transform caveat). A nil ctx is exactly FFTEach.
func FFTEachCtx(ctx context.Context, batch [][]complex128, workers int) error {
	warmPlans(batch)
	return ParallelMapCtx(ctx, batch, workers, FFTInPlace)
}

// IFFTEach inverse-transforms every row of batch in place, concurrently,
// with 1/N normalization per row.
func IFFTEach(batch [][]complex128, workers int) {
	warmPlans(batch)
	ParallelMap(batch, workers, IFFTInPlace)
}

// warmPlans builds the FFT plan for every distinct row length up front so
// concurrent workers hit the cache instead of racing to build duplicate
// plans (safe either way, but wasted work).
func warmPlans(batch [][]complex128) {
	seen := map[int]bool{}
	for _, row := range batch {
		n := len(row)
		if n <= 1 || seen[n] {
			continue
		}
		seen[n] = true
		if IsPowerOfTwo(n) {
			planFor(n)
		} else {
			bluesteinPlanFor(n)
		}
	}
}
