package dsp

import "rfprotect/internal/parallel"

// ParallelMap applies transform to every row of batch across a worker pool
// (workers <= 0 means one per available CPU). Rows are independent: each
// worker touches only its own row, so the result is identical for any
// worker count, and with one worker the batch runs inline. It is the
// batch-processing primitive behind FFTEach/IFFTEach and is exported for
// callers with their own per-row kernels (windowing, beamforming rows,
// per-antenna pipelines).
func ParallelMap(batch [][]complex128, workers int, transform func([]complex128)) {
	parallel.ForEach(len(batch), workers, func(i int) { transform(batch[i]) })
}

// FFTEach transforms every row of batch in place, concurrently. Rows may
// have different lengths; each length's plan is built once and shared.
func FFTEach(batch [][]complex128, workers int) {
	warmPlans(batch)
	ParallelMap(batch, workers, FFTInPlace)
}

// IFFTEach inverse-transforms every row of batch in place, concurrently,
// with 1/N normalization per row.
func IFFTEach(batch [][]complex128, workers int) {
	warmPlans(batch)
	ParallelMap(batch, workers, IFFTInPlace)
}

// warmPlans builds the FFT plan for every distinct row length up front so
// concurrent workers hit the cache instead of racing to build duplicate
// plans (safe either way, but wasted work).
func warmPlans(batch [][]complex128) {
	seen := map[int]bool{}
	for _, row := range batch {
		n := len(row)
		if n <= 1 || seen[n] {
			continue
		}
		seen[n] = true
		if IsPowerOfTwo(n) {
			planFor(n)
		} else {
			bluesteinPlanFor(n)
		}
	}
}
