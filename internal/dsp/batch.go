package dsp

import (
	"context"

	"rfprotect/internal/parallel"
)

// ParallelMap applies transform to every row of batch across a worker pool
// (workers <= 0 means one per available CPU). Rows are independent: each
// worker touches only its own row, so the result is identical for any
// worker count, and with one worker the batch runs inline. It is the
// batch-processing primitive behind FFTEach/IFFTEach and is exported for
// callers with their own per-row kernels (windowing, beamforming rows,
// per-antenna pipelines).
func ParallelMap(batch [][]complex128, workers int, transform func([]complex128)) {
	parallel.ForEach(len(batch), workers, func(i int) { transform(batch[i]) })
}

// ParallelMapCtx is ParallelMap with cooperative cancellation: rows stop
// being claimed once ctx is done and the call returns ctx.Err(). Rows
// already transformed stay transformed — on cancellation the caller must
// discard the batch. A nil ctx is exactly ParallelMap.
func ParallelMapCtx(ctx context.Context, batch [][]complex128, workers int, transform func([]complex128)) error {
	return parallel.ForEachCtx(ctx, len(batch), workers, func(i int) { transform(batch[i]) })
}

// FFTEach transforms every row of batch in place, concurrently. Rows may
// have different lengths; each length's plan is built once and shared.
func FFTEach(batch [][]complex128, workers int) {
	warmPlans(batch)
	ParallelMap(batch, workers, FFTInPlace)
}

// FFTEachCtx is FFTEach with cooperative cancellation (see ParallelMapCtx
// for the partial-transform caveat). A nil ctx is exactly FFTEach.
func FFTEachCtx(ctx context.Context, batch [][]complex128, workers int) error {
	warmPlans(batch)
	return ParallelMapCtx(ctx, batch, workers, FFTInPlace)
}

// IFFTEach inverse-transforms every row of batch in place, concurrently,
// with 1/N normalization per row.
func IFFTEach(batch [][]complex128, workers int) {
	warmPlans(batch)
	ParallelMap(batch, workers, IFFTInPlace)
}

// SlowTimeFFT computes the slow-time (cross-row) FFT of a burst of spectra:
// rows[k] is the fast-time spectrum of chirp k, and the result's cols[r] is
// the windowed FFT across chirps of range bin r, for r in [0, bins). This is
// the second half of range–Doppler processing — rows come out of FFTEach,
// columns go in here — factored out so every Doppler consumer shares the
// cached plans and the per-bin fan-out.
//
// Each output column is an independent work item writing only its own slice,
// so the result is bit-identical for any worker count (workers <= 0 means
// one per available CPU). win is applied along slow time before the
// transform; a nil win means rectangular. A nil ctx never cancels; once ctx
// is done the fan-out stops and the partially filled result is discarded
// with ctx.Err().
func SlowTimeFFT(ctx context.Context, rows [][]complex128, bins int, win []float64, workers int) ([][]complex128, error) {
	nd := len(rows)
	if nd == 0 || bins <= 0 {
		return nil, nil
	}
	if IsPowerOfTwo(nd) {
		planFor(nd)
	} else if nd > 1 {
		bluesteinPlanFor(nd)
	}
	cols := make([][]complex128, bins)
	backing := make([]complex128, bins*nd)
	for r := range cols {
		cols[r], backing = backing[:nd], backing[nd:]
	}
	err := parallel.ForEachCtx(ctx, bins, workers, func(r int) {
		col := cols[r]
		for k := 0; k < nd; k++ {
			if win != nil {
				col[k] = rows[k][r] * complex(win[k], 0)
			} else {
				col[k] = rows[k][r]
			}
		}
		FFTInPlace(col)
	})
	if err != nil {
		return nil, err
	}
	return cols, nil
}

// warmPlans builds the FFT plan for every distinct row length up front so
// concurrent workers hit the cache instead of racing to build duplicate
// plans (safe either way, but wasted work).
func warmPlans(batch [][]complex128) {
	seen := map[int]bool{}
	for _, row := range batch {
		n := len(row)
		if n <= 1 || seen[n] {
			continue
		}
		seen[n] = true
		if IsPowerOfTwo(n) {
			planFor(n)
		} else {
			bluesteinPlanFor(n)
		}
	}
}
