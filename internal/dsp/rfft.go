package dsp

import (
	"math"
	"math/cmplx"
	"sync"
)

// This file implements the real-input DFT. A real signal's spectrum is
// conjugate-symmetric — X[n-k] = conj(X[k]) — so only the first n/2+1 bins
// carry information. For power-of-two lengths the transform runs a single
// complex FFT of HALF the length: the even/odd samples are packed as
// z[k] = x[2k] + i·x[2k+1], transformed, and the two interleaved real
// spectra are separated and recombined with one unpack pass. Odd and
// Bluestein lengths fall back to widening the input into pooled complex
// scratch and keeping the first half of the full transform.

// RFFTLen returns the number of meaningful spectrum bins of a real-input
// transform of length n: n/2 + 1 (the non-negative frequencies; the rest of
// the spectrum is their conjugate mirror).
func RFFTLen(n int) int { return n/2 + 1 }

// rfftPlan caches the size-dependent pieces of one real-input transform
// length: the unpack twiddles e^{-2πik/n} for the packed fast path, plus a
// pooled scratch free list (length n/2 packed buffers on the fast path, or
// length-n widening buffers on the fallback). Like the other plan pools the
// free list is mutex-guarded, never emptied by the GC, so warmed-up callers
// see a deterministic zero allocs/op.
type rfftPlan struct {
	n    int
	pack int          // scratch length: n/2 on the packed fast path, n on the fallback
	tw   []complex128 // unpack twiddles e^{-2πik/n}, k = 0..n/2; nil selects the fallback

	mu      sync.Mutex
	scratch [][]complex128
}

var rfftPlans = map[int]*rfftPlan{}

// rfftPlanFor returns the cached real-input plan for length n, building it
// on first use under the same build-outside-the-lock discipline as planFor.
func rfftPlanFor(n int) *rfftPlan {
	planMu.RLock()
	p := rfftPlans[n]
	planMu.RUnlock()
	if p != nil {
		return p
	}
	p = newRFFTPlan(n)
	planMu.Lock()
	if q, ok := rfftPlans[n]; ok {
		p = q
	} else {
		rfftPlans[n] = p
	}
	planMu.Unlock()
	return p
}

func newRFFTPlan(n int) *rfftPlan {
	p := &rfftPlan{n: n, pack: n}
	if IsPowerOfTwo(n) && n >= 2 {
		p.pack = n / 2
		p.tw = make([]complex128, n/2+1)
		for k := range p.tw {
			p.tw[k] = cmplx.Exp(complex(0, -2*math.Pi*float64(k)/float64(n)))
		}
		if p.pack > 1 {
			planFor(p.pack) // warm the half-length complex plan
		}
	} else if n > 1 {
		bluesteinPlanFor(n) // warm the widening fallback's plan
	}
	return p
}

func (p *rfftPlan) getScratch() []complex128 {
	p.mu.Lock()
	if k := len(p.scratch); k > 0 {
		a := p.scratch[k-1]
		p.scratch[k-1] = nil
		p.scratch = p.scratch[:k-1]
		p.mu.Unlock()
		return a
	}
	p.mu.Unlock()
	return make([]complex128, p.pack)
}

func (p *rfftPlan) putScratch(a []complex128) {
	p.mu.Lock()
	p.scratch = append(p.scratch, a)
	p.mu.Unlock()
}

// RFFT computes the DFT of the real signal x and returns the n/2+1
// non-negative-frequency bins as a new slice. It is the allocating wrapper
// over RFFTTo.
func RFFT(x []float64) []complex128 {
	return RFFTTo(make([]complex128, RFFTLen(len(x))), x)
}

// RFFTTo computes the DFT of the real signal x into dst and returns dst.
// dst must have length RFFTLen(len(x)) = len(x)/2+1 (the call panics
// otherwise). Each returned bin matches the corresponding bin of the
// complex transform FFTTo applied to x widened to complex, up to
// floating-point rounding: power-of-two lengths use the half-length packed
// transform (different — cheaper — arithmetic, same spectrum), while other
// lengths widen internally and are bit-identical to the complex path.
// After the per-size plan is cached, RFFTTo performs no allocations.
func RFFTTo(dst []complex128, x []float64) []complex128 {
	if len(dst) != RFFTLen(len(x)) {
		panic("dsp: RFFTTo with mismatched lengths")
	}
	return rfftTo(dst, x, nil)
}

// WindowedRFFT computes the DFT of the element-wise product x·win and
// returns the half spectrum as a new slice. It is the allocating wrapper
// over WindowedRFFTTo.
func WindowedRFFT(x, win []float64) []complex128 {
	return WindowedRFFTTo(make([]complex128, RFFTLen(len(x))), x, win)
}

// WindowedRFFTTo computes the DFT of the element-wise product x·win into
// dst and returns dst, fusing the window multiply into the transform's pack
// (or widening) pass so the windowed samples are never materialized. win
// must have the same length as x and dst must have length RFFTLen(len(x)).
func WindowedRFFTTo(dst []complex128, x, win []float64) []complex128 {
	if len(win) != len(x) {
		panic("dsp: WindowedRFFTTo with mismatched window length")
	}
	if len(dst) != RFFTLen(len(x)) {
		panic("dsp: WindowedRFFTTo with mismatched lengths")
	}
	return rfftTo(dst, x, win)
}

// rfftTo is the shared kernel behind RFFTTo and WindowedRFFTTo; a nil win
// selects the unwindowed transform.
func rfftTo(dst []complex128, x, win []float64) []complex128 {
	n := len(x)
	switch n {
	case 0:
		dst[0] = 0
		return dst
	case 1:
		if win != nil {
			dst[0] = complex(x[0]*win[0], 0)
		} else {
			dst[0] = complex(x[0], 0)
		}
		return dst
	}
	p := rfftPlanFor(n)
	if p.tw == nil {
		// Fallback (odd / Bluestein lengths): widen into pooled complex
		// scratch, run the full transform, keep the half spectrum.
		buf := p.getScratch()
		if win != nil {
			for i, v := range x {
				buf[i] = complex(v*win[i], 0)
			}
		} else {
			for i, v := range x {
				buf[i] = complex(v, 0)
			}
		}
		fftInPlace(buf, false)
		copy(dst, buf[:n/2+1])
		p.putScratch(buf)
		return dst
	}

	// Fast path: pack even/odd samples into one half-length complex signal.
	n2 := n / 2
	z := p.getScratch()
	if win != nil {
		for k := 0; k < n2; k++ {
			z[k] = complex(x[2*k]*win[2*k], x[2*k+1]*win[2*k+1])
		}
	} else {
		for k := 0; k < n2; k++ {
			z[k] = complex(x[2*k], x[2*k+1])
		}
	}
	fftInPlace(z, false)

	// Unpack: with E/O the spectra of the even/odd sample streams,
	// Z[k] = E[k] + i·O[k], so conjugate symmetry separates them:
	//   E[k] = (Z[k] + conj(Z[n2-k]))/2
	//   O[k] = (Z[k] - conj(Z[n2-k]))/(2i)
	// and the full-length spectrum recombines as X[k] = E[k] + w^k·O[k]
	// with w = e^{-2πi/n}. Indices are taken mod n2 so k = 0 and k = n2
	// (the DC and Nyquist bins) reuse Z[0].
	for k := 0; k <= n2; k++ {
		i := k
		if i == n2 {
			i = 0
		}
		j := n2 - k
		if j == n2 {
			j = 0
		}
		zk, zc := z[i], z[j]
		er := 0.5 * (real(zk) + real(zc))
		ei := 0.5 * (imag(zk) - imag(zc))
		or := 0.5 * (imag(zk) + imag(zc))
		oi := 0.5 * (real(zc) - real(zk))
		w := p.tw[k]
		dst[k] = complex(er+real(w)*or-imag(w)*oi, ei+real(w)*oi+imag(w)*or)
	}
	p.putScratch(z)
	return dst
}
