package dsp

import "sort"

// Peak is a detected local maximum in a 1-D series.
type Peak struct {
	Index int     // sample index of the maximum
	Value float64 // value at the maximum
}

// FindPeaks returns local maxima of x whose value is at least minValue and
// that are separated from any larger already-accepted peak by at least
// minDistance samples. Peaks are returned sorted by descending value.
// Plateau maxima report their first index.
func FindPeaks(x []float64, minValue float64, minDistance int) []Peak {
	if minDistance < 1 {
		minDistance = 1
	}
	var cands []Peak
	n := len(x)
	for i := 0; i < n; i++ {
		v := x[i]
		if v < minValue {
			continue
		}
		// Require a strict rise into the peak; for plateaus this keeps only
		// the first index.
		if i > 0 && x[i-1] >= v {
			continue
		}
		if i+1 < n && x[i+1] > v {
			continue
		}
		cands = append(cands, Peak{Index: i, Value: v})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].Value != cands[b].Value {
			return cands[a].Value > cands[b].Value
		}
		return cands[a].Index < cands[b].Index
	})
	var out []Peak
	for _, c := range cands {
		ok := true
		for _, p := range out {
			d := c.Index - p.Index
			if d < 0 {
				d = -d
			}
			if d < minDistance {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, c)
		}
	}
	return out
}

// Peak2D is a detected local maximum in a 2-D grid.
type Peak2D struct {
	Row, Col int
	Value    float64
}

// FindPeaks2D returns local maxima of the rows×cols grid g (row-major) with
// value >= minValue, enforcing a Chebyshev separation of minDistance cells
// against larger accepted peaks. A cell is a local maximum if no 8-neighbor
// exceeds it.
func FindPeaks2D(g []float64, rows, cols int, minValue float64, minDistance int) []Peak2D {
	if minDistance < 1 {
		minDistance = 1
	}
	var cands []Peak2D
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := g[r*cols+c]
			if v < minValue {
				continue
			}
			isMax := true
			for dr := -1; dr <= 1 && isMax; dr++ {
				for dc := -1; dc <= 1; dc++ {
					if dr == 0 && dc == 0 {
						continue
					}
					nr, nc := r+dr, c+dc
					if nr < 0 || nr >= rows || nc < 0 || nc >= cols {
						continue
					}
					if g[nr*cols+nc] > v {
						isMax = false
						break
					}
				}
			}
			if isMax {
				cands = append(cands, Peak2D{Row: r, Col: c, Value: v})
			}
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].Value != cands[b].Value {
			return cands[a].Value > cands[b].Value
		}
		if cands[a].Row != cands[b].Row {
			return cands[a].Row < cands[b].Row
		}
		return cands[a].Col < cands[b].Col
	})
	var out []Peak2D
	for _, cd := range cands {
		ok := true
		for _, p := range out {
			dr := cd.Row - p.Row
			if dr < 0 {
				dr = -dr
			}
			dc := cd.Col - p.Col
			if dc < 0 {
				dc = -dc
			}
			cheb := dr
			if dc > cheb {
				cheb = dc
			}
			if cheb < minDistance {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, cd)
		}
	}
	return out
}

// QuadraticInterp refines the location of a peak at integer index i of x by
// fitting a parabola through (i-1, i, i+1). It returns the fractional index
// offset in [-0.5, 0.5]; boundary peaks return 0.
func QuadraticInterp(x []float64, i int) float64 {
	if i <= 0 || i >= len(x)-1 {
		return 0
	}
	a, b, c := x[i-1], x[i], x[i+1]
	den := a - 2*b + c
	if den == 0 {
		return 0
	}
	off := 0.5 * (a - c) / den
	if off > 0.5 {
		off = 0.5
	} else if off < -0.5 {
		off = -0.5
	}
	return off
}
