package dsp

import "sort"

// Peak is a detected local maximum in a 1-D series.
type Peak struct {
	Index int     // sample index of the maximum
	Value float64 // value at the maximum
}

// FindPeaks returns local maxima of x whose value is at least minValue and
// that are separated from any larger already-accepted peak by at least
// minDistance samples. Peaks are returned sorted by descending value.
// Plateau maxima report their first index.
func FindPeaks(x []float64, minValue float64, minDistance int) []Peak {
	if minDistance < 1 {
		minDistance = 1
	}
	var cands []Peak
	n := len(x)
	for i := 0; i < n; i++ {
		v := x[i]
		if v < minValue {
			continue
		}
		// Require a strict rise into the peak; for plateaus this keeps only
		// the first index.
		if i > 0 && x[i-1] >= v {
			continue
		}
		if i+1 < n && x[i+1] > v {
			continue
		}
		cands = append(cands, Peak{Index: i, Value: v})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].Value != cands[b].Value {
			return cands[a].Value > cands[b].Value
		}
		return cands[a].Index < cands[b].Index
	})
	var out []Peak
	for _, c := range cands {
		ok := true
		for _, p := range out {
			d := c.Index - p.Index
			if d < 0 {
				d = -d
			}
			if d < minDistance {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, c)
		}
	}
	return out
}

// Peak2D is a detected local maximum in a 2-D grid.
type Peak2D struct {
	Row, Col int
	Value    float64
}

// FindPeaks2D returns local maxima of the rows×cols grid g (row-major) with
// value >= minValue, enforcing a Chebyshev separation of minDistance cells
// against larger accepted peaks. A cell is a local maximum if no 8-neighbor
// exceeds it. It is the allocating convenience over Peak2DFinder.Find.
func FindPeaks2D(g []float64, rows, cols int, minValue float64, minDistance int) []Peak2D {
	var f Peak2DFinder
	return f.Find(g, rows, cols, minValue, minDistance)
}

// Peak2DFinder is reusable scratch for 2-D peak extraction: candidate and
// output buffers survive between Find calls, so a warmed-up finder performs
// no allocations. The zero value is ready to use. A finder is not safe for
// concurrent use; give each goroutine its own.
type Peak2DFinder struct {
	cands []Peak2D
	out   []Peak2D
}

// Peak2DFinder sorts its candidate buffer through sort.Interface on the
// finder pointer itself — the interface conversion of a pointer does not
// allocate, unlike boxing a slice or a sort.Slice closure. The comparator
// (value desc, then row asc, then col asc) is a total order over distinct
// grid cells, so the sorted order — and therefore Find's result — is unique
// and identical to what FindPeaks2D has always returned.

func (f *Peak2DFinder) Len() int      { return len(f.cands) }
func (f *Peak2DFinder) Swap(i, j int) { f.cands[i], f.cands[j] = f.cands[j], f.cands[i] }
func (f *Peak2DFinder) Less(i, j int) bool {
	a, b := &f.cands[i], &f.cands[j]
	if a.Value != b.Value {
		return a.Value > b.Value
	}
	if a.Row != b.Row {
		return a.Row < b.Row
	}
	return a.Col < b.Col
}

// Find runs the FindPeaks2D extraction using the finder's scratch. The
// returned slice aliases the finder and is valid until the next Find call;
// callers that keep peaks across calls must copy them out.
func (f *Peak2DFinder) Find(g []float64, rows, cols int, minValue float64, minDistance int) []Peak2D {
	if minDistance < 1 {
		minDistance = 1
	}
	cands := f.cands[:0]
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := g[r*cols+c]
			if v < minValue {
				continue
			}
			isMax := true
			for dr := -1; dr <= 1 && isMax; dr++ {
				for dc := -1; dc <= 1; dc++ {
					if dr == 0 && dc == 0 {
						continue
					}
					nr, nc := r+dr, c+dc
					if nr < 0 || nr >= rows || nc < 0 || nc >= cols {
						continue
					}
					if g[nr*cols+nc] > v {
						isMax = false
						break
					}
				}
			}
			if isMax {
				cands = append(cands, Peak2D{Row: r, Col: c, Value: v})
			}
		}
	}
	f.cands = cands
	sort.Sort(f)
	out := f.out[:0]
	for _, cd := range f.cands {
		ok := true
		for _, p := range out {
			dr := cd.Row - p.Row
			if dr < 0 {
				dr = -dr
			}
			dc := cd.Col - p.Col
			if dc < 0 {
				dc = -dc
			}
			cheb := dr
			if dc > cheb {
				cheb = dc
			}
			if cheb < minDistance {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, cd)
		}
	}
	f.out = out
	return out
}

// QuadraticInterp refines the location of a peak at integer index i of x by
// fitting a parabola through (i-1, i, i+1). It returns the fractional index
// offset in [-0.5, 0.5]; boundary peaks return 0.
func QuadraticInterp(x []float64, i int) float64 {
	if i <= 0 || i >= len(x)-1 {
		return 0
	}
	a, b, c := x[i-1], x[i], x[i+1]
	den := a - 2*b + c
	if den == 0 {
		return 0
	}
	off := 0.5 * (a - c) / den
	if off > 0.5 {
		off = 0.5
	} else if off < -0.5 {
		off = -0.5
	}
	return off
}
