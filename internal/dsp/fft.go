// Package dsp provides the signal-processing substrate used throughout the
// RF-Protect reproduction: FFTs, window functions, peak detection, smoothing,
// phase utilities, basic statistics, and the small dense-linear-algebra
// kernels (symmetric eigendecomposition, SPD matrix square root) needed by
// the FID metric.
//
// Everything operates on float64 / complex128 slices and is allocation-
// conscious: hot paths accept destination buffers where it matters.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// NextPowerOfTwo returns the smallest power of two >= n. It panics for n <= 0.
func NextPowerOfTwo(n int) int {
	if n <= 0 {
		panic("dsp: NextPowerOfTwo requires n > 0")
	}
	if IsPowerOfTwo(n) {
		return n
	}
	return 1 << bits.Len(uint(n))
}

// FFT computes the in-place-free discrete Fourier transform of x and returns
// a new slice. Power-of-two lengths use an iterative radix-2
// Cooley–Tukey; all other lengths use Bluestein's algorithm, so any length
// is supported. The zero-length input returns an empty slice.
func FFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	fftInPlace(out, false)
	return out
}

// IFFT computes the inverse DFT of x (with 1/N normalization) and returns a
// new slice.
func IFFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	fftInPlace(out, true)
	return out
}

// FFTInPlace transforms x in place. Non-power-of-two lengths still allocate
// scratch internally (Bluestein).
func FFTInPlace(x []complex128) { fftInPlace(x, false) }

// IFFTInPlace inverse-transforms x in place with 1/N normalization.
func IFFTInPlace(x []complex128) { fftInPlace(x, true) }

func fftInPlace(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	if IsPowerOfTwo(n) {
		radix2(x, inverse)
	} else {
		bluestein(x, inverse)
	}
	if inverse {
		inv := 1 / float64(n)
		for i := range x {
			x[i] *= complex(inv, 0)
		}
	}
}

// radix2 is an iterative decimation-in-time FFT for power-of-two lengths.
// When inverse is true the twiddle sign is flipped; normalization is left to
// the caller.
func radix2(x []complex128, inverse bool) {
	n := len(x)
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		wBase := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wBase
			}
		}
	}
}

// bluestein computes an arbitrary-length DFT as a convolution, using two
// power-of-two FFTs.
func bluestein(x []complex128, inverse bool) {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp: w[k] = exp(sign * i*pi*k^2/n)
	w := make([]complex128, n)
	for k := 0; k < n; k++ {
		// k^2 mod 2n avoids precision loss for large k.
		kk := (int64(k) * int64(k)) % int64(2*n)
		w[k] = cmplx.Exp(complex(0, sign*math.Pi*float64(kk)/float64(n)))
	}
	m := NextPowerOfTwo(2*n - 1)
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * w[k]
		b[k] = cmplx.Conj(w[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(w[k])
	}
	radix2(a, false)
	radix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	radix2(a, true)
	scale := complex(1/float64(m), 0)
	for k := 0; k < n; k++ {
		x[k] = a[k] * scale * w[k]
	}
}

// FFTShift rotates the spectrum so the zero-frequency bin is centered,
// returning a new slice (matching the conventional fftshift).
func FFTShift(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	half := (n + 1) / 2
	copy(out, x[half:])
	copy(out[n-half:], x[:half])
	return out
}

// Magnitude returns |x| element-wise.
func Magnitude(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = cmplx.Abs(v)
	}
	return out
}

// Power returns |x|^2 element-wise.
func Power(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = real(v)*real(v) + imag(v)*imag(v)
	}
	return out
}

// PowerDB returns 10*log10(|x|^2 + eps) element-wise. eps guards log(0).
func PowerDB(x []complex128, eps float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		p := real(v)*real(v) + imag(v)*imag(v)
		out[i] = 10 * math.Log10(p+eps)
	}
	return out
}

// BinFrequency returns the frequency (Hz) of FFT bin k for an N-point
// transform at sample rate fs, mapping bins above N/2 to negative
// frequencies.
func BinFrequency(k, n int, fs float64) float64 {
	if n <= 0 {
		panic(fmt.Sprintf("dsp: BinFrequency with n=%d", n))
	}
	k %= n
	if k < 0 {
		k += n
	}
	if k <= n/2 {
		return float64(k) * fs / float64(n)
	}
	return float64(k-n) * fs / float64(n)
}
