package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// NextPowerOfTwo returns the smallest power of two >= n. It panics for n <= 0.
func NextPowerOfTwo(n int) int {
	if n <= 0 {
		panic("dsp: NextPowerOfTwo requires n > 0")
	}
	if IsPowerOfTwo(n) {
		return n
	}
	return 1 << bits.Len(uint(n))
}

// FFT computes the in-place-free discrete Fourier transform of x and returns
// a new slice. Power-of-two lengths use an iterative radix-2
// Cooley–Tukey; all other lengths use Bluestein's algorithm, so any length
// is supported. The zero-length input returns an empty slice.
func FFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	fftInPlace(out, false)
	return out
}

// IFFT computes the inverse DFT of x (with 1/N normalization) and returns a
// new slice.
func IFFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	fftInPlace(out, true)
	return out
}

// FFTInPlace transforms x in place. Non-power-of-two lengths still allocate
// scratch internally (Bluestein).
func FFTInPlace(x []complex128) { fftInPlace(x, false) }

// IFFTInPlace inverse-transforms x in place with 1/N normalization.
func IFFTInPlace(x []complex128) { fftInPlace(x, true) }

func fftInPlace(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	if IsPowerOfTwo(n) {
		radix2(x, inverse)
	} else {
		bluestein(x, inverse)
	}
	if inverse {
		inv := 1 / float64(n)
		for i := range x {
			x[i] *= complex(inv, 0)
		}
	}
}

// radix2 is an iterative decimation-in-time FFT for power-of-two lengths,
// driven by the cached per-size plan (bit-reversal table plus twiddle
// tables). When inverse is true the conjugate twiddle table is used;
// normalization is left to the caller.
func radix2(x []complex128, inverse bool) {
	n := len(x)
	p := planFor(n)
	for i, j := range p.rev {
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	stages := p.fwd
	if inverse {
		stages = p.inv
	}
	s := 0
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		tw := stages[s]
		s++
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * tw[k]
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
}

// bluestein computes an arbitrary-length DFT as a convolution, using two
// power-of-two FFTs. The chirp and the convolution kernel's FFT come from
// the cached per-size plan; only the data-dependent transforms run here.
func bluestein(x []complex128, inverse bool) {
	n := len(x)
	p := bluesteinPlanFor(n)
	w, bfft := p.wFwd, p.bFwd
	if inverse {
		w, bfft = p.wInv, p.bInv
	}
	a := make([]complex128, p.m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * w[k]
	}
	radix2(a, false)
	for i := range a {
		a[i] *= bfft[i]
	}
	radix2(a, true)
	scale := complex(1/float64(p.m), 0)
	for k := 0; k < n; k++ {
		x[k] = a[k] * scale * w[k]
	}
}

// FFTShift rotates the spectrum so the zero-frequency bin is centered,
// returning a new slice (matching the conventional fftshift).
func FFTShift(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	half := (n + 1) / 2
	copy(out, x[half:])
	copy(out[n-half:], x[:half])
	return out
}

// Magnitude returns |x| element-wise.
func Magnitude(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = cmplx.Abs(v)
	}
	return out
}

// Power returns |x|^2 element-wise.
func Power(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = real(v)*real(v) + imag(v)*imag(v)
	}
	return out
}

// PowerDB returns 10*log10(|x|^2 + eps) element-wise. eps guards log(0).
func PowerDB(x []complex128, eps float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		p := real(v)*real(v) + imag(v)*imag(v)
		out[i] = 10 * math.Log10(p+eps)
	}
	return out
}

// BinFrequency returns the frequency (Hz) of FFT bin k for an N-point
// transform at sample rate fs, mapping bins above N/2 to negative
// frequencies.
func BinFrequency(k, n int, fs float64) float64 {
	if n <= 0 {
		panic(fmt.Sprintf("dsp: BinFrequency with n=%d", n))
	}
	k %= n
	if k < 0 {
		k += n
	}
	if k <= n/2 {
		return float64(k) * fs / float64(n)
	}
	return float64(k-n) * fs / float64(n)
}
