package dsp

import (
	"fmt"
	"math"
	"math/bits"
)

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// NextPowerOfTwo returns the smallest power of two >= n. It panics for n <= 0.
func NextPowerOfTwo(n int) int {
	if n <= 0 {
		panic("dsp: NextPowerOfTwo requires n > 0")
	}
	if IsPowerOfTwo(n) {
		return n
	}
	return 1 << bits.Len(uint(n))
}

// FFT computes the in-place-free discrete Fourier transform of x and returns
// a new slice. Power-of-two lengths use an iterative radix-2
// Cooley–Tukey; all other lengths use Bluestein's algorithm, so any length
// is supported. The zero-length input returns an empty slice. It is the
// allocating wrapper over FFTTo.
func FFT(x []complex128) []complex128 {
	return FFTTo(make([]complex128, len(x)), x)
}

// FFTTo computes the DFT of x into dst and returns dst: the
// destination-passing form of FFT for steady-state callers that reuse one
// output buffer across transforms. dst must have the same length as x (the
// call panics otherwise); dst may alias x, in which case the transform is
// in place. After the per-size plan is cached (first transform of a size),
// FFTTo performs no allocations for any length — Bluestein scratch is
// pooled per plan. Output is bit-identical to FFT.
func FFTTo(dst, x []complex128) []complex128 {
	if len(dst) != len(x) {
		panic("dsp: FFTTo with mismatched lengths")
	}
	copy(dst, x)
	fftInPlace(dst, false)
	return dst
}

// IFFT computes the inverse DFT of x (with 1/N normalization) and returns a
// new slice. It is the allocating wrapper over IFFTTo.
func IFFT(x []complex128) []complex128 {
	return IFFTTo(make([]complex128, len(x)), x)
}

// IFFTTo computes the inverse DFT of x into dst (with 1/N normalization)
// and returns dst, under the same length/aliasing/allocation contract as
// FFTTo.
func IFFTTo(dst, x []complex128) []complex128 {
	if len(dst) != len(x) {
		panic("dsp: IFFTTo with mismatched lengths")
	}
	copy(dst, x)
	fftInPlace(dst, true)
	return dst
}

// FFTInPlace transforms x in place. Non-power-of-two lengths draw their
// Bluestein scratch from a per-plan pool, so the steady state allocates
// nothing for any length.
func FFTInPlace(x []complex128) { fftInPlace(x, false) }

// IFFTInPlace inverse-transforms x in place with 1/N normalization.
func IFFTInPlace(x []complex128) { fftInPlace(x, true) }

func fftInPlace(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	if IsPowerOfTwo(n) {
		radix2(x, inverse)
	} else {
		bluestein(x, inverse)
	}
	if inverse {
		inv := 1 / float64(n)
		for i := range x {
			x[i] *= complex(inv, 0)
		}
	}
}

// radix2 is an iterative decimation-in-time FFT for power-of-two lengths,
// driven by the cached per-size plan (bit-reversal table plus twiddle
// tables). When inverse is true the conjugate twiddle table is used;
// normalization is left to the caller.
func radix2(x []complex128, inverse bool) {
	p := planFor(len(x))
	for i, j := range p.rev {
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	radix2Stages(x, p, inverse)
}

// radix2Stages runs the butterfly stages of a planned radix-2 transform over
// data that is already in bit-reversed order — the second half of radix2,
// split out so fused front ends (WindowedFFTTo, the real-input pack loop)
// can gather inputs straight into bit-reversed positions and skip the
// separate permutation pass. Size 8 — the slow-time length of the Doppler
// window — dispatches to a fully unrolled kernel that performs the identical
// butterflies on the identical twiddle tables, so the specialization changes
// cost, never bits.
func radix2Stages(x []complex128, p *fftPlan, inverse bool) {
	stages := p.fwd
	if inverse {
		stages = p.inv
	}
	if p.n == 8 {
		fft8(x, stages)
		return
	}
	n := p.n
	s := 0
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		tw := stages[s]
		s++
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * tw[k]
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
}

// fft8 is the unrolled size-8 stage kernel: the same butterflies radix2Stages
// would run, in the same order, reading the same plan twiddle tables — every
// multiplication is kept (including the trivial w⁰ ones) so the arithmetic,
// and therefore every output bit, matches the generic loop exactly.
func fft8(x []complex128, stages [][]complex128) {
	x = x[:8]
	t0, t1, t2 := stages[0], stages[1], stages[2]
	// Stage size 2: four butterflies, twiddle w⁰.
	w := t0[0]
	a := x[0]
	b := x[1] * w
	x[0], x[1] = a+b, a-b
	a = x[2]
	b = x[3] * w
	x[2], x[3] = a+b, a-b
	a = x[4]
	b = x[5] * w
	x[4], x[5] = a+b, a-b
	a = x[6]
	b = x[7] * w
	x[6], x[7] = a+b, a-b
	// Stage size 4: two blocks of two butterflies.
	w0, w1 := t1[0], t1[1]
	a = x[0]
	b = x[2] * w0
	x[0], x[2] = a+b, a-b
	a = x[1]
	b = x[3] * w1
	x[1], x[3] = a+b, a-b
	a = x[4]
	b = x[6] * w0
	x[4], x[6] = a+b, a-b
	a = x[5]
	b = x[7] * w1
	x[5], x[7] = a+b, a-b
	// Stage size 8: one block of four butterflies.
	w0, w1, w2, w3 := t2[0], t2[1], t2[2], t2[3]
	a = x[0]
	b = x[4] * w0
	x[0], x[4] = a+b, a-b
	a = x[1]
	b = x[5] * w1
	x[1], x[5] = a+b, a-b
	a = x[2]
	b = x[6] * w2
	x[2], x[6] = a+b, a-b
	a = x[3]
	b = x[7] * w3
	x[3], x[7] = a+b, a-b
}

// WindowedFFTTo computes the DFT of the element-wise product x·win into dst
// and returns dst, fusing the window multiply into the transform's first
// pass: for power-of-two lengths the windowed samples are gathered directly
// into bit-reversed order (the permutation is an involution, so the gather
// IS the swap pass) and only the butterfly stages run. The output is
// bit-identical to windowing into dst followed by FFTInPlace(dst) — the
// fusion removes a full pass over the data, not any arithmetic.
//
// dst and win must have the same length as x, and dst must not alias x (the
// gather reads x in permuted order while writing dst); violations panic.
func WindowedFFTTo(dst, x []complex128, win []float64) []complex128 {
	n := len(x)
	if len(dst) != n || len(win) != n {
		panic("dsp: WindowedFFTTo with mismatched lengths")
	}
	if n == 0 {
		return dst
	}
	if &dst[0] == &x[0] {
		panic("dsp: WindowedFFTTo with aliased dst")
	}
	if !IsPowerOfTwo(n) {
		for i, v := range x {
			dst[i] = v * complex(win[i], 0)
		}
		fftInPlace(dst, false)
		return dst
	}
	p := planFor(n)
	for i, j := range p.rev {
		dst[i] = x[j] * complex(win[j], 0)
	}
	radix2Stages(dst, p, false)
	return dst
}

// bluestein computes an arbitrary-length DFT as a convolution, using two
// power-of-two FFTs. The chirp and the convolution kernel's FFT come from
// the cached per-size plan; only the data-dependent transforms run here.
func bluestein(x []complex128, inverse bool) {
	n := len(x)
	p := bluesteinPlanFor(n)
	w, bfft := p.wFwd, p.bFwd
	if inverse {
		w, bfft = p.wInv, p.bInv
	}
	a := p.getScratch()
	defer p.putScratch(a)
	for k := 0; k < n; k++ {
		a[k] = x[k] * w[k]
	}
	for k := n; k < p.m; k++ {
		a[k] = 0
	}
	radix2(a, false)
	for i := range a {
		a[i] *= bfft[i]
	}
	radix2(a, true)
	scale := complex(1/float64(p.m), 0)
	for k := 0; k < n; k++ {
		x[k] = a[k] * scale * w[k]
	}
}

// FFTShift rotates the spectrum so the zero-frequency bin is centered,
// returning a new slice (matching the conventional fftshift). It is the
// allocating wrapper over FFTShiftTo.
func FFTShift(x []complex128) []complex128 {
	return FFTShiftTo(make([]complex128, len(x)), x)
}

// FFTShiftTo writes the fftshift of x into dst and returns dst. dst must
// have the same length as x and must not overlap it (the rotation reads
// every input after some outputs are written); both violations panic.
func FFTShiftTo(dst, x []complex128) []complex128 {
	n := len(x)
	if len(dst) != n {
		panic("dsp: FFTShiftTo with mismatched lengths")
	}
	if n == 0 {
		return dst
	}
	if &dst[0] == &x[0] {
		panic("dsp: FFTShiftTo with aliased dst")
	}
	half := (n + 1) / 2
	copy(dst, x[half:])
	copy(dst[n-half:], x[:half])
	return dst
}

// Magnitude returns |x| element-wise. It is the allocating wrapper over
// MagnitudeTo.
func Magnitude(x []complex128) []float64 {
	return MagnitudeTo(make([]float64, len(x)), x)
}

// MagnitudeTo writes |x| element-wise into dst and returns dst; dst must
// have the same length as x. The magnitude is computed with math.Hypot
// directly — the same overflow-safe kernel cmplx.Abs wraps — which keeps
// the hot loop free of the extra call layer.
func MagnitudeTo(dst []float64, x []complex128) []float64 {
	if len(dst) != len(x) {
		panic("dsp: MagnitudeTo with mismatched lengths")
	}
	for i, v := range x {
		dst[i] = math.Hypot(real(v), imag(v))
	}
	return dst
}

// Power returns |x|^2 element-wise. It is the allocating wrapper over
// PowerTo.
func Power(x []complex128) []float64 {
	return PowerTo(make([]float64, len(x)), x)
}

// PowerTo writes |x|^2 element-wise into dst and returns dst; dst must have
// the same length as x.
func PowerTo(dst []float64, x []complex128) []float64 {
	if len(dst) != len(x) {
		panic("dsp: PowerTo with mismatched lengths")
	}
	for i, v := range x {
		dst[i] = real(v)*real(v) + imag(v)*imag(v)
	}
	return dst
}

// PowerDB returns 10*log10(|x|^2 + eps) element-wise. eps guards log(0). It
// is the allocating wrapper over PowerDBTo.
func PowerDB(x []complex128, eps float64) []float64 {
	return PowerDBTo(make([]float64, len(x)), x, eps)
}

// PowerDBTo writes 10*log10(|x|^2 + eps) element-wise into dst and returns
// dst; dst must have the same length as x.
func PowerDBTo(dst []float64, x []complex128, eps float64) []float64 {
	if len(dst) != len(x) {
		panic("dsp: PowerDBTo with mismatched lengths")
	}
	for i, v := range x {
		p := real(v)*real(v) + imag(v)*imag(v)
		dst[i] = 10 * math.Log10(p+eps)
	}
	return dst
}

// BinFrequency returns the frequency (Hz) of FFT bin k for an N-point
// transform at sample rate fs, mapping bins above N/2 to negative
// frequencies.
func BinFrequency(k, n int, fs float64) float64 {
	if n <= 0 {
		panic(fmt.Sprintf("dsp: BinFrequency with n=%d", n))
	}
	k %= n
	if k < 0 {
		k += n
	}
	if k <= n/2 {
		return float64(k) * fs / float64(n)
	}
	return float64(k-n) * fs / float64(n)
}
