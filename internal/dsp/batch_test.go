package dsp

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
)

// naiveSlowTimeFFT is the O(n^2)-DFT reference: window each range bin's
// slow-time column, then transform it.
func naiveSlowTimeFFT(rows [][]complex128, bins int, win []float64) [][]complex128 {
	nd := len(rows)
	cols := make([][]complex128, bins)
	for r := range cols {
		col := make([]complex128, nd)
		for k := 0; k < nd; k++ {
			col[k] = rows[k][r]
			if win != nil {
				col[k] *= complex(win[k], 0)
			}
		}
		cols[r] = naiveDFT(col, false)
	}
	return cols
}

func randRows(rng *rand.Rand, nd, width int) [][]complex128 {
	rows := make([][]complex128, nd)
	for k := range rows {
		rows[k] = randComplex(rng, width)
	}
	return rows
}

// TestSlowTimeFFTMatchesNaive checks the batched per-bin transform against
// the naive reference, for power-of-two and Bluestein slow-time lengths,
// with and without a window, truncated to bins < row width.
func TestSlowTimeFFTMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, tc := range []struct {
		nd, width, bins int
		windowed        bool
	}{
		{8, 16, 16, false},
		{8, 16, 10, true}, // bins < width: trailing range bins dropped
		{7, 12, 12, true}, // non-power-of-two slow time (Bluestein)
		{1, 5, 5, false},  // single chirp
	} {
		rows := randRows(rng, tc.nd, tc.width)
		var win []float64
		if tc.windowed {
			win = Hann.Coefficients(tc.nd)
		}
		got, err := SlowTimeFFT(context.Background(), rows, tc.bins, win, 1)
		if err != nil {
			t.Fatal(err)
		}
		want := naiveSlowTimeFFT(rows, tc.bins, win)
		if len(got) != tc.bins {
			t.Fatalf("nd=%d bins=%d: got %d columns", tc.nd, tc.bins, len(got))
		}
		for r := range want {
			for k := range want[r] {
				if !almostEqualC(got[r][k], want[r][k], 1e-8*float64(tc.nd)) {
					t.Fatalf("nd=%d bins=%d windowed=%v: col %d bin %d: got %v want %v",
						tc.nd, tc.bins, tc.windowed, r, k, got[r][k], want[r][k])
				}
			}
		}
	}
}

// TestSlowTimeFFTWorkerIdentity: each output column is an independent write,
// so the result must be bit-identical for every worker count.
func TestSlowTimeFFTWorkerIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rows := randRows(rng, 16, 32)
	win := Hann.Coefficients(16)
	want, err := SlowTimeFFT(nil, rows, 32, win, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 8} {
		got, err := SlowTimeFFT(context.Background(), rows, 32, win, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: slow-time FFT not bit-identical to single worker", workers)
		}
	}
}

// TestSlowTimeFFTCancel: a pre-canceled ctx discards the batch and returns
// the ctx error.
func TestSlowTimeFFTCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rows := randRows(rng, 8, 64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got, err := SlowTimeFFT(ctx, rows, 64, nil, 2)
	if err != context.Canceled {
		t.Fatalf("SlowTimeFFT = %v, want context.Canceled", err)
	}
	if got != nil {
		t.Fatal("canceled SlowTimeFFT must not return a partial batch")
	}
}

// TestSlowTimeFFTDegenerate covers the empty-input contracts.
func TestSlowTimeFFTDegenerate(t *testing.T) {
	if got, err := SlowTimeFFT(nil, nil, 8, nil, 1); got != nil || err != nil {
		t.Fatalf("zero rows: got (%v, %v), want (nil, nil)", got, err)
	}
	rows := [][]complex128{{1, 2}, {3, 4}}
	if got, err := SlowTimeFFT(nil, rows, 0, nil, 1); got != nil || err != nil {
		t.Fatalf("zero bins: got (%v, %v), want (nil, nil)", got, err)
	}
}
