package dsp

import (
	"math/cmplx"
	"math/rand"
	"testing"
)

func randComplexSeed(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

// The destination-passing variants must be bit-identical to their
// allocating wrappers — the wrappers ARE the To-variants plus a make, so
// this pins the contract against refactors.
func TestToVariantsBitIdentical(t *testing.T) {
	for _, n := range []int{1, 2, 8, 13, 64, 100, 512} {
		x := randComplexSeed(n, int64(n))
		dst := make([]complex128, n)
		if got, want := FFTTo(dst, x), FFT(x); !equalC(got, want) {
			t.Errorf("n=%d: FFTTo differs from FFT", n)
		}
		if got, want := IFFTTo(dst, x), IFFT(x); !equalC(got, want) {
			t.Errorf("n=%d: IFFTTo differs from IFFT", n)
		}
		if got, want := FFTShiftTo(dst, x), FFTShift(x); !equalC(got, want) {
			t.Errorf("n=%d: FFTShiftTo differs from FFTShift", n)
		}
		fdst := make([]float64, n)
		if got, want := MagnitudeTo(fdst, x), Magnitude(x); !equalF(got, want) {
			t.Errorf("n=%d: MagnitudeTo differs from Magnitude", n)
		}
		if got, want := PowerTo(fdst, x), Power(x); !equalF(got, want) {
			t.Errorf("n=%d: PowerTo differs from Power", n)
		}
		if got, want := PowerDBTo(fdst, x, 1e-12), PowerDB(x, 1e-12); !equalF(got, want) {
			t.Errorf("n=%d: PowerDBTo differs from PowerDB", n)
		}
	}
}

func equalC(a, b []complex128) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalF(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Magnitude switched from cmplx.Abs to math.Hypot; they are the same
// kernel, so the values must match exactly.
func TestMagnitudeMatchesCmplxAbs(t *testing.T) {
	x := randComplexSeed(257, 7)
	got := Magnitude(x)
	for i, v := range x {
		if got[i] != cmplx.Abs(v) {
			t.Fatalf("Magnitude[%d] = %v, cmplx.Abs = %v", i, got[i], cmplx.Abs(v))
		}
	}
}

// FFTTo may alias its input (in-place transform); FFTShiftTo must not.
func TestToVariantAliasing(t *testing.T) {
	x := randComplexSeed(64, 3)
	want := FFT(x)
	got := append([]complex128(nil), x...)
	FFTTo(got, got)
	if !equalC(got, want) {
		t.Fatal("FFTTo(x, x) differs from FFT(x)")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FFTShiftTo(x, x) did not panic")
		}
	}()
	FFTShiftTo(x, x)
}

func TestToVariantLengthPanics(t *testing.T) {
	x := randComplexSeed(8, 1)
	for name, fn := range map[string]func(){
		"FFTTo":       func() { FFTTo(make([]complex128, 7), x) },
		"IFFTTo":      func() { IFFTTo(make([]complex128, 7), x) },
		"FFTShiftTo":  func() { FFTShiftTo(make([]complex128, 7), x) },
		"MagnitudeTo": func() { MagnitudeTo(make([]float64, 7), x) },
		"PowerTo":     func() { PowerTo(make([]float64, 7), x) },
		"PowerDBTo":   func() { PowerDBTo(make([]float64, 7), x, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with short dst did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// After the plan (and, for Bluestein sizes, the pooled scratch) is warm,
// destination-passing transforms allocate nothing — the foundation of the
// zero-allocation steady state upstream.
func TestFFTToZeroAllocsSteadyState(t *testing.T) {
	for _, n := range []int{512, 100} { // radix-2 and Bluestein
		x := randComplexSeed(n, int64(n))
		dst := make([]complex128, n)
		FFTTo(dst, x) // warm plan + scratch pool
		if allocs := testing.AllocsPerRun(100, func() { FFTTo(dst, x) }); allocs != 0 {
			t.Errorf("n=%d: FFTTo allocates %v per op in steady state, want 0", n, allocs)
		}
		if allocs := testing.AllocsPerRun(100, func() { IFFTTo(dst, x) }); allocs != 0 {
			t.Errorf("n=%d: IFFTTo allocates %v per op in steady state, want 0", n, allocs)
		}
	}
	x := randComplexSeed(512, 1)
	fdst := make([]float64, 512)
	if allocs := testing.AllocsPerRun(100, func() { MagnitudeTo(fdst, x) }); allocs != 0 {
		t.Errorf("MagnitudeTo allocates %v per op, want 0", allocs)
	}
}
