// Package dsp provides the signal-processing substrate used throughout the
// RF-Protect reproduction: FFTs, window functions, peak detection,
// smoothing, phase utilities, basic statistics, and the small
// dense-linear-algebra kernels (symmetric eigendecomposition, SPD matrix
// square root) needed by the FID metric.
//
// Everything operates on float64 / complex128 slices and is allocation-
// conscious: hot paths accept destination buffers where it matters.
//
// # FFT conventions
//
// FFT computes the unnormalized forward DFT with the engineering sign
// convention, X[k] = Σ x[n]·exp(−j2πkn/N); IFFT applies the opposite sign
// and the full 1/N normalization, so IFFT(FFT(x)) == x up to rounding.
// Power-of-two lengths run an iterative radix-2 Cooley–Tukey; every other
// length goes through Bluestein's chirp-z convolution, so any length is
// supported. Bin k of an N-point transform at sample rate fs corresponds
// to frequency BinFrequency(k, N, fs), with bins above N/2 aliased to
// negative frequencies; FFTShift recenters a spectrum around DC.
//
// Transforms of the same size reuse a cached plan (bit-reversal
// permutation, per-stage twiddle tables, and for Bluestein the kernel's
// precomputed FFT), built once per size behind a mutex and shared by all
// goroutines; planned transforms are bit-identical to unplanned ones
// because the tables replicate the incremental twiddle recurrence exactly.
// FFTEach/IFFTEach transform a batch of rows concurrently, and ParallelMap
// generalizes that to any per-row kernel.
//
// # Real-input FFT conventions
//
// RFFT/RFFTTo exploit the conjugate symmetry of a real signal's spectrum —
// X[N−k] = conj(X[k]) — and return only the RFFTLen(N) = N/2+1
// non-negative-frequency bins. Power-of-two lengths pack even/odd samples
// into one half-length complex transform and unpack with a single twiddle
// pass (about half the work of the complex path, equal up to rounding);
// other lengths widen into pooled scratch and are bit-identical to the
// complex transform's half spectrum. WindowedRFFTTo (and, on the complex
// side, WindowedFFTTo) fuse the window multiply into the transform's first
// pass: same bits as window-then-transform, one fewer pass over the data.
// Real-input plans are cached per size alongside the complex plans, and all
// *To forms are allocation-free once their plan exists.
//
// # Window conventions
//
// Window.Coefficients(n) returns the full (periodic-symmetric) n-point
// window; Apply/ApplyFloat multiply element-wise into a fresh slice. The
// radar pipeline windows before the range FFT (Hann by default) to trade
// main-lobe width for sidelobe suppression; windows are not normalized, so
// absolute powers are comparable only under the same window.
//
// # Peak conventions
//
// FindPeaks/FindPeaks2D return strict local maxima above an absolute
// threshold, greedily pruned so surviving peaks are at least minDistance
// bins apart (strongest first). Indices are integer bins;
// QuadraticInterp refines a 1-D peak to sub-bin accuracy by fitting a
// parabola through the peak and its neighbors, returning a fractional bin
// offset in [−0.5, 0.5].
package dsp
