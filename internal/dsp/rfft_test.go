package dsp

import (
	"math/rand"
	"reflect"
	"testing"
)

// realSpectrumRef computes the half spectrum through the complex path: widen
// x (optionally windowed) to complex128 and keep the first n/2+1 bins of
// FFTTo.
func realSpectrumRef(x, win []float64) []complex128 {
	c := make([]complex128, len(x))
	for i, v := range x {
		if win != nil {
			c[i] = complex(v*win[i], 0)
		} else {
			c[i] = complex(v, 0)
		}
	}
	FFTInPlace(c)
	return c[:RFFTLen(len(x))]
}

// TestRFFTToMatchesComplexHalfSpectrum is the property test of the tentpole:
// for random real inputs, RFFTTo equals the half spectrum of the complex
// transform — bit-identically on the widening fallback (odd / Bluestein
// lengths run the very same operations), and up to rounding on the
// power-of-two packed fast path (half-length transform + unpack is different
// arithmetic for the same spectrum).
func TestRFFTToMatchesComplexHalfSpectrum(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cases := []struct {
		n     int
		exact bool
	}{
		{2, false}, {4, false}, {8, false}, {16, false}, {64, false},
		{128, false}, {512, false}, {1024, false},
		{3, true}, {5, true}, {7, true}, {12, true}, {17, true},
		{100, true}, {313, true},
	}
	for _, tc := range cases {
		for trial := 0; trial < 8; trial++ {
			x := make([]float64, tc.n)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			got := RFFTTo(make([]complex128, RFFTLen(tc.n)), x)
			want := realSpectrumRef(x, nil)
			if len(got) != len(want) {
				t.Fatalf("n=%d: got %d bins, want %d", tc.n, len(got), len(want))
			}
			for k := range want {
				if tc.exact {
					if got[k] != want[k] {
						t.Fatalf("n=%d bin %d: fallback path not bit-identical: got %v want %v",
							tc.n, k, got[k], want[k])
					}
					continue
				}
				// Scale-relative tolerance: the packed path reassociates
				// sums, so compare against the spectrum's magnitude scale.
				if !almostEqualC(got[k], want[k], 1e-9*float64(tc.n)) {
					t.Fatalf("n=%d bin %d: got %v want %v", tc.n, k, got[k], want[k])
				}
			}
		}
	}
}

// TestWindowedRFFTToBitIdenticalToPreWindowed pins the fusion contract: the
// window multiply moved into the pack/widen pass performs the identical
// products, so fused output equals window-then-transform exactly.
func TestWindowedRFFTToBitIdenticalToPreWindowed(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, n := range []int{2, 8, 64, 512, 5, 12, 100} {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		win := Hann.Coefficients(n)
		xw := make([]float64, n)
		for i := range x {
			xw[i] = x[i] * win[i]
		}
		got := WindowedRFFTTo(make([]complex128, RFFTLen(n)), x, win)
		want := RFFTTo(make([]complex128, RFFTLen(n)), xw)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: fused windowed transform differs from pre-windowed", n)
		}
	}
}

// TestWindowedFFTToBitIdentical pins the complex-side fusion: gathering
// windowed samples straight into bit-reversed order must equal the
// window-copy + FFTInPlace sequence exactly, for radix-2 sizes (including
// the unrolled size 8) and the Bluestein fallback alike.
func TestWindowedFFTToBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 512, 3, 7, 12, 100} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		win := Hann.Coefficients(n)
		want := make([]complex128, n)
		for i := range x {
			want[i] = x[i] * complex(win[i], 0)
		}
		FFTInPlace(want)
		got := WindowedFFTTo(make([]complex128, n), x, win)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: WindowedFFTTo differs from window-then-FFTInPlace", n)
		}
	}
}

// TestFFT8BitIdenticalToGenericStages replays the generic butterfly loop
// over the size-8 plan's tables and checks the unrolled kernel reproduces it
// bit for bit, in both directions.
func TestFFT8BitIdenticalToGenericStages(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	p := planFor(8)
	for _, inverse := range []bool{false, true} {
		stages := p.fwd
		if inverse {
			stages = p.inv
		}
		for trial := 0; trial < 16; trial++ {
			x := make([]complex128, 8)
			for i := range x {
				x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
			want := append([]complex128(nil), x...)
			s := 0
			for size := 2; size <= 8; size <<= 1 {
				half := size >> 1
				tw := stages[s]
				s++
				for start := 0; start < 8; start += size {
					for k := 0; k < half; k++ {
						a := want[start+k]
						b := want[start+k+half] * tw[k]
						want[start+k] = a + b
						want[start+k+half] = a - b
					}
				}
			}
			got := append([]complex128(nil), x...)
			fft8(got, stages)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("inverse=%v: fft8 differs from generic stage loop", inverse)
			}
		}
	}
}

func TestRFFTEdgeCases(t *testing.T) {
	if got := RFFTTo(make([]complex128, 1), nil); got[0] != 0 {
		t.Fatalf("empty input: got %v, want 0", got[0])
	}
	if got := RFFTTo(make([]complex128, 1), []float64{3.5}); got[0] != complex(3.5, 0) {
		t.Fatalf("n=1: got %v, want 3.5", got[0])
	}
	win := []float64{0.25}
	if got := WindowedRFFTTo(make([]complex128, 1), []float64{8}, win); got[0] != complex(2, 0) {
		t.Fatalf("windowed n=1: got %v, want 2", got[0])
	}
	if got := RFFT([]float64{1, 2}); len(got) != 2 ||
		!almostEqualC(got[0], complex(3, 0), 1e-12) ||
		!almostEqualC(got[1], complex(-1, 0), 1e-12) {
		t.Fatalf("n=2: got %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched dst length")
		}
	}()
	RFFTTo(make([]complex128, 3), make([]float64, 8))
}

// TestRFFTZeroAllocsSteadyState pins the pooled-scratch contract for both
// path families once the per-size plan is cached.
func TestRFFTZeroAllocsSteadyState(t *testing.T) {
	for _, n := range []int{512, 100} {
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(i%7) - 3
		}
		win := Hann.Coefficients(n)
		dst := make([]complex128, RFFTLen(n))
		RFFTTo(dst, x) // warm the plan
		if a := testing.AllocsPerRun(50, func() { RFFTTo(dst, x) }); a != 0 {
			t.Fatalf("RFFTTo n=%d: %v allocs/op, want 0", n, a)
		}
		if a := testing.AllocsPerRun(50, func() { WindowedRFFTTo(dst, x, win) }); a != 0 {
			t.Fatalf("WindowedRFFTTo n=%d: %v allocs/op, want 0", n, a)
		}
	}
	cx := make([]complex128, 512)
	for i := range cx {
		cx[i] = complex(float64(i%5), float64(i%3))
	}
	cwin := Hann.Coefficients(512)
	cdst := make([]complex128, 512)
	WindowedFFTTo(cdst, cx, cwin)
	if a := testing.AllocsPerRun(50, func() { WindowedFFTTo(cdst, cx, cwin) }); a != 0 {
		t.Fatalf("WindowedFFTTo: %v allocs/op, want 0", a)
	}
}

// TestPeak2DFinderMatchesFindPeaks2D checks the reusable finder returns the
// exact result of the allocating function across reuses of one finder.
func TestPeak2DFinderMatchesFindPeaks2D(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	var f Peak2DFinder
	for trial := 0; trial < 20; trial++ {
		rows, cols := 4+rng.Intn(12), 4+rng.Intn(12)
		g := make([]float64, rows*cols)
		for i := range g {
			g[i] = rng.Float64()
		}
		minVal := 0.3 + 0.4*rng.Float64()
		minDist := 1 + rng.Intn(3)
		want := FindPeaks2D(g, rows, cols, minVal, minDist)
		got := f.Find(g, rows, cols, minVal, minDist)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d peaks, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d peak %d: got %+v want %+v", trial, i, got[i], want[i])
			}
		}
	}
	g := make([]float64, 16*16)
	for i := range g {
		g[i] = float64((i*2654435761)%97) / 97
	}
	f.Find(g, 16, 16, 0.5, 2) // warm the scratch
	if a := testing.AllocsPerRun(50, func() { f.Find(g, 16, 16, 0.5, 2) }); a != 0 {
		t.Fatalf("Peak2DFinder.Find: %v allocs/op, want 0", a)
	}
}
