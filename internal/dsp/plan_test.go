package dsp

import (
	"math/cmplx"
	"math/rand"
	"sync"
	"testing"
)

// randSignal seeds a fresh stream and reuses the suite's randComplex
// helper; naiveDFT (fft_test.go) is the plan-free reference the cached
// transforms are checked against.
func randSignal(n int, seed int64) []complex128 {
	return randComplex(rand.New(rand.NewSource(seed)), n)
}

// TestPlannedFFTMatchesUncachedReference checks the cached-plan transforms
// against a plan-free direct DFT for radix-2 and Bluestein sizes, both
// directions.
func TestPlannedFFTMatchesUncachedReference(t *testing.T) {
	for _, n := range []int{2, 8, 64, 512, 3, 12, 100, 211} {
		x := randSignal(n, int64(n))
		for _, inverse := range []bool{false, true} {
			var got []complex128
			if inverse {
				got = IFFT(x)
			} else {
				got = FFT(x)
			}
			want := naiveDFT(x, inverse)
			for i := range got {
				if cmplx.Abs(got[i]-want[i]) > 1e-8*float64(n) {
					t.Fatalf("n=%d inverse=%v bin %d: %v vs %v", n, inverse, i, got[i], want[i])
				}
			}
		}
	}
}

// TestPlanCacheHitIsBitIdentical verifies that the transform that builds
// the plan (first call for a size) and every cache-hit transform after it
// produce bit-identical output.
func TestPlanCacheHitIsBitIdentical(t *testing.T) {
	for _, n := range []int{128, 48} { // radix-2 and Bluestein
		x := randSignal(n, 7)
		first := FFT(x)
		for trial := 0; trial < 3; trial++ {
			again := FFT(x)
			for i := range again {
				if again[i] != first[i] {
					t.Fatalf("n=%d: cache-hit transform differs at bin %d", n, i)
				}
			}
		}
	}
}

// TestPlanCacheConcurrentFirstUse hammers a previously unseen size from
// many goroutines so the build-outside-lock path runs under -race, and
// checks every goroutine got the same answer.
func TestPlanCacheConcurrentFirstUse(t *testing.T) {
	const n = 1536 // non-power-of-two: exercises the bluestein plan too
	x := randSignal(n, 9)
	want := naiveDFT(x, false)
	var wg sync.WaitGroup
	errc := make(chan string, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := FFT(x)
			for i := range got {
				if cmplx.Abs(got[i]-want[i]) > 1e-7*float64(n) {
					errc <- "concurrent FFT diverged from reference"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	if msg, ok := <-errc; ok {
		t.Fatal(msg)
	}
}

// TestFFTEachMatchesSequential checks the batch helpers against row-by-row
// transforms for every worker count, including mixed row lengths.
func TestFFTEachMatchesSequential(t *testing.T) {
	lengths := []int{512, 512, 100, 64, 12, 1, 0}
	mkBatch := func() [][]complex128 {
		batch := make([][]complex128, len(lengths))
		for i, n := range lengths {
			batch[i] = randSignal(n, int64(100+i))
		}
		return batch
	}
	ref := mkBatch()
	for _, row := range ref {
		FFTInPlace(row)
	}
	for _, workers := range []int{1, 2, 8} {
		batch := mkBatch()
		FFTEach(batch, workers)
		for i := range batch {
			for j := range batch[i] {
				if batch[i][j] != ref[i][j] {
					t.Fatalf("workers=%d row %d bin %d differs", workers, i, j)
				}
			}
		}
	}
	// Round trip through the inverse batch helper.
	batch := mkBatch()
	FFTEach(batch, 4)
	IFFTEach(batch, 4)
	orig := mkBatch()
	for i := range batch {
		for j := range batch[i] {
			if cmplx.Abs(batch[i][j]-orig[i][j]) > 1e-9 {
				t.Fatalf("round trip row %d bin %d: %v vs %v", i, j, batch[i][j], orig[i][j])
			}
		}
	}
}

// TestParallelMapAppliesKernelToEveryRow uses a non-FFT kernel to pin the
// generic contract.
func TestParallelMapAppliesKernelToEveryRow(t *testing.T) {
	batch := make([][]complex128, 37)
	for i := range batch {
		batch[i] = []complex128{complex(float64(i), 0)}
	}
	ParallelMap(batch, 4, func(row []complex128) { row[0] *= 2 })
	for i := range batch {
		if batch[i][0] != complex(2*float64(i), 0) {
			t.Fatalf("row %d not transformed exactly once", i)
		}
	}
}

func BenchmarkFFT512Cached(b *testing.B) {
	x := randSignal(512, 1)
	buf := make([]complex128, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		FFTInPlace(buf)
	}
}

func BenchmarkFFTBluestein100Cached(b *testing.B) {
	x := randSignal(100, 1)
	buf := make([]complex128, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		FFTInPlace(buf)
	}
}

func benchBatch(rows, n int) [][]complex128 {
	batch := make([][]complex128, rows)
	for i := range batch {
		batch[i] = randSignal(n, int64(i))
	}
	return batch
}

func BenchmarkFFTEachSequential(b *testing.B) {
	batch := benchBatch(64, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFTEach(batch, 1)
	}
}

func BenchmarkFFTEachParallel(b *testing.B) {
	batch := benchBatch(64, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFTEach(batch, 0)
	}
}
