package dsp

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of x, or 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the population variance of x, or 0 for fewer than two
// samples.
func Variance(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	s := 0.0
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(len(x))
}

// StdDev returns the population standard deviation of x.
func StdDev(x []float64) float64 { return math.Sqrt(Variance(x)) }

// Percentile returns the p-th percentile (p in [0,100]) of x using linear
// interpolation between order statistics. It copies x, so the input is not
// reordered. Empty input returns NaN.
func Percentile(x []float64, p float64) float64 {
	if len(x) == 0 {
		return math.NaN()
	}
	s := make([]float64, len(x))
	copy(s, x)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 50th percentile of x.
func Median(x []float64) float64 { return Percentile(x, 50) }

// CDFPoint is one point of an empirical cumulative distribution function.
type CDFPoint struct {
	Value float64 // sample value
	P     float64 // fraction of samples <= Value
}

// EmpiricalCDF returns the empirical CDF of x as sorted (value, probability)
// pairs, one per sample.
func EmpiricalCDF(x []float64) []CDFPoint {
	s := make([]float64, len(x))
	copy(s, x)
	sort.Float64s(s)
	out := make([]CDFPoint, len(s))
	n := float64(len(s))
	for i, v := range s {
		out[i] = CDFPoint{Value: v, P: float64(i+1) / n}
	}
	return out
}

// CDFAt evaluates the empirical CDF of x at value v: the fraction of samples
// <= v.
func CDFAt(x []float64, v float64) float64 {
	if len(x) == 0 {
		return 0
	}
	n := 0
	for _, s := range x {
		if s <= v {
			n++
		}
	}
	return float64(n) / float64(len(x))
}

// MeanVec returns the element-wise mean of a set of equal-length vectors.
// It panics if the set is empty or ragged.
func MeanVec(xs [][]float64) []float64 {
	if len(xs) == 0 {
		panic("dsp: MeanVec of empty set")
	}
	d := len(xs[0])
	out := make([]float64, d)
	for _, x := range xs {
		if len(x) != d {
			panic("dsp: MeanVec with ragged vectors")
		}
		for i, v := range x {
			out[i] += v
		}
	}
	inv := 1 / float64(len(xs))
	for i := range out {
		out[i] *= inv
	}
	return out
}

// CovarianceMatrix returns the d×d sample covariance matrix (normalized by
// n-1, or n when n == 1) of the row vectors xs.
func CovarianceMatrix(xs [][]float64) *Matrix {
	mu := MeanVec(xs)
	d := len(mu)
	cov := NewMatrix(d, d)
	for _, x := range xs {
		for i := 0; i < d; i++ {
			di := x[i] - mu[i]
			for j := i; j < d; j++ {
				cov.Data[i*d+j] += di * (x[j] - mu[j])
			}
		}
	}
	norm := float64(len(xs) - 1)
	if norm < 1 {
		norm = 1
	}
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			v := cov.Data[i*d+j] / norm
			cov.Data[i*d+j] = v
			cov.Data[j*d+i] = v
		}
	}
	return cov
}
