package dsp

import "sort"

// MovingAverage returns the centered moving average of x with the given odd
// window size. Edges use the available (shorter) window. window < 1 is
// treated as 1.
func MovingAverage(x []float64, window int) []float64 {
	if window < 1 {
		window = 1
	}
	half := window / 2
	out := make([]float64, len(x))
	for i := range x {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi >= len(x) {
			hi = len(x) - 1
		}
		s := 0.0
		for j := lo; j <= hi; j++ {
			s += x[j]
		}
		out[i] = s / float64(hi-lo+1)
	}
	return out
}

// MedianFilter returns the centered running median of x with the given odd
// window size, shrinking the window at the edges.
func MedianFilter(x []float64, window int) []float64 {
	if window < 1 {
		window = 1
	}
	half := window / 2
	out := make([]float64, len(x))
	buf := make([]float64, 0, window)
	for i := range x {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi >= len(x) {
			hi = len(x) - 1
		}
		buf = buf[:0]
		buf = append(buf, x[lo:hi+1]...)
		sort.Float64s(buf)
		n := len(buf)
		if n%2 == 1 {
			out[i] = buf[n/2]
		} else {
			out[i] = 0.5 * (buf[n/2-1] + buf[n/2])
		}
	}
	return out
}

// ExponentialSmoothing returns the exponentially weighted series
// y[0]=x[0], y[i]=alpha*x[i]+(1-alpha)*y[i-1]. alpha is clamped to (0, 1].
func ExponentialSmoothing(x []float64, alpha float64) []float64 {
	if alpha <= 0 {
		alpha = 1e-9
	} else if alpha > 1 {
		alpha = 1
	}
	out := make([]float64, len(x))
	if len(x) == 0 {
		return out
	}
	out[0] = x[0]
	for i := 1; i < len(x); i++ {
		out[i] = alpha*x[i] + (1-alpha)*out[i-1]
	}
	return out
}
