package fmcw

import (
	"math/rand"
	"testing"
)

// testParams keeps pool tests fast: 4 antennas, 64 samples.
func testParams() Params {
	p := DefaultParams()
	p.SampleRate = 128e3 // 64 samples per 500 µs chirp
	p.NumAntennas = 4
	return p
}

func testReturns(n int, seed int64) []Return {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Return, n)
	for i := range out {
		out[i] = Return{
			Delay:     2 * (1 + 10*rng.Float64()) / C,
			Amplitude: 0.05 + rng.Float64(),
			AoA:       rng.Float64() * 3.1,
			FreqShift: float64(i%3) * 20e3,
			Phase:     rng.Float64(),
		}
	}
	return out
}

func framesEqual(a, b *Frame) bool {
	if !a.SameShape(b) || a.Time != b.Time {
		return false
	}
	for k := range a.Data {
		for i := range a.Data[k] {
			if a.Data[k][i] != b.Data[k][i] {
				return false
			}
		}
	}
	return true
}

// Regression for the row-aliasing bug: NewFrame's rows used to share one
// backing array at full capacity, so append(Data[k], ...) silently
// overwrote Data[k+1][0]. Three-index slicing caps each row at its length,
// forcing append to copy out.
func TestNewFrameRowsAppendSafe(t *testing.T) {
	f := NewFrame(testParams(), 0)
	for k, row := range f.Data {
		if cap(row) != len(row) {
			t.Fatalf("row %d: cap %d != len %d — append would clobber the next row", k, cap(row), len(row))
		}
	}
	next := f.Data[1][0]
	_ = append(f.Data[0], complex(42, 42))
	if f.Data[1][0] != next {
		t.Fatalf("append to Data[0] overwrote Data[1][0]: %v", f.Data[1][0])
	}
}

func TestFramePoolGetPut(t *testing.T) {
	p := testParams()
	fp := NewFramePool(p)
	f := fp.Get(1.5)
	if f.Time != 1.5 || f.Params != p {
		t.Fatalf("Get: Time=%v Params=%+v", f.Time, f.Params)
	}
	f.Data[2][3] = complex(1, 1)
	fp.Put(f)
	if fp.Len() != 1 {
		t.Fatalf("Len = %d, want 1", fp.Len())
	}
	g := fp.Get(2.5)
	if g != f {
		t.Fatal("Get did not reuse the recycled frame")
	}
	if g.Time != 2.5 {
		t.Fatalf("reused frame Time = %v, want 2.5", g.Time)
	}
	for k, row := range g.Data {
		for i, v := range row {
			if v != 0 {
				t.Fatalf("reused frame not zeroed at [%d][%d]: %v", k, i, v)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Put of a mismatched frame did not panic")
		}
	}()
	other := p
	other.NumAntennas = 2
	fp.Put(NewFrame(other, 0))
}

// SynthesizeInto on a pooled frame must produce exactly the bits
// SynthesizeCtx produces, for every worker count, including the pooled
// per-antenna noise streams.
func TestSynthesizeIntoBitIdentical(t *testing.T) {
	p := testParams()
	p.NoiseStd = 0.05
	returns := testReturns(8, 3)
	fp := NewFramePool(p)
	for _, workers := range []int{1, 2, 3, 0} {
		want, err := SynthesizeCtx(nil, p, returns, 0.25, rand.New(rand.NewSource(9)), workers)
		if err != nil {
			t.Fatal(err)
		}
		dst := fp.Get(0.25)
		if err := SynthesizeInto(nil, dst, returns, rand.New(rand.NewSource(9)), workers); err != nil {
			t.Fatal(err)
		}
		if !framesEqual(dst, want) {
			t.Fatalf("workers=%d: SynthesizeInto differs from SynthesizeCtx", workers)
		}
		fp.Put(dst)
	}
}

func TestSubIntoMatchesSub(t *testing.T) {
	p := testParams()
	rng := rand.New(rand.NewSource(1))
	f := Synthesize(p, testReturns(4, 1), 0.1, rng)
	g := Synthesize(p, testReturns(4, 2), 0.1, rng)
	want := f.Sub(g)
	dst := NewFrame(p, 99)
	f.SubInto(dst, g)
	if !framesEqual(dst, want) {
		t.Fatal("SubInto differs from Sub")
	}
	// Aliased destination: dst == f.
	f.SubInto(f, g)
	if !framesEqual(f, want) {
		t.Fatal("SubInto(f, g) into f differs from Sub")
	}
}

// A pooled differencer must emit exactly the difference frames a plain one
// does, and neither may retain the caller's frame: mutating an input after
// Step must not change later outputs.
func TestDifferencerPooledBitIdentical(t *testing.T) {
	p := testParams()
	rng := rand.New(rand.NewSource(5))
	const n = 6
	frames := make([]*Frame, n)
	for i := range frames {
		frames[i] = Synthesize(p, testReturns(5, int64(i)), float64(i)/p.FrameRate, rng)
	}
	var plain Differencer
	var pooled Differencer
	fp := NewFramePool(p)
	pooled.UsePool(fp)
	for i, f := range frames {
		want, okW := plain.Step(f)
		cp := NewFrame(p, f.Time)
		cp.CopyFrom(f)
		got, okG := pooled.Step(cp)
		// The differencer must read its input only during Step.
		cp.Data[0][0] = complex(1e9, 1e9)
		if okW != okG {
			t.Fatalf("frame %d: ok mismatch %v vs %v", i, okW, okG)
		}
		if okW && !framesEqual(got, want) {
			t.Fatalf("frame %d: pooled diff differs from plain", i)
		}
		if okG {
			fp.Put(got)
		}
	}
	// After warm-up the pooled differencer allocates nothing per step.
	a, b := frames[0], frames[1]
	pooled.Step(a)
	if allocs := testing.AllocsPerRun(100, func() {
		if d, ok := pooled.Step(b); ok {
			fp.Put(d)
		}
		a, b = b, a
	}); allocs != 0 {
		t.Fatalf("pooled Differencer.Step allocates %v per op in steady state, want 0", allocs)
	}
}

// PushCopy must behave exactly like Push for consumers (same frames in the
// same order) while never aliasing the pushed frame.
func TestWindowPushCopy(t *testing.T) {
	p := testParams()
	rng := rand.New(rand.NewSource(2))
	w := NewWindow(3)
	var scratch []*Frame
	src := NewFrame(p, 0)
	for i := 0; i < 7; i++ {
		want := Synthesize(p, testReturns(3, int64(i)), float64(i), rng)
		src.CopyFrom(want)
		w.PushCopy(src)
		src.Reset() // the window must hold its own copy
		scratch = w.Frames(scratch[:0])
		last := scratch[len(scratch)-1]
		if !framesEqual(last, want) {
			t.Fatalf("push %d: window tail differs from pushed frame", i)
		}
	}
	if w.Len() != 3 {
		t.Fatalf("Len = %d, want 3", w.Len())
	}
	// Warmed-up window: PushCopy reuses evicted storage, zero allocs.
	if allocs := testing.AllocsPerRun(50, func() { w.PushCopy(src) }); allocs != 0 {
		t.Fatalf("PushCopy allocates %v per op in steady state, want 0", allocs)
	}
}
