package fmcw

import (
	"context"
	"math"
	"math/rand"

	"rfprotect/internal/parallel"
)

// Return is one reflection arriving at the radar during a chirp. The channel
// model (internal/scene and internal/reflector) reduces every physical
// effect — walls, humans, switching reflectors — to a list of Returns.
type Return struct {
	Delay     float64 // round-trip propagation delay in seconds
	Amplitude float64 // linear amplitude at the receiver
	AoA       float64 // angle of arrival, radians in [0, π] from the array axis
	FreqShift float64 // extra beat-frequency offset in Hz (reflector switching)
	Phase     float64 // extra carrier phase in radians (phase shifter, micro-motion)
}

// Frame is the dechirped output of one chirp across all array elements:
// Data[k][i] is IF sample i on antenna k.
type Frame struct {
	Params Params
	Time   float64 // capture time in seconds (frame timestamp)
	Data   [][]complex128
}

// NewFrame allocates a zeroed frame for the given parameters.
func NewFrame(p Params, at float64) *Frame {
	n := p.SamplesPerChirp()
	data := make([][]complex128, p.NumAntennas)
	backing := make([]complex128, p.NumAntennas*n)
	for k := range data {
		data[k], backing = backing[:n], backing[n:]
	}
	return &Frame{Params: p, Time: at, Data: data}
}

// Synthesize produces the beat-domain frame for a set of returns at capture
// time at, adding AWGN from rng (rng may be nil for a noiseless frame). It
// runs with one worker per available CPU; see SynthesizeWorkers for the
// pool-size contract and the reproducibility guarantee.
//
// For a return with delay τ, extra beat offset f_x and extra phase φ, the
// contribution to antenna k at IF sample time t is
//
//	A · exp(j2π((sl·τ + f_x)·t + f_c·τ)) · exp(jφ) · exp(-j2π·k·d·cos(AoA)/λ)
//
// matching Eq. 1–2 of the paper.
func Synthesize(p Params, returns []Return, at float64, rng *rand.Rand) *Frame {
	return SynthesizeWorkers(p, returns, at, rng, 0)
}

// SynthesizeWorkers is Synthesize with an explicit worker-pool size
// (workers <= 0 means one per available CPU). Antennas are synthesized
// concurrently, each worker writing only its own antenna's row.
//
// Output is bit-identical for every worker count: per-antenna accumulation
// visits returns in slice order regardless of scheduling, and noise is not
// drawn from the shared rng inside the pool — a single base seed is drawn
// from rng up front and split into one deterministic stream per antenna
// (parallel.SplitSeed), so antenna k's noise depends only on (base, k).
func SynthesizeWorkers(p Params, returns []Return, at float64, rng *rand.Rand, workers int) *Frame {
	f, _ := SynthesizeCtx(nil, p, returns, at, rng, workers)
	return f
}

// SynthesizeCtx is SynthesizeWorkers with cooperative cancellation: the
// antenna fan-out stops once ctx is done and the call returns (nil,
// ctx.Err()). The noise base seed is drawn from rng before the fan-out
// either way, so a canceled synthesis still consumes exactly one draw —
// callers that retain the rng after cancellation abort the whole capture,
// never resume it. A nil ctx is exactly SynthesizeWorkers.
func SynthesizeCtx(ctx context.Context, p Params, returns []Return, at float64, rng *rand.Rand, workers int) (*Frame, error) {
	f := NewFrame(p, at)
	noisy := rng != nil && p.NoiseStd > 0
	var base int64
	if noisy {
		base = rng.Int63()
	}
	err := parallel.ForEachCtx(ctx, p.NumAntennas, workers, func(k int) {
		f.addReturnsAntenna(k, returns)
		if noisy {
			f.addNoiseRow(k, rand.New(rand.NewSource(parallel.SplitSeed(base, k))))
		}
	})
	if err != nil {
		return nil, err
	}
	return f, nil
}

// AddReturns accumulates the beat contributions of the given returns into
// the frame, one antenna at a time.
func (f *Frame) AddReturns(returns []Return) {
	for k := 0; k < f.Params.NumAntennas; k++ {
		f.addReturnsAntenna(k, returns)
	}
}

// addReturnsAntenna accumulates every return into antenna k's row. It is
// the per-worker unit of SynthesizeWorkers and touches no state outside
// Data[k]; returns are added in slice order so the floating-point
// accumulation order per sample is fixed.
func (f *Frame) addReturnsAntenna(k int, returns []Return) {
	p := f.Params
	n := p.SamplesPerChirp()
	sl := p.Slope()
	lambda := p.Wavelength()
	d := p.Spacing()
	dt := 1 / p.SampleRate
	row := f.Data[k]
	for _, r := range returns {
		if r.Amplitude == 0 {
			continue
		}
		beat := sl*r.Delay + r.FreqShift
		// A frequency-shifting modulator (the RF-Protect switch) free-runs
		// across chirps, so its tone's phase at this chirp's start depends
		// on absolute capture time — this is what gives the shifted
		// reflection a Doppler signature in chirp-coherent processing.
		carrier := 2*math.Pi*p.CenterFreq*r.Delay + r.Phase + 2*math.Pi*r.FreqShift*f.Time
		// Per-sample rotation for this return.
		step := 2 * math.Pi * beat * dt
		stepC := complex(math.Cos(step), math.Sin(step))
		steer := -2 * math.Pi * float64(k) * d * math.Cos(r.AoA) / lambda
		ph0 := carrier + steer
		cur := complex(r.Amplitude*math.Cos(ph0), r.Amplitude*math.Sin(ph0))
		for i := 0; i < n; i++ {
			row[i] += cur
			cur *= stepC
		}
	}
}

// AddNoise adds circular complex Gaussian noise of standard deviation
// Params.NoiseStd per I/Q component, consuming rng sequentially across the
// whole frame. SynthesizeWorkers uses per-antenna split streams instead so
// its output does not depend on the worker schedule.
func (f *Frame) AddNoise(rng *rand.Rand) {
	if f.Params.NoiseStd <= 0 {
		return
	}
	for k := range f.Data {
		f.addNoiseRow(k, rng)
	}
}

// addNoiseRow adds noise to antenna k's row only, from the given stream.
func (f *Frame) addNoiseRow(k int, rng *rand.Rand) {
	std := f.Params.NoiseStd
	row := f.Data[k]
	for i := range row {
		row[i] += complex(rng.NormFloat64()*std, rng.NormFloat64()*std)
	}
}

// Differencer is the streaming form of successive-frame background
// subtraction (§3): feed it frames one at a time and it emits cur - prev,
// holding exactly one frame of history. The zero value is ready to use.
type Differencer struct {
	prev *Frame
}

// Step consumes the next frame and returns its background-subtracted
// difference against the previous one. The first frame only seeds the
// history: Step returns (nil, false) for it, matching the batch pipeline
// where frame 0 contributes no detection set.
func (d *Differencer) Step(f *Frame) (*Frame, bool) {
	prev := d.prev
	d.prev = f
	if prev == nil {
		return nil, false
	}
	return f.Sub(prev), true
}

// Reset drops the held history so the next Step seeds it again.
func (d *Differencer) Reset() { d.prev = nil }

// Sub returns f - g sample-wise as a new frame: the successive-frame
// background subtraction primitive of §3 ("Addressing Static Reflectors").
// It panics if the frames have different shapes.
func (f *Frame) Sub(g *Frame) *Frame {
	if len(f.Data) != len(g.Data) {
		panic("fmcw: Sub with mismatched antenna counts")
	}
	out := NewFrame(f.Params, f.Time)
	for k := range f.Data {
		if len(f.Data[k]) != len(g.Data[k]) {
			panic("fmcw: Sub with mismatched sample counts")
		}
		for i := range f.Data[k] {
			out.Data[k][i] = f.Data[k][i] - g.Data[k][i]
		}
	}
	return out
}
