package fmcw

import (
	"context"
	"math"
	"math/rand"
	"sync"

	"rfprotect/internal/parallel"
)

// Return is one reflection arriving at the radar during a chirp. The channel
// model (internal/scene and internal/reflector) reduces every physical
// effect — walls, humans, switching reflectors — to a list of Returns.
type Return struct {
	Delay     float64 // round-trip propagation delay in seconds
	Amplitude float64 // linear amplitude at the receiver
	AoA       float64 // angle of arrival, radians in [0, π] from the array axis
	FreqShift float64 // extra beat-frequency offset in Hz (reflector switching)
	Phase     float64 // extra carrier phase in radians (phase shifter, micro-motion)
}

// Frame is the dechirped output of one chirp across all array elements:
// Data[k][i] is IF sample i on antenna k.
type Frame struct {
	Params Params
	Time   float64 // capture time in seconds (frame timestamp)
	Data   [][]complex128
}

// NewFrame allocates a zeroed frame for the given parameters. Rows are cut
// from one backing array with three-index slices, so each row's capacity is
// exactly its length: an append to Data[k] copies out instead of silently
// overwriting Data[k+1]'s samples.
func NewFrame(p Params, at float64) *Frame {
	n := p.SamplesPerChirp()
	data := make([][]complex128, p.NumAntennas)
	backing := make([]complex128, p.NumAntennas*n)
	for k := range data {
		data[k], backing = backing[:n:n], backing[n:]
	}
	return &Frame{Params: p, Time: at, Data: data}
}

// Reset zeroes every sample, leaving Params and Time untouched.
func (f *Frame) Reset() {
	for _, row := range f.Data {
		for i := range row {
			row[i] = 0
		}
	}
}

// SameShape reports whether g has the same antenna count and per-row sample
// count as f — the compatibility check for in-place frame operations and
// pool membership.
func (f *Frame) SameShape(g *Frame) bool {
	if len(f.Data) != len(g.Data) {
		return false
	}
	for k := range f.Data {
		if len(f.Data[k]) != len(g.Data[k]) {
			return false
		}
	}
	return true
}

// CopyFrom overwrites f with g's parameters, timestamp, and samples. It
// panics if the shapes differ; it never aliases g's storage.
func (f *Frame) CopyFrom(g *Frame) {
	if !f.SameShape(g) {
		panic("fmcw: CopyFrom with mismatched frame shapes")
	}
	f.Params = g.Params
	f.Time = g.Time
	for k := range f.Data {
		copy(f.Data[k], g.Data[k])
	}
}

// Synthesize produces the beat-domain frame for a set of returns at capture
// time at, adding AWGN from rng (rng may be nil for a noiseless frame). It
// runs with one worker per available CPU; see SynthesizeWorkers for the
// pool-size contract and the reproducibility guarantee.
//
// For a return with delay τ, extra beat offset f_x and extra phase φ, the
// contribution to antenna k at IF sample time t is
//
//	A · exp(j2π((sl·τ + f_x)·t + f_c·τ)) · exp(jφ) · exp(-j2π·k·d·cos(AoA)/λ)
//
// matching Eq. 1–2 of the paper.
func Synthesize(p Params, returns []Return, at float64, rng *rand.Rand) *Frame {
	return SynthesizeWorkers(p, returns, at, rng, 0)
}

// SynthesizeWorkers is Synthesize with an explicit worker-pool size
// (workers <= 0 means one per available CPU). Antennas are synthesized
// concurrently, each worker writing only its own antenna's row.
//
// Output is bit-identical for every worker count: per-antenna accumulation
// visits returns in slice order regardless of scheduling, and noise is not
// drawn from the shared rng inside the pool — a single base seed is drawn
// from rng up front and split into one deterministic stream per antenna
// (parallel.SplitSeed), so antenna k's noise depends only on (base, k).
func SynthesizeWorkers(p Params, returns []Return, at float64, rng *rand.Rand, workers int) *Frame {
	f, _ := SynthesizeCtx(nil, p, returns, at, rng, workers)
	return f
}

// SynthesizeCtx is SynthesizeWorkers with cooperative cancellation: the
// antenna fan-out stops once ctx is done and the call returns (nil,
// ctx.Err()). The noise base seed is drawn from rng before the fan-out
// either way, so a canceled synthesis still consumes exactly one draw —
// callers that retain the rng after cancellation abort the whole capture,
// never resume it. A nil ctx is exactly SynthesizeWorkers.
func SynthesizeCtx(ctx context.Context, p Params, returns []Return, at float64, rng *rand.Rand, workers int) (*Frame, error) {
	f := NewFrame(p, at)
	if err := SynthesizeInto(ctx, f, returns, rng, workers); err != nil {
		return nil, err
	}
	return f, nil
}

// SynthesizeInto is the destination-passing form of SynthesizeCtx: it
// accumulates the returns (and noise) into dst, whose Params and Time
// select the configuration and capture time. dst must be zeroed — a frame
// fresh from NewFrame or FramePool.Get — because synthesis adds
// contributions on top of the existing samples. It performs no frame
// allocation; per-antenna noise streams come from a pooled source reseeded
// with parallel.SplitSeed, so the bits are identical to SynthesizeCtx for
// the same (rng state, Params, Time, returns) regardless of pooling or
// worker count. On cancellation dst holds partial data and must be
// discarded (or Reset) by the caller.
//
// Synthesis runs through the shared compiled SynthPlan for dst's shape
// (PlanSynth) — the planned kernel is the defining semantics; see
// SynthesizeLegacyInto for the retained pre-plan reference.
//
//rfvet:allocfree
func SynthesizeInto(ctx context.Context, dst *Frame, returns []Return, rng *rand.Rand, workers int) error {
	return PlanSynth(dst.Params).SynthesizeInto(ctx, dst, returns, rng, workers)
}

// SynthesizeLegacyInto is the pre-plan synthesis kernel: the serial
// per-(return × antenna) phasor recurrence, retained as the ULP reference
// for the planned path (tests pin the planned samples to it within a
// relative tolerance) and as the baseline for the synth_plan speedup gate
// in cmd/bench. Same contract as SynthesizeInto — same noise draws, same
// worker-count bit-identity — but the sample bits differ from the planned
// kernel's at the ULP level. New callers want SynthesizeInto.
func SynthesizeLegacyInto(ctx context.Context, dst *Frame, returns []Return, rng *rand.Rand, workers int) error {
	p := dst.Params
	noisy := rng != nil && p.NoiseStd > 0
	var base int64
	if noisy {
		base = rng.Int63()
	}
	j := getSynthJob()
	j.dst, j.returns, j.noisy, j.base = dst, returns, noisy, base
	err := parallel.ForEachCtx(ctx, p.NumAntennas, workers, j.fn)
	putSynthJob(j)
	return err
}

// synthJob carries one SynthesizeLegacyInto fan-out's state to the workers
// through fn, a method value bound once when the job is first built and
// recycled with it, so steady-state synthesis creates no closure: an
// inline func literal capturing (dst, returns, noisy, base) would escape
// to the heap on every call.
type synthJob struct {
	dst     *Frame
	returns []Return
	noisy   bool
	base    int64
	fn      func(int)
}

// antenna synthesizes antenna k's row; it is the per-index unit handed to
// parallel.ForEachCtx and touches only row k plus its own pooled rng.
func (j *synthJob) antenna(k int) {
	j.dst.addReturnsAntenna(k, j.returns)
	if j.noisy {
		r := getNoiseRng()
		r.Seed(parallel.SplitSeed(j.base, k))
		j.dst.addNoiseRow(k, r)
		putNoiseRng(r)
	}
}

// synthJobs is the job free list. A mutex-guarded slice (the repo's free
// list idiom) rather than sync.Pool so a parked job — and the one-time
// closure bound to it — survives GC cycles between frames.
var synthJobs struct {
	mu   sync.Mutex
	free []*synthJob
}

func getSynthJob() *synthJob {
	synthJobs.mu.Lock()
	var j *synthJob
	if n := len(synthJobs.free); n > 0 {
		j = synthJobs.free[n-1]
		synthJobs.free[n-1] = nil
		synthJobs.free = synthJobs.free[:n-1]
	}
	synthJobs.mu.Unlock()
	if j == nil {
		j = new(synthJob)
		j.fn = j.antenna
	}
	return j
}

// putSynthJob parks a job, dropping its frame and returns references so a
// parked job pins nothing.
func putSynthJob(j *synthJob) {
	j.dst, j.returns = nil, nil
	synthJobs.mu.Lock()
	synthJobs.free = append(synthJobs.free, j)
	synthJobs.mu.Unlock()
}

// noiseRngs pools the per-antenna noise generators so steady-state
// synthesis stops allocating a rand.Rand (and its ~5 KiB source state) per
// antenna per frame. Reseeding a pooled source with Seed(s) reproduces
// exactly the state rand.New(rand.NewSource(s)) would have, so the noise
// bits are unchanged; the stream still depends only on (base, antenna).
// A mutex-guarded free list rather than sync.Pool: pooled sources survive
// GC cycles between frames, and race-detector builds (where sync.Pool
// deliberately drops items) keep the exact-zero allocation contract.
var noiseRngs struct {
	mu   sync.Mutex
	free []*rand.Rand
}

func getNoiseRng() *rand.Rand {
	noiseRngs.mu.Lock()
	var r *rand.Rand
	if n := len(noiseRngs.free); n > 0 {
		r = noiseRngs.free[n-1]
		noiseRngs.free[n-1] = nil
		noiseRngs.free = noiseRngs.free[:n-1]
	}
	noiseRngs.mu.Unlock()
	if r == nil {
		r = rand.New(rand.NewSource(0))
	}
	return r
}

func putNoiseRng(r *rand.Rand) {
	noiseRngs.mu.Lock()
	noiseRngs.free = append(noiseRngs.free, r)
	noiseRngs.mu.Unlock()
}

// AddReturns accumulates the beat contributions of the given returns into
// the frame, one antenna at a time.
func (f *Frame) AddReturns(returns []Return) {
	for k := 0; k < f.Params.NumAntennas; k++ {
		f.addReturnsAntenna(k, returns)
	}
}

// addReturnsAntenna accumulates every return into antenna k's row. It is
// the per-worker unit of SynthesizeWorkers and touches no state outside
// Data[k]; returns are added in slice order so the floating-point
// accumulation order per sample is fixed.
func (f *Frame) addReturnsAntenna(k int, returns []Return) {
	p := f.Params
	n := p.SamplesPerChirp()
	sl := p.Slope()
	lambda := p.Wavelength()
	d := p.Spacing()
	dt := 1 / p.SampleRate
	row := f.Data[k]
	for _, r := range returns {
		if r.Amplitude == 0 {
			continue
		}
		beat := sl*r.Delay + r.FreqShift
		// A frequency-shifting modulator (the RF-Protect switch) free-runs
		// across chirps, so its tone's phase at this chirp's start depends
		// on absolute capture time — this is what gives the shifted
		// reflection a Doppler signature in chirp-coherent processing.
		carrier := 2*math.Pi*p.CenterFreq*r.Delay + r.Phase + 2*math.Pi*r.FreqShift*f.Time
		// Per-sample rotation for this return.
		step := 2 * math.Pi * beat * dt
		stepC := complex(math.Cos(step), math.Sin(step))
		steer := -2 * math.Pi * float64(k) * d * math.Cos(r.AoA) / lambda
		ph0 := carrier + steer
		cur := complex(r.Amplitude*math.Cos(ph0), r.Amplitude*math.Sin(ph0))
		for i := 0; i < n; i++ {
			row[i] += cur
			cur *= stepC
		}
	}
}

// AddNoise adds circular complex Gaussian noise of standard deviation
// Params.NoiseStd per I/Q component, consuming rng sequentially across the
// whole frame. SynthesizeWorkers uses per-antenna split streams instead so
// its output does not depend on the worker schedule.
func (f *Frame) AddNoise(rng *rand.Rand) {
	if f.Params.NoiseStd <= 0 {
		return
	}
	for k := range f.Data {
		f.addNoiseRow(k, rng)
	}
}

// addNoiseRow adds noise to antenna k's row only, from the given stream.
func (f *Frame) addNoiseRow(k int, rng *rand.Rand) {
	std := f.Params.NoiseStd
	row := f.Data[k]
	for i := range row {
		row[i] += complex(rng.NormFloat64()*std, rng.NormFloat64()*std)
	}
}

// Differencer is the streaming form of successive-frame background
// subtraction (§3): feed it frames one at a time and it emits cur - prev,
// holding exactly one frame of history. The zero value is ready to use.
//
// The history is the differencer's own copy, never a retained caller
// frame: Step reads the input only for the duration of the call, so a
// pooled source may recycle or overwrite the frame as soon as its item has
// finished the stage chain. With UsePool, the emitted difference frames
// come from (and their history scratch is returned to) a FramePool, making
// the steady state allocation-free; ownership of each emitted frame passes
// to the caller, who returns it to the same pool when done (in the
// streaming pipeline, the pipeline itself recycles it when the item
// completes — see DESIGN.md "Buffer ownership & pooling").
type Differencer struct {
	prev *Frame
	pool *FramePool
}

// UsePool makes the differencer draw its output (and history) frames from
// the given pool. Call it before the first Step.
func (d *Differencer) UsePool(p *FramePool) { d.pool = p }

func (d *Differencer) getFrame(p Params, at float64) *Frame {
	if d.pool != nil {
		return d.pool.Get(at)
	}
	return NewFrame(p, at)
}

// Step consumes the next frame and returns its background-subtracted
// difference against the previous one. The first frame only seeds the
// history: Step returns (nil, false) for it, matching the batch pipeline
// where frame 0 contributes no detection set. The returned frame is owned
// by the caller; in pooled mode it must eventually go back to the pool.
func (d *Differencer) Step(f *Frame) (*Frame, bool) {
	if d.prev == nil {
		d.prev = d.getFrame(f.Params, f.Time)
		d.prev.CopyFrom(f)
		return nil, false
	}
	if !d.prev.SameShape(f) {
		panic("fmcw: Differencer.Step with mismatched frame shapes")
	}
	out := d.getFrame(f.Params, f.Time)
	out.Params, out.Time = f.Params, f.Time
	// One fused pass: emit f - prev and update the history to f, touching
	// each row once. The arithmetic matches Sub exactly, so pooled and
	// non-pooled runs are bit-identical.
	for k := range f.Data {
		fr, pr, or := f.Data[k], d.prev.Data[k], out.Data[k]
		for i := range fr {
			or[i] = fr[i] - pr[i]
			pr[i] = fr[i]
		}
	}
	d.prev.Time = f.Time
	return out, true
}

// Reset drops the held history so the next Step seeds it again, returning
// the history scratch to the pool when one is configured.
func (d *Differencer) Reset() {
	if d.pool != nil && d.prev != nil {
		d.pool.Put(d.prev)
	}
	d.prev = nil
}

// Sub returns f - g sample-wise as a new frame: the successive-frame
// background subtraction primitive of §3 ("Addressing Static Reflectors").
// It is the allocating wrapper over SubInto.
func (f *Frame) Sub(g *Frame) *Frame {
	out := NewFrame(f.Params, f.Time)
	f.SubInto(out, g)
	return out
}

// SubInto writes f - g sample-wise into dst, stamping it with f's Params
// and Time — the destination-passing form of Sub for callers recycling
// difference frames through a FramePool. It panics if the frames have
// different shapes. dst may alias f or g.
//
//rfvet:allocfree
func (f *Frame) SubInto(dst, g *Frame) {
	if len(f.Data) != len(g.Data) || len(f.Data) != len(dst.Data) {
		panic("fmcw: SubInto with mismatched antenna counts")
	}
	dst.Params, dst.Time = f.Params, f.Time
	for k := range f.Data {
		if len(f.Data[k]) != len(g.Data[k]) || len(f.Data[k]) != len(dst.Data[k]) {
			panic("fmcw: SubInto with mismatched sample counts")
		}
		fr, gr, dr := f.Data[k], g.Data[k], dst.Data[k]
		for i := range fr {
			dr[i] = fr[i] - gr[i]
		}
	}
}
