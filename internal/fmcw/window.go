package fmcw

// Window is a bounded sliding window of the last K frames, held in a ring
// buffer — the multi-frame generalization of Differencer's one-frame
// history. Push evicts the oldest frame once the window is full, so a
// consumer that feeds every capture frame through a Window holds exactly K
// frames regardless of capture length. It is the bounded-memory substrate
// for sliding-window stages (range–Doppler bursts, multi-frame smoothing).
type Window struct {
	buf  []*Frame
	head int // next write position
	n    int // frames currently held, <= len(buf)
}

// NewWindow returns an empty window of capacity k (k < 1 is treated as 1).
func NewWindow(k int) *Window {
	if k < 1 {
		k = 1
	}
	return &Window{buf: make([]*Frame, k)}
}

// Push appends a frame, evicting the oldest once the window is full. The
// window aliases f — the caller must keep the frame unmodified while it is
// held. Consumers feeding from a FramePool (where frames are recycled as
// soon as their pipeline item completes) must use PushCopy instead.
func (w *Window) Push(f *Frame) {
	w.buf[w.head] = f
	w.head = (w.head + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
}

// PushCopy appends a private copy of f, reusing the evicted slot's frame
// storage so a warmed-up window allocates nothing per push. Unlike Push,
// the window never aliases the caller's frame, which makes it safe under
// the pooled buffer-ownership contract: the caller may recycle or
// overwrite f immediately after PushCopy returns.
func (w *Window) PushCopy(f *Frame) {
	dst := w.buf[w.head]
	if dst == nil || !dst.SameShape(f) {
		dst = NewFrame(f.Params, f.Time)
	}
	dst.CopyFrom(f)
	w.buf[w.head] = dst
	w.head = (w.head + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
}

// Len returns the number of frames currently held.
func (w *Window) Len() int { return w.n }

// Cap returns the window capacity K.
func (w *Window) Cap() int { return len(w.buf) }

// Full reports whether the window holds K frames.
func (w *Window) Full() bool { return w.n == len(w.buf) }

// Frames appends the held frames to dst in arrival order (oldest first) and
// returns the result — the scratch-reusing accessor for per-frame sliding
// windows, so a stage that calls Frames(scratch[:0]) every frame allocates
// nothing in steady state. The returned slice aliases the window's frames;
// it is invalidated by the next Push.
func (w *Window) Frames(dst []*Frame) []*Frame {
	start := w.head - w.n
	if start < 0 {
		start += len(w.buf)
	}
	for i := 0; i < w.n; i++ {
		dst = append(dst, w.buf[(start+i)%len(w.buf)])
	}
	return dst
}

// Reset empties the window and drops the held frames.
func (w *Window) Reset() {
	for i := range w.buf {
		w.buf[i] = nil
	}
	w.head, w.n = 0, 0
}
