package fmcw

import "sync"

// FramePool recycles equally-shaped frames so the steady state of a
// streaming pipeline synthesizes, subtracts, and processes millions of
// frames without allocating a single new one. It is a plain mutex-guarded
// free list rather than a sync.Pool: the GC never empties it, which keeps
// warmed-up throughput deterministic and lets allocation-regression tests
// assert an exact zero allocs/op.
//
// Ownership contract: Get hands the caller exclusive ownership of a zeroed
// frame; Put takes it back. A frame must not be used after Put — the pool
// will hand the same storage to the next Get. Put accepts any frame of the
// pool's shape (it panics on mismatch), so frames that began life outside
// the pool may retire into it. See DESIGN.md "Buffer ownership & pooling"
// for how the streaming pipeline threads this contract through its stages.
type FramePool struct {
	params Params
	mu     sync.Mutex
	free   []*Frame
}

// NewFramePool returns an empty pool producing frames with the given
// parameters.
func NewFramePool(p Params) *FramePool {
	return &FramePool{params: p}
}

// Params returns the frame configuration this pool produces.
func (fp *FramePool) Params() Params { return fp.params }

// Get returns a zeroed frame stamped with the pool's Params and the given
// capture time, reusing a recycled frame when one is available and
// allocating otherwise (warm-up, or more frames in flight than ever
// before).
func (fp *FramePool) Get(at float64) *Frame {
	fp.mu.Lock()
	if k := len(fp.free); k > 0 {
		f := fp.free[k-1]
		fp.free[k-1] = nil
		fp.free = fp.free[:k-1]
		fp.mu.Unlock()
		f.Params = fp.params
		f.Time = at
		return f
	}
	fp.mu.Unlock()
	return NewFrame(fp.params, at)
}

// Put recycles a frame into the pool, zeroing it first so the next Get
// honors Get's zeroed-frame contract. Put(nil) is a no-op; a frame whose
// shape does not match the pool's parameters panics (recycling it would
// hand a wrong-size frame to a later Get).
func (fp *FramePool) Put(f *Frame) {
	if f == nil {
		return
	}
	n := fp.params.SamplesPerChirp()
	if len(f.Data) != fp.params.NumAntennas {
		panic("fmcw: FramePool.Put with mismatched antenna count")
	}
	for k := range f.Data {
		if len(f.Data[k]) != n {
			panic("fmcw: FramePool.Put with mismatched sample count")
		}
	}
	f.Reset()
	fp.mu.Lock()
	fp.free = append(fp.free, f)
	fp.mu.Unlock()
}

// Len reports how many frames are currently parked in the pool.
func (fp *FramePool) Len() int {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	return len(fp.free)
}
