//go:build !amd64

package fmcw

// useSynthAVX is always false off amd64: synthesis runs the portable scalar
// kernels.
var useSynthAVX = false

// synthTabAVX is unreachable off amd64 (useSynthAVX is never set); the stub
// keeps the package compiling without per-architecture dispatch at the call
// sites.
func synthTabAVX(tab *complex128, n int, s4r, s4i float64) {
	panic("fmcw: synthTabAVX without AVX support")
}

// synthMacAVX is unreachable off amd64; see synthTabAVX.
func synthMacAVX(row, tab *complex128, n int, cr, ci float64) {
	panic("fmcw: synthMacAVX without AVX support")
}
