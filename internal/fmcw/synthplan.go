package fmcw

import (
	"context"
	"math"
	"math/rand"
	"sync"

	"rfprotect/internal/parallel"
)

// SynthPlan is the synthesis-side sibling of radar.FrontEndPlan: everything
// about beat-signal synthesis that depends only on the Params shape —
// derived constants, per-antenna steering scales, and a free list of warmed
// execution contexts — compiled once and shared by every caller with that
// shape (all rooms of one configuration in the daemon share one plan).
//
// The plan restructures the legacy kernel's arithmetic: instead of running
// the serial per-sample phasor recurrence cur *= stepC once per
// (return × antenna), it builds one rotation table per return
// (tab[i] = A-free e^{j·step·i}) and reduces every antenna to a scaled
// complex multiply-accumulate row[i] += amp_k · tab[i] — NumAntennas× fewer
// serial recurrences, and the MAC is vectorizable (synth_amd64.s). The
// planned samples differ from the legacy kernel's at the ULP level (the
// table is built by a 4-stride recurrence, and the steering phase is
// computed from a precompiled per-antenna scale), so the planned path is
// the defining semantics; the legacy kernel remains as the ULP reference
// (SynthesizeLegacyInto). What is preserved exactly: bit-identity across
// worker counts, AVX ≡ scalar fallback, planned-vs-planned determinism,
// and the noise contract (one base draw, per-antenna split streams).
type SynthPlan struct {
	params Params
	n      int // samples per chirp
	nAnt   int

	sl      float64 // chirp slope
	dt      float64 // IF sample period
	twoPiFc float64 // 2π·CenterFreq

	// steerScale[k] = -2π·k·d/λ: antenna k's steering phase for a return is
	// steerScale[k]·cos(AoA).
	steerScale []float64

	mu   sync.Mutex
	free []*synthExec
}

// CompileSynthPlan builds the synthesis plan for a parameter shape. Plans
// are immutable after compilation (the executor free list has its own
// lock), so one plan serves concurrent synthesis calls; overlapping calls
// each check out their own executor.
func CompileSynthPlan(p Params) *SynthPlan {
	pl := &SynthPlan{
		params:  p,
		n:       p.SamplesPerChirp(),
		nAnt:    p.NumAntennas,
		sl:      p.Slope(),
		dt:      1 / p.SampleRate,
		twoPiFc: 2 * math.Pi * p.CenterFreq,
	}
	lambda := p.Wavelength()
	d := p.Spacing()
	pl.steerScale = make([]float64, pl.nAnt)
	for k := range pl.steerScale {
		pl.steerScale[k] = -2 * math.Pi * float64(k) * d / lambda
	}
	return pl
}

// Params returns the shape the plan was compiled for.
func (pl *SynthPlan) Params() Params { return pl.params }

// synthPlans is the global shape-keyed plan cache behind the package-level
// synthesis entry points, mirroring the dsp package's FFT plan cache: the
// first synthesis of a shape compiles its plan, every later one reuses it.
var synthPlans struct {
	mu sync.Mutex
	m  map[Params]*SynthPlan
}

// PlanSynth returns the shared plan for a parameter shape, compiling it on
// first use. The compile runs under the cache lock so a racing first use
// never compiles the same shape twice.
func PlanSynth(p Params) *SynthPlan {
	synthPlans.mu.Lock()
	pl := synthPlans.m[p]
	if pl == nil {
		pl = CompileSynthPlan(p)
		if synthPlans.m == nil {
			synthPlans.m = make(map[Params]*SynthPlan)
		}
		synthPlans.m[p] = pl
	}
	synthPlans.mu.Unlock()
	return pl
}

// synthExec is one synthesis execution context: the compacted per-return
// parameters, the per-return rotation tables, and the pre-bound fan-out
// closures of a single SynthesizeInto call in flight. Executors live on the
// plan's free list; their table storage is the memory rooms of one shape
// share across frames.
type synthExec struct {
	pl *SynthPlan

	// Per active (nonzero-amplitude) return, filled by prep: the per-sample
	// rotation stepC split into planes, the antenna-independent phase
	// carrier, the amplitude, and cos(AoA) for the steering phase.
	stepR, stepI []float64
	carrier      []float64
	amp          []float64
	cosA         []float64
	// tab holds the rotation tables, one n-sample row per active return.
	tab  []complex128
	nact int

	tabFn func(int)
	rowFn func(int)
	// Per-call state read by the closures; cleared on exit.
	dst   *Frame
	noisy bool
	base  int64
}

func (pl *SynthPlan) getExec() *synthExec {
	pl.mu.Lock()
	if k := len(pl.free); k > 0 {
		e := pl.free[k-1]
		pl.free[k-1] = nil
		pl.free = pl.free[:k-1]
		pl.mu.Unlock()
		return e
	}
	pl.mu.Unlock()
	return pl.newExec()
}

func (pl *SynthPlan) putExec(e *synthExec) {
	pl.mu.Lock()
	pl.free = append(pl.free, e)
	pl.mu.Unlock()
}

// newExec builds an executor with its fan-out closures bound once — method
// values, recycled with the executor, so steady-state synthesis creates no
// closure. Scratch slices start empty and grow to the first call's return
// count (growSynthFloats/growSynthComplexes, kept out of the annotated hot
// bodies), then stay.
func (pl *SynthPlan) newExec() *synthExec {
	e := &synthExec{pl: pl}
	e.tabFn = e.table
	e.rowFn = e.antenna
	return e
}

// prep compacts the nonzero-amplitude returns into the executor's parallel
// per-return arrays and sizes the table storage. Zero-amplitude returns are
// skipped exactly as the legacy kernel skipped them, so the planned
// accumulation visits the same returns in the same order.
//
//rfvet:allocfree
func (e *synthExec) prep(returns []Return) {
	pl := e.pl
	nr := 0
	for _, r := range returns {
		if r.Amplitude == 0 {
			continue
		}
		nr++
	}
	e.stepR = growSynthFloats(e.stepR, nr)
	e.stepI = growSynthFloats(e.stepI, nr)
	e.carrier = growSynthFloats(e.carrier, nr)
	e.amp = growSynthFloats(e.amp, nr)
	e.cosA = growSynthFloats(e.cosA, nr)
	e.tab = growSynthComplexes(e.tab, nr*pl.n)
	i := 0
	at := e.dst.Time
	for _, r := range returns {
		if r.Amplitude == 0 {
			continue
		}
		beat := pl.sl*r.Delay + r.FreqShift
		// The frequency-shifting modulator free-runs across chirps, so its
		// tone's phase at this chirp's start depends on absolute capture
		// time — same expression as the legacy kernel (see addReturnsAntenna).
		e.carrier[i] = pl.twoPiFc*r.Delay + r.Phase + 2*math.Pi*r.FreqShift*at
		step := 2 * math.Pi * beat * pl.dt
		e.stepR[i], e.stepI[i] = math.Cos(step), math.Sin(step)
		e.amp[i] = r.Amplitude
		e.cosA[i] = math.Cos(r.AoA)
		i++
	}
	e.nact = nr
}

// table builds active return r's rotation table — the phase-1 unit of the
// fan-out. Each index writes only its own table row, so any worker width
// produces the same bits.
//
//rfvet:allocfree
func (e *synthExec) table(r int) {
	n := e.pl.n
	buildPhasorTab(e.tab[r*n:(r+1)*n], e.stepR[r], e.stepI[r])
}

// buildPhasorTab fills tab[i] = stepC^i for stepC = (sr, si) by a 4-stride
// recurrence: the first four powers seed four independent dependency
// chains, then tab[i] = tab[i-4]·stepC⁴ — this IS the defining semantics,
// implemented identically by the scalar loop and the AVX kernel (two ymm
// chains of two complexes each, same multiply formula per lane), so the
// two paths are bit-identical by construction. Compared with the legacy
// serial recurrence the strided form both shortens the dependency chain
// 4× and accumulates less rounding (n/4 multiplies per chain instead of n).
//
//rfvet:allocfree
func buildPhasorTab(tab []complex128, sr, si float64) {
	n := len(tab)
	if n == 0 {
		return
	}
	tab[0] = complex(1, 0)
	for i := 1; i < 4 && i < n; i++ {
		tr, ti := real(tab[i-1]), imag(tab[i-1])
		tab[i] = complex(sr*tr-si*ti, sr*ti+si*tr)
	}
	if n <= 4 {
		return
	}
	// stepC⁴, continuing the seed chain.
	t3r, t3i := real(tab[3]), imag(tab[3])
	s4r := sr*t3r - si*t3i
	s4i := sr*t3i + si*t3r
	i := 4
	if useSynthAVX && n >= 8 {
		n4 := n &^ 3
		synthTabAVX(&tab[0], n4, s4r, s4i)
		i = n4
	}
	for ; i < n; i++ {
		tr, ti := real(tab[i-4]), imag(tab[i-4])
		tab[i] = complex(s4r*tr-s4i*ti, s4r*ti+s4i*tr)
	}
}

// antenna accumulates every active return into antenna k's row, then adds
// antenna k's noise stream — the phase-2 unit of the fan-out. It reads the
// shared tables (complete after the phase-1 barrier) and writes only row k
// plus its own pooled rng, so any worker width produces the same bits; per
// sample, returns accumulate in compacted order, the same relative order as
// the legacy kernel.
func (e *synthExec) antenna(k int) {
	pl := e.pl
	row := e.dst.Data[k]
	scale := pl.steerScale[k]
	n := pl.n
	for r := 0; r < e.nact; r++ {
		ph0 := e.carrier[r] + scale*e.cosA[r]
		a := e.amp[r]
		cr := a * math.Cos(ph0)
		ci := a * math.Sin(ph0)
		macRow(row, e.tab[r*n:(r+1)*n], cr, ci)
	}
	if e.noisy {
		rng := getNoiseRng()
		rng.Seed(parallel.SplitSeed(e.base, k))
		e.dst.addNoiseRow(k, rng)
		putNoiseRng(rng)
	}
}

// macRow performs the scaled complex multiply-accumulate
// row[i] += (cr, ci)·tab[i]. The scalar loop is the defining semantics; the
// AVX kernel executes the same multiply/addsub/add sequence per lane
// (VMULPD/VADDSUBPD/VADDPD are lanewise IEEE-754 double ops and amd64
// never contracts to FMA), so vector and scalar paths are bit-identical.
// Note tab[0] = 1+0i makes sample 0 exactly (cr, ci) — the legacy kernel's
// first sample, bit for bit.
//
//rfvet:allocfree
func macRow(row, tab []complex128, cr, ci float64) {
	i := 0
	if useSynthAVX && len(row) >= 4 {
		n4 := len(row) &^ 3
		synthMacAVX(&row[0], &tab[0], n4, cr, ci)
		i = n4
	}
	for ; i < len(row); i++ {
		tr, ti := real(tab[i]), imag(tab[i])
		row[i] += complex(cr*tr-ci*ti, cr*ti+ci*tr)
	}
}

// SynthesizeInto accumulates the returns (and noise) into dst through the
// compiled plan: phase 1 fans out over active returns to build rotation
// tables, phase 2 fans out over antennas for the scaled MAC plus the
// per-antenna noise stream. The ForEachCtx barrier between the phases is
// what makes the output bit-identical for every worker count: phase 2 reads
// tables that are complete regardless of the phase-1 schedule, and each
// phase writes only disjoint destinations. dst must be zeroed (synthesis
// adds on top) and must have the plan's shape. The noise base seed is drawn
// before the fan-out, so a canceled synthesis still consumes exactly one
// draw; on cancellation dst holds partial data and must be discarded (or
// Reset) by the caller. After the executor free list is warm a call
// allocates nothing.
//
//rfvet:allocfree
func (pl *SynthPlan) SynthesizeInto(ctx context.Context, dst *Frame, returns []Return, rng *rand.Rand, workers int) error {
	if dst.Params != pl.params {
		panic("fmcw: SynthesizeInto on a frame shape the plan was not compiled for")
	}
	noisy := rng != nil && pl.params.NoiseStd > 0
	var base int64
	if noisy {
		base = rng.Int63()
	}
	e := pl.getExec()
	e.dst, e.noisy, e.base = dst, noisy, base
	e.prep(returns)
	err := parallel.ForEachCtx(ctx, e.nact, workers, e.tabFn)
	if err == nil {
		err = parallel.ForEachCtx(ctx, pl.nAnt, workers, e.rowFn)
	}
	e.dst = nil
	pl.putExec(e)
	return err
}

// growSynthFloats returns s resized to n, reallocating only when capacity
// is short. Kept out of line (and out of the //rfvet:allocfree executors'
// inlined bodies) so the one-time growth is the only allocation site.
//
//go:noinline
func growSynthFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// growSynthComplexes is growSynthFloats for complex slices.
//
//go:noinline
func growSynthComplexes(s []complex128, n int) []complex128 {
	if cap(s) < n {
		return make([]complex128, n)
	}
	return s[:n]
}
