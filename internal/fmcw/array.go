package fmcw

import (
	"math"

	"rfprotect/internal/geom"
)

// Array places a uniform linear radar array in the 2-D scene. The array lies
// along the direction AxisAngle; a reflection arriving from world direction
// v is seen at AoA = angle between the array axis and v, in [0, π]. Facing
// selects which half-plane the radar looks into (a 1-D array cannot tell the
// two sides apart; a wall-mounted radar only sees one).
type Array struct {
	Position  geom.Point // array phase center
	AxisAngle float64    // direction of the array line, radians
	Facing    int        // +1: look toward axis+π/2 side, -1: the other side
}

// facingSign normalizes Facing to ±1 (zero value means +1).
func (a Array) facingSign() float64 {
	if a.Facing < 0 {
		return -1
	}
	return 1
}

// AoAOf returns the angle of arrival in [0, π] of a scatterer at world
// position p.
func (a Array) AoAOf(p geom.Point) float64 {
	dir := p.Sub(a.Position).Angle()
	diff := geom.AngleDiff(dir, a.AxisAngle)
	if diff < 0 {
		diff = -diff
	}
	return diff
}

// DistanceOf returns the range from the array phase center to p.
func (a Array) DistanceOf(p geom.Point) float64 {
	return a.Position.Dist(p)
}

// PointAt maps a (range, AoA) measurement back into world coordinates on the
// side the array faces.
func (a Array) PointAt(r, aoa float64) geom.Point {
	theta := a.AxisAngle + a.facingSign()*aoa
	return geom.Point{
		X: a.Position.X + r*math.Cos(theta),
		Y: a.Position.Y + r*math.Sin(theta),
	}
}

// ReturnFrom builds the Return for a point scatterer at p with the given
// amplitude. extraDelay is added to the true round-trip delay and extraPhase
// to the carrier phase.
func (a Array) ReturnFrom(p geom.Point, amplitude, extraDelay, extraPhase float64) Return {
	d := a.DistanceOf(p)
	return Return{
		Delay:     2*d/C + extraDelay,
		Amplitude: amplitude,
		AoA:       a.AoAOf(p),
		Phase:     extraPhase,
	}
}
