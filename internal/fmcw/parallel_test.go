package fmcw

import (
	"math/rand"
	"testing"
)

// benchReturns builds a deterministic mixed workload: direct paths,
// frequency-shifted reflector tones, and multipath-like weak returns.
func benchReturns(n int) []Return {
	rng := rand.New(rand.NewSource(99))
	out := make([]Return, n)
	for i := range out {
		out[i] = Return{
			Delay:     2 * (1 + 10*rng.Float64()) / C,
			Amplitude: 0.05 + rng.Float64(),
			AoA:       rng.Float64() * 3.1,
			FreqShift: float64(i%3) * 20e3,
			Phase:     rng.Float64(),
		}
	}
	return out
}

// TestSynthesizeWorkersBitIdentical is the reproducibility contract of the
// parallel pipeline: for a fixed seed, SynthesizeWorkers must produce
// bit-identical frames for every worker count, including the sequential
// workers=1 path — noise comes from per-antenna split streams, never from
// worker-schedule-dependent draws.
func TestSynthesizeWorkersBitIdentical(t *testing.T) {
	cases := []struct {
		name    string
		noise   float64
		returns int
		seed    int64
	}{
		{"noiseless-few-returns", 0, 3, 1},
		{"noisy-few-returns", 0.02, 3, 1},
		{"noisy-many-returns", 0.05, 40, 7},
		{"noise-only", 0.5, 0, 11},
	}
	workerCounts := []int{2, 3, 4, 8, 100}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := DefaultParams()
			p.NoiseStd = tc.noise
			returns := benchReturns(tc.returns)
			ref := SynthesizeWorkers(p, returns, 0.25, rand.New(rand.NewSource(tc.seed)), 1)
			for _, w := range workerCounts {
				got := SynthesizeWorkers(p, returns, 0.25, rand.New(rand.NewSource(tc.seed)), w)
				for k := range ref.Data {
					for i := range ref.Data[k] {
						if got.Data[k][i] != ref.Data[k][i] {
							t.Fatalf("workers=%d: antenna %d sample %d differs: %v vs %v",
								w, k, i, got.Data[k][i], ref.Data[k][i])
						}
					}
				}
			}
		})
	}
}

// TestSynthesizeMatchesDefaultEntryPoint pins Synthesize to the
// auto-sized worker pool path.
func TestSynthesizeMatchesDefaultEntryPoint(t *testing.T) {
	p := DefaultParams()
	returns := benchReturns(10)
	a := Synthesize(p, returns, 0.1, rand.New(rand.NewSource(3)))
	b := SynthesizeWorkers(p, returns, 0.1, rand.New(rand.NewSource(3)), 0)
	for k := range a.Data {
		for i := range a.Data[k] {
			if a.Data[k][i] != b.Data[k][i] {
				t.Fatalf("Synthesize diverges from SynthesizeWorkers(…, 0) at [%d][%d]", k, i)
			}
		}
	}
}

// TestAddReturnsMatchesPerAntennaDecomposition guards the refactor that
// moved the accumulation loop to a per-antenna unit: the public AddReturns
// must equal the antenna-sliced path exactly.
func TestAddReturnsMatchesPerAntennaDecomposition(t *testing.T) {
	p := DefaultParams()
	returns := benchReturns(17)
	whole := NewFrame(p, 0.5)
	whole.AddReturns(returns)
	sliced := NewFrame(p, 0.5)
	for k := p.NumAntennas - 1; k >= 0; k-- { // any antenna order is fine
		sliced.addReturnsAntenna(k, returns)
	}
	for k := range whole.Data {
		for i := range whole.Data[k] {
			if whole.Data[k][i] != sliced.Data[k][i] {
				t.Fatalf("antenna %d sample %d differs", k, i)
			}
		}
	}
}

// TestSynthesizeConsumesOneDrawForNoise documents the seed-splitting
// contract: a noisy Synthesize consumes exactly one value from the caller's
// rng (the base seed), so surrounding code that shares the rng sees the
// same stream position regardless of frame geometry.
func TestSynthesizeConsumesOneDrawForNoise(t *testing.T) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(5))
	ref := rand.New(rand.NewSource(5))
	ref.Int63()
	want := ref.Int63()
	Synthesize(p, benchReturns(4), 0, rng)
	if got := rng.Int63(); got != want {
		t.Fatalf("rng advanced unexpectedly: got %d, want %d", got, want)
	}
	// A noiseless synthesis must not touch the rng at all.
	p.NoiseStd = 0
	rng2 := rand.New(rand.NewSource(5))
	Synthesize(p, benchReturns(4), 0, rng2)
	if got := rng2.Int63(); got != func() int64 { r := rand.New(rand.NewSource(5)); return r.Int63() }() {
		t.Fatalf("noiseless synthesis consumed rng draws: %d", got)
	}
}

func BenchmarkSynthesizeSequential(b *testing.B) {
	p := DefaultParams()
	returns := benchReturns(64)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SynthesizeWorkers(p, returns, 0, rng, 1)
	}
}

func BenchmarkSynthesizeParallel(b *testing.B) {
	p := DefaultParams()
	returns := benchReturns(64)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SynthesizeWorkers(p, returns, 0, rng, 0)
	}
}
