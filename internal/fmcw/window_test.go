package fmcw

import "testing"

func TestWindowSlides(t *testing.T) {
	w := NewWindow(3)
	if w.Cap() != 3 || w.Len() != 0 || w.Full() {
		t.Fatalf("fresh window: cap %d len %d full %v", w.Cap(), w.Len(), w.Full())
	}
	p := DefaultParams()
	mk := func(at float64) *Frame { return NewFrame(p, at) }
	w.Push(mk(0))
	w.Push(mk(1))
	if w.Full() {
		t.Fatal("window full after 2 of 3 frames")
	}
	w.Push(mk(2))
	if !w.Full() || w.Len() != 3 {
		t.Fatal("window should be full after 3 frames")
	}
	// Sliding: push two more, the two oldest are evicted.
	w.Push(mk(3))
	w.Push(mk(4))
	got := w.Frames(nil)
	if len(got) != 3 {
		t.Fatalf("Frames returned %d frames, want 3", len(got))
	}
	for i, want := range []float64{2, 3, 4} {
		if got[i].Time != want {
			t.Fatalf("frame %d time %v, want %v (oldest-first order)", i, got[i].Time, want)
		}
	}
}

func TestWindowFramesReusesScratch(t *testing.T) {
	w := NewWindow(4)
	p := DefaultParams()
	for i := 0; i < 6; i++ {
		w.Push(NewFrame(p, float64(i)))
	}
	scratch := make([]*Frame, 0, 4)
	out := w.Frames(scratch)
	if &out[0] != &scratch[:1][0] {
		t.Fatal("Frames did not append into the provided scratch slice")
	}
	for i, want := range []float64{2, 3, 4, 5} {
		if out[i].Time != want {
			t.Fatalf("frame %d time %v, want %v", i, out[i].Time, want)
		}
	}
}

func TestWindowPartialAndReset(t *testing.T) {
	w := NewWindow(5)
	p := DefaultParams()
	w.Push(NewFrame(p, 7))
	w.Push(NewFrame(p, 8))
	got := w.Frames(nil)
	if len(got) != 2 || got[0].Time != 7 || got[1].Time != 8 {
		t.Fatalf("partial window frames %v", got)
	}
	w.Reset()
	if w.Len() != 0 || w.Full() {
		t.Fatal("Reset did not empty the window")
	}
	if got := w.Frames(nil); len(got) != 0 {
		t.Fatalf("frames after Reset: %d", len(got))
	}
	// Degenerate capacity is clamped to 1.
	one := NewWindow(0)
	one.Push(NewFrame(p, 1))
	one.Push(NewFrame(p, 2))
	if got := one.Frames(nil); len(got) != 1 || got[0].Time != 2 {
		t.Fatalf("capacity-1 window holds %v", got)
	}
}
