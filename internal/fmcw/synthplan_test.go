package fmcw

import (
	"math"
	"math/rand"
	"testing"
)

// planTestParams returns the default shape scaled to n samples per chirp,
// so table-build and MAC tails (n % 4, n < 8, n < 4) all get exercised.
func planTestParams(n int) Params {
	p := DefaultParams()
	p.SampleRate = float64(n) / p.ChirpDuration
	return p
}

func planTestReturns(n int, seed int64) []Return {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Return, n)
	for i := range out {
		out[i] = Return{
			Delay:     2 * (1 + 10*rng.Float64()) / C,
			Amplitude: 0.05 + rng.Float64(),
			AoA:       rng.Float64() * 3.1,
			FreqShift: float64(i%3) * 20e3,
			Phase:     rng.Float64(),
		}
	}
	// The legacy kernel skips zero amplitudes; the plan must compact them
	// out without disturbing the accumulation order.
	if n > 2 {
		out[n/2].Amplitude = 0
	}
	return out
}

func framesEqualBits(t *testing.T, name string, a, b *Frame) {
	t.Helper()
	for k := range a.Data {
		for i := range a.Data[k] {
			av, bv := a.Data[k][i], b.Data[k][i]
			if math.Float64bits(real(av)) != math.Float64bits(real(bv)) ||
				math.Float64bits(imag(av)) != math.Float64bits(imag(bv)) {
				t.Fatalf("%s: antenna %d sample %d differs: %v vs %v", name, k, i, av, bv)
			}
		}
	}
}

// TestSynthPlanAVXBitIdenticalToScalar proves the vectorized synthesis
// kernels' bit-identity claim empirically: for sample counts hitting the
// full vector path, the strided tail, the MAC-only vector path, and the
// all-scalar degenerate cases, the AVX path must reproduce the scalar
// fallback bit for bit — table build and scaled MAC both.
func TestSynthPlanAVXBitIdenticalToScalar(t *testing.T) {
	if !useSynthAVX {
		t.Skip("AVX unavailable on this machine")
	}
	defer func() { useSynthAVX = true }()
	for _, n := range []int{512, 510, 37, 8, 6, 3, 1} {
		p := planTestParams(n)
		returns := planTestReturns(9, 7)
		pl := CompileSynthPlan(p)

		scalar, vector := NewFrame(p, 0.35), NewFrame(p, 0.35)
		useSynthAVX = false
		if err := pl.SynthesizeInto(nil, scalar, returns, rand.New(rand.NewSource(3)), 1); err != nil {
			t.Fatalf("n %d: scalar: %v", n, err)
		}
		useSynthAVX = true
		if err := pl.SynthesizeInto(nil, vector, returns, rand.New(rand.NewSource(3)), 1); err != nil {
			t.Fatalf("n %d: vector: %v", n, err)
		}
		framesEqualBits(t, "avx-vs-scalar", scalar, vector)
	}
}

// TestSynthPlannedWorkerBitIdentity is the worker-count contract on the
// planned path: the two-phase fan-out (tables, then antennas) must produce
// identical bits for sequential, two-worker, and one-per-CPU synthesis,
// noise included. make race runs this under the race detector.
func TestSynthPlannedWorkerBitIdentity(t *testing.T) {
	p := DefaultParams()
	returns := planTestReturns(24, 11)
	pl := PlanSynth(p)
	var ref *Frame
	for _, workers := range []int{1, 2, 0} {
		f := NewFrame(p, 0.6)
		if err := pl.SynthesizeInto(nil, f, returns, rand.New(rand.NewSource(5)), workers); err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		if ref == nil {
			ref = f
			continue
		}
		framesEqualBits(t, "workers", ref, f)
	}
}

// TestSynthPlannedMatchesLegacyULP pins the planned kernel to the retained
// legacy kernel: the restructured arithmetic (strided table recurrence,
// precompiled steering scale) may shift samples at the ULP level but no
// further. The tolerance is generous against the accumulated magnitude —
// the observed differences are ~1e-12 relative.
func TestSynthPlannedMatchesLegacyULP(t *testing.T) {
	for _, n := range []int{512, 37} {
		p := planTestParams(n)
		returns := planTestReturns(16, 9)
		planned, legacy := NewFrame(p, 0.8), NewFrame(p, 0.8)
		if err := SynthesizeInto(nil, planned, returns, rand.New(rand.NewSource(2)), 1); err != nil {
			t.Fatal(err)
		}
		if err := SynthesizeLegacyInto(nil, legacy, returns, rand.New(rand.NewSource(2)), 1); err != nil {
			t.Fatal(err)
		}
		scale := 0.0
		for k := range legacy.Data {
			for _, v := range legacy.Data[k] {
				if a := math.Abs(real(v)) + math.Abs(imag(v)); a > scale {
					scale = a
				}
			}
		}
		tol := 1e-9 * math.Max(scale, 1)
		for k := range legacy.Data {
			for i := range legacy.Data[k] {
				d := planned.Data[k][i] - legacy.Data[k][i]
				if math.Abs(real(d)) > tol || math.Abs(imag(d)) > tol {
					t.Fatalf("n %d: antenna %d sample %d: planned %v vs legacy %v (tol %g)",
						n, k, i, planned.Data[k][i], legacy.Data[k][i], tol)
				}
			}
		}
	}
}

// TestSynthPlannedZeroSampleFrame: a degenerate configuration with zero
// samples per chirp must synthesize (both kernels) without touching memory
// or panicking — the noise draw contract still holds.
func TestSynthPlannedZeroSampleFrame(t *testing.T) {
	p := DefaultParams()
	p.ChirpDuration = 1e-12 // rounds to 0 samples
	if n := p.SamplesPerChirp(); n != 0 {
		t.Fatalf("expected 0 samples, got %d", n)
	}
	returns := planTestReturns(4, 1)
	for _, synth := range []func(dst *Frame, rng *rand.Rand) error{
		func(dst *Frame, rng *rand.Rand) error { return SynthesizeInto(nil, dst, returns, rng, 1) },
		func(dst *Frame, rng *rand.Rand) error { return SynthesizeLegacyInto(nil, dst, returns, rng, 1) },
	} {
		rng := rand.New(rand.NewSource(4))
		f := NewFrame(p, 0)
		if err := synth(f, rng); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSynthPlanSharedAcrossCallers: PlanSynth returns one plan per shape,
// and a plan compiled directly produces the same bits as the shared one.
func TestSynthPlanSharedAcrossCallers(t *testing.T) {
	p := DefaultParams()
	if PlanSynth(p) != PlanSynth(p) {
		t.Fatal("PlanSynth returned distinct plans for one shape")
	}
	returns := planTestReturns(8, 3)
	a, b := NewFrame(p, 0.1), NewFrame(p, 0.1)
	if err := PlanSynth(p).SynthesizeInto(nil, a, returns, nil, 1); err != nil {
		t.Fatal(err)
	}
	if err := CompileSynthPlan(p).SynthesizeInto(nil, b, returns, nil, 1); err != nil {
		t.Fatal(err)
	}
	framesEqualBits(t, "shared-vs-private-plan", a, b)
}

// TestSynthPlannedAllocFree: after one warm-up call the planned pooled
// synthesis path allocates exactly nothing per frame.
func TestSynthPlannedAllocFree(t *testing.T) {
	p := DefaultParams()
	returns := planTestReturns(24, 13)
	pl := PlanSynth(p)
	pool := NewFramePool(p)
	rng := rand.New(rand.NewSource(6))
	run := func() {
		f := pool.Get(0)
		if err := pl.SynthesizeInto(nil, f, returns, rng, 1); err != nil {
			t.Fatal(err)
		}
		pool.Put(f)
	}
	run() // warm the executor free list and table scratch
	if allocs := testing.AllocsPerRun(50, run); allocs != 0 {
		t.Fatalf("planned synthesis allocated %.1f per frame, want 0", allocs)
	}
}

// FuzzSynthReturnExtremes drives Return field extremes — NaN and ±Inf
// delays, amplitudes, frequency shifts, angles — through both the legacy
// and the planned kernel. Neither may panic, and the planned output must
// stay bit-identical across worker counts even when every sample is NaN.
func FuzzSynthReturnExtremes(f *testing.F) {
	inf := math.Inf(1)
	nan := math.NaN()
	f.Add(1e-8, 1.0, 1.5, 0.0, 0.0, 31)
	f.Add(nan, 1.0, 1.5, 0.0, 0.0, 16)
	f.Add(1e-8, nan, 1.5, 20e3, 0.1, 8)
	f.Add(1e-8, inf, nan, 0.0, 0.0, 5)
	f.Add(-inf, -1.0, 1.5, inf, nan, 4)
	f.Add(1e-8, 0.0, 1.5, -inf, 0.2, 0)
	f.Fuzz(func(t *testing.T, delay, amp, aoa, shift, phase float64, n int) {
		if n < 0 || n > 64 {
			n = 64
		}
		p := planTestParams(n)
		returns := []Return{
			{Delay: delay, Amplitude: amp, AoA: aoa, FreqShift: shift, Phase: phase},
			{Delay: 1e-8, Amplitude: 0.7, AoA: 1.1},
		}
		legacy := NewFrame(p, 0.2)
		if err := SynthesizeLegacyInto(nil, legacy, returns, rand.New(rand.NewSource(1)), 1); err != nil {
			t.Fatal(err)
		}
		var ref *Frame
		for _, workers := range []int{1, 2} {
			fr := NewFrame(p, 0.2)
			if err := SynthesizeInto(nil, fr, returns, rand.New(rand.NewSource(1)), workers); err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = fr
				continue
			}
			framesEqualBits(t, "fuzz-workers", ref, fr)
		}
	})
}
