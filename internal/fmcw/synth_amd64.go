//go:build amd64

package fmcw

// useSynthAVX gates the vectorized synthesis kernels (rotation-table build
// and scaled complex MAC). It is set once at init from CPUID (AVX plus OS
// ymm-state support) and read without synchronization afterwards; tests
// toggle it to compare the vector and scalar paths bit for bit.
var useSynthAVX = synthCPUHasAVX()

// synthCPUHasAVX reports whether the CPU executes AVX instructions and the
// OS preserves ymm state across context switches.
func synthCPUHasAVX() bool

// synthTabAVX continues the 4-stride phasor recurrence tab[i] = tab[i-4]·s4
// for i in [4, n), four complexes per iteration across two ymm chains, with
// s4 = (s4r, s4i) = stepC⁴. tab[0..3] must be pre-seeded and n must be a
// multiple of four with n >= 4; the caller handles the n%4 tail (reading
// the stored values, which equal the register chain bit for bit). Pure
// AVX1, no FMA — each lane runs exactly the scalar formula
// (s4r·tr − s4i·ti, s4r·ti + s4i·tr). Implemented in synth_amd64.s.
//
//go:noescape
func synthTabAVX(tab *complex128, n int, s4r, s4i float64)

// synthMacAVX performs row[i] += (cr, ci)·tab[i] for i in [0, n), four
// complexes per iteration; n must be a multiple of four. Each lane runs
// exactly the scalar formula (cr·tr − ci·ti, cr·ti + ci·tr) followed by a
// lanewise add, so the result is bit-identical to macRow's scalar loop.
// Implemented in synth_amd64.s.
//
//go:noescape
func synthMacAVX(row, tab *complex128, n int, cr, ci float64)
