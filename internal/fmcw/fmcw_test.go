package fmcw

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"rfprotect/internal/dsp"
	"rfprotect/internal/geom"
)

func TestDefaultParamsPhysics(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.RangeResolution(); math.Abs(got-0.1499) > 0.001 {
		t.Fatalf("range resolution %v, want ~0.15 m", got)
	}
	if got := p.Slope(); math.Abs(got-2e12) > 1e6 {
		t.Fatalf("slope %v, want 2e12", got)
	}
	if p.SamplesPerChirp() != 512 {
		t.Fatalf("samples per chirp %d, want 512", p.SamplesPerChirp())
	}
	if p.MaxRange() < 30 {
		t.Fatalf("max range %v too small for a home", p.MaxRange())
	}
	if math.Abs(p.Wavelength()-C/6.5e9) > 1e-12 {
		t.Fatal("wavelength")
	}
	if math.Abs(p.Spacing()-p.Wavelength()/2) > 1e-12 {
		t.Fatal("default spacing should be lambda/2")
	}
	if math.Abs(p.AngularResolution()-math.Pi/7) > 1e-12 {
		t.Fatal("angular resolution")
	}
}

func TestParamsValidateRejectsBadConfigs(t *testing.T) {
	base := DefaultParams()
	cases := []func(*Params){
		func(p *Params) { p.CenterFreq = 0 },
		func(p *Params) { p.Bandwidth = -1 },
		func(p *Params) { p.ChirpDuration = 0 },
		func(p *Params) { p.SampleRate = 0 },
		func(p *Params) { p.NumAntennas = 0 },
		func(p *Params) { p.NoiseStd = -0.1 },
	}
	for i, mutate := range cases {
		p := base
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestBeatFrequencyRoundTrip(t *testing.T) {
	p := DefaultParams()
	f := func(d float64) bool {
		d = math.Abs(math.Mod(d, 30))
		return math.Abs(p.DistanceForBeat(p.BeatFrequency(d))-d) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// rangeFFT returns the magnitude spectrum of antenna 0.
func rangeFFT(f *Frame) []float64 {
	x := make([]complex128, len(f.Data[0]))
	copy(x, f.Data[0])
	dsp.FFTInPlace(x)
	return dsp.Magnitude(x)
}

func TestSynthesizeSingleTargetAtCorrectBin(t *testing.T) {
	p := DefaultParams()
	p.NoiseStd = 0
	for _, dist := range []float64{1.5, 3.0, 7.5, 12.0} {
		ret := Return{Delay: 2 * dist / C, Amplitude: 1, AoA: math.Pi / 2}
		fr := Synthesize(p, []Return{ret}, 0, nil)
		mag := rangeFFT(fr)
		best := 0
		for i := 1; i < len(mag)/2; i++ {
			if mag[i] > mag[best] {
				best = i
			}
		}
		binDist := p.DistanceForBeat(float64(best) * p.SampleRate / float64(len(mag)))
		if math.Abs(binDist-dist) > p.RangeResolution() {
			t.Fatalf("target at %v m detected at %v m", dist, binDist)
		}
	}
}

func TestFreqShiftMovesApparentDistance(t *testing.T) {
	p := DefaultParams()
	p.NoiseStd = 0
	const trueDist = 2.0
	const shift = 40e3 // Hz -> extra distance C*shift/(2*sl) = 3 m
	ret := Return{Delay: 2 * trueDist / C, Amplitude: 1, AoA: math.Pi / 2, FreqShift: shift}
	fr := Synthesize(p, []Return{ret}, 0, nil)
	mag := rangeFFT(fr)
	best := 0
	for i := 1; i < len(mag)/2; i++ {
		if mag[i] > mag[best] {
			best = i
		}
	}
	got := p.DistanceForBeat(float64(best) * p.SampleRate / float64(len(mag)))
	want := trueDist + C*shift/(2*p.Slope())
	if math.Abs(got-want) > p.RangeResolution() {
		t.Fatalf("apparent distance %v, want %v", got, want)
	}
}

func TestSteeringPhaseAcrossAntennas(t *testing.T) {
	p := DefaultParams()
	p.NoiseStd = 0
	aoa := 1.1
	ret := Return{Delay: 2 * 3.0 / C, Amplitude: 1, AoA: aoa}
	fr := Synthesize(p, []Return{ret}, 0, nil)
	// The phase difference between adjacent antennas at the same sample must
	// be -2π·d·cos(aoa)/λ.
	want := -2 * math.Pi * p.Spacing() * math.Cos(aoa) / p.Wavelength()
	for k := 0; k+1 < p.NumAntennas; k++ {
		got := cmplx.Phase(fr.Data[k+1][10] / fr.Data[k][10])
		if math.Abs(geom.AngleDiff(got, want)) > 1e-9 {
			t.Fatalf("antenna %d->%d phase %v, want %v", k, k+1, got, want)
		}
	}
}

func TestSynthesizeSuperposition(t *testing.T) {
	p := DefaultParams()
	p.NoiseStd = 0
	r1 := Return{Delay: 2 * 2.0 / C, Amplitude: 0.7, AoA: 1.0}
	r2 := Return{Delay: 2 * 5.0 / C, Amplitude: 0.3, AoA: 2.0, Phase: 0.5}
	both := Synthesize(p, []Return{r1, r2}, 0, nil)
	a := Synthesize(p, []Return{r1}, 0, nil)
	b := Synthesize(p, []Return{r2}, 0, nil)
	for k := range both.Data {
		for i := range both.Data[k] {
			if cmplx.Abs(both.Data[k][i]-(a.Data[k][i]+b.Data[k][i])) > 1e-9 {
				t.Fatal("synthesis is not linear in returns")
			}
		}
	}
}

func TestSubRemovesStaticReturns(t *testing.T) {
	p := DefaultParams()
	p.NoiseStd = 0
	static := Return{Delay: 2 * 4.0 / C, Amplitude: 1, AoA: 1.3}
	moving1 := Return{Delay: 2 * 6.0 / C, Amplitude: 0.5, AoA: 0.8}
	moving2 := Return{Delay: 2 * 6.2 / C, Amplitude: 0.5, AoA: 0.8}
	f1 := Synthesize(p, []Return{static, moving1}, 0, nil)
	f2 := Synthesize(p, []Return{static, moving2}, 0.05, nil)
	diff := f2.Sub(f1)
	mag := rangeFFT(diff)
	n := len(mag)
	staticBin := int(math.Round(p.BeatFrequency(4.0) / p.SampleRate * float64(n)))
	movingBin := int(math.Round(p.BeatFrequency(6.1) / p.SampleRate * float64(n)))
	if mag[staticBin] > 0.05*mag[movingBin] {
		t.Fatalf("static return survived subtraction: static %v vs moving %v", mag[staticBin], mag[movingBin])
	}
}

func TestAddNoiseStatistics(t *testing.T) {
	p := DefaultParams()
	p.NoiseStd = 0.5
	fr := NewFrame(p, 0)
	fr.AddNoise(rand.New(rand.NewSource(7)))
	var sum, sumSq float64
	n := 0
	for k := range fr.Data {
		for _, v := range fr.Data[k] {
			sum += real(v) + imag(v)
			sumSq += real(v)*real(v) + imag(v)*imag(v)
			n += 2
		}
	}
	mean := sum / float64(n)
	std := math.Sqrt(sumSq/float64(n) - mean*mean)
	if math.Abs(mean) > 0.02 {
		t.Fatalf("noise mean %v", mean)
	}
	if math.Abs(std-0.5) > 0.02 {
		t.Fatalf("noise std %v, want 0.5", std)
	}
}

func TestArrayGeometry(t *testing.T) {
	a := Array{Position: geom.Point{X: 0, Y: 0}, AxisAngle: 0, Facing: 1}
	p := geom.Point{X: 0, Y: 5}
	if aoa := a.AoAOf(p); math.Abs(aoa-math.Pi/2) > 1e-12 {
		t.Fatalf("AoA = %v", aoa)
	}
	if d := a.DistanceOf(p); d != 5 {
		t.Fatalf("distance = %v", d)
	}
	back := a.PointAt(5, math.Pi/2)
	if back.Dist(p) > 1e-9 {
		t.Fatalf("PointAt roundtrip: %v", back)
	}
}

func TestArrayRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Array{
			Position:  geom.Point{X: rng.NormFloat64(), Y: rng.NormFloat64()},
			AxisAngle: rng.Float64() * 2 * math.Pi,
			Facing:    1,
		}
		if rng.Intn(2) == 0 {
			a.Facing = -1
		}
		// A point on the facing side.
		aoa := rng.Float64() * math.Pi
		r := 0.5 + rng.Float64()*10
		p := a.PointAt(r, aoa)
		return math.Abs(a.AoAOf(p)-aoa) < 1e-9 && math.Abs(a.DistanceOf(p)-r) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReturnFrom(t *testing.T) {
	a := Array{Position: geom.Point{}, AxisAngle: 0, Facing: 1}
	p := geom.Point{X: 3, Y: 4}
	r := a.ReturnFrom(p, 0.8, 1e-9, 0.25)
	if math.Abs(r.Delay-(2*5/C+1e-9)) > 1e-15 {
		t.Fatalf("delay = %v", r.Delay)
	}
	if r.Amplitude != 0.8 || r.Phase != 0.25 {
		t.Fatal("amplitude/phase not propagated")
	}
	if math.Abs(r.AoA-math.Atan2(4, 3)) > 1e-12 {
		t.Fatalf("AoA = %v", r.AoA)
	}
}

func BenchmarkSynthesizeFrame(b *testing.B) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(1))
	returns := make([]Return, 10)
	for i := range returns {
		returns[i] = Return{Delay: 2 * (1 + float64(i)) / C, Amplitude: 0.5, AoA: 1.0}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Synthesize(p, returns, 0, rng)
	}
}
