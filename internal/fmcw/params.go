// Package fmcw models an FMCW (frequency-modulated continuous wave) radar at
// the level that matters for human sensing: the dechirped beat signal.
//
// A real FMCW front end transmits a chirp sweeping bandwidth B over duration
// T (slope sl = B/T), mixes the received reflections with the transmitted
// chirp, and low-pass filters. A scatterer at round-trip delay τ then appears
// in the mixer output as a complex tone at beat frequency f_b = sl·τ with
// carrier phase 2π·f_c·τ, received on each array element with the usual
// steering phase. Simulating that tone directly is exactly equivalent to
// simulating the GHz passband signal and dechirping it, at about six orders
// of magnitude less compute — which is how this package replaces the paper's
// TI LMX2492EVM-based 6–7 GHz prototype (see DESIGN.md, substitutions).
package fmcw

import (
	"fmt"
	"math"
)

// C is the speed of light in m/s.
const C = 299792458.0

// Params describes an FMCW radar configuration. DefaultParams mirrors the
// paper's prototype: a 6–7 GHz chirp over 500 µs with a 7-element array.
type Params struct {
	CenterFreq     float64 // carrier center frequency in Hz
	Bandwidth      float64 // chirp sweep bandwidth in Hz
	ChirpDuration  float64 // chirp duration in seconds
	SampleRate     float64 // beat-signal (IF) sample rate in Hz
	NumAntennas    int     // receive array elements
	AntennaSpacing float64 // element spacing in meters; 0 means λ/2
	FrameRate      float64 // frames (chirps used for tracking) per second
	NoiseStd       float64 // AWGN standard deviation per I/Q sample
}

// DefaultParams returns the paper-faithful configuration: 6–7 GHz sweep,
// 500 µs chirp (slope 2·10¹² Hz/s), 7 antennas at λ/2, 1.024 MHz IF sampling
// (512 samples per chirp, 15 cm range bins, ~37 m unambiguous range) and a
// 20 Hz frame rate.
func DefaultParams() Params {
	return Params{
		CenterFreq:    6.5e9,
		Bandwidth:     1e9,
		ChirpDuration: 500e-6,
		SampleRate:    1.024e6,
		NumAntennas:   7,
		FrameRate:     20,
		NoiseStd:      0.02,
	}
}

// Validate reports a descriptive error for physically meaningless
// configurations.
func (p Params) Validate() error {
	switch {
	case p.CenterFreq <= 0:
		return fmt.Errorf("fmcw: CenterFreq %v must be positive", p.CenterFreq)
	case p.Bandwidth <= 0:
		return fmt.Errorf("fmcw: Bandwidth %v must be positive", p.Bandwidth)
	case p.ChirpDuration <= 0:
		return fmt.Errorf("fmcw: ChirpDuration %v must be positive", p.ChirpDuration)
	case p.SampleRate <= 0:
		return fmt.Errorf("fmcw: SampleRate %v must be positive", p.SampleRate)
	case p.NumAntennas < 1:
		return fmt.Errorf("fmcw: NumAntennas %d must be >= 1", p.NumAntennas)
	case p.NoiseStd < 0:
		return fmt.Errorf("fmcw: NoiseStd %v must be >= 0", p.NoiseStd)
	}
	return nil
}

// Slope returns the chirp slope sl = B/T in Hz/s.
func (p Params) Slope() float64 { return p.Bandwidth / p.ChirpDuration }

// Wavelength returns the carrier wavelength λ = C/f_c in meters.
func (p Params) Wavelength() float64 { return C / p.CenterFreq }

// Spacing returns the array element spacing, defaulting to λ/2.
func (p Params) Spacing() float64 {
	if p.AntennaSpacing > 0 {
		return p.AntennaSpacing
	}
	return p.Wavelength() / 2
}

// SamplesPerChirp returns the number of IF samples in one chirp.
func (p Params) SamplesPerChirp() int {
	return int(math.Round(p.SampleRate * p.ChirpDuration))
}

// RangeResolution returns C/(2B), the paper's 15 cm for B = 1 GHz.
func (p Params) RangeResolution() float64 { return C / (2 * p.Bandwidth) }

// MaxRange returns the unambiguous range implied by the IF Nyquist limit:
// the beat of a target at MaxRange is SampleRate/2.
func (p Params) MaxRange() float64 {
	return C * p.SampleRate / (4 * p.Slope())
}

// BeatFrequency returns the beat tone frequency for a target at the given
// one-way distance (round-trip delay 2d/C).
func (p Params) BeatFrequency(distance float64) float64 {
	return p.Slope() * 2 * distance / C
}

// DistanceForBeat inverts BeatFrequency.
func (p Params) DistanceForBeat(beat float64) float64 {
	return beat * C / (2 * p.Slope())
}

// AngularResolution returns the nominal array resolution π/K in radians
// (§5.2 of the paper).
func (p Params) AngularResolution() float64 {
	return math.Pi / float64(p.NumAntennas)
}
