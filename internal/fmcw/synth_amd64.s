// AVX synthesis kernels. See synth_amd64.go for the contracts and
// synthplan.go (buildPhasorTab, macRow) for the bit-identity argument.
// Pure AVX1: VBROADCASTSD, VMOVUPD, VPERMILPD, VMULPD/VADDPD/VADDSUBPD on
// ymm — deliberately no FMA, which would change rounding versus the scalar
// Go kernels. Complexes are packed (re, im); VPERMILPD $0x5 swaps each
// (re, im) pair in lane, and VADDSUBPD's subtract-even/add-odd pattern is
// exactly the complex-multiply combine (ar·br − ai·bi, ar·bi + ai·br).

#include "textflag.h"

// func synthTabAVX(tab *complex128, n int, s4r, s4i float64)
//
// Continues tab[i] = tab[i-4]·s4 for i in [4, n), n a multiple of 4: two
// ymm chains (two complexes each) carry the last written group, so the four
// scalar dependency chains of the strided recurrence advance in two
// registers per iteration.
TEXT ·synthTabAVX(SB), NOSPLIT, $0-32
	MOVQ tab+0(FP), DI
	MOVQ n+8(FP), DX
	VBROADCASTSD s4r+16(FP), Y6
	VBROADCASTSD s4i+24(FP), Y7

	SHLQ $4, DX         // byte limit: n complexes
	MOVQ $64, CX        // write cursor, starting at element 4
	CMPQ CX, DX
	JGE  done

	VMOVUPD 0(DI), Y0   // chain A: tab[0], tab[1]
	VMOVUPD 32(DI), Y1  // chain B: tab[2], tab[3]

loop:
	VPERMILPD $0x5, Y0, Y2  // (i, r) swap of A
	VMULPD    Y6, Y0, Y3    // s4r·A
	VMULPD    Y7, Y2, Y2    // s4i·swap(A)
	VADDSUBPD Y2, Y3, Y0    // (s4r·r − s4i·i, s4r·i + s4i·r)
	VMOVUPD   Y0, (DI)(CX*1)

	VPERMILPD $0x5, Y1, Y4
	VMULPD    Y6, Y1, Y5
	VMULPD    Y7, Y4, Y4
	VADDSUBPD Y4, Y5, Y1
	VMOVUPD   Y1, 32(DI)(CX*1)

	ADDQ $64, CX
	CMPQ CX, DX
	JLT  loop

done:
	VZEROUPPER
	RET

// func synthMacAVX(row, tab *complex128, n int, cr, ci float64)
//
// row[i] += (cr, ci)·tab[i] for i in [0, n), n a multiple of 4, four
// complexes (two ymm) per iteration.
TEXT ·synthMacAVX(SB), NOSPLIT, $0-40
	MOVQ row+0(FP), DI
	MOVQ tab+8(FP), SI
	MOVQ n+16(FP), DX
	VBROADCASTSD cr+24(FP), Y6
	VBROADCASTSD ci+32(FP), Y7

	SHLQ  $4, DX
	XORQ  CX, CX
	TESTQ DX, DX
	JE    done

loop:
	VMOVUPD   (SI)(CX*1), Y0
	VMOVUPD   32(SI)(CX*1), Y1
	VPERMILPD $0x5, Y0, Y2
	VPERMILPD $0x5, Y1, Y3
	VMULPD    Y6, Y0, Y0    // cr·t
	VMULPD    Y6, Y1, Y1
	VMULPD    Y7, Y2, Y2    // ci·swap(t)
	VMULPD    Y7, Y3, Y3
	VADDSUBPD Y2, Y0, Y0    // (cr·tr − ci·ti, cr·ti + ci·tr)
	VADDSUBPD Y3, Y1, Y1
	VMOVUPD   (DI)(CX*1), Y4
	VMOVUPD   32(DI)(CX*1), Y5
	VADDPD    Y0, Y4, Y4    // row + contribution
	VADDPD    Y1, Y5, Y5
	VMOVUPD   Y4, (DI)(CX*1)
	VMOVUPD   Y5, 32(DI)(CX*1)
	ADDQ      $64, CX
	CMPQ      CX, DX
	JLT       loop

done:
	VZEROUPPER
	RET

// func synthCPUHasAVX() bool
//
// CPUID leaf 1: ECX bit 27 = OSXSAVE, bit 28 = AVX; then XGETBV(0) bits
// 1 and 2 confirm the OS saves/restores xmm+ymm state.
TEXT ·synthCPUHasAVX(SB), NOSPLIT, $0-1
	MOVQ $1, AX
	CPUID
	MOVL CX, BX
	ANDL $0x18000000, BX
	CMPL BX, $0x18000000
	JNE  no
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  no
	MOVB $1, ret+0(FP)
	RET

no:
	MOVB $0, ret+0(FP)
	RET
