// Package floorplan implements the §8 "Incorporating Floor Plan
// Information" extension: RF-Protect's generated phantoms should not walk
// through walls, or an eavesdropper with a floor plan could flag them. The
// package provides wall geometry with segment-intersection tests, an A*
// grid router that plans around walls and through doors, and trajectory
// validation/repair for generated ghosts.
package floorplan

import (
	"fmt"
	"math"

	"rfprotect/internal/geom"
)

// Wall is an impassable line segment.
type Wall struct {
	A, B geom.Point
}

// Plan is a floor plan: a bounding rectangle plus interior walls. Door
// openings are simply gaps between wall segments.
type Plan struct {
	Width, Height float64
	Walls         []Wall
}

// Apartment returns a demo floor plan: a 10×6.6 m unit split into two rooms
// and a bottom corridor, with door gaps connecting everything.
func Apartment() Plan {
	return Plan{
		Width:  10,
		Height: 6.6,
		Walls: []Wall{
			// Horizontal wall separating the corridor (y<2) from the rooms,
			// with a door gap at x in (4.2, 5.2).
			{A: geom.Point{X: 0, Y: 2}, B: geom.Point{X: 4.2, Y: 2}},
			{A: geom.Point{X: 5.2, Y: 2}, B: geom.Point{X: 10, Y: 2}},
			// Vertical wall splitting the two rooms, door gap at y in (4.4, 5.4).
			{A: geom.Point{X: 5, Y: 2}, B: geom.Point{X: 5, Y: 4.4}},
			{A: geom.Point{X: 5, Y: 5.4}, B: geom.Point{X: 5, Y: 6.6}},
		},
	}
}

// Contains reports whether p lies inside the plan's bounding rectangle.
func (pl Plan) Contains(p geom.Point) bool {
	return p.X >= 0 && p.X <= pl.Width && p.Y >= 0 && p.Y <= pl.Height
}

// segmentsIntersect reports proper or touching intersection of segments
// (p1,p2) and (q1,q2).
func segmentsIntersect(p1, p2, q1, q2 geom.Point) bool {
	d1 := direction(q1, q2, p1)
	d2 := direction(q1, q2, p2)
	d3 := direction(p1, p2, q1)
	d4 := direction(p1, p2, q2)
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	return (d1 == 0 && onSegment(q1, q2, p1)) ||
		(d2 == 0 && onSegment(q1, q2, p2)) ||
		(d3 == 0 && onSegment(p1, p2, q1)) ||
		(d4 == 0 && onSegment(p1, p2, q2))
}

func direction(a, b, c geom.Point) float64 {
	return b.Sub(a).Cross(c.Sub(a))
}

func onSegment(a, b, p geom.Point) bool {
	return math.Min(a.X, b.X)-1e-12 <= p.X && p.X <= math.Max(a.X, b.X)+1e-12 &&
		math.Min(a.Y, b.Y)-1e-12 <= p.Y && p.Y <= math.Max(a.Y, b.Y)+1e-12
}

// Blocked reports whether moving from a to b crosses any wall.
func (pl Plan) Blocked(a, b geom.Point) bool {
	for _, w := range pl.Walls {
		if segmentsIntersect(a, b, w.A, w.B) {
			return true
		}
	}
	return false
}

// CrossingCount returns the number of trajectory steps that pass through a
// wall — the quantity an eavesdropper with a floor plan would audit.
func (pl Plan) CrossingCount(t geom.Trajectory) int {
	n := 0
	for i := 1; i < len(t); i++ {
		if pl.Blocked(t[i-1], t[i]) {
			n++
		}
	}
	return n
}

// Valid reports whether a trajectory never crosses a wall and stays in
// bounds.
func (pl Plan) Valid(t geom.Trajectory) bool {
	for _, p := range t {
		if !pl.Contains(p) {
			return false
		}
	}
	return pl.CrossingCount(t) == 0
}

// Router plans wall-avoiding paths on an occupancy grid with A*.
type Router struct {
	plan     Plan
	res      float64
	nx, ny   int
	occupied []bool
}

// NewRouter builds a router with the given grid resolution (meters per
// cell); cells within clearance of a wall are occupied.
func NewRouter(plan Plan, res, clearance float64) (*Router, error) {
	if res <= 0 {
		return nil, fmt.Errorf("floorplan: resolution %v must be positive", res)
	}
	nx := int(math.Ceil(plan.Width/res)) + 1
	ny := int(math.Ceil(plan.Height/res)) + 1
	r := &Router{plan: plan, res: res, nx: nx, ny: ny, occupied: make([]bool, nx*ny)}
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			p := r.cellCenter(ix, iy)
			for _, w := range plan.Walls {
				if distToSegment(p, w.A, w.B) < clearance {
					r.occupied[iy*nx+ix] = true
					break
				}
			}
		}
	}
	return r, nil
}

func (r *Router) cellCenter(ix, iy int) geom.Point {
	return geom.Point{X: float64(ix) * r.res, Y: float64(iy) * r.res}
}

func (r *Router) cellOf(p geom.Point) (int, int) {
	ix := int(math.Round(p.X / r.res))
	iy := int(math.Round(p.Y / r.res))
	if ix < 0 {
		ix = 0
	} else if ix >= r.nx {
		ix = r.nx - 1
	}
	if iy < 0 {
		iy = 0
	} else if iy >= r.ny {
		iy = r.ny - 1
	}
	return ix, iy
}

func distToSegment(p, a, b geom.Point) float64 {
	ab := b.Sub(a)
	l2 := ab.Dot(ab)
	if l2 == 0 {
		return p.Dist(a)
	}
	t := p.Sub(a).Dot(ab) / l2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return p.Dist(a.Add(ab.Scale(t)))
}

// nearestFree returns the nearest unoccupied cell to (ix, iy) that the
// anchor point can reach without crossing a wall (a point inside the
// clearance band must connect to its own side), searching in growing rings.
func (r *Router) nearestFree(ix, iy int, anchor geom.Point) (int, int, bool) {
	ok := func(x, y int) bool {
		return !r.occupied[y*r.nx+x] && !r.plan.Blocked(anchor, r.cellCenter(x, y))
	}
	if ok(ix, iy) {
		return ix, iy, true
	}
	for ring := 1; ring < r.nx+r.ny; ring++ {
		for dy := -ring; dy <= ring; dy++ {
			for dx := -ring; dx <= ring; dx++ {
				if abs(dx) != ring && abs(dy) != ring {
					continue
				}
				x, y := ix+dx, iy+dy
				if x < 0 || x >= r.nx || y < 0 || y >= r.ny {
					continue
				}
				if ok(x, y) {
					return x, y, true
				}
			}
		}
	}
	return 0, 0, false
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Route plans a wall-avoiding path from a to b. The result includes both
// endpoints; it returns an error if no path exists.
func (r *Router) Route(a, b geom.Point) (geom.Trajectory, error) {
	sx, sy := r.cellOf(a)
	gx, gy := r.cellOf(b)
	var ok bool
	if sx, sy, ok = r.nearestFree(sx, sy, a); !ok {
		return nil, fmt.Errorf("floorplan: no free start cell")
	}
	if gx, gy, ok = r.nearestFree(gx, gy, b); !ok {
		return nil, fmt.Errorf("floorplan: no free goal cell")
	}
	type node struct{ x, y int }
	start := node{sx, sy}
	goal := node{gx, gy}
	h := func(n node) float64 {
		return math.Hypot(float64(n.x-goal.x), float64(n.y-goal.y))
	}
	gScore := map[node]float64{start: 0}
	parent := map[node]node{}
	open := map[node]bool{start: true}
	fScore := map[node]float64{start: h(start)}
	dirs := []node{{1, 0}, {-1, 0}, {0, 1}, {0, -1}, {1, 1}, {1, -1}, {-1, 1}, {-1, -1}}
	for len(open) > 0 {
		// Extract min-f node (the grids here are small; a heap is overkill).
		var cur node
		best := math.Inf(1)
		for n := range open {
			if fScore[n] < best {
				best, cur = fScore[n], n
			}
		}
		if cur == goal {
			// Reconstruct.
			var cells []node
			for n := goal; ; {
				cells = append(cells, n)
				p, okp := parent[n]
				if !okp {
					break
				}
				n = p
			}
			path := make(geom.Trajectory, 0, len(cells)+2)
			// Include the exact endpoints only when the hop from/to the
			// nearest free cell does not itself cross a wall (an endpoint
			// can sit inside the wall-clearance band or beyond a wall).
			firstCell := r.cellCenter(cells[len(cells)-1].x, cells[len(cells)-1].y)
			if !r.plan.Blocked(a, firstCell) {
				path = append(path, a)
			}
			for i := len(cells) - 1; i >= 0; i-- {
				path = append(path, r.cellCenter(cells[i].x, cells[i].y))
			}
			lastCell := path[len(path)-1]
			if !r.plan.Blocked(lastCell, b) {
				path = append(path, b)
			}
			return path, nil
		}
		delete(open, cur)
		for _, d := range dirs {
			nb := node{cur.x + d.x, cur.y + d.y}
			if nb.x < 0 || nb.x >= r.nx || nb.y < 0 || nb.y >= r.ny {
				continue
			}
			if r.occupied[nb.y*r.nx+nb.x] {
				continue
			}
			// Forbid diagonal corner cutting.
			if d.x != 0 && d.y != 0 {
				if r.occupied[cur.y*r.nx+nb.x] || r.occupied[nb.y*r.nx+cur.x] {
					continue
				}
			}
			// Two free cells can still sit on opposite sides of a thin wall
			// (the clearance band is finite); never step through one.
			if r.plan.Blocked(r.cellCenter(cur.x, cur.y), r.cellCenter(nb.x, nb.y)) {
				continue
			}
			step := math.Hypot(float64(d.x), float64(d.y))
			tentative := gScore[cur] + step
			if old, seen := gScore[nb]; !seen || tentative < old {
				gScore[nb] = tentative
				fScore[nb] = tentative + h(nb)
				parent[nb] = cur
				open[nb] = true
			}
		}
	}
	return nil, fmt.Errorf("floorplan: no path from %v to %v", a, b)
}

// Repair returns a wall-respecting version of a trajectory: runs of valid
// motion are kept, and every wall-crossing step is replaced by a routed
// detour through the nearest door, then the result is resampled back to the
// original length so downstream timing is unchanged. This is the practical
// realization of §8's proposal to keep cGAN phantoms out of walls.
func (r *Router) Repair(t geom.Trajectory) (geom.Trajectory, error) {
	if len(t) < 2 {
		return t.Clone(), nil
	}
	out := geom.Trajectory{t[0]}
	for i := 1; i < len(t); i++ {
		prev := out[len(out)-1]
		if !r.plan.Blocked(prev, t[i]) {
			out = append(out, t[i])
			continue
		}
		detour, err := r.Route(prev, t[i])
		if err != nil {
			return nil, err
		}
		if len(detour) > 0 && detour[0].Dist(prev) < 1e-9 {
			detour = detour[1:]
		} else if len(detour) > 0 && r.plan.Blocked(prev, detour[0]) {
			// prev sits inside the wall-clearance band on the far side of a
			// wall; snap it onto the detour's start instead of bridging.
			out[len(out)-1] = detour[0]
			detour = detour[1:]
		}
		out = append(out, detour...)
	}
	return r.resize(out, len(t))
}

// resize adjusts a crossing-free path to exactly n points without creating
// crossings: extra vertices are removed only when the bridging chord stays
// clear of walls (naive arc-length resampling would cut corners through
// them), and missing vertices are added by splitting the longest segments
// (splitting never creates a crossing).
func (r *Router) resize(path geom.Trajectory, n int) (geom.Trajectory, error) {
	out := path.Clone()
	for len(out) > n {
		best, bestErr := -1, math.Inf(1)
		for i := 1; i < len(out)-1; i++ {
			if r.plan.Blocked(out[i-1], out[i+1]) {
				continue
			}
			if e := distToSegment(out[i], out[i-1], out[i+1]); e < bestErr {
				best, bestErr = i, e
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("floorplan: cannot simplify path to %d points", n)
		}
		out = append(out[:best], out[best+1:]...)
	}
	for len(out) < n {
		longest, l := 0, -1.0
		for i := 1; i < len(out); i++ {
			if d := out[i].Dist(out[i-1]); d > l {
				longest, l = i, d
			}
		}
		mid := geom.Lerp(out[longest-1], out[longest], 0.5)
		out = append(out[:longest], append(geom.Trajectory{mid}, out[longest:]...)...)
	}
	return out, nil
}
