package floorplan

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rfprotect/internal/geom"
)

func TestSegmentsIntersect(t *testing.T) {
	cases := []struct {
		p1, p2, q1, q2 geom.Point
		want           bool
	}{
		{geom.Point{X: 0, Y: 0}, geom.Point{X: 2, Y: 2}, geom.Point{X: 0, Y: 2}, geom.Point{X: 2, Y: 0}, true},
		{geom.Point{X: 0, Y: 0}, geom.Point{X: 1, Y: 0}, geom.Point{X: 0, Y: 1}, geom.Point{X: 1, Y: 1}, false},
		// Touching endpoint counts.
		{geom.Point{X: 0, Y: 0}, geom.Point{X: 1, Y: 1}, geom.Point{X: 1, Y: 1}, geom.Point{X: 2, Y: 0}, true},
		// Collinear overlap.
		{geom.Point{X: 0, Y: 0}, geom.Point{X: 2, Y: 0}, geom.Point{X: 1, Y: 0}, geom.Point{X: 3, Y: 0}, true},
		// Collinear disjoint.
		{geom.Point{X: 0, Y: 0}, geom.Point{X: 1, Y: 0}, geom.Point{X: 2, Y: 0}, geom.Point{X: 3, Y: 0}, false},
	}
	for i, c := range cases {
		if got := segmentsIntersect(c.p1, c.p2, c.q1, c.q2); got != c.want {
			t.Errorf("case %d: got %v want %v", i, got, c.want)
		}
	}
}

func TestBlockedAndDoors(t *testing.T) {
	plan := Apartment()
	// Crossing the corridor wall away from the door is blocked.
	if !plan.Blocked(geom.Point{X: 2, Y: 1}, geom.Point{X: 2, Y: 3}) {
		t.Fatal("wall crossing not blocked")
	}
	// Walking through the door gap (x in 4.2..5.2) is free.
	if plan.Blocked(geom.Point{X: 4.7, Y: 1}, geom.Point{X: 4.7, Y: 3}) {
		t.Fatal("door blocked")
	}
	// Room-to-room door at y in 4.4..5.4.
	if plan.Blocked(geom.Point{X: 4, Y: 5}, geom.Point{X: 6, Y: 5}) {
		t.Fatal("interior door blocked")
	}
	if !plan.Blocked(geom.Point{X: 4, Y: 3}, geom.Point{X: 6, Y: 3}) {
		t.Fatal("room wall not blocked")
	}
}

func TestCrossingCountAndValid(t *testing.T) {
	plan := Apartment()
	through := geom.Trajectory{{X: 2, Y: 1}, {X: 2, Y: 3}, {X: 2, Y: 5}}
	if got := plan.CrossingCount(through); got != 1 {
		t.Fatalf("crossings %d, want 1", got)
	}
	if plan.Valid(through) {
		t.Fatal("wall-crossing trajectory declared valid")
	}
	around := geom.Trajectory{{X: 2, Y: 1}, {X: 4.7, Y: 1}, {X: 4.7, Y: 3}, {X: 2, Y: 3}}
	if !plan.Valid(around) {
		t.Fatal("door route declared invalid")
	}
	outside := geom.Trajectory{{X: -1, Y: 1}}
	if plan.Valid(outside) {
		t.Fatal("out-of-bounds trajectory declared valid")
	}
}

func TestRouterFindsDoor(t *testing.T) {
	plan := Apartment()
	r, err := NewRouter(plan, 0.2, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	path, err := r.Route(geom.Point{X: 2, Y: 1}, geom.Point{X: 2, Y: 5})
	if err != nil {
		t.Fatal(err)
	}
	if path[0] != (geom.Point{X: 2, Y: 1}) || path[len(path)-1] != (geom.Point{X: 2, Y: 5}) {
		t.Fatal("endpoints not preserved")
	}
	// The route must pass near the door (x around 4.7 at y=2).
	nearDoor := false
	for _, p := range path {
		if p.Dist(geom.Point{X: 4.7, Y: 2}) < 1.0 {
			nearDoor = true
		}
	}
	if !nearDoor {
		t.Fatalf("route avoided the door: %v", path)
	}
	if plan.CrossingCount(path) != 0 {
		t.Fatal("routed path crosses a wall")
	}
}

func TestRouterRejectsBadResolution(t *testing.T) {
	if _, err := NewRouter(Apartment(), 0, 0.2); err == nil {
		t.Fatal("zero resolution accepted")
	}
}

func TestRepairRemovesCrossings(t *testing.T) {
	plan := Apartment()
	r, err := NewRouter(plan, 0.2, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	// A trajectory that barges through both walls.
	bad := geom.Trajectory{
		{X: 2, Y: 1}, {X: 2, Y: 3}, {X: 3, Y: 4}, {X: 7, Y: 4}, {X: 7, Y: 1},
	}
	fixed, err := r.Repair(bad)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixed) != len(bad) {
		t.Fatalf("repair changed length: %d vs %d", len(fixed), len(bad))
	}
	if got := plan.CrossingCount(fixed); got != 0 {
		t.Fatalf("repaired trajectory still crosses %d walls", got)
	}
	// Valid trajectories are unchanged (modulo resampling).
	good := geom.Trajectory{{X: 1, Y: 1}, {X: 2, Y: 1}, {X: 3, Y: 1}}
	same, err := r.Repair(good)
	if err != nil {
		t.Fatal(err)
	}
	if geom.MeanPointwiseError(same, good) > 1e-9 {
		t.Fatal("valid trajectory modified")
	}
}

func TestRepairRandomTrajectoriesProperty(t *testing.T) {
	plan := Apartment()
	r, err := NewRouter(plan, 0.25, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := make(geom.Trajectory, 12)
		p := geom.Point{X: 1 + 8*rng.Float64(), Y: 0.5 + 5.5*rng.Float64()}
		for i := range tr {
			p = p.Add(geom.Point{X: rng.NormFloat64() * 0.8, Y: rng.NormFloat64() * 0.8})
			p.X = clamp(p.X, 0.3, plan.Width-0.3)
			p.Y = clamp(p.Y, 0.3, plan.Height-0.3)
			tr[i] = p
		}
		fixed, err := r.Repair(tr)
		if err != nil {
			return false
		}
		return plan.CrossingCount(fixed) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func TestDistToSegment(t *testing.T) {
	a, b := geom.Point{X: 0, Y: 0}, geom.Point{X: 2, Y: 0}
	if d := distToSegment(geom.Point{X: 1, Y: 1}, a, b); d != 1 {
		t.Fatalf("perpendicular dist %v", d)
	}
	if d := distToSegment(geom.Point{X: 3, Y: 0}, a, b); d != 1 {
		t.Fatalf("endpoint dist %v", d)
	}
	if d := distToSegment(geom.Point{X: 1, Y: 0}, a, a); d != 1 {
		t.Fatalf("degenerate segment dist %v", d)
	}
}
