package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersDefaults(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("auto worker count must be >= 1")
	}
	if Workers(5) != 5 {
		t.Fatal("explicit worker count must pass through")
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 1000
		counts := make([]int32, n)
		ForEach(n, workers, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmptyAndTiny(t *testing.T) {
	ForEach(0, 4, func(i int) { t.Fatal("fn called for n=0") })
	var ran int
	ForEach(1, 8, func(i int) { ran++ })
	if ran != 1 {
		t.Fatalf("n=1 ran %d times", ran)
	}
}

func TestForEachResultIndependentOfWorkers(t *testing.T) {
	const n = 256
	ref := make([]int64, n)
	ForEach(n, 1, func(i int) { ref[i] = SplitSeed(42, i) })
	for _, workers := range []int{2, 3, 8} {
		got := make([]int64, n)
		ForEach(n, workers, func(i int) { got[i] = SplitSeed(42, i) })
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: slot %d differs", workers, i)
			}
		}
	}
}

func TestGroupCollectsFirstError(t *testing.T) {
	g := NewGroup(2)
	boom := errors.New("boom")
	var ran atomic.Int32
	for i := 0; i < 8; i++ {
		i := i
		g.Go(func() error {
			ran.Add(1)
			if i == 3 {
				return boom
			}
			return nil
		})
	}
	if err := g.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait() = %v, want boom", err)
	}
	if ran.Load() != 8 {
		t.Fatalf("ran %d tasks, want all 8 despite the error", ran.Load())
	}
}

func TestGroupNoError(t *testing.T) {
	g := NewGroup(0)
	var sum atomic.Int64
	for i := 1; i <= 10; i++ {
		i := i
		g.Go(func() error { sum.Add(int64(i)); return nil })
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 55 {
		t.Fatalf("sum = %d", sum.Load())
	}
}

func TestGroupBoundedConcurrency(t *testing.T) {
	const workers = 3
	g := NewGroup(workers)
	var inFlight, peak atomic.Int32
	for i := 0; i < 30; i++ {
		g.Go(func() error {
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			inFlight.Add(-1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if peak.Load() > workers {
		t.Fatalf("observed %d concurrent tasks, cap %d", peak.Load(), workers)
	}
}

func TestForEachCtxNilContextMatchesForEach(t *testing.T) {
	for _, workers := range []int{1, 4} {
		const n = 500
		counts := make([]int32, n)
		if err := ForEachCtx(nil, n, workers, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		}); err != nil {
			t.Fatalf("workers=%d: nil-ctx err = %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachCtxBackgroundCompletes(t *testing.T) {
	const n = 300
	counts := make([]int32, n)
	if err := ForEachCtx(context.Background(), n, 4, func(i int) {
		atomic.AddInt32(&counts[i], 1)
	}); err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestForEachCtxCancelHaltsEarly(t *testing.T) {
	for _, workers := range []int{1, 4} {
		const n = 100000
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		err := ForEachCtx(ctx, n, workers, func(i int) {
			if ran.Add(1) == 50 {
				cancel()
			}
			time.Sleep(10 * time.Microsecond)
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// In-flight iterations (at most one per worker) may still finish,
		// but the fan-out must stop long before visiting all n indices.
		if got := ran.Load(); got >= n {
			t.Fatalf("workers=%d: ran all %d iterations despite cancellation", workers, got)
		}
	}
}

func TestForEachCtxAlreadyCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ForEachCtx(ctx, 100, 4, func(i int) { t.Error("fn ran under a canceled context") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestGroupGoCtxNilContextMatchesGo(t *testing.T) {
	g := NewGroup(2)
	var sum atomic.Int64
	for i := 1; i <= 10; i++ {
		i := i
		g.GoCtx(nil, func() error { sum.Add(int64(i)); return nil })
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 55 {
		t.Fatalf("sum = %d", sum.Load())
	}
}

func TestGroupGoCtxStopsSchedulingAfterCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	g := NewGroup(2)
	var ran atomic.Int32
	for i := 0; i < 20; i++ {
		if i == 5 {
			cancel()
		}
		g.GoCtx(ctx, func() error { ran.Add(1); return nil })
	}
	err := g.Wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait() = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got > 5 {
		t.Fatalf("%d tasks ran after cancellation (want <= 5 scheduled before)", got)
	}
}

func TestGroupGoCtxUnblocksFullPoolOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := NewGroup(1)
	release := make(chan struct{})
	g.GoCtx(ctx, func() error { <-release; return nil })
	done := make(chan struct{})
	go func() {
		// The pool is full; this schedule attempt must return once the
		// context is canceled instead of blocking forever.
		g.GoCtx(ctx, func() error { t.Error("task ran after cancel"); return nil })
		close(done)
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("GoCtx stayed blocked on a full pool after cancellation")
	}
	close(release)
	if err := g.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait() = %v, want context.Canceled", err)
	}
}

func TestSplitSeedDistinctAndStable(t *testing.T) {
	seen := map[int64]int{}
	for i := 0; i < 10000; i++ {
		s := SplitSeed(7, i)
		if j, dup := seen[s]; dup {
			t.Fatalf("streams %d and %d collide", i, j)
		}
		seen[s] = i
	}
	if SplitSeed(7, 3) != SplitSeed(7, 3) {
		t.Fatal("SplitSeed is not a pure function")
	}
	if SplitSeed(7, 3) == SplitSeed(8, 3) {
		t.Fatal("base seed ignored")
	}
}
