package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// spawnForEach is the pre-pool reference implementation — the per-call
// goroutine fan-out ForEach used before the persistent pool replaced it.
// The pool path must stay bit-identical to it under the disjoint-write
// contract; keeping the old machine here pins that equivalence forever.
func spawnForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// TestPoolGoldenBitIdentityVsSpawningPath drives a deterministic per-index
// computation through the spawning reference and the pooled path for the
// mandated worker counts {1, 2, 0} and demands byte-for-byte equal output.
func TestPoolGoldenBitIdentityVsSpawningPath(t *testing.T) {
	const n = 513
	work := func(dst []int64) func(int) {
		return func(i int) {
			// A few dependent mixes so a mis-claimed or skipped index
			// cannot cancel out.
			v := SplitSeed(1234, i)
			v ^= SplitSeed(v, i+1)
			dst[i] = v
		}
	}
	for _, workers := range []int{1, 2, 0} {
		ref := make([]int64, n)
		spawnForEach(n, workers, work(ref))

		got := make([]int64, n)
		ForEach(n, workers, work(got))
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: ForEach diverges from spawning path at %d: %d != %d",
					workers, i, got[i], ref[i])
			}
		}

		gotCtx := make([]int64, n)
		if err := ForEachCtx(context.Background(), n, workers, work(gotCtx)); err != nil {
			t.Fatalf("workers=%d: ForEachCtx: %v", workers, err)
		}
		for i := range ref {
			if gotCtx[i] != ref[i] {
				t.Fatalf("workers=%d: ForEachCtx diverges from spawning path at %d", workers, i)
			}
		}
	}
}

// TestPoolZeroSteadyStateSpawns asserts the replacement actually happened:
// a warmed-up ForEach over the shared pool leaves the process goroutine
// count exactly where it was — no per-call fan-out goroutines.
func TestPoolZeroSteadyStateSpawns(t *testing.T) {
	// Warm the pool (workers already exist from init, but let any lazy
	// batch descriptors materialize).
	ForEach(64, 0, func(i int) {})
	before := runtime.NumGoroutine()
	for k := 0; k < 50; k++ {
		ForEach(64, 0, func(i int) { _ = SplitSeed(int64(k), i) })
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("steady-state ForEach grew goroutines: %d -> %d", before, after)
	}
}

// TestPoolCloseJoinsWorkers is the pool's goroutine-leak check: a private
// pool's workers all exit once Close returns.
func TestPoolCloseJoinsWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	p := NewPool(4)
	var hits atomic.Int64
	p.ForEach(100, 4, func(i int) { hits.Add(1) })
	if hits.Load() != 100 {
		t.Fatalf("pool ForEach ran %d of 100 indices", hits.Load())
	}
	p.Close()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("pool leaked goroutines after Close: %d -> %d", before, after)
	}
}

// TestPoolForEachCtxCancelMidBatch cancels while a pooled batch is in
// flight: the call must return ctx.Err(), stop claiming new indices, and
// join every in-flight fn before returning (no fn call may be observed
// after ForEachCtx returns).
func TestPoolForEachCtxCancelMidBatch(t *testing.T) {
	const n = 10_000
	ctx, cancel := context.WithCancel(context.Background())
	var started, finished atomic.Int64
	var returned atomic.Bool
	err := ForEachCtx(ctx, n, 4, func(i int) {
		if returned.Load() {
			t.Error("fn observed after ForEachCtx returned")
		}
		if started.Add(1) == 7 {
			cancel() // mid-batch: several indices done, most not yet claimed
		}
		finished.Add(1)
	})
	returned.Store(true)
	if err != context.Canceled {
		t.Fatalf("mid-batch cancel returned %v, want context.Canceled", err)
	}
	if s, f := started.Load(), finished.Load(); s != f {
		t.Fatalf("in-flight calls not joined: started %d, finished %d", s, f)
	}
	if done := finished.Load(); done >= n {
		t.Fatalf("cancellation did not halt claiming: all %d indices ran", done)
	}
}

// TestPoolNestedForEachNoDeadlock saturates the pool with fan-outs whose
// fns themselves fan out, twice nested — the shape that deadlocks a pool
// whose join blocks on token consumption. The help-while-waiting join must
// complete every index.
func TestPoolNestedForEachNoDeadlock(t *testing.T) {
	doneCh := make(chan struct{})
	var leaf atomic.Int64
	go func() {
		defer close(doneCh)
		ForEach(8, 0, func(i int) {
			ForEach(8, 0, func(j int) {
				ForEach(8, 0, func(k int) {
					leaf.Add(1)
				})
			})
		})
	}()
	select {
	case <-doneCh:
	case <-time.After(30 * time.Second):
		t.Fatal("nested ForEach deadlocked the pool")
	}
	if leaf.Load() != 8*8*8 {
		t.Fatalf("nested ForEach ran %d of %d leaves", leaf.Load(), 8*8*8)
	}
}

// TestPoolSubmitRunsDetachedTask covers the Submit path: the task runs
// exactly once on a pool goroutine and the returned channel closes after it
// finishes.
func TestPoolSubmitRunsDetachedTask(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var ran atomic.Int64
	done := p.Submit(func() { ran.Add(1) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Submit task never completed")
	}
	if ran.Load() != 1 {
		t.Fatalf("Submit ran task %d times", ran.Load())
	}
	// Submitted tasks and fan-outs share the pool without interference.
	var hits atomic.Int64
	done2 := p.Submit(func() { p.ForEach(32, 2, func(i int) { hits.Add(1) }) })
	<-done2
	if hits.Load() != 32 {
		t.Fatalf("Submit+ForEach composition ran %d of 32 indices", hits.Load())
	}
}

// TestPoolForEachConcurrentCallers hammers one pool from many goroutines at
// once: every caller's batch must complete exactly, with no cross-batch
// index bleed.
func TestPoolForEachConcurrentCallers(t *testing.T) {
	const callers = 16
	const n = 300
	var wg sync.WaitGroup
	wg.Add(callers)
	errs := make(chan string, callers)
	for c := 0; c < callers; c++ {
		go func(c int) {
			defer wg.Done()
			counts := make([]int32, n)
			ForEach(n, 3, func(i int) { atomic.AddInt32(&counts[i], 1) })
			for i, v := range counts {
				if v != 1 {
					errs <- "caller " + string(rune('a'+c)) + ": bad visit count at index " +
						string(rune('0'+i%10))
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
