package parallel

import (
	"context"
	"sync"
	"sync/atomic"
)

// Pool is a persistent worker pool: its goroutines are spawned once by
// NewPool, park on a task channel while idle, and are joined by Close. It
// carries the same index-addressed fan-out semantics as the package-level
// ForEach/ForEachCtx — dynamic claiming, inline execution when the
// effective width is one, results bit-identical for any worker count — but
// the steady state spawns zero goroutines and allocates nothing: batch
// descriptors come from a free list and idle workers are woken by
// non-blocking sends.
//
// The caller always participates in its own batch, and helpers beyond the
// caller are strictly opportunistic: a batch leaves up to workers-1 wake
// tokens, and however many the pool can consume is how much parallelism the
// batch gets. That is safe under the contract ForEach has always had — fn
// writes only to destinations owned by its index, so which goroutine runs
// an index never changes the result. While joining its helpers, a caller
// doubles as a worker and drains other callers' tokens ("help while
// waiting"), so every queued token is always consumable by some live
// goroutine and nested ForEach calls cannot deadlock the pool no matter how
// many rooms or stages share it.
//
// One process-wide pool (see Default) backs the package-level helpers; the
// daemon in internal/service shares it across every room, which is the
// point: thousands of sessions schedule onto one fixed set of workers
// instead of each spawning its own fan-out goroutines per frame.
type Pool struct {
	workers int
	tasks   chan *batch
	wg      sync.WaitGroup

	mu   sync.Mutex
	free []*batch
}

// batch is one scheduled unit of fan-out: a shared claim counter over
// [0, n) plus join state for however many wake tokens were queued. Batches
// are recycled through the pool's free list, so the steady state of
// Pool.ForEach allocates nothing.
type batch struct {
	n    int
	fn   func(i int)
	ctx  context.Context
	next atomic.Int64

	// pending counts queued wake tokens not yet fully consumed; the
	// consumer that decrements it to zero signals joined (buffered 1, so
	// the signal is never lost; waiters re-check pending, so a stale
	// signal from a recycled batch is a benign spurious wake).
	pending atomic.Int64
	joined  chan struct{}

	// one, set by Submit, marks a detached single task: the goroutine that
	// consumes it runs the function and closes done instead of joining a
	// claim loop.
	one  func()
	done chan struct{}
}

// run claims indices until the batch is exhausted (or its context is done)
// — the same loop the spawning ForEach used, shared by the caller and every
// helper.
func (b *batch) run() {
	for {
		if b.ctx != nil && b.ctx.Err() != nil {
			return
		}
		i := int(b.next.Add(1)) - 1
		if i >= b.n {
			return
		}
		b.fn(i)
	}
}

// NewPool spawns a pool of the given size (<= 0 means Workers(0)) and
// returns it ready for use. The workers live until Close.
//
//rfvet:allow goroleak -- persistent pool workers are the design: spawned once here, parked while idle, joined by Close via p.wg
func NewPool(workers int) *Pool {
	w := Workers(workers)
	p := &Pool{
		workers: w,
		// The buffer lets a batch leave wake tokens even while every worker
		// is mid-task: workers pick queued batches up as they free, or find
		// them already exhausted and move on. Sends stay non-blocking
		// either way.
		tasks: make(chan *batch, w),
	}
	p.wg.Add(w)
	for i := 0; i < w; i++ {
		go p.worker()
	}
	return p
}

// worker is the parked loop every pool goroutine runs: receive a batch,
// help drain it, repeat until Close.
func (p *Pool) worker() {
	defer p.wg.Done()
	for b := range p.tasks {
		p.consume(b)
	}
}

// consume processes one received wake token: run a detached Submit task, or
// join a fan-out batch's claim loop and report the token consumed. It is
// shared by the pool workers and by callers helping while they wait.
func (p *Pool) consume(b *batch) {
	if b.one != nil {
		fn, done := b.one, b.done
		p.putBatch(b) // Submit batches carry no join state; recycle first
		fn()
		close(done)
		return
	}
	b.run()
	if b.pending.Add(-1) == 0 {
		select {
		case b.joined <- struct{}{}:
		default:
		}
	}
}

// Workers returns the pool's fixed worker count.
func (p *Pool) Workers() int { return p.workers }

// Close shuts the pool down: no further Submit/ForEach calls may be made,
// and Close returns once every worker has exited. The process-wide Default
// pool is never closed.
func (p *Pool) Close() {
	close(p.tasks)
	p.wg.Wait()
}

// getBatch pops a recycled batch descriptor or builds a fresh one; putBatch
// returns one after its join completed (or, for Submit, before the detached
// task runs — those carry no further batch state).
func (p *Pool) getBatch() *batch {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return b
	}
	p.mu.Unlock()
	return &batch{joined: make(chan struct{}, 1)}
}

func (p *Pool) putBatch(b *batch) {
	b.n, b.fn, b.ctx, b.one, b.done = 0, nil, nil, nil, nil
	b.next.Store(0)
	// Drain any stale join signal so a recycled batch starts clean. A
	// signal racing in after this drain only causes a spurious wake on the
	// next use, and waiters re-check pending.
	select {
	case <-b.joined:
	default:
	}
	p.mu.Lock()
	p.free = append(p.free, b)
	p.mu.Unlock()
}

// ForEach calls fn(i) for every i in [0, n) with up to the given width
// (<= 0 means Workers(0)), capped by the pool size plus the calling
// goroutine. Semantics match the package-level ForEach: dynamic claiming,
// inline when the effective width is one, returns only after every call has
// completed, bit-identical results for any width under the disjoint-write
// contract.
func (p *Pool) ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	b := p.getBatch()
	b.n, b.fn = n, fn
	p.runBatch(b, w-1)
	p.putBatch(b)
}

// ForEachCtx is ForEach with cooperative cancellation, matching the
// package-level ForEachCtx: participants stop claiming new indices once ctx
// is done, in-flight calls finish, and the call returns ctx.Err(). A nil
// ctx selects the zero-context path, which is exactly ForEach.
func (p *Pool) ForEachCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	if ctx == nil {
		p.ForEach(n, workers, fn) //rfvet:allow ctxflow -- nil-ctx fast path: there is no context to thread
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}
	b := p.getBatch()
	b.n, b.fn, b.ctx = n, fn, ctx
	p.runBatch(b, w-1)
	err := ctx.Err()
	p.putBatch(b)
	return err
}

// runBatch executes one batch: leave up to helpers wake tokens for the pool
// (non-blocking — a full queue just means fewer helpers and an immediate
// refund), claim indices on the calling goroutine, then join. The join
// doubles as worker duty: while tokens are outstanding the caller consumes
// whatever the queue holds — its own batch's tokens or other callers' — so
// a token can always be consumed by some live goroutine and nested ForEach
// calls never deadlock, no matter how deep the recursion or how busy the
// pool. runBatch returns only when every index has completed: the caller's
// own claim loop is exhausted and every queued token has been consumed,
// which includes every helper's claim loop having returned.
func (p *Pool) runBatch(b *batch, helpers int) {
	if helpers > p.workers {
		helpers = p.workers
	}
	for i := 0; i < helpers; i++ {
		b.pending.Add(1)
		select {
		case p.tasks <- b:
		default:
			b.pending.Add(-1) // no seat free: the caller covers these indices
		}
	}
	b.run()
	for b.pending.Load() > 0 {
		select {
		case other := <-p.tasks:
			p.consume(other)
		case <-b.joined:
		}
	}
}

// Submit schedules fn as one detached task on a pool worker and returns a
// channel closed when fn has finished — the heterogeneous-task entry point
// for callers that want the pool's fixed goroutines instead of spawning
// their own (Group covers bounded fan-out with error capture; Submit is a
// single task). The send blocks while the pool's wake queue is full, so
// Submit provides backpressure rather than unbounded queueing; do not call
// it from inside a pool task. fn runs exactly once.
func (p *Pool) Submit(fn func()) <-chan struct{} {
	b := p.getBatch()
	b.one = fn
	b.done = make(chan struct{})
	done := b.done
	p.tasks <- b
	return done
}

// Default returns the process-wide pool backing the package-level
// ForEach/ForEachCtx. It is created at package init with Workers(0)
// goroutines — before any test baseline or leak check can observe the
// spawn — and is never closed.
func Default() *Pool { return defaultPool }

var defaultPool = NewPool(0)
