package parallel

import (
	"context"
	"runtime"
	"sync"
)

// Workers resolves a requested worker count: values <= 0 mean "one per
// available CPU" (runtime.GOMAXPROCS(0), which defaults to
// runtime.NumCPU()).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach calls fn(i) for every i in [0, n) across the shared persistent
// pool with up to the given width (<= 0 means Workers(0)). Iterations are
// claimed dynamically, so uneven per-index cost still load-balances. With
// one worker — or n <= 1 — it runs inline with no goroutines at all, so the
// sequential path has zero scheduling overhead; wider calls wake parked
// pool workers instead of spawning, so the steady state spawns no
// goroutines either (see Pool).
//
// fn must only write to destinations owned by index i (its row, its slot):
// under that contract the result is bit-identical for every worker count.
// ForEach returns only after every call has completed.
func ForEach(n, workers int, fn func(i int)) {
	defaultPool.ForEach(n, workers, fn)
}

// ForEachCtx is ForEach with cooperative cancellation: participants stop
// claiming new indices once ctx is done, in-flight calls finish, and the
// call returns ctx.Err(). Indices already claimed still run to completion,
// so fn's disjoint-write contract is unchanged; on cancellation the
// partially written destinations must simply be discarded by the caller.
//
// A nil ctx selects the zero-context path, which is exactly ForEach: no
// cancellation checks, nil error. The bit-identity guarantee holds either
// way — cancellation changes which indices run, never what an index
// computes.
func ForEachCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	return defaultPool.ForEachCtx(ctx, n, workers, fn)
}

// Group runs heterogeneous tasks with bounded concurrency and first-error
// capture, in the style of golang.org/x/sync/errgroup (reimplemented here
// to keep the module dependency-free). The zero value is not usable; call
// NewGroup.
type Group struct {
	sem chan struct{}
	wg  sync.WaitGroup
	mu  sync.Mutex
	err error
}

// NewGroup returns a Group running at most the given number of tasks at
// once (<= 0 means Workers(0)).
func NewGroup(workers int) *Group {
	return &Group{sem: make(chan struct{}, Workers(workers))}
}

// Go schedules fn on the group, blocking while the pool is full. The first
// non-nil error wins; later tasks still run to completion (callers write
// results to disjoint slots and decide what to keep after Wait).
//
//rfvet:allow goroleak -- the Group is the joining primitive: every spawn is wg-counted here and joined by Group.Wait
func (g *Group) Go(fn func() error) {
	g.wg.Add(1)
	g.sem <- struct{}{}
	go func() {
		defer g.wg.Done()
		defer func() { <-g.sem }()
		if err := fn(); err != nil {
			g.setErr(err)
		}
	}()
}

// GoCtx schedules fn like Go, but stops scheduling once ctx is done: a
// canceled context makes GoCtx record ctx.Err() (first error wins) and
// return without running fn — including while blocked waiting for a pool
// slot. Tasks already running are not interrupted; fn receives no context
// and should watch ctx itself if it is long-running. A nil ctx behaves
// exactly like Go.
func (g *Group) GoCtx(ctx context.Context, fn func() error) {
	if ctx == nil {
		g.Go(fn) //rfvet:allow ctxflow -- nil-ctx fast path: there is no context to thread
		return
	}
	if err := ctx.Err(); err != nil {
		g.setErr(err)
		return
	}
	g.wg.Add(1)
	select {
	case g.sem <- struct{}{}:
	case <-ctx.Done():
		g.wg.Done()
		g.setErr(ctx.Err())
		return
	}
	go func() {
		defer g.wg.Done()
		defer func() { <-g.sem }()
		if err := ctx.Err(); err != nil {
			g.setErr(err)
			return
		}
		if err := fn(); err != nil {
			g.setErr(err)
		}
	}()
}

// setErr records the group's first error.
func (g *Group) setErr(err error) {
	g.mu.Lock()
	if g.err == nil {
		g.err = err
	}
	g.mu.Unlock()
}

// Wait blocks until every scheduled task has finished and returns the first
// error any of them reported.
func (g *Group) Wait() error {
	g.wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}

// SplitSeed deterministically derives the seed for an independent RNG
// stream from a base seed and a stream index, using a SplitMix64-style
// finalizer so adjacent stream indices land far apart in seed space.
// Handing rand.New(rand.NewSource(SplitSeed(base, i))) to the worker that
// owns index i makes randomized parallel code reproducible for any worker
// count and schedule: the stream depends only on (base, i).
func SplitSeed(base int64, stream int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*uint64(stream+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
