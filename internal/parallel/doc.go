// Package parallel provides the small concurrency substrate shared by the
// simulation stack: a persistent worker pool for index-addressed fan-out
// (Pool, with the package-level ForEach/ForEachCtx running on a shared
// default pool), an errgroup-style Group for heterogeneous tasks, and a
// deterministic seed-splitting mix (SplitSeed) so parallel code can hand
// every independent unit of work its own RNG stream.
//
// Everything here is designed around one invariant: results must be
// bit-identical regardless of the worker count. The helpers guarantee that
// by construction — workers only ever write to disjoint, index-addressed
// destinations, and randomness is never drawn from a shared stream inside a
// pool; it is split up front with SplitSeed. DESIGN.md ("Concurrency
// model") documents the scheme.
//
// # The persistent pool
//
// Pool parks a fixed set of worker goroutines once, at construction, and
// wakes them per batch; the steady state of a ForEach spawns nothing.
// Batches are claim-counter based — each participant (the caller included)
// atomically claims the next index until none remain — so the schedule is
// work-stealing-ish without any per-index channel traffic. Joins help while
// waiting: a caller whose batch still has outstanding helper tokens
// consumes other batches' tokens from the shared queue instead of parking,
// which is what makes nested ForEach calls from inside pool workers
// deadlock-free by construction. Wake tokens are sent non-blocking: helpers
// are strictly opportunistic, and a full queue just means the caller covers
// the indices itself.
package parallel
