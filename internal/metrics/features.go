// Package metrics implements the evaluation metrics of §11: the Fréchet
// Inception Distance (FID) adapted to trajectories, its normalized form from
// Fig. 12, Pearson's χ² test for the Table 1 user study, and spoofing-error
// aggregation for Fig. 11.
package metrics

import (
	"math"

	"rfprotect/internal/dsp"
	"rfprotect/internal/geom"
)

// FeatureDim is the dimensionality of the trajectory embedding.
const FeatureDim = 10

// Features embeds a trajectory into a FeatureDim-dimensional descriptor
// capturing the properties humans and classifiers key on: speed statistics,
// smoothness (turning angles, velocity autocorrelation), pausing, extent,
// and straightness. FID is computed between Gaussians fitted to these
// descriptors — the role the Inception network plays for images.
func Features(t geom.Trajectory) []float64 {
	f := make([]float64, FeatureDim)
	if len(t) < 3 {
		return f
	}
	steps := make([]float64, len(t)-1)
	for i := 1; i < len(t); i++ {
		steps[i-1] = t[i].Dist(t[i-1])
	}
	turns := t.TurningAngles()
	absTurns := make([]float64, len(turns))
	for i, a := range turns {
		absTurns[i] = math.Abs(a)
	}
	pathLen := t.PathLength()
	net := t[len(t)-1].Dist(t[0])
	rom := t.RangeOfMotion()

	// Lag-1 velocity autocorrelation (smoothness).
	vels := t.Velocities(1)
	var num, den float64
	for i := 1; i < len(vels); i++ {
		num += vels[i].Dot(vels[i-1])
	}
	for _, v := range vels {
		den += v.Dot(v)
	}
	autocorr := 0.0
	if den > 1e-12 {
		autocorr = num / den
	}
	// Pause fraction: steps below 2 cm.
	pauses := 0
	for _, s := range steps {
		if s < 0.02 {
			pauses++
		}
	}

	f[0] = dsp.Mean(steps)
	f[1] = dsp.StdDev(steps)
	f[2] = dsp.Percentile(steps, 95)
	f[3] = dsp.Mean(absTurns)
	f[4] = dsp.StdDev(absTurns)
	f[5] = rom
	// Tortuosity is unbounded for near-stationary traces; clamp so a single
	// degenerate trace cannot dominate the Gaussian fit.
	f[6] = math.Min(safeDiv(pathLen, rom), 20)
	f[7] = autocorr
	f[8] = float64(pauses) / float64(len(steps))
	f[9] = safeDiv(net, pathLen)
	return f
}

func safeDiv(a, b float64) float64 {
	if b < 1e-12 {
		return 0
	}
	return a / b
}

// FeatureSet embeds every trajectory in the set.
func FeatureSet(trs []geom.Trajectory) [][]float64 {
	out := make([][]float64, len(trs))
	for i, t := range trs {
		out[i] = Features(t)
	}
	return out
}
