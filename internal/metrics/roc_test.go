package metrics

import (
	"math"
	"testing"
)

func TestAUCPerfectSeparation(t *testing.T) {
	pos := []float64{0.9, 0.8, 0.7}
	neg := []float64{0.1, 0.2, 0.3}
	if got := AUC(pos, neg); got != 1.0 {
		t.Fatalf("AUC = %v, want 1.0", got)
	}
	if got := AUC(neg, pos); got != 0.0 {
		t.Fatalf("reversed AUC = %v, want 0.0", got)
	}
}

func TestAUCChanceAndTies(t *testing.T) {
	same := []float64{0.5, 0.5}
	if got := AUC(same, same); got != 0.5 {
		t.Fatalf("all-ties AUC = %v, want 0.5", got)
	}
	// Interleaved: pos {1,3}, neg {2,4} → wins: (1 vs 2,4): 0; (3 vs 2): 1.
	if got := AUC([]float64{1, 3}, []float64{2, 4}); got != 0.25 {
		t.Fatalf("interleaved AUC = %v, want 0.25", got)
	}
}

func TestAUCEmptyIsNaN(t *testing.T) {
	if got := AUC(nil, []float64{1}); !math.IsNaN(got) {
		t.Fatalf("AUC(nil, ...) = %v, want NaN", got)
	}
	if got := AUC([]float64{1}, nil); !math.IsNaN(got) {
		t.Fatalf("AUC(..., nil) = %v, want NaN", got)
	}
}

func TestROCEndpointsAndMonotonicity(t *testing.T) {
	pos := []float64{0.9, 0.6, 0.6, 0.4}
	neg := []float64{0.5, 0.3, 0.1}
	curve := ROC(pos, neg)
	if len(curve) == 0 {
		t.Fatal("empty curve")
	}
	last := curve[len(curve)-1]
	if last.FPR != 1 || last.TPR != 1 {
		t.Fatalf("most permissive point = (%v, %v), want (1, 1)", last.FPR, last.TPR)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].FPR < curve[i-1].FPR || curve[i].TPR < curve[i-1].TPR {
			t.Fatalf("curve not monotone at %d: %+v then %+v", i, curve[i-1], curve[i])
		}
		if curve[i].Threshold >= curve[i-1].Threshold {
			t.Fatalf("thresholds not strictly decreasing at %d", i)
		}
	}
}

func TestTPRAtFPR(t *testing.T) {
	pos := []float64{0.9, 0.8, 0.2}
	neg := []float64{0.5, 0.4, 0.1}
	// At zero tolerated false positives, thresholds above 0.5 catch 2/3.
	if got := TPRAtFPR(pos, neg, 0); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("TPR@FPR0 = %v, want 2/3", got)
	}
	if got := TPRAtFPR(pos, neg, 1); got != 1 {
		t.Fatalf("TPR@FPR1 = %v, want 1", got)
	}
	if got := TPRAtFPR(nil, neg, 0.5); !math.IsNaN(got) {
		t.Fatalf("empty pos = %v, want NaN", got)
	}
}
