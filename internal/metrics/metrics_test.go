package metrics

import (
	"math"
	"testing"

	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
	"rfprotect/internal/motion"
)

func TestFeaturesShapeAndDegenerate(t *testing.T) {
	f := Features(geom.Trajectory{{X: 0, Y: 0}})
	if len(f) != FeatureDim {
		t.Fatalf("dim %d", len(f))
	}
	for _, v := range f {
		if v != 0 {
			t.Fatal("degenerate trajectory should embed to zero")
		}
	}
	ds := motion.Generate(20, 1)
	fs := FeatureSet(ds.Traces)
	if len(fs) != 20 {
		t.Fatal("FeatureSet count")
	}
	for _, f := range fs {
		for i, v := range f {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("feature %d is %v", i, v)
			}
		}
	}
}

func TestFeaturesDiscriminate(t *testing.T) {
	// Straight-line motion: straightness ~1, turns ~0. Random walk: rough.
	line := geom.Trajectory{}
	for i := 0; i < 50; i++ {
		line = append(line, geom.Point{X: float64(i) * 0.2, Y: 0})
	}
	fl := Features(line)
	if math.Abs(fl[9]-1) > 1e-9 {
		t.Fatalf("line straightness %v", fl[9])
	}
	if fl[3] > 1e-9 {
		t.Fatalf("line mean turn %v", fl[3])
	}
	rw := motion.RandomWalk(1, 2)[0]
	fr := Features(rw)
	if fr[3] < 0.5 {
		t.Fatalf("random-walk mean turn %v too small", fr[3])
	}
}

func TestFIDIdenticalSetsNearZero(t *testing.T) {
	ds := motion.Generate(300, 3)
	fid := TrajectoryFID(ds.Traces, ds.Traces)
	if fid > 1e-6 {
		t.Fatalf("self-FID %v", fid)
	}
}

func TestFIDSplitsSmall(t *testing.T) {
	ds := motion.Generate(600, 4)
	a, b := ds.Split()
	selfFID := TrajectoryFID(a.Traces, b.Traces)
	randFID := TrajectoryFID(motion.RandomWalk(300, 5), a.Traces)
	if selfFID <= 0 {
		t.Fatalf("split FID %v should be positive", selfFID)
	}
	if randFID < 10*selfFID {
		t.Fatalf("random-walk FID %v not clearly above split FID %v", randFID, selfFID)
	}
}

func TestFIDOrderingOfBaselines(t *testing.T) {
	// The qualitative claim of Fig. 12 (right): Random is the worst match to
	// real data and real-vs-real is the best.
	ds := motion.Generate(800, 6)
	a, b := ds.Split()
	real2real := TrajectoryFID(a.Traces, b.Traces)
	single := TrajectoryFID(motion.SingleTraj(400, 7), a.Traces)
	ulm := TrajectoryFID(motion.ULM(400, 8), a.Traces)
	random := TrajectoryFID(motion.RandomWalk(400, 9), a.Traces)
	if !(real2real < single && real2real < ulm && real2real < random) {
		t.Fatalf("real-vs-real %v not the minimum (single %v ulm %v random %v)", real2real, single, ulm, random)
	}
	if random < single || random < ulm {
		t.Fatalf("random %v should be the worst (single %v ulm %v)", random, single, ulm)
	}
}

func TestNormalizedFID(t *testing.T) {
	ds := motion.Generate(600, 10)
	a, b := ds.Split()
	// Real split vs real: normalized ~1 by construction.
	n := NormalizedFID(a.Traces, b.Traces, a.Traces, b.Traces)
	if math.Abs(n-1) > 1e-9 {
		t.Fatalf("self-normalized FID %v", n)
	}
	r := NormalizedFID(motion.RandomWalk(300, 11), b.Traces, a.Traces, b.Traces)
	if r < 2 {
		t.Fatalf("random normalized FID %v should be large", r)
	}
}

func TestChiSquaredIndependentTable(t *testing.T) {
	// The paper's Table 1: χ² ≈ 0.2, p ≈ 0.65.
	c := ContingencyTable2x2{RealReal: 93, RealFake: 67, FakeReal: 89, FakeFake: 71}
	chi2, p := c.ChiSquared()
	if math.Abs(chi2-0.2) > 0.05 {
		t.Fatalf("chi2 = %v, paper reports ~0.2", chi2)
	}
	if math.Abs(p-0.65) > 0.03 {
		t.Fatalf("p = %v, paper reports ~0.65", p)
	}
}

func TestChiSquaredDependentTable(t *testing.T) {
	// A panel that can tell: strong dependence, tiny p.
	c := ContingencyTable2x2{RealReal: 140, RealFake: 20, FakeReal: 20, FakeFake: 140}
	chi2, p := c.ChiSquared()
	if chi2 < 50 {
		t.Fatalf("chi2 = %v too small", chi2)
	}
	if p > 1e-6 {
		t.Fatalf("p = %v too large", p)
	}
}

func TestChiSquaredDegenerate(t *testing.T) {
	chi2, p := (ContingencyTable2x2{}).ChiSquared()
	if chi2 != 0 || p != 1 {
		t.Fatalf("empty table: chi2 %v p %v", chi2, p)
	}
}

func TestChiSquaredSurvivalValues(t *testing.T) {
	// Known quantiles: P(X>3.841 | k=1) ≈ 0.05, P(X>6.635 | k=1) ≈ 0.01,
	// P(X>5.991 | k=2) ≈ 0.05.
	cases := []struct {
		x    float64
		k    int
		want float64
	}{
		{3.841, 1, 0.05},
		{6.635, 1, 0.01},
		{5.991, 2, 0.05},
		{0, 1, 1},
	}
	for _, c := range cases {
		got := ChiSquaredSurvival(c.x, c.k)
		if math.Abs(got-c.want) > 0.002 {
			t.Errorf("Q(%v, k=%d) = %v, want %v", c.x, c.k, got, c.want)
		}
	}
}

func TestEvaluateSpoofPerfect(t *testing.T) {
	radar := fmcw.Array{Position: geom.Point{}, Facing: 1}
	tr := geom.Trajectory{{X: 1, Y: 2}, {X: 2, Y: 3}, {X: 3, Y: 3}}
	e := EvaluateSpoof(tr, tr, radar)
	d, a, l := e.Medians()
	if d > 1e-9 || a > 1e-9 || l > 1e-9 {
		t.Fatalf("perfect spoof has errors %v %v %v", d, a, l)
	}
}

func TestEvaluateSpoofKnownOffsets(t *testing.T) {
	radar := fmcw.Array{Position: geom.Point{}, AxisAngle: 0, Facing: 1}
	intended := geom.Trajectory{{X: 0, Y: 2}, {X: 0, Y: 3}, {X: 0, Y: 4}}
	// Measured 0.5 m farther in range, same bearing.
	measured := geom.Trajectory{{X: 0, Y: 2.5}, {X: 0, Y: 3.5}, {X: 0, Y: 4.5}}
	e := EvaluateSpoof(measured, intended, radar)
	d, a, _ := e.Medians()
	if math.Abs(d-0.5) > 1e-9 {
		t.Fatalf("distance error %v, want 0.5", d)
	}
	if a > 1e-9 {
		t.Fatalf("angle error %v, want 0", a)
	}
	// Pure translation: location error after alignment ~0.
	if l := e.Location; l[0] > 1e-9 {
		t.Fatalf("aligned location error %v, want 0", l[0])
	}
}

func TestSpoofErrorsMerge(t *testing.T) {
	a := SpoofErrors{Distance: []float64{1}, Angle: []float64{2}, Location: []float64{3}}
	b := SpoofErrors{Distance: []float64{4}, Angle: []float64{5}, Location: []float64{6}}
	a.Merge(b)
	if len(a.Distance) != 2 || len(a.Angle) != 2 || len(a.Location) != 2 {
		t.Fatal("merge lengths")
	}
	d, ang, l := a.Medians()
	if d != 2.5 || ang != 3.5 || l != 4.5 {
		t.Fatalf("medians %v %v %v", d, ang, l)
	}
}
