package metrics

import (
	"math"

	"rfprotect/internal/dsp"
	"rfprotect/internal/geom"
)

// FID computes the Fréchet distance between Gaussians fitted to two feature
// sets:
//
//	FID = |μ₁-μ₂|² + Tr(Σ₁ + Σ₂ - 2·(Σ₁^½ Σ₂ Σ₁^½)^½)
//
// A small ridge is added to both covariances for numerical robustness, as
// is standard practice in FID implementations.
func FID(a, b [][]float64) float64 {
	if len(a) < 2 || len(b) < 2 {
		return math.NaN()
	}
	mu1 := dsp.MeanVec(a)
	mu2 := dsp.MeanVec(b)
	s1 := dsp.CovarianceMatrix(a)
	s2 := dsp.CovarianceMatrix(b)
	d := len(mu1)
	const ridge = 1e-9
	for i := 0; i < d; i++ {
		s1.Data[i*d+i] += ridge
		s2.Data[i*d+i] += ridge
	}
	meanTerm := 0.0
	for i := range mu1 {
		diff := mu1[i] - mu2[i]
		meanTerm += diff * diff
	}
	// sqrtm(Σ₁Σ₂) via the symmetric form Σ₁^½ Σ₂ Σ₁^½.
	s1half := dsp.SqrtSPD(s1)
	inner := s1half.Mul(s2).Mul(s1half)
	// Symmetrize against round-off before the final square root.
	innerT := inner.Transpose()
	sym := inner.Add(innerT).Scale(0.5)
	covSqrt := dsp.SqrtSPD(sym)
	covTerm := s1.Trace() + s2.Trace() - 2*covSqrt.Trace()
	if covTerm < 0 {
		covTerm = 0
	}
	return meanTerm + covTerm
}

// TrajectoryFID computes FID between two trajectory sets via the Features
// embedding.
func TrajectoryFID(a, b []geom.Trajectory) float64 {
	return FID(FeatureSet(a), FeatureSet(b))
}

// NormalizedFID reproduces Fig. 12 (right): candidate-vs-real FID divided by
// the FID between two disjoint real splits, so a perfectly realistic
// candidate scores ~1.
func NormalizedFID(candidate, realRef, realSplitA, realSplitB []geom.Trajectory) float64 {
	base := TrajectoryFID(realSplitA, realSplitB)
	if base <= 0 || math.IsNaN(base) {
		return math.NaN()
	}
	return TrajectoryFID(candidate, realRef) / base
}
