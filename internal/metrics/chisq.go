package metrics

import "math"

// ContingencyTable2x2 is the user-study outcome layout of Table 1:
// rows = ground truth (real, fake), columns = perception (real, fake).
type ContingencyTable2x2 struct {
	RealReal, RealFake int // real trajectories perceived real / fake
	FakeReal, FakeFake int // fake trajectories perceived real / fake
}

// ChiSquared returns Pearson's χ² statistic and its p-value (1 degree of
// freedom) for the 2×2 table. A large p-value means perception and ground
// truth are statistically independent — the paper's result (χ²≈0.2, p≈0.65)
// showing humans cannot tell RF-Protect trajectories from real ones.
func (c ContingencyTable2x2) ChiSquared() (chi2, p float64) {
	row1 := float64(c.RealReal + c.RealFake)
	row2 := float64(c.FakeReal + c.FakeFake)
	col1 := float64(c.RealReal + c.FakeReal)
	col2 := float64(c.RealFake + c.FakeFake)
	n := row1 + row2
	if n == 0 || row1 == 0 || row2 == 0 || col1 == 0 || col2 == 0 {
		return 0, 1
	}
	obs := []float64{float64(c.RealReal), float64(c.RealFake), float64(c.FakeReal), float64(c.FakeFake)}
	exp := []float64{row1 * col1 / n, row1 * col2 / n, row2 * col1 / n, row2 * col2 / n}
	for i := range obs {
		d := obs[i] - exp[i]
		chi2 += d * d / exp[i]
	}
	return chi2, ChiSquaredSurvival(chi2, 1)
}

// ChiSquaredSurvival returns P(X > x) for a χ² distribution with k degrees
// of freedom, via the regularized upper incomplete gamma function
// Q(k/2, x/2).
func ChiSquaredSurvival(x float64, k int) float64 {
	if x <= 0 {
		return 1
	}
	return upperIncompleteGammaRegularized(float64(k)/2, x/2)
}

// upperIncompleteGammaRegularized computes Q(a, x) = Γ(a, x)/Γ(a) with the
// standard series (x < a+1) / continued-fraction (x >= a+1) split
// (Numerical Recipes §6.2).
func upperIncompleteGammaRegularized(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - lowerSeries(a, x)
	}
	return upperContinuedFraction(a, x)
}

func lowerSeries(a, x float64) float64 {
	lgamma, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lgamma)
}

func upperContinuedFraction(a, x float64) float64 {
	lgamma, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lgamma) * h
}
