package metrics

import (
	"math"

	"rfprotect/internal/dsp"
	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
)

// SpoofErrors collects the three per-point error populations of Fig. 11 for
// one spoofed trajectory: distance (polar radius from the radar), angle, and
// 2-D location after rigid alignment.
type SpoofErrors struct {
	Distance []float64 // meters, |r_measured - r_intended| (Fig. 11a)
	Angle    []float64 // degrees, |θ_measured - θ_intended| (Fig. 11b)
	Location []float64 // meters, residual after rotation+translation (Fig. 11c)
}

// Merge appends the error populations of o.
func (s *SpoofErrors) Merge(o SpoofErrors) {
	s.Distance = append(s.Distance, o.Distance...)
	s.Angle = append(s.Angle, o.Angle...)
	s.Location = append(s.Location, o.Location...)
}

// Medians returns the medians of the three populations.
func (s *SpoofErrors) Medians() (dist, angle, loc float64) {
	return dsp.Median(s.Distance), dsp.Median(s.Angle), dsp.Median(s.Location)
}

// EvaluateSpoof compares a measured trajectory against the intended one, as
// §11.1 does: per-point range and bearing deviations in the radar's polar
// frame, and 2-D location error modulo translation and rotation of the
// entire trajectory. Both trajectories are resampled to the shorter length.
func EvaluateSpoof(measured, intended geom.Trajectory, radar fmcw.Array) SpoofErrors {
	var out SpoofErrors
	if len(measured) == 0 || len(intended) == 0 {
		return out
	}
	n := len(measured)
	if len(intended) < n {
		n = len(intended)
	}
	m := measured.Resample(n)
	g := intended.Resample(n)
	for i := 0; i < n; i++ {
		rm := radar.DistanceOf(m[i])
		rg := radar.DistanceOf(g[i])
		out.Distance = append(out.Distance, math.Abs(rm-rg))
		am := radar.AoAOf(m[i])
		ag := radar.AoAOf(g[i])
		out.Angle = append(out.Angle, math.Abs(geom.AngleDiff(am, ag))*180/math.Pi)
	}
	out.Location = geom.AlignedErrors(m, g)
	return out
}
