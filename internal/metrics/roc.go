package metrics

import (
	"math"
	"sort"
)

// ROC/AUC machinery for the detector arms race: every spoof detector in
// internal/detect reduces a track to a scalar suspicion score, and the
// arms-race experiment reports how well that score separates ghost tracks
// (positives) from human tracks (negatives).

// AUC returns the area under the ROC curve of a score that should rank
// positives above negatives, computed as the Mann–Whitney U statistic
// normalized by the number of (positive, negative) pairs; ties count half.
// 1.0 is perfect separation, 0.5 is chance, and values below 0.5 mean the
// score ranks backwards. Either class being empty returns NaN.
//
// The pair count is quadratic in the class sizes, which is exact and plenty
// fast at experiment scale (tens of tracks per class).
func AUC(pos, neg []float64) float64 {
	if len(pos) == 0 || len(neg) == 0 {
		return math.NaN()
	}
	wins := 0.0
	for _, p := range pos {
		for _, n := range neg {
			switch {
			case p > n:
				wins++
			case p == n:
				wins += 0.5
			}
		}
	}
	return wins / float64(len(pos)*len(neg))
}

// ROCPoint is one operating point of a detector: the false-positive and
// true-positive rates obtained by flagging scores >= Threshold.
type ROCPoint struct {
	Threshold float64
	FPR, TPR  float64
}

// ROC returns the full ROC curve of the score, one point per distinct
// threshold, ordered from the strictest (highest) threshold to the most
// permissive — i.e. from (0, 0) toward (1, 1). Either class being empty
// returns nil.
func ROC(pos, neg []float64) []ROCPoint {
	if len(pos) == 0 || len(neg) == 0 {
		return nil
	}
	thresholds := make([]float64, 0, len(pos)+len(neg))
	thresholds = append(thresholds, pos...)
	thresholds = append(thresholds, neg...)
	sort.Sort(sort.Reverse(sort.Float64Slice(thresholds)))
	out := make([]ROCPoint, 0, len(thresholds))
	prev := math.Inf(1)
	for _, th := range thresholds {
		if th == prev {
			continue
		}
		prev = th
		out = append(out, ROCPoint{Threshold: th, FPR: rateAtOrAbove(neg, th), TPR: rateAtOrAbove(pos, th)})
	}
	return out
}

// TPRAtFPR returns the best true-positive rate achievable while keeping the
// false-positive rate at or below maxFPR — the detector's power at a chosen
// operating point. Either class being empty returns NaN.
func TPRAtFPR(pos, neg []float64, maxFPR float64) float64 {
	curve := ROC(pos, neg)
	if curve == nil {
		return math.NaN()
	}
	best := 0.0
	for _, pt := range curve {
		if pt.FPR <= maxFPR && pt.TPR > best {
			best = pt.TPR
		}
	}
	return best
}

// rateAtOrAbove returns the fraction of xs at or above th.
func rateAtOrAbove(xs []float64, th float64) float64 {
	n := 0
	for _, x := range xs {
		if x >= th {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}
