package analysis_test

import (
	"testing"

	"rfprotect/internal/analysis"
)

func TestLockOrderFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata/src/lockorder", analysis.LockOrder)
}
