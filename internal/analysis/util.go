package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// calleeFunc resolves the statically-known callee of a call expression:
// a package-level function, a method, or nil for dynamic calls (function
// values, interface methods resolve to the interface method object, which
// is still useful) and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name
// (methods never match: their receiver is non-nil).
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name && funcSig(fn).Recv() == nil
}

// funcSig returns fn's signature (fn.Type() is always a *types.Signature
// for function objects; the helper keeps the module on the go1.22 API —
// types.Func.Signature arrived in go1.23).
func funcSig(fn *types.Func) *types.Signature {
	return fn.Type().(*types.Signature)
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// sigContextParam returns the index of the first context.Context parameter
// of sig, or -1.
func sigContextParam(sig *types.Signature) int {
	if sig == nil {
		return -1
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return i
		}
	}
	return -1
}

// firstParty reports whether fn is declared inside the analyzed module.
func firstParty(fn *types.Func, modulePath string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	return path == modulePath || strings.HasPrefix(path, modulePath+"/")
}

// inspectWithStack walks the file keeping the ancestor stack: fn is called
// pre-order with the stack including n itself.
func inspectWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if !fn(n, stack) {
			// Children are skipped, so the post-order pop for n never
			// fires; pop it now.
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}

// funcBody returns the body of a function node (FuncDecl or FuncLit).
func funcBody(n ast.Node) *ast.BlockStmt {
	switch fn := n.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}
