package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// LockOrder enforces the documented lock hierarchy (DESIGN.md: shard mutex
// → Room state → trkMu leaf) as a static rank check, in the image of the
// kernel's lockdep. Mutex fields and package-level mutexes opt in with a
//
//	//rfvet:lockrank <n>
//
// comment on their declaration; holding a lock of rank h while acquiring a
// lock of rank <= h — directly, or through a call to a same-package
// function that may acquire one — is a diagnostic. Unannotated mutexes are
// invisible to the analyzer, so packages without the comments are
// unaffected.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "ranked locks (//rfvet:lockrank n) must be acquired in strictly " +
		"increasing rank order, including through same-package calls",
	Run: runLockOrder,
}

const lockrankMarker = "//rfvet:lockrank"

// parseLockrank extracts the rank from one comment line, returning ok
// false when the line is not a lockrank marker at all and an error message
// when it is one but malformed.
func parseLockrank(text string) (rank int, ok bool, malformed string) {
	if !strings.HasPrefix(text, lockrankMarker) {
		return 0, false, ""
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, lockrankMarker))
	n, err := strconv.Atoi(rest)
	if err != nil {
		return 0, false, fmt.Sprintf("malformed %s comment: want %q, got %q",
			lockrankMarker, lockrankMarker+" <integer>", text)
	}
	return n, true, ""
}

func runLockOrder(pass *Pass) error {
	lo := &lockOrderer{pass: pass, ranks: map[*types.Var]int{}}
	lo.collectRanks()
	if len(lo.ranks) == 0 {
		return nil
	}
	lo.buildSummaries()
	lo.reported = map[string]bool{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			lo.checkFunc(fd)
		}
	}
	return nil
}

type lockOrderer struct {
	pass     *Pass
	ranks    map[*types.Var]int
	summary  map[*types.Func]map[*types.Var]bool
	reported map[string]bool
}

// collectRanks finds every //rfvet:lockrank annotation on a struct field
// or var declaration and records the rank under the declared object.
func (lo *lockOrderer) collectRanks() {
	for _, f := range lo.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Field:
				lo.rankFromComments(n.Names, n.Doc, n.Comment)
			case *ast.ValueSpec:
				lo.rankFromComments(n.Names, n.Doc, n.Comment)
			}
			return true
		})
	}
}

func (lo *lockOrderer) rankFromComments(names []*ast.Ident, groups ...*ast.CommentGroup) {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			rank, ok, malformed := parseLockrank(c.Text)
			if malformed != "" {
				lo.pass.Reportf(c.Pos(), "%s", malformed)
				continue
			}
			if !ok {
				continue
			}
			for _, name := range names {
				if v, isVar := lo.pass.TypesInfo.Defs[name].(*types.Var); isVar {
					lo.ranks[v] = rank
				}
			}
		}
	}
}

// lockVarOf resolves the mutex object of a sync lock/unlock call: for
// `r.mu.Lock()` it is the field object of `mu`; for a package-level
// `scrapeMu.Lock()` it is the var object. Returns nil for calls on
// unannotated or unresolvable receivers.
func (lo *lockOrderer) lockVarOf(call *ast.CallExpr) (*types.Var, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	fn := calleeFunc(lo.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, ""
	}
	method := fn.Name()
	var obj types.Object
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		obj = lo.pass.TypesInfo.Uses[x.Sel]
	case *ast.Ident:
		obj = lo.pass.TypesInfo.Uses[x]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return nil, ""
	}
	if _, ranked := lo.ranks[v]; !ranked {
		return nil, ""
	}
	return v, method
}

// buildSummaries computes, for every function declared in the package, the
// set of ranked locks it may acquire — directly or through same-package
// calls — by fixpoint over the package-local call graph. Function literals
// are excluded: a literal is typically a goroutine body or deferred
// cleanup, whose acquisitions do not nest under the spawning call site in
// any order the rank check can reason about.
func (lo *lockOrderer) buildSummaries() {
	direct := map[*types.Func]map[*types.Var]bool{}
	calls := map[*types.Func]map[*types.Func]bool{}
	var fns []*types.Func

	for _, f := range lo.pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := lo.pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fns = append(fns, fn)
			direct[fn] = map[*types.Var]bool{}
			calls[fn] = map[*types.Func]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, isLit := n.(*ast.FuncLit); isLit {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if v, method := lo.lockVarOf(call); v != nil && isAcquireMethod(method) {
					direct[fn][v] = true
					return true
				}
				callee := calleeFunc(lo.pass.TypesInfo, call)
				if callee != nil && callee.Pkg() == lo.pass.Pkg {
					calls[fn][callee] = true
				}
				return true
			})
		}
	}

	lo.summary = map[*types.Func]map[*types.Var]bool{}
	for _, fn := range fns {
		s := map[*types.Var]bool{}
		for v := range direct[fn] {
			s[v] = true
		}
		lo.summary[fn] = s
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			s := lo.summary[fn]
			for callee := range calls[fn] {
				for v := range lo.summary[callee] {
					if !s[v] {
						s[v] = true
						changed = true
					}
				}
			}
		}
	}
}

func isAcquireMethod(m string) bool { return m == "Lock" || m == "RLock" }
func isReleaseMethod(m string) bool { return m == "Unlock" || m == "RUnlock" }

type heldSet map[*types.Var]bool

func cloneHeld(h heldSet) heldSet {
	out := make(heldSet, len(h))
	for k := range h {
		out[k] = true
	}
	return out
}

func mergeHeld(a, b heldSet) heldSet {
	out := cloneHeld(a)
	for k := range b {
		out[k] = true
	}
	return out
}

func equalHeld(a, b heldSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// checkFunc runs the held-set dataflow over one function body and reports
// rank inversions.
func (lo *lockOrderer) checkFunc(fd *ast.FuncDecl) {
	g := buildCFG(fd.Body, lo.pass.TypesInfo)
	if g.unanalyzable {
		return
	}
	in := dataflow(g, heldSet{},
		func(blk *cfgBlock, st heldSet) heldSet {
			out := cloneHeld(st)
			lo.processBlock(blk, out, false)
			return out
		},
		mergeHeld, equalHeld)
	for _, blk := range g.blocks {
		st, ok := in[blk]
		if !ok || blk == g.exit {
			continue
		}
		lo.processBlock(blk, cloneHeld(st), true)
	}
}

func (lo *lockOrderer) processBlock(blk *cfgBlock, held heldSet, report bool) {
	for _, n := range blk.nodes {
		inspectWithStack(n, func(node ast.Node, stack []ast.Node) bool {
			if _, isLit := node.(*ast.FuncLit); isLit {
				return false
			}
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			lo.processCall(call, stack, held, report)
			return true
		})
	}
}

func (lo *lockOrderer) processCall(call *ast.CallExpr, stack []ast.Node, held heldSet, report bool) {
	deferred := underDefer(stack)
	if v, method := lo.lockVarOf(call); v != nil {
		switch {
		case isAcquireMethod(method) && !deferred:
			if report {
				lo.checkAcquire(call.Pos(), v, held)
			}
			held[v] = true
		case isReleaseMethod(method) && !deferred:
			delete(held, v)
		case isReleaseMethod(method) && deferred:
			// defer mu.Unlock(): the lock stays held for the rest of the
			// function — exactly what the held set already says.
		}
		return
	}
	if deferred {
		return
	}
	callee := calleeFunc(lo.pass.TypesInfo, call)
	if callee == nil || callee.Pkg() != lo.pass.Pkg {
		return
	}
	summ := lo.summary[callee]
	if len(summ) == 0 || len(held) == 0 || !report {
		return
	}
	for acq := range summ {
		for h := range held {
			if lo.ranks[acq] <= lo.ranks[h] {
				key := "call:" + posKey(lo.pass, call.Pos()) + ":" + acq.Name()
				if lo.reported[key] {
					continue
				}
				lo.reported[key] = true
				lo.pass.Reportf(call.Pos(),
					"call to %s while holding %s (lockrank %d): it may acquire %s (lockrank %d), inverting the lock hierarchy",
					callee.Name(), h.Name(), lo.ranks[h], acq.Name(), lo.ranks[acq])
			}
		}
	}
}

func (lo *lockOrderer) checkAcquire(pos token.Pos, v *types.Var, held heldSet) {
	rv := lo.ranks[v]
	// Report against the highest-ranked held lock for a deterministic
	// message when several are held.
	var worst *types.Var
	for h := range held {
		if h == v {
			worst = h
			break
		}
		if lo.ranks[h] >= rv && (worst == nil || lo.ranks[h] > lo.ranks[worst] ||
			(lo.ranks[h] == lo.ranks[worst] && h.Name() < worst.Name())) {
			worst = h
		}
	}
	if worst == nil {
		return
	}
	key := "acq:" + posKey(lo.pass, pos)
	if lo.reported[key] {
		return
	}
	lo.reported[key] = true
	if worst == v {
		lo.pass.Reportf(pos, "%s (lockrank %d) acquired while already held: self-deadlock", v.Name(), rv)
		return
	}
	lo.pass.Reportf(pos,
		"%s (lockrank %d) acquired while holding %s (lockrank %d): lock ranks must strictly increase",
		v.Name(), rv, worst.Name(), lo.ranks[worst])
}

// sortedRankNames is used by tests and docs tooling to render the rank
// table deterministically.
func (lo *lockOrderer) sortedRankNames() []string {
	var names []string
	for v, r := range lo.ranks {
		names = append(names, fmt.Sprintf("%s=%d", v.Name(), r))
	}
	sort.Strings(names)
	return names
}
