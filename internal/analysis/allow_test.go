package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"testing"
)

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text string
		want []string
	}{
		{"//rfvet:allow wallclock", []string{"wallclock"}},
		{"//rfvet:allow wallclock ctxflow -- pacing wrapper", []string{"wallclock", "ctxflow"}},
		{"//rfvet:allow all -- whole file of exceptions", []string{"all"}},
		{"//rfvet:allow", []string{}},
		{"//rfvet:allowother", nil},
		{"// ordinary comment", nil},
		{"//rfvet:deny wallclock", nil},
	}
	for _, c := range cases {
		got := parseAllow(c.text)
		if len(got) == 0 && len(c.want) == 0 {
			if (got == nil) != (c.want == nil) {
				t.Errorf("parseAllow(%q) = %v, want %v", c.text, got, c.want)
			}
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseAllow(%q) = %v, want %v", c.text, got, c.want)
		}
	}
}

func TestAllowScopes(t *testing.T) {
	src := `package p

// doc comment for f.
//
//rfvet:allow wallclock -- whole function is pacing
func f() {
	x := 1
	_ = x
}

func g() {
	//rfvet:allow ctxflow -- next line only
	y := 2
	z := 3 //rfvet:allow goroleak -- same line
	_, _ = y, z
}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	set := collectAllows(fset, []*ast.File{file})

	at := func(line int) token.Position {
		return token.Position{Filename: "p.go", Line: line}
	}
	// Doc annotation covers the whole declaration of f (lines 6-9).
	for _, line := range []int{6, 7, 8, 9} {
		if !set.allows("wallclock", at(line)) {
			t.Errorf("wallclock not allowed at line %d inside f", line)
		}
	}
	if set.allows("wallclock", at(11)) {
		t.Error("wallclock allowed outside f")
	}
	// Standalone comment covers its own and the next line.
	if !set.allows("ctxflow", at(13)) {
		t.Error("ctxflow not allowed on the line after the comment")
	}
	if set.allows("ctxflow", at(14)) {
		t.Error("ctxflow leaked past the next line")
	}
	// Trailing comment covers its line.
	if !set.allows("goroleak", at(14)) {
		t.Error("goroleak not allowed on its own line")
	}
	// Unlisted analyzers stay active.
	if set.allows("seedsplit", at(14)) {
		t.Error("seedsplit suppressed without being named")
	}
}
