package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"testing"
)

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text     string
		want     []string
		wantJust string
		wantOK   bool
	}{
		{"//rfvet:allow wallclock", []string{"wallclock"}, "", true},
		{"//rfvet:allow wallclock ctxflow -- pacing wrapper", []string{"wallclock", "ctxflow"}, "pacing wrapper", true},
		{"//rfvet:allow all -- whole file of exceptions", []string{"all"}, "whole file of exceptions", true},
		// A bare marker still parses (so collectAllows can flag it as a
		// diagnostic) but grants nothing.
		{"//rfvet:allow", []string{}, "", true},
		{"//rfvet:allow -- reason but no analyzers", []string{}, "reason but no analyzers", true},
		{"//rfvet:allowother", nil, "", false},
		{"// ordinary comment", nil, "", false},
		{"//rfvet:deny wallclock", nil, "", false},
	}
	for _, c := range cases {
		got, just, ok := parseAllow(c.text)
		if ok != c.wantOK {
			t.Errorf("parseAllow(%q) ok = %v, want %v", c.text, ok, c.wantOK)
			continue
		}
		if just != c.wantJust {
			t.Errorf("parseAllow(%q) justification = %q, want %q", c.text, just, c.wantJust)
		}
		if len(got) == 0 && len(c.want) == 0 {
			if (got == nil) != (c.want == nil) {
				t.Errorf("parseAllow(%q) = %v, want %v", c.text, got, c.want)
			}
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseAllow(%q) = %v, want %v", c.text, got, c.want)
		}
	}
}

func TestCollectAllowIssues(t *testing.T) {
	src := `package p

func f() {
	x := 1 //rfvet:allow
	y := 2 //rfvet:allow wallclock
	z := 3 //rfvet:allow wallclock -- justified
	_, _, _ = x, y, z
}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	set, issues := collectAllows(fset, []*ast.File{file})
	if len(issues) != 2 {
		t.Fatalf("got %d issues, want 2 (one bare, one nojust): %+v", len(issues), issues)
	}
	kinds := map[string]int{}
	for _, is := range issues {
		kinds[is.kind]++
	}
	if kinds["bare"] != 1 || kinds["nojust"] != 1 {
		t.Errorf("issue kinds = %v, want one bare and one nojust", kinds)
	}
	// The unjustified (but non-bare) allow still suppresses.
	if !set.allows("wallclock", token.Position{Filename: "p.go", Line: 5}) {
		t.Error("unjustified allow lost its suppression")
	}
	// The bare allow grants nothing.
	if set.allows("wallclock", token.Position{Filename: "p.go", Line: 4}) {
		t.Error("bare allow suppressed something")
	}
	// find returns the justification for the audit trail. (Line 7 is
	// covered only by the justified line-6 comment; line 6 itself is also
	// in the line-5 comment's own-line-plus-next scope.)
	e := set.find("wallclock", token.Position{Filename: "p.go", Line: 7})
	if e == nil || e.justification != "justified" {
		t.Errorf("find returned %+v, want justification %q", e, "justified")
	}
}

func TestAllowScopes(t *testing.T) {
	src := `package p

// doc comment for f.
//
//rfvet:allow wallclock -- whole function is pacing
func f() {
	x := 1
	_ = x
}

func g() {
	//rfvet:allow ctxflow -- next line only
	y := 2
	z := 3 //rfvet:allow goroleak -- same line
	_, _ = y, z
}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	set, issues := collectAllows(fset, []*ast.File{file})
	if len(issues) != 0 {
		t.Fatalf("unexpected allow issues: %+v", issues)
	}

	at := func(line int) token.Position {
		return token.Position{Filename: "p.go", Line: line}
	}
	// Doc annotation covers the whole declaration of f (lines 6-9).
	for _, line := range []int{6, 7, 8, 9} {
		if !set.allows("wallclock", at(line)) {
			t.Errorf("wallclock not allowed at line %d inside f", line)
		}
	}
	if set.allows("wallclock", at(11)) {
		t.Error("wallclock allowed outside f")
	}
	// Standalone comment covers its own and the next line.
	if !set.allows("ctxflow", at(13)) {
		t.Error("ctxflow not allowed on the line after the comment")
	}
	if set.allows("ctxflow", at(14)) {
		t.Error("ctxflow leaked past the next line")
	}
	// Trailing comment covers its line.
	if !set.allows("goroleak", at(14)) {
		t.Error("goroleak not allowed on its own line")
	}
	// Unlisted analyzers stay active.
	if set.allows("seedsplit", at(14)) {
		t.Error("seedsplit suppressed without being named")
	}
}
