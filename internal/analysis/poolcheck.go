package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PoolCheck enforces the buffer-ownership contract from DESIGN.md: a
// checkout from a free list (FramePool.Get, ProfilePool.Get, the pipeline
// Item list) must, inside the acquiring function, either reach a matching
// Put on every non-error path or be handed off through a documented
// ownership-transfer point (returned, stored into a struct field, passed
// to another function, sent on a channel). On top of the leak check it
// flags the two misuse classes the contract comments cannot catch: touching
// a buffer after it went back to the pool, and capturing a pooled buffer in
// a goroutine closure (the pool may hand it to another frame while the
// goroutine still reads it).
var PoolCheck = &Analyzer{
	Name: "poolcheck",
	Doc: "pooled buffers must reach Put on all non-error paths or be handed off; " +
		"no use-after-Put; no pooled buffer captured by a goroutine",
	Run: runPoolCheck,
}

// poolState is the per-variable dataflow fact, merged by union across
// paths. A variable is reported as leaked only when it is exactly Owned at
// a success exit, and as used-after-Put only when it is exactly Released —
// any ambiguity (a transfer on one branch, an untouched path on another)
// keeps the analyzer quiet, matching the repo's "annotate the weird case,
// never cry wolf" rfvet policy.
type poolState uint8

const (
	poolOwned poolState = 1 << iota
	poolReleased
	poolTransferred
)

type poolStates map[*types.Var]poolState

func clonePoolStates(m poolStates) poolStates {
	out := make(poolStates, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func mergePoolStates(a, b poolStates) poolStates {
	out := clonePoolStates(a)
	for k, v := range b {
		out[k] |= v
	}
	return out
}

func equalPoolStates(a, b poolStates) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func runPoolCheck(pass *Pass) error {
	if pass.IsMain() {
		// Commands (cmd/bench in particular) drive pools in benchmark
		// loops where the checkout/return pairing spans helper calls;
		// the contract is a library-code contract.
		return nil
	}
	for _, f := range pass.Files {
		funcsOf(f, func(node ast.Node, body *ast.BlockStmt) {
			pc := &poolChecker{pass: pass, sig: funcNodeSig(pass.TypesInfo, node)}
			pc.check(body)
		})
	}
	return nil
}

type poolChecker struct {
	pass *Pass
	sig  *types.Signature

	acquires   map[*ast.AssignStmt]*types.Var
	acquirePos map[*types.Var]token.Pos
	reported   map[string]bool
}

// funcNodeSig resolves the signature of a FuncDecl or FuncLit.
func funcNodeSig(info *types.Info, node ast.Node) *types.Signature {
	switch n := node.(type) {
	case *ast.FuncDecl:
		if fn, ok := info.Defs[n.Name].(*types.Func); ok {
			return funcSig(fn)
		}
	case *ast.FuncLit:
		if sig, ok := info.TypeOf(n).(*types.Signature); ok {
			return sig
		}
	}
	return nil
}

func (pc *poolChecker) check(body *ast.BlockStmt) {
	pc.collectAcquires(body)
	if len(pc.acquires) == 0 {
		return
	}
	g := buildCFG(body, pc.pass.TypesInfo)
	if g.unanalyzable {
		// goto or an unmodeled statement: a wrong graph would report
		// wrong paths, so skip the function entirely.
		return
	}
	pc.reported = map[string]bool{}

	in := dataflow(g, poolStates{},
		func(blk *cfgBlock, st poolStates) poolStates {
			out := clonePoolStates(st)
			pc.processBlock(blk, out, false)
			return out
		},
		mergePoolStates, equalPoolStates)

	// Second pass: replay each reachable block once from its fixpoint
	// entry state and emit diagnostics.
	for _, blk := range g.blocks {
		st, ok := in[blk]
		if !ok || blk == g.exit {
			continue
		}
		out := clonePoolStates(st)
		pc.processBlock(blk, out, true)
		if blk.retStmt == nil && !blk.panics && hasSucc(blk, g.exit) {
			pc.checkLeaks(out) // fall off the end of the function
		}
	}
}

func hasSucc(blk, target *cfgBlock) bool {
	for _, s := range blk.succs {
		if s == target {
			return true
		}
	}
	return false
}

// collectAcquires records every `x := pool.Get(...)` style assignment in
// the body, excluding nested function literals (they are analyzed as their
// own units).
func (pc *poolChecker) collectAcquires(body *ast.BlockStmt) {
	pc.acquires = map[*ast.AssignStmt]*types.Var{}
	pc.acquirePos = map[*types.Var]token.Pos{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !pc.isAcquireCall(call) {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := pc.pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pc.pass.TypesInfo.Uses[id]
		}
		if v, ok := obj.(*types.Var); ok {
			pc.acquires[as] = v
			if _, seen := pc.acquirePos[v]; !seen {
				pc.acquirePos[v] = id.Pos()
			}
		}
		return true
	})
}

// isAcquireCall reports whether the call checks a buffer out of a
// first-party free list: a Get* method on a *Pool type, or the pipeline's
// getItem/GetItem item list.
func (pc *poolChecker) isAcquireCall(call *ast.CallExpr) bool {
	fn := calleeFunc(pc.pass.TypesInfo, call)
	if !firstParty(fn, pc.pass.ModulePath) {
		return false
	}
	name := fn.Name()
	if name == "getItem" || name == "GetItem" {
		return true
	}
	recv := funcSig(fn).Recv()
	if recv == nil {
		return false
	}
	return strings.HasPrefix(name, "Get") && strings.HasSuffix(namedTypeName(recv.Type()), "Pool")
}

// isReleaseCall reports whether the call returns its pooled argument to a
// free list. recycle/Recycle are deliberately NOT here: in the pipeline
// contract recycle(it) releases the item's *buffers* while the item itself
// stays owned, so it is classified as a hand-off, not a release of the
// argument.
func (pc *poolChecker) isReleaseCall(call *ast.CallExpr) bool {
	fn := calleeFunc(pc.pass.TypesInfo, call)
	if !firstParty(fn, pc.pass.ModulePath) {
		return false
	}
	name := fn.Name()
	return strings.HasPrefix(name, "Put") || strings.HasPrefix(name, "put") ||
		strings.HasPrefix(name, "Release") || strings.HasPrefix(name, "release") ||
		strings.HasPrefix(name, "Free") || strings.HasPrefix(name, "free")
}

// namedTypeName returns the name of t's named type, through one pointer.
func namedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// processBlock replays the nodes of one block over st, reporting
// diagnostics when report is set. It is used both as the (silent) transfer
// function of the fixpoint and as the (reporting) final replay.
func (pc *poolChecker) processBlock(blk *cfgBlock, st poolStates, report bool) {
	for _, n := range blk.nodes {
		if as, ok := n.(*ast.AssignStmt); ok {
			if v, isAcq := pc.acquires[as]; isAcq {
				// Classify the call's own subexpressions first (the
				// receiver chain may mention other tracked vars), then
				// grant ownership.
				pc.classify(as.Rhs[0], st, report)
				st[v] = poolOwned
				continue
			}
		}
		pc.classify(n, st, report)
		if ret, ok := n.(*ast.ReturnStmt); ok && report {
			if !pc.isErrorReturn(ret) {
				pc.checkLeaks(st)
			}
		}
	}
}

// classify walks one block node and updates the state of every tracked
// variable it mentions according to how the mention uses it.
func (pc *poolChecker) classify(n ast.Node, st poolStates, report bool) {
	info := pc.pass.TypesInfo
	inspectWithStack(n, func(node ast.Node, stack []ast.Node) bool {
		if lit, ok := node.(*ast.FuncLit); ok {
			pc.classifyCapture(lit, stack, st, report)
			return false
		}
		id, ok := node.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		if _, tracked := st[v]; !tracked {
			if _, acq := pc.acquirePos[v]; !acq {
				return true
			}
			// Mention of a tracked var on a path where it was never
			// acquired (e.g. before the acquire in an earlier block
			// ordering artifact): treat as untracked here.
			return true
		}
		pc.classifyIdent(id, stack, v, st, report)
		return true
	})
}

// classifyCapture handles a function literal that closes over tracked
// variables: under a `go` statement that is the goroutine-escape hazard;
// anywhere else it is an ownership hand-off (e.g. a deferred Put).
func (pc *poolChecker) classifyCapture(lit *ast.FuncLit, stack []ast.Node, st poolStates, report bool) {
	underGo := false
	for _, anc := range stack {
		if _, ok := anc.(*ast.GoStmt); ok {
			underGo = true
			break
		}
	}
	info := pc.pass.TypesInfo
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		if _, tracked := st[v]; !tracked {
			return true
		}
		if underGo {
			if report && !pc.reported["go:"+v.Name()] {
				pc.reported["go:"+v.Name()] = true
				pc.pass.Reportf(id.Pos(),
					"pooled buffer %s captured by goroutine closure: the pool may reuse it while the goroutine still holds it",
					v.Name())
			}
		}
		st[v] |= poolTransferred
		return true
	})
}

// classifyIdent updates state for one direct mention of a tracked var.
func (pc *poolChecker) classifyIdent(id *ast.Ident, stack []ast.Node, v *types.Var, st poolStates, report bool) {
	// stack ends with id itself; parent is the node above it.
	var parent ast.Node
	if len(stack) >= 2 {
		parent = stack[len(stack)-2]
	}
	underGo := false
	for _, anc := range stack {
		if _, ok := anc.(*ast.GoStmt); ok {
			underGo = true
		}
	}

	switch p := parent.(type) {
	case *ast.CallExpr:
		isArg := false
		for _, a := range p.Args {
			if a == id {
				isArg = true
				break
			}
		}
		if !isArg {
			// The ident is (part of) the callee expression; treated by
			// the SelectorExpr case when it is a receiver.
			return
		}
		if underGo {
			if report && !pc.reported["go:"+v.Name()] {
				pc.reported["go:"+v.Name()] = true
				pc.pass.Reportf(id.Pos(),
					"pooled buffer %s passed to a goroutine: the pool may reuse it while the goroutine still holds it",
					v.Name())
			}
			st[v] |= poolTransferred
			return
		}
		if pc.isReleaseCall(p) {
			if underDefer(stack) {
				// A deferred Put runs at function exit on every path:
				// ownership is satisfied, and uses between here and the
				// exit are still legal.
				st[v] |= poolTransferred
				return
			}
			if report && st[v] == poolReleased && !pc.reported["dbl:"+posKey(pc.pass, id.Pos())] {
				pc.reported["dbl:"+posKey(pc.pass, id.Pos())] = true
				pc.pass.Reportf(id.Pos(), "pooled buffer %s returned to the pool twice", v.Name())
			}
			st[v] = poolReleased
			return
		}
		pc.reportUseAfterPut(id, v, st, report)
		st[v] |= poolTransferred

	case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr:
		st[v] |= poolTransferred

	case *ast.UnaryExpr:
		if p.Op == token.AND {
			st[v] |= poolTransferred
		} else {
			pc.reportUseAfterPut(id, v, st, report)
		}

	case *ast.SendStmt:
		if p.Value == id {
			st[v] |= poolTransferred
		} else {
			pc.reportUseAfterPut(id, v, st, report)
		}

	case *ast.AssignStmt:
		onLHS := false
		for _, l := range p.Lhs {
			if l == id {
				onLHS = true
				break
			}
		}
		if onLHS {
			// Overwritten: whatever it pointed at is out of this
			// function's hands.
			delete(st, v)
			return
		}
		// RHS alias (y := x) or field store (s.f = x): a hand-off.
		st[v] |= poolTransferred

	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr, *ast.BinaryExpr,
		*ast.SliceExpr, *ast.TypeAssertExpr, *ast.RangeStmt, *ast.ExprStmt,
		*ast.CaseClause, *ast.IncDecStmt:
		pc.reportUseAfterPut(id, v, st, report)

	default:
		// Unknown context: assume a hand-off so unfamiliar shapes never
		// produce a false leak.
		st[v] |= poolTransferred
	}
}

func underDefer(stack []ast.Node) bool {
	for _, anc := range stack {
		if _, ok := anc.(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}

func (pc *poolChecker) reportUseAfterPut(id *ast.Ident, v *types.Var, st poolStates, report bool) {
	if report && st[v] == poolReleased && !pc.reported["uap:"+posKey(pc.pass, id.Pos())] {
		pc.reported["uap:"+posKey(pc.pass, id.Pos())] = true
		pc.pass.Reportf(id.Pos(), "use of pooled buffer %s after it was returned to the pool", v.Name())
	}
}

// checkLeaks reports every variable that is exactly Owned (never released,
// never handed off on this path) at a success exit. One report per acquire
// site, at the acquire.
func (pc *poolChecker) checkLeaks(st poolStates) {
	for v, s := range st {
		if s != poolOwned {
			continue
		}
		pos := pc.acquirePos[v]
		key := "leak:" + posKey(pc.pass, pos)
		if pc.reported[key] {
			continue
		}
		pc.reported[key] = true
		pc.pass.Reportf(pos,
			"pooled buffer %s is never returned: every non-error path must Put it back or hand it off",
			v.Name())
	}
}

// isErrorReturn reports whether ret leaves the function with a non-nil
// error. Error paths are exempt from the leak check: the pipeline contract
// deliberately lets error-path buffers fall to the GC (DESIGN.md). Bare
// returns with named results and `return f()` forwards are treated as
// error returns — the safe, quiet direction.
func (pc *poolChecker) isErrorReturn(ret *ast.ReturnStmt) bool {
	if pc.sig == nil {
		return true
	}
	res := pc.sig.Results()
	var errIdx []int
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			errIdx = append(errIdx, i)
		}
	}
	if len(errIdx) == 0 {
		return false
	}
	if len(ret.Results) != res.Len() {
		return true
	}
	for _, i := range errIdx {
		id, ok := ast.Unparen(ret.Results[i]).(*ast.Ident)
		if !ok || id.Name != "nil" {
			return true
		}
	}
	return false
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errorType)
}

func posKey(pass *Pass, pos token.Pos) string {
	return pass.Fset.Position(pos).String()
}
