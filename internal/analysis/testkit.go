package analysis

import (
	"fmt"
	"go/token"
	"regexp"
	"strings"
)

// TB is the subset of *testing.T the fixture harness needs; keeping the
// dependency behind an interface keeps "testing" out of the production
// import graph.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// wantRe extracts the patterns of a want comment; each may be double- or
// back-quoted, in analysistest style: // want "re" `re`.
var wantRe = regexp.MustCompile("`([^`]*)`" + `|"((?:[^"\\]|\\.)*)"`)

// RunFixture is this module's analysistest.Run: it loads the fixture
// package in dir, applies one analyzer, honors //rfvet:allow suppression,
// and compares the surviving diagnostics against the fixture's
// `// want "regexp"` comments — every diagnostic must match a want on its
// line, and every want must be consumed. Fixture directories live under
// testdata, so the go tool never builds them, but they must type-check:
// the loader resolves their imports (including rfprotect/... ones) from
// source.
func RunFixture(t TB, dir string, a *Analyzer) {
	t.Helper()
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	if pkg == nil {
		t.Fatalf("no Go files in fixture %s", dir)
	}
	diags, err := Run([]*Analyzer{a}, []*Package{pkg})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}

	type wantKey struct {
		file string
		line int
	}
	wants := map[wantKey][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				i := strings.Index(text, "want ")
				if i < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := wantKey{file: pos.Filename, line: pos.Line}
				for _, m := range wantRe.FindAllStringSubmatch(text[i:], -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", posString(pos), pat, err)
					}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}

	for _, d := range diags {
		key := wantKey{file: d.Pos.Filename, line: d.Pos.Line}
		matched := false
		for i, re := range wants[key] {
			if re.MatchString(d.Message) {
				wants[key] = append(wants[key][:i], wants[key][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", key.file, key.line, re)
		}
	}
}

// posString renders a token.Position without the column.
func posString(pos token.Position) string {
	return fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
}
