package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// matchFile reports whether the compiler would include name when building
// the package in dir on this host: filename suffixes (_amd64.go, _linux.go)
// and //go:build constraints both apply. Without this, per-arch variants
// (e.g. the radar beamforming AVX declarations and their !amd64 stubs)
// would redeclare symbols inside one loaded package.
func matchFile(dir, name string) bool {
	ok, err := build.Default.MatchFile(dir, name)
	return err == nil && ok
}

// Package is one parsed and type-checked package of the analyzed module.
type Package struct {
	Path       string // import path ("rfprotect/internal/scene")
	Dir        string
	ModulePath string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Loader parses and type-checks packages of one module from source, with
// no network and no GOPATH: intra-module import paths map onto the module
// directory, and everything else (the standard library) is type-checked
// from GOROOT source by the stdlib "source" importer. This is the piece
// golang.org/x/tools/go/packages would normally provide; reimplementing
// the narrow slice rfvet needs keeps the module dependency-free.
//
// Test files are not loaded: every rfvet invariant exempts _test.go by
// design (tests may pin wall-clock behavior, synthesize contexts, and
// spawn scaffolding goroutines freely).
type Loader struct {
	ModuleDir  string
	ModulePath string
	Fset       *token.FileSet

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader rooted at the module containing dir: it walks
// up from dir to the nearest go.mod and reads the module path from it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			modPath = strings.Trim(strings.TrimSpace(rest), `"`)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleDir:  root,
		ModulePath: modPath,
		Fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// LoadPattern resolves a package pattern relative to the module root:
// "./..." (or "all") loads every package under the module; any other
// argument is a directory loaded as a single package. Returned packages
// are sorted by import path.
func (l *Loader) LoadPattern(pattern string) ([]*Package, error) {
	if pattern == "./..." || pattern == "..." || pattern == "all" {
		return l.loadAll()
	}
	dir := pattern
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(l.ModuleDir, dir)
	}
	pkg, err := l.LoadDir(dir)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return []*Package{pkg}, nil
}

// loadAll walks the module for package directories, skipping testdata,
// vendor, hidden directories, and nested modules.
func (l *Loader) loadAll() ([]*Package, error) {
	dirs, err := l.PackageDirs()
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// PackageDirs returns every package directory of the module in sorted
// order — the same set "./..." resolves to — without parsing anything.
// The allocfree pass uses it to name build targets.
func (l *Loader) PackageDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleDir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleDir {
			if name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir // nested module
			}
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// importPathFor maps a directory inside the module to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleDir, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("%s is outside module %s", dir, l.ModuleDir)
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// hasGoFiles reports whether dir contains at least one non-test Go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") && matchFile(dir, name) {
			return true
		}
	}
	return false
}

// LoadDir parses and type-checks the package in dir (nil if the directory
// holds only test files). Results are cached by import path, so a package
// reached both directly and as a dependency is checked once.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	return l.load(path, dir)
}

// Import implements types.Importer: module-local paths are loaded from the
// module directory; anything else defers to the GOROOT source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.load(path, filepath.Join(l.ModuleDir, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("no Go files in package %s", path)
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// load does the parse + type-check for one package, memoized.
func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if !matchFile(dir, name) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		l.pkgs[path] = nil
		return nil, nil
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		limit := typeErrs
		if len(limit) > 5 {
			limit = limit[:5]
		}
		msgs := make([]string, len(limit))
		for i, e := range limit {
			msgs[i] = e.Error()
		}
		return nil, fmt.Errorf("type errors in %s:\n  %s", path, strings.Join(msgs, "\n  "))
	}
	if err != nil {
		return nil, err
	}
	pkg := &Package{
		Path:       path,
		Dir:        dir,
		ModulePath: l.ModulePath,
		Fset:       l.Fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}
