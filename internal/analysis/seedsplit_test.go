package analysis_test

import (
	"testing"

	"rfprotect/internal/analysis"
)

func TestSeedSplitFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata/src/seedsplit", analysis.SeedSplit)
}
