// Package analysis is rfvet's engine: a small, self-contained clone of the
// golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass, Diagnostic)
// built entirely on the standard library's go/ast + go/types, because this
// module is dependency-free by policy (DESIGN.md "Concurrency model") and
// the build environment is offline. The API mirrors x/tools deliberately,
// so the analyzers would port to a real multichecker by changing imports.
//
// The package hosts four repo-specific analyzers that turn this codebase's
// load-bearing conventions into compile-time gates:
//
//   - seedsplit: randomness must be reproducible for any worker count —
//     no global math/rand source, no ad-hoc seed arithmetic in place of
//     parallel.SplitSeed.
//   - ctxflow: a function that receives a context must thread it, and
//     must not synthesize context.Background()/TODO() outside main
//     packages, tests, and annotated legacy wrappers.
//   - goroleak: every `go` statement in a library package must have a
//     visible join (WaitGroup/Group Wait, channel receive or range) in
//     the function that spawned it.
//   - wallclock: no wall-clock reads (time.Now, time.Sleep, ...) in
//     deterministic library code.
//
// Any diagnostic can be suppressed at the source line with an escape
// hatch comment — see allow.go for the grammar.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one named invariant check, in the image of
// x/tools' analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //rfvet:allow comments. It must be a single lower-case word.
	Name string

	// Doc is the one-paragraph description printed by `rfvet -help`.
	Doc string

	// Run applies the analyzer to one package and reports findings
	// through the pass. It returns an error only for internal failures;
	// invariant violations are diagnostics, not errors.
	Run func(*Pass) error
}

// All returns the full rfvet suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{SeedSplit, CtxFlow, GoroLeak, WallClock}
}

// Diagnostic is one reported violation, positioned in the loaded FileSet.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the file:line:col style go vet uses.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one type-checked package, in the
// image of x/tools' analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// ModulePath is the analyzed module's path (e.g. "rfprotect"), so
	// analyzers can distinguish first-party callees from the stdlib.
	ModulePath string

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsMain reports whether the analyzed package is a command (package main).
// The analyzers exempt commands from determinism rules: main wires flags,
// signal handlers, and wall-clock UX; the library underneath stays pure.
func (p *Pass) IsMain() bool { return p.Pkg.Name() == "main" }

// Run applies every analyzer to every package, drops diagnostics the
// source suppresses with //rfvet:allow comments, and returns the rest
// sorted by position then analyzer name. It is the engine behind both
// cmd/rfvet and the analysistest harness.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allow := collectAllows(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			var raw []Diagnostic
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.Info,
				ModulePath: pkg.ModulePath,
				diags:      &raw,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range raw {
				if !allow.allows(a.Name, d.Pos) {
					diags = append(diags, d)
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
