// Package analysis is rfvet's engine: a small, self-contained clone of the
// golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass, Diagnostic)
// built entirely on the standard library's go/ast + go/types, because this
// module is dependency-free by policy (DESIGN.md "Concurrency model") and
// the build environment is offline. The API mirrors x/tools deliberately,
// so the analyzers would port to a real multichecker by changing imports.
//
// The package hosts four repo-specific analyzers that turn this codebase's
// load-bearing conventions into compile-time gates:
//
//   - seedsplit: randomness must be reproducible for any worker count —
//     no global math/rand source, no ad-hoc seed arithmetic in place of
//     parallel.SplitSeed.
//   - ctxflow: a function that receives a context must thread it, and
//     must not synthesize context.Background()/TODO() outside main
//     packages, tests, and annotated legacy wrappers.
//   - goroleak: every `go` statement in a library package must have a
//     visible join (WaitGroup/Group Wait, channel receive or range) in
//     the function that spawned it.
//   - wallclock: no wall-clock reads (time.Now, time.Sleep, ...) in
//     deterministic library code.
//   - poolcheck: pooled buffers (FramePool/ProfilePool/... Get, the
//     pipeline Item list) must reach Put on every non-error path or be
//     handed off; no use-after-Put; no capture by goroutine closures.
//   - lockorder: //rfvet:lockrank-annotated mutexes must be acquired in
//     strictly increasing rank order, including through same-package
//     calls (the shard → room → trkMu hierarchy, checked like lockdep).
//   - saturate: in packages defining finiteOrHuge, exported float64
//     results must be saturated through it.
//
// An eighth check, allocfree (escape.go), is not a Pass-based analyzer: it
// drives `go build -gcflags=-m` and fails when a //rfvet:allocfree-
// annotated function has a heap-escape diagnostic. cmd/rfvet runs it
// behind the -allocfree flag.
//
// Any diagnostic can be suppressed at the source line with an escape
// hatch comment — see allow.go for the grammar.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one named invariant check, in the image of
// x/tools' analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //rfvet:allow comments. It must be a single lower-case word.
	Name string

	// Doc is the one-paragraph description printed by `rfvet -help`.
	Doc string

	// Run applies the analyzer to one package and reports findings
	// through the pass. It returns an error only for internal failures;
	// invariant violations are diagnostics, not errors.
	Run func(*Pass) error
}

// All returns the full rfvet AST-analyzer suite in stable order. The
// allocfree escape-analysis pass is separate (see AllocFree): it needs the
// compiler, not a Pass.
func All() []*Analyzer {
	return []*Analyzer{SeedSplit, CtxFlow, GoroLeak, WallClock, PoolCheck, LockOrder, Saturate}
}

// Diagnostic is one reported violation, positioned in the loaded FileSet.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string

	// Allowed marks a diagnostic that an //rfvet:allow comment
	// suppresses. Such diagnostics are dropped from normal runs and do
	// not affect exit codes; Options.IncludeAllowed keeps them (for the
	// -json audit trail) with AllowedBy naming the suppressing comment.
	Allowed   bool
	AllowedBy string
}

// String renders the diagnostic in the file:line:col style go vet uses.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Options tunes a Run beyond the analyzer list.
type Options struct {
	// RequireJustification reports any //rfvet:allow comment missing the
	// "-- justification" clause (make lint sets this: an exemption
	// without a recorded reason is unreviewable).
	RequireJustification bool

	// IncludeAllowed keeps suppressed diagnostics in the result, marked
	// Allowed with AllowedBy set, instead of dropping them.
	IncludeAllowed bool
}

// Pass carries one analyzer's view of one type-checked package, in the
// image of x/tools' analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// ModulePath is the analyzed module's path (e.g. "rfprotect"), so
	// analyzers can distinguish first-party callees from the stdlib.
	ModulePath string

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsMain reports whether the analyzed package is a command (package main).
// The analyzers exempt commands from determinism rules: main wires flags,
// signal handlers, and wall-clock UX; the library underneath stays pure.
func (p *Pass) IsMain() bool { return p.Pkg.Name() == "main" }

// Run applies every analyzer to every package, drops diagnostics the
// source suppresses with //rfvet:allow comments, and returns the rest
// sorted by position then analyzer name. It is the engine behind both
// cmd/rfvet and the analysistest harness.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	return RunWith(Options{}, analyzers, pkgs)
}

// RunWith is Run with explicit options.
func RunWith(opts Options, analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allow, issues := collectAllows(pkg.Fset, pkg.Files)
		for _, is := range issues {
			switch is.kind {
			case "bare":
				diags = append(diags, Diagnostic{
					Pos:      is.pos,
					Analyzer: allowAnalyzerName,
					Message:  "bare " + allowMarker + " names no analyzer and suppresses nothing: list the analyzers (or \"all\")",
				})
			case "nojust":
				if opts.RequireJustification {
					diags = append(diags, Diagnostic{
						Pos:      is.pos,
						Analyzer: allowAnalyzerName,
						Message:  allowMarker + " without a \"-- justification\" clause: record why the exemption is sound",
					})
				}
			}
		}
		for _, a := range analyzers {
			var raw []Diagnostic
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.Info,
				ModulePath: pkg.ModulePath,
				diags:      &raw,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range raw {
				if e := allow.find(a.Name, d.Pos); e != nil {
					if opts.IncludeAllowed {
						d.Allowed = true
						d.AllowedBy = e.pos.String() + ": " + e.justification
						diags = append(diags, d)
					}
					continue
				}
				diags = append(diags, d)
			}
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

// sortDiagnostics orders by file, line, column, then analyzer name.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
