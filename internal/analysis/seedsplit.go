package analysis

import (
	"go/ast"
	"go/types"
)

// SeedSplit enforces the deterministic-randomness contract of DESIGN.md
// ("Concurrency model"): results must be bit-identical for any worker
// count, which randomized code guarantees only when every independent unit
// of work derives its own stream with parallel.SplitSeed.
//
// Three rules:
//
//  1. No global math/rand source. rand.Intn, rand.Float64, rand.Shuffle
//     and friends draw from a process-wide stream whose consumption order
//     depends on goroutine scheduling — and on every other caller in the
//     binary. All randomness must flow through an explicit *rand.Rand.
//  2. No ad-hoc seed arithmetic. rand.NewSource(seed+1), NewSource(seed*7)
//     and the like put adjacent streams a handful of increments apart in
//     seed space and invite collisions between call sites that picked the
//     same offset; stream derivation must go through parallel.SplitSeed,
//     whose SplitMix64 finalizer is the one blessed mixing function.
//  3. A worker closure (a func literal handed to a go statement or passed
//     as a call argument, e.g. to parallel.Group.GoCtx or ForEach) that
//     constructs a source must derive it via parallel.SplitSeed: a
//     captured base seed — split or not — decides which stream each
//     concurrent unit owns, and only SplitSeed keys it on the unit index.
var SeedSplit = &Analyzer{
	Name: "seedsplit",
	Doc: "flags global math/rand use and ad-hoc seed arithmetic that bypasses " +
		"parallel.SplitSeed, the invariant behind worker-count-independent output",
	Run: runSeedSplit,
}

// globalRandFuncs are the math/rand package-level functions that consume
// the shared global source (rand.New/NewSource/NewZipf construct state and
// are fine).
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

func runSeedSplit(p *Pass) error {
	for _, f := range p.Files {
		workers := workerFuncLits(f)
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "math/rand" {
				return true
			}
			if globalRandFuncs[fn.Name()] && funcSig(fn).Recv() == nil {
				p.Reportf(call.Pos(),
					"rand.%s draws from the global math/rand source, whose stream depends on scheduling; use an explicit rand.New(rand.NewSource(...)) seeded via parallel.SplitSeed",
					fn.Name())
				return true
			}
			if !isPkgFunc(fn, "math/rand", "NewSource") || len(call.Args) != 1 {
				return true
			}
			arg := ast.Unparen(call.Args[0])
			switch {
			// Commands are exempt from the closure rule (but not from the
			// global-source and seed-arithmetic rules): cmd/bench wraps
			// single-threaded measurement sections in func literals, which
			// are not concurrent units.
			case !p.IsMain() && inWorkerLit(stack, workers) && !isSplitSeedCall(p.TypesInfo, arg):
				p.Reportf(call.Pos(),
					"rand.NewSource in a worker closure must derive its stream with parallel.SplitSeed(base, i) so each concurrent unit owns a schedule-independent stream")
			case hasSeedArithmetic(p.TypesInfo, arg):
				p.Reportf(call.Pos(),
					"ad-hoc seed arithmetic in rand.NewSource; derive the stream with parallel.SplitSeed(base, k) instead of a hand-picked offset")
			}
			return true
		})
	}
	return nil
}

// workerFuncLits collects the func literals that run as concurrent or
// callee-controlled units: operands of go statements and literals passed
// directly as call arguments (parallel.Group.Go/GoCtx, ForEach bodies).
func workerFuncLits(f *ast.File) map[*ast.FuncLit]bool {
	set := map[*ast.FuncLit]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				set[lit] = true
			}
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					set[lit] = true
				}
			}
		}
		return true
	})
	return set
}

// inWorkerLit reports whether the node at the top of the stack sits inside
// one of the worker literals.
func inWorkerLit(stack []ast.Node, workers map[*ast.FuncLit]bool) bool {
	for _, n := range stack {
		if lit, ok := n.(*ast.FuncLit); ok && workers[lit] {
			return true
		}
	}
	return false
}

// isSplitSeedCall reports whether e is a call to a SplitSeed function of a
// parallel package (rfprotect/internal/parallel in this module; matched by
// suffix so fixtures of other modules can supply their own).
func isSplitSeedCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(info, call)
	return fn != nil && fn.Name() == "SplitSeed" && fn.Pkg() != nil &&
		pathEndsWith(fn.Pkg().Path(), "parallel")
}

// hasSeedArithmetic reports whether e contains a binary arithmetic
// expression outside any parallel.SplitSeed call (whose arguments are free
// to mix — SplitSeed("seed+200", trial) namespaces a stream family).
func hasSeedArithmetic(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isSplitSeedCall(info, call) {
			return false
		}
		if _, ok := n.(*ast.BinaryExpr); ok {
			found = true
			return false
		}
		return true
	})
	return found
}

// pathEndsWith reports whether the import path's final element is elem.
func pathEndsWith(path, elem string) bool {
	if path == elem {
		return true
	}
	n := len(path) - len(elem)
	return n > 0 && path[n-1] == '/' && path[n:] == elem
}
