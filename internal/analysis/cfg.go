package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the light intraprocedural control-flow machinery shared by
// the path-sensitive analyzers (poolcheck, lockorder). It deliberately
// stops far short of SSA: blocks hold the AST nodes evaluated on that
// straight-line segment (simple statements plus the header expressions of
// compound statements), edges model the branch structure, and a small
// generic worklist driver runs a forward may-analysis to fixpoint. That is
// exactly enough to ask "does every path from this checkout reach a Put?"
// and "which locks are held at this acquisition?" without importing
// golang.org/x/tools/go/ssa, which the dependency-free module bans.

// cfgBlock is one straight-line segment of a function body.
type cfgBlock struct {
	// nodes are the AST nodes evaluated on this segment in order: simple
	// statements (assignments, calls, sends, defers, go statements,
	// returns) and the header expressions of compound statements (an if
	// condition, a switch tag, a range operand). Nested block structure
	// never appears here — it lives in successor blocks.
	nodes []ast.Node
	succs []*cfgBlock

	// retStmt is set when the block ends in an explicit return. The
	// virtual exit block of a function that can fall off its end is a
	// successor with retStmt == nil.
	retStmt *ast.ReturnStmt
	// panics is set when the block ends in a call that never returns
	// (panic); such blocks have no successors and exempt their path from
	// exit-time checks — an abnormal unwind is neither an error return nor
	// a success return.
	panics bool
}

// funcCFG is the control-flow graph of one function body.
type funcCFG struct {
	entry  *cfgBlock
	exit   *cfgBlock // virtual: every return and the fall-off-end reach it
	blocks []*cfgBlock
	// unanalyzable is set when the body uses control flow the builder does
	// not model (goto); path-sensitive analyzers skip such functions
	// rather than report from a wrong graph.
	unanalyzable bool
}

// cfgBuilder incrementally assembles a funcCFG.
type cfgBuilder struct {
	g    *funcCFG
	cur  *cfgBlock
	info *types.Info // may be nil; resolves the panic builtin
	// branch targets for break/continue, innermost last. A nil cont marks
	// a switch/select scope (break only).
	scopes []branchScope
}

type branchScope struct {
	label string
	brk   *cfgBlock
	cont  *cfgBlock
}

// buildCFG builds the graph for one function body. info may be nil; with
// type information, calls to the panic builtin terminate their block.
func buildCFG(body *ast.BlockStmt, info *types.Info) *funcCFG {
	g := &funcCFG{}
	b := &cfgBuilder{g: g}
	g.entry = b.newBlock()
	g.exit = &cfgBlock{}
	b.cur = g.entry
	b.info = info
	b.stmtList(body.List)
	if b.cur != nil {
		b.link(b.cur, g.exit) // fall off the end
	}
	g.blocks = append(g.blocks, g.exit)
	return g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) link(from, to *cfgBlock) {
	from.succs = append(from.succs, to)
}

// emit appends a node to the current block, starting a fresh unreachable
// block if control already left (code after return).
func (b *cfgBuilder) emit(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock() // unreachable code; keep it walkable
	}
	b.cur.nodes = append(b.cur.nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// isPanicCall reports whether the statement is a call to the predeclared
// panic builtin (resolved through type info when available, by name
// otherwise).
func (b *cfgBuilder) isPanicCall(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	if b.info != nil {
		if _, isBuiltin := b.info.Uses[id].(*types.Builtin); isBuiltin {
			return true
		}
		return false
	}
	return true
}

func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.ReturnStmt:
		b.emit(s)
		if b.cur != nil {
			b.cur.retStmt = s
			b.link(b.cur, b.g.exit)
			b.cur = nil
		}

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := b.findBreak(labelName(s)); t != nil {
				b.link(b.curOrNew(), t)
			} else {
				b.g.unanalyzable = true
			}
			b.cur = nil
		case token.CONTINUE:
			if t := b.findContinue(labelName(s)); t != nil {
				b.link(b.curOrNew(), t)
			} else {
				b.g.unanalyzable = true
			}
			b.cur = nil
		case token.GOTO:
			b.g.unanalyzable = true
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled structurally by the switch builder (each clause body
			// already links to the next on fallthrough); nothing to emit.
		}

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		b.emit(s.Cond)
		head := b.cur
		after := b.newBlock()
		then := b.newBlock()
		b.link(head, then)
		b.cur = then
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.link(b.cur, after)
		}
		if s.Else != nil {
			els := b.newBlock()
			b.link(head, els)
			b.cur = els
			b.stmt(s.Else, "")
			if b.cur != nil {
				b.link(b.cur, after)
			}
		} else {
			b.link(head, after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		post := head
		if s.Post != nil {
			post = b.newBlock()
		}
		b.link(b.curOrNew(), head)
		if s.Cond != nil {
			head.nodes = append(head.nodes, s.Cond)
			b.link(head, after)
		}
		b.link(head, body)
		b.scopes = append(b.scopes, branchScope{label: label, brk: after, cont: post})
		b.cur = body
		b.stmtList(s.Body.List)
		b.scopes = b.scopes[:len(b.scopes)-1]
		if b.cur != nil {
			b.link(b.cur, post)
		}
		if s.Post != nil {
			post.nodes = append(post.nodes, s.Post)
			b.link(post, head)
		}
		b.cur = after

	case *ast.RangeStmt:
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.emit(s.X)
		b.link(b.curOrNew(), head)
		// The per-iteration key/value rebinding is not modeled as a node:
		// emitting the whole RangeStmt would drag the loop body into the
		// head block. The operand (s.X) above is what analyzers care about.
		b.link(head, body)
		b.link(head, after)
		b.scopes = append(b.scopes, branchScope{label: label, brk: after, cont: head})
		b.cur = body
		b.stmtList(s.Body.List)
		b.scopes = b.scopes[:len(b.scopes)-1]
		if b.cur != nil {
			b.link(b.cur, head)
		}
		b.cur = after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		b.switchLike(s, label)

	case *ast.DeferStmt, *ast.GoStmt, *ast.AssignStmt, *ast.ExprStmt,
		*ast.SendStmt, *ast.IncDecStmt, *ast.DeclStmt, *ast.EmptyStmt:
		if b.isPanicCall(s) {
			b.emit(s)
			if b.cur != nil {
				b.cur.panics = true
			}
			b.cur = nil
			return
		}
		b.emit(s)

	default:
		// Unmodeled statement kind: give up on path sensitivity.
		b.g.unanalyzable = true
		b.emit(s)
	}
}

// switchLike builds switch, type-switch, and select statements: a header
// block fans out to one block per clause, every clause body links to the
// after block, and fallthrough links a clause to the next clause's body.
func (b *cfgBuilder) switchLike(s ast.Stmt, label string) {
	var init ast.Stmt
	var header []ast.Node
	var clauses []ast.Stmt
	hasDefault := false
	isSelect := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		init = s.Init
		if s.Tag != nil {
			header = append(header, s.Tag)
		}
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		init = s.Init
		header = append(header, s.Assign)
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
		isSelect = true
	}
	if init != nil {
		b.stmt(init, "")
	}
	for _, n := range header {
		b.emit(n)
	}
	head := b.curOrNew()
	after := b.newBlock()
	b.scopes = append(b.scopes, branchScope{label: label, brk: after})

	bodies := make([]*cfgBlock, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock()
	}
	for i, c := range clauses {
		blk := bodies[i]
		b.link(head, blk)
		var list []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				blk.nodes = append(blk.nodes, e)
			}
			list = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				b.cur = blk
				b.stmt(c.Comm, "")
				blk = b.curOrNew()
			}
			list = c.Body
		}
		b.cur = blk
		fallsThrough := false
		for _, st := range list {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
			}
			b.stmt(st, "")
		}
		if fallsThrough && i+1 < len(bodies) {
			b.link(b.curOrNew(), bodies[i+1])
			b.cur = nil
		}
		if b.cur != nil {
			b.link(b.cur, after)
		}
	}
	// A switch without a default can skip every clause, so the header
	// reaches the after block directly. A select without a default only
	// leaves through a clause (it blocks otherwise), so no such edge — an
	// invented skip path would manufacture false "leak" reports in
	// poolcheck for selects that hand a buffer to every case.
	if !isSelect && (!hasDefault || len(clauses) == 0) {
		b.link(head, after)
	}
	b.scopes = b.scopes[:len(b.scopes)-1]
	b.cur = after
}

func (b *cfgBuilder) curOrNew() *cfgBlock {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func labelName(s *ast.BranchStmt) string {
	if s.Label == nil {
		return ""
	}
	return s.Label.Name
}

func (b *cfgBuilder) findBreak(label string) *cfgBlock {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		sc := b.scopes[i]
		if label == "" || sc.label == label {
			return sc.brk
		}
	}
	return nil
}

func (b *cfgBuilder) findContinue(label string) *cfgBlock {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		sc := b.scopes[i]
		if sc.cont != nil && (label == "" || sc.label == label) {
			return sc.cont
		}
	}
	return nil
}

// dataflow runs a forward may-analysis over the graph to fixpoint and
// returns the state at entry to each block. transfer must not mutate its
// input; it returns the state after executing the block. merge joins the
// states of two incoming edges; equal bounds the iteration.
func dataflow[S any](g *funcCFG, entry S, transfer func(*cfgBlock, S) S, merge func(S, S) S, equal func(S, S) bool) map[*cfgBlock]S {
	in := map[*cfgBlock]S{g.entry: entry}
	work := []*cfgBlock{g.entry}
	seen := map[*cfgBlock]bool{g.entry: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		seen[blk] = false
		out := transfer(blk, in[blk])
		for _, succ := range blk.succs {
			cur, ok := in[succ]
			var next S
			if !ok {
				next = out
			} else {
				next = merge(cur, out)
			}
			if !ok || !equal(cur, next) {
				in[succ] = next
				if !seen[succ] {
					seen[succ] = true
					work = append(work, succ)
				}
			}
		}
	}
	return in
}

// funcsOf yields every function body in the file — declarations and
// literals — paired with the node that owns it. Literals nested inside a
// function are yielded separately; CFG construction never descends into
// them, so each body is analyzed exactly once, as its own unit.
func funcsOf(f *ast.File, visit func(node ast.Node, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				visit(n, n.Body)
			}
		case *ast.FuncLit:
			visit(n, n.Body)
		}
		return true
	})
}
