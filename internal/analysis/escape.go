package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// This file is the allocfree pass: the eighth rfvet check, and the one
// that is not an AST analyzer. Functions on the zero-alloc hot path carry
// a
//
//	//rfvet:allocfree
//
// doc-comment annotation; the pass runs `go build -gcflags=-m` over the
// packages that contain one and fails if the compiler reports a heap
// escape ("escapes to heap" / "moved to heap") inside an annotated
// function's body. That turns the benchmark-only zero-alloc gate
// (make benchdiff's exact allocs/op rows) into a compile-time one: the
// escape is caught at the line that introduced it, before any benchmark
// runs.
//
// Two diagnostic classes are excluded on purpose:
//   - "leaking param" / "does not escape" lines are facts, not
//     allocations;
//   - escapes on a line that calls panic are the panic argument being
//     boxed — the panic path is not the steady-state path the contract
//     protects.
//
// `go build` replays compiler diagnostics from the build cache on
// identical inputs, so repeated runs stay cheap and need no cache-busting.

// allocfreeMarker annotates a function that must compile without heap
// escapes in its body.
const allocfreeMarker = "//rfvet:allocfree"

// AllocFreeAnalyzerName is the analyzer tag on allocfree diagnostics.
const AllocFreeAnalyzerName = "allocfree"

// annotatedFunc is one //rfvet:allocfree function found by the parse scan.
type annotatedFunc struct {
	file       string // absolute path
	name       string
	from, to   int          // body line range, inclusive
	panicLines map[int]bool // lines whose escapes are panic-argument boxing
}

// AllocFree resolves patterns exactly like Vet (loaders rooted at each
// pattern's base, shared per module), scans the matched packages for
// //rfvet:allocfree annotations, and checks them against the compiler's
// escape analysis. A failed build is an error (load error, exit 2 in
// cmd/rfvet), not a diagnostic.
func AllocFree(opts Options, dir string, patterns []string) ([]Diagnostic, error) {
	byModule, err := resolvePatternDirs(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	var funcs []annotatedFunc
	var escapes []compilerEscape
	allFiles := map[string][]*ast.File{} // package dir -> parsed files
	var moduleDirs []string
	for md := range byModule {
		moduleDirs = append(moduleDirs, md)
	}
	sort.Strings(moduleDirs)
	for _, moduleDir := range moduleDirs {
		var buildDirs []string
		for _, pd := range byModule[moduleDir] {
			files, fns, err := scanAllocfree(fset, pd)
			if err != nil {
				return nil, err
			}
			if len(fns) == 0 {
				continue
			}
			funcs = append(funcs, fns...)
			buildDirs = append(buildDirs, pd)
			allFiles[pd] = files
		}
		if len(buildDirs) == 0 {
			continue
		}
		esc, err := compilerEscapes(moduleDir, buildDirs)
		if err != nil {
			return nil, err
		}
		escapes = append(escapes, esc...)
	}
	if len(funcs) == 0 {
		return nil, nil
	}

	var diags []Diagnostic
	seen := map[string]bool{}
	for _, e := range escapes {
		for i := range funcs {
			fn := &funcs[i]
			if e.file != fn.file || e.line < fn.from || e.line > fn.to {
				continue
			}
			if fn.panicLines[e.line] {
				continue
			}
			key := fmt.Sprintf("%s:%d:%d:%s", e.file, e.line, e.col, e.msg)
			if seen[key] {
				continue
			}
			seen[key] = true
			diags = append(diags, Diagnostic{
				Pos:      token.Position{Filename: e.file, Line: e.line, Column: e.col},
				Analyzer: AllocFreeAnalyzerName,
				Message:  fmt.Sprintf("%s in %s, which is annotated %s: the hot path must not allocate", e.msg, fn.name, allocfreeMarker),
			})
			break
		}
	}

	// Apply the same //rfvet:allow machinery the AST analyzers use.
	var kept []Diagnostic
	allow, _ := collectAllowsAll(fset, allFiles)
	for _, d := range diags {
		if e := allow.find(AllocFreeAnalyzerName, d.Pos); e != nil {
			if opts.IncludeAllowed {
				d.Allowed = true
				d.AllowedBy = e.pos.String() + ": " + e.justification
				kept = append(kept, d)
			}
			continue
		}
		kept = append(kept, d)
	}
	sortDiagnostics(kept)
	return kept, nil
}

// collectAllowsAll merges the allow sets of several packages' files.
func collectAllowsAll(fset *token.FileSet, byDir map[string][]*ast.File) (allowSet, []allowIssue) {
	merged := allowSet{}
	var issues []allowIssue
	for _, files := range byDir {
		set, is := collectAllows(fset, files)
		for file, entries := range set {
			merged[file] = append(merged[file], entries...)
		}
		issues = append(issues, is...)
	}
	return merged, issues
}

// resolvePatternDirs maps Vet's pattern grammar onto package directories,
// grouped by the module that owns them (each module gets its own `go
// build` invocation). Loaders are rooted at each pattern's base, exactly
// like Vet, so a pattern pointing into a nested fixture module resolves
// against that module.
func resolvePatternDirs(dir string, patterns []string) (map[string][]string, error) {
	out := map[string][]string{}
	seen := map[string]bool{}
	add := func(moduleDir, d string) {
		if !seen[d] {
			seen[d] = true
			out[moduleDir] = append(out[moduleDir], d)
		}
	}
	loaders := map[string]*Loader{}
	loaderFor := func(base string) (*Loader, error) {
		l, err := NewLoader(base)
		if err != nil {
			return nil, err
		}
		if shared, ok := loaders[l.ModuleDir]; ok {
			return shared, nil
		}
		loaders[l.ModuleDir] = l
		return l, nil
	}
	for _, pattern := range patterns {
		base, recursive := strings.CutSuffix(pattern, "/...")
		if pattern == "..." {
			base, recursive = ".", true
		}
		if base == "" || base == "." {
			base = dir
		} else if !filepath.IsAbs(base) {
			base = filepath.Join(dir, base)
		}
		absBase, err := filepath.Abs(base)
		if err != nil {
			return nil, err
		}
		loader, err := loaderFor(absBase)
		if err != nil {
			return nil, fmt.Errorf("pattern %q: %w", pattern, err)
		}
		if !recursive {
			if !hasGoFiles(absBase) {
				return nil, fmt.Errorf("pattern %q: no Go files in %s", pattern, absBase)
			}
			add(loader.ModuleDir, absBase)
			continue
		}
		all, err := loader.PackageDirs()
		if err != nil {
			return nil, fmt.Errorf("pattern %q: %w", pattern, err)
		}
		matched := 0
		for _, d := range all {
			if d == absBase || strings.HasPrefix(d, absBase+string(filepath.Separator)) {
				add(loader.ModuleDir, d)
				matched++
			}
		}
		if matched == 0 {
			return nil, fmt.Errorf("pattern %q: no packages under %s", pattern, absBase)
		}
	}
	return out, nil
}

// scanAllocfree parses one package directory (comments on, no type check —
// the compiler itself is the checker here) and returns the parsed files
// plus its annotated functions.
func scanAllocfree(fset *token.FileSet, dir string) ([]*ast.File, []annotatedFunc, error) {
	entries, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	var fns []annotatedFunc
	for _, path := range entries {
		name := filepath.Base(path)
		if strings.HasSuffix(name, "_test.go") || !matchFile(dir, name) {
			continue
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasAllocfreeMarker(fd.Doc) {
				continue
			}
			fn := annotatedFunc{
				file:       path,
				name:       fd.Name.Name,
				from:       fset.Position(fd.Body.Pos()).Line,
				to:         fset.Position(fd.Body.End()).Line,
				panicLines: map[int]bool{},
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
					for l := fset.Position(call.Pos()).Line; l <= fset.Position(call.End()).Line; l++ {
						fn.panicLines[l] = true
					}
				}
				return true
			})
			fns = append(fns, fn)
		}
	}
	return files, fns, nil
}

func hasAllocfreeMarker(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == allocfreeMarker || strings.HasPrefix(text, allocfreeMarker+" ") {
			return true
		}
	}
	return false
}

// compilerEscape is one parsed `-gcflags=-m` heap-escape line.
type compilerEscape struct {
	file string // absolute
	line int
	col  int
	msg  string
}

// compilerEscapes builds the named package directories with -gcflags=-m
// and returns the heap-escape diagnostics. The -gcflags value applies only
// to packages named on the command line, so dependencies build silently.
func compilerEscapes(moduleDir string, pkgDirs []string) ([]compilerEscape, error) {
	args := []string{"build", "-gcflags=-m"}
	for _, d := range pkgDirs {
		rel, err := filepath.Rel(moduleDir, d)
		if err != nil {
			return nil, err
		}
		args = append(args, "./"+filepath.ToSlash(rel))
	}
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	out, err := cmd.CombinedOutput()
	if err != nil {
		// -m diagnostics go to stderr even on success; with a real
		// compile error the output explains it.
		return nil, fmt.Errorf("go build -gcflags=-m failed: %v\n%s", err, out)
	}
	var escapes []compilerEscape
	for _, raw := range strings.Split(string(out), "\n") {
		lineText := strings.TrimSpace(raw)
		if !strings.Contains(lineText, "escapes to heap") && !strings.Contains(lineText, "moved to heap") {
			continue
		}
		// Format: path/file.go:line:col: message
		parts := strings.SplitN(lineText, ":", 4)
		if len(parts) != 4 {
			continue
		}
		ln, err1 := strconv.Atoi(parts[1])
		col, err2 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil {
			continue
		}
		file := parts[0]
		if !filepath.IsAbs(file) {
			file = filepath.Join(moduleDir, file)
		}
		escapes = append(escapes, compilerEscape{
			file: file,
			line: ln,
			col:  col,
			msg:  strings.TrimSpace(parts[3]),
		})
	}
	return escapes, nil
}
