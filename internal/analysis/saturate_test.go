package analysis_test

import (
	"testing"

	"rfprotect/internal/analysis"
)

func TestSaturateFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata/src/saturate", analysis.Saturate)
}
