package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces the cancellation contract threaded through the stack in
// PR 3 (CHANGES.md): once a context enters a call chain it must flow to
// the leaves, and library code must never invent a fresh root context.
//
// Three rules:
//
//  1. A function that receives a context must not synthesize
//     context.Background() or context.TODO(): the received ctx (or a
//     context derived from it) is the only root in scope.
//  2. A function that receives a context must not call the context-free
//     variant of a first-party API whose *Ctx sibling exists (Capture vs
//     CaptureCtx, ForEach vs ForEachCtx, ...): calling the bare variant
//     silently detaches the subtree from cancellation.
//  3. Outside package main and tests, context.Background()/TODO() is
//     forbidden everywhere: roots are created at the edges (main, signal
//     handlers) and passed down. Legacy compatibility wrappers carry an
//     explicit //rfvet:allow ctxflow annotation (experiments.Run is the
//     canonical one).
//
// Passing a nil ctx while holding a real one is flagged for the same
// reason as rule 2: this module's nil-context idiom means "never cancel",
// which is exactly what a function that was handed a ctx must not assume.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "requires received contexts to be threaded to every *Ctx-capable callee " +
		"and forbids synthesizing context.Background()/TODO() in library code",
	Run: runCtxFlow,
}

func runCtxFlow(p *Pass) error {
	for _, f := range p.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.TypesInfo, call)
			if fn == nil {
				return true
			}
			holdsCtx := ctxInScope(p.TypesInfo, stack)

			// Rules 1 and 3: synthesized roots.
			if isPkgFunc(fn, "context", "Background") || isPkgFunc(fn, "context", "TODO") {
				switch {
				case holdsCtx:
					p.Reportf(call.Pos(),
						"context.%s synthesized in a function that already receives a ctx; thread the received context instead",
						fn.Name())
				case !p.IsMain():
					p.Reportf(call.Pos(),
						"context.%s in library code; accept a ctx parameter from the caller (or annotate a legacy wrapper with //rfvet:allow ctxflow)",
						fn.Name())
				}
				return true
			}

			if !holdsCtx {
				return true
			}

			// Rule 2: bare call while a *Ctx sibling exists.
			sig := funcSig(fn)
			if sigContextParam(sig) < 0 && firstParty(fn, p.ModulePath) {
				if sib := ctxSibling(fn); sib != nil {
					p.Reportf(call.Pos(),
						"calls %s while holding a ctx; call %s to keep cancellation flowing",
						fn.Name(), sib.Name())
					return true
				}
			}

			// Nil-ctx handoff: dropping the received ctx on the floor.
			if i := sigContextParam(sig); i >= 0 && i < len(call.Args) {
				if id, ok := ast.Unparen(call.Args[i]).(*ast.Ident); ok && id.Name == "nil" {
					if _, isNil := p.TypesInfo.Uses[id].(*types.Nil); isNil {
						p.Reportf(call.Args[i].Pos(),
							"passes a nil ctx to %s while holding a real one; thread the received context",
							fn.Name())
					}
				}
			}
			return true
		})
	}
	return nil
}

// ctxInScope reports whether any function enclosing the current node —
// declaration or literal — declares a context.Context parameter.
func ctxInScope(info *types.Info, stack []ast.Node) bool {
	for _, n := range stack {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if obj, ok := info.Defs[fn.Name].(*types.Func); ok &&
				sigContextParam(funcSig(obj)) >= 0 {
				return true
			}
		case *ast.FuncLit:
			if sig, ok := info.Types[fn].Type.(*types.Signature); ok &&
				sigContextParam(sig) >= 0 {
				return true
			}
		}
	}
	return false
}

// ctxSibling returns the context-accepting sibling of fn — the function or
// method named fn.Name()+"Ctx" in the same scope — or nil.
func ctxSibling(fn *types.Func) *types.Func {
	name := fn.Name() + "Ctx"
	var obj types.Object
	if recv := funcSig(fn).Recv(); recv != nil {
		obj, _, _ = types.LookupFieldOrMethod(recv.Type(), true, fn.Pkg(), name)
	} else {
		obj = fn.Pkg().Scope().Lookup(name)
	}
	sib, ok := obj.(*types.Func)
	if !ok || sigContextParam(funcSig(sib)) < 0 {
		return nil
	}
	return sib
}
