package analysis_test

import (
	"testing"

	"rfprotect/internal/analysis"
)

func TestPoolCheckFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata/src/poolcheck", analysis.PoolCheck)
}
