package analysis_test

import (
	"go/constant"
	"path/filepath"
	"runtime"
	"sort"
	"testing"

	"rfprotect/internal/analysis"
)

// TestLoaderBuildConstraints proves the loader's go/build.MatchFile
// filtering picks exactly the host-matching file set: the fixture package
// declares the same constants in per-arch variants (filename suffixes) and
// behind a //go:build tag, so any over-loading is a duplicate-declaration
// type error and any under-loading changes the observable constant.
func TestLoaderBuildConstraints(t *testing.T) {
	dir := filepath.Join("testdata", "constraints")
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if pkg == nil {
		t.Fatal("no Go files loaded from the constraints fixture")
	}

	var got []string
	for _, f := range pkg.Files {
		got = append(got, filepath.Base(pkg.Fset.Position(f.Pos()).Filename))
	}
	sort.Strings(got)

	archFile := "arch_other.go"
	wantArch := "other"
	switch runtime.GOARCH {
	case "amd64", "arm64":
		archFile = "arch_" + runtime.GOARCH + ".go"
		wantArch = runtime.GOARCH
	}
	want := []string{archFile, "probe.go"}
	if len(got) != len(want) {
		t.Fatalf("loaded files = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("loaded files = %v, want %v", got, want)
		}
	}

	obj := pkg.Types.Scope().Lookup("hostArch")
	if obj == nil {
		t.Fatal("hostArch not declared in loaded package")
	}
	val := constant.StringVal(obj.(interface{ Val() constant.Value }).Val())
	if val != wantArch {
		t.Errorf("hostArch = %q, want %q", val, wantArch)
	}
}
