package analysis

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
)

// Vet resolves package patterns against dir (typically the working
// directory of cmd/rfvet), loads and type-checks the matched packages, and
// runs the analyzers over them. Supported patterns: "./..." for every
// package of the enclosing module, "<path>/..." for every package of the
// module containing <path> that lives under it, and a plain directory for
// a single package. Loaders are shared per module, so a whole-repo run
// type-checks each package (and the stdlib) once.
func Vet(dir string, analyzers []*Analyzer, patterns []string) ([]Diagnostic, error) {
	return VetWith(Options{}, dir, analyzers, patterns)
}

// VetWith is Vet with explicit options.
func VetWith(opts Options, dir string, analyzers []*Analyzer, patterns []string) ([]Diagnostic, error) {
	loaders := map[string]*Loader{}
	loaderFor := func(base string) (*Loader, error) {
		l, err := NewLoader(base)
		if err != nil {
			return nil, err
		}
		if shared, ok := loaders[l.ModuleDir]; ok {
			return shared, nil
		}
		loaders[l.ModuleDir] = l
		return l, nil
	}

	seen := map[string]bool{}
	var pkgs []*Package
	add := func(list ...*Package) {
		for _, p := range list {
			if p != nil && !seen[p.Dir] {
				seen[p.Dir] = true
				pkgs = append(pkgs, p)
			}
		}
	}

	for _, pattern := range patterns {
		base, recursive := strings.CutSuffix(pattern, "/...")
		if pattern == "..." {
			base, recursive = ".", true
		}
		if base == "" || base == "." {
			base = dir
		} else if !filepath.IsAbs(base) {
			base = filepath.Join(dir, base)
		}
		loader, err := loaderFor(base)
		if err != nil {
			return nil, fmt.Errorf("pattern %q: %w", pattern, err)
		}
		if !recursive {
			pkg, err := loader.LoadDir(base)
			if err != nil {
				return nil, fmt.Errorf("pattern %q: %w", pattern, err)
			}
			if pkg == nil {
				return nil, fmt.Errorf("pattern %q: no Go files in %s", pattern, base)
			}
			add(pkg)
			continue
		}
		all, err := loader.LoadPattern("./...")
		if err != nil {
			return nil, fmt.Errorf("pattern %q: %w", pattern, err)
		}
		absBase, err := filepath.Abs(base)
		if err != nil {
			return nil, err
		}
		matched := 0
		for _, p := range all {
			if p.Dir == absBase || strings.HasPrefix(p.Dir, absBase+string(filepath.Separator)) {
				add(p)
				matched++
			}
		}
		if matched == 0 {
			return nil, fmt.Errorf("pattern %q: no packages under %s", pattern, absBase)
		}
	}

	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return RunWith(opts, analyzers, pkgs)
}
