package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeak enforces the no-leaked-goroutines contract: library functions
// return only after every goroutine they spawned has been joined (the
// property the pipeline and experiment sweeps advertise as "no goroutine
// outlives the call"). The join must be visible in the spawning function
// itself — a sync.WaitGroup/parallel.Group Wait call, a channel receive,
// or a range over a channel. Structured-concurrency primitives whose whole
// purpose is to carry the join elsewhere (parallel.Group.Go hands it to
// Group.Wait) document themselves with //rfvet:allow goroleak.
//
// Package main and tests are exempt: commands may detach UX helpers for
// the life of the process, and test scaffolding joins through t.Cleanup.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc: "every go statement in a library package needs a visible join " +
		"(Wait call, channel receive, or range over a channel) in the same function",
	Run: runGoroLeak,
}

func runGoroLeak(p *Pass) error {
	if p.IsMain() {
		return nil
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			body := funcBody(n)
			if body == nil {
				return true
			}
			var spawns []*ast.GoStmt
			joined := false
			// Walk this function's own statements: nested literals are
			// separate units (they are visited by the outer Inspect), and a
			// join inside a spawned goroutine is not a join by the spawner.
			ast.Inspect(body, func(m ast.Node) bool {
				if m != body && funcBody(m) != nil {
					return false
				}
				switch m := m.(type) {
				case *ast.GoStmt:
					spawns = append(spawns, m)
				case *ast.CallExpr:
					if fn := calleeFunc(p.TypesInfo, m); fn != nil &&
						fn.Name() == "Wait" && funcSig(fn).Recv() != nil {
						joined = true
					}
				case *ast.UnaryExpr:
					if m.Op == token.ARROW {
						joined = true
					}
				case *ast.RangeStmt:
					if tv, ok := p.TypesInfo.Types[m.X]; ok {
						if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
							joined = true
						}
					}
				}
				return true
			})
			if !joined {
				for _, g := range spawns {
					p.Reportf(g.Pos(),
						"goroutine has no visible join in the spawning function (no Wait call, channel receive, or channel range); join it, or annotate //rfvet:allow goroleak where a primitive delegates the join")
				}
			}
			return true
		})
	}
	return nil
}
