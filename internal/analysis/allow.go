package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowMarker introduces an escape-hatch comment. The grammar is
//
//	//rfvet:allow <analyzer> [<analyzer>...] [-- <justification>]
//
// The analyzer list names which checks are suppressed ("all" suppresses
// every analyzer); everything after "--" is a free-form justification and
// is ignored by the machine but required by review convention. Scope:
//
//   - a trailing comment suppresses its own source line;
//   - a comment on its own line also suppresses the line below it;
//   - a comment inside a declaration's doc comment suppresses the whole
//     declaration (the canonical form for functions like PacedSource.Next
//     whose entire body legitimately touches the wall clock).
const allowMarker = "//rfvet:allow"

// lineRange is an inclusive range of lines within one file.
type lineRange struct{ from, to int }

// allowSet indexes the //rfvet:allow comments of one package:
// filename -> analyzer name -> suppressed line ranges.
type allowSet map[string]map[string][]lineRange

// allows reports whether a diagnostic from the named analyzer at pos is
// suppressed.
func (s allowSet) allows(analyzer string, pos token.Position) bool {
	byName := s[pos.Filename]
	for _, name := range []string{analyzer, "all"} {
		for _, r := range byName[name] {
			if pos.Line >= r.from && pos.Line <= r.to {
				return true
			}
		}
	}
	return false
}

// parseAllow extracts the analyzer names from one comment's text, or nil
// if the comment is not an allow marker.
func parseAllow(text string) []string {
	if !strings.HasPrefix(text, allowMarker) {
		return nil
	}
	rest := strings.TrimPrefix(text, allowMarker)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil // e.g. //rfvet:allowother
	}
	if i := strings.Index(rest, "--"); i >= 0 {
		rest = rest[:i]
	}
	return strings.Fields(rest)
}

// collectAllows builds the allowSet for a package's files.
func collectAllows(fset *token.FileSet, files []*ast.File) allowSet {
	set := allowSet{}
	add := func(file string, names []string, r lineRange) {
		byName := set[file]
		if byName == nil {
			byName = map[string][]lineRange{}
			set[file] = byName
		}
		for _, n := range names {
			byName[n] = append(byName[n], r)
		}
	}
	for _, f := range files {
		// Doc comments widen the scope to the whole declaration.
		docRange := map[*ast.CommentGroup]lineRange{}
		for _, decl := range f.Decls {
			var doc *ast.CommentGroup
			switch d := decl.(type) {
			case *ast.FuncDecl:
				doc = d.Doc
			case *ast.GenDecl:
				doc = d.Doc
			}
			if doc != nil {
				docRange[doc] = lineRange{
					from: fset.Position(decl.Pos()).Line,
					to:   fset.Position(decl.End()).Line,
				}
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names := parseAllow(c.Text)
				if names == nil {
					continue
				}
				file := fset.Position(c.Pos()).Filename
				line := fset.Position(c.Pos()).Line
				add(file, names, lineRange{from: line, to: line + 1})
				if r, ok := docRange[cg]; ok {
					add(file, names, r)
				}
			}
		}
	}
	return set
}
