package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowMarker introduces an escape-hatch comment. The grammar is
//
//	//rfvet:allow <analyzer> [<analyzer>...] -- <justification>
//
// The analyzer list names which checks are suppressed ("all" suppresses
// every analyzer); everything after "--" is a free-form justification.
// A marker with no analyzer list is itself a diagnostic (it would
// otherwise parse as suppressing nothing while looking like an exemption),
// and under -require-justification a marker without the "-- reason" clause
// is one too. Scope:
//
//   - a trailing comment suppresses its own source line;
//   - a comment on its own line also suppresses the line below it;
//   - a comment inside a declaration's doc comment suppresses the whole
//     declaration (the canonical form for functions like PacedSource.Next
//     whose entire body legitimately touches the wall clock).
const allowMarker = "//rfvet:allow"

// allowAnalyzerName is the pseudo-analyzer under which problems with the
// allow comments themselves are reported. It is deliberately not
// suppressible: an //rfvet:allow cannot vouch for another //rfvet:allow.
const allowAnalyzerName = "allow"

// lineRange is an inclusive range of lines within one file.
type lineRange struct{ from, to int }

// allowEntry is one (analyzer, range) grant from a single allow comment.
type allowEntry struct {
	name          string
	rng           lineRange
	pos           token.Position // position of the comment itself
	justification string
}

// allowSet indexes the //rfvet:allow comments of one package by filename.
type allowSet map[string][]*allowEntry

// find returns the entry suppressing a diagnostic from the named analyzer
// at pos, or nil.
func (s allowSet) find(analyzer string, pos token.Position) *allowEntry {
	for _, e := range s[pos.Filename] {
		if e.name != analyzer && e.name != "all" {
			continue
		}
		if pos.Line >= e.rng.from && pos.Line <= e.rng.to {
			return e
		}
	}
	return nil
}

// allows reports whether a diagnostic from the named analyzer at pos is
// suppressed.
func (s allowSet) allows(analyzer string, pos token.Position) bool {
	return s.find(analyzer, pos) != nil
}

// allowIssue is a problem with an allow comment itself.
type allowIssue struct {
	pos  token.Position
	kind string // "bare" or "nojust"
}

// parseAllow splits one comment's text into analyzer names and the
// justification clause. ok is false when the comment is not an allow
// marker at all; a marker with no names returns ok true and an empty,
// non-nil names slice.
func parseAllow(text string) (names []string, justification string, ok bool) {
	if !strings.HasPrefix(text, allowMarker) {
		return nil, "", false
	}
	rest := strings.TrimPrefix(text, allowMarker)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, "", false // e.g. //rfvet:allowother
	}
	if i := strings.Index(rest, "--"); i >= 0 {
		justification = strings.TrimSpace(rest[i+2:])
		rest = rest[:i]
	}
	names = strings.Fields(rest)
	if names == nil {
		names = []string{}
	}
	return names, justification, true
}

// collectAllows builds the allowSet for a package's files and reports the
// comments that are malformed as exemptions: a bare marker naming no
// analyzer, and (for -require-justification) a marker with no "-- reason".
func collectAllows(fset *token.FileSet, files []*ast.File) (allowSet, []allowIssue) {
	set := allowSet{}
	var issues []allowIssue
	add := func(file string, names []string, just string, pos token.Position, r lineRange) {
		for _, n := range names {
			set[file] = append(set[file], &allowEntry{name: n, rng: r, pos: pos, justification: just})
		}
	}
	for _, f := range files {
		// Doc comments widen the scope to the whole declaration.
		docRange := map[*ast.CommentGroup]lineRange{}
		for _, decl := range f.Decls {
			var doc *ast.CommentGroup
			switch d := decl.(type) {
			case *ast.FuncDecl:
				doc = d.Doc
			case *ast.GenDecl:
				doc = d.Doc
			}
			if doc != nil {
				docRange[doc] = lineRange{
					from: fset.Position(decl.Pos()).Line,
					to:   fset.Position(decl.End()).Line,
				}
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, just, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				if len(names) == 0 {
					issues = append(issues, allowIssue{pos: pos, kind: "bare"})
					continue
				}
				if just == "" {
					issues = append(issues, allowIssue{pos: pos, kind: "nojust"})
				}
				line := pos.Line
				add(pos.Filename, names, just, pos, lineRange{from: line, to: line + 1})
				if r, ok := docRange[cg]; ok {
					add(pos.Filename, names, just, pos, r)
				}
			}
		}
	}
	return set, issues
}
