package analysis

import (
	"go/ast"
)

// WallClock enforces the no-wall-clock contract behind reproducibility:
// deterministic library code must not read or wait on real time. All
// simulation time is explicit (frame timestamps, pri/frame-rate
// parameters), so time.Now and friends appear only where pacing real
// hardware or humans is the point — pipeline.PacedSource, annotated
// //rfvet:allow wallclock — and in package main (benchmarks, CLI UX) and
// tests, which are exempt.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc: "no time.Now/Sleep/Since/Until/After/Tick/NewTimer/NewTicker in " +
		"deterministic library code; pacing code carries //rfvet:allow wallclock",
	Run: runWallClock,
}

// wallClockFuncs are the time functions that read or wait on the real
// clock. Pure construction and arithmetic (time.Duration, Date, Unix,
// ParseDuration) stay legal.
var wallClockFuncs = map[string]bool{
	"Now": true, "Sleep": true, "Since": true, "Until": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

func runWallClock(p *Pass) error {
	if p.IsMain() {
		return nil
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.TypesInfo, call)
			if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" &&
				wallClockFuncs[fn.Name()] && funcSig(fn).Recv() == nil {
				p.Reportf(call.Pos(),
					"time.%s reads the wall clock in deterministic library code; model time explicitly, or annotate //rfvet:allow wallclock where real-time pacing is the point",
					fn.Name())
			}
			return true
		})
	}
	return nil
}
