package analysis_test

import (
	"testing"

	"rfprotect/internal/analysis"
)

func TestWallClockFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata/src/wallclock", analysis.WallClock)
}
