//go:build rfvetconstraintprobe

package constraints

// probe collides with probe.go: this file may only load under a build tag
// nothing sets, so reaching the type checker at all is a loader bug.
const probe = 1
