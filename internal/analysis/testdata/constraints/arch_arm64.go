package constraints

const hostArch = "arm64"
