package constraints

// hostArch redeclares across every arch variant: loading two at once is a
// type error.
const hostArch = "amd64"
