// Package constraints is the fixture for the loader's go/build.MatchFile
// filtering: per-arch filename suffixes and //go:build lines must select
// exactly the host-matching variant. If the loader ever loads two arch
// variants (or the tag-gated file) together, the duplicate declarations
// below fail the type check — the test cannot pass by accident.
package constraints

const probe = 0

var _ = probe
var _ = hostArch
