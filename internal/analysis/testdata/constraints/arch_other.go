//go:build !amd64 && !arm64

package constraints

const hostArch = "other"
