// Package seedsplit is the golden fixture for the seedsplit analyzer:
// positive cases for the global math/rand source, ad-hoc seed arithmetic,
// and unsplit worker closures; negative cases for SplitSeed-derived
// streams, fixed literal seeds, and an annotated deliberate bypass.
package seedsplit

import (
	"math/rand"
	"sync"

	"rfprotect/internal/parallel"
)

// globalSource draws from the shared process-wide stream.
func globalSource() int {
	return rand.Intn(10) // want `global math/rand source`
}

// arithmetic derives a stream with a hand-picked offset.
func arithmetic(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed + 1)) // want `ad-hoc seed arithmetic`
}

// workers constructs a source in a goroutine closure without splitting:
// both goroutines own the same stream.
func workers(seed int64) int64 {
	var wg sync.WaitGroup
	var sum [2]int64
	wg.Add(2)
	for i := 0; i < 2; i++ {
		go func() {
			defer wg.Done()
			sum[i] = rand.New(rand.NewSource(seed)).Int63() // want `worker closure`
		}()
	}
	wg.Wait()
	return sum[0] + sum[1]
}

// split is the blessed form: each unit keys its stream on (base, i).
func split(seed int64, n int) {
	parallel.ForEach(n, 0, func(i int) {
		_ = rand.New(rand.NewSource(parallel.SplitSeed(seed, i)))
	})
}

// splitFamily namespaces a stream family; arithmetic inside the SplitSeed
// argument list is legal.
func splitFamily(seed int64, i int) *rand.Rand {
	return rand.New(rand.NewSource(parallel.SplitSeed(seed+200, i)))
}

// fixed literal seeds outside worker closures are fine.
func fixed() *rand.Rand {
	return rand.New(rand.NewSource(42))
}

// allowed documents a deliberate offset with the escape hatch.
func allowed(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed + 7)) //rfvet:allow seedsplit -- fixture: deliberate offset
}
