// Package ctxflow is the golden fixture for the ctxflow analyzer:
// synthesized roots with and without a received ctx, bare calls shadowing
// a *Ctx sibling (function and method form), nil-ctx handoffs, and the
// annotated legacy-wrapper pattern.
package ctxflow

import "context"

// Work is the bare variant of a function pair.
func Work() {}

// WorkCtx is Work's context-threading sibling.
func WorkCtx(ctx context.Context) error { return ctx.Err() }

// runner carries the method form of the same pair.
type runner struct{}

func (runner) Step() {}

func (runner) StepCtx(ctx context.Context) error { return ctx.Err() }

// synth holds a ctx and synthesizes a fresh root anyway.
func synth(ctx context.Context) error {
	c := context.TODO() // want `already receives a ctx`
	_ = c
	return WorkCtx(ctx)
}

// bare holds a ctx but calls the context-free variant.
func bare(ctx context.Context) error {
	Work() // want `call WorkCtx`
	return WorkCtx(ctx)
}

// bareMethod is the method-form of bare.
func bareMethod(ctx context.Context, r runner) error {
	r.Step() // want `call StepCtx`
	return r.StepCtx(ctx)
}

// nilHandoff throws the received ctx away.
func nilHandoff(ctx context.Context) error {
	_ = ctx
	return WorkCtx(nil) // want `nil ctx`
}

// closure: a literal inside a ctx-bearing function is in ctx scope.
func closure(ctx context.Context) func() error {
	return func() error {
		return WorkCtx(context.Background()) // want `already receives a ctx`
	}
}

// root synthesizes a root in library code without receiving one.
func root() error {
	return WorkCtx(context.Background()) // want `library code`
}

// legacyRun mirrors experiments.Run: a compatibility wrapper that may
// synthesize a root because it is the documented context-free entry point.
func legacyRun() error {
	return WorkCtx(context.Background()) //rfvet:allow ctxflow -- fixture: legacy wrapper
}

// threaded is fully clean: the ctx flows to every capable callee.
func threaded(ctx context.Context, r runner) error {
	if err := WorkCtx(ctx); err != nil {
		return err
	}
	return r.StepCtx(ctx)
}
