// Package poolcheck is the golden fixture for the poolcheck analyzer:
// positive cases for a leaked checkout, use-after-Put, double Put, and a
// goroutine capture; negative cases for every documented ownership
// transfer point (return, field store, call hand-off, channel send,
// deferred Put) plus the error-path exemption and an annotated deliberate
// leak.
package poolcheck

import "errors"

// Buf is the pooled buffer under test.
type Buf struct{ data []float64 }

// BufPool is a mutex-free fixture free list; the analyzer keys on the
// first-party Get method of a *Pool-named type.
type BufPool struct{ free []*Buf }

// Get checks a buffer out of the pool.
func (p *BufPool) Get() *Buf {
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free = p.free[:n-1]
		return b
	}
	return &Buf{data: make([]float64, 8)}
}

// Put returns a buffer to the pool.
func (p *BufPool) Put(b *Buf) { p.free = append(p.free, b) }

var errFixture = errors.New("fixture")

// Leak checks a buffer out, touches it, and drops it on the floor.
func Leak(p *BufPool) {
	b := p.Get() // want `never returned`
	b.data[0] = 1
}

// LeakBothBranches drops the buffer no matter which branch runs. (A leak
// on only one branch merges to "maybe released" and stays quiet — the
// analyzer reports only certain leaks, by design.)
func LeakBothBranches(p *BufPool, cond bool) {
	b := p.Get() // want `never returned`
	if cond {
		b.data[0] = 1
	} else {
		b.data[1] = 2
	}
}

// UseAfterPut touches the buffer after it went back to the pool.
func UseAfterPut(p *BufPool) float64 {
	b := p.Get()
	p.Put(b)
	return b.data[0] // want `after it was returned`
}

// DoublePut returns the same buffer twice.
func DoublePut(p *BufPool) {
	b := p.Get()
	p.Put(b)
	p.Put(b) // want `returned to the pool twice`
}

// GoCapture leaks the buffer into a goroutine: the pool may hand it to
// another frame while the goroutine still writes it.
func GoCapture(p *BufPool, done chan struct{}) {
	b := p.Get()
	go func() {
		b.data[0] = 1 // want `captured by goroutine`
		close(done)
	}()
	p.Put(b)
}

// AllPaths is clean: both branches converge on the Put.
func AllPaths(p *BufPool, cond bool) {
	b := p.Get()
	if cond {
		b.data[0] = 1
	} else {
		b.data[1] = 2
	}
	p.Put(b)
}

// TransferReturn hands ownership to the caller.
func TransferReturn(p *BufPool) *Buf {
	b := p.Get()
	b.data[0] = 3
	return b
}

// FieldTransfer hands ownership to a longer-lived struct.
type holder struct{ buf *Buf }

func FieldTransfer(p *BufPool, h *holder) {
	b := p.Get()
	h.buf = b
}

// CallHandoff passes the buffer to another function, which owns it now.
func CallHandoff(p *BufPool) {
	b := p.Get()
	sink(b)
}

func sink(*Buf) {}

// SendTransfer hands ownership across a channel.
func SendTransfer(p *BufPool, ch chan *Buf) {
	b := p.Get()
	ch <- b
}

// DeferPut is the canonical acquire/release pairing.
func DeferPut(p *BufPool) {
	b := p.Get()
	defer p.Put(b)
	b.data[0] = 2
}

// ErrorPath may drop the buffer on the error return: the pipeline contract
// deliberately lets error-path buffers fall to the GC.
func ErrorPath(p *BufPool, bad bool) error {
	b := p.Get()
	if bad {
		return errFixture
	}
	p.Put(b)
	return nil
}

// LoopReuse checks out and returns once per iteration.
func LoopReuse(p *BufPool, n int) {
	for i := 0; i < n; i++ {
		b := p.Get()
		b.data[0] = float64(i)
		p.Put(b)
	}
}

// Allowed documents a deliberate leak with the escape hatch.
func Allowed(p *BufPool) {
	b := p.Get() //rfvet:allow poolcheck -- fixture: deliberate leak
	b.data[0] = 3
}
