// Package lockorder is the golden fixture for the lockorder analyzer: a
// three-level //rfvet:lockrank hierarchy with positive cases for a direct
// rank inversion, a self-deadlock, and an inversion reached through a
// same-package call, and negative cases for ordered nesting, sequential
// (release-then-acquire) use, deferred unlocks, and an annotated
// deliberate inversion.
package lockorder

import "sync"

// server mirrors the service shard/room/tracker hierarchy.
type server struct {
	// shard-level state.
	//
	//rfvet:lockrank 10
	mu sync.Mutex

	// room-level state.
	//
	//rfvet:lockrank 20
	roomMu sync.RWMutex

	// tracker leaf: nothing is acquired under it.
	//
	//rfvet:lockrank 30
	trkMu sync.Mutex
}

// Ordered nests in strictly increasing rank: legal.
func (s *server) Ordered() {
	s.mu.Lock()
	s.roomMu.RLock()
	s.trkMu.Lock()
	s.trkMu.Unlock()
	s.roomMu.RUnlock()
	s.mu.Unlock()
}

// Inverted takes the shard lock under the tracker leaf.
func (s *server) Inverted() {
	s.trkMu.Lock()
	s.mu.Lock() // want `lock ranks must strictly increase`
	s.mu.Unlock()
	s.trkMu.Unlock()
}

// SelfLock re-acquires a lock it already holds.
func (s *server) SelfLock() {
	s.mu.Lock()
	s.mu.Lock() // want `self-deadlock`
	s.mu.Unlock()
	s.mu.Unlock()
}

// lockShard acquires the shard mutex; callers holding higher ranks must
// not call it.
func (s *server) lockShard() {
	s.mu.Lock()
	s.mu.Unlock()
}

// CallWhileHeld reaches the inversion through the call graph.
func (s *server) CallWhileHeld() {
	s.trkMu.Lock()
	s.lockShard() // want `inverting the lock hierarchy`
	s.trkMu.Unlock()
}

// Sequential releases before acquiring the lower rank: legal.
func (s *server) Sequential() {
	s.trkMu.Lock()
	s.trkMu.Unlock()
	s.mu.Lock()
	s.mu.Unlock()
}

// DeferUnlock holds the shard lock for the whole body; climbing to the
// leaf under it is the documented direction.
func (s *server) DeferUnlock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.trkMu.Lock()
	s.trkMu.Unlock()
}

// Branches releases on both paths before the lower-rank acquire.
func (s *server) Branches(cond bool) {
	s.roomMu.Lock()
	if cond {
		s.roomMu.Unlock()
	} else {
		s.roomMu.Unlock()
	}
	s.mu.Lock()
	s.mu.Unlock()
}

// Allowed documents a deliberate inversion with the escape hatch.
func (s *server) Allowed() {
	s.roomMu.Lock()
	s.mu.Lock() //rfvet:allow lockorder -- fixture: deliberate inversion
	s.mu.Unlock()
	s.roomMu.Unlock()
}
