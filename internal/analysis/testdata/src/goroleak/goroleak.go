// Package goroleak is the golden fixture for the goroleak analyzer:
// unjoined spawns, the three visible join forms (WaitGroup Wait, channel
// receive, channel range), a join hidden inside the spawned goroutine
// (which does not count), and an annotated deliberate detach.
package goroleak

import "sync"

// leak spawns with no join anywhere in the function.
func leak() {
	go func() {}() // want `no visible join`
}

// joined joins through a WaitGroup in the same function.
func joined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done() }()
	wg.Wait()
}

// channelJoin joins by receiving the goroutine's result.
func channelJoin() int {
	ch := make(chan int)
	go func() { ch <- 1 }()
	return <-ch
}

// rangeJoin joins by draining the goroutine's channel.
func rangeJoin() (n int) {
	ch := make(chan int, 1)
	go func() { ch <- 1; close(ch) }()
	for range ch {
		n++
	}
	return n
}

// innerJoin does not count: the spawned goroutine waits on something, but
// the spawner returns immediately.
func innerJoin(ch chan int) {
	go func() { <-ch }() // want `no visible join`
}

// detach documents a deliberate fire-and-forget.
func detach() {
	go func() {}() //rfvet:allow goroleak -- fixture: deliberate detach
}
