// Package saturate is the golden fixture for the saturate analyzer: it
// defines the finiteOrHuge helper (opting the package into the contract),
// with positive cases for a raw float64 return and a bare named-result
// return, and negative cases for saturated, constant, helper-chained,
// unexported, and annotated functions.
package saturate

import "math"

// finiteOrHuge clamps non-finite scores to +/-MaxFloat64 (fixture copy of
// internal/detect's helper).
func finiteOrHuge(v float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	if math.IsInf(v, 1) {
		return math.MaxFloat64
	}
	if math.IsInf(v, -1) {
		return -math.MaxFloat64
	}
	return v
}

// Raw returns an unsaturated product: a*b overflows to +Inf for large
// inputs.
func Raw(a, b float64) float64 {
	return a * b // want `not routed through finiteOrHuge`
}

// Bare hides the float64 result behind a named return.
func Bare(a float64) (score float64) {
	score = a * 2
	return // want `bare return`
}

// Saturated is the blessed form.
func Saturated(a, b float64) float64 {
	return finiteOrHuge(a * b)
}

// Constant results are finite by construction.
func Constant() float64 {
	return 1.5
}

// Chained trusts another exported same-package function, which this
// analyzer checks on its own.
func Chained(a float64) float64 {
	return Saturated(a, a)
}

// Pair mixes a saturated float64 with a non-float result.
func Pair(a float64) (float64, error) {
	return finiteOrHuge(a), nil
}

// helper is unexported and out of the exported-surface contract.
func helper(a float64) float64 {
	return a * 3
}

// NonFloat results are out of scope.
func NonFloat(n int) int {
	return n * 2
}

// Allowed documents a deliberately raw return.
func Allowed(a float64) float64 {
	return helper(a) //rfvet:allow saturate -- fixture: deliberately raw
}
