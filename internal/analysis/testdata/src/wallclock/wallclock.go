// Package wallclock is the golden fixture for the wallclock analyzer:
// clock reads and waits as positives, duration arithmetic as a negative,
// and a doc-comment annotation covering a whole pacing function.
package wallclock

import "time"

// now reads the clock.
func now() time.Time {
	return time.Now() // want `wall clock`
}

// sleep waits on the clock.
func sleep() {
	time.Sleep(time.Millisecond) // want `wall clock`
}

// ticker builds a clock-driven source.
func ticker() *time.Ticker {
	return time.NewTicker(time.Second) // want `wall clock`
}

// paced models pipeline.PacedSource: real-time pacing is the point, and
// the annotation in the doc comment covers the whole function.
//
//rfvet:allow wallclock -- fixture: real-time pacing is the point
func paced(interval time.Duration) time.Duration {
	t := time.NewTimer(interval)
	start := time.Now()
	<-t.C
	return time.Since(start)
}

// duration is pure arithmetic; no clock involved.
func duration(frameRate float64) time.Duration {
	return time.Duration(float64(time.Second) / frameRate)
}
