package analysis_test

import (
	"testing"

	"rfprotect/internal/analysis"
)

func TestCtxFlowFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata/src/ctxflow", analysis.CtxFlow)
}
