package analysis

import (
	"go/ast"
	"go/types"
)

// Saturate closes PR 8's fuzz-found overshoot class structurally: in a
// package that defines a `finiteOrHuge` saturation helper (internal/detect
// is the one that matters), every exported function or method returning a
// float64 must route that result through finiteOrHuge — directly, through
// another exported (hence itself checked) same-package helper, or by
// returning a compile-time constant. Packages without a finiteOrHuge
// function have not opted into the contract and are skipped.
var Saturate = &Analyzer{
	Name: "saturate",
	Doc: "exported float64 results in packages with a finiteOrHuge helper " +
		"must be saturated through it",
	Run: runSaturate,
}

const saturateHelper = "finiteOrHuge"

func runSaturate(pass *Pass) error {
	if pass.IsMain() || !declaresSaturateHelper(pass.Files) {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			checkSaturatedReturns(pass, fd, funcSig(fn))
		}
	}
	return nil
}

func declaresSaturateHelper(files []*ast.File) bool {
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == saturateHelper {
				return true
			}
		}
	}
	return false
}

func isFloat64(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Float64
}

func checkSaturatedReturns(pass *Pass, fd *ast.FuncDecl, sig *types.Signature) {
	res := sig.Results()
	var floatIdx []int
	for i := 0; i < res.Len(); i++ {
		if isFloat64(res.At(i).Type()) {
			floatIdx = append(floatIdx, i)
		}
	}
	if len(floatIdx) == 0 {
		return
	}
	// Walk only this function's own returns: nested literals have their
	// own signatures and are not part of the exported surface.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if len(ret.Results) == 0 {
			pass.Reportf(ret.Pos(),
				"bare return hides the float64 result of exported %s: return %s(...) explicitly",
				fd.Name.Name, saturateHelper)
			return true
		}
		if len(ret.Results) != res.Len() {
			// `return f()` forwarding a multi-value call: saturated only
			// if f is itself an exported same-package function (checked
			// on its own) or the helper.
			if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok && saturatedCall(pass, call) {
				return true
			}
			pass.Reportf(ret.Results[0].Pos(),
				"float64 result of exported %s is not routed through %s",
				fd.Name.Name, saturateHelper)
			return true
		}
		for _, i := range floatIdx {
			expr := ast.Unparen(ret.Results[i])
			if tv, ok := pass.TypesInfo.Types[expr]; ok && tv.Value != nil {
				continue // compile-time constant: finite by construction
			}
			if call, ok := expr.(*ast.CallExpr); ok && saturatedCall(pass, call) {
				continue
			}
			pass.Reportf(expr.Pos(),
				"float64 result of exported %s is not routed through %s",
				fd.Name.Name, saturateHelper)
		}
		return true
	})
}

// saturatedCall reports whether the call's value is already saturated: a
// direct finiteOrHuge call, or a call to an exported function of the same
// package — which this analyzer checks on its own, so its result is
// transitively saturated.
func saturatedCall(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() != pass.Pkg {
		return false
	}
	return fn.Name() == saturateHelper || fn.Exported()
}
