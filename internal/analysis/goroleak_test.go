package analysis_test

import (
	"testing"

	"rfprotect/internal/analysis"
)

func TestGoroLeakFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata/src/goroleak", analysis.GoroLeak)
}
