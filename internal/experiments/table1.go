package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"rfprotect/internal/geom"
	"rfprotect/internal/metrics"
	"rfprotect/internal/motion"
	"rfprotect/internal/parallel"
)

// Table1Result is the user study of §11.2: judges label shuffled real and
// generated trajectories as real or fake; a Pearson χ² test checks whether
// perception correlates with ground truth (the paper finds it does not:
// χ² = 0.2, p = 0.65).
type Table1Result struct {
	Table metrics.ContingencyTable2x2
	Chi2  float64
	P     float64
	// Judges and per-judge trajectory counts, for the report.
	Judges      int
	PerJudge    int
	Independent bool // p > 0.05: perception independent of ground truth
}

// Table1 simulates the 32-participant study. Each judge scores a trajectory
// with the human-perceivable realism cues (smoothness, speed plausibility,
// straightness — the same features the FID embedding uses), with judge-
// specific thresholds and decision noise. If the cGAN matched the real
// distribution, the cue distributions overlap and judges land at chance.
func Table1(sz Sizes, seed int64) Table1Result {
	tr := TrainedGAN(sz, seed)
	rng := rand.New(rand.NewSource(parallel.SplitSeed(seed, 500)))
	real := motion.Generate(sz.Judges*5+10, parallel.SplitSeed(seed, 501)).Traces
	fake := tr.Sample(sz.Judges*5 + 10)

	res := Table1Result{Judges: sz.Judges, PerJudge: 10}
	for j := 0; j < sz.Judges; j++ {
		// Judge personality: bias toward calling things real (humans extend
		// benefit of the doubt — visible in the paper's 58%/56% perceived-
		// real rates) plus idiosyncratic cue weighting and noise.
		bias := 0.25 + 0.15*rng.NormFloat64()
		wSmooth := 1 + 0.3*rng.NormFloat64()
		wSpeed := 1 + 0.3*rng.NormFloat64()
		noise := 0.9
		judge := func(t geom.Trajectory, isReal bool) {
			score := realismScore(t, wSmooth, wSpeed) + bias + noise*rng.NormFloat64()
			perceivedReal := score > 0
			switch {
			case isReal && perceivedReal:
				res.Table.RealReal++
			case isReal && !perceivedReal:
				res.Table.RealFake++
			case !isReal && perceivedReal:
				res.Table.FakeReal++
			default:
				res.Table.FakeFake++
			}
		}
		// 5 real + 5 fake per judge, shuffled draw.
		for k := 0; k < 5; k++ {
			judge(real[rng.Intn(len(real))], true)
			judge(fake[rng.Intn(len(fake))], false)
		}
	}
	res.Chi2, res.P = res.Table.ChiSquared()
	res.Independent = res.P > 0.05
	return res
}

// realismScore maps perceivable cues to a signed realism score: 0 is the
// decision boundary for an unbiased judge.
func realismScore(t geom.Trajectory, wSmooth, wSpeed float64) float64 {
	f := metrics.Features(t)
	// Penalize jerkiness (mean |turn| far above walking ~0.4 rad) and
	// implausible step lengths (mean step far from ~0.15 m at 5 Hz).
	// Humans eyeball plots: only gross anomalies register (severe jerkiness,
	// clearly implausible step sizes, ruler-straight paths).
	smooth := -wSmooth * math.Max(0, f[3]-1.0)
	speed := -wSpeed * math.Max(0, math.Abs(f[0]-0.15)-0.08) * 3
	straight := -0.5 * math.Max(0, f[9]-0.98) * 10
	return smooth + speed + straight
}

// Print renders the contingency table and test result.
func (r Table1Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Table 1: user study (%d judges x %d trajectories)\n", r.Judges, r.PerJudge)
	fmt.Fprintf(w, "  %-20s %6s %6s\n", "", "Real", "Fake")
	fmt.Fprintf(w, "  %-20s %6d %6d\n", "Perceived as real", r.Table.RealReal, r.Table.FakeReal)
	fmt.Fprintf(w, "  %-20s %6d %6d\n", "Perceived as fake", r.Table.RealFake, r.Table.FakeFake)
	fmt.Fprintf(w, "  chi2 = %.3f, p = %.3f -> perception %s of ground truth\n",
		r.Chi2, r.P, map[bool]string{true: "independent", false: "NOT independent"}[r.Independent])
}
