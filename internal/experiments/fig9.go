package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"

	"rfprotect/internal/dsp"
	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
	"rfprotect/internal/parallel"
	"rfprotect/internal/radar"
	"rfprotect/internal/scene"
)

// Fig9Shape is one radar-localization experiment: a human walks a known
// shape; the radar's detected trajectory is compared against ground truth.
type Fig9Shape struct {
	Name        string
	GroundTruth geom.Trajectory
	Detected    geom.Trajectory
	MedianError float64 // meters
}

// Fig9Result holds the two localization microbenchmarks of §10.1.
type Fig9Result struct {
	Shapes []Fig9Shape
}

// Fig9 runs the FMCW-radar localization microbenchmark in the office
// environment: a single subject walks two different shapes and the radar's
// detected trajectory must hug the ground-truth points.
func Fig9(seed int64) (Fig9Result, error) {
	return Fig9Ctx(nil, seed)
}

// Fig9Ctx is Fig9 with cooperative cancellation: once ctx is done the
// per-shape captures stop and the first ctx error is returned with every
// worker joined. A nil ctx never cancels.
func Fig9Ctx(ctx context.Context, seed int64) (Fig9Result, error) {
	params := fmcw.DefaultParams()
	var res Fig9Result
	shapes := []struct {
		name string
		traj geom.Trajectory
	}{
		{"L-shape", lShape()},
		{"zigzag", zigzag()},
	}
	// The shapes are independent trials with their own seeds, so they run
	// concurrently; each writes its own slot and the slots are appended in
	// shape order afterwards, keeping the report ordering stable.
	results := make([]Fig9Shape, len(shapes))
	g := parallel.NewGroup(0)
	for i, sh := range shapes {
		i, sh := i, sh
		g.GoCtx(ctx, func() error {
			sc := scene.NewScene(scene.OfficeRoom(), params)
			human := scene.NewHuman(sh.traj, params.FrameRate)
			sc.Humans = []*scene.Human{human}
			rng := rand.New(rand.NewSource(parallel.SplitSeed(seed, i)))
			frames, err := sc.CaptureCtx(ctx, 0, len(sh.traj), rng)
			if err != nil {
				return err
			}
			pr := radar.NewProcessor(radar.DefaultConfig())
			detSeq := pr.ProcessFrames(frames, sc.Radar)
			// Per-frame evaluation against the subject's true position at each
			// capture instant (the red ground-truth dots of Fig. 9).
			var detected geom.Trajectory
			var errs []float64
			for fi, dets := range detSeq {
				truth := human.PositionAt(frames[fi+1].Time)
				best, bestD := -1, 1.0
				for di, d := range dets {
					if e := d.Pos.Dist(truth); e < bestD {
						best, bestD = di, e
					}
				}
				if best >= 0 {
					detected = append(detected, dets[best].Pos)
					errs = append(errs, bestD)
				}
			}
			if len(detected) == 0 {
				return fmt.Errorf("fig9: no detections recovered for %s", sh.name)
			}
			results[i] = Fig9Shape{
				Name:        sh.name,
				GroundTruth: sh.traj,
				Detected:    detected,
				MedianError: dsp.Median(errs),
			}
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return res, err
	}
	res.Shapes = results
	return res, nil
}

// lShape walks along a corridor then turns 90°.
func lShape() geom.Trajectory {
	var t geom.Trajectory
	for i := 0; i <= 40; i++ {
		t = append(t, geom.Point{X: 3, Y: 2 + 0.075*float64(i)})
	}
	for i := 1; i <= 40; i++ {
		t = append(t, geom.Point{X: 3 + 0.075*float64(i), Y: 5})
	}
	return t
}

// zigzag sweeps back and forth across the room.
func zigzag() geom.Trajectory {
	var t geom.Trajectory
	for i := 0; i <= 100; i++ {
		f := float64(i) / 100
		t = append(t, geom.Point{
			X: 3 + 4*f,
			Y: 3.5 + 1.2*math.Sin(3*math.Pi*f),
		})
	}
	return t
}

// Print renders the per-shape localization summary.
func (r Fig9Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Fig 9: FMCW radar localization (office)")
	for _, s := range r.Shapes {
		fmt.Fprintf(w, "  %-8s  ground-truth pts %3d  detected pts %3d  median error %.3f m\n",
			s.Name, len(s.GroundTruth), len(s.Detected), s.MedianError)
	}
}
