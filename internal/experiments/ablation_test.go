package experiments

import "testing"

func TestAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("full radar sweeps")
	}
	r, err := Ablation(11)
	if err != nil {
		t.Fatal(err)
	}
	// Removing diffuse multipath must not make localization worse (and
	// typically improves it by several cm; exact margins vary with the
	// small per-run trajectory sample).
	if r.LocErrWithoutSpeckle > r.LocErrWithSpeckle+0.01 {
		t.Fatalf("speckle ablation: %.3f with vs %.3f without", r.LocErrWithSpeckle, r.LocErrWithoutSpeckle)
	}
	if r.DetectionsSSB > r.DetectionsFullHarmonics {
		t.Fatalf("SSB should not add detections: %d vs %d", r.DetectionsSSB, r.DetectionsFullHarmonics)
	}
	if r.MatchedPowerRatio < 0.2 || r.MatchedPowerRatio > 5 {
		t.Fatalf("matched power ratio %v not near 1", r.MatchedPowerRatio)
	}
}
