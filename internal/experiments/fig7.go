package experiments

import (
	"fmt"
	"io"

	"rfprotect/internal/privacy"
)

// Fig7Result holds the mutual-information curves of Fig. 7: I(X;Z) versus
// the phantom probability q, one curve per maximum phantom count M, for a
// home with N = 4 occupants and p = 0.2.
type Fig7Result struct {
	N  int
	P  float64
	Ms []int
	Qs []float64
	// MI[i][j] is I(X;Z) for Ms[i] at Qs[j], in bits.
	MI [][]float64
	// EntropyX is H(X), the q=0 / q=1 asymptote.
	EntropyX float64
}

// Fig7 computes the mutual-information privacy analysis of §7.
func Fig7() Fig7Result {
	res := Fig7Result{
		N:  4,
		P:  0.2,
		Ms: []int{2, 4, 6, 8},
	}
	for i := 0; i <= 20; i++ {
		res.Qs = append(res.Qs, float64(i)/20)
	}
	base := privacy.Model{N: res.N, P: res.P}
	res.EntropyX = base.EntropyX()
	for _, m := range res.Ms {
		model := privacy.Model{N: res.N, P: res.P, M: m}
		res.MI = append(res.MI, model.MISweep(res.Qs))
	}
	return res
}

// MinMI returns the minimum of the curve for Ms[i] and the q at which it
// occurs.
func (r Fig7Result) MinMI(i int) (q, mi float64) {
	mi = r.MI[i][0]
	q = r.Qs[0]
	for j, v := range r.MI[i] {
		if v < mi {
			mi, q = v, r.Qs[j]
		}
	}
	return q, mi
}

// Print renders the curves as columns.
func (r Fig7Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Fig 7: I(X;Z) vs q (N=%d, p=%.2f, H(X)=%.3f bits)\n", r.N, r.P, r.EntropyX)
	fmt.Fprintf(w, "%6s", "q")
	for _, m := range r.Ms {
		fmt.Fprintf(w, "  M=%-5d", m)
	}
	fmt.Fprintln(w)
	for j, q := range r.Qs {
		fmt.Fprintf(w, "%6.2f", q)
		for i := range r.Ms {
			fmt.Fprintf(w, "  %-7.4f", r.MI[i][j])
		}
		fmt.Fprintln(w)
	}
	for i, m := range r.Ms {
		q, mi := r.MinMI(i)
		fmt.Fprintf(w, "M=%d: min I(X;Z) = %.4f bits at q = %.2f\n", m, mi, q)
	}
}
