package experiments

import (
	"bytes"
	"testing"
)

// TestExperimentReportsAreScheduleIndependent runs the cheap concurrent
// experiments twice end to end and requires byte-identical reports: the
// worker pools inside fig9 (parallel shapes), multiradar (parallel radar
// chains), and the frame synthesizer must not leak scheduling order into
// any output.
func TestExperimentReportsAreScheduleIndependent(t *testing.T) {
	for _, name := range []string{"fig9", "fig14", "multiradar"} {
		var a, b bytes.Buffer
		if err := Run(name, Quick(), 1, &a); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := Run(name, Quick(), 1, &b); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.String() != b.String() {
			t.Fatalf("%s report differs between runs:\n--- first\n%s\n--- second\n%s", name, a.String(), b.String())
		}
	}
}
