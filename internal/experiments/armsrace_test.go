package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// The arms-race acceptance bounds: with the fixed seed the naive tag's
// switching-harmonic comb is near-perfectly separable (AUC ≥ 0.9), hardening
// (duty dithering + harmonic suppression) pushes it measurably below that,
// kinematic Doppler-consistency survives both arms, and no human is ever
// flagged. The margins are generous — the assertions pin the statistical
// claim, not the exact sample values.
func TestArmsRaceSeparatesArms(t *testing.T) {
	if testing.Short() {
		t.Skip("full radar captures for three arms")
	}
	r, err := ArmsRace(Quick(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.GhostTracks == 0 || r.HumanTracks == 0 {
		t.Fatalf("missing populations: %d ghost, %d human tracks", r.GhostTracks, r.HumanTracks)
	}

	// Naive tag: the harmonic comb alone separates ghosts from humans.
	if r.HarmonicAUCNaive < 0.9 {
		t.Errorf("naive harmonic AUC = %v, want >= 0.9", r.HarmonicAUCNaive)
	}
	// Hardening measurably degrades the harmonic detector.
	if r.HarmonicAUCHardened > r.HarmonicAUCNaive-0.25 {
		t.Errorf("hardened harmonic AUC = %v vs naive %v, want a >= 0.25 drop",
			r.HarmonicAUCHardened, r.HarmonicAUCNaive)
	}
	// Kinematic consistency is the detector hardening cannot beat: a
	// free-running switch cannot fake coherent Doppler.
	if r.KinematicAUCNaive < 0.9 || r.KinematicAUCHardened < 0.9 {
		t.Errorf("kinematic AUC naive %v / hardened %v, want both >= 0.9",
			r.KinematicAUCNaive, r.KinematicAUCHardened)
	}
	if r.CombinedAUCNaive < 0.9 || r.CombinedAUCHardened < 0.9 {
		t.Errorf("combined AUC naive %v / hardened %v, want both >= 0.9",
			r.CombinedAUCNaive, r.CombinedAUCHardened)
	}

	// Operating point: every naive ghost flagged, no human ever flagged.
	if r.HumansFlagged != 0 {
		t.Errorf("flagged %d of %d human tracks, want 0", r.HumansFlagged, r.HumanTracks)
	}
	if r.NaiveFlagged != r.GhostTracks {
		t.Errorf("flagged %d of %d naive ghosts, want all", r.NaiveFlagged, r.GhostTracks)
	}

	// Replay spoofer: per-chirp sync jitter separates replay phantoms from
	// humans, and the sync-lag probe separates the spoofer (finite shutdown
	// lag) from the passive tag (none).
	if r.ReplayJitterAUC < 0.9 {
		t.Errorf("replay jitter AUC = %v, want >= 0.9", r.ReplayJitterAUC)
	}
	if r.ReplayLag < 0.05 || r.ReplayLag > 0.12 {
		t.Errorf("replay sync lag = %v s, want ~0.08", r.ReplayLag)
	}
	if r.TagLag != 0 {
		t.Errorf("tag sync lag = %v s, want 0 (passive reflector)", r.TagLag)
	}

	var buf bytes.Buffer
	r.Print(&buf)
	for _, want := range []string{"arms race", "harmonic", "kinematic", "replay"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("print output missing %q", want)
		}
	}
}

// The whole experiment is a deterministic function of (Sizes, seed): two
// runs must agree bit-for-bit, or CI flakes and A/B comparisons between
// hardening strategies are meaningless.
func TestArmsRaceDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full arms-race runs")
	}
	a, err := ArmsRace(Quick(), 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ArmsRace(Quick(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("reruns diverge:\n%+v\n%+v", a, b)
	}
}
