package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"rfprotect/internal/core"
	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
	"rfprotect/internal/radar"
	"rfprotect/internal/reflector"
	"rfprotect/internal/scene"
)

// Fig13Result demonstrates legitimate sensing (§11.3): with one real human
// and one injected ghost, an eavesdropper tracks both, while a sensor with
// the tag's disclosure removes the ghost and keeps the human.
type Fig13Result struct {
	EavesdropperTracks int
	HumanTracksKept    int
	GhostTracksRemoved int
	HumanError         float64 // m, kept track vs true human trajectory
	HumanTrajectory    geom.Trajectory
	GhostTrajectory    geom.Trajectory
}

// Fig13 runs the legitimate-sensing scenario in the home environment.
func Fig13(seed int64) (Fig13Result, error) {
	return Fig13Ctx(nil, seed)
}

// Fig13Ctx is Fig13 with cooperative cancellation of the capture; a nil ctx
// never cancels.
func Fig13Ctx(ctx context.Context, seed int64) (Fig13Result, error) {
	var res Fig13Result
	params := fmcw.DefaultParams()
	sess, err := core.NewSession(core.SessionConfig{Room: scene.HomeRoom(), NoMultipath: true})
	if err != nil {
		return res, err
	}
	sc, ctl := sess.Scene, sess.Ctl
	tagCfg := sess.Tag.Config()

	n := 100
	cx := sc.Radar.Position.X
	human := make(geom.Trajectory, n)
	ghost := make(geom.Trajectory, n)
	for i := range human {
		f := float64(i) / float64(n-1)
		human[i] = geom.Point{X: cx - 3 + 1.5*f, Y: 4.5 - 1.5*f}
		ghost[i] = geom.Point{X: cx + 0.4 + 0.8*f, Y: 2.8 + 1.8*f}
	}
	sc.Humans = []*scene.Human{scene.NewHuman(human, params.FrameRate)}
	rec, err := ctl.ProgramForRadar(ghost, sc.Radar, params.FrameRate, 0)
	if err != nil {
		return res, err
	}
	res.HumanTrajectory = human
	res.GhostTrajectory = ghost

	rng := rand.New(rand.NewSource(seed))
	frames, err := sc.CaptureCtx(ctx, 0, n, rng)
	if err != nil {
		return res, err
	}
	pr := radar.NewProcessor(radar.DefaultConfig())
	detSeq := pr.ProcessFrames(frames, sc.Radar)
	tracks := radar.TrackDetections(radar.TrackerConfig{}, detSeq)
	res.EavesdropperTracks = len(tracks)

	legit := core.NewLegitSensor(tagCfg, sc.Radar)
	humans, ghosts := legit.Filter(tracks, []reflector.GhostRecord{rec})
	res.HumanTracksKept = len(humans)
	res.GhostTracksRemoved = len(ghosts)
	if len(humans) > 0 {
		best := humans[0]
		for _, h := range humans {
			if len(h.Points) > len(best.Points) {
				best = h
			}
		}
		// Time-aligned error: each track point vs the human's true position
		// at that instant.
		walker := scene.NewHuman(human, params.FrameRate)
		sum := 0.0
		for _, tp := range best.Points {
			sum += tp.Pos.Dist(walker.PositionAt(tp.Time))
		}
		res.HumanError = sum / float64(len(best.Points))
	}
	return res, nil
}

// Print renders the before/after track counts.
func (r Fig13Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Fig 13: legitimate sensing with disclosure")
	fmt.Fprintf(w, "  eavesdropper sees %d tracks (cannot tell which is fake)\n", r.EavesdropperTracks)
	fmt.Fprintf(w, "  legitimate sensor: %d ghost track(s) removed, %d human track(s) kept\n",
		r.GhostTracksRemoved, r.HumanTracksKept)
	fmt.Fprintf(w, "  kept human track error vs ground truth: %.3f m\n", r.HumanError)
}
