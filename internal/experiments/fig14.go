package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"rfprotect/internal/core"
	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
	"rfprotect/internal/radar"
	"rfprotect/internal/scene"
)

// Fig14Result is the breathing-rate spoofing experiment of §11.4: phase
// traces extracted by the radar for a real breathing human and for the
// tag's phase-shifter ghost, with the estimated rates.
type Fig14Result struct {
	TrueRate   float64 // Hz programmed into both
	HumanRate  float64 // Hz estimated from the human's phase trace
	GhostRate  float64 // Hz estimated from the ghost's phase trace
	HumanPhase []float64
	GhostPhase []float64
	Times      []float64
}

// Fig14 places a static breathing human and a breathing ghost in the home
// environment and extracts both phase signatures.
func Fig14(seed int64) (Fig14Result, error) {
	return Fig14Ctx(nil, seed)
}

// Fig14Ctx is Fig14 with cooperative cancellation of the 25 s capture; a nil
// ctx never cancels.
func Fig14Ctx(ctx context.Context, seed int64) (Fig14Result, error) {
	const rate = 0.25
	const amplitude = 0.005
	res := Fig14Result{TrueRate: rate}
	params := fmcw.DefaultParams()
	sess, err := core.NewSession(core.SessionConfig{Room: scene.HomeRoom(), NoMultipath: true})
	if err != nil {
		return res, err
	}
	sc, ctl := sess.Scene, sess.Ctl
	tagCfg := sess.Tag.Config()

	// Real human, static, breathing.
	humanPos := geom.Point{X: sc.Radar.Position.X - 3, Y: 4}
	h := scene.NewHuman(geom.Trajectory{humanPos}, 1)
	h.Breathing = scene.Breathing{Rate: rate, Amplitude: amplitude}
	sc.Humans = []*scene.Human{h}

	// Ghost via phase shifter.
	const ghostExtra = 2.5
	const ghostAntenna = 4
	duration := 25.0
	if _, err := ctl.ProgramBreathing(ghostAntenna, ghostExtra, rate, amplitude, duration, 0); err != nil {
		return res, err
	}

	rng := rand.New(rand.NewSource(seed))
	nFrames := int(duration * params.FrameRate)
	frames, err := sc.CaptureCtx(ctx, 0, nFrames, rng)
	if err != nil {
		return res, err
	}

	ex := radar.BreathingExtractor{}
	humanDist := sc.Radar.DistanceOf(humanPos)
	times, humanPhase := ex.PhaseSeries(frames, humanDist)
	ghostDist := sc.Radar.DistanceOf(tagCfg.AntennaPosition(ghostAntenna)) + ghostExtra
	_, ghostPhase := ex.PhaseSeries(frames, ghostDist)

	res.Times = times
	res.HumanPhase = humanPhase
	res.GhostPhase = ghostPhase
	res.HumanRate = radar.EstimateRate(humanPhase, params.FrameRate)
	res.GhostRate = radar.EstimateRate(ghostPhase, params.FrameRate)
	return res, nil
}

// Print renders the estimated rates.
func (r Fig14Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Fig 14: breathing-rate spoofing")
	fmt.Fprintf(w, "  programmed rate      %.3f Hz (%.1f breaths/min)\n", r.TrueRate, r.TrueRate*60)
	fmt.Fprintf(w, "  human rate at radar  %.3f Hz\n", r.HumanRate)
	fmt.Fprintf(w, "  ghost rate at radar  %.3f Hz\n", r.GhostRate)
}
