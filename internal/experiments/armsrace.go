package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"

	"rfprotect/internal/core"
	"rfprotect/internal/detect"
	"rfprotect/internal/dsp"
	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
	"rfprotect/internal/metrics"
	"rfprotect/internal/motion"
	"rfprotect/internal/parallel"
	"rfprotect/internal/pipeline"
	"rfprotect/internal/radar"
	"rfprotect/internal/reflector"
	"rfprotect/internal/replayspoof"
	"rfprotect/internal/scene"
)

// The arms race: RF-Protect's evaluation assumes a naive tracker (§12), but
// the spoof-detection literature fields fingerprinting, kinematic, and
// chirp-estimation attacks against exactly this kind of injector. This
// experiment runs internal/detect's adversary suite against three defender
// configurations and reports per-detector ROC/AUC:
//
//   - naive tag: the paper's prototype as-is — the ±2/±3 switching-harmonic
//     comb is exposed;
//   - hardened tag: duty-cycle dithering plus harmonic pre-compensation
//     (reflector.Hardening) — the comb is suppressed, and the experiment
//     measures how much detector power survives;
//   - replay spoofer: the active attacker family the paper compares against,
//     fingerprinted by chirp-entrainment jitter and turn-off sync lag.
//
// Humans walking the same trajectories are the negative class throughout, so
// every AUC row reads "ghost vs human" under one detector. The honest
// headline: hardening kills the harmonic fingerprint, but the kinematic
// Doppler-mismatch detector keeps working, because the tag's free-running
// switch phase hands its ghosts an arbitrary aliased Doppler that no
// controller knob can reconcile with the spoofed trajectory.

// armsraceFrames is the per-capture length of the high-rate arms (0.6 s at
// 500 frames/s).
const armsraceFrames = 300

// armsraceWindow is the sliding Doppler window; 16 frames = 32 ms, inside
// one 40 ms control tick, so the switching tone stays coherent across the
// window (the tag hops frequency at tick boundaries), and enough Doppler
// columns that the probe's exclusion guards (static ridge, fundamental,
// mirror) leave room for the harmonic bands.
const armsraceWindow = 16

// armsraceParams returns the detector-side radar configuration: the default
// prototype sweep observed at a 500 Hz frame rate (a chirp-coherent
// tracker), with the IF rate halved — 256-sample chirps keep the same 15 cm
// bins out to 19 m, plenty for the third harmonic, at half the synthesis
// cost.
func armsraceParams() fmcw.Params {
	p := fmcw.DefaultParams()
	p.SampleRate = 512e3
	p.FrameRate = 500
	return p
}

// ArmsRaceResult is the experiment report.
type ArmsRaceResult struct {
	// Per-detector AUC (ghost positives vs human negatives), before and
	// after tag hardening.
	HarmonicAUCNaive     float64
	HarmonicAUCHardened  float64
	KinematicAUCNaive    float64
	KinematicAUCHardened float64
	CombinedAUCNaive     float64
	CombinedAUCHardened  float64
	// Operating point (detect.DefaultThresholds): flagged counts per class.
	NaiveFlagged    int
	HardenedFlagged int
	HumansFlagged   int
	GhostTracks     int
	HumanTracks     int
	// Median per-class harmonic scores, the hardening delta in raw units.
	HarmonicMedianNaive    float64
	HarmonicMedianHardened float64
	HarmonicMedianHuman    float64
	// Replay-spoofer arm: chirp-entrainment jitter AUC (spoofer phantoms vs
	// humans on matched trajectories) and the radar-off sync-lag estimates.
	ReplayJitterAUC float64
	ReplayLag       float64
	TagLag          float64
}

// armPopulation collects one class's per-track detector scores.
type armPopulation struct {
	harm, kin, susp []float64
	flagged         int
	tracks          int
}

func (p *armPopulation) add(s detect.TrackScore) {
	p.tracks++
	p.harm = append(p.harm, s.Harmonic)
	p.kin = append(p.kin, s.Kinematic)
	p.susp = append(p.susp, s.Suspicion)
	if s.Flagged() {
		p.flagged++
	}
}

// scoreStage feeds each frame's range–Doppler map to the spoof scorer right
// after the tracker has consumed it — the same ordering the service room
// uses under its emit mutex.
type scoreStage struct {
	sc  *detect.TrackScorer
	trk *pipeline.TrackStage
}

func (s *scoreStage) Name() string { return "spoof-score" }

func (s *scoreStage) Process(ctx context.Context, it *pipeline.Item) error {
	if it.RangeDoppler != nil {
		s.sc.Observe(it.RangeDoppler, s.trk.Tracker())
	}
	return nil
}

// armsraceTraj returns the i-th evaluation trajectory in world coordinates:
// a motion-model walk anchored inside the tag's spoofable fan. The same
// trajectory serves the human and both ghost arms of pair i, so the classes
// differ only in how the target is produced.
func armsraceTraj(seed int64, i int, radarPos geom.Point) geom.Trajectory {
	rng := rand.New(rand.NewSource(parallel.SplitSeed(seed, 7000+i)))
	tr := motion.NewGenerator(motion.DefaultConfig(), parallel.SplitSeed(seed, 8000+i)).Trace()
	// 5 samples at the motion model's 5 Hz covers the 0.6 s capture.
	if len(tr) > 5 {
		tr = tr[:5]
	}
	anchor := geom.Point{
		X: radarPos.X + (rng.Float64()-0.5)*1.2,
		Y: 2.5 + rng.Float64()*1.5,
	}
	out := make(geom.Trajectory, len(tr))
	for j, p := range tr {
		out[j] = anchor.Add(p.Sub(tr[0]))
	}
	return out
}

// captureScore runs one capture through the streaming stack — front end,
// sliding-window Doppler, velocity-attaching tracker, spoof scorer — and
// returns the verdict on the capture's dominant track.
func captureScore(ctx context.Context, sc *scene.Scene, rng *rand.Rand) (detect.TrackScore, bool, error) {
	pr := radar.NewProcessor(radar.DefaultConfig())
	trkStage := pipeline.NewTrackWithVelocity(radar.TrackerConfig{KeepVelocityHistory: true}, sc.Radar)
	scorer := detect.NewTrackScorer(detect.Config{}, sc.Radar)
	stages := pipeline.FrontEndStages(pr, sc.Radar)
	stages = append(stages,
		pipeline.NewDoppler(pr, armsraceWindow, 0),
		trkStage,
		&scoreStage{sc: scorer, trk: trkStage},
	)
	pipe := pipeline.New(sc.Stream(0, armsraceFrames, rng), stages...)
	if _, err := pipe.Run(ctx); err != nil {
		return detect.TrackScore{}, false, err
	}
	var best *radar.Track
	for _, t := range trkStage.Tracks() {
		if best == nil || len(t.Points) > len(best.Points) {
			best = t
		}
	}
	if best == nil {
		return detect.TrackScore{}, false, nil
	}
	return scorer.Score(best), true, nil
}

// ghostScene assembles a fresh deployment with the trajectory programmed as
// a tag ghost, hardened or not.
func ghostScene(traj geom.Trajectory, hard reflector.Hardening) (*scene.Scene, error) {
	sess, err := core.NewSession(core.SessionConfig{
		Room:        scene.HomeRoom(),
		Params:      armsraceParams(),
		NoMultipath: true,
		ConfigureTag: func(c *reflector.Config) {
			c.SyncGranularity = 0.04
		},
	})
	if err != nil {
		return nil, err
	}
	sess.Ctl.SetHardening(hard)
	if _, err := sess.Ctl.ProgramForRadar(traj, sess.Scene.Radar, 5, 0); err != nil {
		return nil, err
	}
	return sess.Scene, nil
}

// humanScene assembles the same deployment with a real human walking the
// trajectory (the tag present but idle).
func humanScene(traj geom.Trajectory) (*scene.Scene, error) {
	sess, err := core.NewSession(core.SessionConfig{
		Room:        scene.HomeRoom(),
		Params:      armsraceParams(),
		NoMultipath: true,
		ConfigureTag: func(c *reflector.Config) {
			c.SyncGranularity = 0.04
		},
	})
	if err != nil {
		return nil, err
	}
	sess.Scene.Humans = append(sess.Scene.Humans, scene.NewHuman(traj, 5))
	return sess.Scene, nil
}

// ArmsRace runs the full experiment. See ArmsRaceCtx.
func ArmsRace(sz Sizes, seed int64) (ArmsRaceResult, error) {
	return ArmsRaceCtx(nil, sz, seed)
}

// ArmsRaceCtx runs the detector arms race at the given scale: sz.TrajPerRoom
// trajectory pairs per class. A nil ctx never cancels; a done ctx aborts
// between captures with ctx.Err().
func ArmsRaceCtx(ctx context.Context, sz Sizes, seed int64) (ArmsRaceResult, error) {
	var res ArmsRaceResult
	n := sz.TrajPerRoom
	if n < 1 {
		n = 1
	}
	radarPos := scene.NewScene(scene.HomeRoom(), armsraceParams()).Radar.Position

	hardening := reflector.Hardening{DutyDither: 0.08, HarmonicSuppression: 0.9, Seed: seed}
	var humans, naive, hardened armPopulation
	for i := 0; i < n; i++ {
		if err := ctxErr(ctx); err != nil {
			return res, err
		}
		traj := armsraceTraj(seed, i, radarPos)

		arms := []struct {
			pop   *armPopulation
			build func() (*scene.Scene, error)
		}{
			{&humans, func() (*scene.Scene, error) { return humanScene(traj) }},
			{&naive, func() (*scene.Scene, error) { return ghostScene(traj, reflector.Hardening{}) }},
			{&hardened, func() (*scene.Scene, error) { return ghostScene(traj, hardening) }},
		}
		for a, arm := range arms {
			sc, err := arm.build()
			if err != nil {
				return res, err
			}
			rng := rand.New(rand.NewSource(parallel.SplitSeed(seed, 100*i+a)))
			score, ok, err := captureScore(ctx, sc, rng)
			if err != nil {
				return res, err
			}
			if ok {
				arm.pop.add(score)
			}
		}
	}

	res.GhostTracks = naive.tracks
	res.HumanTracks = humans.tracks
	res.NaiveFlagged = naive.flagged
	res.HardenedFlagged = hardened.flagged
	res.HumansFlagged = humans.flagged
	res.HarmonicAUCNaive = metrics.AUC(naive.harm, humans.harm)
	res.HarmonicAUCHardened = metrics.AUC(hardened.harm, humans.harm)
	res.KinematicAUCNaive = metrics.AUC(naive.kin, humans.kin)
	res.KinematicAUCHardened = metrics.AUC(hardened.kin, humans.kin)
	res.CombinedAUCNaive = metrics.AUC(naive.susp, humans.susp)
	res.CombinedAUCHardened = metrics.AUC(hardened.susp, humans.susp)
	res.HarmonicMedianNaive = medianOf(naive.harm)
	res.HarmonicMedianHardened = medianOf(hardened.harm)
	res.HarmonicMedianHuman = medianOf(humans.harm)

	if err := replayArm(ctx, sz, seed, &res); err != nil {
		return res, err
	}
	return res, nil
}

// replayArm fingerprints the active replay spoofer: JitterScore over
// per-frame phantom ranges (positives) against walking humans (negatives),
// plus the radar-off sync-lag estimates for the spoofer and the passive
// tag.
func replayArm(ctx context.Context, sz Sizes, seed int64, res *ArmsRaceResult) error {
	n := sz.TrajPerRoom
	if n < 1 {
		n = 1
	}
	params := fmcw.DefaultParams()
	const replayFrames = 50

	var pos, neg []float64
	for i := 0; i < n; i++ {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(parallel.SplitSeed(seed, 9000+i)))

		// Positive: a jittering replay phantom.
		scA := scene.NewScene(scene.HomeRoom(), params)
		scA.Multipath = false
		sp := replayspoof.New(geom.Point{X: scA.Radar.Position.X - 0.4, Y: 1.0}, 20e-9, 3)
		// Sweep the delay so the phantom moves (~0.8 m/s) — a static phantom
		// would be cancelled as background clutter before it ever tracked.
		sp.DelayRate = 5.3e-9
		sp.SyncJitter = 2e-9
		sp.SyncJitterSeed = parallel.SplitSeed(seed, 9500+i)
		scA.Sources = []scene.ReturnSource{sp}
		sp.ObserveRadar(0, true)
		if s, ok, err := captureJitter(ctx, scA, replayFrames, rng); err != nil {
			return err
		} else if ok {
			pos = append(pos, s)
		}

		// Negative: a walking human on the matched trajectory (default 20 Hz
		// prototype setup — the replay tell is per-chirp, not frame-rate
		// dependent). Physical scatterers move smoothly at chirp timescales;
		// a replay phantom cannot. The tag's ghosts are synthetic too and
		// carry their own (smaller) stepping artifacts, so the
		// spoofer-vs-tag call is made by the sync-lag probe below, not by
		// jitter.
		traj := armsraceTraj(seed, i, scA.Radar.Position)
		scB := scene.NewScene(scene.HomeRoom(), params)
		scB.Multipath = false
		scB.Humans = append(scB.Humans, scene.NewHuman(traj, 5))
		if s, ok, err := captureJitter(ctx, scB, replayFrames, rng); err != nil {
			return err
		} else if ok {
			neg = append(neg, s)
		}
	}
	res.ReplayJitterAUC = metrics.AUC(pos, neg)

	// The radar-off probe, reduced to a lag estimate (§12 / Kapoor et al.).
	rng := rand.New(rand.NewSource(parallel.SplitSeed(seed, 9999)))
	sp := replayspoof.New(geom.Point{X: 7, Y: 1}, 20e-9, 3)
	sp.ObserveRadar(0, true)
	sp.ObserveRadar(1.0, false)
	const fs, floor = 1000.0, 1e-4
	var spSamples, tagSamples []float64
	for t := 1.0; t < 1.5; t += 1 / fs {
		spSamples = append(spSamples, sp.EmittedPower(t, geom.Point{X: 7.6, Y: 0})+floor*rng.Float64())
		tagSamples = append(tagSamples, floor*rng.Float64())
	}
	res.ReplayLag = detect.EstimateSyncLag(spSamples, fs, 10*floor)
	res.TagLag = detect.EstimateSyncLag(tagSamples, fs, 10*floor)
	return nil
}

// captureJitter captures frames, extracts the per-frame range of the
// dominant moving detection by nearest-neighbor continuity, and reduces the
// series to its chirp-to-chirp jitter score.
func captureJitter(ctx context.Context, sc *scene.Scene, nFrames int, rng *rand.Rand) (float64, bool, error) {
	frames, err := sc.CaptureCtx(ctx, 0, nFrames, rng)
	if err != nil {
		return 0, false, err
	}
	pr := radar.NewProcessor(radar.DefaultConfig())
	var ranges []float64
	last := math.NaN()
	for f, dets := range pr.ProcessFrames(frames, sc.Radar) {
		// The first frame only seeds the background subtraction; its
		// "detections" are unsubtracted clutter and would mis-seed the
		// continuity gate.
		if f == 0 {
			continue
		}
		bestR, bestP, found := 0.0, 0.0, false
		for _, d := range dets {
			if !math.IsNaN(last) && math.Abs(d.Range-last) > 0.8 {
				continue
			}
			if d.Power > bestP {
				bestR, bestP, found = d.Range, d.Power, true
			}
		}
		if found {
			ranges = append(ranges, bestR)
			last = bestR
		}
	}
	if len(ranges) < 8 {
		return 0, false, nil
	}
	return detect.JitterScore(ranges), true, nil
}

// medianOf is a nil-safe median.
func medianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return dsp.Percentile(xs, 50)
}

// Print renders the arms-race report.
func (r ArmsRaceResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Detector arms race: adversary suite vs RF-Protect (AUC, ghost vs human)")
	fmt.Fprintf(w, "  tracks scored: %d ghosts, %d humans per arm\n", r.GhostTracks, r.HumanTracks)
	fmt.Fprintf(w, "  %-22s %12s %12s\n", "detector", "naive tag", "hardened tag")
	fmt.Fprintf(w, "  %-22s %12.3f %12.3f\n", "switching-harmonic", r.HarmonicAUCNaive, r.HarmonicAUCHardened)
	fmt.Fprintf(w, "  %-22s %12.3f %12.3f\n", "kinematic-consistency", r.KinematicAUCNaive, r.KinematicAUCHardened)
	fmt.Fprintf(w, "  %-22s %12.3f %12.3f\n", "combined suspicion", r.CombinedAUCNaive, r.CombinedAUCHardened)
	fmt.Fprintf(w, "  harmonic score medians: naive %.4f, hardened %.4f, human %.4f\n",
		r.HarmonicMedianNaive, r.HarmonicMedianHardened, r.HarmonicMedianHuman)
	fmt.Fprintf(w, "  at default thresholds: flagged %d/%d naive, %d/%d hardened, %d/%d humans\n",
		r.NaiveFlagged, r.GhostTracks, r.HardenedFlagged, r.GhostTracks, r.HumansFlagged, r.HumanTracks)
	fmt.Fprintf(w, "  replay spoofer: jitter AUC %.3f, sync-lag estimate %.3f s (tag: %.3f s)\n",
		r.ReplayJitterAUC, r.ReplayLag, r.TagLag)
	fmt.Fprintln(w, "  reading: hardening suppresses the harmonic comb; the Doppler-mismatch")
	fmt.Fprintln(w, "  kinematic check survives — the free-running switch cannot fake coherent Doppler.")
}
