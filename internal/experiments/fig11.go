package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"rfprotect/internal/dsp"
	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
	"rfprotect/internal/metrics"
	"rfprotect/internal/motion"
	"rfprotect/internal/parallel"
	"rfprotect/internal/scene"
)

// Fig11Env is the spoofing-accuracy result for one environment.
type Fig11Env struct {
	Room   string
	Errors metrics.SpoofErrors
	// Medians (paper: home 5.56 cm / 2.05° / 12.70 cm,
	//          office 10.19 cm / 4.94° / 24.49 cm).
	MedianDistance float64 // meters
	MedianAngle    float64 // degrees
	MedianLocation float64 // meters
	Trajectories   int
}

// Fig11Result is the end-to-end 2-D spoofing accuracy evaluation of §11.1:
// cGAN trajectories spoofed through the tag in the home and office
// environments, errors measured against the generated ground truth.
type Fig11Result struct {
	Envs []Fig11Env
	// RangeResolution is the radar's range bin (15 cm); the paper's headline
	// claim is that median errors sit within roughly one bin.
	RangeResolution float64
}

// Fig11 runs the spoofing-accuracy evaluation with sz.TrajPerRoom
// trajectories per environment.
func Fig11(sz Sizes, seed int64) (Fig11Result, error) {
	return Fig11Ctx(nil, sz, seed)
}

// Fig11Ctx is Fig11 with cooperative cancellation: once ctx is done, no new
// trials start, in-flight captures stop, and the first ctx error is returned
// with every worker joined. A nil ctx never cancels.
func Fig11Ctx(ctx context.Context, sz Sizes, seed int64) (Fig11Result, error) {
	params := fmcw.DefaultParams()
	res := Fig11Result{RangeResolution: params.RangeResolution()}
	tr := TrainedGAN(sz, seed)
	// Paired design: each room sees the same trajectories and anchors, so
	// the home-vs-office difference isolates the environment.
	gens := make([]geom.Trajectory, sz.TrajPerRoom)
	genRng := rand.New(rand.NewSource(parallel.SplitSeed(seed, 100)))
	for i := range gens {
		gens[i] = tr.G.Generate(1, i%motion.NumClasses, genRng)[0]
	}
	for _, room := range []scene.Room{scene.HomeRoom(), scene.OfficeRoom()} {
		room := room
		// Trials are independent: each gets its own RNG stream split from
		// (seed+200, i) — the same stream in both rooms, preserving the
		// paired design — and writes only its own slot. Slots are merged in
		// trial order after the pool drains, so medians, CDFs, and printed
		// output are identical for every worker count.
		trials := make([]metrics.SpoofErrors, sz.TrajPerRoom)
		measured := make([]bool, sz.TrajPerRoom)
		g := parallel.NewGroup(0)
		for i := 0; i < sz.TrajPerRoom; i++ {
			i := i
			g.GoCtx(ctx, func() error {
				rng := rand.New(rand.NewSource(parallel.SplitSeed(seed+200, i)))
				env, err := NewEnv(room, params)
				if err != nil {
					return err
				}
				world := FitGhostTrajectory(gens[i], env, room, rng)
				m, err := env.MeasureGhostCtx(ctx, world, motion.SampleRate, rng)
				if err != nil {
					return err
				}
				if len(m.Measured) < 5 {
					return nil
				}
				trials[i] = metrics.EvaluateSpoof(m.Measured, m.Requested, env.Scene.Radar)
				measured[i] = true
				return nil
			})
		}
		if err := g.Wait(); err != nil {
			return res, err
		}
		envRes := Fig11Env{Room: room.Name}
		for i := range trials {
			if !measured[i] {
				continue
			}
			envRes.Errors.Merge(trials[i])
			envRes.Trajectories++
		}
		envRes.MedianDistance, envRes.MedianAngle, envRes.MedianLocation = envRes.Errors.Medians()
		res.Envs = append(res.Envs, envRes)
	}
	return res, nil
}

// FitGhostTrajectory places a generated trajectory into the environment's
// spoofable region: centered on a random anchor inside the panel's angular
// fan, scaled down if its extent exceeds what the room band can hold, and
// kept beyond the tag (the reflector can only add delay, §5.1).
func FitGhostTrajectory(gen geom.Trajectory, env *Env, room scene.Room, rng *rand.Rand) geom.Trajectory {
	t := gen.Clone()
	// Scale oversized trajectories into a 2.5 m extent.
	if ext := t.RangeOfMotion(); ext > 2.5 {
		t = t.Scale(2.5/ext, t.Centroid())
	}
	// Center on the anchor.
	anchor := env.GhostAnchor(rng, t.RangeOfMotion())
	t = t.Translate(anchor.Sub(t.Centroid()))
	// Keep every point inside the room and beyond the tag's depth.
	minY := env.Tag.Config().Position.Y + 0.8
	out := make(geom.Trajectory, len(t))
	for i, p := range t {
		p = room.Clamp(p, 0.4)
		if p.Y < minY {
			p.Y = minY
		}
		out[i] = p
	}
	return out
}

// CDF returns the empirical CDF of one error population ("distance",
// "angle", "location") for environment i.
func (r Fig11Result) CDF(i int, which string) []dsp.CDFPoint {
	switch which {
	case "distance":
		return dsp.EmpiricalCDF(r.Envs[i].Errors.Distance)
	case "angle":
		return dsp.EmpiricalCDF(r.Envs[i].Errors.Angle)
	case "location":
		return dsp.EmpiricalCDF(r.Envs[i].Errors.Location)
	}
	return nil
}

// Print renders the per-environment medians and CDF deciles.
func (r Fig11Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Fig 11: 2-D spoofing accuracy (range resolution %.2f cm)\n", r.RangeResolution*100)
	for _, e := range r.Envs {
		fmt.Fprintf(w, "  %-6s (%d trajectories, %d points)\n", e.Room, e.Trajectories, len(e.Errors.Distance))
		fmt.Fprintf(w, "    median distance error  %6.2f cm\n", e.MedianDistance*100)
		fmt.Fprintf(w, "    median angle error     %6.2f deg\n", e.MedianAngle)
		fmt.Fprintf(w, "    median location error  %6.2f cm\n", e.MedianLocation*100)
		for _, p := range []float64{50, 80, 90} {
			fmt.Fprintf(w, "    p%.0f: dist %.2f cm, angle %.2f deg, loc %.2f cm\n", p,
				dsp.Percentile(e.Errors.Distance, p)*100,
				dsp.Percentile(e.Errors.Angle, p),
				dsp.Percentile(e.Errors.Location, p)*100)
		}
	}
}
