package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"

	"rfprotect/internal/core"
	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
	"rfprotect/internal/radar"
	"rfprotect/internal/replayspoof"
	"rfprotect/internal/scene"
)

// ProbeResult compares RF-Protect against the replay-spoofer baseline under
// the radar-off probe of Kapoor et al. [27] (§5, §12): the radar abruptly
// stops transmitting and listens. An active replay spoofer keeps emitting
// for its synchronization lag and is caught; RF-Protect's passive reflector
// has nothing to reflect and stays silent.
type ProbeResult struct {
	// Both defenses must actually spoof while the radar is on.
	SpooferGhostSeen bool
	TagGhostSeen     bool
	// Probe outcome during the off window.
	SpooferDetected  bool
	TagDetected      bool
	SpooferPeakPower float64
	TagPeakPower     float64
	NoiseFloor       float64
}

// Probe runs the radar-off detection experiment.
func Probe(seed int64) (ProbeResult, error) {
	return ProbeCtx(nil, seed)
}

// ProbeCtx is Probe with cooperative cancellation of the visibility
// captures; a nil ctx never cancels.
func ProbeCtx(ctx context.Context, seed int64) (ProbeResult, error) {
	var res ProbeResult
	params := fmcw.DefaultParams()
	rng := rand.New(rand.NewSource(seed))

	// --- Scenario A: replay spoofer.
	scA := scene.NewScene(scene.HomeRoom(), params)
	scA.Multipath = false
	sp := replayspoof.New(geom.Point{X: scA.Radar.Position.X - 0.4, Y: 1.0}, 20e-9, 3)
	scA.Sources = []scene.ReturnSource{sp}
	sp.ObserveRadar(0, true)
	seen, err := ghostVisible(ctx, scA, sp.SpoofedDistance(scA.Radar), 0.5, rng)
	if err != nil {
		return res, err
	}
	res.SpooferGhostSeen = seen

	// --- Scenario B: RF-Protect tag.
	sess, err := core.NewSession(core.SessionConfig{Room: scene.HomeRoom(), NoMultipath: true})
	if err != nil {
		return res, err
	}
	scB, ctl := sess.Scene, sess.Ctl
	tagCfg := sess.Tag.Config()
	const extra = 2.5
	if _, err := ctl.ProgramBreathing(2, extra, 0.25, 0.005, 10, 0); err != nil {
		return res, err
	}
	tagGhostDist := scB.Radar.DistanceOf(tagCfg.AntennaPosition(2)) + extra
	seen, err = ghostVisible(ctx, scB, tagGhostDist, 0.5, rng)
	if err != nil {
		return res, err
	}
	res.TagGhostSeen = seen

	// --- The probe: radar off at t = 1.0, listen for 0.5 s at 1 kHz.
	sp.ObserveRadar(1.0, false)
	res.NoiseFloor = 1e-4
	var spSamples, tagSamples []float64
	for t := 1.0; t < 1.5; t += 1e-3 {
		spSamples = append(spSamples, sp.EmittedPower(t, scA.Radar.Position)+res.NoiseFloor*rng.Float64())
		// The passive tag reflects the (absent) radar signal: zero emission.
		tagSamples = append(tagSamples, res.NoiseFloor*rng.Float64())
	}
	thresh := 10 * res.NoiseFloor
	res.SpooferDetected = replayspoof.DetectByProbe(spSamples, thresh)
	res.TagDetected = replayspoof.DetectByProbe(tagSamples, thresh)
	res.SpooferPeakPower = replayspoof.MaxFloat(spSamples)
	res.TagPeakPower = replayspoof.MaxFloat(tagSamples)
	return res, nil
}

// ghostVisible checks that a spoofed reflection shows up within tol meters
// of the expected range in a background-subtracted capture.
func ghostVisible(ctx context.Context, sc *scene.Scene, wantDist, tol float64, rng *rand.Rand) (bool, error) {
	frames, err := sc.CaptureCtx(ctx, 0.2, 10, rng)
	if err != nil {
		return false, err
	}
	pr := radar.NewProcessor(radar.DefaultConfig())
	for _, dets := range pr.ProcessFrames(frames, sc.Radar) {
		for _, d := range dets {
			if math.Abs(d.Range-wantDist) < tol {
				return true, nil
			}
		}
	}
	return false, nil
}

// Print renders the probe comparison.
func (r ProbeResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Radar-off probe: replay spoofer vs RF-Protect")
	fmt.Fprintf(w, "  spoofing works while radar on: replay %v, RF-Protect %v\n",
		r.SpooferGhostSeen, r.TagGhostSeen)
	fmt.Fprintf(w, "  emissions during off window:   replay peak %.3g, RF-Protect peak %.3g (floor %.3g)\n",
		r.SpooferPeakPower, r.TagPeakPower, r.NoiseFloor)
	fmt.Fprintf(w, "  probe verdict: replay spoofer detected=%v, RF-Protect detected=%v\n",
		r.SpooferDetected, r.TagDetected)
}
