// Package experiments reproduces every table and figure of the paper's
// evaluation (§7, §10, §11). Each experiment is a pure function from a
// seed/size configuration to a structured result plus a text rendering that
// prints the same rows or series the paper reports. DESIGN.md carries the
// per-experiment index; EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"context"
	"math/rand"
	"sync"

	"rfprotect/internal/core"
	"rfprotect/internal/dsp"
	"rfprotect/internal/fmcw"
	"rfprotect/internal/gan"
	"rfprotect/internal/geom"
	"rfprotect/internal/motion"
	"rfprotect/internal/radar"
	"rfprotect/internal/reflector"
	"rfprotect/internal/scene"
)

// Sizes controls experiment scale. Full() matches the paper; Quick() keeps
// unit tests fast.
type Sizes struct {
	TrajPerRoom int // spoofed trajectories per environment (paper: 45)
	CorpusSize  int // real-trajectory corpus size (paper: 7000)
	GANSteps    int // cGAN training steps
	GANSamples  int // generated trajectories for FID/user study
	Judges      int // user-study participants (paper: 32)
}

// Full returns the paper-scale configuration.
func Full() Sizes {
	return Sizes{TrajPerRoom: 45, CorpusSize: 4000, GANSteps: 400, GANSamples: 400, Judges: 32}
}

// Quick returns a configuration small enough for unit tests.
func Quick() Sizes {
	return Sizes{TrajPerRoom: 4, CorpusSize: 400, GANSteps: 60, GANSamples: 80, Judges: 8}
}

// Env bundles one evaluated environment: a scene with an eavesdropper radar
// and an RF-Protect tag deployed broadside ~1.2 m in front of it, matching
// §9.3 (radar–reflector separation ≈ 1.2 m).
type Env struct {
	Scene *scene.Scene
	Tag   *reflector.Reflector
	Ctl   *reflector.Controller
}

// NewEnv builds the standard deployment in the given room. It is a thin
// wrapper over core.NewSession — the one shared wiring point for the
// scene→tag→radar stack — kept so experiment code reads in evaluation terms.
func NewEnv(room scene.Room, params fmcw.Params) (*Env, error) {
	s, err := core.NewSession(core.SessionConfig{Room: room, Params: params})
	if err != nil {
		return nil, err
	}
	return &Env{Scene: s.Scene, Tag: s.Tag, Ctl: s.Ctl}, nil
}

// GhostAnchor returns a world anchor inside the panel's spoofable fan for a
// trajectory with the given extent, chosen with rng so trajectories spread
// over the room.
func (e *Env) GhostAnchor(rng *rand.Rand, extent float64) geom.Point {
	cx := e.Scene.Radar.Position.X
	depth := 2.5 + rng.Float64()*1.5
	lateral := (rng.Float64() - 0.5) * 1.2
	_ = extent
	return geom.Point{X: cx + lateral, Y: depth}
}

// sharedTrainer caches one trained cGAN per (sizes, seed) so the many
// experiments that need generated trajectories don't retrain. sharedMu
// serializes the cache because the Run("all") sweep calls TrainedGAN from
// concurrent experiments; the first caller trains while the rest block,
// and training is seeded, so the winner is the same trainer a sequential
// sweep would have built.
var sharedMu sync.Mutex
var sharedTrainer *gan.Trainer
var sharedKey struct {
	steps, corpus int
	seed          int64
}

// TrainedGAN returns a cGAN trained on a fresh synthetic corpus, caching the
// result across experiments in the same process. It is safe for concurrent
// use; the returned trainer's mutating methods (further Train calls,
// Sample) are not, so callers sharing one trainer must serialize those.
func TrainedGAN(sz Sizes, seed int64) *gan.Trainer {
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if sharedTrainer != nil && sharedKey.steps == sz.GANSteps && sharedKey.corpus == sz.CorpusSize && sharedKey.seed == seed {
		return sharedTrainer
	}
	ds := motion.Generate(sz.CorpusSize, seed)
	cfg := gan.DefaultConfig()
	cfg.Seed = seed + 1
	tr := gan.NewTrainer(cfg, ds)
	tr.Train(sz.GANSteps, 0, nil)
	sharedTrainer = tr
	sharedKey.steps, sharedKey.corpus, sharedKey.seed = sz.GANSteps, sz.CorpusSize, seed
	return tr
}

// GhostMeasurement is the outcome of spoofing one trajectory: the per-frame
// oracle-matched measured points, the generated (requested) positions at the
// same instants, and the post-discretization expected observations.
// Requested is the Fig. 11 ground truth — antenna quantization counts as
// spoofing error, exactly as §11.1 discusses.
type GhostMeasurement struct {
	Measured  geom.Trajectory
	Requested geom.Trajectory
	Expected  geom.Trajectory
}

// MeasureGhost programs a ghost trajectory (world coordinates) against the
// environment's radar, captures frames over the session, and matches each
// frame's detections against the expected ghost position.
func (e *Env) MeasureGhost(traj geom.Trajectory, fs float64, rng *rand.Rand) (GhostMeasurement, error) {
	return e.MeasureGhostCtx(nil, traj, fs, rng)
}

// MeasureGhostCtx is MeasureGhost with cooperative cancellation: the frame
// capture stops and ctx.Err() is returned once ctx is done. A nil ctx never
// cancels.
func (e *Env) MeasureGhostCtx(ctx context.Context, traj geom.Trajectory, fs float64, rng *rand.Rand) (GhostMeasurement, error) {
	var out GhostMeasurement
	rec, err := e.Ctl.ProgramForRadar(traj, e.Scene.Radar, fs, 0)
	if err != nil {
		return out, err
	}
	nFrames := int(float64(len(traj)-1)/fs*e.Scene.Params.FrameRate) + 1
	frames, err := e.Scene.CaptureCtx(ctx, 0, nFrames, rng)
	if err != nil {
		return out, err
	}
	pr := radar.NewProcessor(radar.DefaultConfig())
	detSeq := pr.ProcessFrames(frames, e.Scene.Radar)
	expect := rec.ExpectedObservation(e.Tag.Config(), e.Scene.Radar)
	for i, dets := range detSeq {
		ti := frames[i+1].Time
		idx := int((ti - rec.Start) / rec.Tick)
		if idx < 0 || idx >= len(expect) {
			continue
		}
		want := expect[idx]
		bestD := 0.6
		var best *radar.Detection
		for di := range dets {
			if d := dets[di].Pos.Dist(want); d < bestD {
				best, bestD = &dets[di], d
			}
		}
		if best != nil {
			out.Measured = append(out.Measured, best.Pos)
			out.Expected = append(out.Expected, want)
			out.Requested = append(out.Requested, sampleTraj(traj, fs, ti))
		}
	}
	// The paper's pipeline performs "smoothing over time and peak
	// rejection" (§9.1) before extracting trajectories; apply the same
	// median + moving-average smoothing the tracker uses.
	out.Measured = smoothTrajectory(out.Measured)
	return out, nil
}

// smoothTrajectory median-filters and lightly averages each axis.
func smoothTrajectory(t geom.Trajectory) geom.Trajectory {
	n := len(t)
	if n < 5 {
		return t
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i, p := range t {
		xs[i], ys[i] = p.X, p.Y
	}
	xs = dsp.MovingAverage(dsp.MedianFilter(xs, 5), 3)
	ys = dsp.MovingAverage(dsp.MedianFilter(ys, 5), 3)
	out := make(geom.Trajectory, n)
	for i := range out {
		out[i] = geom.Point{X: xs[i], Y: ys[i]}
	}
	return out
}

// sampleTraj linearly interpolates a trajectory sampled at fs Hz (starting
// at t=0) at time t.
func sampleTraj(traj geom.Trajectory, fs, t float64) geom.Point {
	ft := t * fs
	if ft <= 0 {
		return traj[0]
	}
	i := int(ft)
	if i >= len(traj)-1 {
		return traj[len(traj)-1]
	}
	return geom.Lerp(traj[i], traj[i+1], ft-float64(i))
}
