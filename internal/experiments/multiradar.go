package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"rfprotect/internal/core"
	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
	"rfprotect/internal/parallel"
	"rfprotect/internal/radar"
	"rfprotect/internal/reflector"
	"rfprotect/internal/scene"
)

// MultiRadarResult reproduces the §13 "Extended Threat Model" limitation
// the paper itself states: an eavesdropper coordinating two radars on
// different walls can flag a single-tag ghost. A real human triangulates to
// the same world position from both radars; the ghost's apparent position
// is radar-dependent (it lives on each radar's ray through the tag), so the
// cross-radar disagreement exposes it.
type MultiRadarResult struct {
	HumanDisagreement float64 // m, cross-radar position disagreement of the human
	GhostDisagreement float64 // m, same for the ghost
	GhostFlagged      bool    // disagreement exceeds the consistency gate
	HumanFlagged      bool
	Gate              float64
}

// MultiRadar runs the two-radar consistency check in the home environment.
func MultiRadar(seed int64) (MultiRadarResult, error) {
	return MultiRadarCtx(nil, seed)
}

// MultiRadarCtx is MultiRadar with cooperative cancellation: both radars'
// captures stop once ctx is done and the first ctx error is returned with
// both workers joined. A nil ctx never cancels.
func MultiRadarCtx(ctx context.Context, seed int64) (MultiRadarResult, error) {
	var res MultiRadarResult
	res.Gate = 1.0
	params := fmcw.DefaultParams()

	// Radar A: bottom wall (the scene default), with the tag deployed at the
	// standard position by the session builder. Radar B: left wall, facing
	// +x, array along y — an ExtraRadars view, so the session wires it to
	// share radar A's tag (the paper's single-tag scenario) instead of
	// getting its own.
	room := scene.HomeRoom()
	sess, err := core.NewSession(core.SessionConfig{
		Room:        room,
		NoMultipath: true,
		ExtraRadars: []fmcw.Array{{
			Position:  geom.Point{X: 0, Y: room.Height / 2},
			AxisAngle: 1.5707963267948966, // array along +y
			Facing:    -1,                 // look toward +x
		}},
	})
	if err != nil {
		return res, err
	}
	scA, scB := sess.Views[0], sess.Views[1]

	// One human and one tag-ghost shared by both scenes.
	n := 80
	cx := scA.Radar.Position.X
	human := make(geom.Trajectory, n)
	ghost := make(geom.Trajectory, n)
	for i := range human {
		f := float64(i) / float64(n-1)
		human[i] = geom.Point{X: cx - 3 + 2*f, Y: 4.5 - 1.5*f}
		ghost[i] = geom.Point{X: cx + 0.4 + f, Y: 2.8 + 1.8*f}
	}
	hum := scene.NewHuman(human, params.FrameRate)
	scA.Humans = []*scene.Human{hum}
	scB.Humans = []*scene.Human{hum}

	tag, ctl := sess.Tag, sess.Ctl
	tagCfg := tag.Config()
	// The tag is programmed against radar A (the wall it defends); radar B
	// is at an unknown position, exactly the paper's single-tag scenario.
	if _, err := ctl.ProgramForRadar(ghost, scA.Radar, params.FrameRate, 0); err != nil {
		return res, err
	}

	// The two radars' capture-and-process chains are independent (separate
	// scenes, separate seeded rngs, separate processors — the Processor's
	// steering cache is mutable), so they run as parallel tasks.
	var framesA []*fmcw.Frame
	var detsA, detsB [][]radar.Detection
	g := parallel.NewGroup(0)
	g.GoCtx(ctx, func() error {
		var err error
		framesA, err = scA.CaptureCtx(ctx, 0, n, rand.New(rand.NewSource(parallel.SplitSeed(seed, 0))))
		if err != nil {
			return err
		}
		detsA = radar.NewProcessor(radar.DefaultConfig()).ProcessFrames(framesA, scA.Radar)
		return nil
	})
	g.GoCtx(ctx, func() error {
		framesB, err := scB.CaptureCtx(ctx, 0, n, rand.New(rand.NewSource(parallel.SplitSeed(seed, 1))))
		if err != nil {
			return err
		}
		detsB = radar.NewProcessor(radar.DefaultConfig()).ProcessFrames(framesB, scB.Radar)
		return nil
	})
	if err := g.Wait(); err != nil {
		return res, err
	}

	// Cross-radar consistency per frame: nearest detection to each entity's
	// apparent position at each radar, then the disagreement between the
	// two radars' world-position estimates.
	humanDis := crossRadarDisagreement(detsA, detsB, framesA, func(t float64) geom.Point {
		return hum.PositionAt(t)
	}, func(t float64) geom.Point {
		return hum.PositionAt(t)
	})
	// The ghost's apparent position differs per radar: radar A sees it on
	// its programmed trajectory; radar B sees it along B's ray through the
	// active antenna.
	recs := ctl.Records()
	rec := recs[0]
	ghostAtA := func(t float64) geom.Point {
		return expectedGhostAt(rec, tagCfg, scA.Radar, t)
	}
	ghostAtB := func(t float64) geom.Point {
		return expectedGhostAt(rec, tagCfg, scB.Radar, t)
	}
	ghostDis := crossRadarDisagreement(detsA, detsB, framesA, ghostAtA, ghostAtB)

	res.HumanDisagreement = humanDis
	res.GhostDisagreement = ghostDis
	res.HumanFlagged = humanDis > res.Gate
	res.GhostFlagged = ghostDis > res.Gate
	return res, nil
}

// expectedGhostAt maps a disclosure entry at time t to the world position
// the given radar observes.
func expectedGhostAt(rec reflector.GhostRecord, cfg reflector.Config, arr fmcw.Array, t float64) geom.Point {
	i := int((t - rec.Start) / rec.Tick)
	if i < 0 {
		i = 0
	}
	if i >= len(rec.Entries) {
		i = len(rec.Entries) - 1
	}
	e := rec.Entries[i]
	p := cfg.AntennaPosition(e.Antenna)
	return arr.PointAt(arr.DistanceOf(p)+e.ExtraDistance, arr.AoAOf(p))
}

// crossRadarDisagreement matches, per frame, the detection nearest the
// entity's apparent position at each radar and returns the mean distance
// between the two radars' matched world positions.
func crossRadarDisagreement(detsA, detsB [][]radar.Detection, frames []*fmcw.Frame,
	posAtA, posAtB func(float64) geom.Point) float64 {
	sum, count := 0.0, 0
	for i := range detsA {
		if i >= len(detsB) {
			break
		}
		t := frames[i+1].Time
		a, okA := nearestDetection(detsA[i], posAtA(t), 1.0)
		b, okB := nearestDetection(detsB[i], posAtB(t), 1.0)
		if okA && okB {
			sum += a.Dist(b)
			count++
		}
	}
	if count == 0 {
		return -1
	}
	return sum / float64(count)
}

func nearestDetection(dets []radar.Detection, want geom.Point, gate float64) (geom.Point, bool) {
	best := -1
	bestD := gate
	for i, d := range dets {
		if e := d.Pos.Dist(want); e < bestD {
			best, bestD = i, e
		}
	}
	if best < 0 {
		return geom.Point{}, false
	}
	return dets[best].Pos, true
}

// Print renders the consistency-check outcome.
func (r MultiRadarResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Extended threat model (§13): coordinated dual radars")
	fmt.Fprintf(w, "  cross-radar disagreement: human %.2f m, ghost %.2f m (gate %.1f m)\n",
		r.HumanDisagreement, r.GhostDisagreement, r.Gate)
	fmt.Fprintf(w, "  verdict: human flagged=%v, ghost flagged=%v — a single tag cannot fool two walls\n",
		r.HumanFlagged, r.GhostFlagged)
}
