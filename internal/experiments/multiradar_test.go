package experiments

import "testing"

func TestMultiRadarFlagsGhost(t *testing.T) {
	r, err := MultiRadar(8)
	if err != nil {
		t.Fatal(err)
	}
	if r.HumanDisagreement < 0 || r.GhostDisagreement < 0 {
		t.Fatalf("entities not matched: human %v ghost %v", r.HumanDisagreement, r.GhostDisagreement)
	}
	if r.HumanFlagged {
		t.Fatalf("real human flagged (disagreement %v)", r.HumanDisagreement)
	}
	if !r.GhostFlagged {
		t.Fatalf("ghost not flagged (disagreement %v)", r.GhostDisagreement)
	}
	if r.GhostDisagreement <= 2*r.HumanDisagreement {
		t.Fatalf("ghost disagreement %v not clearly above human %v", r.GhostDisagreement, r.HumanDisagreement)
	}
}
