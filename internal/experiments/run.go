package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sort"

	"rfprotect/internal/parallel"
)

// Runner executes one named experiment and prints its report to w. The ctx
// cancels long captures cooperatively: runners return ctx.Err() once it is
// done (a nil ctx never cancels).
type Runner func(ctx context.Context, sz Sizes, seed int64, w io.Writer) error

// Registry maps experiment names (fig7, fig9, ..., table1) to runners.
var Registry = map[string]Runner{
	"fig7": func(ctx context.Context, sz Sizes, seed int64, w io.Writer) error {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		Fig7().Print(w)
		return nil
	},
	"fig9": func(ctx context.Context, sz Sizes, seed int64, w io.Writer) error {
		r, err := Fig9Ctx(ctx, seed)
		if err != nil {
			return err
		}
		r.Print(w)
		return nil
	},
	"fig10": func(ctx context.Context, sz Sizes, seed int64, w io.Writer) error {
		r, err := Fig10Ctx(ctx, sz, seed)
		if err != nil {
			return err
		}
		r.Print(w)
		return nil
	},
	"fig11": func(ctx context.Context, sz Sizes, seed int64, w io.Writer) error {
		r, err := Fig11Ctx(ctx, sz, seed)
		if err != nil {
			return err
		}
		r.Print(w)
		return nil
	},
	"fig12": func(ctx context.Context, sz Sizes, seed int64, w io.Writer) error {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		Fig12(sz, seed).Print(w)
		return nil
	},
	"table1": func(ctx context.Context, sz Sizes, seed int64, w io.Writer) error {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		Table1(sz, seed).Print(w)
		return nil
	},
	"fig13": func(ctx context.Context, sz Sizes, seed int64, w io.Writer) error {
		r, err := Fig13Ctx(ctx, seed)
		if err != nil {
			return err
		}
		r.Print(w)
		return nil
	},
	"fig14": func(ctx context.Context, sz Sizes, seed int64, w io.Writer) error {
		r, err := Fig14Ctx(ctx, seed)
		if err != nil {
			return err
		}
		r.Print(w)
		return nil
	},
	"ablation": func(ctx context.Context, sz Sizes, seed int64, w io.Writer) error {
		r, err := AblationCtx(ctx, seed)
		if err != nil {
			return err
		}
		r.Print(w)
		return nil
	},
	"probe": func(ctx context.Context, sz Sizes, seed int64, w io.Writer) error {
		r, err := ProbeCtx(ctx, seed)
		if err != nil {
			return err
		}
		r.Print(w)
		return nil
	},
	"floorplan": func(ctx context.Context, sz Sizes, seed int64, w io.Writer) error {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		r, err := FloorPlan(sz, seed)
		if err != nil {
			return err
		}
		r.Print(w)
		return nil
	},
	"multiradar": func(ctx context.Context, sz Sizes, seed int64, w io.Writer) error {
		r, err := MultiRadarCtx(ctx, seed)
		if err != nil {
			return err
		}
		r.Print(w)
		return nil
	},
	"armsrace": func(ctx context.Context, sz Sizes, seed int64, w io.Writer) error {
		r, err := ArmsRaceCtx(ctx, sz, seed)
		if err != nil {
			return err
		}
		r.Print(w)
		return nil
	},
}

// ctxErr is ctx.Err() tolerating the nil ctx the Ctx-less wrappers pass.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// Names returns the registered experiment names in order.
func Names() []string {
	var out []string
	for k := range Registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ganBacked marks the experiments that draw from the shared cached
// trainer's internal RNG (TrainedGAN + Trainer.Sample). The "all" sweep
// keeps these in their sequential relative order on a single pool task so
// the trainer's RNG stream — and therefore every report — stays identical
// to a fully sequential sweep.
var ganBacked = map[string]bool{
	"fig10":     true,
	"fig11":     true,
	"fig12":     true,
	"floorplan": true,
	"table1":    true,
}

// Run executes one experiment by name, or all of them for name == "all",
// with no cancellation. It is RunCtx with a background context.
func Run(name string, sz Sizes, seed int64, w io.Writer) error {
	return RunCtx(context.Background(), name, sz, seed, w) //rfvet:allow ctxflow -- legacy context-free entry point: the wrapper's whole job is to synthesize the root
}

// RunCtx executes one experiment by name, or all of them for name == "all",
// stopping early with ctx.Err() once ctx is done.
//
// The "all" sweep runs experiments concurrently through a shared bounded
// pool: each experiment renders into its own buffer, and buffers are
// flushed to w in name order, so the combined report is byte-identical to a
// sequential sweep. GAN-backed experiments (see ganBacked) run in order on
// one task; every other experiment overlaps freely. A done ctx stops the
// sweep cooperatively — no new experiments start, in-flight captures
// return early — and RunCtx returns only after every worker has joined, so
// no experiment goroutine outlives the call.
func RunCtx(ctx context.Context, name string, sz Sizes, seed int64, w io.Writer) error {
	if name == "all" {
		names := Names()
		bufs := make([]bytes.Buffer, len(names))
		errs := make([]error, len(names))
		g := parallel.NewGroup(0)
		g.GoCtx(ctx, func() error {
			for i, n := range names {
				if ganBacked[n] {
					errs[i] = Registry[n](ctx, sz, seed, &bufs[i])
				}
			}
			return nil
		})
		for i, n := range names {
			if ganBacked[n] {
				continue
			}
			i, n := i, n
			g.GoCtx(ctx, func() error {
				errs[i] = Registry[n](ctx, sz, seed, &bufs[i])
				return nil
			})
		}
		// Wait joins every worker; its error surfaces tasks the pool skipped
		// because ctx was already done.
		if err := g.Wait(); err != nil {
			return err
		}
		for i, n := range names {
			if errs[i] != nil {
				return fmt.Errorf("%s: %w", n, errs[i])
			}
			fmt.Fprintf(w, "==== %s ====\n", n)
			if _, err := bufs[i].WriteTo(w); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		return nil
	}
	r, ok := Registry[name]
	if !ok {
		return fmt.Errorf("unknown experiment %q (have %v)", name, Names())
	}
	return r(ctx, sz, seed, w)
}
