package experiments

import (
	"bytes"
	"fmt"
	"io"
	"sort"

	"rfprotect/internal/parallel"
)

// Runner executes one named experiment and prints its report to w.
type Runner func(sz Sizes, seed int64, w io.Writer) error

// Registry maps experiment names (fig7, fig9, ..., table1) to runners.
var Registry = map[string]Runner{
	"fig7": func(sz Sizes, seed int64, w io.Writer) error {
		Fig7().Print(w)
		return nil
	},
	"fig9": func(sz Sizes, seed int64, w io.Writer) error {
		r, err := Fig9(seed)
		if err != nil {
			return err
		}
		r.Print(w)
		return nil
	},
	"fig10": func(sz Sizes, seed int64, w io.Writer) error {
		r, err := Fig10(sz, seed)
		if err != nil {
			return err
		}
		r.Print(w)
		return nil
	},
	"fig11": func(sz Sizes, seed int64, w io.Writer) error {
		r, err := Fig11(sz, seed)
		if err != nil {
			return err
		}
		r.Print(w)
		return nil
	},
	"fig12": func(sz Sizes, seed int64, w io.Writer) error {
		Fig12(sz, seed).Print(w)
		return nil
	},
	"table1": func(sz Sizes, seed int64, w io.Writer) error {
		Table1(sz, seed).Print(w)
		return nil
	},
	"fig13": func(sz Sizes, seed int64, w io.Writer) error {
		r, err := Fig13(seed)
		if err != nil {
			return err
		}
		r.Print(w)
		return nil
	},
	"fig14": func(sz Sizes, seed int64, w io.Writer) error {
		r, err := Fig14(seed)
		if err != nil {
			return err
		}
		r.Print(w)
		return nil
	},
	"ablation": func(sz Sizes, seed int64, w io.Writer) error {
		r, err := Ablation(seed)
		if err != nil {
			return err
		}
		r.Print(w)
		return nil
	},
	"probe": func(sz Sizes, seed int64, w io.Writer) error {
		r, err := Probe(seed)
		if err != nil {
			return err
		}
		r.Print(w)
		return nil
	},
	"floorplan": func(sz Sizes, seed int64, w io.Writer) error {
		r, err := FloorPlan(sz, seed)
		if err != nil {
			return err
		}
		r.Print(w)
		return nil
	},
	"multiradar": func(sz Sizes, seed int64, w io.Writer) error {
		r, err := MultiRadar(seed)
		if err != nil {
			return err
		}
		r.Print(w)
		return nil
	},
}

// Names returns the registered experiment names in order.
func Names() []string {
	var out []string
	for k := range Registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ganBacked marks the experiments that draw from the shared cached
// trainer's internal RNG (TrainedGAN + Trainer.Sample). The "all" sweep
// keeps these in their sequential relative order on a single pool task so
// the trainer's RNG stream — and therefore every report — stays identical
// to a fully sequential sweep.
var ganBacked = map[string]bool{
	"fig10":     true,
	"fig11":     true,
	"fig12":     true,
	"floorplan": true,
	"table1":    true,
}

// Run executes one experiment by name, or all of them for name == "all".
//
// The "all" sweep runs experiments concurrently through a shared bounded
// pool: each experiment renders into its own buffer, and buffers are
// flushed to w in name order, so the combined report is byte-identical to a
// sequential sweep. GAN-backed experiments (see ganBacked) run in order on
// one task; every other experiment overlaps freely.
func Run(name string, sz Sizes, seed int64, w io.Writer) error {
	if name == "all" {
		names := Names()
		bufs := make([]bytes.Buffer, len(names))
		errs := make([]error, len(names))
		g := parallel.NewGroup(0)
		g.Go(func() error {
			for i, n := range names {
				if ganBacked[n] {
					errs[i] = Registry[n](sz, seed, &bufs[i])
				}
			}
			return nil
		})
		for i, n := range names {
			if ganBacked[n] {
				continue
			}
			i, n := i, n
			g.Go(func() error {
				errs[i] = Registry[n](sz, seed, &bufs[i])
				return nil
			})
		}
		g.Wait()
		for i, n := range names {
			if errs[i] != nil {
				return fmt.Errorf("%s: %w", n, errs[i])
			}
			fmt.Fprintf(w, "==== %s ====\n", n)
			if _, err := bufs[i].WriteTo(w); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		return nil
	}
	r, ok := Registry[name]
	if !ok {
		return fmt.Errorf("unknown experiment %q (have %v)", name, Names())
	}
	return r(sz, seed, w)
}
