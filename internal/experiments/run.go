package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Runner executes one named experiment and prints its report to w.
type Runner func(sz Sizes, seed int64, w io.Writer) error

// Registry maps experiment names (fig7, fig9, ..., table1) to runners.
var Registry = map[string]Runner{
	"fig7": func(sz Sizes, seed int64, w io.Writer) error {
		Fig7().Print(w)
		return nil
	},
	"fig9": func(sz Sizes, seed int64, w io.Writer) error {
		r, err := Fig9(seed)
		if err != nil {
			return err
		}
		r.Print(w)
		return nil
	},
	"fig10": func(sz Sizes, seed int64, w io.Writer) error {
		r, err := Fig10(sz, seed)
		if err != nil {
			return err
		}
		r.Print(w)
		return nil
	},
	"fig11": func(sz Sizes, seed int64, w io.Writer) error {
		r, err := Fig11(sz, seed)
		if err != nil {
			return err
		}
		r.Print(w)
		return nil
	},
	"fig12": func(sz Sizes, seed int64, w io.Writer) error {
		Fig12(sz, seed).Print(w)
		return nil
	},
	"table1": func(sz Sizes, seed int64, w io.Writer) error {
		Table1(sz, seed).Print(w)
		return nil
	},
	"fig13": func(sz Sizes, seed int64, w io.Writer) error {
		r, err := Fig13(seed)
		if err != nil {
			return err
		}
		r.Print(w)
		return nil
	},
	"fig14": func(sz Sizes, seed int64, w io.Writer) error {
		r, err := Fig14(seed)
		if err != nil {
			return err
		}
		r.Print(w)
		return nil
	},
	"ablation": func(sz Sizes, seed int64, w io.Writer) error {
		r, err := Ablation(seed)
		if err != nil {
			return err
		}
		r.Print(w)
		return nil
	},
	"probe": func(sz Sizes, seed int64, w io.Writer) error {
		r, err := Probe(seed)
		if err != nil {
			return err
		}
		r.Print(w)
		return nil
	},
	"floorplan": func(sz Sizes, seed int64, w io.Writer) error {
		r, err := FloorPlan(sz, seed)
		if err != nil {
			return err
		}
		r.Print(w)
		return nil
	},
	"multiradar": func(sz Sizes, seed int64, w io.Writer) error {
		r, err := MultiRadar(seed)
		if err != nil {
			return err
		}
		r.Print(w)
		return nil
	},
}

// Names returns the registered experiment names in order.
func Names() []string {
	var out []string
	for k := range Registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by name, or all of them for name == "all".
func Run(name string, sz Sizes, seed int64, w io.Writer) error {
	if name == "all" {
		for _, n := range Names() {
			fmt.Fprintf(w, "==== %s ====\n", n)
			if err := Registry[n](sz, seed, w); err != nil {
				return fmt.Errorf("%s: %w", n, err)
			}
			fmt.Fprintln(w)
		}
		return nil
	}
	r, ok := Registry[name]
	if !ok {
		return fmt.Errorf("unknown experiment %q (have %v)", name, Names())
	}
	return r(sz, seed, w)
}
