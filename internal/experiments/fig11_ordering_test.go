package experiments

import (
	"math/rand"
	"testing"

	"rfprotect/internal/fmcw"
	"rfprotect/internal/metrics"
	"rfprotect/internal/motion"
	"rfprotect/internal/scene"
)

// TestFig11HomeBeatsOffice verifies the paper's environment ordering
// (§11.1: office errors exceed home errors because of cabinet multipath)
// with a paired design over corpus trajectories — no GAN training needed,
// so the comparison isolates the radar chain.
func TestFig11HomeBeatsOffice(t *testing.T) {
	if testing.Short() {
		t.Skip("paired environment sweep is slow")
	}
	params := fmcw.DefaultParams()
	ds := motion.Generate(60, 9)
	medians := map[string][2]float64{} // room -> {distance, location}
	for _, room := range []scene.Room{scene.HomeRoom(), scene.OfficeRoom()} {
		rng := rand.New(rand.NewSource(10))
		var errs metrics.SpoofErrors
		for i := 0; i < 6; i++ {
			env, err := NewEnv(room, params)
			if err != nil {
				t.Fatal(err)
			}
			world := FitGhostTrajectory(ds.Traces[i*7], env, room, rng)
			m, err := env.MeasureGhost(world, motion.SampleRate, rng)
			if err != nil {
				t.Fatal(err)
			}
			errs.Merge(metrics.EvaluateSpoof(m.Measured, m.Requested, env.Scene.Radar))
		}
		d, _, l := errs.Medians()
		medians[room.Name] = [2]float64{d, l}
	}
	home, office := medians["home"], medians["office"]
	if home[1] >= office[1] {
		t.Fatalf("home location error %.1f cm not below office %.1f cm", home[1]*100, office[1]*100)
	}
	// Absolute bands: within ~2 range bins for distance, ~0.35 m location.
	for room, m := range medians {
		if m[0] > 2*params.RangeResolution() {
			t.Fatalf("%s median distance error %.1f cm", room, m[0]*100)
		}
		if m[1] > 0.35 {
			t.Fatalf("%s median location error %.1f cm", room, m[1]*100)
		}
	}
}
