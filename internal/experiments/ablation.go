package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"rfprotect/internal/core"
	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
	"rfprotect/internal/metrics"
	"rfprotect/internal/motion"
	"rfprotect/internal/parallel"
	"rfprotect/internal/radar"
	"rfprotect/internal/reflector"
	"rfprotect/internal/scene"
)

// AblationResult quantifies the design choices DESIGN.md calls out: how
// much room speckle contributes to spoofing error, what the square-wave
// harmonics add to the scene, and what amplitude matching does to the
// ghost's visibility.
type AblationResult struct {
	// Speckle ablation: median location error with and without diffuse
	// multipath in the office.
	LocErrWithSpeckle    float64
	LocErrWithoutSpeckle float64

	// Harmonic ablation: number of distinct moving detections with full
	// square-wave harmonics vs single-sideband first-harmonic-only.
	DetectionsFullHarmonics int
	DetectionsSSB           int

	// Amplitude ablation: ghost peak power under matched vs raw gain,
	// normalized by a reference human peak.
	MatchedPowerRatio float64
	RawPowerRatio     float64
}

// Ablation runs all three ablations at reduced scale.
func Ablation(seed int64) (AblationResult, error) {
	return AblationCtx(nil, seed)
}

// AblationCtx is Ablation with cooperative cancellation through every
// capture; a nil ctx never cancels.
func AblationCtx(ctx context.Context, seed int64) (AblationResult, error) {
	var res AblationResult
	params := fmcw.DefaultParams()
	ds := motion.Generate(40, seed)

	// --- Speckle.
	for _, speckle := range []bool{true, false} {
		room := scene.OfficeRoom()
		if !speckle {
			room.Speckle = 0
		}
		rng := rand.New(rand.NewSource(parallel.SplitSeed(seed, 1)))
		var errs metrics.SpoofErrors
		for i := 0; i < 5; i++ {
			env, err := NewEnv(room, params)
			if err != nil {
				return res, err
			}
			world := FitGhostTrajectory(ds.Traces[i*3], env, room, rng)
			m, err := env.MeasureGhostCtx(ctx, world, motion.SampleRate, rng)
			if err != nil {
				return res, err
			}
			errs.Merge(metrics.EvaluateSpoof(m.Measured, m.Requested, env.Scene.Radar))
		}
		_, _, loc := errs.Medians()
		if speckle {
			res.LocErrWithSpeckle = loc
		} else {
			res.LocErrWithoutSpeckle = loc
		}
	}

	// --- Harmonics: count distinct moving detections from one ghost.
	for _, ssb := range []bool{false, true} {
		room := scene.HomeRoom()
		room.Speckle = 0
		ssb := ssb
		sess, err := core.NewSession(core.SessionConfig{
			Room:         room,
			Params:       params,
			NoMultipath:  true,
			ConfigureTag: func(c *reflector.Config) { c.SSB = ssb },
		})
		if err != nil {
			return res, err
		}
		sc, ctl := sess.Scene, sess.Ctl
		traj := geom.Trajectory{{X: sc.Radar.Position.X, Y: 2.5}, {X: sc.Radar.Position.X + 1, Y: 4}}
		if _, err := ctl.ProgramForRadar(traj, sc.Radar, 0.5, 0); err != nil {
			return res, err
		}
		rng := rand.New(rand.NewSource(parallel.SplitSeed(seed, 2)))
		frames, err := sc.CaptureCtx(ctx, 0, 20, rng)
		if err != nil {
			return res, err
		}
		pr := radar.NewProcessor(radar.DefaultConfig())
		dets := pr.ProcessFrames(frames, sc.Radar)
		maxDets := 0
		for _, d := range dets {
			if len(d) > maxDets {
				maxDets = len(d)
			}
		}
		if ssb {
			res.DetectionsSSB = maxDets
		} else {
			res.DetectionsFullHarmonics = maxDets
		}
	}

	// --- Amplitude control.
	humanPeak, err := peakPowerOfHuman(params, seed+3)
	if err != nil {
		return res, err
	}
	for _, mode := range []reflector.AmplitudeMode{reflector.AmplitudeMatchHuman, reflector.AmplitudeRaw} {
		p, err := peakPowerOfGhost(params, mode, seed+3)
		if err != nil {
			return res, err
		}
		if mode == reflector.AmplitudeMatchHuman {
			res.MatchedPowerRatio = p / humanPeak
		} else {
			res.RawPowerRatio = p / humanPeak
		}
	}
	return res, nil
}

func peakPowerOfHuman(params fmcw.Params, seed int64) (float64, error) {
	sc := scene.NewScene(scene.HomeRoom(), params)
	sc.Multipath = false
	sc.Room.Speckle = 0
	sc.Humans = []*scene.Human{scene.NewHuman(geom.Trajectory{{X: 7, Y: 3.5}, {X: 7.4, Y: 3.9}}, 1)}
	rng := rand.New(rand.NewSource(seed))
	f0 := sc.FrameAt(0, rng)
	f1 := sc.FrameAt(0.3, rng)
	pr := radar.NewProcessor(radar.DefaultConfig())
	prof := pr.RangeAngle(radar.BackgroundSubtract(f1, f0))
	return maxOf(prof.Power), nil
}

func peakPowerOfGhost(params fmcw.Params, mode reflector.AmplitudeMode, seed int64) (float64, error) {
	room := scene.HomeRoom()
	room.Speckle = 0
	sess, err := core.NewSession(core.SessionConfig{Room: room, Params: params, NoMultipath: true})
	if err != nil {
		return 0, err
	}
	sc, ctl := sess.Scene, sess.Ctl
	ctl.SetAmplitudeMode(mode)
	traj := geom.Trajectory{{X: 7, Y: 3.5}, {X: 7.4, Y: 3.9}}
	if _, err := ctl.ProgramForRadar(traj, sc.Radar, 1, 0); err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(seed))
	f0 := sc.FrameAt(0, rng)
	f1 := sc.FrameAt(0.3, rng)
	pr := radar.NewProcessor(radar.DefaultConfig())
	prof := pr.RangeAngle(radar.BackgroundSubtract(f1, f0))
	return maxOf(prof.Power), nil
}

// Print renders the ablation summary.
func (r AblationResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Ablations:")
	fmt.Fprintf(w, "  office speckle:   median loc error %.1f cm with, %.1f cm without\n",
		r.LocErrWithSpeckle*100, r.LocErrWithoutSpeckle*100)
	fmt.Fprintf(w, "  harmonics:        max detections %d (full square wave) vs %d (SSB)\n",
		r.DetectionsFullHarmonics, r.DetectionsSSB)
	fmt.Fprintf(w, "  amplitude:        ghost/human power %.2f (matched) vs %.2f (raw gain)\n",
		r.MatchedPowerRatio, r.RawPowerRatio)
}
