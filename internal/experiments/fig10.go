package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
	"rfprotect/internal/motion"
	"rfprotect/internal/radar"
	"rfprotect/internal/scene"
)

// Fig10Result compares the background-subtracted range–angle profile of a
// real human against RF-Protect's ghost (Fig. 10a/b) and overlays a spoofed
// trajectory against its generated source (Fig. 10c).
type Fig10Result struct {
	HumanProfile *radar.Profile
	GhostProfile *radar.Profile
	// HumanPeak / GhostPeak are the dominant moving-reflection powers; the
	// paper's observation is that they are comparable because the tag
	// reflects the radar's own signal.
	HumanPeak float64
	GhostPeak float64

	// Fig. 10c: a cGAN trajectory and what the radar measured.
	Generated geom.Trajectory
	Spoofed   geom.Trajectory
	MeanError float64
}

// Fig10 runs the reflector microbenchmarks of §10.2 and §10.3 in the office
// environment.
func Fig10(sz Sizes, seed int64) (Fig10Result, error) {
	return Fig10Ctx(nil, sz, seed)
}

// Fig10Ctx is Fig10 with cooperative cancellation through the trajectory
// measurement; a nil ctx never cancels.
func Fig10Ctx(ctx context.Context, sz Sizes, seed int64) (Fig10Result, error) {
	params := fmcw.DefaultParams()
	var res Fig10Result
	rng := rand.New(rand.NewSource(seed))

	// --- (a) human profile.
	{
		sc := scene.NewScene(scene.OfficeRoom(), params)
		traj := geom.Trajectory{{X: 4, Y: 3.5}, {X: 4.4, Y: 3.9}}
		sc.Humans = []*scene.Human{scene.NewHuman(traj, 1)}
		f0, err := sc.FrameAtCtx(ctx, 0, rng)
		if err != nil {
			return res, err
		}
		f1, err := sc.FrameAtCtx(ctx, 0.3, rng)
		if err != nil {
			return res, err
		}
		pr := radar.NewProcessor(radar.DefaultConfig())
		prof, err := pr.RangeAngleCtx(ctx, radar.BackgroundSubtract(f1, f0))
		if err != nil {
			return res, err
		}
		res.HumanProfile = prof
		res.HumanPeak = maxOf(res.HumanProfile.Power)
	}

	// --- (b) ghost profile at a comparable location.
	{
		env, err := NewEnv(scene.OfficeRoom(), params)
		if err != nil {
			return res, err
		}
		traj := geom.Trajectory{{X: 4, Y: 3.5}, {X: 4.4, Y: 3.9}}
		if _, err := env.Ctl.ProgramForRadar(traj, env.Scene.Radar, 1, 0); err != nil {
			return res, err
		}
		f0, err := env.Scene.FrameAtCtx(ctx, 0, rng)
		if err != nil {
			return res, err
		}
		f1, err := env.Scene.FrameAtCtx(ctx, 0.3, rng)
		if err != nil {
			return res, err
		}
		pr := radar.NewProcessor(radar.DefaultConfig())
		prof, err := pr.RangeAngleCtx(ctx, radar.BackgroundSubtract(f1, f0))
		if err != nil {
			return res, err
		}
		res.GhostProfile = prof
		res.GhostPeak = maxOf(res.GhostProfile.Power)
	}

	// --- (c) spoof one generated trajectory and measure it.
	env, err := NewEnv(scene.OfficeRoom(), params)
	if err != nil {
		return res, err
	}
	tr := TrainedGAN(sz, seed)
	gen := tr.G.Generate(1, 2, rng)[0]
	world := FitGhostTrajectory(gen, env, scene.OfficeRoom(), rng)
	m, err := env.MeasureGhostCtx(ctx, world, motion.SampleRate, rng)
	if err != nil {
		return res, err
	}
	res.Generated = m.Requested
	res.Spoofed = m.Measured
	res.MeanError = geom.MeanPointwiseError(m.Measured, m.Requested)
	return res, nil
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, v := range xs {
		if v > m {
			m = v
		}
	}
	return m
}

// Print summarizes the profile comparison and trajectory overlay.
func (r Fig10Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Fig 10: reflector microbenchmarks (office)")
	ratio := 0.0
	if r.HumanPeak > 0 {
		ratio = r.GhostPeak / r.HumanPeak
	}
	fmt.Fprintf(w, "  (a/b) moving-peak power: human %.3g, ghost %.3g (ratio %.2f)\n",
		r.HumanPeak, r.GhostPeak, ratio)
	fmt.Fprintf(w, "  (c)   spoofed vs generated trajectory: %d matched points, mean error %.3f m, span %.1f m\n",
		len(r.Spoofed), r.MeanError, geom.Trajectory(r.Generated).PathLength())
}
