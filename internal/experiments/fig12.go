package experiments

import (
	"fmt"
	"io"

	"rfprotect/internal/geom"
	"rfprotect/internal/metrics"
	"rfprotect/internal/motion"
)

// Fig12Result holds the cGAN realism evaluation: sample trajectories
// (Fig. 12 left) and normalized FID scores for the candidate trajectory
// families (Fig. 12 right; paper: Real 1.0, GAN 1.229, SingleTraj 1.867,
// ULM 2.022, Random 3.440).
type Fig12Result struct {
	RealSamples []geom.Trajectory
	GANSamples  []geom.Trajectory
	// NormalizedFID maps family name to score; "Real" is 1 by construction.
	NormalizedFID map[string]float64
	Order         []string
}

// Fig12 trains (or reuses) the cGAN and scores all families against a real
// reference split.
func Fig12(sz Sizes, seed int64) Fig12Result {
	tr := TrainedGAN(sz, seed)
	ds := motion.Generate(sz.CorpusSize, seed+1000) // held-out real corpus
	a, b := ds.Split()

	n := sz.GANSamples
	ganTraces := tr.Sample(n)
	single := motion.SingleTraj(n, seed+1)
	ulm := motion.ULM(n, seed+2)
	random := motion.RandomWalk(n, seed+3)

	res := Fig12Result{
		NormalizedFID: map[string]float64{},
		Order:         []string{"Real", "GAN", "SingleTraj", "ULM", "Random"},
	}
	res.RealSamples = a.Traces[:min(5, len(a.Traces))]
	res.GANSamples = ganTraces[:min(5, len(ganTraces))]

	base := metrics.TrajectoryFID(a.Traces, b.Traces)
	score := func(c []geom.Trajectory) float64 {
		return metrics.TrajectoryFID(c, b.Traces) / base
	}
	res.NormalizedFID["Real"] = 1.0
	res.NormalizedFID["GAN"] = score(ganTraces)
	res.NormalizedFID["SingleTraj"] = score(single)
	res.NormalizedFID["ULM"] = score(ulm)
	res.NormalizedFID["Random"] = score(random)
	return res
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Print renders the normalized FID bar data.
func (r Fig12Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Fig 12 (right): normalized FID vs real trajectories")
	for _, name := range r.Order {
		fmt.Fprintf(w, "  %-10s  %.3f\n", name, r.NormalizedFID[name])
	}
	fmt.Fprintf(w, "  (%d real / %d GAN sample trajectories retained for Fig 12 left)\n",
		len(r.RealSamples), len(r.GANSamples))
}
