package experiments

import (
	"fmt"
	"io"

	"rfprotect/internal/floorplan"
	"rfprotect/internal/geom"
	"rfprotect/internal/metrics"
	"rfprotect/internal/motion"
)

// FloorPlanResult evaluates the §8 extension: without floor-plan knowledge
// some generated phantoms "walk through walls" (an eavesdropper with the
// plan could flag them); routing repairs eliminate every crossing while
// keeping the trajectories statistically human.
type FloorPlanResult struct {
	Total            int
	CrossingBefore   int     // trajectories with >= 1 wall crossing, raw cGAN
	CrossingAfter    int     // after repair
	FIDBefore        float64 // normalized FID of raw trajectories
	FIDAfter         float64 // normalized FID of repaired trajectories
	MeanDisplacement float64 // mean per-point displacement caused by repair
}

// FloorPlan runs the wall-avoidance evaluation in the demo apartment.
func FloorPlan(sz Sizes, seed int64) (FloorPlanResult, error) {
	var res FloorPlanResult
	plan := floorplan.Apartment()
	router, err := floorplan.NewRouter(plan, 0.2, 0.25)
	if err != nil {
		return res, err
	}
	tr := TrainedGAN(sz, seed)
	n := sz.GANSamples
	raw := tr.Sample(n)

	// Anchor each trajectory inside the apartment (the cGAN generates
	// relative motion; deployment picks the anchor).
	anchors := []geom.Point{{X: 2.5, Y: 4.3}, {X: 7.5, Y: 4.3}, {X: 5, Y: 1}, {X: 4.7, Y: 3}}
	placed := make([]geom.Trajectory, 0, n)
	for i, t := range raw {
		c := t.Clone()
		if ext := c.RangeOfMotion(); ext > 3 {
			c = c.Scale(3/ext, c.Centroid())
		}
		a := anchors[i%len(anchors)]
		c = c.Translate(a.Sub(c.Centroid()))
		for j, p := range c {
			c[j] = geom.Point{X: clampF(p.X, 0.2, plan.Width-0.2), Y: clampF(p.Y, 0.2, plan.Height-0.2)}
		}
		placed = append(placed, c)
	}

	repaired := make([]geom.Trajectory, 0, n)
	var dispSum float64
	var dispN int
	for _, t := range placed {
		res.Total++
		if plan.CrossingCount(t) > 0 {
			res.CrossingBefore++
		}
		fixed, err := router.Repair(t)
		if err != nil {
			return res, err
		}
		if plan.CrossingCount(fixed) > 0 {
			res.CrossingAfter++
		}
		for i := range fixed {
			dispSum += fixed[i].Dist(t[i])
			dispN++
		}
		repaired = append(repaired, fixed)
	}
	if dispN > 0 {
		res.MeanDisplacement = dispSum / float64(dispN)
	}

	// Realism before/after, against a held-out real corpus.
	ds := motion.Generate(sz.CorpusSize, seed+2000)
	a, b := ds.Split()
	base := metrics.TrajectoryFID(a.Traces, b.Traces)
	res.FIDBefore = metrics.TrajectoryFID(centerAll(placed), b.Traces) / base
	res.FIDAfter = metrics.TrajectoryFID(centerAll(repaired), b.Traces) / base
	return res, nil
}

// centerAll translates each trajectory so it starts at the origin, matching
// the corpus convention before feature extraction.
func centerAll(trs []geom.Trajectory) []geom.Trajectory {
	out := make([]geom.Trajectory, len(trs))
	for i, t := range trs {
		if len(t) == 0 {
			out[i] = t
			continue
		}
		out[i] = t.Translate(geom.Point{X: -t[0].X, Y: -t[0].Y})
	}
	return out
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Print renders the wall-avoidance summary.
func (r FloorPlanResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Floor-plan extension (§8): phantom wall crossings")
	fmt.Fprintf(w, "  trajectories with wall crossings: %d/%d before repair, %d/%d after\n",
		r.CrossingBefore, r.Total, r.CrossingAfter, r.Total)
	fmt.Fprintf(w, "  mean repair displacement: %.2f m per point\n", r.MeanDisplacement)
	fmt.Fprintf(w, "  normalized FID: %.2f before, %.2f after repair\n", r.FIDBefore, r.FIDAfter)
}
