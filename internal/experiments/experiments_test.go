package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestFig7Shape(t *testing.T) {
	r := Fig7()
	if len(r.MI) != len(r.Ms) {
		t.Fatal("curve count")
	}
	for i := range r.Ms {
		// Endpoints equal H(X); interior dips.
		if math.Abs(r.MI[i][0]-r.EntropyX) > 1e-9 {
			t.Fatalf("M=%d q=0: %v != H(X) %v", r.Ms[i], r.MI[i][0], r.EntropyX)
		}
		last := r.MI[i][len(r.MI[i])-1]
		if math.Abs(last-r.EntropyX) > 1e-9 {
			t.Fatalf("M=%d q=1: %v != H(X)", r.Ms[i], last)
		}
		q, mi := r.MinMI(i)
		if q < 0.2 || q > 0.8 {
			t.Fatalf("M=%d min at q=%v, expected interior dip", r.Ms[i], q)
		}
		if mi >= r.EntropyX {
			t.Fatalf("M=%d no dip", r.Ms[i])
		}
	}
	// More phantoms leak less at the dip.
	_, mi2 := r.MinMI(0)
	_, mi8 := r.MinMI(len(r.Ms) - 1)
	if mi8 >= mi2 {
		t.Fatalf("M=8 dip %v not below M=2 dip %v", mi8, mi2)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "Fig 7") {
		t.Fatal("print output")
	}
}

func TestFig9LocalizationAccuracy(t *testing.T) {
	r, err := Fig9(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Shapes) != 2 {
		t.Fatal("shape count")
	}
	for _, s := range r.Shapes {
		if s.MedianError > 0.35 {
			t.Fatalf("%s median localization error %v m", s.Name, s.MedianError)
		}
		if len(s.Detected) < len(s.GroundTruth)/2 {
			t.Fatalf("%s detected only %d points", s.Name, len(s.Detected))
		}
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "median error") {
		t.Fatal("print output")
	}
}

func TestFig10ProfilesAndSpoof(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the shared cGAN")
	}
	r, err := Fig10(Quick(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// The ghost's moving-reflection power must be comparable to the
	// human's: within 10 dB either way (frame differencing responds to the
	// exact inter-frame phase change, so "identical" is qualitative).
	ratio := r.GhostPeak / r.HumanPeak
	if ratio < 0.1 || ratio > 10 {
		t.Fatalf("ghost/human peak power ratio %v", ratio)
	}
	if len(r.Spoofed) < 10 {
		t.Fatalf("spoofed trajectory has %d matched points", len(r.Spoofed))
	}
	if r.MeanError > 0.6 {
		t.Fatalf("spoofed vs generated mean error %v m", r.MeanError)
	}
}

func TestFig11AccuracyBands(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the shared cGAN")
	}
	r, err := Fig11(Quick(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Envs) != 2 {
		t.Fatal("environment count")
	}
	home, office := r.Envs[0], r.Envs[1]
	if home.Room != "home" || office.Room != "office" {
		t.Fatalf("rooms %s/%s", home.Room, office.Room)
	}
	for _, e := range r.Envs {
		if e.Trajectories == 0 {
			t.Fatalf("%s: no trajectories measured", e.Room)
		}
		// Medians within sane bands: distance within ~1.5 range bins,
		// angle below ~10 deg, location below ~0.5 m.
		if e.MedianDistance > 1.5*r.RangeResolution {
			t.Fatalf("%s median distance error %v m", e.Room, e.MedianDistance)
		}
		if e.MedianAngle > 10 {
			t.Fatalf("%s median angle error %v deg", e.Room, e.MedianAngle)
		}
		if e.MedianLocation > 0.5 {
			t.Fatalf("%s median location error %v m", e.Room, e.MedianLocation)
		}
	}
	// CDF accessors work.
	for _, which := range []string{"distance", "angle", "location"} {
		if cdf := r.CDF(0, which); len(cdf) == 0 {
			t.Fatalf("empty CDF for %s", which)
		}
	}
	if r.CDF(0, "bogus") != nil {
		t.Fatal("bogus CDF name should be nil")
	}
}

func TestFig12OrderingMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the shared cGAN")
	}
	r := Fig12(Quick(), 3)
	gan := r.NormalizedFID["GAN"]
	single := r.NormalizedFID["SingleTraj"]
	ulm := r.NormalizedFID["ULM"]
	random := r.NormalizedFID["Random"]
	if r.NormalizedFID["Real"] != 1 {
		t.Fatal("real baseline must be 1")
	}
	// The paper's qualitative claim: GAN beats every handcrafted baseline,
	// random motion is the worst.
	if !(gan < single && gan < ulm && gan < random) {
		t.Fatalf("GAN %v not best (single %v, ulm %v, random %v)", gan, single, ulm, random)
	}
	if !(random > single && random > ulm) {
		t.Fatalf("random %v not worst (single %v, ulm %v)", random, single, ulm)
	}
	if len(r.RealSamples) == 0 || len(r.GANSamples) == 0 {
		t.Fatal("missing sample trajectories for Fig 12 left")
	}
}

func TestTable1JudgesAtChance(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the shared cGAN")
	}
	r := Table1(Quick(), 4)
	total := r.Table.RealReal + r.Table.RealFake + r.Table.FakeReal + r.Table.FakeFake
	if total != r.Judges*r.PerJudge {
		t.Fatalf("table total %d, want %d", total, r.Judges*r.PerJudge)
	}
	if !r.Independent {
		t.Fatalf("judges separated real from fake: chi2=%v p=%v table=%+v", r.Chi2, r.P, r.Table)
	}
	// Both perceived-real rates in a sane band around chance.
	realRate := float64(r.Table.RealReal) / float64(r.Table.RealReal+r.Table.RealFake)
	fakeRate := float64(r.Table.FakeReal) / float64(r.Table.FakeReal+r.Table.FakeFake)
	if math.Abs(realRate-fakeRate) > 0.25 {
		t.Fatalf("perceived-real rates diverge: real %v fake %v", realRate, fakeRate)
	}
}

func TestFig13LegitimateSensing(t *testing.T) {
	r, err := Fig13(5)
	if err != nil {
		t.Fatal(err)
	}
	if r.EavesdropperTracks < 2 {
		t.Fatalf("eavesdropper tracks %d, want >= 2", r.EavesdropperTracks)
	}
	if r.GhostTracksRemoved == 0 {
		t.Fatal("ghost not removed")
	}
	if r.HumanTracksKept == 0 {
		t.Fatal("human track lost")
	}
	if r.HumanError > 0.5 {
		t.Fatalf("kept human error %v m", r.HumanError)
	}
}

func TestFig14BreathingRates(t *testing.T) {
	r, err := Fig14(6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.HumanRate-r.TrueRate) > 0.05 {
		t.Fatalf("human rate %v, want %v", r.HumanRate, r.TrueRate)
	}
	if math.Abs(r.GhostRate-r.TrueRate) > 0.05 {
		t.Fatalf("ghost rate %v, want %v", r.GhostRate, r.TrueRate)
	}
	if len(r.HumanPhase) != len(r.GhostPhase) || len(r.HumanPhase) == 0 {
		t.Fatal("phase series lengths")
	}
}

func TestRunDispatcher(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("fig7", Quick(), 1, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
	if err := Run("nope", Quick(), 1, &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	names := Names()
	if len(names) != 13 {
		t.Fatalf("names = %v", names)
	}
}
