package experiments

import "testing"

func TestFloorPlanRepair(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the shared cGAN")
	}
	r, err := FloorPlan(Quick(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Total == 0 {
		t.Fatal("no trajectories evaluated")
	}
	if r.CrossingBefore == 0 {
		t.Fatal("expected some raw phantoms to cross walls (the motivation for §8)")
	}
	if r.CrossingAfter != 0 {
		t.Fatalf("%d trajectories still cross walls after repair", r.CrossingAfter)
	}
	// Repair must not destroy realism: FID within 2x of the raw value (it
	// often improves because detours look like purposeful walking).
	if r.FIDAfter > 2*r.FIDBefore+1 {
		t.Fatalf("repair wrecked realism: FID %v -> %v", r.FIDBefore, r.FIDAfter)
	}
}
