package experiments

import (
	"context"
	"errors"
	"io"
	"runtime"
	"testing"
	"time"
)

// TestRunCtxCanceledBeforeSweep: a pre-canceled ctx stops the "all" sweep
// before any experiment starts and returns the ctx error.
func TestRunCtxCanceledBeforeSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := RunCtx(ctx, "all", Quick(), 1, io.Discard)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx = %v, want context.Canceled", err)
	}
}

// TestRunCtxCancelMidSweep cancels while an experiment's capture is in
// flight: RunCtx must return ctx.Err() promptly with every experiment
// worker joined (checked by the goroutine count settling back to the
// pre-sweep baseline).
func TestRunCtxCancelMidSweep(t *testing.T) {
	before := runtime.NumGoroutine()

	// fig9 captures ~180 paper-scale frames, far longer than the cancel
	// delay, so cancellation lands mid-capture deterministically.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := RunCtx(ctx, "fig9", Quick(), 1, io.Discard)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx = %v, want context.Canceled", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatalf("cancellation took %v to propagate", time.Since(start))
	}

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("experiment workers leaked: %d goroutines before, %d after", before, after)
	}
}

// TestRunCtxBackgroundMatchesRun: with a live ctx, RunCtx is Run — same
// report bytes for a cheap experiment.
func TestRunCtxBackgroundMatchesRun(t *testing.T) {
	var a, b captureWriter
	if err := Run("fig7", Quick(), 1, &a); err != nil {
		t.Fatal(err)
	}
	if err := RunCtx(context.Background(), "fig7", Quick(), 1, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("RunCtx with a background ctx diverges from Run")
	}
}

type captureWriter struct{ buf []byte }

func (w *captureWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

func (w *captureWriter) String() string { return string(w.buf) }
