package experiments

import "testing"

func TestProbeDistinguishesDefenses(t *testing.T) {
	r, err := Probe(3)
	if err != nil {
		t.Fatal(err)
	}
	if !r.SpooferGhostSeen {
		t.Fatal("replay spoofer failed to spoof while radar on")
	}
	if !r.TagGhostSeen {
		t.Fatal("RF-Protect failed to spoof while radar on")
	}
	if !r.SpooferDetected {
		t.Fatal("probe missed the active replay spoofer")
	}
	if r.TagDetected {
		t.Fatal("probe falsely detected the passive RF-Protect tag")
	}
	if r.SpooferPeakPower <= r.TagPeakPower {
		t.Fatal("spoofer emissions should dominate the tag's silence")
	}
}
