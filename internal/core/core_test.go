package core

import (
	"bytes"
	"math/rand"
	"testing"

	"rfprotect/internal/fmcw"
	"rfprotect/internal/gan"
	"rfprotect/internal/geom"
	"rfprotect/internal/motion"
	"rfprotect/internal/radar"
	"rfprotect/internal/reflector"
	"rfprotect/internal/scene"
)

func tinyGAN() gan.Config {
	c := gan.DefaultConfig()
	c.Hidden = 16
	c.Batch = 8
	return c
}

func quickSystem(t *testing.T, pos geom.Point) *System {
	t.Helper()
	ganCfg := tinyGAN()
	sys, err := New(Config{
		TagPosition: pos,
		TagAxis:     0,
		GAN:         &ganCfg,
		CorpusSize:  100,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNewRejectsBadTag(t *testing.T) {
	bad := reflector.DefaultConfig(geom.Point{}, 0)
	bad.NumAntennas = 0
	if _, err := New(Config{Tag: &bad}); err == nil {
		t.Fatal("invalid tag config accepted")
	}
}

func TestSampleTrajectory(t *testing.T) {
	sys := quickSystem(t, geom.Point{X: 4, Y: 1})
	tr, err := sys.SampleTrajectory(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != motion.TraceLen {
		t.Fatalf("length %d", len(tr))
	}
	if _, err := sys.SampleTrajectory(-1); err == nil {
		t.Fatal("bad class accepted")
	}
	if _, err := sys.SampleTrajectory(motion.NumClasses); err == nil {
		t.Fatal("bad class accepted")
	}
}

func TestDeployGhostProducesDisclosure(t *testing.T) {
	sys := quickSystem(t, geom.Point{X: 4, Y: 1})
	rec, err := sys.DeployGhost(1, geom.Point{X: 0, Y: 3}, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Entries) == 0 || rec.Start != 2.0 {
		t.Fatalf("record %+v", rec)
	}
	if got := len(sys.Disclosures()); got != 1 {
		t.Fatalf("disclosures %d", got)
	}
	// The tag now reflects during the session.
	arr := fmcw.Array{Position: geom.Point{X: 4.5, Y: 0}, Facing: 1}
	if rets := sys.Tag().ReturnsAt(3.0, arr); len(rets) == 0 {
		t.Fatal("deployed ghost produces no returns")
	}
}

func TestDeployBreathingGhost(t *testing.T) {
	sys := quickSystem(t, geom.Point{X: 4, Y: 1})
	rec, err := sys.DeployBreathingGhost(1, 2.5, 0.25, 0.005, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Entries) < 100 {
		t.Fatalf("breathing record too short: %d", len(rec.Entries))
	}
}

func TestSaveLoadGenerator(t *testing.T) {
	sys := quickSystem(t, geom.Point{X: 4, Y: 1})
	var buf bytes.Buffer
	if err := sys.SaveGenerator(&buf); err != nil {
		t.Fatal(err)
	}
	sys2 := quickSystem(t, geom.Point{X: 4, Y: 1})
	if err := sys2.LoadGenerator(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestTrainGeneratorRuns(t *testing.T) {
	sys := quickSystem(t, geom.Point{X: 4, Y: 1})
	sys.TrainGenerator(nil, 2)
	if len(sys.Trainer().History) != 2 {
		t.Fatalf("history %d", len(sys.Trainer().History))
	}
	ds := motion.Generate(60, 5)
	sys.TrainGenerator(&ds, 1)
	if len(sys.Trainer().History) != 1 {
		t.Fatal("new dataset should reset the trainer")
	}
}

func TestLegitSensorFiltersGhost(t *testing.T) {
	// End to end Fig. 13: one real human + one ghost; the legitimate sensor
	// removes the disclosed ghost, the eavesdropper sees both.
	params := fmcw.DefaultParams()
	params.NoiseStd = 0.003
	sc := scene.NewScene(scene.HomeRoom(), params)
	sc.Multipath = false

	tagPos := geom.Point{X: sc.Radar.Position.X - 0.5, Y: 1.2}
	sys := quickSystem(t, tagPos)
	sc.Sources = []scene.ReturnSource{sys.Tag()}

	// Real human on the left.
	n := 80
	humanTraj := make(geom.Trajectory, n)
	for i := range humanTraj {
		f := float64(i) / float64(n-1)
		humanTraj[i] = geom.Point{X: 3 + 1.5*f, Y: 5 - 1.5*f}
	}
	sc.Humans = []*scene.Human{scene.NewHuman(humanTraj, params.FrameRate)}

	// Ghost on the right, programmed with radar knowledge (clean anchor).
	ghostTraj := make(geom.Trajectory, n)
	cx := sc.Radar.Position.X
	for i := range ghostTraj {
		f := float64(i) / float64(n-1)
		ghostTraj[i] = geom.Point{X: cx + 0.5 + 1.2*f, Y: 3 + 1.5*f}
	}
	rec, err := sys.Controller().ProgramForRadar(ghostTraj, sc.Radar, params.FrameRate, 0)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	frames := sc.Capture(0, n, rng)
	pr := radar.NewProcessor(radar.DefaultConfig())
	detSeq := pr.ProcessFrames(frames, sc.Radar)
	tracks := radar.TrackDetections(radar.TrackerConfig{}, detSeq)
	if len(tracks) < 2 {
		t.Fatalf("eavesdropper sees %d tracks, want >= 2 (human + ghost)", len(tracks))
	}

	legit := NewLegitSensor(sys.Tag().Config(), sc.Radar)
	humans, ghosts := legit.Filter(tracks, []reflector.GhostRecord{rec})
	if len(ghosts) == 0 {
		t.Fatal("legitimate sensor failed to identify the ghost")
	}
	if len(humans) == 0 {
		t.Fatal("legitimate sensor removed the real human too")
	}
	// The surviving human tracks must be near the human trajectory, not the
	// ghost's.
	for _, h := range humans {
		tr := h.Smoothed()
		if geom.MeanPointwiseError(tr, humanTraj) > geom.MeanPointwiseError(tr, ghostTraj) {
			t.Fatal("a ghost track survived filtering")
		}
	}
}

func TestLegitSensorKeepsUnmatchedTracks(t *testing.T) {
	tagCfg := reflector.DefaultConfig(geom.Point{X: 4, Y: 1}, 0)
	legit := NewLegitSensor(tagCfg, fmcw.Array{Position: geom.Point{X: 4.5, Y: 0}, Facing: 1})
	trk := &radar.Track{Confirmed: true}
	for i := 0; i < 20; i++ {
		trk.Points = append(trk.Points, radar.TimedPoint{
			Time: float64(i) * 0.05,
			Pos:  geom.Point{X: 2, Y: 2 + 0.05*float64(i)},
		})
	}
	humans, ghosts := legit.Filter([]*radar.Track{trk}, nil)
	if len(ghosts) != 0 || len(humans) != 1 {
		t.Fatal("track with no disclosures must be kept")
	}
}
