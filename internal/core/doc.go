// Package core is the top of the RF-Protect stack: it wires the trajectory
// generator (internal/gan over internal/motion) to the hardware tag
// (internal/reflector), manages ghost deployments, and implements the
// legitimate-sensor path (§11.3) that removes disclosed fake trajectories
// from tracking output.
//
// A typical deployment through the System API:
//
//	sys, _ := core.New(core.Config{TagPosition: wall, TagAxis: 0, Seed: 1})
//	sys.TrainGenerator(nil, 200)              // or sys.LoadGenerator(r)
//	rec, _ := sys.DeployGhost(2, anchor, 0)   // class-2 ghost at t=0
//	sc.Sources = append(sc.Sources, sys.Tag())
//
// # Sessions
//
// Session/SessionConfig is the one shared wiring point for the
// scene→tag→radar stack: NewSession assembles a room, an eavesdropper
// radar, and a tag already appended to the scene's sources, with
// ExtraRadars adding coordinated eavesdropper views that share the single
// tag (the §13 extended threat model). Every consumer of a full deployment
// — the experiments, the examples, the service layer behind rfprotectd —
// builds it through a Session so the assembly order (and therefore the
// bit-exact output for a given seed) is identical everywhere.
package core
