package core

import (
	"fmt"

	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
	"rfprotect/internal/reflector"
	"rfprotect/internal/scene"
)

// DefaultTagPosition returns the standard deployment of the reflector panel
// relative to an eavesdropper radar: broadside, ~1.2 m in front of the
// array and 0.5 m to the side, matching the paper's radar–reflector
// separation (§9.3). Every environment in the evaluation — experiments,
// examples, and the demo binaries — places its tag here unless it has a
// reason not to.
func DefaultTagPosition(radarArr fmcw.Array) geom.Point {
	return geom.Point{X: radarArr.Position.X - 0.5, Y: 1.2}
}

// SessionConfig describes one deployment to assemble: a room with an
// eavesdropper radar plus an RF-Protect tag wired into the scene. The zero
// value of every field selects the standard evaluation setup.
type SessionConfig struct {
	// Room is the environment (scene.HomeRoom(), scene.OfficeRoom(), ...).
	Room scene.Room
	// Params is the radar configuration; the zero value means
	// fmcw.DefaultParams().
	Params fmcw.Params
	// NoMultipath disables the scene's first-order wall multipath.
	NoMultipath bool
	// TagPosition / TagAxis place the reflector panel; a nil TagPosition
	// means DefaultTagPosition for the scene's radar.
	TagPosition *geom.Point
	TagAxis     float64
	// Tag overrides the full reflector configuration (TagPosition/TagAxis
	// are then ignored).
	Tag *reflector.Config
	// ConfigureTag, when non-nil, edits the effective reflector
	// configuration (default or override) before the tag is built — e.g.
	// flipping SSB for an ablation.
	ConfigureTag func(*reflector.Config)
	// ExtraRadars adds coordinated eavesdropper views: one additional scene
	// per array, sharing the room, radar parameters, multipath setting, and
	// the single tag (the paper's §13 extended threat model — the tag is
	// programmed against the primary radar and merely observed by the
	// others). Each view starts with the tag as its only source; humans and
	// clutter are per-scene and are wired by the caller, typically the same
	// *scene.Human pointers on every view.
	ExtraRadars []fmcw.Array
}

// Session is an assembled deployment: the scene with the tag already
// appended to its sources, plus the tag and its controller. It is the one
// shared wiring point for every consumer of the scene→tag→radar stack;
// construct one and program ghosts through Ctl (or a System from
// NewSystem), then capture via Scene or stream it through
// internal/pipeline.
type Session struct {
	Scene *scene.Scene
	Tag   *reflector.Reflector
	Ctl   *reflector.Controller
	// Views holds every radar's scene: Views[0] is Scene (the primary, with
	// the tag deployed relative to it), followed by one scene per
	// ExtraRadars entry in order. All views share the one Tag; captures are
	// independent per view (separate rngs, separate processors).
	Views []*scene.Scene
}

// NewSession assembles the standard deployment described by cfg.
func NewSession(cfg SessionConfig) (*Session, error) {
	params := cfg.Params
	if params == (fmcw.Params{}) {
		params = fmcw.DefaultParams()
	}
	sc := scene.NewScene(cfg.Room, params)
	if cfg.NoMultipath {
		sc.Multipath = false
	}
	var tagCfg reflector.Config
	if cfg.Tag != nil {
		tagCfg = *cfg.Tag
	} else {
		pos := DefaultTagPosition(sc.Radar)
		if cfg.TagPosition != nil {
			pos = *cfg.TagPosition
		}
		tagCfg = reflector.DefaultConfig(pos, cfg.TagAxis)
	}
	if cfg.ConfigureTag != nil {
		cfg.ConfigureTag(&tagCfg)
	}
	tag, err := reflector.New(tagCfg)
	if err != nil {
		return nil, fmt.Errorf("core: session: %w", err)
	}
	sc.Sources = append(sc.Sources, tag)
	s := &Session{Scene: sc, Tag: tag, Ctl: reflector.NewController(tag)}
	s.Views = append(s.Views, sc)
	for _, arr := range cfg.ExtraRadars {
		view := scene.NewScene(cfg.Room, params)
		if cfg.NoMultipath {
			view.Multipath = false
		}
		view.Radar = arr
		view.Sources = append(view.Sources, tag)
		s.Views = append(s.Views, view)
	}
	return s, nil
}

// NewSystem assembles a full RF-Protect System (trajectory generator +
// ghost management) that shares the session's tag and controller, so ghosts
// deployed through the System show up in the session's scene and
// disclosures. cfg's TagPosition/TagAxis/Tag fields are ignored — the
// session already owns the tag.
func (s *Session) NewSystem(cfg Config) *System {
	return newSystem(cfg, s.Tag, s.Ctl)
}
