package core

import (
	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
	"rfprotect/internal/radar"
	"rfprotect/internal/reflector"
)

// LegitSensor is an authorized FMCW sensor that has received the tag's
// calibration (antenna layout) and disclosure records, letting it remove
// fake trajectories from its tracking output while eavesdroppers cannot
// (§11.3, Fig. 13).
type LegitSensor struct {
	TagConfig reflector.Config
	Radar     fmcw.Array
	// MatchDistance is the mean track-to-disclosure distance (meters) below
	// which a track is declared fake (default 0.75).
	MatchDistance float64
	// MinOverlap is the minimum fraction of a track's points that must fall
	// inside a disclosure's time window to attempt a match (default 0.5).
	MinOverlap float64
}

// NewLegitSensor returns a sensor with default matching thresholds.
func NewLegitSensor(tagCfg reflector.Config, radarArr fmcw.Array) *LegitSensor {
	return &LegitSensor{
		TagConfig:     tagCfg,
		Radar:         radarArr,
		MatchDistance: 0.75,
		MinOverlap:    0.5,
	}
}

// expectedAt returns the disclosed ghost's expected observed position at
// time t for switching harmonic n (the primary ghost is n = 1; the square
// wave also images at n·Δd, which the sensor can predict from the same
// disclosure), and whether t falls inside the session.
func (l *LegitSensor) expectedAt(rec reflector.GhostRecord, t float64, n int) (geom.Point, bool) {
	if t < rec.Start {
		return geom.Point{}, false
	}
	i := int((t - rec.Start) / rec.Tick)
	if i >= len(rec.Entries) {
		return geom.Point{}, false
	}
	e := rec.Entries[i]
	p := l.TagConfig.AntennaPosition(e.Antenna)
	r := l.Radar.DistanceOf(p) + float64(n)*e.ExtraDistance
	return l.Radar.PointAt(r, l.Radar.AoAOf(p)), true
}

// IsFake reports whether a track matches any disclosure record: enough of
// its points overlap a session and their mean distance to the expected
// ghost position is below MatchDistance.
func (l *LegitSensor) IsFake(track *radar.Track, records []reflector.GhostRecord) bool {
	for _, rec := range records {
		// n=0 is the tag's own (static) reflection, n=1 the primary ghost,
		// n>1 the square-wave harmonic images — all predictable from the
		// disclosure plus the tag calibration.
		for n := 0; n <= 3; n++ {
			overlap := 0
			sum := 0.0
			for _, tp := range track.Points {
				want, ok := l.expectedAt(rec, tp.Time, n)
				if !ok {
					continue
				}
				overlap++
				sum += tp.Pos.Dist(want)
			}
			if overlap == 0 || float64(overlap) < l.MinOverlap*float64(len(track.Points)) {
				continue
			}
			if sum/float64(overlap) <= l.MatchDistance {
				return true
			}
		}
	}
	return false
}

// Filter splits tracks into genuine human tracks and disclosed ghosts.
func (l *LegitSensor) Filter(tracks []*radar.Track, records []reflector.GhostRecord) (humans, ghosts []*radar.Track) {
	for _, t := range tracks {
		if l.IsFake(t, records) {
			ghosts = append(ghosts, t)
		} else {
			humans = append(humans, t)
		}
	}
	return humans, ghosts
}
