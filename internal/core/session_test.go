package core

import (
	"testing"

	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
	"rfprotect/internal/reflector"
	"rfprotect/internal/scene"
)

func TestNewSessionDefaults(t *testing.T) {
	s, err := NewSession(SessionConfig{Room: scene.HomeRoom()})
	if err != nil {
		t.Fatal(err)
	}
	if s.Scene.Params != fmcw.DefaultParams() {
		t.Fatal("zero Params must default to fmcw.DefaultParams()")
	}
	if !s.Scene.Multipath {
		t.Fatal("multipath must default on")
	}
	want := geom.Point{X: s.Scene.Radar.Position.X - 0.5, Y: 1.2}
	if got := s.Tag.Config().Position; got != want {
		t.Fatalf("default tag position = %v, want the standard broadside deployment %v", got, want)
	}
	if got := DefaultTagPosition(s.Scene.Radar); got != want {
		t.Fatalf("DefaultTagPosition = %v, want %v", got, want)
	}
	if len(s.Scene.Sources) != 1 || s.Scene.Sources[0] != scene.ReturnSource(s.Tag) {
		t.Fatal("the tag must be wired into the scene's sources")
	}
	if s.Ctl == nil {
		t.Fatal("session must come with a controller")
	}
}

func TestNewSessionOverrides(t *testing.T) {
	pos := geom.Point{X: 1, Y: 2}
	s, err := NewSession(SessionConfig{
		Room:        scene.OfficeRoom(),
		NoMultipath: true,
		TagPosition: &pos,
		ConfigureTag: func(c *reflector.Config) {
			c.SSB = true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Scene.Multipath {
		t.Fatal("NoMultipath must disable scene multipath")
	}
	cfg := s.Tag.Config()
	if cfg.Position != pos {
		t.Fatalf("tag position = %v, want override %v", cfg.Position, pos)
	}
	if !cfg.SSB {
		t.Fatal("ConfigureTag hook must apply before the tag is built")
	}
}

func TestNewSessionTagConfigOverride(t *testing.T) {
	full := reflector.DefaultConfig(geom.Point{X: 3, Y: 1}, 0.5)
	full.NumAntennas = 4
	s, err := NewSession(SessionConfig{Room: scene.HomeRoom(), Tag: &full})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Tag.Config(); got.NumAntennas != 4 || got.Position != full.Position {
		t.Fatalf("full tag override not applied: %+v", got)
	}
}

func TestNewSessionInvalidTag(t *testing.T) {
	bad := reflector.DefaultConfig(geom.Point{}, 0)
	bad.NumAntennas = 0
	if _, err := NewSession(SessionConfig{Room: scene.HomeRoom(), Tag: &bad}); err == nil {
		t.Fatal("invalid tag config must surface the reflector error")
	}
}

func TestSessionNewSystemSharesTag(t *testing.T) {
	s, err := NewSession(SessionConfig{Room: scene.HomeRoom()})
	if err != nil {
		t.Fatal(err)
	}
	ganCfg := tinyGAN()
	sys := s.NewSystem(Config{GAN: &ganCfg, CorpusSize: 50, Seed: 1})
	if sys.Tag() != s.Tag {
		t.Fatal("System must reuse the session's tag instance")
	}
	if sys.Controller() != s.Ctl {
		t.Fatal("System must reuse the session's controller")
	}
	// A ghost deployed through the System must show up in the shared
	// controller's disclosure records.
	if _, err := sys.DeployBreathingGhost(1, 2.0, 0.25, 0.005, 5, 0); err != nil {
		t.Fatal(err)
	}
	if len(s.Ctl.Records()) != 1 {
		t.Fatalf("disclosures = %d records, want the System's ghost", len(s.Ctl.Records()))
	}
}

func TestNewSessionExtraRadars(t *testing.T) {
	room := scene.HomeRoom()
	arrB := fmcw.Array{
		Position:  geom.Point{X: 0, Y: room.Height / 2},
		AxisAngle: 1.5707963267948966,
		Facing:    -1,
	}
	s, err := NewSession(SessionConfig{Room: room, NoMultipath: true, ExtraRadars: []fmcw.Array{arrB}})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Views) != 2 {
		t.Fatalf("Views = %d scenes, want primary + 1 extra", len(s.Views))
	}
	if s.Views[0] != s.Scene {
		t.Fatal("Views[0] must be the primary scene")
	}
	b := s.Views[1]
	if b.Radar != arrB {
		t.Fatalf("extra view radar = %+v, want %+v", b.Radar, arrB)
	}
	if b.Params != s.Scene.Params {
		t.Fatal("extra view must share the primary's radar parameters")
	}
	if b.Multipath {
		t.Fatal("extra view must inherit NoMultipath")
	}
	if len(b.Sources) != 1 || b.Sources[0] != scene.ReturnSource(s.Tag) {
		t.Fatal("extra view must observe the one shared tag as its only source")
	}
	// The single-tag property the §13 experiment relies on: programming the
	// tag once is visible from every view, because it is the same reflector.
	if s.Views[1].Sources[0] != s.Views[0].Sources[0] {
		t.Fatal("views must share the tag instance, not copies")
	}
}

func TestNewSessionNoExtraRadars(t *testing.T) {
	s, err := NewSession(SessionConfig{Room: scene.HomeRoom()})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Views) != 1 || s.Views[0] != s.Scene {
		t.Fatal("without ExtraRadars, Views must hold exactly the primary scene")
	}
}
