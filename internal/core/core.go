package core

import (
	"fmt"
	"io"
	"math/rand"

	"rfprotect/internal/fmcw"
	"rfprotect/internal/gan"
	"rfprotect/internal/geom"
	"rfprotect/internal/motion"
	"rfprotect/internal/reflector"
)

// Config assembles an RF-Protect system.
type Config struct {
	// TagPosition / TagAxis place the reflector panel in the world.
	TagPosition geom.Point
	TagAxis     float64
	// Tag optionally overrides the full reflector configuration; when nil,
	// reflector.DefaultConfig(TagPosition, TagAxis) is used.
	Tag *reflector.Config
	// GAN optionally overrides the generator configuration.
	GAN *gan.Config
	// CorpusSize is the size of the synthetic training corpus used when
	// TrainGenerator is called with a nil dataset (default 2000).
	CorpusSize int
	// Seed drives all randomness in the system.
	Seed int64
}

// System is a deployed RF-Protect instance.
type System struct {
	cfg     Config
	tag     *reflector.Reflector
	ctl     *reflector.Controller
	trainer *gan.Trainer
	rng     *rand.Rand
}

// New assembles the system (tag + untrained generator).
func New(cfg Config) (*System, error) {
	tagCfg := reflector.DefaultConfig(cfg.TagPosition, cfg.TagAxis)
	if cfg.Tag != nil {
		tagCfg = *cfg.Tag
	}
	tag, err := reflector.New(tagCfg)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return newSystem(cfg, tag, reflector.NewController(tag)), nil
}

// newSystem assembles a System around an already-built tag and controller;
// it is shared by New (which builds its own tag) and Session.NewSystem
// (which reuses the session's).
func newSystem(cfg Config, tag *reflector.Reflector, ctl *reflector.Controller) *System {
	ganCfg := gan.DefaultConfig()
	if cfg.GAN != nil {
		ganCfg = *cfg.GAN
	}
	ganCfg.Seed = cfg.Seed + 1
	if cfg.CorpusSize <= 0 {
		cfg.CorpusSize = 2000
	}
	ds := motion.Generate(cfg.CorpusSize, cfg.Seed+2)
	return &System{
		cfg:     cfg,
		tag:     tag,
		ctl:     ctl,
		trainer: gan.NewTrainer(ganCfg, ds),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Tag returns the hardware reflector, which implements scene.ReturnSource.
func (s *System) Tag() *reflector.Reflector { return s.tag }

// Controller exposes the tag controller for advanced programming.
func (s *System) Controller() *reflector.Controller { return s.ctl }

// Trainer exposes the underlying GAN trainer.
func (s *System) Trainer() *gan.Trainer { return s.trainer }

// TrainGenerator trains the cGAN for the given number of steps on the
// system's corpus (ds == nil) or a caller-provided dataset.
func (s *System) TrainGenerator(ds *motion.Dataset, steps int) {
	if ds != nil {
		cfg := s.trainer.Cfg
		s.trainer = gan.NewTrainer(cfg, *ds)
	}
	s.trainer.Train(steps, 0, nil)
}

// SaveGenerator / LoadGenerator persist the trained networks.
func (s *System) SaveGenerator(w io.Writer) error { return s.trainer.Save(w) }

// LoadGenerator restores networks saved by SaveGenerator.
func (s *System) LoadGenerator(r io.Reader) error { return s.trainer.Load(r) }

// SampleTrajectory draws one generated trajectory of the given range class
// (0..motion.NumClasses-1), anchored at the origin.
func (s *System) SampleTrajectory(class int) (geom.Trajectory, error) {
	if class < 0 || class >= motion.NumClasses {
		return nil, fmt.Errorf("core: class %d out of range [0, %d)", class, motion.NumClasses)
	}
	trs := s.trainer.G.Generate(1, class, s.rng)
	return trs[0], nil
}

// DeployGhost samples a class trajectory, anchors its start at the given
// point relative to the tag, and programs it radar-agnostically
// (ProgramLocal). It returns the disclosure record.
func (s *System) DeployGhost(class int, anchor geom.Point, start float64) (reflector.GhostRecord, error) {
	tr, err := s.SampleTrajectory(class)
	if err != nil {
		return reflector.GhostRecord{}, err
	}
	return s.ctl.ProgramLocal(tr.Translate(anchor), motion.SampleRate, start)
}

// DeployGhostCalibrated anchors a sampled trajectory at a world position
// and programs it against a known radar geometry (the evaluation setup).
func (s *System) DeployGhostCalibrated(class int, anchor geom.Point, radar fmcw.Array, start float64) (reflector.GhostRecord, geom.Trajectory, error) {
	tr, err := s.SampleTrajectory(class)
	if err != nil {
		return reflector.GhostRecord{}, nil, err
	}
	world := tr.Translate(anchor)
	rec, err := s.ctl.ProgramForRadar(world, radar, motion.SampleRate, start)
	return rec, world, err
}

// DeployBreathingGhost programs a stationary breathing phantom (§11.4).
func (s *System) DeployBreathingGhost(antenna int, extraDistance, rate, amplitude, duration, start float64) (reflector.GhostRecord, error) {
	return s.ctl.ProgramBreathing(antenna, extraDistance, rate, amplitude, duration, start)
}

// Disclosures returns the records of every deployed ghost, the information
// shared with legitimate sensors.
func (s *System) Disclosures() []reflector.GhostRecord { return s.ctl.Records() }
