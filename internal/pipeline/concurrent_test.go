package pipeline

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"rfprotect/internal/fmcw"
	"rfprotect/internal/radar"
)

// chainOutputs is everything the full stage chain produces over a capture,
// gathered so the sequential and concurrent runs can be compared field by
// field.
type chainOutputs struct {
	frames     int
	dets       [][]radar.Detection
	profiles   []*radar.Profile
	tracks     []*radar.Track
	times      []float64
	phase      []float64
	dopplerMap *radar.RangeDopplerMap
}

// dopplerCollector keeps the last range–Doppler map seen (maps are
// recomputed every frame once the window fills; the last one summarizes the
// capture for equivalence checks).
type dopplerCollector struct {
	last *radar.RangeDopplerMap
}

func (c *dopplerCollector) Name() string { return "collect-doppler" }

func (c *dopplerCollector) Process(ctx context.Context, it *Item) error {
	if it.RangeDoppler != nil {
		c.last = it.RangeDoppler
	}
	return nil
}

// runChain executes the full eavesdropper chain — front end, Doppler,
// velocity-aware tracking, breathing, collectors — over a fresh capture of
// nFrames, sequentially (depth == 0) or concurrently with the given channel
// depth.
func runChain(t *testing.T, nFrames, depth int) chainOutputs {
	t.Helper()
	s := testSession(t)
	breathDist := s.Scene.Radar.DistanceOf(s.Tag.Config().AntennaPosition(1))
	pr := radar.NewProcessor(radar.DefaultConfig())
	profsC := NewCollectProfiles()
	detsC := NewCollectDetections()
	dopC := &dopplerCollector{}
	trk := NewTrackWithVelocity(radar.TrackerConfig{}, s.Scene.Radar)
	breath := NewBreathingPhase(radar.BreathingExtractor{}, breathDist)
	stages := append(FrontEndStages(pr, s.Scene.Radar),
		NewDoppler(pr, 8, 0), profsC, detsC, dopC, trk, breath)
	p := New(s.Scene.Stream(0, nFrames, rand.New(rand.NewSource(17))), stages...)
	var n int
	var err error
	if depth == 0 {
		n, err = p.Run(context.Background())
	} else {
		n, err = p.RunConcurrent(context.Background(), depth)
	}
	if err != nil {
		t.Fatal(err)
	}
	times, phase := breath.Series()
	return chainOutputs{
		frames:     n,
		dets:       detsC.Detections(),
		profiles:   profsC.Profiles(),
		tracks:     trk.Tracks(),
		times:      times,
		phase:      phase,
		dopplerMap: dopC.last,
	}
}

// TestConcurrentEquivalentToSequential is the golden contract of the
// concurrent scheduler: for every channel depth and capture length, the
// stage-overlapped run produces bit-identical output to the sequential one
// — detections, profiles, tracks (positions and velocities), breathing
// phase, and the final range–Doppler map.
func TestConcurrentEquivalentToSequential(t *testing.T) {
	depths := []int{1, 2, runtime.NumCPU()}
	for _, nFrames := range []int{1, 7, 64} {
		want := runChain(t, nFrames, 0)
		if want.frames != nFrames {
			t.Fatalf("sequential run processed %d frames, want %d", want.frames, nFrames)
		}
		seen := map[int]bool{}
		for _, depth := range depths {
			if depth < 1 || seen[depth] {
				continue
			}
			seen[depth] = true
			t.Run(fmt.Sprintf("frames-%d-depth-%d", nFrames, depth), func(t *testing.T) {
				got := runChain(t, nFrames, depth)
				if got.frames != want.frames {
					t.Fatalf("concurrent processed %d frames, want %d", got.frames, want.frames)
				}
				if !reflect.DeepEqual(got.dets, want.dets) {
					t.Fatal("detection sequences differ from sequential run")
				}
				if len(got.profiles) != len(want.profiles) {
					t.Fatalf("profile count %d != %d", len(got.profiles), len(want.profiles))
				}
				for i := range want.profiles {
					if !reflect.DeepEqual(got.profiles[i].Power, want.profiles[i].Power) {
						t.Fatalf("profile %d differs from sequential run", i)
					}
				}
				if len(got.tracks) != len(want.tracks) {
					t.Fatalf("track count %d != %d", len(got.tracks), len(want.tracks))
				}
				for i := range want.tracks {
					w, g := want.tracks[i], got.tracks[i]
					if g.ID != w.ID || g.Confirmed != w.Confirmed ||
						g.HasVelocity != w.HasVelocity || g.RadialVelocity != w.RadialVelocity ||
						!reflect.DeepEqual(g.Points, w.Points) {
						t.Fatalf("track %d differs from sequential run", i)
					}
				}
				if !reflect.DeepEqual(got.times, want.times) || !reflect.DeepEqual(got.phase, want.phase) {
					t.Fatal("breathing-phase series differs from sequential run")
				}
				switch {
				case (got.dopplerMap == nil) != (want.dopplerMap == nil):
					t.Fatal("range–Doppler map presence differs from sequential run")
				case got.dopplerMap != nil && !reflect.DeepEqual(got.dopplerMap.Power, want.dopplerMap.Power):
					t.Fatal("range–Doppler map differs from sequential run")
				}
			})
		}
	}
}

// TestConcurrentCancelNoLeak cancels an unbounded concurrent capture
// mid-stream: RunConcurrent must return context.Canceled with every stage
// goroutine joined and no goroutines left behind.
func TestConcurrentCancelNoLeak(t *testing.T) {
	s := testSession(t)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	trk := NewTrack(radar.TrackerConfig{})
	pr := radar.NewProcessor(radar.DefaultConfig())
	stages := append(FrontEndStages(pr, s.Scene.Radar),
		NewDoppler(pr, 8, 0), trk, &cancelAfter{n: 3, cancel: cancel})
	p := New(s.Scene.Stream(0, -1, rand.New(rand.NewSource(2))), stages...)
	frames, err := p.RunConcurrent(ctx, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunConcurrent = %v, want context.Canceled", err)
	}
	if frames < 3 {
		t.Fatalf("completed %d frames before cancel, want >= 3", frames)
	}

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutine leak: %d before, %d after canceled concurrent run", before, after)
	}
}

// TestConcurrentCancelBeforeStart returns ctx.Err with zero frames.
func TestConcurrentCancelBeforeStart(t *testing.T) {
	s := testSession(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := New(s.Scene.Stream(0, 10, rand.New(rand.NewSource(2))),
		FrontEndStages(radar.NewProcessor(radar.DefaultConfig()), s.Scene.Radar)...)
	frames, err := p.RunConcurrent(ctx, 4)
	if !errors.Is(err, context.Canceled) || frames != 0 {
		t.Fatalf("RunConcurrent = (%d, %v), want (0, context.Canceled)", frames, err)
	}
}

// TestConcurrentStageErrorTagged verifies a stage error aborts the
// concurrent run, joins everything, and stays matchable through the tag.
func TestConcurrentStageErrorTagged(t *testing.T) {
	boom := errors.New("boom")
	frames := []*fmcw.Frame{
		fmcw.NewFrame(fmcw.DefaultParams(), 0),
		fmcw.NewFrame(fmcw.DefaultParams(), 1),
		fmcw.NewFrame(fmcw.DefaultParams(), 2),
	}
	before := runtime.NumGoroutine()
	_, err := New(FromFrames(frames), failStage{err: boom}).RunConcurrent(context.Background(), 2)
	if !errors.Is(err, boom) {
		t.Fatalf("RunConcurrent = %v, want wrapped boom", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutine leak after stage error: %d before, %d after", before, after)
	}
}

// errAfterSource fails with its error after emitting n frames.
type errAfterSource struct {
	n    int
	i    int
	err  error
	base fmcw.Params
}

func (s *errAfterSource) Next(ctx context.Context) (*fmcw.Frame, error) {
	if s.i >= s.n {
		return nil, s.err
	}
	f := fmcw.NewFrame(s.base, float64(s.i))
	s.i++
	return f, nil
}

// TestConcurrentSourceError propagates a mid-stream source failure.
func TestConcurrentSourceError(t *testing.T) {
	broken := errors.New("antenna unplugged")
	src := &errAfterSource{n: 4, err: broken, base: fmcw.DefaultParams()}
	n, err := New(src, NewBackgroundSubtract()).RunConcurrent(context.Background(), 2)
	if !errors.Is(err, broken) {
		t.Fatalf("RunConcurrent = %v, want the source error", err)
	}
	if n > 4 {
		t.Fatalf("counted %d frames, only 4 were emitted", n)
	}
}

// TestConcurrentNoStages falls back to the sequential drain and still
// counts frames.
func TestConcurrentNoStages(t *testing.T) {
	frames := []*fmcw.Frame{
		fmcw.NewFrame(fmcw.DefaultParams(), 0),
		fmcw.NewFrame(fmcw.DefaultParams(), 1),
	}
	n, err := New(FromFrames(frames)).RunConcurrent(context.Background(), 3)
	if err != nil || n != 2 {
		t.Fatalf("RunConcurrent = (%d, %v), want (2, nil)", n, err)
	}
}

// TestPacedSourceRate checks that a paced stream takes at least
// (n-1)/frameRate of wall clock and that an unpaced wrapper passes through.
func TestPacedSourceRate(t *testing.T) {
	mk := func() []*fmcw.Frame {
		p := fmcw.DefaultParams()
		return []*fmcw.Frame{fmcw.NewFrame(p, 0), fmcw.NewFrame(p, 1), fmcw.NewFrame(p, 2), fmcw.NewFrame(p, 3)}
	}
	const rate = 200.0 // 5 ms per frame
	src := NewPaced(FromFrames(mk()), rate)
	start := time.Now()
	n := 0
	for {
		_, err := src.Next(context.Background())
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 4 {
		t.Fatalf("paced source emitted %d frames, want 4", n)
	}
	if min := 3 * time.Second / 200; time.Since(start) < min {
		t.Fatalf("4 frames at %v Hz took %v, want >= %v", rate, time.Since(start), min)
	}
	// frameRate <= 0 disables pacing entirely.
	fast := NewPaced(FromFrames(mk()), 0)
	start = time.Now()
	for i := 0; i < 4; i++ {
		if _, err := fast.Next(nil); err != nil {
			t.Fatal(err)
		}
	}
	if time.Since(start) > time.Second {
		t.Fatal("unpaced source should not wait")
	}
}

// TestPacedSourceCancelDuringWait interrupts the inter-frame wait.
func TestPacedSourceCancelDuringWait(t *testing.T) {
	p := fmcw.DefaultParams()
	src := NewPaced(FromFrames([]*fmcw.Frame{fmcw.NewFrame(p, 0), fmcw.NewFrame(p, 1)}), 0.5) // 2 s interval
	ctx, cancel := context.WithCancel(context.Background())
	if _, err := src.Next(ctx); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := src.Next(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Next = %v, want context.Canceled", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("cancellation did not interrupt the pacing wait")
	}
}
