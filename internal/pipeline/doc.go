// Package pipeline runs the scene→fmcw→radar→tracker chain as a streaming
// pipeline: a Source emits one *fmcw.Frame at a time and a chain of
// composable Stages processes each frame before the next is synthesized, so
// a capture of any length runs with O(1) frames in flight (plus the one
// frame of background-subtraction history inside radar.FrontEnd). A
// context.Context threads through the source and every stage, so a capture
// can be canceled or timed out mid-stream.
//
// The contract with the batch path is strict equivalence: for the same
// scene, seed, and configuration, streaming a capture frame by frame
// produces bit-identical frames, profiles, detections, tracks, and
// breathing-phase series to Scene.Capture + Processor.ProcessFrames +
// radar.TrackDetections + BreathingExtractor.PhaseSeries. That holds by
// construction — the batch functions are thin wrappers over the same
// per-frame step APIs the stages call (scene.FrameStream, radar.FrontEnd,
// radar.PhaseStream) — and is enforced by the golden equivalence test in
// this package. DESIGN.md ("Streaming pipeline") documents the stage graph
// and cancellation semantics.
//
// # Execution modes
//
// Run drives the chain sequentially on the caller's goroutine;
// RunConcurrent gives every stage its own goroutine connected by bounded
// channels, overlapping stage N of frame i with stage 1 of frame i+k while
// preserving bit-identical output and delivery order. Both share the same
// error and cancellation semantics.
//
// # Steady-state allocation
//
// A pooled assembly — scene.FrameStream.UsePool + FrontEndStagesPooled +
// Pipeline.UsePools — recycles every buffer (frames, diffs, profiles,
// Doppler maps) through Pools, and the pipeline recycles its per-frame Item
// records through an internal free list, so the steady-state frame path of
// Run allocates exactly nothing (enforced by an AllocsPerRun test). Buffer
// ownership follows DESIGN.md "Buffer ownership & pooling": the pipeline
// recycles at the sink, error-path buffers fall to the GC.
//
// A typical assembly:
//
//	pr := radar.NewProcessor(radar.DefaultConfig())
//	trk := pipeline.NewTrack(radar.TrackerConfig{})
//	stages := append(pipeline.FrontEndStages(pr, sc.Radar), trk)
//	p := pipeline.New(sc.Stream(0, nFrames, rng), stages...)
//	if _, err := p.Run(ctx); err != nil { ... }
//	tracks := trk.Tracks()
package pipeline
