package pipeline

import (
	"context"
	"io"
	"testing"

	"rfprotect/internal/fmcw"
)

// loopSource replays one caller-owned frame n times without allocating —
// the minimal Source for isolating the pipeline machinery's own per-frame
// cost from synthesis and DSP.
type loopSource struct {
	f    *fmcw.Frame
	n, i int
}

func (s *loopSource) Next(ctx context.Context) (*fmcw.Frame, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	if s.i >= s.n {
		return nil, io.EOF
	}
	s.i++
	return s.f, nil
}

func (s *loopSource) reset() { s.i = 0 }

// nopStage touches the item without retaining it.
type nopStage struct{ frames int }

func (s *nopStage) Name() string { return "nop" }
func (s *nopStage) Process(ctx context.Context, it *Item) error {
	s.frames++
	return nil
}

// TestRunItemFreeListAllocsPerRun pins the Item free list's contract: after
// warm-up, Run's per-frame machinery — source pull, Item checkout, stage
// dispatch, recycle, Item return — allocates exactly nothing. Before the
// free list, every frame allocated one Item; this test is the regression
// guard that keeps the steady-state frame path allocation-free end to end.
func TestRunItemFreeListAllocsPerRun(t *testing.T) {
	src := &loopSource{f: fmcw.NewFrame(fmcw.DefaultParams(), 0), n: 16}
	p := New(src, &nopStage{})
	// Warm-up: materialize the one steady-state Item.
	if _, err := p.Run(nil); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		src.reset()
		if _, err := p.Run(nil); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("steady-state Run allocates %.1f objects per 16-frame run, want exactly 0", allocs)
	}
}

// TestRunConcurrentReusesItems asserts the free list actually feeds
// RunConcurrent too: across repeated runs the pipeline's checkout count
// stays bounded by the in-flight window instead of growing with frames.
func TestRunConcurrentReusesItems(t *testing.T) {
	src := &loopSource{f: fmcw.NewFrame(fmcw.DefaultParams(), 0), n: 64}
	st := &nopStage{}
	p := New(src, st)
	for run := 0; run < 3; run++ {
		src.reset()
		if _, err := p.RunConcurrent(context.Background(), 2); err != nil {
			t.Fatal(err)
		}
	}
	if st.frames != 3*64 {
		t.Fatalf("stage saw %d frames, want %d", st.frames, 3*64)
	}
	p.itemMu.Lock()
	free := len(p.itemFree)
	p.itemMu.Unlock()
	// Window bound: stages+1 channels of depth 2, plus one per goroutine in
	// flight. With 1 stage and depth 2 the hard ceiling is a handful; 64
	// would mean the free list isn't being reused.
	if free == 0 || free > 8 {
		t.Fatalf("free list holds %d items after 3 runs of 64 frames; want a small in-flight window (1..8)", free)
	}
}
