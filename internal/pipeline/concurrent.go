package pipeline

import (
	"context"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// RunConcurrent drains the source through the stage chain with every stage
// running in its own goroutine, connected by bounded channels of the given
// depth (depth <= 0 means 1): stage N of frame i overlaps stage 1 of frame
// i+k, so a capture's throughput approaches the cost of the slowest stage
// instead of the sum of all stages. Like Run, it returns the number of
// frames that completed every stage and the first error.
//
// The output contract is strict: delivery order and results are
// bit-identical to Run. That holds by construction — each stage is a single
// goroutine consuming its input channel in FIFO order, so every stage still
// sees frames 0, 1, 2, … in sequence and its cross-frame state (background
// history, tracker, unwrap offset, Doppler window) evolves exactly as in
// the sequential run; channel hand-off provides the happens-before edge
// that makes earlier stages' Item writes visible downstream. The only
// differences are cost and footprint: up to (stages+1)·depth frames are in
// flight instead of one.
//
// Backpressure is the channel bound: a slow stage fills its input channel
// and stalls the stages (and source) upstream of it, so memory stays
// bounded no matter how mismatched stage costs are.
//
// Errors and cancellation follow Run's semantics. A stage or source error
// stops the source, drains every channel without further processing, joins
// all goroutines, and returns the error that a sequential run would have
// hit first (smallest frame index, then earliest stage). A done ctx stops
// the run the same way with ctx.Err(); no goroutines outlive the call.
func (p *Pipeline) RunConcurrent(ctx context.Context, depth int) (frames int, err error) {
	if len(p.stages) == 0 {
		// No stages means nothing to overlap; the sequential loop is the
		// same machine with less plumbing.
		return p.Run(ctx)
	}
	if depth <= 0 {
		depth = 1
	}

	// failure collects every error with its sequential-order coordinates so
	// the winner — the error a sequential run would have returned — can be
	// picked after all goroutines join.
	type failure struct {
		frame, stage int // stage -1 is the source
		err          error
	}
	var (
		failMu sync.Mutex
		fails  []failure
		failed atomic.Bool
	)
	fail := func(frame, stage int, err error) {
		failMu.Lock()
		fails = append(fails, failure{frame: frame, stage: stage, err: err})
		failMu.Unlock()
		failed.Store(true)
	}

	chans := make([]chan *Item, len(p.stages)+1)
	for i := range chans {
		chans[i] = make(chan *Item, depth)
	}

	var wg sync.WaitGroup
	// Source goroutine: the only consumer of p.src, pulling frames in the
	// same order and with the same pre-pull ctx check as Run, so rng
	// consumption inside the source is identical to the sequential path.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(chans[0])
		for i := 0; ; i++ {
			if failed.Load() {
				return
			}
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					fail(i, -1, err)
					return
				}
			}
			f, err := p.src.Next(ctx)
			if err == io.EOF {
				return
			}
			if err != nil {
				fail(i, -1, err)
				return
			}
			chans[0] <- p.getItem(i, f)
		}
	}()
	// One goroutine per stage: receive, process, forward. After a failure
	// anywhere, stages keep draining their input (so upstream sends never
	// block) but stop processing and forwarding, which lets the whole
	// chain empty out and close down without an internal cancellation
	// context — Process never sees a cancel the caller didn't request.
	for s, st := range p.stages {
		wg.Add(1)
		go func(s int, st Stage) {
			defer wg.Done()
			defer close(chans[s+1])
			for it := range chans[s] {
				if failed.Load() {
					continue
				}
				if err := st.Process(ctx, it); err != nil {
					fail(it.Index, s, stageError{stage: st.Name(), err: err})
					continue
				}
				chans[s+1] <- it
			}
		}(s, st)
	}
	// The caller's goroutine is the sink: counting the final channel both
	// measures completed frames and guarantees the last stage never blocks.
	// It is also the one place an item is provably past its last stage, so
	// pooled buffers are recycled here; items dropped by the failure drain
	// above never arrive and their buffers fall to the GC instead of a pool
	// (a bounded, benign leak on the abort path).
	for it := range chans[len(p.stages)] {
		frames++
		p.recycle(it)
		p.putItem(it)
	}
	wg.Wait()

	if len(fails) == 0 {
		return frames, nil
	}
	sort.Slice(fails, func(i, j int) bool {
		if fails[i].frame != fails[j].frame {
			return fails[i].frame < fails[j].frame
		}
		return fails[i].stage < fails[j].stage
	})
	return frames, fails[0].err
}
