package pipeline

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"rfprotect/internal/fmcw"
	"rfprotect/internal/radar"
)

// fuzzParams keeps fuzz iterations cheap: 32 IF samples, 2 antennas,
// noiseless.
func fuzzParams() fmcw.Params {
	p := fmcw.DefaultParams()
	p.SampleRate = 32e3
	p.ChirpDuration = 1e-3 // 32 samples per chirp
	p.NumAntennas = 2
	p.NoiseStd = 0
	return p
}

// fuzzFrames synthesizes n tiny frames with one moving scatterer so every
// stage has real signal to chew on.
func fuzzFrames(n int) []*fmcw.Frame {
	p := fuzzParams()
	out := make([]*fmcw.Frame, n)
	for i := range out {
		t := float64(i) / p.FrameRate
		d := 3.0 - 0.5*t
		ret := fmcw.Return{Delay: 2 * d / fmcw.C, Amplitude: 1, AoA: math.Pi / 2}
		out[i] = fmcw.SynthesizeWorkers(p, []fmcw.Return{ret}, t, nil, 1)
	}
	return out
}

// fuzzStages decodes a stage chain from fuzz bytes: each byte selects one
// stage from a palette of every composable stage in the package, in any
// order, duplicates allowed. A fresh chain is built per call because stages
// hold cross-frame state.
func fuzzStages(order []byte, array fmcw.Array) []Stage {
	pr := radar.NewProcessor(radar.DefaultConfig())
	var stages []Stage
	for _, b := range order {
		switch b % 8 {
		case 0:
			stages = append(stages, NewBackgroundSubtract())
		case 1:
			stages = append(stages, NewRangeAngle(pr))
		case 2:
			stages = append(stages, NewPeakExtract(pr, array))
		case 3:
			stages = append(stages, NewTrack(radar.TrackerConfig{}))
		case 4:
			stages = append(stages, NewDoppler(pr, 3, 0))
		case 5:
			stages = append(stages, NewBreathingPhase(radar.BreathingExtractor{}, 2))
		case 6:
			stages = append(stages, NewCollectProfiles())
		case 7:
			stages = append(stages, NewTrackWithVelocity(radar.TrackerConfig{}, array))
		}
		if len(stages) == 8 {
			break
		}
	}
	return stages
}

// FuzzStageComposition drives random stage orderings and frame counts
// through both schedulers: any composition must complete without panics or
// deadlocks, deliver every frame, and produce identical detection
// sequences sequentially and concurrently. Run with
//
//	go test -fuzz FuzzStageComposition -fuzztime 10s ./internal/pipeline
//
// for a bounded CI exploration; the seed corpus below runs on every plain
// `go test`.
func FuzzStageComposition(f *testing.F) {
	f.Add(uint8(1), uint8(1), []byte{0})
	f.Add(uint8(5), uint8(1), []byte{0, 1, 2, 3})
	f.Add(uint8(7), uint8(2), []byte{0, 1, 2, 4, 7})
	f.Add(uint8(9), uint8(3), []byte{4, 4, 0, 5})
	f.Add(uint8(12), uint8(4), []byte{2, 1, 0, 3, 6})    // out-of-order front end
	f.Add(uint8(3), uint8(2), []byte{5, 5, 5})           // duplicate stateful stages
	f.Add(uint8(16), uint8(8), []byte{0, 1, 6, 2, 3, 4}) // deep buffers
	f.Add(uint8(0), uint8(1), []byte{0, 1, 2})           // zero frames
	f.Add(uint8(4), uint8(2), []byte{})                  // zero stages
	f.Add(uint8(20), uint8(1), []byte{7, 0, 1, 2, 4, 5}) // velocity chain, depth 1
	f.Fuzz(func(t *testing.T, nFrames, depth uint8, order []byte) {
		n := int(nFrames) % 21
		d := int(depth)%8 + 1
		array := fmcw.Array{}
		frames := fuzzFrames(n)

		run := func(concurrent bool) (int, [][]radar.Detection, error) {
			stages := fuzzStages(order, array)
			dets := NewCollectDetections()
			stages = append(stages, dets)
			p := New(FromFrames(frames), stages...)
			var got int
			var err error
			done := make(chan struct{})
			go func() {
				defer close(done)
				if concurrent {
					got, err = p.RunConcurrent(context.Background(), d)
				} else {
					got, err = p.Run(context.Background())
				}
			}()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				t.Fatalf("pipeline deadlocked (concurrent=%v, frames=%d, depth=%d, order=%v)",
					concurrent, n, d, order)
			}
			return got, dets.Detections(), err
		}

		seqN, seqDets, seqErr := run(false)
		conN, conDets, conErr := run(true)
		if seqErr != nil || conErr != nil {
			t.Fatalf("pipeline errored: sequential %v, concurrent %v", seqErr, conErr)
		}
		if seqN != n || conN != n {
			t.Fatalf("dropped frames: sequential %d, concurrent %d, want %d", seqN, conN, n)
		}
		if !reflect.DeepEqual(seqDets, conDets) {
			t.Fatalf("concurrent detections diverge from sequential (frames=%d, depth=%d, order=%v)",
				n, d, order)
		}

		// Mid-capture cancellation must also never deadlock or leak: cancel
		// at a pseudo-random frame derived from the inputs.
		if n > 0 {
			stages := fuzzStages(order, array)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			after := rand.New(rand.NewSource(int64(n*31+d))).Intn(n) + 1
			stages = append(stages, &cancelAfter{n: after, cancel: cancel})
			p := New(FromFrames(frames), stages...)
			done := make(chan struct{})
			go func() {
				defer close(done)
				p.RunConcurrent(ctx, d) //nolint:errcheck // any ctx/nil outcome is fine; liveness is the property
			}()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				t.Fatalf("canceled pipeline deadlocked (frames=%d, depth=%d, order=%v)", n, d, order)
			}
		}
	})
}
