package pipeline

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"rfprotect/internal/core"
	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
	"rfprotect/internal/radar"
	"rfprotect/internal/scene"
)

// testSession builds the standard deployment with one walking human and one
// programmed ghost, so the equivalence test exercises humans, multipath,
// speckle, reflector switching, and noise at once.
func testSession(t *testing.T) *core.Session {
	t.Helper()
	s, err := core.NewSession(core.SessionConfig{Room: scene.HomeRoom()})
	if err != nil {
		t.Fatal(err)
	}
	cx := s.Scene.Radar.Position.X
	n := 40
	human := make(geom.Trajectory, n)
	ghost := make(geom.Trajectory, n)
	for i := range human {
		f := float64(i) / float64(n-1)
		human[i] = geom.Point{X: cx - 3 + 2*f, Y: 4.5 - f}
		ghost[i] = geom.Point{X: cx + 0.3 + f, Y: 2.7 + 1.5*f}
	}
	s.Scene.Humans = []*scene.Human{scene.NewHuman(human, s.Scene.Params.FrameRate)}
	if _, err := s.Ctl.ProgramForRadar(ghost, s.Scene.Radar, s.Scene.Params.FrameRate, 0); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestStreamingEquivalentToBatch is the golden contract of the streaming
// pipeline: for the same scene and seed, streaming frame by frame produces
// bit-identical frames, range–angle profiles, detections, tracks, and
// breathing-phase series to the batch path.
func TestStreamingEquivalentToBatch(t *testing.T) {
	const nFrames = 30
	const seed = 9
	s := testSession(t)
	breathDist := s.Scene.Radar.DistanceOf(s.Tag.Config().AntennaPosition(1))

	// --- Batch path: capture everything, then process.
	batchFrames := s.Scene.Capture(0, nFrames, rand.New(rand.NewSource(seed)))
	pr := radar.NewProcessor(radar.DefaultConfig())
	batchDets := pr.ProcessFrames(batchFrames, s.Scene.Radar)
	batchTracks := radar.TrackDetections(radar.TrackerConfig{}, batchDets)
	var batchProfiles []*radar.Profile
	prP := radar.NewProcessor(radar.DefaultConfig())
	for i := 1; i < len(batchFrames); i++ {
		batchProfiles = append(batchProfiles, prP.RangeAngle(radar.BackgroundSubtract(batchFrames[i], batchFrames[i-1])))
	}
	batchTimes, batchPhase := radar.BreathingExtractor{}.PhaseSeries(batchFrames, breathDist)

	// --- Streaming path: one frame in flight through the full stage chain.
	framesC := NewCollectFrames()
	profsC := NewCollectProfiles()
	detsC := NewCollectDetections()
	trk := NewTrack(radar.TrackerConfig{})
	breath := NewBreathingPhase(radar.BreathingExtractor{}, breathDist)
	stages := append([]Stage{framesC}, FrontEndStages(radar.NewProcessor(radar.DefaultConfig()), s.Scene.Radar)...)
	stages = append(stages, profsC, detsC, trk, breath)
	p := New(s.Scene.Stream(0, nFrames, rand.New(rand.NewSource(seed))), stages...)
	n, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != nFrames {
		t.Fatalf("streamed %d frames, want %d", n, nFrames)
	}

	// Frames: bit-identical synthesis.
	streamFrames := framesC.Frames()
	if len(streamFrames) != len(batchFrames) {
		t.Fatalf("frame count %d != %d", len(streamFrames), len(batchFrames))
	}
	for i := range batchFrames {
		if streamFrames[i].Time != batchFrames[i].Time {
			t.Fatalf("frame %d time %v != %v", i, streamFrames[i].Time, batchFrames[i].Time)
		}
		if !reflect.DeepEqual(streamFrames[i].Data, batchFrames[i].Data) {
			t.Fatalf("frame %d samples differ between streaming and batch", i)
		}
	}

	// Profiles: bit-identical range–angle power maps.
	streamProfiles := profsC.Profiles()
	if len(streamProfiles) != len(batchProfiles) {
		t.Fatalf("profile count %d != %d", len(streamProfiles), len(batchProfiles))
	}
	for i := range batchProfiles {
		if !reflect.DeepEqual(streamProfiles[i].Power, batchProfiles[i].Power) {
			t.Fatalf("profile %d power map differs", i)
		}
	}

	// Detections: identical sequence, including empty sets.
	if !reflect.DeepEqual(detsC.Detections(), batchDets) {
		t.Fatal("detection sequences differ between streaming and batch")
	}

	// Tracks: same IDs, confirmation, and point-for-point positions.
	streamTracks := trk.Tracks()
	if len(streamTracks) != len(batchTracks) {
		t.Fatalf("track count %d != %d", len(streamTracks), len(batchTracks))
	}
	for i := range batchTracks {
		if streamTracks[i].ID != batchTracks[i].ID ||
			streamTracks[i].Confirmed != batchTracks[i].Confirmed ||
			!reflect.DeepEqual(streamTracks[i].Points, batchTracks[i].Points) {
			t.Fatalf("track %d differs between streaming and batch", i)
		}
	}

	// Breathing phase: identical unwrapped series.
	streamTimes, streamPhase := breath.Series()
	if !reflect.DeepEqual(streamTimes, batchTimes) || !reflect.DeepEqual(streamPhase, batchPhase) {
		t.Fatal("breathing-phase series differs between streaming and batch")
	}
}

// TestStreamingEquivalenceAnyWorkerCount re-runs a short capture with the
// worker pools forced to different sizes; the streamed output must not
// depend on GOMAXPROCS.
func TestStreamingEquivalenceAnyWorkerCount(t *testing.T) {
	const nFrames = 8
	const seed = 4
	s := testSession(t)
	run := func() [][]radar.Detection {
		detsC := NewCollectDetections()
		stages := append(FrontEndStages(radar.NewProcessor(radar.DefaultConfig()), s.Scene.Radar), detsC)
		p := New(s.Scene.Stream(0, nFrames, rand.New(rand.NewSource(seed))), stages...)
		if _, err := p.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return detsC.Detections()
	}
	prev := runtime.GOMAXPROCS(1)
	one := run()
	runtime.GOMAXPROCS(4)
	four := run()
	runtime.GOMAXPROCS(prev)
	if !reflect.DeepEqual(one, four) {
		t.Fatal("streamed detections depend on the worker count")
	}
}

// cancelAfter is a test stage that cancels the run's context once it has
// seen the given number of frames.
type cancelAfter struct {
	n      int
	seen   int
	cancel context.CancelFunc
}

func (c *cancelAfter) Name() string { return "cancel-after" }

func (c *cancelAfter) Process(ctx context.Context, it *Item) error {
	c.seen++
	if c.seen == c.n {
		c.cancel()
	}
	return nil
}

// TestCancelStopsMidCapture cancels an unbounded capture mid-stream: Run
// must return context.Canceled promptly and leave no goroutines behind.
func TestCancelStopsMidCapture(t *testing.T) {
	s := testSession(t)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	trk := NewTrack(radar.TrackerConfig{})
	stages := append(FrontEndStages(radar.NewProcessor(radar.DefaultConfig()), s.Scene.Radar), trk, &cancelAfter{n: 3, cancel: cancel})
	// n < 0: an unbounded stream — only cancellation can stop this run.
	p := New(s.Scene.Stream(0, -1, rand.New(rand.NewSource(2))), stages...)
	frames, err := p.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
	if frames < 3 {
		t.Fatalf("processed %d frames before cancel, want >= 3", frames)
	}

	// All pool workers are joined before Run returns; give the runtime a
	// moment to retire exiting goroutines, then check for leaks.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutine leak: %d before, %d after canceled run", before, after)
	}
}

// TestCancelBeforeStart returns immediately with ctx.Err and zero frames.
func TestCancelBeforeStart(t *testing.T) {
	s := testSession(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := New(s.Scene.Stream(0, 10, rand.New(rand.NewSource(2))),
		FrontEndStages(radar.NewProcessor(radar.DefaultConfig()), s.Scene.Radar)...)
	frames, err := p.Run(ctx)
	if !errors.Is(err, context.Canceled) || frames != 0 {
		t.Fatalf("Run = (%d, %v), want (0, context.Canceled)", frames, err)
	}
}

// TestDeadlineExpiresMidCapture drives cancellation through a timeout
// instead of an explicit cancel.
func TestDeadlineExpiresMidCapture(t *testing.T) {
	s := testSession(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	p := New(s.Scene.Stream(0, -1, rand.New(rand.NewSource(2))),
		FrontEndStages(radar.NewProcessor(radar.DefaultConfig()), s.Scene.Radar)...)
	if _, err := p.Run(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run = %v, want context.DeadlineExceeded", err)
	}
}

// TestFromFramesReplay runs the stage chain over a recorded capture and
// matches the batch front end.
func TestFromFramesReplay(t *testing.T) {
	s := testSession(t)
	frames := s.Scene.Capture(0, 6, rand.New(rand.NewSource(3)))
	pr := radar.NewProcessor(radar.DefaultConfig())
	want := pr.ProcessFrames(frames, s.Scene.Radar)

	detsC := NewCollectDetections()
	stages := append(FrontEndStages(radar.NewProcessor(radar.DefaultConfig()), s.Scene.Radar), detsC)
	if _, err := New(FromFrames(frames), stages...).Run(nil); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(detsC.Detections(), want) {
		t.Fatal("replayed detections differ from batch")
	}
}

// failStage always errors, to exercise error tagging.
type failStage struct{ err error }

func (f failStage) Name() string                                { return "boom-stage" }
func (f failStage) Process(ctx context.Context, it *Item) error { return f.err }

// TestStageErrorTagged verifies stage errors abort the run and stay
// matchable with errors.Is through the stage tag.
func TestStageErrorTagged(t *testing.T) {
	boom := errors.New("boom")
	frames := []*fmcw.Frame{fmcw.NewFrame(fmcw.DefaultParams(), 0)}
	_, err := New(FromFrames(frames), failStage{err: boom}).Run(context.Background())
	if !errors.Is(err, boom) {
		t.Fatalf("Run = %v, want wrapped boom", err)
	}
}
