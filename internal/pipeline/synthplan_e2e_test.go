package pipeline

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"rfprotect/internal/fmcw"
	"rfprotect/internal/radar"
)

// synthFn is the signature shared by fmcw.SynthesizeInto (planned) and
// fmcw.SynthesizeLegacyInto (the retained serial-recurrence reference).
type synthFn func(ctx context.Context, dst *fmcw.Frame, returns []fmcw.Return, rng *rand.Rand, workers int) error

// captureWith synthesizes the golden scene's capture through the given
// kernel: identical returns, identical rng stream, only the synthesis
// arithmetic differs.
func captureWith(t *testing.T, synth synthFn, nFrames int) ([]*fmcw.Frame, fmcw.Array) {
	t.Helper()
	s := testSession(t)
	sc := s.Scene
	rng := rand.New(rand.NewSource(23))
	frames := make([]*fmcw.Frame, nFrames)
	for i := range frames {
		at := float64(i) / sc.Params.FrameRate
		f := fmcw.NewFrame(sc.Params, at)
		if err := synth(nil, f, sc.ReturnsAt(at), rng, 1); err != nil {
			t.Fatal(err)
		}
		frames[i] = f
	}
	return frames, sc.Radar
}

// TestPlannedSynthesisSameDetectionsAndTracks is the end-to-end acceptance
// contract for the compiled synthesis plan: a golden streaming scene
// synthesized by the planned kernel and by the legacy kernel, run through
// the identical eavesdropper chain, must yield the same detections (to
// sub-micrometer position agreement — the inputs differ only at the ULP
// level) and structurally identical tracks.
func TestPlannedSynthesisSameDetectionsAndTracks(t *testing.T) {
	const nFrames = 30
	const posTol = 1e-6

	type result struct {
		dets   [][]radar.Detection
		tracks []*radar.Track
	}
	run := func(synth synthFn) result {
		frames, array := captureWith(t, synth, nFrames)
		cfg := radar.DefaultConfig()
		cfg.Workers = 1
		pr := radar.NewProcessor(cfg)
		detsC := NewCollectDetections()
		trk := NewTrackWithVelocity(radar.TrackerConfig{}, array)
		stages := FrontEndStages(pr, array)
		stages = append(stages, NewDoppler(pr, 6, 0), trk, detsC)
		if _, err := New(FromFrames(frames), stages...).Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return result{dets: detsC.Detections(), tracks: trk.Tracks()}
	}

	legacy := run(fmcw.SynthesizeLegacyInto)
	planned := run(fmcw.SynthesizeInto)

	if len(planned.dets) != len(legacy.dets) {
		t.Fatalf("planned run produced %d detection frames, legacy %d", len(planned.dets), len(legacy.dets))
	}
	for i := range legacy.dets {
		if len(planned.dets[i]) != len(legacy.dets[i]) {
			t.Fatalf("frame %d: planned %d detections, legacy %d", i, len(planned.dets[i]), len(legacy.dets[i]))
		}
		for j := range legacy.dets[i] {
			pd, ld := planned.dets[i][j], legacy.dets[i][j]
			if pd.Pos.Dist(ld.Pos) > posTol {
				t.Fatalf("frame %d det %d: planned %v, legacy %v — beyond %g", i, j, pd.Pos, ld.Pos, posTol)
			}
			if math.Abs(pd.Time-ld.Time) > 0 {
				t.Fatalf("frame %d det %d: time differs", i, j)
			}
		}
	}
	if len(planned.tracks) != len(legacy.tracks) {
		t.Fatalf("planned run produced %d tracks, legacy %d", len(planned.tracks), len(legacy.tracks))
	}
	for i := range legacy.tracks {
		pt, lt := planned.tracks[i], legacy.tracks[i]
		if pt.ID != lt.ID || pt.Confirmed != lt.Confirmed || len(pt.Points) != len(lt.Points) {
			t.Fatalf("track %d: structure differs (id %d/%d, confirmed %v/%v, %d/%d points)",
				i, pt.ID, lt.ID, pt.Confirmed, lt.Confirmed, len(pt.Points), len(lt.Points))
		}
		for j := range lt.Points {
			if pt.Points[j].Time != lt.Points[j].Time || pt.Points[j].Pos.Dist(lt.Points[j].Pos) > posTol {
				t.Fatalf("track %d point %d: planned %v, legacy %v", i, j, pt.Points[j], lt.Points[j])
			}
		}
	}
}
