package pipeline

import (
	"context"

	"rfprotect/internal/fmcw"
	"rfprotect/internal/radar"
)

// BackgroundSubtractStage streams successive-frame background subtraction
// (§3): it.Diff = frame − previous frame, holding exactly one frame of
// history. Frame 0 only seeds the history and leaves it.Diff nil.
type BackgroundSubtractStage struct {
	diff fmcw.Differencer
}

// NewBackgroundSubtract returns a fresh background-subtraction stage.
func NewBackgroundSubtract() *BackgroundSubtractStage { return &BackgroundSubtractStage{} }

// NewBackgroundSubtractPooled returns a background-subtraction stage whose
// difference frames and history come from the given pool, so its steady
// state allocates nothing. Emitted diffs are bit-identical to the unpooled
// stage's; the pipeline recycles them when wired with UsePools.
func NewBackgroundSubtractPooled(pool *fmcw.FramePool) *BackgroundSubtractStage {
	s := &BackgroundSubtractStage{}
	s.diff.UsePool(pool)
	return s
}

func (s *BackgroundSubtractStage) Name() string { return "background-subtract" }

//rfvet:allocfree
func (s *BackgroundSubtractStage) Process(ctx context.Context, it *Item) error {
	if d, ok := s.diff.Step(it.Frame); ok {
		it.Diff = d
	}
	return nil
}

// RangeAngleStage computes the range–angle power profile (range FFT +
// Eq. 2 beamforming) of the background-subtracted frame. Items without a
// Diff pass through untouched.
type RangeAngleStage struct {
	pr   *radar.Processor
	pool *radar.ProfilePool
}

// NewRangeAngle returns a profile stage over the given processor.
func NewRangeAngle(pr *radar.Processor) *RangeAngleStage { return &RangeAngleStage{pr: pr} }

// NewRangeAnglePooled returns a profile stage that fills recycled profiles
// from the given pool via RangeAngleInto instead of allocating one per
// frame. Profiles are bit-identical to the unpooled stage's; the pipeline
// recycles them when wired with UsePools.
func NewRangeAnglePooled(pr *radar.Processor, pool *radar.ProfilePool) *RangeAngleStage {
	return &RangeAngleStage{pr: pr, pool: pool}
}

func (s *RangeAngleStage) Name() string { return "range-angle" }

//rfvet:allocfree
func (s *RangeAngleStage) Process(ctx context.Context, it *Item) error {
	if it.Diff == nil {
		return nil
	}
	if s.pool != nil {
		prof := s.pool.Get()
		if err := s.pr.RangeAngleInto(ctx, it.Diff, prof); err != nil {
			s.pool.Put(prof) // partially written: contents are unspecified anyway
			return err
		}
		it.Profile = prof
		return nil
	}
	prof, err := s.pr.RangeAngleCtx(ctx, it.Diff)
	if err != nil {
		return err
	}
	it.Profile = prof
	return nil
}

// PeakExtractStage extracts target detections from the profile. Items
// without a Profile pass through untouched; items with one always get a
// detection set (possibly empty) and HasDets = true, mirroring the batch
// front end where every post-background frame yields one detection slice.
type PeakExtractStage struct {
	pr    *radar.Processor
	array fmcw.Array
	// reuse makes Process append into the item's recycled Detections backing
	// via DetectInto instead of allocating a fresh slice per frame. Values
	// are bit-identical either way; with reuse the detections are only valid
	// while the item is in flight, so — like pooled profiles — a reusing
	// chain is incompatible with collectors that retain the slices.
	reuse bool
}

// NewPeakExtract returns a detection stage mapping peaks to world
// coordinates through the given array geometry.
func NewPeakExtract(pr *radar.Processor, array fmcw.Array) *PeakExtractStage {
	return &PeakExtractStage{pr: pr, array: array}
}

// NewPeakExtractPooled returns a detection stage that fills each item's
// recycled Detections buffer through the plan's DetectInto, so its steady
// state allocates nothing. See the reuse field for the retention caveat.
func NewPeakExtractPooled(pl *radar.FrontEndPlan, array fmcw.Array) *PeakExtractStage {
	return &PeakExtractStage{pr: radar.NewProcessorWithPlan(pl), array: array, reuse: true}
}

func (s *PeakExtractStage) Name() string { return "peak-extract" }

//rfvet:allocfree
func (s *PeakExtractStage) Process(ctx context.Context, it *Item) error {
	if it.Profile == nil {
		return nil
	}
	if s.reuse {
		it.Detections = s.pr.Plan(it.Profile.Params).DetectInto(it.Detections, it.Profile, s.array)
	} else {
		it.Detections = s.pr.Detect(it.Profile, s.array)
	}
	it.HasDets = true
	return nil
}

// FrontEndStages returns the standard eavesdropper front end as a stage
// chain — background-subtract → range FFT/beamform → peak-extract — ready
// to prepend to a tracker or collector. The chain's detection sequence is
// bit-identical to Processor.ProcessFrames over the same frames.
func FrontEndStages(pr *radar.Processor, array fmcw.Array) []Stage {
	return []Stage{NewBackgroundSubtract(), NewRangeAngle(pr), NewPeakExtract(pr, array)}
}

// FrontEndStagesPooled is FrontEndStages with the difference frames and
// profiles drawn from pl's pools: same stages, same bits, zero steady-state
// allocations in the subtract and profile stages. Pair it with a source
// feeding from pl.Frames and Pipeline.UsePools(pl) so the buffers flow back.
func FrontEndStagesPooled(pr *radar.Processor, array fmcw.Array, pl *Pools) []Stage {
	return []Stage{
		NewBackgroundSubtractPooled(pl.Frames),
		NewRangeAnglePooled(pr, pl.Profiles),
		NewPeakExtract(pr, array),
	}
}

// NewRangeAnglePlanned is NewRangeAnglePooled over a shared compiled plan:
// the stage serves frames of the plan's shape through it (a shape change
// transparently compiles a private plan, like any Processor).
func NewRangeAnglePlanned(pl *radar.FrontEndPlan, pool *radar.ProfilePool) *RangeAngleStage {
	return &RangeAngleStage{pr: radar.NewProcessorWithPlan(pl), pool: pool}
}

// NewDopplerPlanned is NewDopplerPooled over a shared compiled plan.
func NewDopplerPlanned(pl *radar.FrontEndPlan, window, antenna int, pool *radar.DopplerPool) *DopplerStage {
	s := NewDoppler(radar.NewProcessorWithPlan(pl), window, antenna)
	s.pool = pool
	return s
}

// FrontEndStagesPlanned is the fully compiled front end: every kernel runs
// through the shared plan and every steady-state buffer — difference frames,
// profiles, detection slices — is recycled, so the whole chain allocates
// nothing per frame once warm. Detection values are bit-identical to
// FrontEndStages; the detections-retention caveat of NewPeakExtractPooled
// applies. The N-room daemon assembles each room from one plan per
// params-shape with exactly this chain.
func FrontEndStagesPlanned(pl *radar.FrontEndPlan, array fmcw.Array, pools *Pools) []Stage {
	pr := radar.NewProcessorWithPlan(pl)
	return []Stage{
		NewBackgroundSubtractPooled(pools.Frames),
		NewRangeAnglePooled(pr, pools.Profiles),
		&PeakExtractStage{pr: pr, array: array, reuse: true},
	}
}

// DopplerStage computes a sliding-window range–Doppler map over the last K
// raw frames: a K-frame ring buffer (fmcw.Window) feeds per-range-bin
// slow-time FFTs through the cached dsp plans, and once the window is full
// every frame carries the map ending at it (it.RangeDoppler). The slow-time
// sampling interval is the frame interval 1/FrameRate, so the unambiguous
// velocity band is ±λ·FrameRate/4 — faster radial motion aliases, exactly
// as it would for a real chirp-coherent processor at that frame rate.
type DopplerStage struct {
	pr      *radar.Processor
	win     *fmcw.Window
	antenna int
	burst   []*fmcw.Frame // scratch reused every frame
	pool    *radar.DopplerPool
}

// NewDoppler returns a Doppler stage with a K-frame window observing the
// given antenna (window < 2 is treated as 2 — one frame has no slow time).
func NewDoppler(pr *radar.Processor, window, antenna int) *DopplerStage {
	if window < 2 {
		window = 2
	}
	return &DopplerStage{pr: pr, win: fmcw.NewWindow(window), antenna: antenna}
}

// NewDopplerPooled is NewDoppler with the output maps drawn from the given
// pool via RangeDopplerInto instead of allocated per frame. Maps are
// bit-identical to the unpooled stage's; the pipeline recycles them when
// wired with UsePools.
func NewDopplerPooled(pr *radar.Processor, window, antenna int, pool *radar.DopplerPool) *DopplerStage {
	s := NewDoppler(pr, window, antenna)
	s.pool = pool
	return s
}

func (s *DopplerStage) Name() string { return "range-doppler" }

func (s *DopplerStage) Process(ctx context.Context, it *Item) error {
	// The window must own its history: items are recycled (or dropped) as
	// soon as their stage chain completes, so the stage copies each frame
	// into its ring instead of aliasing it. A warmed-up ring reuses the
	// evicted slot's storage, so the copy costs no allocation.
	s.win.PushCopy(it.Frame)
	if !s.win.Full() {
		return nil
	}
	s.burst = s.win.Frames(s.burst[:0])
	if s.pool != nil {
		m := s.pool.Get()
		if err := s.pr.RangeDopplerInto(ctx, m, s.burst, s.antenna, 1/it.Frame.Params.FrameRate); err != nil {
			s.pool.Put(m) // partially written: contents are unspecified anyway
			return err
		}
		it.RangeDoppler = m
		return nil
	}
	m, err := s.pr.RangeDopplerCtx(ctx, s.burst, s.antenna, 1/it.Frame.Params.FrameRate)
	if err != nil {
		return err
	}
	it.RangeDoppler = m
	return nil
}

// TrackStage feeds each frame's detections into a multi-target tracker,
// exactly as radar.TrackDetections does in batch: empty detection sets are
// skipped, times come from the detections. Built with NewTrackWithVelocity
// it additionally stamps active tracks with radial velocities from the
// frame's range–Doppler map whenever one is present.
type TrackStage struct {
	tr       *radar.Tracker
	array    fmcw.Array
	velocity bool
}

// NewTrack returns a tracking stage over a fresh tracker (zero-valued
// config fields take radar defaults).
func NewTrack(cfg radar.TrackerConfig) *TrackStage {
	return &TrackStage{tr: radar.NewTracker(cfg)}
}

// NewTrackWithVelocity is NewTrack plus per-track radial-velocity
// estimation: items carrying a RangeDoppler map (from a DopplerStage
// earlier in the chain) update every active track's RadialVelocity through
// the given array geometry.
func NewTrackWithVelocity(cfg radar.TrackerConfig, array fmcw.Array) *TrackStage {
	return &TrackStage{tr: radar.NewTracker(cfg), array: array, velocity: true}
}

func (s *TrackStage) Name() string { return "track" }

func (s *TrackStage) Process(ctx context.Context, it *Item) error {
	if it.HasDets && len(it.Detections) > 0 {
		s.tr.Observe(it.Detections[0].Time, it.Detections)
	}
	if s.velocity && it.RangeDoppler != nil {
		s.tr.AttachVelocities(it.RangeDoppler, s.array)
	}
	return nil
}

// Tracks returns the confirmed tracks accumulated so far (see
// radar.Tracker.Tracks).
func (s *TrackStage) Tracks() []*radar.Track { return s.tr.Tracks() }

// Tracker exposes the stage's tracker for per-frame observers (the spoof
// scorer walks its active tracks after each Process call). Callers must
// apply the same synchronization they use around Process.
func (s *TrackStage) Tracker() *radar.Tracker { return s.tr }

// BreathingPhaseStage extracts the unwrapped carrier phase at a range bin
// from every raw frame — the vital-sign monitor of §11.4 — holding only the
// incremental unwrap state. The accumulated series is its output.
type BreathingPhaseStage struct {
	ex       radar.BreathingExtractor
	distance float64
	ps       *radar.PhaseStream
}

// NewBreathingPhase returns a phase stage monitoring the given distance.
func NewBreathingPhase(ex radar.BreathingExtractor, distance float64) *BreathingPhaseStage {
	return &BreathingPhaseStage{ex: ex, distance: distance}
}

func (s *BreathingPhaseStage) Name() string { return "breathing-phase" }

func (s *BreathingPhaseStage) Process(ctx context.Context, it *Item) error {
	if s.ps == nil {
		s.ps = s.ex.NewStream(it.Frame.Params, s.distance)
	}
	s.ps.Step(it.Frame)
	return nil
}

// Series returns the frame times and unwrapped phase samples so far,
// bit-identical to BreathingExtractor.PhaseSeries over the same frames.
func (s *BreathingPhaseStage) Series() (times, phase []float64) {
	if s.ps == nil {
		return nil, nil
	}
	return s.ps.Series()
}

// DetectionsCollector accumulates the per-frame detection sets, matching
// Processor.ProcessFrames output shape. Memory grows with capture length —
// collectors are for consumers that need the whole sequence (measurement
// matching, tests), not for bounded-memory streaming.
type DetectionsCollector struct {
	dets [][]radar.Detection
}

// NewCollectDetections returns an empty detections collector.
func NewCollectDetections() *DetectionsCollector { return &DetectionsCollector{} }

func (s *DetectionsCollector) Name() string { return "collect-detections" }

func (s *DetectionsCollector) Process(ctx context.Context, it *Item) error {
	if it.HasDets {
		s.dets = append(s.dets, it.Detections)
	}
	return nil
}

// Detections returns the accumulated sequence.
func (s *DetectionsCollector) Detections() [][]radar.Detection { return s.dets }

// ProfilesCollector accumulates every computed profile (unbounded; tests
// and offline analysis only). It retains the profiles past item completion,
// so it must not run in a pipeline wired with UsePools — the recycler would
// overwrite the collected profiles in place.
type ProfilesCollector struct {
	profs []*radar.Profile
}

// NewCollectProfiles returns an empty profile collector.
func NewCollectProfiles() *ProfilesCollector { return &ProfilesCollector{} }

func (s *ProfilesCollector) Name() string { return "collect-profiles" }

func (s *ProfilesCollector) Process(ctx context.Context, it *Item) error {
	if it.Profile != nil {
		s.profs = append(s.profs, it.Profile)
	}
	return nil
}

// Profiles returns the accumulated profiles.
func (s *ProfilesCollector) Profiles() []*radar.Profile { return s.profs }

// FramesCollector accumulates every raw frame (unbounded; tests only — it
// deliberately defeats the pipeline's bounded-memory property). Like
// ProfilesCollector it retains buffers past item completion and must not
// run in a pipeline wired with UsePools.
type FramesCollector struct {
	frames []*fmcw.Frame
}

// NewCollectFrames returns an empty frame collector.
func NewCollectFrames() *FramesCollector { return &FramesCollector{} }

func (s *FramesCollector) Name() string { return "collect-frames" }

func (s *FramesCollector) Process(ctx context.Context, it *Item) error {
	s.frames = append(s.frames, it.Frame)
	return nil
}

// Frames returns the accumulated frames.
func (s *FramesCollector) Frames() []*fmcw.Frame { return s.frames }
