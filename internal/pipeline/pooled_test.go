package pipeline

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
	"rfprotect/internal/radar"
	"rfprotect/internal/scene"
)

// chainResult captures everything a pooled run may NOT retain through
// pooled buffers: detections are fresh slices from Detect, tracks live in
// the tracker — both safe to keep after the buffers are recycled.
type chainResult struct {
	frames int
	dets   [][]radar.Detection
	tracks []*radar.Track
}

// runPooledChain runs the full eavesdropper chain (background-subtract →
// range-angle → peak-extract → doppler → track-with-velocity) over nFrames,
// pooled or not, sequentially or concurrently.
func runPooledChain(t *testing.T, s interface {
	Stream(t0 float64, n int, rng *rand.Rand) *scene.FrameStream
}, params fmcw.Params, array fmcw.Array, nFrames, seed, workers, depth int, pooled bool) chainResult {
	t.Helper()
	cfg := radar.DefaultConfig()
	cfg.Workers = workers
	pr := radar.NewProcessor(cfg)
	detsC := NewCollectDetections()
	trk := NewTrackWithVelocity(radar.TrackerConfig{}, array)

	src := s.Stream(0, nFrames, rand.New(rand.NewSource(int64(seed)))).UseWorkers(workers)
	var stages []Stage
	var p *Pipeline
	if pooled {
		pl := NewPools(params)
		stages = FrontEndStagesPooled(pr, array, pl)
		stages = append(stages, NewDopplerPooled(pr, 6, 0, pl.Doppler), trk, detsC)
		p = New(src.UsePool(pl.Frames), stages...).UsePools(pl)
	} else {
		stages = FrontEndStages(pr, array)
		stages = append(stages, NewDoppler(pr, 6, 0), trk, detsC)
		p = New(src, stages...)
	}
	var n int
	var err error
	if depth > 0 {
		n, err = p.RunConcurrent(context.Background(), depth)
	} else {
		n, err = p.Run(context.Background())
	}
	if err != nil {
		t.Fatal(err)
	}
	return chainResult{frames: n, dets: detsC.Detections(), tracks: trk.Tracks()}
}

// TestPooledEquivalentToUnpooled is the golden contract of the pooled path:
// for every worker count and for both the sequential and the concurrent
// runner, a pooled run produces the same detections and tracks as the
// allocating run, frame for frame and point for point.
func TestPooledEquivalentToUnpooled(t *testing.T) {
	const nFrames = 18
	const seed = 11
	s := testSession(t)
	params, array := s.Scene.Params, s.Scene.Radar
	want := runPooledChain(t, s.Scene, params, array, nFrames, seed, 0, 0, false)
	if want.frames != nFrames {
		t.Fatalf("reference run processed %d frames, want %d", want.frames, nFrames)
	}
	for _, workers := range []int{1, 2, 0} {
		for _, depth := range []int{0, 1, 4} { // 0 = sequential Run
			got := runPooledChain(t, s.Scene, params, array, nFrames, seed, workers, depth, true)
			if got.frames != want.frames {
				t.Fatalf("workers=%d depth=%d: %d frames, want %d", workers, depth, got.frames, want.frames)
			}
			if !reflect.DeepEqual(got.dets, want.dets) {
				t.Fatalf("workers=%d depth=%d: pooled detections differ from unpooled", workers, depth)
			}
			if len(got.tracks) != len(want.tracks) {
				t.Fatalf("workers=%d depth=%d: %d tracks, want %d", workers, depth, len(got.tracks), len(want.tracks))
			}
			for i := range want.tracks {
				if got.tracks[i].ID != want.tracks[i].ID ||
					got.tracks[i].Confirmed != want.tracks[i].Confirmed ||
					!reflect.DeepEqual(got.tracks[i].Points, want.tracks[i].Points) {
					t.Fatalf("workers=%d depth=%d: track %d differs", workers, depth, i)
				}
			}
		}
	}
}

// TestPooledRunRecyclesBuffers checks the ownership loop actually closes:
// after a pooled run every in-flight buffer has come back to its pool, so a
// longer capture reuses them instead of allocating.
func TestPooledRunRecyclesBuffers(t *testing.T) {
	const nFrames = 12
	s := testSession(t)
	pl := NewPools(s.Scene.Params)
	pr := radar.NewProcessor(radar.DefaultConfig())
	stages := FrontEndStagesPooled(pr, s.Scene.Radar, pl)
	stages = append(stages, NewDopplerPooled(pr, 4, 0, pl.Doppler))
	src := s.Scene.Stream(0, nFrames, rand.New(rand.NewSource(1))).UsePool(pl.Frames)
	if _, err := New(src, stages...).UsePools(pl).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Sequential run: exactly one raw frame + one diff in flight, both
	// recycled at item completion. The pool should hold a tiny constant
	// number of frames, not one per processed frame.
	if got := pl.Frames.Len(); got == 0 || got > 4 {
		t.Fatalf("FramePool holds %d frames after run, want a small nonzero count", got)
	}
	if got := pl.Profiles.Len(); got == 0 || got > 2 {
		t.Fatalf("ProfilePool holds %d profiles after run, want 1-2", got)
	}
	if got := pl.Doppler.Len(); got == 0 || got > 2 {
		t.Fatalf("DopplerPool holds %d maps after run, want 1-2", got)
	}
}

// TestStagesZeroAllocsSteadyState drives the three pooled hot-path stages
// directly (no pipeline loop, Workers: 1) and asserts the steady state
// allocates nothing per frame: the subtract stage, the range-FFT/beamform
// stage, and the sliding-window Doppler stage.
func TestStagesZeroAllocsSteadyState(t *testing.T) {
	p := fmcw.DefaultParams()
	p.SampleRate = 128e3 // 64 samples per chirp keeps the guard fast
	p.NumAntennas = 4
	array := fmcw.Array{Facing: 1}
	rng := rand.New(rand.NewSource(3))
	// A small ring of distinct source frames so the differencer and the
	// Doppler window see changing data, as in a real capture.
	var templates []*fmcw.Frame
	for i := 0; i < 4; i++ {
		rets := []fmcw.Return{
			array.ReturnFrom(geom.Point{X: 1.5, Y: 3.5}, 1, 0, rng.Float64()),
		}
		templates = append(templates, fmcw.Synthesize(p, rets, float64(i)/p.FrameRate, rng))
	}

	cfg := radar.DefaultConfig()
	cfg.Workers = 1
	pr := radar.NewProcessor(cfg)
	pl := NewPools(p)
	bg := NewBackgroundSubtractPooled(pl.Frames)
	ra := NewRangeAnglePooled(pr, pl.Profiles)
	dop := NewDopplerPooled(pr, len(templates), 0, pl.Doppler)

	var it Item
	step := func(i int) {
		f := pl.Frames.Get(float64(i) / p.FrameRate)
		f.CopyFrom(templates[i%len(templates)])
		it = Item{Index: i, Frame: f}
		if err := bg.Process(nil, &it); err != nil {
			t.Fatal(err)
		}
		if err := ra.Process(nil, &it); err != nil {
			t.Fatal(err)
		}
		if err := dop.Process(nil, &it); err != nil {
			t.Fatal(err)
		}
		pl.Frames.Put(it.Frame)
		pl.Frames.Put(it.Diff)
		pl.Profiles.Put(it.Profile)
		pl.Doppler.Put(it.RangeDoppler)
	}
	// Warm-up: fill the differencer history and the Doppler window, build
	// processor scratch, and charge the pools.
	for i := 0; i < 2*len(templates); i++ {
		step(i)
	}
	i := 2 * len(templates)
	if allocs := testing.AllocsPerRun(100, func() {
		step(i)
		i++
	}); allocs != 0 {
		t.Fatalf("pooled stage chain allocates %v per frame in steady state, want 0", allocs)
	}
}

// copyingCollector accumulates per-frame detection sets by value, safe in a
// chain whose peak stage reuses the detection backing (FrontEndStagesPlanned).
type copyingCollector struct{ dets [][]radar.Detection }

func (c *copyingCollector) Name() string { return "copy-detections" }

func (c *copyingCollector) Process(ctx context.Context, it *Item) error {
	if it.HasDets {
		cp := make([]radar.Detection, len(it.Detections))
		copy(cp, it.Detections)
		c.dets = append(c.dets, cp)
	}
	return nil
}

// TestPlannedEquivalentToUnpooled is the golden contract of the fully
// compiled chain: FrontEndStagesPlanned + NewDopplerPlanned over one shared
// plan must produce the same detections and tracks as the allocating
// FrontEndStages run, for the sequential and the concurrent runner.
func TestPlannedEquivalentToUnpooled(t *testing.T) {
	const nFrames = 18
	const seed = 11
	s := testSession(t)
	params, array := s.Scene.Params, s.Scene.Radar
	want := runPooledChain(t, s.Scene, params, array, nFrames, seed, 0, 0, false)

	for _, depth := range []int{0, 4} { // 0 = sequential Run
		cfg := radar.DefaultConfig()
		cfg.Workers = 1
		plan := radar.CompileFrontEndPlan(cfg, params)
		pools := NewPools(params)
		detsC := &copyingCollector{}
		trk := NewTrackWithVelocity(radar.TrackerConfig{}, array)
		stages := FrontEndStagesPlanned(plan, array, pools)
		stages = append(stages, NewDopplerPlanned(plan, 6, 0, pools.Doppler), trk, detsC)
		src := s.Scene.Stream(0, nFrames, rand.New(rand.NewSource(seed))).UsePool(pools.Frames).UseWorkers(1)
		p := New(src, stages...).UsePools(pools)
		var n int
		var err error
		if depth > 0 {
			n, err = p.RunConcurrent(context.Background(), depth)
		} else {
			n, err = p.Run(context.Background())
		}
		if err != nil {
			t.Fatal(err)
		}
		if n != want.frames {
			t.Fatalf("depth=%d: %d frames, want %d", depth, n, want.frames)
		}
		if !reflect.DeepEqual(detsC.dets, want.dets) {
			t.Fatalf("depth=%d: planned detections differ from unpooled", depth)
		}
		tracks := trk.Tracks()
		if len(tracks) != len(want.tracks) {
			t.Fatalf("depth=%d: %d tracks, want %d", depth, len(tracks), len(want.tracks))
		}
		for i := range want.tracks {
			if !reflect.DeepEqual(tracks[i].Points, want.tracks[i].Points) {
				t.Fatalf("depth=%d: track %d differs", depth, i)
			}
		}
	}
}

// TestPlannedChainZeroAllocsSteadyState drives the complete compiled chain —
// subtract, beamform, peak-extract with detection-buffer reuse, Doppler,
// tracking — and asserts a warmed-up frame allocates nothing anywhere.
func TestPlannedChainZeroAllocsSteadyState(t *testing.T) {
	p := fmcw.DefaultParams()
	p.SampleRate = 128e3 // 64 samples per chirp keeps the guard fast
	p.NumAntennas = 4
	array := fmcw.Array{Facing: 1}
	rng := rand.New(rand.NewSource(3))
	var templates []*fmcw.Frame
	for i := 0; i < 4; i++ {
		rets := []fmcw.Return{
			array.ReturnFrom(geom.Point{X: 1.5, Y: 3.5}, 1, 0, rng.Float64()),
		}
		templates = append(templates, fmcw.Synthesize(p, rets, float64(i)/p.FrameRate, rng))
	}

	cfg := radar.DefaultConfig()
	cfg.Workers = 1
	plan := radar.CompileFrontEndPlan(cfg, p)
	pools := NewPools(p)
	stages := FrontEndStagesPlanned(plan, array, pools)
	stages = append(stages, NewDopplerPlanned(plan, len(templates), 0, pools.Doppler))
	tcfg := radar.TrackerConfig{ConfirmHits: 1, MinTrackPoints: 1}
	trk := NewTrack(tcfg)
	stages = append(stages, trk)

	var it Item
	var detBuf []radar.Detection
	step := func(i int) {
		f := pools.Frames.Get(float64(i) / p.FrameRate)
		f.CopyFrom(templates[i%len(templates)])
		it = Item{Index: i, Frame: f}
		it.Detections = detBuf[:0] // what getItem's recycling preserves
		for _, st := range stages {
			if err := st.Process(nil, &it); err != nil {
				t.Fatal(err)
			}
		}
		detBuf = it.Detections
		pools.Frames.Put(it.Frame)
		pools.Frames.Put(it.Diff)
		pools.Profiles.Put(it.Profile)
		pools.Doppler.Put(it.RangeDoppler)
	}
	for i := 0; i < 16; i++ { // warm every pool, window, and track
		step(i)
	}
	for _, tr := range trk.Tracks() { // pre-grow point history past the run
		pts := make([]radar.TimedPoint, len(tr.Points), len(tr.Points)+4096)
		copy(pts, tr.Points)
		tr.Points = pts
	}
	i := 16
	if allocs := testing.AllocsPerRun(100, func() {
		step(i)
		i++
	}); allocs != 0 {
		t.Fatalf("planned chain allocates %v per frame in steady state, want 0", allocs)
	}
}
