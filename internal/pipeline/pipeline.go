package pipeline

import (
	"context"
	"io"
	"sync"

	"rfprotect/internal/fmcw"
	"rfprotect/internal/radar"
)

// Source emits the frames a pipeline consumes, one at a time. Next returns
// io.EOF when the stream is exhausted and ctx.Err() once ctx is done.
// scene.FrameStream is the canonical implementation; FromFrames adapts an
// already-captured slice (replays, tests).
type Source interface {
	Next(ctx context.Context) (*fmcw.Frame, error)
}

// Item is the per-frame record flowing down the stage chain. Each stage
// reads the fields earlier stages filled in and adds its own; a stage that
// finds its input field nil passes the item through untouched (the first
// frame of a capture, for example, only seeds the background history and
// produces no profile or detections).
type Item struct {
	Index      int         // frame number within the run, from 0
	Frame      *fmcw.Frame // the raw synthesized frame
	Diff       *fmcw.Frame // background-subtracted frame (nil for frame 0)
	Profile    *radar.Profile
	Detections []radar.Detection
	HasDets    bool // Detections is valid (maybe empty): frame produced a detection set
	// RangeDoppler is the sliding-window range–Doppler map ending at this
	// frame (nil until DopplerStage's window fills).
	RangeDoppler *radar.RangeDopplerMap
}

// Stage is one processing step applied to every item in stream order.
// Stages run sequentially within a frame and hold whatever bounded state
// they need across frames (one history frame, a tracker, an unwrap offset);
// they must not retain the Item or its Frame beyond the call unless
// accumulation is their documented purpose (collectors, trackers).
type Stage interface {
	// Name identifies the stage in errors and diagnostics.
	Name() string
	// Process consumes the next item. Returning an error aborts the run.
	Process(ctx context.Context, it *Item) error
}

// Pipeline wires a Source to a stage chain.
type Pipeline struct {
	src    Source
	stages []Stage
	pools  *Pools

	// itemFree recycles the per-frame Item records: an item goes back on
	// the list once its last stage has run (and its pooled buffers have
	// been recycled), so the steady state of Run and RunConcurrent holds
	// exactly one live Item per in-flight frame and allocates none. Safe
	// under the Stage contract — stages must not retain the Item beyond
	// Process (retaining the slices and buffers it points at is a separate,
	// already-documented concern of the pooling contract). A mutex free
	// list rather than sync.Pool for the same reason fmcw.FramePool uses
	// one: the GC never empties it, so AllocsPerRun tests can assert an
	// exact zero.
	itemMu   sync.Mutex
	itemFree []*Item
}

// getItem pops a recycled Item (or allocates the first few) and stamps it
// as frame i carrying f. Every field starts zero like the &Item{...} literal
// it replaces, except that the Detections backing array survives (emptied)
// so a buffer-reusing peak stage (NewPeakExtractPooled) appends into it
// without allocating; the default PeakExtractStage overwrites the field with
// a fresh slice and never reads the recycled one.
func (p *Pipeline) getItem(i int, f *fmcw.Frame) *Item {
	p.itemMu.Lock()
	var it *Item
	if n := len(p.itemFree); n > 0 {
		it = p.itemFree[n-1]
		p.itemFree[n-1] = nil
		p.itemFree = p.itemFree[:n-1]
	}
	p.itemMu.Unlock()
	if it == nil {
		return &Item{Index: i, Frame: f}
	}
	dets := it.Detections
	*it = Item{Index: i, Frame: f}
	it.Detections = dets[:0]
	return it
}

// putItem returns an item whose stage chain has completed. Items on the
// error/abort path are never put back — like half-processed buffers, they
// simply drop to the GC.
func (p *Pipeline) putItem(it *Item) {
	p.itemMu.Lock()
	p.itemFree = append(p.itemFree, it)
	p.itemMu.Unlock()
}

// New assembles a pipeline. Stages run in the given order for every frame.
func New(src Source, stages ...Stage) *Pipeline {
	return &Pipeline{src: src, stages: stages}
}

// Pools bundles the buffer pools of a zero-allocation streaming run: raw
// and background-subtracted frames share one FramePool (they have the same
// shape), profiles and Doppler maps each have their own. A Pools value ties
// the producers to the recycler — the source and pooled stages Get from
// these pools, and the pipeline Puts every item's buffers back after its
// last stage (see Pipeline.UsePools).
type Pools struct {
	Frames   *fmcw.FramePool
	Profiles *radar.ProfilePool
	Doppler  *radar.DopplerPool
}

// NewPools returns pools for captures with the given frame parameters.
func NewPools(p fmcw.Params) *Pools {
	return &Pools{
		Frames:   fmcw.NewFramePool(p),
		Profiles: radar.NewProfilePool(),
		Doppler:  radar.NewDopplerPool(),
	}
}

// UsePools makes the pipeline recycle each item's buffers (frame, diff,
// profile, Doppler map) into the given pools once the item has completed
// every stage — the consumer half of the buffer-ownership contract in
// DESIGN.md "Buffer ownership & pooling". The producer half is the caller's:
// only attach pools whose buffers the source and stages actually draw from
// (scene.FrameStream.UsePool(pl.Frames) + FrontEndStagesPooled(...)).
// Attaching pools to a pipeline whose source replays caller-owned frames
// (FromFrames) would zero and reuse those frames mid-replay. Collector
// stages (FramesCollector, ProfilesCollector) retain buffers past item
// completion and are likewise incompatible with a pooled run — collect
// copies instead. It returns p for chaining.
func (p *Pipeline) UsePools(pl *Pools) *Pipeline {
	p.pools = pl
	return p
}

// recycle returns an item's pooled buffers once no stage will touch them
// again. Without attached pools it is a no-op; nil buffer fields (frame 0's
// Diff, items before the Doppler window fills) are skipped by the pools.
func (p *Pipeline) recycle(it *Item) {
	pl := p.pools
	if pl == nil {
		return
	}
	if pl.Frames != nil {
		pl.Frames.Put(it.Frame)
		pl.Frames.Put(it.Diff)
	}
	if pl.Profiles != nil {
		pl.Profiles.Put(it.Profile)
	}
	if pl.Doppler != nil {
		pl.Doppler.Put(it.RangeDoppler)
	}
}

// Run drains the source through the stage chain: synthesize (or read) one
// frame, push it through every stage, drop it, repeat. It returns the
// number of frames fully processed and the first error. A done context
// stops the run between per-frame steps (and inside the ctx-aware kernels
// below them) with ctx.Err(); an exhausted source ends it with a nil error.
// A nil ctx never cancels.
func (p *Pipeline) Run(ctx context.Context) (frames int, err error) {
	for i := 0; ; i++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return i, err
			}
		}
		f, err := p.src.Next(ctx)
		if err == io.EOF {
			return i, nil
		}
		if err != nil {
			return i, err
		}
		it := p.getItem(i, f)
		for _, st := range p.stages {
			if err := st.Process(ctx, it); err != nil {
				// The failed item's buffers are NOT recycled — on the error
				// path they simply drop to the GC, which keeps a half-
				// processed buffer from ever re-entering a pool.
				return i, stageError{stage: st.Name(), err: err}
			}
		}
		p.recycle(it)
		p.putItem(it)
	}
}

// stageError tags an error with the stage that produced it while keeping
// errors.Is/As working on the cause.
type stageError struct {
	stage string
	err   error
}

func (e stageError) Error() string { return "pipeline: " + e.stage + ": " + e.err.Error() }
func (e stageError) Unwrap() error { return e.err }

// frameSlice adapts an in-memory frame slice to the Source interface.
type frameSlice struct {
	frames []*fmcw.Frame
	i      int
}

// FromFrames returns a Source replaying an already-captured slice — the
// bridge from recorded data (or tests) into the streaming pipeline.
func FromFrames(frames []*fmcw.Frame) Source {
	return &frameSlice{frames: frames}
}

func (s *frameSlice) Next(ctx context.Context) (*fmcw.Frame, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	if s.i >= len(s.frames) {
		return nil, io.EOF
	}
	f := s.frames[s.i]
	s.i++
	return f, nil
}
