package pipeline

import (
	"context"
	"time"

	"rfprotect/internal/fmcw"
)

// PacedSource wraps a Source and meters it out in real time: the first
// frame is emitted immediately and every later frame no sooner than
// 1/frameRate after its predecessor's slot, keyed to a drift-free schedule
// (slot times accumulate from the first emission, so a slow consumer does
// not stretch the grid). It turns an as-fast-as-possible synthesis stream
// into a live capture for dashboard demos and end-to-end latency tests;
// combined with RunConcurrent, processing of frame i overlaps the wait for
// frame i+1.
type PacedSource struct {
	src      Source
	interval time.Duration
	next     time.Time // zero until the first frame has been emitted
}

// NewPaced returns a paced view of src emitting at the given frame rate;
// frameRate <= 0 disables pacing (the source passes through untouched).
func NewPaced(src Source, frameRate float64) *PacedSource {
	var iv time.Duration
	if frameRate > 0 {
		iv = time.Duration(float64(time.Second) / frameRate)
	}
	return &PacedSource{src: src, interval: iv}
}

// Next waits for the next frame slot, then pulls from the wrapped source.
// A done ctx interrupts the wait and returns ctx.Err(); io.EOF passes
// through when the wrapped source is exhausted.
//
//rfvet:allow wallclock -- real-time pacing is this type's purpose: the slot grid is anchored to the wall clock by design
func (s *PacedSource) Next(ctx context.Context) (*fmcw.Frame, error) {
	if s.interval > 0 && !s.next.IsZero() {
		if wait := time.Until(s.next); wait > 0 {
			if ctx == nil {
				time.Sleep(wait)
			} else {
				t := time.NewTimer(wait)
				select {
				case <-t.C:
				case <-ctx.Done():
					t.Stop()
					return nil, ctx.Err()
				}
			}
		}
	}
	f, err := s.src.Next(ctx)
	if err != nil {
		return nil, err
	}
	if s.next.IsZero() {
		s.next = time.Now()
	}
	s.next = s.next.Add(s.interval)
	return f, nil
}
