package pipeline

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"rfprotect/internal/fmcw"
	"rfprotect/internal/radar"
)

// dopplerParams is a noiseless configuration with a 1 kHz frame rate, so
// the slow-time sampling interval is 1 ms and the unambiguous velocity band
// (±λ·FrameRate/4 ≈ ±11.5 m/s) comfortably covers walking-speed targets.
func dopplerParams() fmcw.Params {
	p := fmcw.DefaultParams()
	p.FrameRate = 1000
	p.NoiseStd = 0
	return p
}

// scattererFrames synthesizes nFrames of a single point scatterer starting
// at range r0 and approaching at constant radial velocity v (m/s; negative
// = receding): delay τ(t) = 2(r0 − v·t)/C, so the carrier phase 2π·f_c·τ
// rotates at the physical Doppler frequency 2·v·f_c/C.
func scattererFrames(p fmcw.Params, nFrames int, r0, v float64) []*fmcw.Frame {
	frames := make([]*fmcw.Frame, nFrames)
	for i := range frames {
		t := float64(i) / p.FrameRate
		d := r0 - v*t
		ret := fmcw.Return{Delay: 2 * d / fmcw.C, Amplitude: 1, AoA: math.Pi / 2}
		frames[i] = fmcw.SynthesizeWorkers(p, []fmcw.Return{ret}, t, nil, 1)
	}
	return frames
}

// lastDopplerMap pushes the frames through a DopplerStage and returns the
// sliding-window map ending at the last frame.
func lastDopplerMap(t *testing.T, frames []*fmcw.Frame, window int) *radar.RangeDopplerMap {
	t.Helper()
	pr := radar.NewProcessor(radar.DefaultConfig())
	dop := NewDoppler(pr, window, 0)
	col := &dopplerCollector{}
	if _, err := New(FromFrames(frames), dop, col).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if col.last == nil {
		t.Fatal("window never filled: no range–Doppler map produced")
	}
	return col.last
}

// TestDopplerStagePeakMatchesVelocity is the physical property the Doppler
// subsystem must satisfy: a scatterer at constant radial velocity v puts
// its slow-time peak within one Doppler bin of the physical Doppler
// frequency 2·v·f_c/C (equivalently, bin BinOfVelocity(v)), at the right
// range; a static scatterer lands in the zero-Doppler bin. Table-driven
// over approaching and receding velocities at multiple ranges.
func TestDopplerStagePeakMatchesVelocity(t *testing.T) {
	const window = 64
	p := dopplerParams()
	cases := []struct {
		name string
		r0   float64
		v    float64
	}{
		{"static-2m", 2, 0},
		{"static-5m", 5, 0},
		{"approach-slow-3m", 3, 0.7},
		{"approach-walk-2m", 2, 1.3},
		{"approach-walk-6m", 6, 1.3},
		{"approach-fast-4m", 4, 3.0},
		{"recede-slow-3m", 3, -0.7},
		{"recede-walk-5m", 5, -1.3},
		{"recede-fast-2m", 2, -3.0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := lastDopplerMap(t, scattererFrames(p, window, c.r0, c.v), window)
			// Global peak of the map.
			bestR, bestD, bestP := -1, -1, 0.0
			for r := 0; r < m.RangeBins; r++ {
				for d := 0; d < m.DopplerBins; d++ {
					if pw := m.At(r, d); pw > bestP {
						bestR, bestD, bestP = r, d, pw
					}
				}
			}
			if bestP == 0 {
				t.Fatal("empty range–Doppler map")
			}
			wantD := m.BinOfVelocity(c.v)
			if c.v == 0 && wantD != float64(m.DopplerBins)/2 {
				t.Fatalf("zero velocity maps to bin %v, want the zero-Doppler bin %d", wantD, m.DopplerBins/2)
			}
			if diff := math.Abs(float64(bestD) - wantD); diff > 1 {
				t.Fatalf("Doppler peak at bin %d, want within one bin of %.2f (v=%v m/s, off by %.2f bins)",
					bestD, wantD, c.v, diff)
			}
			// The window's center range (the scatterer moves during the burst).
			midRange := c.r0 - c.v*float64(window/2)/p.FrameRate
			if diff := math.Abs(float64(bestR) - m.BinOfRange(midRange)); diff > 1.5 {
				t.Fatalf("range peak at bin %d, want near %.2f", bestR, m.BinOfRange(midRange))
			}
			// Velocity read back through the peak extractor agrees too.
			v, _, ok := m.PeakVelocityAtRange(midRange, 1)
			if !ok {
				t.Fatal("PeakVelocityAtRange found no peak at the scatterer's range")
			}
			binWidth := m.VelocityOfBin(0) - m.VelocityOfBin(1)
			if math.Abs(binWidth) < 1e-12 {
				t.Fatal("degenerate Doppler bin width")
			}
			if err := math.Abs(v - c.v); err > math.Abs(binWidth) {
				t.Fatalf("extracted velocity %v, want %v within one bin width %v", v, c.v, binWidth)
			}
		})
	}
}

// TestDopplerStageWindowSlides verifies the ring buffer actually slides: a
// target that speeds up mid-capture must show different velocities in maps
// taken before and after the change.
func TestDopplerStageWindowSlides(t *testing.T) {
	const window = 32
	p := dopplerParams()
	slow := scattererFrames(p, window, 4, 0.5)
	// Continue from where the slow segment ended, twice as fast.
	endR := 4 - 0.5*float64(window-1)/p.FrameRate
	fast := make([]*fmcw.Frame, window)
	for i := range fast {
		tm := float64(window+i) / p.FrameRate
		d := endR - 2.5*float64(i+1)/p.FrameRate
		ret := fmcw.Return{Delay: 2 * d / fmcw.C, Amplitude: 1, AoA: math.Pi / 2}
		fast[i] = fmcw.SynthesizeWorkers(p, []fmcw.Return{ret}, tm, nil, 1)
	}
	mSlow := lastDopplerMap(t, slow, window)
	mFast := lastDopplerMap(t, append(slow, fast...), window)
	vSlow, _, ok1 := mSlow.PeakVelocityAtRange(4, 2)
	vFast, _, ok2 := mFast.PeakVelocityAtRange(endR, 2)
	if !ok1 || !ok2 {
		t.Fatal("missing Doppler peaks")
	}
	if vFast <= vSlow+0.5 {
		t.Fatalf("window did not slide: velocity before %v, after speed-up %v", vSlow, vFast)
	}
}

// TestTrackVelocitySurfaced runs the full velocity-aware chain over a
// straight-line approach and checks the confirmed track carries a Doppler
// radial velocity of the right sign and magnitude.
func TestTrackVelocitySurfaced(t *testing.T) {
	s := testSession(t)
	pr := radar.NewProcessor(radar.DefaultConfig())
	trk := NewTrackWithVelocity(radar.TrackerConfig{}, s.Scene.Radar)
	stages := append(FrontEndStages(pr, s.Scene.Radar), NewDoppler(pr, 8, 0), trk)
	p := New(s.Scene.Stream(0, 40, rand.New(rand.NewSource(17))), stages...)
	if _, err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	tracks := trk.Tracks()
	if len(tracks) == 0 {
		t.Fatal("no confirmed tracks")
	}
	// At a 20 Hz frame rate the unambiguous band is ±λ·FrameRate/4; every
	// surfaced estimate must fold into it.
	nyq := s.Scene.Params.Wavelength() * s.Scene.Params.FrameRate / 4
	withV := 0
	for _, tr := range tracks {
		if !tr.HasVelocity {
			continue
		}
		withV++
		if math.Abs(tr.RadialVelocity) > nyq+1e-9 {
			t.Fatalf("velocity %v outside unambiguous band ±%v", tr.RadialVelocity, nyq)
		}
	}
	if withV == 0 {
		t.Fatal("no track carries a radial-velocity estimate")
	}
}
