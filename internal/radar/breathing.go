package radar

import (
	"math"
	"math/cmplx"

	"rfprotect/internal/dsp"
	"rfprotect/internal/fmcw"
)

// BreathingExtractor recovers the chest-motion phase signal of a static
// target from a frame sequence, the technique of Adib et al. (CHI'15) that
// §11.4 spoofs: the carrier phase at the target's range bin oscillates with
// chest displacement δ as 4π·δ/λ.
type BreathingExtractor struct {
	Antenna int // array element to use (phase is coherent across elements)
}

// rangeBinOf returns the FFT bin index for a target at the given distance.
func rangeBinOf(p fmcw.Params, distance float64) int {
	n := p.SamplesPerChirp()
	return int(math.Round(p.BeatFrequency(distance) / p.SampleRate * float64(n)))
}

// PhaseSeries returns the unwrapped phase at the range bin nearest to
// distance, one sample per frame, along with the frame times.
func (b BreathingExtractor) PhaseSeries(frames []*fmcw.Frame, distance float64) (times, phase []float64) {
	if len(frames) == 0 {
		return nil, nil
	}
	p := frames[0].Params
	bin := rangeBinOf(p, distance)
	n := p.SamplesPerChirp()
	ant := b.Antenna
	if ant < 0 || ant >= p.NumAntennas {
		ant = 0
	}
	wrapped := make([]float64, len(frames))
	times = make([]float64, len(frames))
	x := make([]complex128, n)
	win := dsp.Hann.Coefficients(n)
	for i, f := range frames {
		for j, v := range f.Data[ant] {
			x[j] = v * complex(win[j], 0)
		}
		dsp.FFTInPlace(x)
		wrapped[i] = cmplx.Phase(x[bin])
		times[i] = f.Time
	}
	return times, dsp.Unwrap(wrapped)
}

// EstimateRate returns the breathing rate in Hz from an unwrapped phase
// series sampled at frameRate.
func EstimateRate(phase []float64, frameRate float64) float64 {
	// Detrend: remove the linear component so slow drift does not leak into
	// the rate estimate.
	d := detrend(phase)
	return dsp.DominantFrequency(d, frameRate)
}

// detrend removes the least-squares line from x.
func detrend(x []float64) []float64 {
	n := len(x)
	if n < 2 {
		out := make([]float64, n)
		copy(out, x)
		return out
	}
	var sx, sy, sxx, sxy float64
	for i, v := range x {
		fi := float64(i)
		sx += fi
		sy += v
		sxx += fi * fi
		sxy += fi * v
	}
	fn := float64(n)
	den := fn*sxx - sx*sx
	var slope, intercept float64
	if den != 0 {
		slope = (fn*sxy - sx*sy) / den
		intercept = (sy - slope*sx) / fn
	} else {
		intercept = sy / fn
	}
	out := make([]float64, n)
	for i, v := range x {
		out[i] = v - (intercept + slope*float64(i))
	}
	return out
}
