package radar

import (
	"math"
	"math/cmplx"

	"rfprotect/internal/dsp"
	"rfprotect/internal/fmcw"
)

// BreathingExtractor recovers the chest-motion phase signal of a static
// target from a frame sequence, the technique of Adib et al. (CHI'15) that
// §11.4 spoofs: the carrier phase at the target's range bin oscillates with
// chest displacement δ as 4π·δ/λ.
type BreathingExtractor struct {
	Antenna int // array element to use (phase is coherent across elements)
}

// rangeBinOf returns the FFT bin index for a target at the given distance.
func rangeBinOf(p fmcw.Params, distance float64) int {
	n := p.SamplesPerChirp()
	return int(math.Round(p.BeatFrequency(distance) / p.SampleRate * float64(n)))
}

// PhaseSeries returns the unwrapped phase at the range bin nearest to
// distance, one sample per frame, along with the frame times. It is the
// batch wrapper over NewStream/Step.
func (b BreathingExtractor) PhaseSeries(frames []*fmcw.Frame, distance float64) (times, phase []float64) {
	if len(frames) == 0 {
		return nil, nil
	}
	ps := b.NewStream(frames[0].Params, distance)
	for _, f := range frames {
		ps.Step(f)
	}
	return ps.Series()
}

// PhaseStream is the streaming form of PhaseSeries: feed it frames one at a
// time and it extracts and unwraps the phase at its range bin incrementally,
// holding only one sample of unwrap state per step (the accumulated series
// is the output, not working memory). The incremental unwrap applies the
// same ±2π offset recurrence as dsp.Unwrap, so the series is bit-identical
// to the batch extraction.
type PhaseStream struct {
	bin    int
	ant    int
	win    []float64
	x      []complex128
	times  []float64
	phase  []float64
	prev   float64 // previous wrapped sample
	offset float64 // accumulated unwrap offset
}

// NewStream returns a PhaseStream for frames with the given parameters,
// monitoring the range bin nearest to distance.
func (b BreathingExtractor) NewStream(p fmcw.Params, distance float64) *PhaseStream {
	n := p.SamplesPerChirp()
	ant := b.Antenna
	if ant < 0 || ant >= p.NumAntennas {
		ant = 0
	}
	return &PhaseStream{
		bin: rangeBinOf(p, distance),
		ant: ant,
		win: dsp.Hann.Coefficients(n),
		x:   make([]complex128, n),
	}
}

// Step consumes the next frame and returns its capture time and unwrapped
// phase sample.
func (ps *PhaseStream) Step(f *fmcw.Frame) (t, unwrapped float64) {
	for j, v := range f.Data[ps.ant] {
		ps.x[j] = v * complex(ps.win[j], 0)
	}
	dsp.FFTInPlace(ps.x)
	w := cmplx.Phase(ps.x[ps.bin])
	unwrapped = w
	if len(ps.phase) > 0 {
		d := w - ps.prev
		if d > math.Pi {
			ps.offset -= 2 * math.Pi
		} else if d < -math.Pi {
			ps.offset += 2 * math.Pi
		}
		unwrapped = w + ps.offset
	}
	ps.prev = w
	ps.times = append(ps.times, f.Time)
	ps.phase = append(ps.phase, unwrapped)
	return f.Time, unwrapped
}

// Series returns the accumulated frame times and unwrapped phase samples.
func (ps *PhaseStream) Series() (times, phase []float64) { return ps.times, ps.phase }

// EstimateRate returns the breathing rate in Hz from an unwrapped phase
// series sampled at frameRate.
func EstimateRate(phase []float64, frameRate float64) float64 {
	// Detrend: remove the linear component so slow drift does not leak into
	// the rate estimate.
	d := detrend(phase)
	return dsp.DominantFrequency(d, frameRate)
}

// detrend removes the least-squares line from x.
func detrend(x []float64) []float64 {
	n := len(x)
	if n < 2 {
		out := make([]float64, n)
		copy(out, x)
		return out
	}
	var sx, sy, sxx, sxy float64
	for i, v := range x {
		fi := float64(i)
		sx += fi
		sy += v
		sxx += fi * fi
		sxy += fi * v
	}
	fn := float64(n)
	den := fn*sxx - sx*sx
	var slope, intercept float64
	if den != 0 {
		slope = (fn*sxy - sx*sy) / den
		intercept = (sy - slope*sx) / fn
	} else {
		intercept = sy / fn
	}
	out := make([]float64, n)
	for i, v := range x {
		out[i] = v - (intercept + slope*float64(i))
	}
	return out
}
