package radar

import (
	"context"
	"sync"

	"rfprotect/internal/dsp"
	"rfprotect/internal/fmcw"
	"rfprotect/internal/parallel"
)

// This file holds the destination-passing half of the processor: the
// RangeAngleInto / RangeDopplerInto kernels and the per-Processor scratch
// they reuse. The allocating RangeAngleCtx / RangeDopplerCtx methods are
// thin wrappers over these, so there is exactly one implementation of each
// kernel and the Into variants are bit-identical to the historical output
// by construction.
//
// The scratch caches everything whose lifetime exceeds one call: window
// coefficient tables, per-antenna spectra buffers, per-range-bin Doppler
// columns, and — critically — the fan-out closures themselves. A closure
// passed to parallel.ForEachCtx escapes and would cost one heap allocation
// per call; binding it once against the scratch struct and feeding it
// per-call state through scratch fields makes the steady state of both
// kernels allocation-free at Workers: 1. (Worker goroutine spawns still
// allocate, so multi-worker calls cost O(workers) allocations — scheduling
// overhead, not per-sample garbage.)

// raScratch is the reusable state behind RangeAngleInto, keyed by the
// frame parameters it was built for. The mutex serializes whole calls:
// concurrent RangeAngle* calls on one Processor are safe (they were safe
// when the kernel was stateless, and callers — e.g. duplicated pipeline
// stages sharing a processor — rely on that), they just don't overlap.
type raScratch struct {
	mu      sync.Mutex
	valid   bool
	params  fmcw.Params
	win     []float64
	spectra [][]complex128 // one windowed-FFT row per antenna
	st      [][]complex128
	minBin  int
	maxBin  int
	fftFn   func(k int)
	beamFn  func(i int)
	// Per-call state read by the pre-bound closures; set on entry to
	// RangeAngleInto and cleared on exit so the scratch never retains the
	// caller's (possibly pooled) frame or profile.
	frame *fmcw.Frame
	prof  *Profile
}

func (pr *Processor) raSetup(p fmcw.Params) {
	s := &pr.ra
	if s.valid && s.params == p {
		return
	}
	n := p.SamplesPerChirp()
	nAnt := p.NumAntennas
	s.win = pr.cfg.Window.Coefficients(n)
	backing := make([]complex128, nAnt*n)
	s.spectra = make([][]complex128, nAnt)
	for k := range s.spectra {
		s.spectra[k], backing = backing[:n:n], backing[n:]
	}
	s.minBin = pr.minRangeBin(p, n)
	s.maxBin = pr.maxRangeBin(p, n)
	s.st = pr.steeringFor(p)
	dsp.FFTInPlace(s.spectra[0]) // warm the size-n plan before the fan-out
	s.fftFn = func(k int) {
		row := s.spectra[k]
		for i, v := range s.frame.Data[k] {
			row[i] = v * complex(s.win[i], 0)
		}
		dsp.FFTInPlace(row)
	}
	s.beamFn = func(i int) {
		r := s.minBin + i
		bins := s.prof.AngleBins
		row := s.prof.Power[r*bins : (r+1)*bins]
		for a := 0; a < bins; a++ {
			var sum complex128
			w := s.st[a]
			for k := range s.spectra {
				sum += s.spectra[k][r] * w[k]
			}
			row[a] = real(sum)*real(sum) + imag(sum)*imag(sum)
		}
	}
	s.params = p
	s.valid = true
}

// RangeAngleInto computes the range–angle power profile of f into prof,
// reusing prof.Power's capacity when it suffices — the destination-passing
// core of RangeAngle/RangeAngleCtx, bit-identical to both for any worker
// count and any prior contents of prof. After the first call for a given
// frame shape, a call with Config{Workers: 1} allocates nothing.
//
// On cancellation prof holds partially written garbage and must be
// discarded (or simply passed to the next call, which overwrites it).
func (pr *Processor) RangeAngleInto(ctx context.Context, f *fmcw.Frame, prof *Profile) error {
	if prof == nil {
		panic("radar: RangeAngleInto with nil profile")
	}
	s := &pr.ra
	s.mu.Lock()
	defer s.mu.Unlock()
	pr.raSetup(f.Params)
	s.frame, s.prof = f, prof
	defer func() { s.frame, s.prof = nil, nil }()

	bins := pr.cfg.AngleBins
	prof.Params = f.Params
	prof.Time = f.Time
	prof.RangeBins = s.maxBin
	prof.AngleBins = bins
	if need := s.maxBin * bins; cap(prof.Power) >= need {
		prof.Power = prof.Power[:need]
	} else {
		prof.Power = make([]float64, need)
	}
	// The beamforming sweep writes only rows [minBin, maxBin); zero the
	// skipped near-range rows so a reused Power matches a fresh one exactly.
	head := prof.Power[:s.minBin*bins]
	for i := range head {
		head[i] = 0
	}
	// Windowed range FFT per antenna, then Eq. 2 beamforming per range bin;
	// every work item writes only its own row, so any fan-out width yields
	// the same bits.
	if err := parallel.ForEachCtx(ctx, len(s.spectra), pr.cfg.Workers, s.fftFn); err != nil {
		return err
	}
	return parallel.ForEachCtx(ctx, s.maxBin-s.minBin, pr.cfg.Workers, s.beamFn)
}

// rdScratch is the reusable state behind RangeDopplerInto, keyed by the
// chirp parameters and the burst length it was built for. As with
// raScratch, the mutex keeps concurrent RangeDoppler* calls on one
// Processor safe by serializing them.
type rdScratch struct {
	mu      sync.Mutex
	valid   bool
	params  fmcw.Params
	nd      int
	win     []float64      // fast-time window, length n
	dwin    []float64      // slow-time Hann, length nd
	spectra [][]complex128 // one windowed range-FFT row per chirp
	cols    [][]complex128 // one slow-time column per range bin
	maxBin  int
	fftFn   func(k int)
	colFn   func(r int)
	// Per-call state read by the pre-bound closures.
	chirps  []*fmcw.Frame
	antenna int
	m       *RangeDopplerMap
}

func (pr *Processor) rdSetup(p fmcw.Params, nd int) {
	s := &pr.rd
	if s.valid && s.params == p && s.nd == nd {
		return
	}
	n := p.SamplesPerChirp()
	s.win = pr.cfg.Window.Coefficients(n)
	s.dwin = dsp.Hann.Coefficients(nd)
	s.maxBin = pr.maxRangeBin(p, n)
	fast := make([]complex128, nd*n)
	s.spectra = make([][]complex128, nd)
	for k := range s.spectra {
		s.spectra[k], fast = fast[:n:n], fast[n:]
	}
	slow := make([]complex128, s.maxBin*nd)
	s.cols = make([][]complex128, s.maxBin)
	for r := range s.cols {
		s.cols[r], slow = slow[:nd:nd], slow[nd:]
	}
	// Warm both plan sizes before the fan-outs.
	dsp.FFTInPlace(s.spectra[0])
	if s.maxBin > 0 {
		dsp.FFTInPlace(s.cols[0])
	}
	s.fftFn = func(k int) {
		row := s.spectra[k]
		for i, v := range s.chirps[k].Data[s.antenna] {
			row[i] = v * complex(s.win[i], 0)
		}
		dsp.FFTInPlace(row)
	}
	s.colFn = func(r int) {
		col := s.cols[r]
		for k := 0; k < s.nd; k++ {
			col[k] = s.spectra[k][r] * complex(s.dwin[k], 0)
		}
		dsp.FFTInPlace(col)
		// Fused fftshift + power detection: FFTShift(x)[d] = x[(d+half)%nd]
		// with half = (nd+1)/2, so index the shifted order directly instead
		// of materializing a shifted copy.
		half := (s.nd + 1) / 2
		row := s.m.Power[r*s.nd : (r+1)*s.nd]
		for d := range row {
			v := col[(d+half)%s.nd]
			row[d] = real(v)*real(v) + imag(v)*imag(v)
		}
	}
	s.params = p
	s.nd = nd
	s.valid = true
}

// RangeDopplerInto computes the range–Doppler map of a chirp burst into m,
// reusing m.Power's capacity when it suffices — the destination-passing
// core of RangeDoppler/RangeDopplerCtx, bit-identical to both for any
// worker count and any prior contents of m. After the first call for a
// given (parameters, burst length), a call with Config{Workers: 1}
// allocates nothing; note a sliding window that is still filling changes
// the burst length every frame, so the allocation-free steady state begins
// once the window is full.
//
// On cancellation m holds partially written garbage and must be discarded
// (or passed to the next call, which overwrites it).
func (pr *Processor) RangeDopplerInto(ctx context.Context, m *RangeDopplerMap, chirps []*fmcw.Frame, antenna int, pri float64) error {
	if m == nil {
		panic("radar: RangeDopplerInto with nil map")
	}
	if len(chirps) == 0 {
		*m = RangeDopplerMap{Power: m.Power[:0]}
		return nil
	}
	p := chirps[0].Params
	if antenna < 0 || antenna >= p.NumAntennas {
		antenna = 0
	}
	nd := len(chirps)
	s := &pr.rd
	s.mu.Lock()
	defer s.mu.Unlock()
	pr.rdSetup(p, nd)
	s.chirps, s.antenna, s.m = chirps, antenna, m
	defer func() { s.chirps, s.m = nil, nil }()

	m.Params = p
	m.PRI = pri
	m.RangeBins = s.maxBin
	m.DopplerBins = nd
	if need := s.maxBin * nd; cap(m.Power) >= need {
		m.Power = m.Power[:need]
	} else {
		m.Power = make([]float64, need)
	}
	// Range FFT per chirp, then slow-time FFT + shift + power per range
	// bin; disjoint destinations per work item keep any fan-out width
	// bit-identical.
	if err := parallel.ForEachCtx(ctx, nd, pr.cfg.Workers, s.fftFn); err != nil {
		return err
	}
	return parallel.ForEachCtx(ctx, s.maxBin, pr.cfg.Workers, s.colFn)
}
