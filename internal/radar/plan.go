package radar

import (
	"context"
	"math"
	"math/cmplx"
	"sync"

	"rfprotect/internal/dsp"
	"rfprotect/internal/fmcw"
	"rfprotect/internal/parallel"
)

// This file holds the compiled front end: one FrontEndPlan per
// (Config, fmcw.Params) shape owns every input-independent table the
// range–angle, range–Doppler, and detection kernels need — window
// coefficients, the steering matrix in both layouts, range-bin limits — plus
// free lists of per-call executor scratch. The plan replaces the three
// hand-rolled scratch structs (raScratch, rdScratch, and Detect's per-call
// buffers) that previous revisions grew independently.
//
// Lifecycle and thread-safety contract:
//
//   - CompileFrontEndPlan builds a plan once; the tables are immutable
//     afterwards and shared by every goroutine.
//   - Each kernel call checks an executor out of the plan's free list and
//     returns it on exit, so concurrent calls on one plan OVERLAP (each gets
//     its own spectra/accumulator buffers) instead of serializing the way
//     the old per-Processor scratch mutex forced. The free lists are plain
//     mutex-guarded stacks the GC never empties, keeping the warmed-up
//     steady state at exactly zero allocations per call.
//   - Executors feed per-call state (frame, profile) to their pre-bound
//     fan-out closures through fields, cleared on exit so a parked executor
//     never retains a caller's pooled buffers.
//
// Every kernel is bit-identical to the pre-plan implementation: the
// beamforming sweep accumulates the same complex sum in the same k-order
// (just in split real/imaginary registers), the fused windowed FFT performs
// the same multiplies in a different pass, and the batched fan-out only
// changes how bins are grouped onto work items, never what a bin computes.

// beamBatch is the number of range bins one fan-out work item sweeps. The
// old code fanned out one closure invocation per bin; batching amortizes
// the dynamic work-claiming overhead over enough arithmetic to hide it
// while still leaving plenty of items to balance across workers.
const beamBatch = 16

// beamMaxAVXAnt caps the antenna count the AVX sweep handles: its packed
// (re, im) input lives in a fixed-size stack array so concurrently-swept
// rows never share scratch. Larger arrays fall back to the scalar kernels.
const beamMaxAVXAnt = 32

// FrontEndPlan is the compiled front end for one radar shape. Compile it
// once (or let a Processor compile it lazily) and share it: all methods are
// safe for concurrent use.
type FrontEndPlan struct {
	cfg    Config
	params fmcw.Params
	n      int // samples per chirp = range-FFT length
	nAnt   int
	minBin int
	maxBin int

	win []float64 // fast-time window coefficients, length n

	// steering[a][k] is the beamforming weight conj(steer) of Eq. 2 for
	// angle bin a, antenna k — the layout the rest of the package (and its
	// tests) historically used. steerRe/steerIm hold the same values
	// transposed to antenna-major planes (steerRe[k][a]), the layout the
	// beamforming inner loop streams through; steerReFlat/steerImFlat are
	// the contiguous backings of those planes (row k at offset k*AngleBins),
	// which the vectorized sweep addresses with a single base pointer and a
	// stride.
	steering    [][]complex128
	steerRe     [][]float64
	steerIm     [][]float64
	steerReFlat []float64
	steerImFlat []float64

	raMu   sync.Mutex
	raFree []*raExec

	rdMu     sync.Mutex
	rdShapes map[int]*rdShape // keyed by burst length nd

	detMu   sync.Mutex
	detFree []*detExec
}

// CompileFrontEndPlan builds the front-end plan for one radar shape,
// normalizing zero-valued cfg fields exactly as NewProcessor does. The call
// also warms the dsp plan for the range-FFT size so the first frame's
// fan-out never races plan construction.
func CompileFrontEndPlan(cfg Config, p fmcw.Params) *FrontEndPlan {
	cfg = normalizeConfig(cfg)
	n := p.SamplesPerChirp()
	pl := &FrontEndPlan{
		cfg:      cfg,
		params:   p,
		n:        n,
		nAnt:     p.NumAntennas,
		minBin:   minRangeBin(cfg, p, n),
		maxBin:   maxRangeBin(cfg, p, n),
		win:      cfg.Window.Coefficients(n),
		steering: steeringTable(cfg.AngleBins, p),
		rdShapes: map[int]*rdShape{},
	}
	bins := cfg.AngleBins
	reBack := make([]float64, pl.nAnt*bins)
	imBack := make([]float64, pl.nAnt*bins)
	pl.steerReFlat, pl.steerImFlat = reBack, imBack
	pl.steerRe = make([][]float64, pl.nAnt)
	pl.steerIm = make([][]float64, pl.nAnt)
	for k := 0; k < pl.nAnt; k++ {
		pl.steerRe[k], reBack = reBack[:bins:bins], reBack[bins:]
		pl.steerIm[k], imBack = imBack[:bins:bins], imBack[bins:]
		for a := 0; a < bins; a++ {
			w := pl.steering[a][k]
			pl.steerRe[k][a] = real(w)
			pl.steerIm[k][a] = imag(w)
		}
	}
	dsp.FFTInPlace(make([]complex128, n))
	return pl
}

// Params returns the radar shape the plan was compiled for.
func (pl *FrontEndPlan) Params() fmcw.Params { return pl.params }

// Config returns the plan's effective (normalized) configuration.
func (pl *FrontEndPlan) Config() Config { return pl.cfg }

// steeringTable builds the Eq. 2 matched-filter steering matrix:
// steering[a][k] = exp(+j2πkd cosθ_a/λ), the conjugate of the synthesis
// steering phase.
func steeringTable(bins int, p fmcw.Params) [][]complex128 {
	lambda := p.Wavelength()
	d := p.Spacing()
	st := make([][]complex128, bins)
	for a := 0; a < bins; a++ {
		theta := float64(a) * math.Pi / float64(bins-1)
		row := make([]complex128, p.NumAntennas)
		for k := 0; k < p.NumAntennas; k++ {
			row[k] = cmplx.Exp(complex(0, 2*math.Pi*float64(k)*d*math.Cos(theta)/lambda))
		}
		st[a] = row
	}
	return st
}

func maxRangeBin(cfg Config, p fmcw.Params, n int) int {
	maxBin := n / 2
	if cfg.MaxRange > 0 {
		b := int(math.Ceil(p.BeatFrequency(cfg.MaxRange) / p.SampleRate * float64(n)))
		if b < maxBin {
			maxBin = b
		}
	}
	return maxBin
}

func minRangeBin(cfg Config, p fmcw.Params, n int) int {
	if cfg.MinRange <= 0 {
		return 0
	}
	return int(p.BeatFrequency(cfg.MinRange) / p.SampleRate * float64(n))
}

// raExec is one range–angle execution context: the per-call buffers and
// pre-bound fan-out closures of a single RangeAngleInto call in flight.
type raExec struct {
	pl      *FrontEndPlan
	spectra [][]complex128 // one windowed range-FFT row per antenna
	fftFn   func(k int)
	beamFn  func(b int)
	// Per-call state read by the closures; cleared on exit.
	frame *fmcw.Frame
	prof  *Profile
}

func (pl *FrontEndPlan) getRA() *raExec {
	pl.raMu.Lock()
	if k := len(pl.raFree); k > 0 {
		e := pl.raFree[k-1]
		pl.raFree[k-1] = nil
		pl.raFree = pl.raFree[:k-1]
		pl.raMu.Unlock()
		return e
	}
	pl.raMu.Unlock()
	return pl.newRAExec()
}

func (pl *FrontEndPlan) putRA(e *raExec) {
	pl.raMu.Lock()
	pl.raFree = append(pl.raFree, e)
	pl.raMu.Unlock()
}

func (pl *FrontEndPlan) newRAExec() *raExec {
	e := &raExec{pl: pl}
	backing := make([]complex128, pl.nAnt*pl.n)
	e.spectra = make([][]complex128, pl.nAnt)
	for k := range e.spectra {
		e.spectra[k], backing = backing[:pl.n:pl.n], backing[pl.n:]
	}
	e.fftFn = func(k int) {
		dsp.WindowedFFTTo(e.spectra[k], e.frame.Data[k], pl.win)
	}
	e.beamFn = func(b int) {
		r0 := pl.minBin + b*beamBatch
		r1 := r0 + beamBatch
		if r1 > pl.maxBin {
			r1 = pl.maxBin
		}
		e.beamSweep(r0, r1)
	}
	return e
}

// beamSweep runs Eq. 2 beamforming over range bins [r0, r1). For each bin
// it computes, per angle, the same complex sum the scalar kernel did —
// Σ_k spectra[k][r]·steering[a][k], products and additions in the same
// k order — with the accumulator split into real/imaginary registers and
// the antenna sum unrolled for the common array sizes, so successive angle
// bins are independent instruction chains instead of one long dependent
// complex-add chain. Two facts make the restructure bit-safe: amd64
// performs no FMA contraction on float64 expressions, so the split-plane
// products round exactly like the complex-multiply lowering; and dropping
// the scalar kernel's 0+first-term seed can only flip the sign of a zero
// accumulator, which the final squaring maps to +0 either way.
func (e *raExec) beamSweep(r0, r1 int) {
	pl := e.pl
	bins := pl.cfg.AngleBins
	vector := useBeamAVX && bins >= 4 && pl.nAnt <= beamMaxAVXAnt
	for r := r0; r < r1; r++ {
		row := e.prof.Power[r*bins : (r+1)*bins : (r+1)*bins]
		if vector {
			e.beamRowAVX(row, r)
			continue
		}
		switch pl.nAnt {
		case 7:
			e.beamRow7(row, r)
		case 4:
			e.beamRow4(row, r)
		case 2:
			e.beamRow2(row, r)
		default:
			e.beamRowN(row, r)
		}
	}
}

// beamRowAVX runs the row kernel four angle bins at a time through the
// hand-written AVX sweep, with a scalar tail for the last len(row)%4 bins.
// Vectorizing across angle bins is bit-safe by construction: each lane
// performs exactly the scalar kernel's multiply/add sequence for its own
// angle (VMULPD/VADDPD/VSUBPD are lanewise IEEE-754 double ops, and amd64
// never contracts to FMA), so every lane rounds identically to the scalar
// path.
func (e *raExec) beamRowAVX(row []float64, r int) {
	pl := e.pl
	// Pack the per-bin spectra on the stack: at Workers > 1 the rows of one
	// sweep run concurrently on one raExec, so per-exec scratch would race.
	// beamSweepAVX is //go:noescape, so sbuf never reaches the heap.
	var sbuf [2 * beamMaxAVXAnt]float64
	s := sbuf[:2*pl.nAnt]
	for k := 0; k < pl.nAnt; k++ {
		v := e.spectra[k][r]
		s[2*k] = real(v)
		s[2*k+1] = imag(v)
	}
	n4 := len(row) &^ 3
	beamSweepAVX(&row[0], n4, pl.nAnt, &s[0], &pl.steerReFlat[0], &pl.steerImFlat[0], pl.cfg.AngleBins)
	if n4 < len(row) {
		e.beamRowTail(row, r, n4)
	}
}

// beamRowTail computes angle bins [a0, len(row)) with the scalar expression
// the AVX lanes execute: antenna-0 seed, then ascending-k accumulation in
// split real/imaginary planes — the same order (and therefore the same bits)
// as the unrolled row kernels.
func (e *raExec) beamRowTail(row []float64, r, a0 int) {
	pl := e.pl
	s0 := e.spectra[0][r]
	for a := a0; a < len(row); a++ {
		re, im := real(s0), imag(s0)
		for k := 1; k < pl.nAnt; k++ {
			sk := e.spectra[k][r]
			skr, ski := real(sk), imag(sk)
			wr := pl.steerRe[k][a]
			wi := pl.steerIm[k][a]
			re += skr*wr - ski*wi
			im += skr*wi + ski*wr
		}
		row[a] = re*re + im*im
	}
}

// beamRow7 is the row kernel for the paper's 7-element array — the shape
// every evaluation scene runs, so it gets the full unroll. See beamRow4 for
// the bounds-check and antenna-0 notes.
func (e *raExec) beamRow7(row []float64, r int) {
	pl := e.pl
	bins := len(row)
	s0 := e.spectra[0][r]
	s1 := e.spectra[1][r]
	s2 := e.spectra[2][r]
	s3 := e.spectra[3][r]
	s4 := e.spectra[4][r]
	s5 := e.spectra[5][r]
	s6 := e.spectra[6][r]
	s0r, s0i := real(s0), imag(s0)
	s1r, s1i := real(s1), imag(s1)
	s2r, s2i := real(s2), imag(s2)
	s3r, s3i := real(s3), imag(s3)
	s4r, s4i := real(s4), imag(s4)
	s5r, s5i := real(s5), imag(s5)
	s6r, s6i := real(s6), imag(s6)
	w1r, w1i := pl.steerRe[1][:bins], pl.steerIm[1][:bins]
	w2r, w2i := pl.steerRe[2][:bins], pl.steerIm[2][:bins]
	w3r, w3i := pl.steerRe[3][:bins], pl.steerIm[3][:bins]
	w4r, w4i := pl.steerRe[4][:bins], pl.steerIm[4][:bins]
	w5r, w5i := pl.steerRe[5][:bins], pl.steerIm[5][:bins]
	w6r, w6i := pl.steerRe[6][:bins], pl.steerIm[6][:bins]
	for a := 0; a < bins; a++ {
		re := s0r + (s1r*w1r[a] - s1i*w1i[a])
		im := s0i + (s1r*w1i[a] + s1i*w1r[a])
		re += s2r*w2r[a] - s2i*w2i[a]
		im += s2r*w2i[a] + s2i*w2r[a]
		re += s3r*w3r[a] - s3i*w3i[a]
		im += s3r*w3i[a] + s3i*w3r[a]
		re += s4r*w4r[a] - s4i*w4i[a]
		im += s4r*w4i[a] + s4i*w4r[a]
		re += s5r*w5r[a] - s5i*w5i[a]
		im += s5r*w5i[a] + s5i*w5r[a]
		re += s6r*w6r[a] - s6i*w6i[a]
		im += s6r*w6i[a] + s6i*w6r[a]
		row[a] = re*re + im*im
	}
}

// beamRow4 is the 4-antenna beamforming row kernel. Reslicing every table
// to the row's length lets the compiler drop all bounds checks from the
// angle loop, and antenna 0 — whose steering weight is exp(0) = 1 at every
// angle — seeds the accumulators directly: the multiply by one it skips can
// only change the sign of a zero, which the squaring at the end erases.
func (e *raExec) beamRow4(row []float64, r int) {
	pl := e.pl
	bins := len(row)
	s0 := e.spectra[0][r]
	s1 := e.spectra[1][r]
	s2 := e.spectra[2][r]
	s3 := e.spectra[3][r]
	s0r, s0i := real(s0), imag(s0)
	s1r, s1i := real(s1), imag(s1)
	s2r, s2i := real(s2), imag(s2)
	s3r, s3i := real(s3), imag(s3)
	w1r, w1i := pl.steerRe[1][:bins], pl.steerIm[1][:bins]
	w2r, w2i := pl.steerRe[2][:bins], pl.steerIm[2][:bins]
	w3r, w3i := pl.steerRe[3][:bins], pl.steerIm[3][:bins]
	for a := 0; a < bins; a++ {
		re := s0r + (s1r*w1r[a] - s1i*w1i[a])
		im := s0i + (s1r*w1i[a] + s1i*w1r[a])
		re += s2r*w2r[a] - s2i*w2i[a]
		im += s2r*w2i[a] + s2i*w2r[a]
		re += s3r*w3r[a] - s3i*w3i[a]
		im += s3r*w3i[a] + s3i*w3r[a]
		row[a] = re*re + im*im
	}
}

// beamRow2 is the 2-antenna row kernel, with the same antenna-0 seeding as
// beamRow4.
func (e *raExec) beamRow2(row []float64, r int) {
	pl := e.pl
	bins := len(row)
	s0 := e.spectra[0][r]
	s1 := e.spectra[1][r]
	s0r, s0i := real(s0), imag(s0)
	s1r, s1i := real(s1), imag(s1)
	w1r, w1i := pl.steerRe[1][:bins], pl.steerIm[1][:bins]
	for a := 0; a < bins; a++ {
		re := s0r + (s1r*w1r[a] - s1i*w1i[a])
		im := s0i + (s1r*w1i[a] + s1i*w1r[a])
		row[a] = re*re + im*im
	}
}

// beamRowN is the any-antenna-count fallback. It loops angle-outer with
// register accumulators — per angle the adds land in the same ascending-k
// order as ever, so the bits don't change, and there is no shared scratch
// for concurrently-swept rows of one raExec to race on.
func (e *raExec) beamRowN(row []float64, r int) {
	pl := e.pl
	for a := range row {
		var re, im float64
		for k := 0; k < pl.nAnt; k++ {
			s := e.spectra[k][r]
			sr, si := real(s), imag(s)
			wr := pl.steerRe[k][a]
			wi := pl.steerIm[k][a]
			re += sr*wr - si*wi
			im += sr*wi + si*wr
		}
		row[a] = re*re + im*im
	}
}

// RangeAngleInto computes the range–angle power profile of f into prof,
// reusing prof.Power's capacity when it suffices. The frame must have the
// shape the plan was compiled for. Output is bit-identical to the
// historical Processor kernel for any worker count and any prior contents
// of prof; after the executor free list is warm, a Workers: 1 call
// allocates nothing. Concurrent calls on one plan are safe and overlap.
//
// On cancellation prof holds partially written garbage and must be
// discarded (or simply passed to the next call, which overwrites it).
//
//rfvet:allocfree
func (pl *FrontEndPlan) RangeAngleInto(ctx context.Context, f *fmcw.Frame, prof *Profile) error {
	if prof == nil {
		panic("radar: RangeAngleInto with nil profile")
	}
	if f.Params != pl.params {
		panic("radar: RangeAngleInto on a frame shape the plan was not compiled for")
	}
	e := pl.getRA()
	e.frame, e.prof = f, prof

	bins := pl.cfg.AngleBins
	prof.Params = f.Params
	prof.Time = f.Time
	prof.RangeBins = pl.maxBin
	prof.AngleBins = bins
	prof.Power = growFloats(prof.Power, pl.maxBin*bins)
	// The beamforming sweep writes only rows [minBin, maxBin); zero the
	// skipped near-range rows so a reused Power matches a fresh one exactly.
	head := prof.Power[:pl.minBin*bins]
	for i := range head {
		head[i] = 0
	}
	// Windowed range FFT per antenna, then Eq. 2 beamforming over batches
	// of range bins; every work item writes only its own rows, so any
	// fan-out width yields the same bits.
	err := parallel.ForEachCtx(ctx, pl.nAnt, pl.cfg.Workers, e.fftFn)
	if err == nil {
		nb := (pl.maxBin - pl.minBin + beamBatch - 1) / beamBatch
		err = parallel.ForEachCtx(ctx, nb, pl.cfg.Workers, e.beamFn)
	}
	e.frame, e.prof = nil, nil
	pl.putRA(e)
	return err
}

// rdShape is the per-burst-length slice of the plan: the slow-time window
// plus the executor free list for that length. Range–Doppler bursts change
// length while a sliding window fills, so the plan keeps one shape per nd.
type rdShape struct {
	nd   int
	dwin []float64 // slow-time Hann, length nd
	free []*rdExec
}

// rdExec is one range–Doppler execution context.
type rdExec struct {
	pl      *FrontEndPlan
	sh      *rdShape
	spectra [][]complex128 // one windowed range-FFT row per chirp
	cols    [][]complex128 // one slow-time column per fan-out batch
	fftFn   func(k int)
	colFn   func(b int)
	// Per-call state read by the closures; cleared on exit.
	chirps  []*fmcw.Frame
	antenna int
	m       *RangeDopplerMap
}

func (pl *FrontEndPlan) getRD(nd int) *rdExec {
	pl.rdMu.Lock()
	sh := pl.rdShapes[nd]
	if sh == nil {
		sh = &rdShape{nd: nd, dwin: dsp.Hann.Coefficients(nd)}
		pl.rdShapes[nd] = sh
		pl.rdMu.Unlock()
		// Warm the slow-time dsp plan outside the plan lock; size 8 (the
		// standard Doppler window) dispatches to the unrolled kernel.
		dsp.FFTInPlace(make([]complex128, nd))
		return pl.newRDExec(sh)
	}
	if k := len(sh.free); k > 0 {
		e := sh.free[k-1]
		sh.free[k-1] = nil
		sh.free = sh.free[:k-1]
		pl.rdMu.Unlock()
		return e
	}
	pl.rdMu.Unlock()
	return pl.newRDExec(sh)
}

func (pl *FrontEndPlan) putRD(e *rdExec) {
	pl.rdMu.Lock()
	e.sh.free = append(e.sh.free, e)
	pl.rdMu.Unlock()
}

func (pl *FrontEndPlan) newRDExec(sh *rdShape) *rdExec {
	e := &rdExec{pl: pl, sh: sh}
	nd := sh.nd
	fast := make([]complex128, nd*pl.n)
	e.spectra = make([][]complex128, nd)
	for k := range e.spectra {
		e.spectra[k], fast = fast[:pl.n:pl.n], fast[pl.n:]
	}
	nb := (pl.maxBin + beamBatch - 1) / beamBatch
	slow := make([]complex128, nb*nd)
	e.cols = make([][]complex128, nb)
	for b := range e.cols {
		e.cols[b], slow = slow[:nd:nd], slow[nd:]
	}
	e.fftFn = func(k int) {
		dsp.WindowedFFTTo(e.spectra[k], e.chirps[k].Data[e.antenna], pl.win)
	}
	e.colFn = func(b int) {
		r0 := b * beamBatch
		r1 := r0 + beamBatch
		if r1 > pl.maxBin {
			r1 = pl.maxBin
		}
		col := e.cols[b]
		half := (nd + 1) / 2
		for r := r0; r < r1; r++ {
			for k := 0; k < nd; k++ {
				col[k] = e.spectra[k][r] * complex(sh.dwin[k], 0)
			}
			dsp.FFTInPlace(col)
			// Fused fftshift + power detection: FFTShift(x)[d] =
			// x[(d+half)%nd], so index the shifted order directly instead
			// of materializing a shifted copy.
			row := e.m.Power[r*nd : (r+1)*nd]
			for d := range row {
				v := col[(d+half)%nd]
				row[d] = real(v)*real(v) + imag(v)*imag(v)
			}
		}
	}
	return e
}

// RangeDopplerInto computes the range–Doppler map of a chirp burst into m,
// reusing m.Power's capacity when it suffices. All chirps must have the
// shape the plan was compiled for; an out-of-range antenna falls back to 0.
// Output is bit-identical to the historical Processor kernel for any worker
// count; after the per-burst-length executor free list is warm, a
// Workers: 1 call allocates nothing (a sliding window still filling changes
// the burst length every frame, so the steady state begins once the window
// is full). Concurrent calls on one plan are safe and overlap.
//
// On cancellation m holds partially written garbage and must be discarded
// (or passed to the next call, which overwrites it).
//
//rfvet:allocfree
func (pl *FrontEndPlan) RangeDopplerInto(ctx context.Context, m *RangeDopplerMap, chirps []*fmcw.Frame, antenna int, pri float64) error {
	if m == nil {
		panic("radar: RangeDopplerInto with nil map")
	}
	if len(chirps) == 0 {
		*m = RangeDopplerMap{Power: m.Power[:0]}
		return nil
	}
	p := chirps[0].Params
	if p != pl.params {
		panic("radar: RangeDopplerInto on a chirp shape the plan was not compiled for")
	}
	if antenna < 0 || antenna >= p.NumAntennas {
		antenna = 0
	}
	nd := len(chirps)
	e := pl.getRD(nd)
	e.chirps, e.antenna, e.m = chirps, antenna, m

	m.Params = p
	m.PRI = pri
	m.RangeBins = pl.maxBin
	m.DopplerBins = nd
	m.Power = growFloats(m.Power, pl.maxBin*nd)
	// Range FFT per chirp, then slow-time FFT + shift + power per batch of
	// range bins; disjoint destinations per work item keep any fan-out
	// width bit-identical.
	err := parallel.ForEachCtx(ctx, nd, pl.cfg.Workers, e.fftFn)
	if err == nil {
		nb := (pl.maxBin + beamBatch - 1) / beamBatch
		err = parallel.ForEachCtx(ctx, nb, pl.cfg.Workers, e.colFn)
	}
	e.chirps, e.m = nil, nil
	pl.putRD(e)
	return err
}

// growFloats returns s resized to n, reallocating only when capacity is
// short. It is the warm-up path of the profile/map destinations, kept out
// of the //rfvet:allocfree executors (and out of their inlined bodies, via
// noinline) because the reallocation happens once per destination, not per
// frame; reused capacity keeps its prior contents, which the executors
// overwrite or zero explicitly.
//
//go:noinline
func growFloats(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

// detExec is one detection execution context: the range-column interpolation
// scratch and the reusable 2-D peak finder.
type detExec struct {
	col    []float64
	finder dsp.Peak2DFinder
}

func (pl *FrontEndPlan) getDet() *detExec {
	pl.detMu.Lock()
	if k := len(pl.detFree); k > 0 {
		e := pl.detFree[k-1]
		pl.detFree[k-1] = nil
		pl.detFree = pl.detFree[:k-1]
		pl.detMu.Unlock()
		return e
	}
	pl.detMu.Unlock()
	return &detExec{}
}

func (pl *FrontEndPlan) putDet(e *detExec) {
	pl.detMu.Lock()
	pl.detFree = append(pl.detFree, e)
	pl.detMu.Unlock()
}
