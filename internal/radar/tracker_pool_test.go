package radar

import (
	"testing"

	"rfprotect/internal/geom"
)

// churnDetections builds the worst-case spawn/drop workload for the track
// free list: one detection per frame that teleports 2 m each step, so with a
// 1 m gate no detection ever associates with the previous frame's track.
// Every frame spawns one track; MaxMisses frames later the orphan is dropped
// unconfirmed and must be recycled, never archived.
func churnDetection(i int) Detection {
	t := float64(i) * 0.05
	return Detection{Pos: geom.Point{X: 2 * float64(i), Y: 0}, Time: t}
}

// TestTrackerChurnAllocFree is the streaming-tracker allocation contract
// under track churn: once the free list holds one generation of dropped
// hypotheses, spawning and dropping a track per frame allocates nothing —
// spawns reuse recycled Track storage (Kalman filter reinitialized in
// place), and the association scratch is tracker-owned.
func TestTrackerChurnAllocFree(t *testing.T) {
	tr := NewTracker(TrackerConfig{})
	i := 0
	step := func() {
		tr.Observe(float64(i)*0.05, []Detection{churnDetection(i)})
		i++
	}
	// Warm-up: fill the association scratch and cycle enough tracks through
	// the drop path to charge the free list (MaxMisses frames of lag between
	// a spawn and its recycle, so run a few multiples of that).
	for i < 64 {
		step()
	}
	if allocs := testing.AllocsPerRun(200, step); allocs != 0 {
		t.Fatalf("tracker churn allocates %v per frame once warm, want 0", allocs)
	}
}

// TestTrackerRecyclingInvisible pins the safety argument for track
// recycling: only tracks that Tracks() could never report (unconfirmed, or
// confirmed but shorter than MinTrackPoints) are recycled, so a run with
// heavy churn still reports exactly its real targets, with fresh IDs and
// clean histories on every respawned hypothesis.
func TestTrackerRecyclingInvisible(t *testing.T) {
	tr := NewTracker(TrackerConfig{})
	const frames = 120
	walker := func(i int) Detection {
		ts := float64(i) * 0.05
		return Detection{Pos: geom.Point{X: 0.02 * float64(i), Y: 3}, Time: ts}
	}
	seen := make(map[int]bool)
	for i := 0; i < frames; i++ {
		dets := []Detection{walker(i), churnDetection(i)}
		tr.Observe(float64(i)*0.05, dets)
		tr.ForEachActive(func(trk *Track) {
			// Recycled storage must never resurface a stale history: every
			// active hypothesis carries points only from its own lifetime.
			for _, p := range trk.Points {
				if p.Time > float64(i)*0.05 {
					t.Fatalf("frame %d: track %d carries a future point (stale recycled history)", i, trk.ID)
				}
			}
			if !seen[trk.ID] && len(trk.Points) != 1 {
				// First sighting of an ID: it must have spawned this frame
				// with exactly its spawn point.
				t.Fatalf("frame %d: new track %d spawned with %d points, want 1", i, trk.ID, len(trk.Points))
			}
			seen[trk.ID] = true
		})
	}
	tracks := tr.Tracks()
	if len(tracks) != 1 {
		t.Fatalf("got %d confirmed tracks, want exactly the walker", len(tracks))
	}
	trk := tracks[0]
	if len(trk.Points) < frames-8 {
		t.Fatalf("walker track has %d points, want nearly %d", len(trk.Points), frames)
	}
	for i := 1; i < len(trk.Points); i++ {
		if trk.Points[i].Time <= trk.Points[i-1].Time {
			t.Fatalf("walker track times not increasing at %d", i)
		}
	}
	// Churn spawned ~one hypothesis per frame; all of them drew fresh IDs
	// even when reusing recycled storage.
	if len(seen) < frames {
		t.Fatalf("saw %d distinct track IDs across the run, want >= %d (fresh ID per spawn)", len(seen), frames)
	}
}
