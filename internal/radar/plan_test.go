package radar

import (
	"math/rand"
	"testing"

	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
)

// smallParams keeps scratch tests fast: 4 antennas, 64 samples.
func smallParams() fmcw.Params {
	p := fmcw.DefaultParams()
	p.SampleRate = 128e3
	p.NumAntennas = 4
	p.NoiseStd = 0.01
	return p
}

func scratchFrame(p fmcw.Params, seed int64, at float64) *fmcw.Frame {
	array := fmcw.Array{Position: geom.Point{}, AxisAngle: 0, Facing: 1}
	rng := rand.New(rand.NewSource(seed))
	rets := []fmcw.Return{
		array.ReturnFrom(geom.Point{X: 1 + rng.Float64(), Y: 3 + rng.Float64()}, 1, 0, 0),
		array.ReturnFrom(geom.Point{X: -2 + rng.Float64(), Y: 5}, 0.7, 0, 0),
	}
	return fmcw.Synthesize(p, rets, at, rng)
}

func profilesEqual(a, b *Profile) bool {
	if a.Params != b.Params || a.Time != b.Time ||
		a.RangeBins != b.RangeBins || a.AngleBins != b.AngleBins ||
		len(a.Power) != len(b.Power) {
		return false
	}
	for i := range a.Power {
		if a.Power[i] != b.Power[i] {
			return false
		}
	}
	return true
}

func dopplerMapsEqual(a, b *RangeDopplerMap) bool {
	if a.Params != b.Params || a.PRI != b.PRI ||
		a.RangeBins != b.RangeBins || a.DopplerBins != b.DopplerBins ||
		len(a.Power) != len(b.Power) {
		return false
	}
	for i := range a.Power {
		if a.Power[i] != b.Power[i] {
			return false
		}
	}
	return true
}

// RangeAngleInto must reproduce RangeAngleCtx bit-for-bit: for any worker
// count, into a fresh destination, and into a dirty reused one (including a
// destination previously filled from a different frame, exercising the
// near-range re-zeroing).
func TestRangeAngleIntoBitIdentical(t *testing.T) {
	p := smallParams()
	frames := []*fmcw.Frame{scratchFrame(p, 1, 0), scratchFrame(p, 2, 0.05)}
	pool := NewProfilePool()
	for _, workers := range []int{1, 2, 0} {
		cfg := DefaultConfig()
		cfg.Workers = workers
		reuse := pool.Get()
		for _, f := range frames {
			want := NewProcessor(DefaultConfig()).RangeAngle(f)
			pr := NewProcessor(cfg)
			got, err := pr.RangeAngleCtx(nil, f)
			if err != nil {
				t.Fatal(err)
			}
			if !profilesEqual(got, want) {
				t.Fatalf("workers=%d: RangeAngleCtx differs across worker counts", workers)
			}
			// Dirty the reused destination, then overwrite it in place.
			for i := range reuse.Power {
				reuse.Power[i] = 1e9
			}
			if err := pr.RangeAngleInto(nil, f, reuse); err != nil {
				t.Fatal(err)
			}
			if !profilesEqual(reuse, want) {
				t.Fatalf("workers=%d: RangeAngleInto into reused profile differs", workers)
			}
		}
		pool.Put(reuse)
	}
}

// RangeDopplerInto must reproduce RangeDopplerCtx bit-for-bit, including
// into a reused map previously filled from a different burst length.
func TestRangeDopplerIntoBitIdentical(t *testing.T) {
	p := smallParams()
	pri := 1 / p.FrameRate
	var burst []*fmcw.Frame
	for i := 0; i < 8; i++ {
		burst = append(burst, scratchFrame(p, int64(10+i), float64(i)*pri))
	}
	pool := NewDopplerPool()
	for _, workers := range []int{1, 2, 0} {
		cfg := DefaultConfig()
		cfg.Workers = workers
		m := pool.Get()
		for _, nd := range []int{5, 8, 3} { // shrinking nd exercises capacity reuse
			want := NewProcessor(DefaultConfig()).RangeDoppler(burst[:nd], 1, pri)
			pr := NewProcessor(cfg)
			got, err := pr.RangeDopplerCtx(nil, burst[:nd], 1, pri)
			if err != nil {
				t.Fatal(err)
			}
			if !dopplerMapsEqual(got, want) {
				t.Fatalf("workers=%d nd=%d: RangeDopplerCtx differs across worker counts", workers, nd)
			}
			if err := pr.RangeDopplerInto(nil, m, burst[:nd], 1, pri); err != nil {
				t.Fatal(err)
			}
			if !dopplerMapsEqual(m, want) {
				t.Fatalf("workers=%d nd=%d: RangeDopplerInto into reused map differs", workers, nd)
			}
		}
		pool.Put(m)
	}
}

func TestRangeDopplerIntoEmptyBurst(t *testing.T) {
	pr := NewProcessor(DefaultConfig())
	m := &RangeDopplerMap{Power: make([]float64, 7), RangeBins: 1, DopplerBins: 7}
	if err := pr.RangeDopplerInto(nil, m, nil, 0, 0.01); err != nil {
		t.Fatal(err)
	}
	if m.RangeBins != 0 || m.DopplerBins != 0 || len(m.Power) != 0 {
		t.Fatalf("empty burst left stale shape: %+v", m)
	}
}

// With Workers: 1 (inline fan-out, no goroutine spawns) the warmed-up Into
// kernels are allocation-free — the radar half of the zero-allocation
// steady state.
func TestIntoVariantsZeroAllocsSteadyState(t *testing.T) {
	p := smallParams()
	cfg := DefaultConfig()
	cfg.Workers = 1
	pr := NewProcessor(cfg)
	f := scratchFrame(p, 3, 0)
	prof := &Profile{}
	if err := pr.RangeAngleInto(nil, f, prof); err != nil { // warm scratch + plans
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		if err := pr.RangeAngleInto(nil, f, prof); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("RangeAngleInto allocates %v per op in steady state, want 0", allocs)
	}

	pri := 1 / p.FrameRate
	var burst []*fmcw.Frame
	for i := 0; i < 8; i++ {
		burst = append(burst, scratchFrame(p, int64(20+i), float64(i)*pri))
	}
	m := &RangeDopplerMap{}
	if err := pr.RangeDopplerInto(nil, m, burst, 0, pri); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		if err := pr.RangeDopplerInto(nil, m, burst, 0, pri); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("RangeDopplerInto allocates %v per op in steady state, want 0", allocs)
	}
}

func TestPoolsRecycle(t *testing.T) {
	pp := NewProfilePool()
	prof := pp.Get()
	prof.Power = make([]float64, 16)
	pp.Put(prof)
	if pp.Len() != 1 {
		t.Fatalf("ProfilePool.Len = %d, want 1", pp.Len())
	}
	if got := pp.Get(); got != prof {
		t.Fatal("ProfilePool.Get did not reuse the recycled profile")
	}
	pp.Put(nil) // no-op
	if pp.Len() != 0 {
		t.Fatalf("ProfilePool.Len after Put(nil) = %d, want 0", pp.Len())
	}

	dp := NewDopplerPool()
	m := dp.Get()
	dp.Put(m)
	if dp.Len() != 1 {
		t.Fatalf("DopplerPool.Len = %d, want 1", dp.Len())
	}
	if got := dp.Get(); got != m {
		t.Fatal("DopplerPool.Get did not reuse the recycled map")
	}
	dp.Put(nil)
	if dp.Len() != 0 {
		t.Fatalf("DopplerPool.Len after Put(nil) = %d, want 0", dp.Len())
	}
}

// DetectInto must produce exactly Detect's detections (same values, same
// order) while reusing the caller's buffer, across repeated calls on
// different profiles.
func TestDetectIntoGoldenEquivalence(t *testing.T) {
	p := smallParams()
	array := fmcw.Array{Position: geom.Point{}, Facing: 1}
	pr := NewProcessor(DefaultConfig())
	pl := pr.Plan(p)
	var buf []Detection
	for seed := int64(1); seed <= 4; seed++ {
		prof := pr.RangeAngle(scratchFrame(p, seed, float64(seed)*0.05))
		want := pr.Detect(prof, array)
		buf = pl.DetectInto(buf, prof, array)
		if len(buf) != len(want) {
			t.Fatalf("seed %d: %d detections vs %d", seed, len(buf), len(want))
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("seed %d: detection %d differs: %+v vs %+v", seed, i, buf[i], want[i])
			}
		}
	}
}

// A warmed-up detect → track frame step allocates nothing: DetectInto reuses
// the caller's slice and the plan's finder scratch, and Tracker.Observe
// reuses its association scratch. Track point history is pre-grown so the
// measurement sees the association path, not slice doubling.
func TestDetectAndObserveZeroAllocsSteadyState(t *testing.T) {
	p := smallParams()
	array := fmcw.Array{Position: geom.Point{}, Facing: 1}
	cfg := DefaultConfig()
	cfg.Workers = 1
	pr := NewProcessor(cfg)
	pl := pr.Plan(p)
	f := scratchFrame(p, 3, 0)
	prof := &Profile{}
	if err := pr.RangeAngleInto(nil, f, prof); err != nil {
		t.Fatal(err)
	}
	dets := pl.DetectInto(nil, prof, array)
	if len(dets) == 0 {
		t.Fatal("need at least one detection for a meaningful steady state")
	}

	tr := NewTracker(TrackerConfig{})
	tm := 0.0
	for i := 0; i < 10; i++ { // warm: spawn + confirm tracks, grow scratch
		tr.Observe(tm, dets)
		tm += 0.05
	}
	for _, trk := range tr.active {
		pts := make([]TimedPoint, len(trk.Points), len(trk.Points)+4096)
		copy(pts, trk.Points)
		trk.Points = pts
	}
	if allocs := testing.AllocsPerRun(100, func() {
		dets = pl.DetectInto(dets, prof, array)
		tr.Observe(tm, dets)
		tm += 0.05
	}); allocs != 0 {
		t.Errorf("detect+observe allocates %v per frame in steady state, want 0", allocs)
	}
}
