package radar

import (
	"math"

	"rfprotect/internal/geom"
)

// Kalman is a constant-velocity Kalman filter over state [x, y, vx, vy] with
// position measurements — the mobility model the paper's threat model (§2)
// grants the eavesdropper.
type Kalman struct {
	X [4]float64    // state estimate
	P [4][4]float64 // state covariance
	Q float64       // process (acceleration) noise spectral density
	R float64       // measurement noise variance (per axis)
}

// NewKalman initializes a filter at position p with diffuse velocity.
func NewKalman(p geom.Point, processNoise, measurementNoise float64) *Kalman {
	k := &Kalman{}
	k.Reinit(p, processNoise, measurementNoise)
	return k
}

// Reinit resets the filter in place to the state NewKalman would build — the
// re-initialization used when a recycled track spawns, so track recycling
// reuses the filter storage without allocating.
func (k *Kalman) Reinit(p geom.Point, processNoise, measurementNoise float64) {
	*k = Kalman{Q: processNoise, R: measurementNoise}
	k.X = [4]float64{p.X, p.Y, 0, 0}
	for i := 0; i < 4; i++ {
		k.P[i][i] = 1
	}
	k.P[2][2], k.P[3][3] = 4, 4 // diffuse initial velocity
}

// Predict advances the state by dt seconds.
func (k *Kalman) Predict(dt float64) {
	// x' = F x with F = [I, dt·I; 0, I].
	k.X[0] += dt * k.X[2]
	k.X[1] += dt * k.X[3]
	// P' = F P Fᵀ + Q(dt). Use the white-acceleration discretization.
	var f [4][4]float64
	for i := 0; i < 4; i++ {
		f[i][i] = 1
	}
	f[0][2], f[1][3] = dt, dt
	var fp [4][4]float64
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			for l := 0; l < 4; l++ {
				fp[i][j] += f[i][l] * k.P[l][j]
			}
		}
	}
	var p [4][4]float64
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			for l := 0; l < 4; l++ {
				p[i][j] += fp[i][l] * f[j][l]
			}
		}
	}
	dt2 := dt * dt
	dt3 := dt2 * dt
	dt4 := dt3 * dt
	q := k.Q
	for _, axis := range []int{0, 1} {
		p[axis][axis] += q * dt4 / 4
		p[axis][axis+2] += q * dt3 / 2
		p[axis+2][axis] += q * dt3 / 2
		p[axis+2][axis+2] += q * dt2
	}
	k.P = p
}

// Update incorporates a position measurement and returns the Mahalanobis
// distance of the innovation (useful for gating).
func (k *Kalman) Update(z geom.Point) float64 {
	// Innovation y = z - Hx, H = [I 0].
	yx := z.X - k.X[0]
	yy := z.Y - k.X[1]
	// S = H P Hᵀ + R (2x2).
	s00 := k.P[0][0] + k.R
	s01 := k.P[0][1]
	s10 := k.P[1][0]
	s11 := k.P[1][1] + k.R
	det := s00*s11 - s01*s10
	if det <= 0 {
		det = 1e-12
	}
	i00, i01 := s11/det, -s01/det
	i10, i11 := -s10/det, s00/det
	maha := math.Sqrt(yx*(i00*yx+i01*yy) + yy*(i10*yx+i11*yy))
	// Kalman gain K = P Hᵀ S⁻¹ (4x2).
	var gain [4][2]float64
	for i := 0; i < 4; i++ {
		gain[i][0] = k.P[i][0]*i00 + k.P[i][1]*i10
		gain[i][1] = k.P[i][0]*i01 + k.P[i][1]*i11
	}
	for i := 0; i < 4; i++ {
		k.X[i] += gain[i][0]*yx + gain[i][1]*yy
	}
	// P = (I - K H) P.
	var p [4][4]float64
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			p[i][j] = k.P[i][j] - gain[i][0]*k.P[0][j] - gain[i][1]*k.P[1][j]
		}
	}
	k.P = p
	return maha
}

// Position returns the current position estimate.
func (k *Kalman) Position() geom.Point { return geom.Point{X: k.X[0], Y: k.X[1]} }

// Velocity returns the current velocity estimate.
func (k *Kalman) Velocity() geom.Point { return geom.Point{X: k.X[2], Y: k.X[3]} }
