package radar

import (
	"math"
	"sort"

	"rfprotect/internal/dsp"
	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
)

// TimedPoint is a tracked position with its capture time.
type TimedPoint struct {
	Time float64
	Pos  geom.Point
}

// TimedVelocity is one Doppler-derived radial-velocity sample with the time
// of the frame that produced it.
type TimedVelocity struct {
	Time     float64
	Velocity float64
}

// Track is one target hypothesis maintained by the tracker.
type Track struct {
	ID        int
	Points    []TimedPoint
	Confirmed bool

	// RadialVelocity is the latest Doppler-derived radial velocity estimate
	// in m/s (positive = approaching the radar), valid when HasVelocity is
	// set. It is attached by Tracker.AttachVelocities from a sliding-window
	// range–Doppler map; note the estimate is folded into the map's
	// unambiguous band (±MaxUnambiguousVelocity), so fast targets observed
	// at a low frame rate alias.
	RadialVelocity float64
	HasVelocity    bool

	// VelHist is the full radial-velocity sample series, recorded by
	// AttachVelocities only when TrackerConfig.KeepVelocityHistory is set
	// (it grows with track length, so the allocation-free streaming path
	// leaves it off). The spoof detectors in internal/detect consume it to
	// test Doppler-vs-trajectory consistency.
	VelHist []TimedVelocity

	// kf is embedded by value: spawning a track costs one allocation (the
	// Track itself), and a recycled Track reuses the filter storage in place
	// via Kalman.Reinit.
	kf       Kalman
	hits     int
	misses   int
	lastTime float64
}

// Trajectory returns the track's positions as a geom.Trajectory.
func (t *Track) Trajectory() geom.Trajectory {
	out := make(geom.Trajectory, len(t.Points))
	for i, p := range t.Points {
		out[i] = p.Pos
	}
	return out
}

// Smoothed returns the track positions after median filtering (window 5) on
// each axis — the paper's "smoothing over time and peak rejection" (§9.1).
func (t *Track) Smoothed() geom.Trajectory {
	n := len(t.Points)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i, p := range t.Points {
		xs[i], ys[i] = p.Pos.X, p.Pos.Y
	}
	xs = dsp.MedianFilter(xs, 5)
	ys = dsp.MedianFilter(ys, 5)
	xs = dsp.MovingAverage(xs, 3)
	ys = dsp.MovingAverage(ys, 3)
	out := make(geom.Trajectory, n)
	for i := range out {
		out[i] = geom.Point{X: xs[i], Y: ys[i]}
	}
	return out
}

// TrackerConfig tunes multi-target tracking.
type TrackerConfig struct {
	GateDistance   float64 // max association distance in meters
	ConfirmHits    int     // consecutive hits to confirm a track
	MaxMisses      int     // consecutive misses before a track is dropped
	ProcessNoise   float64 // Kalman acceleration noise
	MeasNoise      float64 // Kalman measurement variance
	MinTrackPoints int     // tracks shorter than this are discarded on output
	// KeepVelocityHistory makes AttachVelocities append every stamped
	// velocity to Track.VelHist instead of only keeping the latest value.
	// Off by default: the history grows with track length.
	KeepVelocityHistory bool
}

// DefaultTrackerConfig returns tracking parameters suited to walking humans
// observed at ~20 Hz.
func DefaultTrackerConfig() TrackerConfig {
	return TrackerConfig{
		GateDistance:   1.0,
		ConfirmHits:    3,
		MaxMisses:      8,
		ProcessNoise:   2.0,
		MeasNoise:      0.04,
		MinTrackPoints: 10,
	}
}

// Tracker associates per-frame detections into tracks with nearest-neighbor
// gating over Kalman predictions.
//
// The association scratch (candidate pairs, used-flags, the survivor list)
// is owned by the tracker and reused across Observe calls, and dropped
// tracks that could never appear in Tracks() output — unconfirmed or
// shorter than MinTrackPoints — go to a free list instead of the done
// archive and are reused by later spawns (Kalman state reinitialized in
// place, point history capacity retained). A warmed-up Observe under churn
// therefore allocates nothing: spawns draw from the free list, and only
// tracks that survive to confirmation can still grow. A Tracker is not
// safe for concurrent use.
type Tracker struct {
	cfg    TrackerConfig
	nextID int
	active []*Track
	done   []*Track

	pairs      assocPairs
	usedTrack  []bool
	usedDet    []bool
	aliveSpare []*Track
	spare      []*Track // recycled tracks awaiting respawn
}

// assocPair is one gated (track, detection) association candidate.
type assocPair struct {
	trackIdx, detIdx int
	dist             float64
}

// assocPairs sorts by ascending distance through sort.Interface on a
// pointer receiver — the pointer boxes into the interface without
// allocating, unlike a slice value or a sort.Slice closure. The comparator
// is identical to the sort.Slice form it replaces, and both run the same
// stdlib sort, so ties resolve into the same order.
type assocPairs []assocPair

func (p *assocPairs) Len() int      { return len(*p) }
func (p *assocPairs) Swap(i, j int) { s := *p; s[i], s[j] = s[j], s[i] }
func (p *assocPairs) Less(i, j int) bool {
	s := *p
	return s[i].dist < s[j].dist
}

// resizeBools returns *s resized to n elements, all false, reusing the
// backing array when it suffices.
func resizeBools(s *[]bool, n int) []bool {
	b := *s
	if cap(b) < n {
		b = make([]bool, n)
	} else {
		b = b[:n]
		for i := range b {
			b[i] = false
		}
	}
	*s = b
	return b
}

// NewTracker returns a tracker; zero-valued config fields take defaults.
func NewTracker(cfg TrackerConfig) *Tracker {
	def := DefaultTrackerConfig()
	if cfg.GateDistance <= 0 {
		cfg.GateDistance = def.GateDistance
	}
	if cfg.ConfirmHits <= 0 {
		cfg.ConfirmHits = def.ConfirmHits
	}
	if cfg.MaxMisses <= 0 {
		cfg.MaxMisses = def.MaxMisses
	}
	if cfg.ProcessNoise <= 0 {
		cfg.ProcessNoise = def.ProcessNoise
	}
	if cfg.MeasNoise <= 0 {
		cfg.MeasNoise = def.MeasNoise
	}
	if cfg.MinTrackPoints <= 0 {
		cfg.MinTrackPoints = def.MinTrackPoints
	}
	return &Tracker{cfg: cfg, nextID: 1}
}

// Observe feeds one frame's detections at time t into the tracker.
func (tr *Tracker) Observe(t float64, detections []Detection) {
	// Predict all active tracks forward.
	for _, trk := range tr.active {
		dt := t - trk.lastTime
		if dt > 0 {
			trk.kf.Predict(dt)
		}
	}
	// Greedy nearest-neighbor association: sort candidate (track, det)
	// pairs by distance, take each track and detection at most once.
	tr.pairs = tr.pairs[:0]
	for ti, trk := range tr.active {
		pred := trk.kf.Position()
		for di, det := range detections {
			d := pred.Dist(det.Pos)
			if d <= tr.cfg.GateDistance {
				tr.pairs = append(tr.pairs, assocPair{ti, di, d})
			}
		}
	}
	sort.Sort(&tr.pairs)
	usedTrack := resizeBools(&tr.usedTrack, len(tr.active))
	usedDet := resizeBools(&tr.usedDet, len(detections))
	for _, p := range tr.pairs {
		if usedTrack[p.trackIdx] || usedDet[p.detIdx] {
			continue
		}
		usedTrack[p.trackIdx] = true
		usedDet[p.detIdx] = true
		trk := tr.active[p.trackIdx]
		det := detections[p.detIdx]
		trk.kf.Update(det.Pos)
		trk.Points = append(trk.Points, TimedPoint{Time: t, Pos: trk.kf.Position()})
		trk.hits++
		trk.misses = 0
		trk.lastTime = t
		if trk.hits >= tr.cfg.ConfirmHits {
			trk.Confirmed = true
		}
	}
	// Unmatched tracks miss. The survivor list double-buffers against the
	// previous active backing so the filter allocates nothing. Dropped
	// tracks split two ways: ones Tracks() could still report (confirmed
	// with enough points) are archived in done; the rest — transient
	// clutter hypotheses, the overwhelming majority under churn — are
	// recycled. Recycling is safe because no dropped-and-ineligible track
	// is ever returned by Tracks(), and the per-frame observers
	// (ForEachActive, AttachVelocities) only see active tracks.
	alive := tr.aliveSpare[:0]
	for ti, trk := range tr.active {
		if usedTrack[ti] {
			alive = append(alive, trk)
			continue
		}
		trk.misses++
		trk.lastTime = t
		switch {
		case trk.misses <= tr.cfg.MaxMisses:
			alive = append(alive, trk)
		case trk.Confirmed && len(trk.Points) >= tr.cfg.MinTrackPoints:
			tr.done = append(tr.done, trk)
		default:
			tr.spare = append(tr.spare, trk)
		}
	}
	tr.aliveSpare = tr.active[:0]
	tr.active = alive
	// Unmatched detections spawn tracks, reusing recycled storage when the
	// free list has any.
	for di, det := range detections {
		if usedDet[di] {
			continue
		}
		trk := tr.newTrack()
		trk.ID = tr.nextID
		trk.kf.Reinit(det.Pos, tr.cfg.ProcessNoise, tr.cfg.MeasNoise)
		trk.hits = 1
		trk.lastTime = t
		tr.nextID++
		trk.Points = append(trk.Points, TimedPoint{Time: t, Pos: det.Pos})
		tr.active = append(tr.active, trk)
	}
}

// newTrack pops a recycled track (history cleared, capacity kept) or
// allocates a fresh one. The caller stamps ID, filter state, and the first
// point.
func (tr *Tracker) newTrack() *Track {
	if n := len(tr.spare); n > 0 {
		trk := tr.spare[n-1]
		tr.spare[n-1] = nil
		tr.spare = tr.spare[:n-1]
		trk.Points = trk.Points[:0]
		trk.VelHist = trk.VelHist[:0]
		trk.Confirmed = false
		trk.RadialVelocity = 0
		trk.HasVelocity = false
		trk.misses = 0
		return trk
	}
	return &Track{}
}

// AttachVelocities stamps every active track with the radial velocity of
// the dominant Doppler peak near the track's current range (±1 range bin),
// read from a range–Doppler map through the array geometry. Tracks whose
// range rows hold no power keep their previous estimate. Call it whenever a
// fresh sliding-window map is available — the streaming pipeline's
// velocity-aware TrackStage does this once per frame.
func (tr *Tracker) AttachVelocities(m *RangeDopplerMap, array fmcw.Array) {
	if m == nil {
		return
	}
	for _, trk := range tr.active {
		if len(trk.Points) == 0 {
			continue
		}
		r := array.DistanceOf(trk.Points[len(trk.Points)-1].Pos)
		if v, _, ok := m.PeakVelocityAtRange(r, 1); ok {
			trk.RadialVelocity = v
			trk.HasVelocity = true
			if tr.cfg.KeepVelocityHistory {
				// One sample per observation time: a re-stamp at the same
				// instant (e.g. a missed frame where lastTime didn't advance)
				// overwrites rather than duplicates.
				if n := len(trk.VelHist); n > 0 && trk.VelHist[n-1].Time == trk.lastTime {
					trk.VelHist[n-1].Velocity = v
				} else {
					trk.VelHist = append(trk.VelHist, TimedVelocity{Time: trk.lastTime, Velocity: v})
				}
			}
		}
	}
}

// ForEachActive calls fn for every live (not yet dropped) track in creation
// order — a zero-allocation view for per-frame observers such as the spoof
// scorer, which must see tracks before they are confirmed.
func (tr *Tracker) ForEachActive(fn func(*Track)) {
	for _, trk := range tr.active {
		fn(trk)
	}
}

// Tracks returns all confirmed tracks (finished and active) with at least
// MinTrackPoints points, ordered by ID.
func (tr *Tracker) Tracks() []*Track {
	var out []*Track
	for _, t := range append(append([]*Track{}, tr.done...), tr.active...) {
		if t.Confirmed && len(t.Points) >= tr.cfg.MinTrackPoints {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TrackDetections is a convenience that feeds a detection sequence (one
// slice per frame, times taken from the detections) through a fresh tracker
// and returns the confirmed tracks.
func TrackDetections(cfg TrackerConfig, frames [][]Detection) []*Track {
	tr := NewTracker(cfg)
	for _, dets := range frames {
		if len(dets) == 0 {
			continue
		}
		tr.Observe(dets[0].Time, dets)
	}
	return tr.Tracks()
}

// IsOscillatory reports whether a track looks like a non-human kinetic
// reflector (a fan): small spatial extent combined with fast periodic
// motion. The paper's threat model has the eavesdropper filter these out.
func IsOscillatory(t *Track, frameRate float64) bool {
	traj := t.Trajectory()
	if len(traj) < 8 {
		return false
	}
	if traj.RangeOfMotion() > 1.2 {
		return false
	}
	xs := make([]float64, len(traj))
	for i, p := range traj {
		xs[i] = p.X
	}
	fx := dsp.DominantFrequency(xs, frameRate)
	ys := make([]float64, len(traj))
	for i, p := range traj {
		ys[i] = p.Y
	}
	fy := dsp.DominantFrequency(ys, frameRate)
	f := math.Max(fx, fy)
	// Walking humans change direction well below ~1 Hz; fan blades orbit at
	// one to tens of Hz (possibly aliased, but still fast and regular).
	return f > 0.9
}

// FilterHumanTracks drops oscillatory (fan-like) tracks.
func FilterHumanTracks(tracks []*Track, frameRate float64) []*Track {
	var out []*Track
	for _, t := range tracks {
		if !IsOscillatory(t, frameRate) {
			out = append(out, t)
		}
	}
	return out
}
