// AVX beamforming sweep. See beam_amd64.go for the contract and plan.go
// (beamRowAVX) for the bit-identity argument. Pure AVX1: VBROADCASTSD,
// VMOVUPD, VMULPD/VADDPD/VSUBPD on ymm — deliberately no FMA, which would
// change rounding versus the scalar Go kernel.

#include "textflag.h"

// func beamSweepAVX(row *float64, n, nAnt int, s, wre, wim *float64, stride int)
//
// For each angle quad a in [0, n) step 4 (n is a multiple of 4):
//
//	re = s[0]; im = s[1]                       // antenna-0 seed, broadcast
//	for k = 1 .. nAnt-1:
//	    wr = wre[k*stride + a .. +4]; wi = wim[k*stride + a .. +4]
//	    re += s[2k]*wr - s[2k+1]*wi
//	    im += s[2k]*wi + s[2k+1]*wr
//	row[a .. +4] = re*re + im*im
TEXT ·beamSweepAVX(SB), NOSPLIT, $0-56
	MOVQ row+0(FP), DI
	MOVQ n+8(FP), DX
	MOVQ nAnt+16(FP), AX
	MOVQ s+24(FP), SI
	MOVQ wre+32(FP), R8
	MOVQ wim+40(FP), R9
	MOVQ stride+48(FP), R10

	SHLQ $3, DX         // byte limit of the quad index
	SHLQ $3, R10        // steering row stride in bytes
	DECQ AX             // antennas beyond the seed
	XORQ CX, CX         // quad index, in bytes

	TESTQ DX, DX
	JE    done

quad:
	VBROADCASTSD 0(SI), Y0  // re = s0r
	VBROADCASTSD 8(SI), Y1  // im = s0i

	MOVQ R8, R11        // roving steering-Re row pointer (advanced to k=1 below)
	MOVQ R9, R12        // roving steering-Im row pointer
	LEAQ 16(SI), R13    // roving packed-spectra pointer, at antenna 1
	MOVQ AX, BX
	TESTQ BX, BX
	JE   square

antenna:
	ADDQ R10, R11
	ADDQ R10, R12
	VBROADCASTSD 0(R13), Y4      // skr
	VBROADCASTSD 8(R13), Y5      // ski
	VMOVUPD (R11)(CX*1), Y14     // wr
	VMOVUPD (R12)(CX*1), Y15     // wi
	VMULPD  Y14, Y4, Y2          // skr*wr
	VMULPD  Y15, Y5, Y3          // ski*wi
	VMULPD  Y15, Y4, Y15         // skr*wi
	VMULPD  Y14, Y5, Y14         // ski*wr
	VSUBPD  Y3, Y2, Y2           // skr*wr - ski*wi
	VADDPD  Y2, Y0, Y0           // re +=
	VADDPD  Y14, Y15, Y15        // skr*wi + ski*wr
	VADDPD  Y15, Y1, Y1          // im +=
	ADDQ $16, R13
	DECQ BX
	JNE  antenna

square:
	VMULPD  Y0, Y0, Y2
	VMULPD  Y1, Y1, Y3
	VADDPD  Y3, Y2, Y2           // re*re + im*im
	VMOVUPD Y2, (DI)(CX*1)
	ADDQ $32, CX
	CMPQ CX, DX
	JLT  quad

done:
	VZEROUPPER
	RET

// func cpuHasAVX() bool
//
// CPUID leaf 1: ECX bit 27 = OSXSAVE, bit 28 = AVX; then XGETBV(0) bits
// 1 and 2 confirm the OS saves/restores xmm+ymm state.
TEXT ·cpuHasAVX(SB), NOSPLIT, $0-1
	MOVQ $1, AX
	CPUID
	MOVL CX, BX
	ANDL $0x18000000, BX
	CMPL BX, $0x18000000
	JNE  no
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  no
	MOVB $1, ret+0(FP)
	RET

no:
	MOVB $0, ret+0(FP)
	RET
