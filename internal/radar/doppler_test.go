package radar

import (
	"math"
	"math/rand"
	"testing"

	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
	"rfprotect/internal/reflector"
	"rfprotect/internal/scene"
)

// burstScene builds a quiet home scene for Doppler tests.
func burstScene() *scene.Scene {
	params := fmcw.DefaultParams()
	params.NoiseStd = 0.001
	sc := scene.NewScene(scene.HomeRoom(), params)
	sc.Multipath = false
	sc.Room.Speckle = 0
	return sc
}

func TestRangeDopplerMovingTarget(t *testing.T) {
	sc := burstScene()
	// Human walking straight at the radar at 1 m/s.
	start := geom.Point{X: sc.Radar.Position.X, Y: 6}
	end := geom.Point{X: sc.Radar.Position.X, Y: 2}
	traj := geom.Trajectory{start, end}
	h := scene.NewHuman(traj, 1.0/4) // 4 m over 4 s -> 1 m/s approach
	h.Breathing = scene.Breathing{}
	sc.Humans = []*scene.Human{h}

	const pri = 1e-3
	const nChirps = 128
	rng := rand.New(rand.NewSource(1))
	burst := sc.CaptureBurst(1.0, nChirps, pri, rng)
	pr := NewProcessor(DefaultConfig())
	rd := pr.RangeDoppler(burst, 0, pri)
	rd.RejectStatic(1)
	targets := rd.DetectMoving(0.3, 4)
	if len(targets) == 0 {
		t.Fatal("no moving target detected")
	}
	tgt := targets[0]
	wantRange := sc.Radar.DistanceOf(h.PositionAt(1.0))
	if math.Abs(tgt.Range-wantRange) > 0.3 {
		t.Fatalf("range %v, want %v", tgt.Range, wantRange)
	}
	if math.Abs(tgt.Velocity-1.0) > 0.25 {
		t.Fatalf("velocity %v, want ~1.0 m/s", tgt.Velocity)
	}
}

func TestRangeDopplerStaticRejection(t *testing.T) {
	sc := burstScene()
	sc.Clutter = []scene.Clutter{{Pos: geom.Point{X: sc.Radar.Position.X - 2, Y: 3}, Amplitude: 2}}
	// One mover.
	traj := geom.Trajectory{{X: sc.Radar.Position.X + 2, Y: 5}, {X: sc.Radar.Position.X + 2, Y: 3}}
	h := scene.NewHuman(traj, 1.0/2)
	h.Breathing = scene.Breathing{}
	sc.Humans = []*scene.Human{h}

	const pri = 1e-3
	rng := rand.New(rand.NewSource(2))
	burst := sc.CaptureBurst(0.5, 128, pri, rng)
	pr := NewProcessor(DefaultConfig())
	rd := pr.RangeDoppler(burst, 0, pri)

	// Before rejection the static clutter dominates the zero-Doppler column.
	clutterBin := int(math.Round(sc.Radar.DistanceOf(sc.Clutter[0].Pos) /
		rd.RangeOfBin(1)))
	center := rd.DopplerBins / 2
	if rd.At(clutterBin, center) == 0 {
		t.Fatal("clutter missing from zero-Doppler before rejection")
	}
	rd.RejectStatic(1)
	if rd.At(clutterBin, center) != 0 {
		t.Fatal("static rejection left the zero-Doppler column intact")
	}
	targets := rd.DetectMoving(0.3, 4)
	if len(targets) == 0 {
		t.Fatal("mover lost after static rejection")
	}
	for _, tgt := range targets {
		if math.Abs(tgt.Velocity) < 0.1 {
			t.Fatalf("static survivor: %+v", tgt)
		}
	}
}

func TestGhostSurvivesDopplerRejection(t *testing.T) {
	// §3 names two static-rejection strategies; RF-Protect must beat both.
	// The free-running switch gives the ghost an aliased Doppler signature,
	// so zero-Doppler rejection does not remove it.
	sc := burstScene()
	tagCfg := reflector.DefaultConfig(geom.Point{X: sc.Radar.Position.X - 0.5, Y: 1.2}, 0)
	tag, err := reflector.New(tagCfg)
	if err != nil {
		t.Fatal(err)
	}
	ctl := reflector.NewController(tag)
	sc.Sources = []scene.ReturnSource{tag}
	const extra = 3.0
	if _, err := ctl.ProgramBreathing(2, extra, 0.25, 0.005, 10, 0); err != nil {
		t.Fatal(err)
	}

	const pri = 1e-3
	rng := rand.New(rand.NewSource(3))
	burst := sc.CaptureBurst(1.0, 128, pri, rng)
	pr := NewProcessor(DefaultConfig())
	rd := pr.RangeDoppler(burst, 0, pri)
	rd.RejectStatic(1)
	targets := rd.DetectMoving(0.2, 6)
	ghostRange := sc.Radar.DistanceOf(tagCfg.AntennaPosition(2)) + extra
	found := false
	for _, tgt := range targets {
		if math.Abs(tgt.Range-ghostRange) < 0.5 {
			found = true
		}
	}
	if !found {
		t.Fatalf("ghost at %v m removed by Doppler rejection (targets %+v)", ghostRange, targets)
	}
}

func TestVelocityBinRoundTrip(t *testing.T) {
	m := &RangeDopplerMap{Params: fmcw.DefaultParams(), PRI: 0.5e-3, DopplerBins: 64}
	for _, v := range []float64{-3, -0.5, 0, 1.2, 5} {
		if got := m.VelocityOfBin(m.BinOfVelocity(v)); math.Abs(got-v) > 1e-9 {
			t.Fatalf("velocity %v round-trips to %v", v, got)
		}
	}
	if m.MaxUnambiguousVelocity() <= 0 {
		t.Fatal("Nyquist velocity")
	}
}

func TestAliasedDoppler(t *testing.T) {
	const pri = 0.5e-3 // PRF 2 kHz
	cases := []struct{ in, want float64 }{
		{0, 0},
		{500, 500},
		{1500, -500},
		{2000, 0},
		{-700, -700},
		{-1300, 700},
	}
	for _, c := range cases {
		if got := AliasedDoppler(c.in, pri); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("AliasedDoppler(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestRangeDopplerEmptyBurst(t *testing.T) {
	pr := NewProcessor(DefaultConfig())
	rd := pr.RangeDoppler(nil, 0, 1e-3)
	if rd.DetectMoving(0.5, 4) != nil {
		t.Fatal("empty burst should detect nothing")
	}
}
