// Package radar implements the eavesdropper's FMCW processing pipeline from
// §3 and §9.1 of the paper: range FFT, digital beamforming across the
// antenna array (Eq. 2), successive-frame background subtraction,
// range–angle power profiles, peak extraction with smoothing and rejection,
// Kalman-filter multi-target tracking, and breathing-phase extraction.
//
// The same pipeline serves three roles in the reproduction: it is the
// adversary RF-Protect defends against, the measurement instrument for the
// spoofing-accuracy experiments (Fig. 9–11), and — with fake-trajectory
// disclosure — the legitimate sensor of Fig. 13.
package radar

import (
	"context"
	"math"
	"sync"

	"rfprotect/internal/dsp"
	"rfprotect/internal/fmcw"
)

// Config tunes the processing pipeline.
type Config struct {
	AngleBins    int     // beamforming grid resolution over [0, π]
	MaxRange     float64 // ignore range bins beyond this (meters); 0 = Nyquist limit
	MinRange     float64 // ignore range bins closer than this (meters)
	Window       dsp.Window
	MinPeakPower float64 // absolute detection threshold on the power profile
	// MinPeakRatio additionally requires a peak to exceed this fraction of
	// the strongest cell in the profile; it suppresses multipath sidelobes.
	MinPeakRatio float64
	MaxTargets   int // cap on detections per frame
	// Workers bounds the fan-out width of the per-antenna FFT batches and
	// per-range-bin sweeps (<= 0 means one worker per available CPU). The
	// output is bit-identical for any value; Workers: 1 additionally runs
	// inline with no goroutines, which is what the zero-allocation
	// steady-state guarantee of the Into variants is stated for.
	Workers int
}

// DefaultConfig returns the configuration used throughout the evaluation.
func DefaultConfig() Config {
	return Config{
		AngleBins:    181,
		MinRange:     0.3,
		Window:       dsp.Hann,
		MinPeakPower: 1e-6,
		MinPeakRatio: 0.12,
		MaxTargets:   8,
	}
}

// Profile is a range–angle power map: Power[r*AngleBins + a] is the power at
// range bin r, angle bin a.
type Profile struct {
	Params    fmcw.Params
	Time      float64
	RangeBins int
	AngleBins int
	Power     []float64
}

// RangeOfBin returns the range in meters at (possibly fractional) bin r.
func (p *Profile) RangeOfBin(r float64) float64 {
	n := p.Params.SamplesPerChirp()
	beat := r * p.Params.SampleRate / float64(n)
	return p.Params.DistanceForBeat(beat)
}

// AngleOfBin returns the AoA in radians at (possibly fractional) angle bin a.
func (p *Profile) AngleOfBin(a float64) float64 {
	return a * math.Pi / float64(p.AngleBins-1)
}

// At returns the power at integer bin (r, a).
func (p *Profile) At(r, a int) float64 { return p.Power[r*p.AngleBins+a] }

// Processor computes range–angle profiles and detections.
//
// A Processor is a thin stateful wrapper over a compiled FrontEndPlan: the
// first call for a given frame shape compiles the plan (and a later shape
// change recompiles it), after which every kernel is a direct plan call.
// All the scratch reuse that makes the Into kernels allocation-free lives
// in the plan; concurrent calls on one Processor are safe and — unlike the
// pre-plan scratch, which serialized them — overlap, each on its own
// executor. The fan-out *inside* a call parallelizes across Config.Workers.
type Processor struct {
	cfg Config

	mu   sync.Mutex
	plan *FrontEndPlan
}

// NewProcessor returns a Processor with the given configuration;
// zero-valued fields fall back to DefaultConfig values.
func NewProcessor(cfg Config) *Processor {
	return &Processor{cfg: normalizeConfig(cfg)}
}

// NewProcessorWithPlan returns a Processor that serves frames of the plan's
// compiled shape through the given — possibly shared — plan, adopting the
// plan's configuration. Frames of a different shape transparently compile a
// private plan, exactly like NewProcessor.
func NewProcessorWithPlan(pl *FrontEndPlan) *Processor {
	return &Processor{cfg: pl.cfg, plan: pl}
}

// normalizeConfig fills zero-valued config fields with DefaultConfig values.
func normalizeConfig(cfg Config) Config {
	def := DefaultConfig()
	if cfg.AngleBins < 2 {
		cfg.AngleBins = def.AngleBins
	}
	if cfg.MinPeakPower <= 0 {
		cfg.MinPeakPower = def.MinPeakPower
	}
	if cfg.MinPeakRatio <= 0 {
		cfg.MinPeakRatio = def.MinPeakRatio
	}
	if cfg.MaxTargets <= 0 {
		cfg.MaxTargets = def.MaxTargets
	}
	return cfg
}

// Config returns the processor's effective configuration.
func (pr *Processor) Config() Config { return pr.cfg }

// Plan returns the processor's compiled plan for frame shape p, compiling
// and caching one on first use or shape change.
func (pr *Processor) Plan(p fmcw.Params) *FrontEndPlan {
	pr.mu.Lock()
	pl := pr.plan
	if pl == nil || pl.params != p {
		pl = CompileFrontEndPlan(pr.cfg, p)
		pr.plan = pl
	}
	pr.mu.Unlock()
	return pl
}

// RangeAngleInto computes the range–angle power profile of f into prof
// through the processor's plan; see FrontEndPlan.RangeAngleInto for the
// full contract.
func (pr *Processor) RangeAngleInto(ctx context.Context, f *fmcw.Frame, prof *Profile) error {
	return pr.Plan(f.Params).RangeAngleInto(ctx, f, prof)
}

// RangeDopplerInto computes the range–Doppler map of a chirp burst into m
// through the processor's plan; see FrontEndPlan.RangeDopplerInto for the
// full contract.
func (pr *Processor) RangeDopplerInto(ctx context.Context, m *RangeDopplerMap, chirps []*fmcw.Frame, antenna int, pri float64) error {
	if m == nil {
		panic("radar: RangeDopplerInto with nil map")
	}
	if len(chirps) == 0 {
		*m = RangeDopplerMap{Power: m.Power[:0]}
		return nil
	}
	return pr.Plan(chirps[0].Params).RangeDopplerInto(ctx, m, chirps, antenna, pri)
}

// RangeAngle computes the range–angle power profile of a (typically
// background-subtracted) frame: per-antenna windowed range FFT, then Eq. 2
// beamforming at every range bin.
func (pr *Processor) RangeAngle(f *fmcw.Frame) *Profile {
	prof, _ := pr.RangeAngleCtx(nil, f)
	return prof
}

// RangeAngleCtx is RangeAngle with cooperative cancellation threaded into
// the FFT batch and the beamforming fan-out; it returns (nil, ctx.Err())
// once ctx is done. A nil ctx is exactly RangeAngle. It is the allocating
// wrapper over RangeAngleInto.
func (pr *Processor) RangeAngleCtx(ctx context.Context, f *fmcw.Frame) (*Profile, error) {
	prof := &Profile{}
	if err := pr.RangeAngleInto(ctx, f, prof); err != nil {
		return nil, err
	}
	return prof, nil
}

// BackgroundSubtract returns cur - prev, the standard static-reflector
// rejection (§3).
func BackgroundSubtract(cur, prev *fmcw.Frame) *fmcw.Frame { return cur.Sub(prev) }
