// Package radar implements the eavesdropper's FMCW processing pipeline from
// §3 and §9.1 of the paper: range FFT, digital beamforming across the
// antenna array (Eq. 2), successive-frame background subtraction,
// range–angle power profiles, peak extraction with smoothing and rejection,
// Kalman-filter multi-target tracking, and breathing-phase extraction.
//
// The same pipeline serves three roles in the reproduction: it is the
// adversary RF-Protect defends against, the measurement instrument for the
// spoofing-accuracy experiments (Fig. 9–11), and — with fake-trajectory
// disclosure — the legitimate sensor of Fig. 13.
package radar

import (
	"context"
	"math"
	"math/cmplx"

	"rfprotect/internal/dsp"
	"rfprotect/internal/fmcw"
)

// Config tunes the processing pipeline.
type Config struct {
	AngleBins    int     // beamforming grid resolution over [0, π]
	MaxRange     float64 // ignore range bins beyond this (meters); 0 = Nyquist limit
	MinRange     float64 // ignore range bins closer than this (meters)
	Window       dsp.Window
	MinPeakPower float64 // absolute detection threshold on the power profile
	// MinPeakRatio additionally requires a peak to exceed this fraction of
	// the strongest cell in the profile; it suppresses multipath sidelobes.
	MinPeakRatio float64
	MaxTargets   int // cap on detections per frame
	// Workers bounds the fan-out width of the per-antenna FFT batches and
	// per-range-bin sweeps (<= 0 means one worker per available CPU). The
	// output is bit-identical for any value; Workers: 1 additionally runs
	// inline with no goroutines, which is what the zero-allocation
	// steady-state guarantee of the Into variants is stated for.
	Workers int
}

// DefaultConfig returns the configuration used throughout the evaluation.
func DefaultConfig() Config {
	return Config{
		AngleBins:    181,
		MinRange:     0.3,
		Window:       dsp.Hann,
		MinPeakPower: 1e-6,
		MinPeakRatio: 0.12,
		MaxTargets:   8,
	}
}

// Profile is a range–angle power map: Power[r*AngleBins + a] is the power at
// range bin r, angle bin a.
type Profile struct {
	Params    fmcw.Params
	Time      float64
	RangeBins int
	AngleBins int
	Power     []float64
}

// RangeOfBin returns the range in meters at (possibly fractional) bin r.
func (p *Profile) RangeOfBin(r float64) float64 {
	n := p.Params.SamplesPerChirp()
	beat := r * p.Params.SampleRate / float64(n)
	return p.Params.DistanceForBeat(beat)
}

// AngleOfBin returns the AoA in radians at (possibly fractional) angle bin a.
func (p *Profile) AngleOfBin(a float64) float64 {
	return a * math.Pi / float64(p.AngleBins-1)
}

// At returns the power at integer bin (r, a).
func (p *Profile) At(r, a int) float64 { return p.Power[r*p.AngleBins+a] }

// Processor computes range–angle profiles and detections.
//
// A Processor reuses internal scratch (cached windows, steering vectors,
// spectra buffers, and pre-bound fan-out closures) across calls, which is
// what makes its Into kernels allocation-free in steady state. Each kernel
// family guards its scratch with a lock, so concurrent calls on one
// Processor remain safe — they serialize instead of overlapping. Callers
// that want kernel-level parallelism across frames should use distinct
// Processors; the fan-out *inside* a call parallelizes across
// Config.Workers either way.
type Processor struct {
	cfg Config
	// steering[a][k] is the beamforming weight conj(steer) for angle bin a,
	// antenna k, cached per (params, angle grid).
	steering  [][]complex128
	steerFor  fmcw.Params
	steerBins int
	ra        raScratch
	rd        rdScratch
}

// NewProcessor returns a Processor with the given configuration;
// zero-valued fields fall back to DefaultConfig values.
func NewProcessor(cfg Config) *Processor {
	def := DefaultConfig()
	if cfg.AngleBins < 2 {
		cfg.AngleBins = def.AngleBins
	}
	if cfg.MinPeakPower <= 0 {
		cfg.MinPeakPower = def.MinPeakPower
	}
	if cfg.MinPeakRatio <= 0 {
		cfg.MinPeakRatio = def.MinPeakRatio
	}
	if cfg.MaxTargets <= 0 {
		cfg.MaxTargets = def.MaxTargets
	}
	return &Processor{cfg: cfg}
}

// Config returns the processor's effective configuration.
func (pr *Processor) Config() Config { return pr.cfg }

func (pr *Processor) steeringFor(p fmcw.Params) [][]complex128 {
	if pr.steering != nil && pr.steerFor == p && pr.steerBins == pr.cfg.AngleBins {
		return pr.steering
	}
	bins := pr.cfg.AngleBins
	lambda := p.Wavelength()
	d := p.Spacing()
	st := make([][]complex128, bins)
	for a := 0; a < bins; a++ {
		theta := float64(a) * math.Pi / float64(bins-1)
		row := make([]complex128, p.NumAntennas)
		for k := 0; k < p.NumAntennas; k++ {
			// Matched filter: conjugate of the synthesis steering phase
			// e^{-j2πkd cosθ/λ}, cf. Eq. 2.
			row[k] = cmplx.Exp(complex(0, 2*math.Pi*float64(k)*d*math.Cos(theta)/lambda))
		}
		st[a] = row
	}
	pr.steering = st
	pr.steerFor = p
	pr.steerBins = bins
	return st
}

// RangeAngle computes the range–angle power profile of a (typically
// background-subtracted) frame: per-antenna windowed range FFT, then Eq. 2
// beamforming at every range bin.
func (pr *Processor) RangeAngle(f *fmcw.Frame) *Profile {
	prof, _ := pr.RangeAngleCtx(nil, f)
	return prof
}

// RangeAngleCtx is RangeAngle with cooperative cancellation threaded into
// the FFT batch and the beamforming fan-out; it returns (nil, ctx.Err())
// once ctx is done. A nil ctx is exactly RangeAngle. It is the allocating
// wrapper over RangeAngleInto.
func (pr *Processor) RangeAngleCtx(ctx context.Context, f *fmcw.Frame) (*Profile, error) {
	prof := &Profile{}
	if err := pr.RangeAngleInto(ctx, f, prof); err != nil {
		return nil, err
	}
	return prof, nil
}

func (pr *Processor) maxRangeBin(p fmcw.Params, n int) int {
	maxBin := n / 2
	if pr.cfg.MaxRange > 0 {
		b := int(math.Ceil(p.BeatFrequency(pr.cfg.MaxRange) / p.SampleRate * float64(n)))
		if b < maxBin {
			maxBin = b
		}
	}
	return maxBin
}

func (pr *Processor) minRangeBin(p fmcw.Params, n int) int {
	if pr.cfg.MinRange <= 0 {
		return 0
	}
	return int(p.BeatFrequency(pr.cfg.MinRange) / p.SampleRate * float64(n))
}

// BackgroundSubtract returns cur - prev, the standard static-reflector
// rejection (§3).
func BackgroundSubtract(cur, prev *fmcw.Frame) *fmcw.Frame { return cur.Sub(prev) }
