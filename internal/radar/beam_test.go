package radar

import (
	"math"
	"testing"

	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
)

// TestBeamSweepAVXBitIdenticalToScalar proves the vectorized sweep's
// bit-identity claim empirically: for a spread of antenna counts (hitting
// every unrolled scalar kernel, the generic fallback, and the single-antenna
// degenerate case) the AVX path must reproduce the scalar path's profile bit
// for bit, tail bins included (181 angle bins leave one scalar tail bin).
func TestBeamSweepAVXBitIdenticalToScalar(t *testing.T) {
	if !useBeamAVX {
		t.Skip("AVX unavailable on this machine")
	}
	defer func() { useBeamAVX = true }()
	array := fmcw.Array{Position: geom.Point{}, Facing: 1}
	for _, ants := range []int{1, 2, 3, 4, 7, 9} {
		p := quietParams()
		p.NumAntennas = ants
		returns := []fmcw.Return{
			array.ReturnFrom(geom.Point{X: 1.5, Y: 4}, 1, 0, 0),
			array.ReturnFrom(geom.Point{X: -2, Y: 6}, 0.7, 0, 0),
		}
		fr := fmcw.Synthesize(p, returns, 0, nil)
		cfg := DefaultConfig()
		cfg.Workers = 1
		pl := CompileFrontEndPlan(cfg, p)

		var scalar, vector Profile
		useBeamAVX = false
		if err := pl.RangeAngleInto(nil, fr, &scalar); err != nil {
			t.Fatalf("ants %d: scalar: %v", ants, err)
		}
		useBeamAVX = true
		if err := pl.RangeAngleInto(nil, fr, &vector); err != nil {
			t.Fatalf("ants %d: vector: %v", ants, err)
		}
		if len(vector.Power) != len(scalar.Power) {
			t.Fatalf("ants %d: power length %d vs %d", ants, len(vector.Power), len(scalar.Power))
		}
		for i, want := range scalar.Power {
			if got := vector.Power[i]; math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("ants %d: bin %d differs: %x vs %x (%g vs %g)",
					ants, i, math.Float64bits(got), math.Float64bits(want), got, want)
			}
		}
	}
}
