package radar

import (
	"context"
	"math"

	"rfprotect/internal/dsp"
	"rfprotect/internal/fmcw"
)

// Doppler processing: the alternative static-rejection strategy §3 mentions
// ("e.g. by background subtraction or doppler shift filtering"). A burst of
// chirps at a fixed repetition interval is processed with a range FFT per
// chirp followed by an FFT across chirps at each range bin; static clutter
// lands in the zero-Doppler column and moving targets spread out by radial
// velocity v at Doppler frequency 2v/λ.
//
// This module also exposes the chirp-coherent view of RF-Protect's ghost:
// the tag's free-running switch gives the shifted reflection a (aliased)
// Doppler signature, so Doppler-based static rejection does NOT remove it —
// the tag survives both of the paper's static-rejection strategies.

// RangeDopplerMap is a 2-D power map over range and Doppler bins.
type RangeDopplerMap struct {
	Params      fmcw.Params
	PRI         float64 // chirp repetition interval in seconds
	RangeBins   int
	DopplerBins int
	// Power[r*DopplerBins + d]; Doppler bins are fftshifted so bin
	// DopplerBins/2 is zero velocity.
	Power []float64
}

// VelocityOfBin converts a (possibly fractional) shifted Doppler bin to
// radial velocity in m/s (positive = approaching). An approaching target's
// delay shrinks chirp to chirp, so its carrier phase 2π·f_c·τ rotates
// negatively: approach maps to negative Doppler bins.
func (m *RangeDopplerMap) VelocityOfBin(d float64) float64 {
	fd := (d - float64(m.DopplerBins)/2) / (float64(m.DopplerBins) * m.PRI)
	return -fd * m.Params.Wavelength() / 2
}

// BinOfVelocity inverts VelocityOfBin.
func (m *RangeDopplerMap) BinOfVelocity(v float64) float64 {
	fd := -2 * v / m.Params.Wavelength()
	return fd*float64(m.DopplerBins)*m.PRI + float64(m.DopplerBins)/2
}

// RangeOfBin converts a range bin to meters.
func (m *RangeDopplerMap) RangeOfBin(r float64) float64 {
	n := m.Params.SamplesPerChirp()
	beat := r * m.Params.SampleRate / float64(n)
	return m.Params.DistanceForBeat(beat)
}

// BinOfRange inverts RangeOfBin (the result may be fractional).
func (m *RangeDopplerMap) BinOfRange(rangeM float64) float64 {
	n := m.Params.SamplesPerChirp()
	return m.Params.BeatFrequency(rangeM) / m.Params.SampleRate * float64(n)
}

// At returns the power at (range bin, shifted Doppler bin).
func (m *RangeDopplerMap) At(r, d int) float64 { return m.Power[r*m.DopplerBins+d] }

// MaxUnambiguousVelocity returns the Nyquist velocity λ/(4·PRI).
func (m *RangeDopplerMap) MaxUnambiguousVelocity() float64 {
	return m.Params.Wavelength() / (4 * m.PRI)
}

// RangeDoppler computes the range–Doppler map of a chirp burst on one
// antenna. chirps must share parameters and be uniformly spaced by pri.
func (pr *Processor) RangeDoppler(chirps []*fmcw.Frame, antenna int, pri float64) *RangeDopplerMap {
	m, _ := pr.RangeDopplerCtx(nil, chirps, antenna, pri)
	return m
}

// RangeDopplerCtx is RangeDoppler with cooperative cancellation threaded
// into the range-FFT batch and the per-range-bin slow-time fan-out; it
// returns (nil, ctx.Err()) once ctx is done. A nil ctx is exactly
// RangeDoppler. The map is bit-identical for any worker count: each chirp's
// range FFT and each range bin's Doppler column are independent work items
// writing disjoint destinations through the cached dsp plans. It is the
// allocating wrapper over RangeDopplerInto.
func (pr *Processor) RangeDopplerCtx(ctx context.Context, chirps []*fmcw.Frame, antenna int, pri float64) (*RangeDopplerMap, error) {
	m := &RangeDopplerMap{}
	if err := pr.RangeDopplerInto(ctx, m, chirps, antenna, pri); err != nil {
		return nil, err
	}
	return m, nil
}

// PeakVelocityAtRange extracts the dominant Doppler peak in the range rows
// within ±search bins of the given range and returns its sub-bin
// interpolated radial velocity and power. It reports ok == false when the
// range falls outside the map or the searched rows hold no power — the
// per-track velocity primitive behind Tracker.AttachVelocities.
func (m *RangeDopplerMap) PeakVelocityAtRange(rangeM float64, search int) (velocity, power float64, ok bool) {
	if m.RangeBins == 0 || m.DopplerBins == 0 {
		return 0, 0, false
	}
	r0 := int(math.Round(m.BinOfRange(rangeM)))
	if r0 < 0 || r0 >= m.RangeBins {
		return 0, 0, false
	}
	if search < 0 {
		search = 0
	}
	bestR, bestD, bestP := -1, -1, 0.0
	for r := r0 - search; r <= r0+search; r++ {
		if r < 0 || r >= m.RangeBins {
			continue
		}
		row := m.Power[r*m.DopplerBins : (r+1)*m.DopplerBins]
		for d, v := range row {
			if v > bestP {
				bestR, bestD, bestP = r, d, v
			}
		}
	}
	if bestR < 0 || bestP == 0 {
		return 0, 0, false
	}
	row := m.Power[bestR*m.DopplerBins : (bestR+1)*m.DopplerBins]
	dOff := dsp.QuadraticInterp(row, bestD)
	return m.VelocityOfBin(float64(bestD) + dOff), bestP, true
}

// RejectStatic zeroes the zero-Doppler ridge (±guard bins) in place,
// returning the map — Doppler-based static-reflector rejection.
func (m *RangeDopplerMap) RejectStatic(guard int) *RangeDopplerMap {
	if m.DopplerBins == 0 {
		return m
	}
	center := m.DopplerBins / 2
	for r := 0; r < m.RangeBins; r++ {
		for d := center - guard; d <= center+guard; d++ {
			if d >= 0 && d < m.DopplerBins {
				m.Power[r*m.DopplerBins+d] = 0
			}
		}
	}
	return m
}

// MovingTarget is a detection in range–Doppler space.
type MovingTarget struct {
	Range    float64 // meters
	Velocity float64 // m/s radial, positive approaching
	Power    float64
}

// DetectMoving extracts moving targets from a static-rejected map: 2-D
// peaks above threshold·maxPower.
func (m *RangeDopplerMap) DetectMoving(thresholdFrac float64, maxTargets int) []MovingTarget {
	if len(m.Power) == 0 {
		return nil
	}
	maxPower := 0.0
	for _, v := range m.Power {
		if v > maxPower {
			maxPower = v
		}
	}
	if maxPower == 0 {
		return nil
	}
	peaks := dsp.FindPeaks2D(m.Power, m.RangeBins, m.DopplerBins, thresholdFrac*maxPower, 2)
	if maxTargets > 0 && len(peaks) > maxTargets {
		peaks = peaks[:maxTargets]
	}
	out := make([]MovingTarget, 0, len(peaks))
	for _, pk := range peaks {
		rowSlice := m.Power[pk.Row*m.DopplerBins : (pk.Row+1)*m.DopplerBins]
		dOff := dsp.QuadraticInterp(rowSlice, pk.Col)
		col := make([]float64, m.RangeBins)
		for r := 0; r < m.RangeBins; r++ {
			col[r] = m.At(r, pk.Col)
		}
		rOff := dsp.QuadraticInterp(col, pk.Row)
		out = append(out, MovingTarget{
			Range:    m.RangeOfBin(float64(pk.Row) + rOff),
			Velocity: m.VelocityOfBin(float64(pk.Col) + dOff),
			Power:    pk.Value,
		})
	}
	return out
}

// AliasedDoppler folds a raw Doppler frequency into the unambiguous band
// (-PRF/2, PRF/2] — where the ghost's switching tone lands in a coherent
// processor.
func AliasedDoppler(freq, pri float64) float64 {
	prf := 1 / pri
	f := math.Mod(freq, prf)
	if f > prf/2 {
		f -= prf
	} else if f <= -prf/2 {
		f += prf
	}
	return f
}
