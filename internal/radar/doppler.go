package radar

import (
	"math"

	"rfprotect/internal/dsp"
	"rfprotect/internal/fmcw"
)

// Doppler processing: the alternative static-rejection strategy §3 mentions
// ("e.g. by background subtraction or doppler shift filtering"). A burst of
// chirps at a fixed repetition interval is processed with a range FFT per
// chirp followed by an FFT across chirps at each range bin; static clutter
// lands in the zero-Doppler column and moving targets spread out by radial
// velocity v at Doppler frequency 2v/λ.
//
// This module also exposes the chirp-coherent view of RF-Protect's ghost:
// the tag's free-running switch gives the shifted reflection a (aliased)
// Doppler signature, so Doppler-based static rejection does NOT remove it —
// the tag survives both of the paper's static-rejection strategies.

// RangeDopplerMap is a 2-D power map over range and Doppler bins.
type RangeDopplerMap struct {
	Params      fmcw.Params
	PRI         float64 // chirp repetition interval in seconds
	RangeBins   int
	DopplerBins int
	// Power[r*DopplerBins + d]; Doppler bins are fftshifted so bin
	// DopplerBins/2 is zero velocity.
	Power []float64
}

// VelocityOfBin converts a (possibly fractional) shifted Doppler bin to
// radial velocity in m/s (positive = approaching). An approaching target's
// delay shrinks chirp to chirp, so its carrier phase 2π·f_c·τ rotates
// negatively: approach maps to negative Doppler bins.
func (m *RangeDopplerMap) VelocityOfBin(d float64) float64 {
	fd := (d - float64(m.DopplerBins)/2) / (float64(m.DopplerBins) * m.PRI)
	return -fd * m.Params.Wavelength() / 2
}

// BinOfVelocity inverts VelocityOfBin.
func (m *RangeDopplerMap) BinOfVelocity(v float64) float64 {
	fd := -2 * v / m.Params.Wavelength()
	return fd*float64(m.DopplerBins)*m.PRI + float64(m.DopplerBins)/2
}

// RangeOfBin converts a range bin to meters.
func (m *RangeDopplerMap) RangeOfBin(r float64) float64 {
	n := m.Params.SamplesPerChirp()
	beat := r * m.Params.SampleRate / float64(n)
	return m.Params.DistanceForBeat(beat)
}

// At returns the power at (range bin, shifted Doppler bin).
func (m *RangeDopplerMap) At(r, d int) float64 { return m.Power[r*m.DopplerBins+d] }

// MaxUnambiguousVelocity returns the Nyquist velocity λ/(4·PRI).
func (m *RangeDopplerMap) MaxUnambiguousVelocity() float64 {
	return m.Params.Wavelength() / (4 * m.PRI)
}

// RangeDoppler computes the range–Doppler map of a chirp burst on one
// antenna. chirps must share parameters and be uniformly spaced by pri.
func (pr *Processor) RangeDoppler(chirps []*fmcw.Frame, antenna int, pri float64) *RangeDopplerMap {
	if len(chirps) == 0 {
		return &RangeDopplerMap{}
	}
	p := chirps[0].Params
	n := p.SamplesPerChirp()
	if antenna < 0 || antenna >= p.NumAntennas {
		antenna = 0
	}
	win := pr.cfg.Window.Coefficients(n)
	maxBin := pr.maxRangeBin(p, n)
	nd := len(chirps)
	// Range FFT per chirp.
	spectra := make([][]complex128, nd)
	for k, f := range chirps {
		x := make([]complex128, n)
		for i, v := range f.Data[antenna] {
			x[i] = v * complex(win[i], 0)
		}
		dsp.FFTInPlace(x)
		spectra[k] = x
	}
	// Doppler FFT per range bin, fftshifted.
	dwin := dsp.Hann.Coefficients(nd)
	out := &RangeDopplerMap{
		Params:      p,
		PRI:         pri,
		RangeBins:   maxBin,
		DopplerBins: nd,
		Power:       make([]float64, maxBin*nd),
	}
	col := make([]complex128, nd)
	for r := 0; r < maxBin; r++ {
		for k := 0; k < nd; k++ {
			col[k] = spectra[k][r] * complex(dwin[k], 0)
		}
		dsp.FFTInPlace(col)
		shifted := dsp.FFTShift(col)
		row := out.Power[r*nd : (r+1)*nd]
		for d, v := range shifted {
			row[d] = real(v)*real(v) + imag(v)*imag(v)
		}
	}
	return out
}

// RejectStatic zeroes the zero-Doppler ridge (±guard bins) in place,
// returning the map — Doppler-based static-reflector rejection.
func (m *RangeDopplerMap) RejectStatic(guard int) *RangeDopplerMap {
	if m.DopplerBins == 0 {
		return m
	}
	center := m.DopplerBins / 2
	for r := 0; r < m.RangeBins; r++ {
		for d := center - guard; d <= center+guard; d++ {
			if d >= 0 && d < m.DopplerBins {
				m.Power[r*m.DopplerBins+d] = 0
			}
		}
	}
	return m
}

// MovingTarget is a detection in range–Doppler space.
type MovingTarget struct {
	Range    float64 // meters
	Velocity float64 // m/s radial, positive approaching
	Power    float64
}

// DetectMoving extracts moving targets from a static-rejected map: 2-D
// peaks above threshold·maxPower.
func (m *RangeDopplerMap) DetectMoving(thresholdFrac float64, maxTargets int) []MovingTarget {
	if len(m.Power) == 0 {
		return nil
	}
	maxPower := 0.0
	for _, v := range m.Power {
		if v > maxPower {
			maxPower = v
		}
	}
	if maxPower == 0 {
		return nil
	}
	peaks := dsp.FindPeaks2D(m.Power, m.RangeBins, m.DopplerBins, thresholdFrac*maxPower, 2)
	if maxTargets > 0 && len(peaks) > maxTargets {
		peaks = peaks[:maxTargets]
	}
	out := make([]MovingTarget, 0, len(peaks))
	for _, pk := range peaks {
		rowSlice := m.Power[pk.Row*m.DopplerBins : (pk.Row+1)*m.DopplerBins]
		dOff := dsp.QuadraticInterp(rowSlice, pk.Col)
		col := make([]float64, m.RangeBins)
		for r := 0; r < m.RangeBins; r++ {
			col[r] = m.At(r, pk.Col)
		}
		rOff := dsp.QuadraticInterp(col, pk.Row)
		out = append(out, MovingTarget{
			Range:    m.RangeOfBin(float64(pk.Row) + rOff),
			Velocity: m.VelocityOfBin(float64(pk.Col) + dOff),
			Power:    pk.Value,
		})
	}
	return out
}

// AliasedDoppler folds a raw Doppler frequency into the unambiguous band
// (-PRF/2, PRF/2] — where the ghost's switching tone lands in a coherent
// processor.
func AliasedDoppler(freq, pri float64) float64 {
	prf := 1 / pri
	f := math.Mod(freq, prf)
	if f > prf/2 {
		f -= prf
	} else if f <= -prf/2 {
		f += prf
	}
	return f
}
