package radar

import "sync"

// ProfilePool and DopplerPool recycle profile and range–Doppler map
// destinations for the Into kernels, completing the zero-allocation
// steady-state loop: a streaming consumer Gets a destination, fills it with
// RangeAngleInto / RangeDopplerInto (which reuse the Power backing's
// capacity), and Puts it back once downstream stages are done reading it.
// Like fmcw.FramePool they are plain mutex-guarded free lists rather than
// sync.Pools: the GC never empties them, so the warmed-up allocation count
// stays exactly zero and the allocation-regression gate can assert it.
//
// Unlike FramePool the recycled objects are NOT zeroed or shape-checked:
// the Into kernels restamp every field and overwrite (or reallocate) Power,
// so stale contents are harmless and differently-shaped leftovers simply
// get their backing replaced. See DESIGN.md "Buffer ownership & pooling".

// ProfilePool is a free list of range–angle profiles.
type ProfilePool struct {
	mu   sync.Mutex
	free []*Profile
}

// NewProfilePool returns an empty pool.
func NewProfilePool() *ProfilePool { return &ProfilePool{} }

// Get returns a profile with unspecified contents, to be filled by
// RangeAngleInto.
func (pp *ProfilePool) Get() *Profile {
	pp.mu.Lock()
	if k := len(pp.free); k > 0 {
		p := pp.free[k-1]
		pp.free[k-1] = nil
		pp.free = pp.free[:k-1]
		pp.mu.Unlock()
		return p
	}
	pp.mu.Unlock()
	return &Profile{}
}

// Put recycles a profile. The caller must not use it after Put; Put(nil) is
// a no-op.
func (pp *ProfilePool) Put(p *Profile) {
	if p == nil {
		return
	}
	pp.mu.Lock()
	pp.free = append(pp.free, p)
	pp.mu.Unlock()
}

// Len reports how many profiles are currently parked in the pool.
func (pp *ProfilePool) Len() int {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	return len(pp.free)
}

// DopplerPool is a free list of range–Doppler maps.
type DopplerPool struct {
	mu   sync.Mutex
	free []*RangeDopplerMap
}

// NewDopplerPool returns an empty pool.
func NewDopplerPool() *DopplerPool { return &DopplerPool{} }

// Get returns a map with unspecified contents, to be filled by
// RangeDopplerInto.
func (dp *DopplerPool) Get() *RangeDopplerMap {
	dp.mu.Lock()
	if k := len(dp.free); k > 0 {
		m := dp.free[k-1]
		dp.free[k-1] = nil
		dp.free = dp.free[:k-1]
		dp.mu.Unlock()
		return m
	}
	dp.mu.Unlock()
	return &RangeDopplerMap{}
}

// Put recycles a map. The caller must not use it after Put; Put(nil) is a
// no-op.
func (dp *DopplerPool) Put(m *RangeDopplerMap) {
	if m == nil {
		return
	}
	dp.mu.Lock()
	dp.free = append(dp.free, m)
	dp.mu.Unlock()
}

// Len reports how many maps are currently parked in the pool.
func (dp *DopplerPool) Len() int {
	dp.mu.Lock()
	defer dp.mu.Unlock()
	return len(dp.free)
}
