//go:build !amd64

package radar

// useBeamAVX is always false off amd64: the beamforming sweep runs the
// portable scalar kernels.
var useBeamAVX = false

// beamSweepAVX is unreachable off amd64 (useBeamAVX is never set); the stub
// keeps the package compiling without per-architecture dispatch at the call
// sites.
func beamSweepAVX(row *float64, n, nAnt int, s, wre, wim *float64, stride int) {
	panic("radar: beamSweepAVX without AVX support")
}
