package radar

import (
	"math"
	"testing"

	"rfprotect/internal/dsp"
	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
)

func TestProcessorConfigDefaults(t *testing.T) {
	pr := NewProcessor(Config{})
	cfg := pr.Config()
	def := DefaultConfig()
	if cfg.AngleBins != def.AngleBins {
		t.Fatalf("AngleBins %d", cfg.AngleBins)
	}
	if cfg.MinPeakPower != def.MinPeakPower || cfg.MinPeakRatio != def.MinPeakRatio {
		t.Fatal("peak thresholds not defaulted")
	}
	if cfg.MaxTargets != def.MaxTargets {
		t.Fatal("MaxTargets not defaulted")
	}
}

func TestMaxTargetsCapsDetections(t *testing.T) {
	p := quietParams()
	array := fmcw.Array{Position: geom.Point{}, Facing: 1}
	var returns []fmcw.Return
	for i := 0; i < 6; i++ {
		returns = append(returns, array.ReturnFrom(geom.Point{X: float64(i) - 3, Y: 2 + float64(i)}, 1, 0, 0))
	}
	fr := fmcw.Synthesize(p, returns, 0, nil)
	cfg := DefaultConfig()
	cfg.MaxTargets = 2
	cfg.MinPeakRatio = 0.01
	pr := NewProcessor(cfg)
	dets := pr.Detect(pr.RangeAngle(fr), array)
	if len(dets) > 2 {
		t.Fatalf("got %d detections, cap 2", len(dets))
	}
}

func TestMaxRangeExcludesFarTargets(t *testing.T) {
	p := quietParams()
	array := fmcw.Array{Position: geom.Point{}, Facing: 1}
	near := array.ReturnFrom(geom.Point{X: 0, Y: 3}, 1, 0, 0)
	far := array.ReturnFrom(geom.Point{X: 0, Y: 12}, 1, 0, 0)
	fr := fmcw.Synthesize(p, []fmcw.Return{near, far}, 0, nil)
	cfg := DefaultConfig()
	cfg.MaxRange = 8
	pr := NewProcessor(cfg)
	for _, d := range pr.Detect(pr.RangeAngle(fr), array) {
		if d.Range > 8.5 {
			t.Fatalf("detection beyond MaxRange: %v", d)
		}
	}
}

func TestMinRangeExcludesCloseTargets(t *testing.T) {
	p := quietParams()
	array := fmcw.Array{Position: geom.Point{}, Facing: 1}
	veryClose := array.ReturnFrom(geom.Point{X: 0, Y: 0.6}, 5, 0, 0)
	normal := array.ReturnFrom(geom.Point{X: 0, Y: 4}, 1, 0, 0)
	fr := fmcw.Synthesize(p, []fmcw.Return{veryClose, normal}, 0, nil)
	cfg := DefaultConfig()
	cfg.MinRange = 1.5
	pr := NewProcessor(cfg)
	dets := pr.Detect(pr.RangeAngle(fr), array)
	for _, d := range dets {
		if d.Range < 1.2 {
			t.Fatalf("detection below MinRange: %v", d)
		}
	}
	if len(dets) == 0 {
		t.Fatal("normal target lost")
	}
}

func TestPlanCacheReuse(t *testing.T) {
	p := quietParams()
	pr := NewProcessor(DefaultConfig())
	fr := fmcw.Synthesize(p, nil, 0, nil)
	pr.RangeAngle(fr)
	first := pr.plan
	if first == nil {
		t.Fatal("no plan compiled")
	}
	pr.RangeAngle(fr)
	if pr.plan != first {
		t.Fatal("plan recompiled for identical params")
	}
	if pr.Plan(p) != first {
		t.Fatal("Plan() recompiled for identical params")
	}
	// Changing params invalidates the cache.
	p2 := p
	p2.CenterFreq = 7e9
	fr2 := fmcw.Synthesize(p2, nil, 0, nil)
	pr.RangeAngle(fr2)
	if pr.plan == first {
		t.Fatal("plan not recompiled for new params")
	}
	// A processor built around a shared plan starts on that plan.
	shared := CompileFrontEndPlan(DefaultConfig(), p)
	pr2 := NewProcessorWithPlan(shared)
	if pr2.Plan(p) != shared {
		t.Fatal("NewProcessorWithPlan did not adopt the shared plan")
	}
	if got := pr2.Config().AngleBins; got != shared.Config().AngleBins {
		t.Fatalf("processor config not adopted from plan: %d", got)
	}
}

func TestBeamformingPeakAtTrueAngle(t *testing.T) {
	// Directly verify Eq. 2: P(θ) peaks at the synthesis angle.
	p := quietParams()
	array := fmcw.Array{Position: geom.Point{}, Facing: 1}
	for _, aoa := range []float64{0.5, 1.0, math.Pi / 2, 2.2} {
		ret := fmcw.Return{Delay: 2 * 4.0 / fmcw.C, Amplitude: 1, AoA: aoa}
		fr := fmcw.Synthesize(p, []fmcw.Return{ret}, 0, nil)
		pr := NewProcessor(DefaultConfig())
		prof := pr.RangeAngle(fr)
		dets := pr.Detect(prof, array)
		if len(dets) == 0 {
			t.Fatalf("aoa %v: no detection", aoa)
		}
		if math.Abs(geom.AngleDiff(dets[0].AoA, aoa)) > 0.06 {
			t.Fatalf("aoa %v: detected %v", aoa, dets[0].AoA)
		}
	}
}

func TestTrackSmoothedShortTrack(t *testing.T) {
	trk := &Track{Points: []TimedPoint{{Pos: geom.Point{X: 1, Y: 1}}}}
	s := trk.Smoothed()
	if len(s) != 1 || s[0] != (geom.Point{X: 1, Y: 1}) {
		t.Fatalf("short smoothing: %v", s)
	}
}

func TestEstimateRateShortSeries(t *testing.T) {
	if r := EstimateRate([]float64{1, 2}, 20); r != 0 {
		t.Fatalf("short series rate %v", r)
	}
}

func TestEmpiricalAngleResolutionClaim(t *testing.T) {
	// §5.2: a K-antenna array cannot separate paths within ~π/K. Two equal
	// reflections at the same range separated by half the angular resolution
	// must merge into one detection.
	p := quietParams()
	array := fmcw.Array{Position: geom.Point{}, Facing: 1}
	sep := p.AngularResolution() / 4
	r1 := fmcw.Return{Delay: 2 * 4.0 / fmcw.C, Amplitude: 1, AoA: math.Pi/2 - sep/2}
	r2 := fmcw.Return{Delay: 2 * 4.0 / fmcw.C, Amplitude: 1, AoA: math.Pi/2 + sep/2}
	fr := fmcw.Synthesize(p, []fmcw.Return{r1, r2}, 0, nil)
	pr := NewProcessor(DefaultConfig())
	dets := pr.Detect(pr.RangeAngle(fr), array)
	count := 0
	for _, d := range dets {
		if math.Abs(d.Range-4) < 0.5 {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("sub-resolution pair produced %d detections, want 1 (merged)", count)
	}
}

func TestDetectEmptyProfile(t *testing.T) {
	pr := NewProcessor(DefaultConfig())
	prof := &Profile{AngleBins: 181}
	if dets := pr.Detect(prof, fmcw.Array{}); dets != nil {
		t.Fatal("empty profile should have no detections")
	}
}

func TestCDFOfTrackErrors(t *testing.T) {
	// Integration of dsp CDF with tracker output types (regression guard).
	errs := []float64{0.1, 0.2, 0.3}
	cdf := dsp.EmpiricalCDF(errs)
	if cdf[len(cdf)-1].P != 1 {
		t.Fatal("cdf tail")
	}
}
