//go:build amd64

package radar

// useBeamAVX gates the 4-wide vectorized beamforming sweep. It is set once
// at init from CPUID (AVX plus OS ymm-state support) and read without
// synchronization afterwards; tests toggle it to compare the vector and
// scalar paths bit for bit.
var useBeamAVX = cpuHasAVX()

// cpuHasAVX reports whether the CPU executes AVX instructions and the OS
// preserves ymm state across context switches.
func cpuHasAVX() bool

// beamSweepAVX computes row[a] = |Σ_k s_k · w_k[a]|² for a in [0, n), four
// angle bins per iteration, where s holds the per-antenna spectra packed as
// (re, im) pairs and wre/wim point at the flat antenna-major steering planes
// (row k at element offset k*stride). n must be a multiple of four and the
// slices behind the pointers must cover n elements per steering row; the
// caller handles the tail bins in Go. Implemented in beam_amd64.s.
//
//go:noescape
func beamSweepAVX(row *float64, n, nAnt int, s, wre, wim *float64, stride int)
