package radar

import (
	"rfprotect/internal/dsp"
	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
)

// Detection is one extracted reflection peak in polar and world coordinates.
type Detection struct {
	Range float64    // meters from the radar
	AoA   float64    // radians in [0, π]
	Power float64    // profile power at the peak
	Pos   geom.Point // world position (via the array geometry)
	Time  float64
}

// Detect extracts target detections from a range–angle profile: 2-D local
// maxima above the power thresholds, refined with quadratic interpolation in
// both range and angle, then mapped to world coordinates through the array.
func (pr *Processor) Detect(prof *Profile, array fmcw.Array) []Detection {
	if prof.RangeBins == 0 {
		return nil
	}
	maxPower := 0.0
	for _, v := range prof.Power {
		if v > maxPower {
			maxPower = v
		}
	}
	thresh := pr.cfg.MinPeakPower
	if t := maxPower * pr.cfg.MinPeakRatio; t > thresh {
		thresh = t
	}
	// Enforce a separation of about one nominal beamwidth in angle and one
	// range bin by using a Chebyshev distance of a few cells.
	sep := prof.AngleBins / (2 * prof.Params.NumAntennas)
	if sep < 2 {
		sep = 2
	}
	peaks := dsp.FindPeaks2D(prof.Power, prof.RangeBins, prof.AngleBins, thresh, sep)
	if len(peaks) > pr.cfg.MaxTargets {
		peaks = peaks[:pr.cfg.MaxTargets]
	}
	out := make([]Detection, 0, len(peaks))
	for _, pk := range peaks {
		// Sub-bin refinement along range (column fixed) and angle (row fixed).
		rowSlice := prof.Power[pk.Row*prof.AngleBins : (pk.Row+1)*prof.AngleBins]
		aOff := dsp.QuadraticInterp(rowSlice, pk.Col)
		colSlice := make([]float64, prof.RangeBins)
		for r := 0; r < prof.RangeBins; r++ {
			colSlice[r] = prof.At(r, pk.Col)
		}
		rOff := dsp.QuadraticInterp(colSlice, pk.Row)
		rng := prof.RangeOfBin(float64(pk.Row) + rOff)
		aoa := prof.AngleOfBin(float64(pk.Col) + aOff)
		out = append(out, Detection{
			Range: rng,
			AoA:   aoa,
			Power: pk.Value,
			Pos:   array.PointAt(rng, aoa),
			Time:  prof.Time,
		})
	}
	return out
}

// ProcessFrames runs the full front end over a frame sequence: successive
// background subtraction followed by profile computation and detection.
// The first frame serves only as background; len(frames)-1 detection sets
// are returned.
func (pr *Processor) ProcessFrames(frames []*fmcw.Frame, array fmcw.Array) [][]Detection {
	if len(frames) < 2 {
		return nil
	}
	out := make([][]Detection, 0, len(frames)-1)
	for i := 1; i < len(frames); i++ {
		diff := BackgroundSubtract(frames[i], frames[i-1])
		prof := pr.RangeAngle(diff)
		out = append(out, pr.Detect(prof, array))
	}
	return out
}
