package radar

import (
	"context"

	"rfprotect/internal/dsp"
	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
)

// Detection is one extracted reflection peak in polar and world coordinates.
type Detection struct {
	Range float64    // meters from the radar
	AoA   float64    // radians in [0, π]
	Power float64    // profile power at the peak
	Pos   geom.Point // world position (via the array geometry)
	Time  float64
}

// Detect extracts target detections from a range–angle profile: 2-D local
// maxima above the power thresholds, refined with quadratic interpolation in
// both range and angle, then mapped to world coordinates through the array.
// The returned slice is freshly allocated and safe to retain; steady-state
// callers that want to reuse a buffer use FrontEndPlan.DetectInto.
func (pr *Processor) Detect(prof *Profile, array fmcw.Array) []Detection {
	if prof.RangeBins == 0 {
		return nil
	}
	return pr.Plan(prof.Params).DetectInto(make([]Detection, 0, pr.cfg.MaxTargets), prof, array)
}

// DetectInto extracts target detections from a range–angle profile into
// dst[:0] and returns the result, exactly as Detect would compute them. The
// interpolation column and peak-finder scratch come from the plan's free
// list, so a warmed-up call allocates nothing beyond growing dst the first
// time. The profile must describe the plan's compiled shape (any profile
// produced by the plan's RangeAngleInto does).
//
//rfvet:allocfree
func (pl *FrontEndPlan) DetectInto(dst []Detection, prof *Profile, array fmcw.Array) []Detection {
	dst = dst[:0]
	if prof.RangeBins == 0 {
		return dst
	}
	maxPower := 0.0
	for _, v := range prof.Power {
		if v > maxPower {
			maxPower = v
		}
	}
	thresh := pl.cfg.MinPeakPower
	if t := maxPower * pl.cfg.MinPeakRatio; t > thresh {
		thresh = t
	}
	// Enforce a separation of about one nominal beamwidth in angle and one
	// range bin by using a Chebyshev distance of a few cells.
	sep := prof.AngleBins / (2 * prof.Params.NumAntennas)
	if sep < 2 {
		sep = 2
	}
	e := pl.getDet()
	peaks := e.finder.Find(prof.Power, prof.RangeBins, prof.AngleBins, thresh, sep)
	if len(peaks) > pl.cfg.MaxTargets {
		peaks = peaks[:pl.cfg.MaxTargets]
	}
	col := e.rangeCol(prof.RangeBins)
	for _, pk := range peaks {
		// Sub-bin refinement along range (column fixed) and angle (row fixed).
		rowSlice := prof.Power[pk.Row*prof.AngleBins : (pk.Row+1)*prof.AngleBins]
		aOff := dsp.QuadraticInterp(rowSlice, pk.Col)
		for r := 0; r < prof.RangeBins; r++ {
			col[r] = prof.At(r, pk.Col)
		}
		rOff := dsp.QuadraticInterp(col, pk.Row)
		rng := prof.RangeOfBin(float64(pk.Row) + rOff)
		aoa := prof.AngleOfBin(float64(pk.Col) + aOff)
		dst = append(dst, Detection{
			Range: rng,
			AoA:   aoa,
			Power: pk.Value,
			Pos:   array.PointAt(rng, aoa),
			Time:  prof.Time,
		})
	}
	pl.putDet(e)
	return dst
}

// rangeCol returns the executor's interpolation column sized to n bins,
// growing it on first use. The growth lives here rather than inline in
// DetectInto because it is a one-time warm-up cost: every later call with
// the plan's compiled shape reuses the slice, and keeping the make out of
// DetectInto's body lets its //rfvet:allocfree annotation hold. noinline
// keeps the compiler from folding the make back into DetectInto's escape
// diagnostics; the call costs one jump per detection pass.
//
//go:noinline
func (e *detExec) rangeCol(n int) []float64 {
	if cap(e.col) < n {
		e.col = make([]float64, n)
	}
	return e.col[:n]
}

// FrontEnd is the streaming per-frame state of the eavesdropper's front
// end: one frame of background-subtraction history plus the processor and
// array geometry. Feed it frames one at a time with Step; the detection
// sequence is bit-identical to ProcessFrames over the same frames.
type FrontEnd struct {
	pr    *Processor
	array fmcw.Array
	diff  fmcw.Differencer
}

// NewFrontEnd returns a streaming front end over the processor's
// configuration for the given array geometry.
func (pr *Processor) NewFrontEnd(array fmcw.Array) *FrontEnd {
	return &FrontEnd{pr: pr, array: array}
}

// Step consumes the next frame. The first frame seeds the background
// history and yields ok == false; every later frame yields its
// background-subtracted range–angle profile and detections with ok == true.
func (fe *FrontEnd) Step(f *fmcw.Frame) (dets []Detection, prof *Profile, ok bool) {
	dets, prof, ok, _ = fe.StepCtx(nil, f)
	return dets, prof, ok
}

// StepCtx is Step with cooperative cancellation threaded into the profile
// computation; once ctx is done it returns ctx.Err() and resets the
// background history (a canceled capture is aborted, never resumed). A nil
// ctx is exactly Step.
func (fe *FrontEnd) StepCtx(ctx context.Context, f *fmcw.Frame) (dets []Detection, prof *Profile, ok bool, err error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, nil, false, err
		}
	}
	diff, ok := fe.diff.Step(f)
	if !ok {
		return nil, nil, false, nil
	}
	prof, err = fe.pr.RangeAngleCtx(ctx, diff)
	if err != nil {
		fe.diff.Reset()
		return nil, nil, false, err
	}
	return fe.pr.Detect(prof, fe.array), prof, true, nil
}

// ProcessFrames runs the full front end over a frame sequence: successive
// background subtraction followed by profile computation and detection.
// The first frame serves only as background; len(frames)-1 detection sets
// are returned. It is the batch wrapper over FrontEnd.Step.
func (pr *Processor) ProcessFrames(frames []*fmcw.Frame, array fmcw.Array) [][]Detection {
	if len(frames) < 2 {
		return nil
	}
	fe := pr.NewFrontEnd(array)
	out := make([][]Detection, 0, len(frames)-1)
	for _, f := range frames {
		if dets, _, ok := fe.Step(f); ok {
			out = append(out, dets)
		}
	}
	return out
}
