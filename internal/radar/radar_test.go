package radar

import (
	"math"
	"math/rand"
	"testing"

	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
	"rfprotect/internal/scene"
)

func quietParams() fmcw.Params {
	p := fmcw.DefaultParams()
	p.NoiseStd = 0.001
	return p
}

func TestRangeAngleSingleTarget(t *testing.T) {
	p := quietParams()
	array := fmcw.Array{Position: geom.Point{}, AxisAngle: 0, Facing: 1}
	target := geom.Point{X: 1.5, Y: 4}
	ret := array.ReturnFrom(target, 1, 0, 0)
	fr := fmcw.Synthesize(p, []fmcw.Return{ret}, 0, nil)
	pr := NewProcessor(DefaultConfig())
	prof := pr.RangeAngle(fr)
	dets := pr.Detect(prof, array)
	if len(dets) == 0 {
		t.Fatal("no detections")
	}
	d := dets[0]
	if err := d.Pos.Dist(target); err > 0.25 {
		t.Fatalf("localization error %v m (det %v, target %v)", err, d.Pos, target)
	}
	if math.Abs(d.Range-array.DistanceOf(target)) > p.RangeResolution() {
		t.Fatalf("range error: got %v want %v", d.Range, array.DistanceOf(target))
	}
	if math.Abs(geom.AngleDiff(d.AoA, array.AoAOf(target))) > 0.05 {
		t.Fatalf("angle error: got %v want %v", d.AoA, array.AoAOf(target))
	}
}

func TestDetectSeparatesTwoTargets(t *testing.T) {
	p := quietParams()
	array := fmcw.Array{Position: geom.Point{}, AxisAngle: 0, Facing: 1}
	t1 := geom.Point{X: -2, Y: 3}
	t2 := geom.Point{X: 3, Y: 6}
	fr := fmcw.Synthesize(p, []fmcw.Return{
		array.ReturnFrom(t1, 1, 0, 0),
		array.ReturnFrom(t2, 0.8, 0, 0),
	}, 0, nil)
	pr := NewProcessor(DefaultConfig())
	dets := pr.Detect(pr.RangeAngle(fr), array)
	if len(dets) < 2 {
		t.Fatalf("got %d detections, want 2", len(dets))
	}
	found1, found2 := false, false
	for _, d := range dets[:2] {
		if d.Pos.Dist(t1) < 0.4 {
			found1 = true
		}
		if d.Pos.Dist(t2) < 0.4 {
			found2 = true
		}
	}
	if !found1 || !found2 {
		t.Fatalf("targets not separated: %v", dets)
	}
}

func TestBackgroundSubtractionKillsStatic(t *testing.T) {
	p := quietParams()
	array := fmcw.Array{Position: geom.Point{}, AxisAngle: 0, Facing: 1}
	static := array.ReturnFrom(geom.Point{X: 0, Y: 2}, 2, 0, 0)
	mover1 := array.ReturnFrom(geom.Point{X: 1, Y: 5}, 0.5, 0, 0)
	mover2 := array.ReturnFrom(geom.Point{X: 1.2, Y: 5.2}, 0.5, 0, 0)
	f1 := fmcw.Synthesize(p, []fmcw.Return{static, mover1}, 0, nil)
	f2 := fmcw.Synthesize(p, []fmcw.Return{static, mover2}, 0.05, nil)
	pr := NewProcessor(DefaultConfig())
	dets := pr.Detect(pr.RangeAngle(BackgroundSubtract(f2, f1)), array)
	for _, d := range dets {
		if d.Pos.Dist(geom.Point{X: 0, Y: 2}) < 0.5 {
			t.Fatalf("static reflector leaked through subtraction: %v", d)
		}
	}
	if len(dets) == 0 {
		t.Fatal("moving target lost")
	}
}

func TestKalmanConvergesOnStationaryTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	kf := NewKalman(geom.Point{X: 1, Y: 1}, 0.1, 0.05)
	truth := geom.Point{X: 2, Y: 3}
	for i := 0; i < 200; i++ {
		kf.Predict(0.05)
		kf.Update(truth.Add(geom.Point{X: rng.NormFloat64() * 0.1, Y: rng.NormFloat64() * 0.1}))
	}
	if d := kf.Position().Dist(truth); d > 0.1 {
		t.Fatalf("converged to %v, truth %v (err %v)", kf.Position(), truth, d)
	}
	if v := kf.Velocity().Norm(); v > 0.2 {
		t.Fatalf("stationary target has velocity %v", v)
	}
}

func TestKalmanTracksConstantVelocity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	kf := NewKalman(geom.Point{}, 1.0, 0.01)
	vel := geom.Point{X: 1, Y: 0.5}
	dt := 0.05
	var pos geom.Point
	for i := 0; i < 200; i++ {
		pos = pos.Add(vel.Scale(dt))
		kf.Predict(dt)
		kf.Update(pos.Add(geom.Point{X: rng.NormFloat64() * 0.05, Y: rng.NormFloat64() * 0.05}))
	}
	if d := kf.Velocity().Dist(vel); d > 0.15 {
		t.Fatalf("velocity estimate %v, truth %v", kf.Velocity(), vel)
	}
	if d := kf.Position().Dist(pos); d > 0.15 {
		t.Fatalf("position estimate %v, truth %v", kf.Position(), pos)
	}
}

func TestKalmanMahalanobisGating(t *testing.T) {
	kf := NewKalman(geom.Point{}, 0.1, 0.01)
	kf.Predict(0.05)
	near := kf.Update(geom.Point{X: 0.01, Y: 0})
	kf2 := NewKalman(geom.Point{}, 0.1, 0.01)
	kf2.Predict(0.05)
	far := kf2.Update(geom.Point{X: 5, Y: 5})
	if near >= far {
		t.Fatalf("Mahalanobis ordering wrong: near %v far %v", near, far)
	}
}

func makeDetections(traj geom.Trajectory, t0, dt float64) [][]Detection {
	out := make([][]Detection, len(traj))
	for i, p := range traj {
		out[i] = []Detection{{Pos: p, Time: t0 + float64(i)*dt, Power: 1}}
	}
	return out
}

func TestTrackerFollowsSingleTarget(t *testing.T) {
	traj := make(geom.Trajectory, 50)
	for i := range traj {
		traj[i] = geom.Point{X: float64(i) * 0.05, Y: 2}
	}
	tracks := TrackDetections(TrackerConfig{}, makeDetections(traj, 0, 0.05))
	if len(tracks) != 1 {
		t.Fatalf("got %d tracks, want 1", len(tracks))
	}
	got := tracks[0].Trajectory()
	if len(got) < 40 {
		t.Fatalf("track too short: %d", len(got))
	}
	if e := geom.MeanPointwiseError(got, traj); e > 0.1 {
		t.Fatalf("track error %v", e)
	}
}

func TestTrackerSeparatesTwoTargets(t *testing.T) {
	n := 60
	frames := make([][]Detection, n)
	for i := range frames {
		ti := float64(i) * 0.05
		frames[i] = []Detection{
			{Pos: geom.Point{X: float64(i) * 0.03, Y: 1}, Time: ti},
			{Pos: geom.Point{X: 5 - float64(i)*0.03, Y: 4}, Time: ti},
		}
	}
	tracks := TrackDetections(TrackerConfig{}, frames)
	if len(tracks) != 2 {
		t.Fatalf("got %d tracks, want 2", len(tracks))
	}
}

func TestTrackerDropsAfterMisses(t *testing.T) {
	var frames [][]Detection
	for i := 0; i < 20; i++ {
		frames = append(frames, []Detection{{Pos: geom.Point{X: 0.05 * float64(i), Y: 1}, Time: 0.05 * float64(i)}})
	}
	// 30 empty frames: target gone. Observe is only called with detections,
	// so emulate misses via far-away detections that cannot associate.
	for i := 20; i < 50; i++ {
		frames = append(frames, []Detection{{Pos: geom.Point{X: 100, Y: 100}, Time: 0.05 * float64(i)}})
	}
	tracks := TrackDetections(TrackerConfig{MinTrackPoints: 5}, frames)
	if len(tracks) < 1 {
		t.Fatal("original track lost entirely")
	}
	if got := len(tracks[0].Points); got > 25 {
		t.Fatalf("track kept growing after target vanished: %d points", got)
	}
}

func TestIsOscillatoryFanVsHuman(t *testing.T) {
	const fr = 20.0
	// Fan: 2 Hz orbit of radius 0.3.
	fan := &Track{Confirmed: true}
	for i := 0; i < 100; i++ {
		ti := float64(i) / fr
		a := 2 * math.Pi * 2 * ti
		fan.Points = append(fan.Points, TimedPoint{Time: ti, Pos: geom.Point{X: 2 + 0.3*math.Cos(a), Y: 2 + 0.3*math.Sin(a)}})
	}
	if !IsOscillatory(fan, fr) {
		t.Fatal("fan not flagged")
	}
	// Human: slow walk.
	human := &Track{Confirmed: true}
	for i := 0; i < 100; i++ {
		ti := float64(i) / fr
		human.Points = append(human.Points, TimedPoint{Time: ti, Pos: geom.Point{X: ti * 0.8, Y: 1 + 0.2*math.Sin(0.3*ti)}})
	}
	if IsOscillatory(human, fr) {
		t.Fatal("human flagged as oscillatory")
	}
	filtered := FilterHumanTracks([]*Track{fan, human}, fr)
	if len(filtered) != 1 || filtered[0] != human {
		t.Fatal("FilterHumanTracks wrong")
	}
}

func TestEndToEndSceneTracking(t *testing.T) {
	// A human walks a straight line in the office; the pipeline must recover
	// the trajectory within a couple of range bins.
	params := fmcw.DefaultParams()
	params.NoiseStd = 0.005
	sc := scene.NewScene(scene.OfficeRoom(), params)
	fs := params.FrameRate
	n := 80
	traj := make(geom.Trajectory, n)
	for i := range traj {
		f := float64(i) / float64(n-1)
		traj[i] = geom.Point{X: 3 + 4*f, Y: 2 + 2*f}
	}
	sc.Humans = []*scene.Human{scene.NewHuman(traj, fs)}
	rng := rand.New(rand.NewSource(42))
	frames := sc.Capture(0, n, rng)
	pr := NewProcessor(DefaultConfig())
	detSeq := pr.ProcessFrames(frames, sc.Radar)
	tracks := TrackDetections(TrackerConfig{}, detSeq)
	if len(tracks) == 0 {
		t.Fatal("no tracks recovered")
	}
	best := tracks[0]
	for _, trk := range tracks {
		if len(trk.Points) > len(best.Points) {
			best = trk
		}
	}
	got := best.Smoothed()
	if len(got) < n/2 {
		t.Fatalf("track covers only %d of %d frames", len(got), n)
	}
	if e := geom.MeanPointwiseError(got, traj); e > 0.4 {
		t.Fatalf("end-to-end tracking error %v m", e)
	}
}

func TestBreathingPhaseExtraction(t *testing.T) {
	params := fmcw.DefaultParams()
	params.NoiseStd = 0.002
	sc := scene.NewScene(scene.HomeRoom(), params)
	h := scene.NewHuman(geom.Trajectory{{X: 7, Y: 3}}, 1)
	h.Breathing = scene.Breathing{Rate: 0.25, Amplitude: 0.005}
	sc.Humans = []*scene.Human{h}
	rng := rand.New(rand.NewSource(9))
	nFrames := 400 // 20 s at 20 Hz
	frames := sc.Capture(0, nFrames, rng)
	dist := sc.Radar.DistanceOf(geom.Point{X: 7, Y: 3})
	ex := BreathingExtractor{}
	times, phase := ex.PhaseSeries(frames, dist)
	if len(times) != nFrames || len(phase) != nFrames {
		t.Fatal("series length")
	}
	rate := EstimateRate(phase, params.FrameRate)
	if math.Abs(rate-0.25) > 0.05 {
		t.Fatalf("breathing rate %v Hz, want 0.25", rate)
	}
	// Phase swing should match 4π·A/λ peak-to-peak x2 amplitude.
	want := 2 * 4 * math.Pi * 0.005 / params.Wavelength()
	lo, hi := phase[0], phase[0]
	for _, v := range phase {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if got := hi - lo; got < 0.5*want || got > 2*want {
		t.Fatalf("phase swing %v, want ~%v", got, want)
	}
}

func TestDetrend(t *testing.T) {
	x := make([]float64, 50)
	for i := range x {
		x[i] = 3 + 0.2*float64(i) + math.Sin(float64(i))
	}
	d := detrend(x)
	// Residual mean should be ~0 and the sin component preserved.
	if m := math.Abs(meanOf(d)); m > 1e-9 {
		t.Fatalf("detrended mean %v", m)
	}
	var amp float64
	for _, v := range d {
		amp = math.Max(amp, math.Abs(v))
	}
	if amp < 0.8 {
		t.Fatalf("oscillation flattened: amp %v", amp)
	}
}

func meanOf(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

func TestProfileBinConversions(t *testing.T) {
	p := quietParams()
	pr := NewProcessor(DefaultConfig())
	fr := fmcw.Synthesize(p, nil, 0, nil)
	prof := pr.RangeAngle(fr)
	if got := prof.AngleOfBin(0); got != 0 {
		t.Fatalf("AngleOfBin(0) = %v", got)
	}
	if got := prof.AngleOfBin(float64(prof.AngleBins - 1)); math.Abs(got-math.Pi) > 1e-12 {
		t.Fatalf("AngleOfBin(last) = %v", got)
	}
	// Range of bin k maps the bin's beat frequency back to meters.
	if got := prof.RangeOfBin(1); math.Abs(got-p.RangeResolution()*512/512) > 0.01 {
		// one bin = fs/N Hz = 2 kHz -> 15 cm
		t.Fatalf("RangeOfBin(1) = %v", got)
	}
}
