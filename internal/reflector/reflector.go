// Package reflector models the RF-Protect hardware tag of §5: a panel of
// switched directional antennas deployed along a wall, an on/off RF switch
// that frequency-shifts the reflected chirp to spoof distance (§5.1), an
// antenna selector that spoofs direction (§5.2), and an analog phase shifter
// that spoofs breathing (§5.3 / §11.4).
//
// The tag never transmits a signal of its own: every emitted fmcw.Return is
// a true reflection of the incident chirp, with amplitude inherited from the
// radar-equation falloff — which is what makes the defense hard to detect
// and makes it vanish automatically when the radar stops transmitting.
package reflector

import (
	"fmt"
	"math"

	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
)

// Config describes the physical tag.
type Config struct {
	// Position is the first antenna's world position; the remaining antennas
	// are laid out every Spacing meters along Axis.
	Position geom.Point
	Axis     float64 // panel direction in radians
	// NumAntennas is the size of the switched array (paper prototype: 6).
	NumAntennas int
	// Spacing is the antenna separation in meters (paper prototype: ~0.2 m).
	Spacing float64
	// Gain is the LNA amplitude gain applied to the reflection.
	Gain float64
	// Duty is the switching duty cycle in (0, 1); 0 means 0.5. It determines
	// the harmonic structure of the spoofed reflection.
	Duty float64
	// MaxHarmonic is the highest switching harmonic simulated (default 3).
	MaxHarmonic int
	// SSB suppresses negative harmonics, modeling single-sideband switching
	// as in Hitchhike [50] (§5.1).
	SSB bool
	// SyncGranularity is the control-update period in seconds; the paper
	// notes tens of milliseconds suffice (default 10 ms).
	SyncGranularity float64
	// ChirpSlope is the (publicly known or scanned) slope of the target
	// radar's chirp, used to convert distance to switching frequency.
	ChirpSlope float64
	// Wavelength is the carrier wavelength used to scale breathing phase.
	Wavelength float64
}

// DefaultConfig returns the paper's prototype: 6 antennas at 20 cm spacing,
// 50% duty, 10 ms control granularity, matched to fmcw.DefaultParams.
func DefaultConfig(pos geom.Point, axis float64) Config {
	p := fmcw.DefaultParams()
	return Config{
		Position:        pos,
		Axis:            axis,
		NumAntennas:     6,
		Spacing:         0.2,
		Gain:            60,
		Duty:            0.5,
		MaxHarmonic:     3,
		SyncGranularity: 0.010,
		ChirpSlope:      p.Slope(),
		Wavelength:      p.Wavelength(),
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.NumAntennas < 1:
		return fmt.Errorf("reflector: NumAntennas %d must be >= 1", c.NumAntennas)
	case c.Spacing <= 0:
		return fmt.Errorf("reflector: Spacing %v must be positive", c.Spacing)
	case c.Duty < 0 || c.Duty >= 1:
		return fmt.Errorf("reflector: Duty %v must be in [0, 1)", c.Duty)
	case c.ChirpSlope <= 0:
		return fmt.Errorf("reflector: ChirpSlope %v must be positive", c.ChirpSlope)
	}
	return nil
}

func (c Config) duty() float64 {
	if c.Duty == 0 {
		return 0.5
	}
	return c.Duty
}

func (c Config) maxHarmonic() int {
	if c.MaxHarmonic <= 0 {
		return 3
	}
	return c.MaxHarmonic
}

func (c Config) syncGranularity() float64 {
	if c.SyncGranularity <= 0 {
		return 0.010
	}
	return c.SyncGranularity
}

// AntennaPosition returns the world position of antenna i.
func (c Config) AntennaPosition(i int) geom.Point {
	d := geom.Point{X: math.Cos(c.Axis), Y: math.Sin(c.Axis)}
	return c.Position.Add(d.Scale(float64(i) * c.Spacing))
}

// SwitchFrequency returns the on/off switching frequency that spoofs the
// given extra distance: f = 2·sl·Δd/C, inverting Eq. 1 (Eq. 3 of the paper
// up to its dropped round-trip factor of two).
func (c Config) SwitchFrequency(extraDistance float64) float64 {
	return 2 * c.ChirpSlope * extraDistance / fmcw.C
}

// SpoofedExtraDistance inverts SwitchFrequency.
func (c Config) SpoofedExtraDistance(switchFreq float64) float64 {
	return switchFreq * fmcw.C / (2 * c.ChirpSlope)
}

// HarmonicCoefficient returns |c_n| of the duty-d 0/1 square wave's Fourier
// series: c_0 = d, c_n = sin(πnd)/(πn). The n = 0 term is the static
// (background-subtracted) reflection; n = ±1 carry the ghost; higher
// harmonics are the weak extra images §5.1 describes.
func (c Config) HarmonicCoefficient(n int) float64 {
	return harmonicCoefficient(c.duty(), n)
}

// harmonicCoefficient is HarmonicCoefficient for an explicit duty cycle —
// the per-tick dithered duty of a hardened session.
func harmonicCoefficient(d float64, n int) float64 {
	if n == 0 {
		return d
	}
	fn := float64(n)
	return math.Abs(math.Sin(math.Pi*fn*d) / (math.Pi * fn))
}

// ControlState is the tag state during one sync tick.
type ControlState struct {
	Antenna       int     // active antenna index
	SwitchFreq    float64 // on/off switching frequency in Hz (0 = switch idle)
	PhaseShift    float64 // phase-shifter setting in radians
	ExtraDistance float64 // the distance offset SwitchFreq encodes
	// Duty overrides the config duty cycle for this tick (0 = use the
	// config value) — set by the hardening duty dither.
	Duty float64
}

// Reflector is a programmed RF-Protect tag. It implements
// scene.ReturnSource. The zero value is unusable; construct with New.
type Reflector struct {
	cfg           Config
	sessions      []*session
	amplitudeMode AmplitudeMode
}

// session is one programmed ghost: a dense control schedule.
type session struct {
	start  float64
	tick   float64
	states []ControlState
	// suppress scales every |n| >= 2 harmonic amplitude by (1 - suppress) —
	// the harmonic pre-compensation hardening (see Hardening).
	suppress float64
	// intended is the spoofed (antenna ray, extra distance) log disclosed to
	// legitimate sensors.
}

// New returns a tag with the given configuration.
func New(cfg Config) (*Reflector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Reflector{cfg: cfg}, nil
}

// Config returns the tag configuration.
func (r *Reflector) Config() Config { return r.cfg }

// stateAt returns the active control state at time t, if any.
func (s *session) stateAt(t float64) (ControlState, bool) {
	if t < s.start {
		return ControlState{}, false
	}
	i := int((t - s.start) / s.tick)
	if i >= len(s.states) {
		return ControlState{}, false
	}
	return s.states[i], true
}

// ReturnsAt implements scene.ReturnSource: the reflections the tag produces
// at time t for the given (unknown to the tag) radar geometry.
//
// Each active session reflects from its selected antenna. The square-wave
// switching splits the reflection into harmonics: the n-th harmonic adds
// n·f_switch to the beat frequency, i.e. appears n·Δd beyond the antenna.
func (r *Reflector) ReturnsAt(t float64, radar fmcw.Array) []fmcw.Return {
	var out []fmcw.Return
	for _, s := range r.sessions {
		st, ok := s.stateAt(t)
		if !ok {
			continue
		}
		p := r.cfg.AntennaPosition(st.Antenna)
		d := radar.DistanceOf(p)
		if d < 0.3 {
			d = 0.3
		}
		// The tick's effective duty: the hardening dither overrides the
		// config value per control state.
		duty := st.Duty
		if duty == 0 {
			duty = r.cfg.duty()
		}
		// Round-trip radar-equation falloff, then LNA gain.
		base := r.cfg.Gain / (d * d)
		if r.amplitudeMode == AmplitudeMatchHuman {
			// Variable-gain amplification: make the first harmonic's power
			// equal a unit-RCS human at the spoofed location, preserving the
			// relative harmonic structure (Fig. 10b's power-matched ghost).
			spoofDist := d + st.ExtraDistance
			if spoofDist < 0.3 {
				spoofDist = 0.3
			}
			c1 := harmonicCoefficient(duty, 1)
			if c1 > 0 {
				base = 1 / (spoofDist * spoofDist * c1)
			}
		}
		lo := -r.cfg.maxHarmonic()
		if r.cfg.SSB {
			lo = 0
		}
		for n := lo; n <= r.cfg.maxHarmonic(); n++ {
			amp := base * harmonicCoefficient(duty, n)
			if n > 1 || n < -1 {
				// Harmonic pre-compensation (hardening): the switch driver
				// cancels the measured higher harmonics.
				amp *= 1 - s.suppress
			}
			if st.SwitchFreq == 0 && n != 0 {
				continue // switch idle: plain static reflection only
			}
			if amp < 1e-9 {
				continue
			}
			out = append(out, fmcw.Return{
				Delay:     2 * d / fmcw.C,
				Amplitude: amp,
				AoA:       radar.AoAOf(p),
				FreqShift: float64(n) * st.SwitchFreq,
				Phase:     st.PhaseShift,
			})
		}
	}
	return out
}
