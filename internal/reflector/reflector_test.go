package reflector

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
	"rfprotect/internal/radar"
	"rfprotect/internal/scene"
)

func testTag(t *testing.T) (*Reflector, Config) {
	t.Helper()
	cfg := DefaultConfig(geom.Point{X: 4, Y: 0.2}, 0)
	tag, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tag, cfg
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(geom.Point{}, 0)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.NumAntennas = 0 },
		func(c *Config) { c.Spacing = 0 },
		func(c *Config) { c.Duty = 1 },
		func(c *Config) { c.Duty = -0.1 },
		func(c *Config) { c.ChirpSlope = 0 },
	}
	for i, mutate := range bad {
		c := good
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
		if _, err := New(c); err == nil {
			t.Errorf("case %d: New should reject invalid config", i)
		}
	}
}

func TestAntennaLayout(t *testing.T) {
	cfg := DefaultConfig(geom.Point{X: 1, Y: 2}, math.Pi/2)
	p0 := cfg.AntennaPosition(0)
	p3 := cfg.AntennaPosition(3)
	if p0 != (geom.Point{X: 1, Y: 2}) {
		t.Fatalf("antenna 0 at %v", p0)
	}
	if p3.Dist(geom.Point{X: 1, Y: 2.6}) > 1e-12 {
		t.Fatalf("antenna 3 at %v", p3)
	}
}

func TestSwitchFrequencyRoundTrip(t *testing.T) {
	cfg := DefaultConfig(geom.Point{}, 0)
	f := func(d float64) bool {
		d = math.Abs(math.Mod(d, 10))
		return math.Abs(cfg.SpoofedExtraDistance(cfg.SwitchFrequency(d))-d) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// 1.5 m extra distance needs tens of kHz, as §5.3 says.
	fsw := cfg.SwitchFrequency(1.5)
	if fsw < 10e3 || fsw > 100e3 {
		t.Fatalf("switch frequency %v Hz not in the tens-of-kHz regime", fsw)
	}
}

func TestHarmonicCoefficients(t *testing.T) {
	cfg := DefaultConfig(geom.Point{}, 0)
	// 50% duty: c0 = 0.5, |c1| = 1/π, c2 = 0, |c3| = 1/(3π).
	if got := cfg.HarmonicCoefficient(0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("c0 = %v", got)
	}
	if got := cfg.HarmonicCoefficient(1); math.Abs(got-1/math.Pi) > 1e-12 {
		t.Fatalf("c1 = %v", got)
	}
	if got := cfg.HarmonicCoefficient(2); got > 1e-12 {
		t.Fatalf("c2 = %v, want 0", got)
	}
	if got := cfg.HarmonicCoefficient(3); math.Abs(got-1/(3*math.Pi)) > 1e-12 {
		t.Fatalf("c3 = %v", got)
	}
	// Non-50% duty has even harmonics (the paper's 2·f_switch images).
	cfg.Duty = 0.3
	if got := cfg.HarmonicCoefficient(2); got < 1e-3 {
		t.Fatalf("duty 0.3 c2 = %v, want > 0", got)
	}
	// Symmetric in n.
	if cfg.HarmonicCoefficient(-1) != cfg.HarmonicCoefficient(1) {
		t.Fatal("harmonics not symmetric")
	}
}

func TestProgramLocalDisclosureShape(t *testing.T) {
	tag, _ := testTag(t)
	ctl := NewController(tag)
	traj := geom.Trajectory{{X: 0, Y: 2}, {X: 1, Y: 3}, {X: 2, Y: 4}}
	rec, err := ctl.ProgramLocal(traj, 5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Start != 1.0 {
		t.Fatalf("start = %v", rec.Start)
	}
	// 2 samples at 5 Hz = 0.4 s => 40 ticks (+1).
	if len(rec.Entries) < 40 {
		t.Fatalf("entries = %d", len(rec.Entries))
	}
	if math.Abs(rec.End()-(1.0+float64(len(rec.Entries))*rec.Tick)) > 1e-12 {
		t.Fatal("End inconsistent")
	}
	for _, e := range rec.Entries {
		if e.Antenna < 0 || e.Antenna >= tag.Config().NumAntennas {
			t.Fatalf("antenna %d out of range", e.Antenna)
		}
		if e.ExtraDistance < 0 {
			t.Fatalf("negative extra distance %v", e.ExtraDistance)
		}
	}
	if got := len(ctl.Records()); got != 1 {
		t.Fatalf("records = %d", got)
	}
}

func TestProgramErrors(t *testing.T) {
	tag, _ := testTag(t)
	ctl := NewController(tag)
	if _, err := ctl.ProgramLocal(nil, 5, 0); err == nil {
		t.Fatal("empty trajectory accepted")
	}
	if _, err := ctl.ProgramLocal(geom.Trajectory{{X: 1, Y: 1}}, 0, 0); err == nil {
		t.Fatal("zero sample rate accepted")
	}
	if _, err := ctl.ProgramForRadar(nil, fmcw.Array{}, 5, 0); err == nil {
		t.Fatal("empty trajectory accepted")
	}
	if _, err := ctl.ProgramBreathing(99, 2, 0.25, 0.005, 10, 0); err == nil {
		t.Fatal("bad antenna accepted")
	}
	if _, err := ctl.ProgramBreathing(0, 2, 0.25, 0.005, 0, 0); err == nil {
		t.Fatal("zero duration accepted")
	}
}

func TestReturnsOnlyDuringSession(t *testing.T) {
	tag, _ := testTag(t)
	ctl := NewController(tag)
	_, err := ctl.ProgramBreathing(0, 2, 0.25, 0.005, 1.0, 5.0)
	if err != nil {
		t.Fatal(err)
	}
	arr := fmcw.Array{Position: geom.Point{X: 5, Y: 0}, Facing: 1}
	if rets := tag.ReturnsAt(4.9, arr); len(rets) != 0 {
		t.Fatalf("returns before session start: %v", rets)
	}
	if rets := tag.ReturnsAt(5.5, arr); len(rets) == 0 {
		t.Fatal("no returns during session")
	}
	if rets := tag.ReturnsAt(6.5, arr); len(rets) != 0 {
		t.Fatalf("returns after session end: %v", rets)
	}
}

func TestHarmonicStructureOfReturns(t *testing.T) {
	tag, cfg := testTag(t)
	ctl := NewController(tag)
	ctl.SetAmplitudeMode(AmplitudeRaw)
	if _, err := ctl.ProgramBreathing(2, 3.0, 0.25, 0.005, 10, 0); err != nil {
		t.Fatal(err)
	}
	arr := fmcw.Array{Position: geom.Point{X: 5, Y: 0}, Facing: 1}
	rets := tag.ReturnsAt(1, arr)
	// 50% duty: harmonics -3,-1,0,1,3 (±2 vanish) => 5 returns.
	if len(rets) != 5 {
		t.Fatalf("got %d returns: %v", len(rets), rets)
	}
	fsw := cfg.SwitchFrequency(3.0)
	seen := map[int]bool{}
	for _, r := range rets {
		n := int(math.Round(r.FreqShift / fsw))
		seen[n] = true
		if math.Abs(r.FreqShift-float64(n)*fsw) > 1e-6 {
			t.Fatalf("freq shift %v not a harmonic of %v", r.FreqShift, fsw)
		}
	}
	for _, n := range []int{-3, -1, 0, 1, 3} {
		if !seen[n] {
			t.Fatalf("missing harmonic %d (saw %v)", n, seen)
		}
	}
}

func TestSSBSuppressesNegativeHarmonics(t *testing.T) {
	cfg := DefaultConfig(geom.Point{X: 4, Y: 0.2}, 0)
	cfg.SSB = true
	tag, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctl := NewController(tag)
	ctl.SetAmplitudeMode(AmplitudeRaw)
	if _, err := ctl.ProgramBreathing(0, 3.0, 0.25, 0.005, 10, 0); err != nil {
		t.Fatal(err)
	}
	arr := fmcw.Array{Position: geom.Point{X: 5, Y: 0}, Facing: 1}
	for _, r := range tag.ReturnsAt(1, arr) {
		if r.FreqShift < 0 {
			t.Fatalf("negative harmonic with SSB: %v", r)
		}
	}
}

func TestGhostAppearsAtIntendedLocation(t *testing.T) {
	// End to end: program a ghost path, run the eavesdropper pipeline, and
	// check the detected ghost location matches the disclosed intention.
	params := fmcw.DefaultParams()
	params.NoiseStd = 0.003
	sc := scene.NewScene(scene.HomeRoom(), params)
	sc.Multipath = false

	// Panel broadside to the radar, ~1.2 m in front (the radar sits behind
	// the wall in the paper's deployment; our scene has no wall attenuation,
	// so depth inside the room is equivalent). Antennas span ±0.5 m
	// laterally, giving the radar a wide fan of spoofable angles.
	tagCfg := DefaultConfig(geom.Point{X: sc.Radar.Position.X - 0.5, Y: 1.2}, 0)
	tag, err := New(tagCfg)
	if err != nil {
		t.Fatal(err)
	}
	ctl := NewController(tag)
	sc.Sources = []scene.ReturnSource{tag}

	// Ghost walks a diagonal inside the panel's angular fan.
	n := 60
	traj := make(geom.Trajectory, n)
	cx := sc.Radar.Position.X
	for i := range traj {
		f := float64(i) / float64(n-1)
		traj[i] = geom.Point{X: cx - 1 + 2*f, Y: 3 + 2*f}
	}
	rec, err := ctl.ProgramForRadar(traj, sc.Radar, params.FrameRate, 0)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(3))
	frames := sc.Capture(0, n, rng)
	pr := radar.NewProcessor(radar.DefaultConfig())
	detSeq := pr.ProcessFrames(frames, sc.Radar)

	// Per-frame oracle matching: the evaluation knows which trajectory was
	// spoofed (square-wave harmonics legitimately add extra phantoms, and
	// the tracker may split tracks — neither is an accuracy error).
	intended := rec.ExpectedObservation(tagCfg, sc.Radar)
	matched, sum := 0, 0.0
	for i, dets := range detSeq {
		ti := frames[i+1].Time
		idx := int((ti - rec.Start) / rec.Tick)
		if idx < 0 || idx >= len(intended) {
			continue
		}
		want := intended[idx]
		best, bestD := -1, 1.5
		for di, d := range dets {
			if e := d.Pos.Dist(want); e < bestD {
				best, bestD = di, e
			}
		}
		if best >= 0 {
			matched++
			sum += bestD
		}
	}
	if matched < len(detSeq)*8/10 {
		t.Fatalf("ghost matched in only %d/%d frames", matched, len(detSeq))
	}
	if mean := sum / float64(matched); mean > 0.3 {
		t.Fatalf("ghost deviates %v m from intention", mean)
	}
	// And the intention itself must be close to the requested trajectory
	// modulo the discrete antenna grid.
	if e := geom.MeanPointwiseError(geom.Trajectory(intended), traj); e > 1.0 {
		t.Fatalf("intended observation %v m from request", e)
	}
}

func TestGhostSurvivesBackgroundSubtraction(t *testing.T) {
	// A switching ghost must survive frame differencing while the tag's
	// static (n=0) component must not.
	params := fmcw.DefaultParams()
	params.NoiseStd = 0.002
	sc := scene.NewScene(scene.HomeRoom(), params)
	sc.Multipath = false
	tagCfg := DefaultConfig(geom.Point{X: sc.Radar.Position.X + 1.2, Y: 0.2}, 0)
	tag, _ := New(tagCfg)
	ctl := NewController(tag)
	sc.Sources = []scene.ReturnSource{tag}
	// Moving ghost: distance ramps over time.
	traj := geom.Trajectory{{X: 7, Y: 3}, {X: 8, Y: 4.5}}
	if _, err := ctl.ProgramForRadar(traj, sc.Radar, 0.5, 0); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	frames := sc.Capture(0, 20, rng)
	pr := radar.NewProcessor(radar.DefaultConfig())
	found := 0
	for i := 1; i < len(frames); i++ {
		diff := radar.BackgroundSubtract(frames[i], frames[i-1])
		dets := pr.Detect(pr.RangeAngle(diff), sc.Radar)
		for _, d := range dets {
			// Any detection beyond the tag itself counts as the ghost.
			if d.Range > 2.0 {
				found++
				break
			}
		}
	}
	if found < 10 {
		t.Fatalf("ghost visible in only %d/19 subtracted frames", found)
	}
}

func TestBreathingGhostPhase(t *testing.T) {
	params := fmcw.DefaultParams()
	params.NoiseStd = 0.002
	sc := scene.NewScene(scene.HomeRoom(), params)
	sc.Multipath = false
	tagCfg := DefaultConfig(geom.Point{X: sc.Radar.Position.X + 1.2, Y: 0.2}, 0)
	tag, _ := New(tagCfg)
	ctl := NewController(tag)
	sc.Sources = []scene.ReturnSource{tag}
	const rate = 0.3
	rec, err := ctl.ProgramBreathing(2, 3.0, rate, 0.005, 25, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	nFrames := 400
	frames := sc.Capture(0, nFrames, rng)
	// The ghost sits at antenna distance + 3 m.
	ghostDist := sc.Radar.DistanceOf(tagCfg.AntennaPosition(2)) + 3.0
	ex := radar.BreathingExtractor{}
	_, phase := ex.PhaseSeries(frames, ghostDist)
	got := radar.EstimateRate(phase, params.FrameRate)
	if math.Abs(got-rate) > 0.05 {
		t.Fatalf("spoofed breathing rate %v Hz, want %v", got, rate)
	}
	_ = rec
}

func BenchmarkReturnsAt(b *testing.B) {
	cfg := DefaultConfig(geom.Point{X: 4, Y: 0.2}, 0)
	tag, _ := New(cfg)
	ctl := NewController(tag)
	traj := geom.Trajectory{{X: 0, Y: 2}, {X: 2, Y: 5}}
	if _, err := ctl.ProgramLocal(traj, 0.2, 0); err != nil {
		b.Fatal(err)
	}
	arr := fmcw.Array{Position: geom.Point{X: 5, Y: 0}, Facing: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tag.ReturnsAt(1, arr)
	}
}
