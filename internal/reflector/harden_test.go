package reflector

import (
	"math"
	"testing"

	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
)

// hardenedTag programs one straight-line ghost on a fresh tag with the given
// hardening and returns the tag.
func hardenedTag(t *testing.T, h Hardening) *Reflector {
	t.Helper()
	tag, err := New(DefaultConfig(geom.Point{X: -0.5, Y: 1.2}, 0))
	if err != nil {
		t.Fatal(err)
	}
	ctl := NewController(tag)
	ctl.SetHardening(h)
	traj := geom.Trajectory{{X: 0.5, Y: 3}, {X: 0.8, Y: 4}}
	if _, err := ctl.ProgramLocal(traj, 1, 0); err != nil {
		t.Fatal(err)
	}
	return tag
}

func returnsOf(tag *Reflector, t float64) []fmcw.Return {
	return tag.ReturnsAt(t, fmcw.Array{Position: geom.Point{X: 0, Y: 0}})
}

func TestHardeningSuppressionWeakensHigherHarmonics(t *testing.T) {
	plain := hardenedTag(t, Hardening{})
	hard := hardenedTag(t, Hardening{HarmonicSuppression: 0.9})
	// Compare the per-harmonic amplitude ratios at one tick. Returns carry
	// FreqShift = n·f_sw, so n is recoverable from the smallest shift.
	ampsByN := func(rets []fmcw.Return) map[int]float64 {
		f1 := math.Inf(1)
		for _, r := range rets {
			if f := math.Abs(r.FreqShift); f > 0 && f < f1 {
				f1 = f
			}
		}
		out := map[int]float64{}
		for _, r := range rets {
			out[int(math.Round(r.FreqShift/f1))] = r.Amplitude
		}
		return out
	}
	ap, ah := ampsByN(returnsOf(plain, 0.1)), ampsByN(returnsOf(hard, 0.1))
	if ap[1] == 0 || ah[1] == 0 {
		t.Fatalf("first harmonic missing: plain %v, hard %v", ap, ah)
	}
	if math.Abs(ah[1]-ap[1]) > 1e-12*ap[1] {
		t.Fatalf("suppression touched the first harmonic: %v vs %v", ah[1], ap[1])
	}
	if ap[3] == 0 {
		t.Fatalf("plain tag lost its third harmonic: %v", ap)
	}
	// 0.9 suppression drops |c3| by 10×, pushing it under ReturnsAt's 1e-9
	// amplitude floor or to exactly (1-0.9)× the plain value.
	if h3 := ah[3]; h3 > 0.11*ap[3] {
		t.Fatalf("third harmonic %v not suppressed (plain %v)", h3, ap[3])
	}
}

func TestHardeningDitherIsSeededAndDeterministic(t *testing.T) {
	a := hardenedTag(t, Hardening{DutyDither: 0.08, Seed: 7})
	b := hardenedTag(t, Hardening{DutyDither: 0.08, Seed: 7})
	c := hardenedTag(t, Hardening{DutyDither: 0.08, Seed: 8})
	sameAsA, differsFromC := true, false
	for i := 0; i < 40; i++ {
		tm := 0.005 + float64(i)*0.01
		ra, rb, rc := returnsOf(a, tm), returnsOf(b, tm), returnsOf(c, tm)
		if len(ra) != len(rb) {
			sameAsA = false
			break
		}
		for j := range ra {
			if ra[j] != rb[j] {
				sameAsA = false
			}
		}
		if len(ra) != len(rc) {
			differsFromC = true
			continue
		}
		for j := range ra {
			if ra[j].Amplitude != rc[j].Amplitude {
				differsFromC = true
			}
		}
	}
	if !sameAsA {
		t.Fatal("same seed produced different dithered returns")
	}
	if !differsFromC {
		t.Fatal("different seeds produced identical dithered returns")
	}
}

func TestHardeningDitherVariesDutyButKeepsGhost(t *testing.T) {
	tag := hardenedTag(t, Hardening{DutyDither: 0.08, Seed: 3})
	duties := map[float64]bool{}
	for _, s := range tag.sessions {
		for _, st := range s.states {
			if st.Duty != 0 {
				duties[st.Duty] = true
				if st.Duty < 0.05 || st.Duty > 0.95 {
					t.Fatalf("dithered duty %v outside (0,1) guard", st.Duty)
				}
			}
			if st.SwitchFreq <= 0 {
				t.Fatalf("dither must not disturb the switching schedule: %+v", st)
			}
		}
	}
	if len(duties) < 2 {
		t.Fatalf("dither produced %d distinct duties, want several", len(duties))
	}
}

func TestSetHardeningClamps(t *testing.T) {
	ctl := NewController(mustTag(t))
	ctl.SetHardening(Hardening{DutyDither: -1, HarmonicSuppression: 2})
	h := ctl.Hardening()
	if h.DutyDither != 0 || h.HarmonicSuppression != 1 {
		t.Fatalf("clamped hardening = %+v", h)
	}
}

func mustTag(t *testing.T) *Reflector {
	t.Helper()
	tag, err := New(DefaultConfig(geom.Point{}, 0))
	if err != nil {
		t.Fatal(err)
	}
	return tag
}
