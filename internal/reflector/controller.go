package reflector

import (
	"fmt"
	"math"

	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
)

// GhostEntry is one control tick of a programmed ghost, in the tag's own
// terms: which antenna reflected and how much extra distance the switching
// frequency encoded. This is exactly the information the tag can disclose to
// a legitimate sensor (§11.3) — it contains no knowledge of the radar.
type GhostEntry struct {
	Antenna       int
	ExtraDistance float64
	PhaseShift    float64
}

// GhostRecord is the disclosure log of one ghost session.
type GhostRecord struct {
	Start   float64 // session start time in seconds
	Tick    float64 // control granularity in seconds
	Entries []GhostEntry
}

// End returns the session end time.
func (g GhostRecord) End() float64 {
	return g.Start + float64(len(g.Entries))*g.Tick
}

// ExpectedObservation maps the disclosure log to the ghost trajectory a
// radar with the given geometry would observe, assuming it knows the tag's
// antenna positions (the calibration a user shares with their own sensor).
// One point per control tick.
func (g GhostRecord) ExpectedObservation(cfg Config, radar fmcw.Array) []geom.Point {
	out := make([]geom.Point, len(g.Entries))
	for i, e := range g.Entries {
		p := cfg.AntennaPosition(e.Antenna)
		r := radar.DistanceOf(p) + e.ExtraDistance
		out[i] = radar.PointAt(r, radar.AoAOf(p))
	}
	return out
}

// AmplitudeMode selects how the tag scales its reflection power.
type AmplitudeMode int

const (
	// AmplitudeRaw uses the physical LNA gain and round-trip falloff as-is.
	AmplitudeRaw AmplitudeMode = iota
	// AmplitudeMatchHuman adjusts the variable-gain amplifier so the ghost's
	// received power equals that of a unit-RCS human standing at the spoofed
	// location — reproducing Fig. 10's power-matched profiles.
	AmplitudeMatchHuman
)

// Controller programs ghosts onto a Reflector.
type Controller struct {
	tag  *Reflector
	mode AmplitudeMode
	logs []GhostRecord
	hard Hardening
}

// NewController returns a controller for the tag with power matching on.
func NewController(tag *Reflector) *Controller {
	return &Controller{tag: tag, mode: AmplitudeMatchHuman}
}

// SetAmplitudeMode selects the power-control strategy.
func (c *Controller) SetAmplitudeMode(m AmplitudeMode) { c.mode = m }

// Records returns the disclosure logs of every programmed ghost.
func (c *Controller) Records() []GhostRecord {
	out := make([]GhostRecord, len(c.logs))
	copy(out, c.logs)
	return out
}

// ProgramLocal programs a ghost trajectory expressed in the tag's local
// frame (the cGAN output anchored near the tag), with no knowledge of the
// radar: the bearing about the panel selects the antenna, the radius sets
// the switching frequency. The observed trajectory is a translated/rotated/
// slightly scaled version of the request — the invariance §5.3 and §11.1
// measure modulo.
//
// traj points are relative to the panel origin; fs is the trajectory sample
// rate; start is the session start time.
func (c *Controller) ProgramLocal(traj geom.Trajectory, fs, start float64) (GhostRecord, error) {
	if len(traj) == 0 {
		return GhostRecord{}, fmt.Errorf("reflector: empty trajectory")
	}
	if fs <= 0 {
		return GhostRecord{}, fmt.Errorf("reflector: sample rate %v must be positive", fs)
	}
	cfg := c.tag.cfg
	k := cfg.NumAntennas
	entries := c.resample(traj, fs, func(p geom.Point) GhostEntry {
		pol := geom.ToPolar(p, geom.Point{})
		// Bearing relative to the panel axis, folded into [0, π].
		theta := math.Abs(geom.AngleDiff(pol.Theta, cfg.Axis))
		idx := int(math.Round(theta / math.Pi * float64(k-1)))
		if idx < 0 {
			idx = 0
		} else if idx >= k {
			idx = k - 1
		}
		return GhostEntry{Antenna: idx, ExtraDistance: math.Max(pol.R, 0)}
	})
	return c.commit(start, entries), nil
}

// ProgramForRadar programs a ghost trajectory in world coordinates against a
// radar whose geometry is known (the calibrated setup of the accuracy
// experiments, §9.3): for each point the controller selects the antenna
// whose radar ray passes closest to the point, then encodes the remaining
// range with the switching frequency. Points closer to the radar than the
// chosen antenna are clamped onto the antenna (the tag can only add delay,
// §5.1).
func (c *Controller) ProgramForRadar(traj geom.Trajectory, radar fmcw.Array, fs, start float64) (GhostRecord, error) {
	if len(traj) == 0 {
		return GhostRecord{}, fmt.Errorf("reflector: empty trajectory")
	}
	if fs <= 0 {
		return GhostRecord{}, fmt.Errorf("reflector: sample rate %v must be positive", fs)
	}
	cfg := c.tag.cfg
	entries := c.resample(traj, fs, func(p geom.Point) GhostEntry {
		wantAoA := radar.AoAOf(p)
		best, bestErr := 0, math.Inf(1)
		for i := 0; i < cfg.NumAntennas; i++ {
			aoa := radar.AoAOf(cfg.AntennaPosition(i))
			if e := math.Abs(geom.AngleDiff(aoa, wantAoA)); e < bestErr {
				best, bestErr = i, e
			}
		}
		extra := radar.DistanceOf(p) - radar.DistanceOf(cfg.AntennaPosition(best))
		if extra < 0 {
			extra = 0
		}
		return GhostEntry{Antenna: best, ExtraDistance: extra}
	})
	return c.commit(start, entries), nil
}

// ProgramBreathing programs a stationary breathing ghost: fixed antenna and
// switching frequency, with the phase shifter replaying the carrier-phase
// signature of chest motion with the given amplitude (meters) and rate (Hz)
// for the given duration (§11.4).
func (c *Controller) ProgramBreathing(antenna int, extraDistance, rate, amplitude, duration, start float64) (GhostRecord, error) {
	cfg := c.tag.cfg
	if antenna < 0 || antenna >= cfg.NumAntennas {
		return GhostRecord{}, fmt.Errorf("reflector: antenna %d out of range [0, %d)", antenna, cfg.NumAntennas)
	}
	if duration <= 0 {
		return GhostRecord{}, fmt.Errorf("reflector: duration %v must be positive", duration)
	}
	tick := cfg.syncGranularity()
	n := int(duration / tick)
	lambda := cfg.Wavelength
	if lambda <= 0 {
		lambda = fmcw.DefaultParams().Wavelength()
	}
	entries := make([]GhostEntry, n)
	for i := range entries {
		t := float64(i) * tick
		phase := 4 * math.Pi * amplitude * math.Sin(2*math.Pi*rate*t) / lambda
		entries[i] = GhostEntry{Antenna: antenna, ExtraDistance: extraDistance, PhaseShift: phase}
	}
	return c.commit(start, entries), nil
}

// resample converts a trajectory at fs samples/s into per-tick ghost entries
// via the supplied point mapper, interpolating between trajectory samples.
func (c *Controller) resample(traj geom.Trajectory, fs float64, mapper func(geom.Point) GhostEntry) []GhostEntry {
	tick := c.tag.cfg.syncGranularity()
	duration := float64(len(traj)-1) / fs
	n := int(duration/tick) + 1
	entries := make([]GhostEntry, n)
	for i := range entries {
		ft := float64(i) * tick * fs
		j := int(ft)
		var p geom.Point
		if j >= len(traj)-1 {
			p = traj[len(traj)-1]
		} else {
			p = geom.Lerp(traj[j], traj[j+1], ft-float64(j))
		}
		entries[i] = mapper(p)
	}
	return entries
}

// commit installs the entries as a live session on the tag and logs them.
func (c *Controller) commit(start float64, entries []GhostEntry) GhostRecord {
	cfg := c.tag.cfg
	tick := cfg.syncGranularity()
	states := make([]ControlState, len(entries))
	for i, e := range entries {
		// Note a real-hardware corner: a *stationary* phantom whose
		// f_switch is an exact integer multiple of the radar's frame rate
		// has identical beat phase in every frame and is erased by
		// background subtraction (see TestStationaryGhostAliasing).
		// Frequency dithering would fix that but injects modulator phase
		// noise that swamps the breathing signature, so the controller
		// keeps f_switch clean; moving phantoms vary f_switch naturally,
		// and breathing phantoms are sensed through raw phase, not frame
		// differencing.
		states[i] = ControlState{
			Antenna:       e.Antenna,
			SwitchFreq:    cfg.SwitchFrequency(e.ExtraDistance),
			PhaseShift:    e.PhaseShift,
			ExtraDistance: e.ExtraDistance,
		}
	}
	c.hardenStates(states, len(c.tag.sessions))
	c.tag.sessions = append(c.tag.sessions, &session{
		start:    start,
		tick:     tick,
		states:   states,
		suppress: c.hard.HarmonicSuppression,
	})
	rec := GhostRecord{Start: start, Tick: tick, Entries: entries}
	c.logs = append(c.logs, rec)
	c.tag.amplitudeMode = c.mode
	return rec
}
