package reflector

import (
	"math"
	"math/rand"
	"testing"

	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
	"rfprotect/internal/radar"
	"rfprotect/internal/scene"
)

// TestMultiplePhantomsSimultaneously exercises §5.2's claim that the
// multiple antennas can generate multiple phantoms at once: two ghost
// sessions on different antennas must both appear to the eavesdropper.
func TestMultiplePhantomsSimultaneously(t *testing.T) {
	params := fmcw.DefaultParams()
	params.NoiseStd = 0.002
	sc := scene.NewScene(scene.HomeRoom(), params)
	sc.Multipath = false
	sc.Room.Speckle = 0
	tagCfg := DefaultConfig(geom.Point{X: sc.Radar.Position.X - 0.5, Y: 1.2}, 0)
	tag, err := New(tagCfg)
	if err != nil {
		t.Fatal(err)
	}
	ctl := NewController(tag)
	sc.Sources = []scene.ReturnSource{tag}

	// Two breathing phantoms on different antennas at different ranges.
	if _, err := ctl.ProgramBreathing(0, 2.0, 0.2, 0.005, 10, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.ProgramBreathing(5, 4.3, 0.3, 0.005, 10, 0); err != nil {
		t.Fatal(err)
	}
	want1 := sc.Radar.DistanceOf(tagCfg.AntennaPosition(0)) + 2.0
	want2 := sc.Radar.DistanceOf(tagCfg.AntennaPosition(5)) + 4.3

	rng := rand.New(rand.NewSource(11))
	frames := sc.Capture(0, 30, rng)
	// The far phantom's power is ~(d1/d2)^4 of the near one's; use a more
	// sensitive detector than the default relative threshold.
	cfg := radar.DefaultConfig()
	cfg.MinPeakRatio = 0.02
	pr := radar.NewProcessor(cfg)
	found1, found2 := 0, 0
	for _, dets := range pr.ProcessFrames(frames, sc.Radar) {
		for _, d := range dets {
			if math.Abs(d.Range-want1) < 0.4 {
				found1++
			}
			if math.Abs(d.Range-want2) < 0.4 {
				found2++
			}
		}
	}
	if found1 < 10 || found2 < 10 {
		t.Fatalf("phantoms visible in %d and %d of 29 frames", found1, found2)
	}
	// Both breathing rates must be recoverable independently.
	ex := radar.BreathingExtractor{}
	_, phase1 := ex.PhaseSeries(frames, want1)
	_, phase2 := ex.PhaseSeries(frames, want2)
	if len(phase1) == 0 || len(phase2) == 0 {
		t.Fatal("phase series empty")
	}
	// (Rates need a longer capture to estimate precisely; the full check is
	// in Fig 14. Here we assert the two phase traces differ, i.e. the
	// phantoms are independent.)
	diff := 0.0
	for i := range phase1 {
		diff += math.Abs((phase1[i] - phase1[0]) - (phase2[i] - phase2[0]))
	}
	if diff < 1e-6 {
		t.Fatal("the two phantoms share a phase trace")
	}
}

// TestStationaryGhostAliasing documents a physical corner of the switching
// design: a stationary phantom whose switching frequency is an exact
// integer multiple of the radar frame rate produces identical beat phase in
// every frame, so successive-frame subtraction erases it (the free-running
// modulator phase advances by an exact multiple of 2π between captures).
// Raw (non-subtracted) processing still sees it, which is what breathing
// monitors use.
func TestStationaryGhostAliasing(t *testing.T) {
	params := fmcw.DefaultParams() // 20 Hz frames
	params.NoiseStd = 0
	sc := scene.NewScene(scene.HomeRoom(), params)
	sc.Multipath = false
	sc.Room.Speckle = 0
	tagCfg := DefaultConfig(geom.Point{X: sc.Radar.Position.X - 0.5, Y: 1.2}, 0)
	tag, err := New(tagCfg)
	if err != nil {
		t.Fatal(err)
	}
	ctl := NewController(tag)
	sc.Sources = []scene.ReturnSource{tag}
	// Pick the extra distance whose f_switch is exactly 60 kHz = 3000 x
	// the 20 Hz frame rate: the exact alias.
	extra := tagCfg.SpoofedExtraDistance(60e3)
	if _, err := ctl.ProgramBreathing(0, extra, 0, 0, 10, 0); err != nil {
		t.Fatal(err)
	}
	fsw := tagCfg.SwitchFrequency(extra)
	if rem := math.Mod(fsw, params.FrameRate); math.Abs(rem) > 1e-6 {
		t.Fatalf("test premise broken: f_switch %v not a frame-rate multiple (rem %v)", fsw, rem)
	}
	f0 := sc.FrameAt(0, nil)
	f1 := sc.FrameAt(1/params.FrameRate, nil)
	diff := radar.BackgroundSubtract(f1, f0)
	pr := radar.NewProcessor(radar.DefaultConfig())
	if dets := pr.Detect(pr.RangeAngle(diff), sc.Radar); len(dets) != 0 {
		t.Fatalf("aliased stationary ghost should cancel under subtraction, got %v", dets)
	}
	// Raw processing still sees the phantom.
	prof := pr.RangeAngle(f0)
	want := sc.Radar.DistanceOf(tagCfg.AntennaPosition(0)) + extra
	found := false
	for _, d := range pr.Detect(prof, sc.Radar) {
		if math.Abs(d.Range-want) < 0.4 {
			found = true
		}
	}
	if !found {
		t.Fatal("aliased ghost missing from raw profile")
	}
}
