package reflector

import (
	"math/rand"

	"rfprotect/internal/parallel"
)

// Hardening configures the tag-side countermeasures of the detector arms
// race: the switching-harmonic fingerprint (internal/detect) keys on the
// square wave's rigid ±2/±3 comb, and both knobs below attack that comb
// while leaving the first harmonic — the ghost itself — intact.
type Hardening struct {
	// DutyDither is the half-width of a per-tick uniform dither applied to
	// the switching duty cycle around Config.Duty. Around the default 50%
	// duty the even harmonics it introduces are tiny (sin(2πd) ≈ -2π·ε near
	// d = 0.5) and, because every control tick draws a fresh duty, they
	// decorrelate across the detector's slow-time window instead of forming
	// a coherent comb line. Zero disables dithering.
	DutyDither float64
	// HarmonicSuppression in [0, 1] scales the amplitude of every |n| >= 2
	// harmonic by (1 - HarmonicSuppression), modeling feed-forward
	// pre-compensation in the switch driver (shaping the drive waveform to
	// cancel the measured higher harmonics). 0.9 drops the ±2/±3 images by
	// 100× in power; 0 disables.
	HarmonicSuppression float64
	// Seed drives the dither stream. Each committed session derives its own
	// deterministic stream via parallel.SplitSeed(Seed, sessionIndex), so a
	// programmed tag replays bit-identically for a fixed seed regardless of
	// how many sessions it carries.
	Seed int64
}

// enabled reports whether any countermeasure is active.
func (h Hardening) enabled() bool { return h.DutyDither > 0 || h.HarmonicSuppression > 0 }

// SetHardening installs countermeasures applied to every subsequently
// programmed session (already-committed sessions keep the hardening they
// were programmed with). Suppression outside [0, 1] and negative dither are
// clamped.
func (c *Controller) SetHardening(h Hardening) {
	if h.DutyDither < 0 {
		h.DutyDither = 0
	}
	if h.HarmonicSuppression < 0 {
		h.HarmonicSuppression = 0
	} else if h.HarmonicSuppression > 1 {
		h.HarmonicSuppression = 1
	}
	c.hard = h
}

// Hardening returns the countermeasures applied to new sessions.
func (c *Controller) Hardening() Hardening { return c.hard }

// hardenStates applies the controller's hardening to a freshly built state
// schedule: per-tick duty dither drawn from the session's split seed. The
// session index pins the stream so commit order, not call timing, decides
// the bits.
func (c *Controller) hardenStates(states []ControlState, sessionIndex int) {
	if c.hard.DutyDither <= 0 {
		return
	}
	base := c.tag.cfg.duty()
	rng := rand.New(rand.NewSource(parallel.SplitSeed(c.hard.Seed, sessionIndex)))
	for i := range states {
		d := base + (2*rng.Float64()-1)*c.hard.DutyDither
		// Keep the switch meaningfully switching: duty pinned inside (0, 1).
		if d < 0.05 {
			d = 0.05
		} else if d > 0.95 {
			d = 0.95
		}
		states[i].Duty = d
	}
}
