package geom

import "math"

// RigidTransform is a rotation about the origin followed by a translation.
type RigidTransform struct {
	Theta       float64 // rotation angle in radians
	Translation Point
}

// Apply maps p through the transform.
func (rt RigidTransform) Apply(p Point) Point {
	return p.Rotate(rt.Theta).Add(rt.Translation)
}

// ApplyTrajectory maps every point of t through the transform.
func (rt RigidTransform) ApplyTrajectory(t Trajectory) Trajectory {
	out := make(Trajectory, len(t))
	for i, p := range t {
		out[i] = rt.Apply(p)
	}
	return out
}

// AlignRigid computes the least-squares rigid transform (rotation +
// translation, no scaling) mapping src onto dst — the classic 2-D
// Procrustes / Kabsch solution. Both trajectories must have the same
// nonzero length; otherwise the identity transform is returned.
//
// The optimal rotation maximizes Σ dst'_i · R(src'_i) over centered points,
// giving θ = atan2(Σ cross, Σ dot).
func AlignRigid(src, dst Trajectory) RigidTransform {
	if len(src) == 0 || len(src) != len(dst) {
		return RigidTransform{}
	}
	cs := src.Centroid()
	cd := dst.Centroid()
	var sumDot, sumCross float64
	for i := range src {
		a := src[i].Sub(cs)
		b := dst[i].Sub(cd)
		sumDot += a.Dot(b)
		sumCross += a.Cross(b)
	}
	theta := math.Atan2(sumCross, sumDot)
	// Translation maps the rotated source centroid onto the destination
	// centroid.
	rotCS := cs.Rotate(theta)
	return RigidTransform{Theta: theta, Translation: cd.Sub(rotCS)}
}

// AlignedErrors rigidly aligns src to dst and returns the per-point residual
// distances. This is the "error modulo translation and rotation" of §11.1.
// Trajectories of different lengths are resampled to the shorter length
// first.
func AlignedErrors(src, dst Trajectory) []float64 {
	if len(src) == 0 || len(dst) == 0 {
		return nil
	}
	n := len(src)
	if len(dst) < n {
		n = len(dst)
	}
	s := src.Resample(n)
	d := dst.Resample(n)
	rt := AlignRigid(s, d)
	aligned := rt.ApplyTrajectory(s)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = aligned[i].Dist(d[i])
	}
	return out
}
