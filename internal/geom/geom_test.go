package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointOps(t *testing.T) {
	p := Point{3, 4}
	q := Point{1, -1}
	if p.Add(q) != (Point{4, 3}) {
		t.Fatal("Add")
	}
	if p.Sub(q) != (Point{2, 5}) {
		t.Fatal("Sub")
	}
	if p.Scale(2) != (Point{6, 8}) {
		t.Fatal("Scale")
	}
	if p.Dot(q) != -1 {
		t.Fatal("Dot")
	}
	if p.Cross(q) != -7 {
		t.Fatal("Cross")
	}
	if p.Norm() != 5 {
		t.Fatal("Norm")
	}
	if p.Dist(Point{0, 0}) != 5 {
		t.Fatal("Dist")
	}
	if s := p.String(); s != "(3.00, 4.00)" {
		t.Fatalf("String = %q", s)
	}
}

func TestRotate(t *testing.T) {
	p := Point{1, 0}
	r := p.Rotate(math.Pi / 2)
	if math.Abs(r.X) > 1e-12 || math.Abs(r.Y-1) > 1e-12 {
		t.Fatalf("Rotate 90: %v", r)
	}
}

func TestPolarRoundtripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Point{rng.NormFloat64() * 5, rng.NormFloat64() * 5}
		o := Point{rng.NormFloat64(), rng.NormFloat64()}
		back := ToPolar(p, o).ToCartesian(o)
		return p.Dist(back) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAngleDiff(t *testing.T) {
	if d := AngleDiff(0.1, -0.1); math.Abs(d-0.2) > 1e-12 {
		t.Fatalf("AngleDiff = %v", d)
	}
	// Wrap-around: 179° - (-179°) = -2°.
	a, b := math.Pi-0.01, -math.Pi+0.01
	if d := AngleDiff(a, b); math.Abs(d+0.02) > 1e-9 {
		t.Fatalf("wrap AngleDiff = %v", d)
	}
}

func line(n int, from, to Point) Trajectory {
	t := make(Trajectory, n)
	for i := range t {
		t[i] = Lerp(from, to, float64(i)/float64(n-1))
	}
	return t
}

func TestTrajectoryBasics(t *testing.T) {
	tr := line(11, Point{0, 0}, Point{10, 0})
	if math.Abs(tr.PathLength()-10) > 1e-12 {
		t.Fatalf("PathLength = %v", tr.PathLength())
	}
	c := tr.Centroid()
	if math.Abs(c.X-5) > 1e-12 || math.Abs(c.Y) > 1e-12 {
		t.Fatalf("Centroid = %v", c)
	}
	min, max := tr.BoundingBox()
	if min != (Point{0, 0}) || max != (Point{10, 0}) {
		t.Fatalf("BoundingBox = %v %v", min, max)
	}
	if math.Abs(tr.RangeOfMotion()-10) > 1e-12 {
		t.Fatalf("RangeOfMotion = %v", tr.RangeOfMotion())
	}
}

func TestResample(t *testing.T) {
	tr := Trajectory{{0, 0}, {1, 0}, {1, 1}}
	rs := tr.Resample(5)
	if len(rs) != 5 {
		t.Fatalf("len = %d", len(rs))
	}
	if rs[0] != tr[0] || rs[4] != tr[2] {
		t.Fatalf("endpoints moved: %v", rs)
	}
	// Halfway in arc length (total 2) is the corner (1,0).
	if rs[2].Dist(Point{1, 0}) > 1e-9 {
		t.Fatalf("midpoint = %v", rs[2])
	}
	// Arc length preserved.
	if math.Abs(rs.PathLength()-2) > 1e-9 {
		t.Fatalf("resampled length = %v", rs.PathLength())
	}
	if tr.Resample(0) != nil || Trajectory(nil).Resample(5) != nil {
		t.Fatal("degenerate resample should be nil")
	}
	single := Trajectory{{2, 3}}.Resample(3)
	for _, p := range single {
		if p != (Point{2, 3}) {
			t.Fatal("single-point resample")
		}
	}
}

func TestVelocitiesAndTurning(t *testing.T) {
	tr := Trajectory{{0, 0}, {1, 0}, {1, 1}}
	v := tr.Velocities(2) // fs = 2 Hz
	if len(v) != 2 || v[0] != (Point{2, 0}) || v[1] != (Point{0, 2}) {
		t.Fatalf("Velocities = %v", v)
	}
	sp := tr.Speeds(2)
	if sp[0] != 2 || sp[1] != 2 {
		t.Fatalf("Speeds = %v", sp)
	}
	ta := tr.TurningAngles()
	if len(ta) != 1 || math.Abs(ta[0]-math.Pi/2) > 1e-12 {
		t.Fatalf("TurningAngles = %v", ta)
	}
}

func TestAlignRigidRecoversTransform(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		src := make(Trajectory, n)
		for i := range src {
			src[i] = Point{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
		}
		want := RigidTransform{
			Theta:       rng.Float64()*2*math.Pi - math.Pi,
			Translation: Point{rng.NormFloat64() * 10, rng.NormFloat64() * 10},
		}
		dst := want.ApplyTrajectory(src)
		got := AlignRigid(src, dst)
		aligned := got.ApplyTrajectory(src)
		for i := range aligned {
			if aligned[i].Dist(dst[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAlignedErrorsZeroForRigidCopies(t *testing.T) {
	src := Trajectory{{0, 0}, {1, 0}, {2, 1}, {3, 3}}
	dst := src.Rotate(1.1, Point{}).Translate(Point{5, -2})
	errs := AlignedErrors(src, dst)
	for _, e := range errs {
		if e > 1e-9 {
			t.Fatalf("residual %v after rigid alignment", e)
		}
	}
}

func TestAlignedErrorsDetectsShapeDifference(t *testing.T) {
	a := line(10, Point{0, 0}, Point{5, 0})
	b := a.Clone()
	b[5] = b[5].Add(Point{0, 1}) // bend the middle
	errs := AlignedErrors(a, b)
	max := 0.0
	for _, e := range errs {
		if e > max {
			max = e
		}
	}
	if max < 0.3 {
		t.Fatalf("shape difference undetected, max residual %v", max)
	}
}

func TestAlignRigidDegenerate(t *testing.T) {
	if rt := AlignRigid(nil, nil); rt != (RigidTransform{}) {
		t.Fatal("empty alignment should be identity")
	}
	if rt := AlignRigid(Trajectory{{1, 1}}, Trajectory{{1, 1}, {2, 2}}); rt != (RigidTransform{}) {
		t.Fatal("length mismatch should be identity")
	}
}

func TestMeanPointwiseError(t *testing.T) {
	a := line(10, Point{0, 0}, Point{9, 0})
	b := a.Translate(Point{0, 2})
	if e := MeanPointwiseError(a, b); math.Abs(e-2) > 1e-9 {
		t.Fatalf("MeanPointwiseError = %v", e)
	}
	if !math.IsInf(MeanPointwiseError(nil, b), 1) {
		t.Fatal("empty should be +Inf")
	}
	errs := PointwiseErrors(a, b, 5)
	if len(errs) != 5 {
		t.Fatalf("PointwiseErrors len = %d", len(errs))
	}
	for _, e := range errs {
		if math.Abs(e-2) > 1e-9 {
			t.Fatalf("errs = %v", errs)
		}
	}
}

func TestScaleTrajectory(t *testing.T) {
	tr := Trajectory{{1, 0}, {2, 0}}
	s := tr.Scale(2, Point{1, 0})
	if s[0] != (Point{1, 0}) || s[1] != (Point{3, 0}) {
		t.Fatalf("Scale = %v", s)
	}
}
