package geom

import (
	"math"
	"testing"
)

func TestTrajectoryDegenerateCases(t *testing.T) {
	var empty Trajectory
	if empty.PathLength() != 0 {
		t.Fatal("empty path length")
	}
	if empty.Centroid() != (Point{}) {
		t.Fatal("empty centroid")
	}
	min, max := empty.BoundingBox()
	if min != (Point{}) || max != (Point{}) {
		t.Fatal("empty bbox")
	}
	if empty.Velocities(10) != nil || len(empty.Speeds(10)) != 0 || empty.TurningAngles() != nil {
		t.Fatal("empty derivatives")
	}
	single := Trajectory{{X: 1, Y: 2}}
	if single.RangeOfMotion() != 0 {
		t.Fatal("single-point range of motion")
	}
	if single.Velocities(1) != nil {
		t.Fatal("single-point velocities")
	}
	two := Trajectory{{X: 0, Y: 0}, {X: 1, Y: 1}}
	if two.TurningAngles() != nil {
		t.Fatal("two-point turning angles")
	}
}

func TestResampleZeroLengthPath(t *testing.T) {
	// All points identical: resampling must not divide by zero.
	tr := Trajectory{{X: 2, Y: 2}, {X: 2, Y: 2}, {X: 2, Y: 2}}
	rs := tr.Resample(5)
	if len(rs) != 5 {
		t.Fatalf("len %d", len(rs))
	}
	for _, p := range rs {
		if p != (Point{X: 2, Y: 2}) {
			t.Fatal("degenerate resample moved points")
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Trajectory{{X: 1, Y: 1}}
	b := a.Clone()
	b[0] = Point{X: 9, Y: 9}
	if a[0] != (Point{X: 1, Y: 1}) {
		t.Fatal("clone aliases original")
	}
}

func TestRotateAboutCenter(t *testing.T) {
	tr := Trajectory{{X: 2, Y: 1}}
	got := tr.Rotate(math.Pi, Point{X: 1, Y: 1})
	if got[0].Dist(Point{X: 0, Y: 1}) > 1e-12 {
		t.Fatalf("rotate about center: %v", got[0])
	}
}

func TestLerpEndpoints(t *testing.T) {
	a, b := Point{X: 1, Y: 2}, Point{X: 3, Y: 4}
	if Lerp(a, b, 0) != a || Lerp(a, b, 1) != b {
		t.Fatal("lerp endpoints")
	}
	mid := Lerp(a, b, 0.5)
	if mid != (Point{X: 2, Y: 3}) {
		t.Fatalf("lerp midpoint %v", mid)
	}
}

func TestAlignedErrorsResamplesDifferentLengths(t *testing.T) {
	long := make(Trajectory, 20)
	short := make(Trajectory, 7)
	for i := range long {
		long[i] = Point{X: float64(i), Y: 0}
	}
	for i := range short {
		short[i] = Point{X: float64(i) * 19.0 / 6.0, Y: 0}
	}
	errs := AlignedErrors(long, short)
	if len(errs) != 7 {
		t.Fatalf("len %d", len(errs))
	}
	for _, e := range errs {
		if e > 1e-9 {
			t.Fatalf("same line should align perfectly, err %v", e)
		}
	}
	if AlignedErrors(nil, short) != nil {
		t.Fatal("nil input")
	}
}
