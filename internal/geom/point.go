// Package geom provides the 2-D geometry substrate: points, polar
// coordinates, trajectories, resampling, and the rigid (rotation +
// translation) alignment used to score spoofed trajectories "modulo
// translation and rotation of the entire trajectory" as in §11.1 of the
// paper.
package geom

import (
	"fmt"
	"math"
)

// Point is a 2-D point or vector in meters.
type Point struct {
	X, Y float64
}

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns s*p.
func (p Point) Scale(s float64) Point { return Point{s * p.X, s * p.Y} }

// Dot returns the dot product p·q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the scalar cross product p×q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Angle returns the direction of p in radians, atan2(Y, X).
func (p Point) Angle() float64 { return math.Atan2(p.Y, p.X) }

// Rotate returns p rotated by theta radians about the origin.
func (p Point) Rotate(theta float64) Point {
	c, s := math.Cos(theta), math.Sin(theta)
	return Point{c*p.X - s*p.Y, s*p.X + c*p.Y}
}

// String formats the point with centimeter precision.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Polar is a point expressed as range and bearing relative to some origin.
type Polar struct {
	R     float64 // range in meters
	Theta float64 // bearing in radians
}

// ToPolar converts p to polar coordinates relative to origin.
func ToPolar(p, origin Point) Polar {
	d := p.Sub(origin)
	return Polar{R: d.Norm(), Theta: d.Angle()}
}

// ToCartesian converts a polar coordinate relative to origin back to a point.
func (pl Polar) ToCartesian(origin Point) Point {
	return Point{
		X: origin.X + pl.R*math.Cos(pl.Theta),
		Y: origin.Y + pl.R*math.Sin(pl.Theta),
	}
}

// Lerp linearly interpolates between a and b with parameter t in [0, 1].
func Lerp(a, b Point, t float64) Point {
	return Point{a.X + (b.X-a.X)*t, a.Y + (b.Y-a.Y)*t}
}

// AngleDiff returns the signed smallest difference a-b wrapped to (-π, π].
func AngleDiff(a, b float64) float64 {
	d := math.Mod(a-b, 2*math.Pi)
	if d > math.Pi {
		d -= 2 * math.Pi
	} else if d <= -math.Pi {
		d += 2 * math.Pi
	}
	return d
}
