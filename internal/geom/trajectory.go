package geom

import "math"

// Trajectory is an ordered sequence of 2-D positions sampled at a uniform
// rate.
type Trajectory []Point

// Clone returns a deep copy of t.
func (t Trajectory) Clone() Trajectory {
	out := make(Trajectory, len(t))
	copy(out, t)
	return out
}

// Centroid returns the mean position, or the zero point when empty.
func (t Trajectory) Centroid() Point {
	if len(t) == 0 {
		return Point{}
	}
	var c Point
	for _, p := range t {
		c = c.Add(p)
	}
	return c.Scale(1 / float64(len(t)))
}

// Translate returns t shifted by d.
func (t Trajectory) Translate(d Point) Trajectory {
	out := make(Trajectory, len(t))
	for i, p := range t {
		out[i] = p.Add(d)
	}
	return out
}

// Rotate returns t rotated by theta about the given center.
func (t Trajectory) Rotate(theta float64, center Point) Trajectory {
	out := make(Trajectory, len(t))
	for i, p := range t {
		out[i] = p.Sub(center).Rotate(theta).Add(center)
	}
	return out
}

// Scale returns t scaled by s about the given center.
func (t Trajectory) Scale(s float64, center Point) Trajectory {
	out := make(Trajectory, len(t))
	for i, p := range t {
		out[i] = p.Sub(center).Scale(s).Add(center)
	}
	return out
}

// PathLength returns the total arc length of t.
func (t Trajectory) PathLength() float64 {
	l := 0.0
	for i := 1; i < len(t); i++ {
		l += t[i].Dist(t[i-1])
	}
	return l
}

// BoundingBox returns the axis-aligned min and max corners of t. An empty
// trajectory returns two zero points.
func (t Trajectory) BoundingBox() (min, max Point) {
	if len(t) == 0 {
		return Point{}, Point{}
	}
	min, max = t[0], t[0]
	for _, p := range t[1:] {
		min.X = math.Min(min.X, p.X)
		min.Y = math.Min(min.Y, p.Y)
		max.X = math.Max(max.X, p.X)
		max.Y = math.Max(max.Y, p.Y)
	}
	return min, max
}

// RangeOfMotion returns the diagonal of the bounding box: the paper's
// "range of motion" measure used to classify traces into five classes.
func (t Trajectory) RangeOfMotion() float64 {
	min, max := t.BoundingBox()
	return max.Sub(min).Norm()
}

// Resample returns t resampled to n points uniformly spaced in arc-length
// parameterization. n <= 0 returns nil; an empty input returns nil; a
// single-point input repeats that point.
func (t Trajectory) Resample(n int) Trajectory {
	if n <= 0 || len(t) == 0 {
		return nil
	}
	out := make(Trajectory, n)
	if len(t) == 1 {
		for i := range out {
			out[i] = t[0]
		}
		return out
	}
	// Cumulative arc lengths.
	cum := make([]float64, len(t))
	for i := 1; i < len(t); i++ {
		cum[i] = cum[i-1] + t[i].Dist(t[i-1])
	}
	total := cum[len(cum)-1]
	if total == 0 {
		for i := range out {
			out[i] = t[0]
		}
		return out
	}
	seg := 0
	for i := 0; i < n; i++ {
		target := total * float64(i) / float64(n-1)
		for seg < len(t)-2 && cum[seg+1] < target {
			seg++
		}
		segLen := cum[seg+1] - cum[seg]
		frac := 0.0
		if segLen > 0 {
			frac = (target - cum[seg]) / segLen
		}
		out[i] = Lerp(t[seg], t[seg+1], frac)
	}
	return out
}

// Velocities returns the per-step displacement vectors (length len(t)-1)
// scaled by the sample rate fs so the result is in m/s.
func (t Trajectory) Velocities(fs float64) []Point {
	if len(t) < 2 {
		return nil
	}
	out := make([]Point, len(t)-1)
	for i := 1; i < len(t); i++ {
		out[i-1] = t[i].Sub(t[i-1]).Scale(fs)
	}
	return out
}

// Speeds returns the per-step speeds in m/s at sample rate fs.
func (t Trajectory) Speeds(fs float64) []float64 {
	v := t.Velocities(fs)
	out := make([]float64, len(v))
	for i, p := range v {
		out[i] = p.Norm()
	}
	return out
}

// TurningAngles returns the signed heading change at each interior point in
// radians (length max(len(t)-2, 0)). Stationary steps contribute 0.
func (t Trajectory) TurningAngles() []float64 {
	if len(t) < 3 {
		return nil
	}
	out := make([]float64, len(t)-2)
	for i := 1; i < len(t)-1; i++ {
		a := t[i].Sub(t[i-1])
		b := t[i+1].Sub(t[i])
		if a.Norm() < 1e-12 || b.Norm() < 1e-12 {
			out[i-1] = 0
			continue
		}
		out[i-1] = AngleDiff(b.Angle(), a.Angle())
	}
	return out
}

// MeanPointwiseError returns the mean Euclidean distance between
// corresponding points of a and b, after resampling both to the length of
// the shorter one. Empty inputs return +Inf.
func MeanPointwiseError(a, b Trajectory) float64 {
	if len(a) == 0 || len(b) == 0 {
		return math.Inf(1)
	}
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	ar := a.Resample(n)
	br := b.Resample(n)
	s := 0.0
	for i := 0; i < n; i++ {
		s += ar[i].Dist(br[i])
	}
	return s / float64(n)
}

// PointwiseErrors returns per-point distances between a and b after
// resampling both to n points.
func PointwiseErrors(a, b Trajectory, n int) []float64 {
	ar := a.Resample(n)
	br := b.Resample(n)
	if len(ar) != n || len(br) != n {
		return nil
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = ar[i].Dist(br[i])
	}
	return out
}
