// Package gan implements the paper's conditional GAN for human-trajectory
// synthesis (Fig. 6, Eq. 4): a generator that maps a Gaussian noise vector
// and an embedded range-class label through a fully connected layer and a
// two-layer LSTM to a 50-point 2-D trajectory, and a discriminator that
// scores trajectories with an embedding + FC + bidirectional LSTM + FC +
// sigmoid stack.
//
// Trajectories are modeled as step sequences (per-sample displacements) and
// integrated to positions; the discriminator sees both positions and steps.
package gan

import (
	"math/rand"

	"rfprotect/internal/geom"
	"rfprotect/internal/motion"
	"rfprotect/internal/nn"
)

// Config sets the cGAN architecture and training hyperparameters.
// The paper trains with hidden size 512, dropout 0.5, Adam at 1e-4 (G) and
// 2e-4 (D), batch 128, on a GPU for 5 hours; DefaultConfig shrinks the
// hidden state so laptop-scale CPU training converges in seconds-to-minutes
// while keeping the architecture identical.
type Config struct {
	LatentDim  int     // dimension of the Gaussian noise z
	EmbedDim   int     // label embedding size
	Hidden     int     // LSTM hidden size (paper: 512)
	SeqLen     int     // trajectory length (50)
	NumClasses int     // range classes (5)
	Dropout    float64 // LSTM dropout (paper: 0.5)
	LRG        float64 // generator learning rate (paper: 1e-4)
	LRD        float64 // discriminator learning rate (paper: 2e-4)
	Batch      int     // minibatch size (paper: 128)
	ClipNorm   float64 // gradient clipping
	// FeatureMatch weights the moment-matching auxiliary generator loss
	// (featurematch.go); 0 disables it.
	FeatureMatch float64
	Seed         int64
}

// DefaultConfig returns the laptop-scale configuration.
func DefaultConfig() Config {
	return Config{
		LatentDim:    16,
		EmbedDim:     8,
		Hidden:       32,
		SeqLen:       motion.TraceLen,
		NumClasses:   motion.NumClasses,
		Dropout:      0.2,
		LRG:          1e-3,
		LRD:          2e-3,
		Batch:        32,
		ClipNorm:     5,
		FeatureMatch: 150,
		Seed:         1,
	}
}

// PaperConfig returns the paper's full-size hyperparameters (§9.2). CPU
// training at this size is slow; it exists for fidelity runs.
func PaperConfig() Config {
	c := DefaultConfig()
	c.Hidden = 512
	c.Dropout = 0.5
	c.LRG = 1e-4
	c.LRD = 2e-4
	c.Batch = 128
	return c
}

// Generator is G(z|n) of Fig. 6.
type Generator struct {
	cfg   Config
	Emb   *nn.Embedding
	Seed  *nn.Linear // (latent+embed) -> hidden, feeds the LSTM each step
	LSTM1 *nn.LSTM
	Drop1 *nn.Dropout
	LSTM2 *nn.LSTM
	Drop2 *nn.Dropout
	Out   *nn.Linear // hidden -> 2, squashed to a bounded displacement
	tanh  *nn.TanhLayer
}

// maxStep bounds the per-sample displacement to 0.5 m (2.5 m/s at the 5 Hz
// trace rate) via a tanh output head — an architectural prior that keeps
// every generated trajectory inside human-plausible speeds, which both
// stabilizes adversarial training and mirrors the physical reality that the
// corpus cannot contain faster steps.
const maxStep = 0.5

// NewGenerator builds the generator.
func NewGenerator(cfg Config, rng *rand.Rand) *Generator {
	return &Generator{
		cfg:   cfg,
		Emb:   nn.NewEmbedding(cfg.NumClasses, cfg.EmbedDim, rng),
		Seed:  nn.NewLinear(cfg.LatentDim+cfg.EmbedDim, cfg.Hidden, rng),
		LSTM1: nn.NewLSTM(cfg.Hidden, cfg.Hidden, rng),
		Drop1: nn.NewDropout(cfg.Dropout, rng),
		LSTM2: nn.NewLSTM(cfg.Hidden, cfg.Hidden, rng),
		Drop2: nn.NewDropout(cfg.Dropout, rng),
		Out:   nn.NewLinear(cfg.Hidden, 2, rng),
		tanh:  &nn.TanhLayer{},
	}
}

// Params implements nn.Module.
func (g *Generator) Params() []*nn.Param {
	return nn.CollectParams(g.Emb, g.Seed, g.LSTM1, g.Drop1Module(), g.LSTM2, g.Drop2Module(), g.Out)
}

// Drop1Module / Drop2Module adapt the dropout layers (which hold no params)
// to the Module interface for completeness.
func (g *Generator) Drop1Module() nn.Module { return paramless{} }
func (g *Generator) Drop2Module() nn.Module { return paramless{} }

type paramless struct{}

func (paramless) Params() []*nn.Param { return nil }

// reset clears all forward caches.
func (g *Generator) reset() {
	g.Emb.Reset()
	g.Seed.Reset()
	g.LSTM1.Reset()
	g.Drop1.Reset()
	g.LSTM2.Reset()
	g.Drop2.Reset()
	g.Out.Reset()
	g.tanh.Reset()
}

// setTrain toggles dropout.
func (g *Generator) setTrain(train bool) {
	g.Drop1.Train = train
	g.Drop2.Train = train
}

// forward produces per-step displacement matrices (SeqLen of batch×2).
func (g *Generator) forward(z *nn.Mat, labels []int) []*nn.Mat {
	emb := g.Emb.Forward(labels)
	seed := g.Seed.Forward(nn.ConcatCols(z, emb))
	// The seed is the LSTM input at every timestep.
	xs := make([]*nn.Mat, g.cfg.SeqLen)
	for t := range xs {
		xs[t] = seed
	}
	h1 := g.LSTM1.Forward(xs)
	d1 := make([]*nn.Mat, len(h1))
	for t, h := range h1 {
		d1[t] = g.Drop1.Forward(h)
	}
	h2 := g.LSTM2.Forward(d1)
	steps := make([]*nn.Mat, len(h2))
	for t, h := range h2 {
		raw := g.tanh.Forward(g.Out.Forward(g.Drop2.Forward(h)))
		steps[t] = raw.Scale(maxStep)
	}
	return steps
}

// backward propagates per-step displacement gradients dsteps through the
// generator, accumulating parameter gradients.
func (g *Generator) backward(dsteps []*nn.Mat) {
	n := len(dsteps)
	dh2 := make([]*nn.Mat, n)
	for t := n - 1; t >= 0; t-- {
		dd := g.Out.Backward(g.tanh.Backward(dsteps[t].Scale(maxStep)))
		dh2[t] = g.Drop2.Backward(dd)
	}
	dd1 := g.LSTM2.Backward(dh2)
	dh1 := make([]*nn.Mat, n)
	for t := n - 1; t >= 0; t-- {
		dh1[t] = g.Drop1.Backward(dd1[t])
	}
	dxs := g.LSTM1.Backward(dh1)
	// The seed fed every timestep: gradients sum.
	dSeed := dxs[0].Clone()
	for t := 1; t < n; t++ {
		nn.AddInto(dSeed, dxs[t])
	}
	dcat := g.Seed.Backward(dSeed)
	_, dEmb := nn.SplitCols(dcat, g.cfg.LatentDim)
	g.Emb.Backward(dEmb)
}

// Generate samples count trajectories of the given class label (inference
// mode, dropout off). Trajectories start at the origin.
func (g *Generator) Generate(count int, label int, rng *rand.Rand) []geom.Trajectory {
	g.setTrain(false)
	defer g.reset()
	z := nn.RandMat(count, g.cfg.LatentDim, 1, rng)
	labels := make([]int, count)
	for i := range labels {
		labels[i] = label
	}
	steps := g.forward(z, labels)
	return stepsToTrajectories(steps)
}

// stepsToTrajectories integrates per-step displacements into positions.
func stepsToTrajectories(steps []*nn.Mat) []geom.Trajectory {
	if len(steps) == 0 {
		return nil
	}
	batch := steps[0].Rows
	out := make([]geom.Trajectory, batch)
	for b := 0; b < batch; b++ {
		tr := make(geom.Trajectory, len(steps))
		var p geom.Point
		for t, s := range steps {
			p = p.Add(geom.Point{X: s.Data[b*2], Y: s.Data[b*2+1]})
			tr[t] = p
		}
		out[b] = tr
	}
	return out
}

// trajectoriesToSteps converts origin-anchored trajectories to per-step
// displacement matrices (first step = first point).
func trajectoriesToSteps(trs []geom.Trajectory, seqLen int) []*nn.Mat {
	steps := make([]*nn.Mat, seqLen)
	for t := range steps {
		steps[t] = nn.NewMat(len(trs), 2)
	}
	for b, tr := range trs {
		r := tr
		if len(tr) != seqLen {
			r = tr.Resample(seqLen)
		}
		var prev geom.Point
		for t := 0; t < seqLen; t++ {
			d := r[t].Sub(prev)
			prev = r[t]
			steps[t].Data[b*2] = d.X
			steps[t].Data[b*2+1] = d.Y
		}
	}
	return steps
}

// Discriminator is D(x|n) of Fig. 6.
type Discriminator struct {
	cfg  Config
	Emb  *nn.Embedding
	In   *nn.Linear // (4 + embed) -> hidden
	Bi   *nn.BiLSTM
	Drop *nn.Dropout
	Head *nn.Linear // 2*hidden -> 1 (logit; sigmoid fused in the loss)
}

// NewDiscriminator builds the discriminator.
func NewDiscriminator(cfg Config, rng *rand.Rand) *Discriminator {
	return &Discriminator{
		cfg:  cfg,
		Emb:  nn.NewEmbedding(cfg.NumClasses, cfg.EmbedDim, rng),
		In:   nn.NewLinear(4+cfg.EmbedDim, cfg.Hidden, rng),
		Bi:   nn.NewBiLSTM(cfg.Hidden, cfg.Hidden, rng),
		Drop: nn.NewDropout(cfg.Dropout, rng),
		Head: nn.NewLinear(2*cfg.Hidden, 1, rng),
	}
}

// Params implements nn.Module.
func (d *Discriminator) Params() []*nn.Param {
	return nn.CollectParams(d.Emb, d.In, d.Bi, d.Head)
}

func (d *Discriminator) reset() {
	d.Emb.Reset()
	d.In.Reset()
	d.Bi.Reset()
	d.Drop.Reset()
	d.Head.Reset()
}

func (d *Discriminator) setTrain(train bool) { d.Drop.Train = train }

// forward scores a batch of step sequences, returning logits (batch×1).
// Each timestep sees [position, step, label embedding]; the BiLSTM outputs
// are mean-pooled before the head.
func (d *Discriminator) forward(steps []*nn.Mat, labels []int) *nn.Mat {
	n := len(steps)
	batch := steps[0].Rows
	// Integrate positions alongside steps.
	pos := make([]*nn.Mat, n)
	run := nn.NewMat(batch, 2)
	for t, s := range steps {
		nn.AddInto(run, s)
		pos[t] = run.Clone()
	}
	xs := make([]*nn.Mat, n)
	for t := 0; t < n; t++ {
		emb := d.Emb.Forward(labels)
		xs[t] = d.In.Forward(nn.ConcatCols(nn.ConcatCols(pos[t], steps[t]), emb))
	}
	hs := d.Bi.Forward(xs)
	pooled := nn.NewMat(batch, 2*d.cfg.Hidden)
	for _, h := range hs {
		nn.AddInto(pooled, h)
	}
	for i := range pooled.Data {
		pooled.Data[i] /= float64(n)
	}
	return d.Head.Forward(d.Drop.Forward(pooled))
}

// backward propagates the logit gradient, returning per-step input
// gradients (for generator training); pass wantInputGrad=false to skip
// their computation (discriminator update).
func (d *Discriminator) backward(dlogits *nn.Mat, n int, wantInputGrad bool) []*nn.Mat {
	dpool := d.Drop.Backward(d.Head.Backward(dlogits))
	dhs := make([]*nn.Mat, n)
	for t := 0; t < n; t++ {
		g := dpool.Clone()
		for i := range g.Data {
			g.Data[i] /= float64(n)
		}
		dhs[t] = g
	}
	dxs := d.Bi.Backward(dhs)
	dstepsTotal := make([]*nn.Mat, n)
	batch := dlogits.Rows
	// dpos accumulated from later timesteps (positions are cumulative sums).
	dposRun := nn.NewMat(batch, 2)
	for t := n - 1; t >= 0; t-- {
		dcat := d.In.Backward(dxs[t])
		posStep, dEmb := nn.SplitCols(dcat, 4)
		d.Emb.Backward(dEmb)
		if wantInputGrad {
			dpos, dstep := nn.SplitCols(posStep, 2)
			// position t depends on all steps <= t: accumulate.
			nn.AddInto(dposRun, dpos)
			total := dstep.Clone()
			nn.AddInto(total, dposRun)
			dstepsTotal[t] = total
		}
	}
	if !wantInputGrad {
		return nil
	}
	return dstepsTotal
}
