package gan

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"rfprotect/internal/dsp"
	"rfprotect/internal/geom"
	"rfprotect/internal/motion"
	"rfprotect/internal/nn"
)

func tinyConfig() Config {
	c := DefaultConfig()
	c.Hidden = 16
	c.SeqLen = 12
	c.Batch = 8
	return c
}

func TestGeneratorOutputShape(t *testing.T) {
	cfg := tinyConfig()
	rng := rand.New(rand.NewSource(1))
	g := NewGenerator(cfg, rng)
	trs := g.Generate(5, 2, rng)
	if len(trs) != 5 {
		t.Fatalf("got %d trajectories", len(trs))
	}
	for _, tr := range trs {
		if len(tr) != cfg.SeqLen {
			t.Fatalf("trajectory length %d", len(tr))
		}
	}
}

func TestGeneratorLabelConditioning(t *testing.T) {
	cfg := tinyConfig()
	rng := rand.New(rand.NewSource(2))
	g := NewGenerator(cfg, rng)
	// Same z, different labels must give different outputs (no collapse of
	// the conditioning path at initialization).
	z := nn.RandMat(1, cfg.LatentDim, 1, rng)
	g.setTrain(false)
	g.reset()
	a := g.forward(z.Clone(), []int{0})
	g.reset()
	b := g.forward(z.Clone(), []int{4})
	diff := 0.0
	for t2 := range a {
		for i := range a[t2].Data {
			diff += math.Abs(a[t2].Data[i] - b[t2].Data[i])
		}
	}
	if diff < 1e-9 {
		t.Fatal("labels do not influence the generator")
	}
}

func TestStepsTrajectoriesRoundTrip(t *testing.T) {
	trs := []geom.Trajectory{
		{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 1}},
		{{X: 0, Y: 0}, {X: -1, Y: 2}, {X: -2, Y: 0}, {X: 0, Y: 0}},
	}
	steps := trajectoriesToSteps(trs, 4)
	back := stepsToTrajectories(steps)
	for i := range trs {
		for j := range trs[i] {
			if back[i][j].Dist(trs[i][j]) > 1e-9 {
				t.Fatalf("roundtrip mismatch at %d,%d: %v vs %v", i, j, back[i][j], trs[i][j])
			}
		}
	}
}

func TestDiscriminatorShape(t *testing.T) {
	cfg := tinyConfig()
	rng := rand.New(rand.NewSource(3))
	d := NewDiscriminator(cfg, rng)
	steps := make([]*nn.Mat, cfg.SeqLen)
	for i := range steps {
		steps[i] = nn.RandMat(6, 2, 0.1, rng)
	}
	d.setTrain(false)
	logits := d.forward(steps, []int{0, 1, 2, 3, 4, 0})
	if logits.Rows != 6 || logits.Cols != 1 {
		t.Fatalf("logits shape %dx%d", logits.Rows, logits.Cols)
	}
}

// TestGANGradientsFlowEndToEnd numerically checks one generator parameter's
// gradient through the full G -> D -> BCE pipeline.
func TestGANGradientsFlowEndToEnd(t *testing.T) {
	cfg := tinyConfig()
	cfg.Dropout = 0 // determinism for the numeric check
	rng := rand.New(rand.NewSource(4))
	g := NewGenerator(cfg, rng)
	d := NewDiscriminator(cfg, rng)
	z := nn.RandMat(3, cfg.LatentDim, 1, rng)
	labels := []int{0, 1, 2}
	targets := []float64{1, 1, 1}

	loss := func() float64 {
		g.reset()
		d.reset()
		g.setTrain(false)
		d.setTrain(false)
		steps := g.forward(z, labels)
		logits := d.forward(steps, labels)
		v, _ := nn.BCEWithLogits(logits, targets)
		return v
	}
	nn.ZeroGrads(g, d)
	g.reset()
	d.reset()
	g.setTrain(false)
	d.setTrain(false)
	steps := g.forward(z, labels)
	logits := d.forward(steps, labels)
	_, dl := nn.BCEWithLogits(logits, targets)
	dsteps := d.backward(dl, cfg.SeqLen, true)
	g.backward(dsteps)

	const eps = 1e-6
	for _, p := range []*nn.Param{g.Seed.W, g.Out.W, g.LSTM1.Wx} {
		for _, idx := range []int{0, len(p.Value.Data) / 2} {
			orig := p.Value.Data[idx]
			p.Value.Data[idx] = orig + eps
			lp := loss()
			p.Value.Data[idx] = orig - eps
			lm := loss()
			p.Value.Data[idx] = orig
			numeric := (lp - lm) / (2 * eps)
			analytic := p.Grad.Data[idx]
			scale := math.Max(math.Max(math.Abs(numeric), math.Abs(analytic)), 1e-5)
			if math.Abs(numeric-analytic)/scale > 1e-3 {
				t.Fatalf("%s grad[%d]: analytic %v numeric %v", p.Name, idx, analytic, numeric)
			}
		}
	}
}

func TestTrainingImprovesRealism(t *testing.T) {
	if testing.Short() {
		t.Skip("GAN training loop")
	}
	// After a short training run the generator's step-length statistics
	// should move toward the real data's, and the discriminator should not
	// trivially separate real from fake.
	ds := motion.Generate(400, 11)
	cfg := DefaultConfig()
	cfg.Hidden = 24
	cfg.Batch = 32
	cfg.Seed = 7
	tr := NewTrainer(cfg, ds)

	realSpeed := corpusMedianStep(ds.Traces)
	before := corpusMedianStep(tr.Sample(64))
	tr.Train(60, 0, nil)
	after := corpusMedianStep(tr.Sample(64))

	errBefore := math.Abs(before - realSpeed)
	errAfter := math.Abs(after - realSpeed)
	if errAfter > errBefore && errAfter > 0.5*realSpeed {
		t.Fatalf("step stats diverged: real %v, before %v, after %v", realSpeed, before, after)
	}
	if len(tr.History) != 60 {
		t.Fatalf("history length %d", len(tr.History))
	}
	last := tr.History[len(tr.History)-1]
	if last.LossD <= 0 || last.LossG <= 0 {
		t.Fatalf("degenerate losses: %+v", last)
	}
}

func corpusMedianStep(trs []geom.Trajectory) float64 {
	var steps []float64
	for _, tr := range trs {
		for i := 1; i < len(tr); i++ {
			steps = append(steps, tr[i].Dist(tr[i-1]))
		}
	}
	return dsp.Median(steps)
}

func TestTrainerSaveLoad(t *testing.T) {
	ds := motion.Generate(50, 12)
	cfg := tinyConfig()
	tr := NewTrainer(cfg, ds)
	tr.Train(2, 0, nil)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	tr2 := NewTrainer(cfg, ds)
	if err := tr2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	// Identical weights produce identical samples under the same rng.
	rngA := rand.New(rand.NewSource(5))
	rngB := rand.New(rand.NewSource(5))
	a := tr.G.Generate(3, 1, rngA)
	b := tr2.G.Generate(3, 1, rngB)
	for i := range a {
		for j := range a[i] {
			if a[i][j].Dist(b[i][j]) > 1e-12 {
				t.Fatal("loaded model differs")
			}
		}
	}
}

func TestSampleCount(t *testing.T) {
	ds := motion.Generate(50, 13)
	tr := NewTrainer(tinyConfig(), ds)
	trs := tr.Sample(70)
	if len(trs) != 70 {
		t.Fatalf("sampled %d", len(trs))
	}
}
