package gan

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"math/rand"

	"rfprotect/internal/geom"
	"rfprotect/internal/metrics"
	"rfprotect/internal/motion"
	"rfprotect/internal/nn"
)

// Trainer runs the adversarial game of Eq. 4 between a Generator and a
// Discriminator over a motion.Dataset.
type Trainer struct {
	Cfg Config
	G   *Generator
	D   *Discriminator

	optG *nn.Adam
	optD *nn.Adam
	rng  *rand.Rand
	ds   motion.Dataset

	// History records one TrainStats per training step.
	History []TrainStats

	// EvalEvery controls best-checkpoint selection: every EvalEvery steps
	// Train scores the generator against a held-out real sample and keeps
	// the best weights (GAN losses oscillate; sampling from the best
	// checkpoint is standard practice). 0 disables selection.
	EvalEvery int

	valReal   []geom.Trajectory
	bestScore float64
	bestG     []byte
}

// TrainStats summarizes one training step.
type TrainStats struct {
	Step      int
	LossD     float64
	LossG     float64
	RealScore float64 // mean D(real) probability
	FakeScore float64 // mean D(fake) probability
}

// NewTrainer builds a trainer with fresh networks.
func NewTrainer(cfg Config, ds motion.Dataset) *Trainer {
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Trainer{
		Cfg:       cfg,
		G:         NewGenerator(cfg, rng),
		D:         NewDiscriminator(cfg, rng),
		optG:      nn.NewAdam(cfg.LRG),
		optD:      nn.NewAdam(cfg.LRD),
		rng:       rng,
		ds:        ds,
		EvalEvery: 10,
		bestScore: math.Inf(1),
	}
	// Hold out a slice of real traces for checkpoint scoring.
	n := len(ds.Traces)
	if n > 0 {
		k := n / 4
		if k > 128 {
			k = 128
		}
		if k < 1 {
			k = 1
		}
		t.valReal = ds.Traces[:k]
	}
	return t
}

// validationScore measures how far generated trajectories sit from the
// held-out real sample in FID feature space.
func (t *Trainer) validationScore() float64 {
	if len(t.valReal) < 2 {
		return 0
	}
	samples := t.Sample(64)
	return metrics.TrajectoryFID(samples, t.valReal)
}

// checkpointIfBest snapshots the generator when the validation score
// improves.
func (t *Trainer) checkpointIfBest() {
	score := t.validationScore()
	if score < t.bestScore {
		t.bestScore = score
		var buf bytes.Buffer
		if err := nn.Save(&buf, t.G); err == nil {
			t.bestG = buf.Bytes()
		}
	}
}

// UseBestCheckpoint restores the best generator weights seen during
// training (no-op if none were recorded).
func (t *Trainer) UseBestCheckpoint() {
	if t.bestG == nil {
		return
	}
	_ = nn.Load(bytes.NewReader(t.bestG), t.G)
}

// BestScore returns the best validation FID observed (Inf before any
// evaluation).
func (t *Trainer) BestScore() float64 { return t.bestScore }

// sampleReal draws a random labeled minibatch from the dataset as step
// sequences.
func (t *Trainer) sampleReal(batch int) ([]*nn.Mat, []int) {
	trs := make([]geom.Trajectory, batch)
	labels := make([]int, batch)
	for i := 0; i < batch; i++ {
		j := t.rng.Intn(len(t.ds.Traces))
		trs[i] = t.ds.Traces[j]
		labels[i] = t.ds.Labels[j]
	}
	return trajectoriesToSteps(trs, t.Cfg.SeqLen), labels
}

// sampleLabels draws labels matching the dataset's class distribution.
func (t *Trainer) sampleLabels(batch int) []int {
	out := make([]int, batch)
	for i := range out {
		out[i] = t.ds.Labels[t.rng.Intn(len(t.ds.Labels))]
	}
	return out
}

// Step runs one discriminator update followed by one generator update and
// returns the step's statistics.
func (t *Trainer) Step() TrainStats {
	cfg := t.Cfg
	batch := cfg.Batch
	stats := TrainStats{Step: len(t.History)}

	// ---- Discriminator update: real -> 1 (with light smoothing), fake -> 0.
	t.D.setTrain(true)
	t.G.setTrain(false)
	realSteps, realLabels := t.sampleReal(batch)
	nn.ZeroGrads(t.D)
	t.D.reset()
	logitsR := t.D.forward(realSteps, realLabels)
	targetsR := make([]float64, batch)
	for i := range targetsR {
		targetsR[i] = 0.9 // one-sided label smoothing stabilizes the game
	}
	lossR, dR := nn.BCEWithLogits(logitsR, targetsR)
	t.D.backward(dR, cfg.SeqLen, false)
	for _, z := range logitsR.Data {
		stats.RealScore += nn.Sigmoid(z) / float64(batch)
	}

	fakeLabels := t.sampleLabels(batch)
	t.G.reset()
	z := nn.RandMat(batch, cfg.LatentDim, 1, t.rng)
	fakeSteps := t.G.forward(z, fakeLabels)
	t.D.reset()
	logitsF := t.D.forward(fakeSteps, fakeLabels)
	targetsF := make([]float64, batch)
	lossF, dF := nn.BCEWithLogits(logitsF, targetsF)
	t.D.backward(dF, cfg.SeqLen, false)
	for _, lz := range logitsF.Data {
		stats.FakeScore += nn.Sigmoid(lz) / float64(batch)
	}
	nn.ClipGradNorm(t.D.Params(), cfg.ClipNorm)
	t.optD.Step(t.D.Params())
	stats.LossD = lossR + lossF

	// ---- Generator update: make D call fakes real (non-saturating loss).
	t.G.setTrain(true)
	t.D.setTrain(false)
	nn.ZeroGrads(t.G, t.D)
	genLabels := t.sampleLabels(batch)
	t.G.reset()
	z2 := nn.RandMat(batch, cfg.LatentDim, 1, t.rng)
	genSteps := t.G.forward(z2, genLabels)
	t.D.reset()
	logitsG := t.D.forward(genSteps, genLabels)
	targetsG := make([]float64, batch)
	for i := range targetsG {
		targetsG[i] = 1
	}
	lossG, dG := nn.BCEWithLogits(logitsG, targetsG)
	dsteps := t.D.backward(dG, cfg.SeqLen, true)
	if cfg.FeatureMatch > 0 {
		mmReal, _ := t.sampleReal(batch)
		mmLoss, mmGrads := momentMatchLoss(genSteps, mmReal)
		lossG += cfg.FeatureMatch * mmLoss
		for ti := range dsteps {
			for i := range dsteps[ti].Data {
				dsteps[ti].Data[i] += cfg.FeatureMatch * mmGrads[ti].Data[i]
			}
		}
	}
	t.G.backward(dsteps)
	nn.ClipGradNorm(t.G.Params(), cfg.ClipNorm)
	t.optG.Step(t.G.Params())
	stats.LossG = lossG

	t.History = append(t.History, stats)
	return stats
}

// Train runs the given number of steps, optionally logging every logEvery
// steps to w (nil disables logging).
func (t *Trainer) Train(steps int, logEvery int, w io.Writer) {
	for i := 0; i < steps; i++ {
		s := t.Step()
		if t.EvalEvery > 0 && (i%t.EvalEvery == t.EvalEvery-1 || i == steps-1) {
			t.checkpointIfBest()
		}
		if w != nil && logEvery > 0 && (i%logEvery == 0 || i == steps-1) {
			fmt.Fprintf(w, "step %4d  lossD %.4f  lossG %.4f  D(real) %.3f  D(fake) %.3f\n",
				s.Step, s.LossD, s.LossG, s.RealScore, s.FakeScore)
		}
	}
	t.UseBestCheckpoint()
}

// Sample draws count trajectories from the trained generator with labels
// drawn from the dataset's class distribution.
func (t *Trainer) Sample(count int) []geom.Trajectory {
	out := make([]geom.Trajectory, 0, count)
	for len(out) < count {
		label := t.ds.Labels[t.rng.Intn(len(t.ds.Labels))]
		n := count - len(out)
		if n > 32 {
			n = 32
		}
		out = append(out, t.G.Generate(n, label, t.rng)...)
	}
	return out
}

// Save writes both networks' weights to w.
func (t *Trainer) Save(w io.Writer) error { return nn.Save(w, t.G, t.D) }

// Load restores both networks' weights from r.
func (t *Trainer) Load(r io.Reader) error { return nn.Load(r, t.G, t.D) }
