package gan

import "rfprotect/internal/nn"

// Feature matching (Salimans et al., "Improved Techniques for Training
// GANs"): alongside the adversarial objective, the generator matches
// low-order statistics of the real step distribution. With small models and
// CPU-scale training this is what keeps the generated trajectory
// *distribution* (not just individual samples) aligned with the corpus —
// the property Fig. 12's FID measures and §6 argues is required to survive
// a distribution-learning eavesdropper.
//
// Matched statistics over all (batch, time) step samples:
//   - per-axis mean and variance of the step vector,
//   - mean lag-1 step correlation (smoothness / velocity autocorrelation).

// stepMoments computes per-axis means, variances and the mean lag-1 dot
// product of a step sequence.
func stepMoments(steps []*nn.Mat) (mean, variance [2]float64, corr float64) {
	if len(steps) == 0 || steps[0].Rows == 0 {
		return mean, variance, 0
	}
	batch := steps[0].Rows
	n := float64(len(steps) * batch)
	for _, s := range steps {
		for b := 0; b < batch; b++ {
			mean[0] += s.Data[b*2]
			mean[1] += s.Data[b*2+1]
		}
	}
	mean[0] /= n
	mean[1] /= n
	for _, s := range steps {
		for b := 0; b < batch; b++ {
			dx := s.Data[b*2] - mean[0]
			dy := s.Data[b*2+1] - mean[1]
			variance[0] += dx * dx
			variance[1] += dy * dy
		}
	}
	variance[0] /= n
	variance[1] /= n
	nc := float64((len(steps) - 1) * batch)
	if nc > 0 {
		for t := 1; t < len(steps); t++ {
			prev, cur := steps[t-1], steps[t]
			for b := 0; b < batch; b++ {
				corr += cur.Data[b*2]*prev.Data[b*2] + cur.Data[b*2+1]*prev.Data[b*2+1]
			}
		}
		corr /= nc
	}
	return mean, variance, corr
}

// momentMatchLoss returns the squared-difference loss between fake and real
// step moments and the gradient of that loss with respect to every fake
// step entry.
func momentMatchLoss(fake []*nn.Mat, realSteps []*nn.Mat) (loss float64, grads []*nn.Mat) {
	mf, vf, cf := stepMoments(fake)
	mr, vr, cr := stepMoments(realSteps)
	batch := fake[0].Rows
	n := float64(len(fake) * batch)
	nc := float64((len(fake) - 1) * batch)

	var dMean, dVar [2]float64
	for d := 0; d < 2; d++ {
		dm := mf[d] - mr[d]
		dv := vf[d] - vr[d]
		loss += dm*dm + dv*dv
		dMean[d] = 2 * dm
		dVar[d] = 2 * dv
	}
	dc := cf - cr
	loss += dc * dc
	dCorr := 2 * dc

	grads = make([]*nn.Mat, len(fake))
	for t := range fake {
		grads[t] = nn.NewMat(batch, 2)
	}
	for t, s := range fake {
		for b := 0; b < batch; b++ {
			for d := 0; d < 2; d++ {
				v := s.Data[b*2+d]
				// d mean / d v = 1/n ; d var / d v = 2(v - mean)/n
				// (ignoring the mean's dependence inside var, the standard
				// stop-gradient simplification for batch statistics).
				g := dMean[d]/n + dVar[d]*2*(v-mf[d])/n
				// Correlation term: v appears in products with t-1 and t+1.
				if nc > 0 {
					if t > 0 {
						g += dCorr * fake[t-1].Data[b*2+d] / nc
					}
					if t < len(fake)-1 {
						g += dCorr * fake[t+1].Data[b*2+d] / nc
					}
				}
				grads[t].Data[b*2+d] = g
			}
		}
	}
	return loss, grads
}
