package nn

import "math"

// BCEWithLogits computes the mean binary cross-entropy between logits and
// 0/1 targets, together with the gradient with respect to the logits. The
// sigmoid is fused for numerical stability (the paper's discriminator ends
// in FC → Sigmoid; training against Eq. 4 is exactly BCE on its score).
func BCEWithLogits(logits *Mat, targets []float64) (loss float64, dlogits *Mat) {
	n := logits.Rows * logits.Cols
	if n != len(targets) {
		panic("nn: BCEWithLogits size mismatch")
	}
	dlogits = NewMat(logits.Rows, logits.Cols)
	inv := 1 / float64(n)
	for i, z := range logits.Data {
		t := targets[i]
		// loss = max(z,0) - z*t + log(1+exp(-|z|)), the stable form.
		loss += (math.Max(z, 0) - z*t + math.Log1p(math.Exp(-math.Abs(z)))) * inv
		dlogits.Data[i] = (Sigmoid(z) - t) * inv
	}
	return loss, dlogits
}

// MSE computes the mean squared error between pred and target matrices and
// the gradient with respect to pred.
func MSE(pred, target *Mat) (loss float64, dpred *Mat) {
	if pred.Rows != target.Rows || pred.Cols != target.Cols {
		panic("nn: MSE shape mismatch")
	}
	dpred = NewMat(pred.Rows, pred.Cols)
	inv := 1 / float64(len(pred.Data))
	for i := range pred.Data {
		d := pred.Data[i] - target.Data[i]
		loss += d * d * inv
		dpred.Data[i] = 2 * d * inv
	}
	return loss, dpred
}
