package nn

import (
	"math"
	"math/rand"
)

// Embedding maps integer class labels to dense vectors — the label
// conditioning path of the cGAN (Fig. 6).
type Embedding struct {
	W *Param // (numClasses, dim)

	stack [][]int
}

// NewEmbedding returns an embedding table for numClasses labels of the
// given dimension.
func NewEmbedding(numClasses, dim int, rng *rand.Rand) *Embedding {
	return &Embedding{W: newParam("embedding.W", RandMat(numClasses, dim, 0.3, rng))}
}

// Forward looks up one row per label, returning (len(labels), dim).
func (e *Embedding) Forward(labels []int) *Mat {
	dim := e.W.Value.Cols
	out := NewMat(len(labels), dim)
	for i, l := range labels {
		if l < 0 || l >= e.W.Value.Rows {
			panic("nn: embedding label out of range")
		}
		copy(out.Data[i*dim:(i+1)*dim], e.W.Value.Data[l*dim:(l+1)*dim])
	}
	e.stack = append(e.stack, labels)
	return out
}

// Backward scatters the upstream gradient into the table rows.
func (e *Embedding) Backward(dy *Mat) {
	if len(e.stack) == 0 {
		panic("nn: Embedding.Backward without matching Forward")
	}
	labels := e.stack[len(e.stack)-1]
	e.stack = e.stack[:len(e.stack)-1]
	dim := e.W.Value.Cols
	for i, l := range labels {
		for j := 0; j < dim; j++ {
			e.W.Grad.Data[l*dim+j] += dy.Data[i*dim+j]
		}
	}
}

// Reset discards cached lookups.
func (e *Embedding) Reset() { e.stack = e.stack[:0] }

// Params implements Module.
func (e *Embedding) Params() []*Param { return []*Param{e.W} }

// Sigmoid returns 1/(1+e^-x).
func Sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// TanhLayer applies tanh element-wise with a backward stack.
type TanhLayer struct{ stack []*Mat }

// Forward applies tanh and caches the output.
func (t *TanhLayer) Forward(x *Mat) *Mat {
	y := Apply(x, math.Tanh)
	t.stack = append(t.stack, y)
	return y
}

// Backward returns dy ⊙ (1 - y²).
func (t *TanhLayer) Backward(dy *Mat) *Mat {
	if len(t.stack) == 0 {
		panic("nn: Tanh.Backward without matching Forward")
	}
	y := t.stack[len(t.stack)-1]
	t.stack = t.stack[:len(t.stack)-1]
	dx := dy.Clone()
	for i, v := range y.Data {
		dx.Data[i] *= 1 - v*v
	}
	return dx
}

// Reset discards cached activations.
func (t *TanhLayer) Reset() { t.stack = t.stack[:0] }

// Dropout zeroes activations with probability P during training, scaling
// survivors by 1/(1-P) (inverted dropout). With Train=false it is the
// identity. The paper uses P = 0.5 inside both LSTMs.
type Dropout struct {
	P     float64
	Train bool
	rng   *rand.Rand
	stack []*Mat // masks
}

// NewDropout returns a dropout layer in training mode.
func NewDropout(p float64, rng *rand.Rand) *Dropout {
	return &Dropout{P: p, Train: true, rng: rng}
}

// Forward applies the mask (training) or passes through (inference).
func (d *Dropout) Forward(x *Mat) *Mat {
	if !d.Train || d.P <= 0 {
		d.stack = append(d.stack, nil)
		return x
	}
	keep := 1 - d.P
	mask := NewMat(x.Rows, x.Cols)
	out := x.Clone()
	for i := range mask.Data {
		if d.rng.Float64() < keep {
			mask.Data[i] = 1 / keep
		}
		out.Data[i] *= mask.Data[i]
	}
	d.stack = append(d.stack, mask)
	return out
}

// Backward applies the same mask to the upstream gradient.
func (d *Dropout) Backward(dy *Mat) *Mat {
	if len(d.stack) == 0 {
		panic("nn: Dropout.Backward without matching Forward")
	}
	mask := d.stack[len(d.stack)-1]
	d.stack = d.stack[:len(d.stack)-1]
	if mask == nil {
		return dy
	}
	dx := dy.Clone()
	HadamardInto(dx, mask)
	return dx
}

// Reset discards cached masks.
func (d *Dropout) Reset() { d.stack = d.stack[:0] }
