package nn

import (
	"math"
	"math/rand"
)

// LSTM is a single-layer long short-term memory network (Hochreiter &
// Schmidhuber '97) processing a sequence of (batch, in) matrices into a
// sequence of (batch, hidden) states, with full backpropagation through
// time. Gate layout in the fused weight matrices is [i | f | g | o].
type LSTM struct {
	In, Hidden int
	Wx         *Param // (in, 4*hidden)
	Wh         *Param // (hidden, 4*hidden)
	B          *Param // (1, 4*hidden)

	cache []lstmStep
}

type lstmStep struct {
	x, hPrev, cPrev *Mat
	i, f, g, o, c   *Mat
	tanhC           *Mat
}

// NewLSTM returns an initialized LSTM. The forget-gate bias starts at 1,
// the standard trick for stable early training.
func NewLSTM(in, hidden int, rng *rand.Rand) *LSTM {
	b := NewMat(1, 4*hidden)
	for j := hidden; j < 2*hidden; j++ {
		b.Data[j] = 1
	}
	return &LSTM{
		In:     in,
		Hidden: hidden,
		Wx:     newParam("lstm.Wx", RandMat(in, 4*hidden, XavierStd(in, hidden), rng)),
		Wh:     newParam("lstm.Wh", RandMat(hidden, 4*hidden, XavierStd(hidden, hidden), rng)),
		B:      newParam("lstm.B", b),
	}
}

// Params implements Module.
func (l *LSTM) Params() []*Param { return []*Param{l.Wx, l.Wh, l.B} }

// Reset discards cached timesteps.
func (l *LSTM) Reset() { l.cache = l.cache[:0] }

// Step advances one timestep from (hPrev, cPrev) with input x, returning
// the new hidden and cell states and caching everything for Backward.
func (l *LSTM) Step(x, hPrev, cPrev *Mat) (h, c *Mat) {
	batch := x.Rows
	hid := l.Hidden
	z := MatMul(x, l.Wx.Value)
	AddInto(z, MatMul(hPrev, l.Wh.Value))
	AddRowVec(z, l.B.Value)

	i := NewMat(batch, hid)
	f := NewMat(batch, hid)
	g := NewMat(batch, hid)
	o := NewMat(batch, hid)
	for r := 0; r < batch; r++ {
		zr := z.Data[r*4*hid : (r+1)*4*hid]
		for j := 0; j < hid; j++ {
			i.Data[r*hid+j] = Sigmoid(zr[j])
			f.Data[r*hid+j] = Sigmoid(zr[hid+j])
			g.Data[r*hid+j] = math.Tanh(zr[2*hid+j])
			o.Data[r*hid+j] = Sigmoid(zr[3*hid+j])
		}
	}
	c = NewMat(batch, hid)
	for k := range c.Data {
		c.Data[k] = f.Data[k]*cPrev.Data[k] + i.Data[k]*g.Data[k]
	}
	tc := Apply(c, math.Tanh)
	h = NewMat(batch, hid)
	for k := range h.Data {
		h.Data[k] = o.Data[k] * tc.Data[k]
	}
	l.cache = append(l.cache, lstmStep{x: x, hPrev: hPrev, cPrev: cPrev, i: i, f: f, g: g, o: o, c: c, tanhC: tc})
	return h, c
}

// Forward runs the whole sequence from zero initial state, returning the
// hidden state at every timestep.
func (l *LSTM) Forward(xs []*Mat) []*Mat {
	if len(xs) == 0 {
		return nil
	}
	batch := xs[0].Rows
	h := NewMat(batch, l.Hidden)
	c := NewMat(batch, l.Hidden)
	out := make([]*Mat, len(xs))
	for t, x := range xs {
		h, c = l.Step(x, h, c)
		out[t] = h
	}
	return out
}

// StepBackward consumes the most recent cached step. dh and dc are the
// gradients flowing into this step's outputs (dh includes both the
// sequence-output gradient and the recurrent gradient from the next step).
// It returns gradients for the step inputs: dx, dhPrev, dcPrev.
func (l *LSTM) StepBackward(dh, dc *Mat) (dx, dhPrev, dcPrev *Mat) {
	if len(l.cache) == 0 {
		panic("nn: LSTM.StepBackward without cached step")
	}
	st := l.cache[len(l.cache)-1]
	l.cache = l.cache[:len(l.cache)-1]
	batch := dh.Rows
	hid := l.Hidden

	// dO, dTanhC.
	dcTotal := dc.Clone()
	for k := range dcTotal.Data {
		// h = o * tanh(c): gradient through tanh into c.
		dcTotal.Data[k] += dh.Data[k] * st.o.Data[k] * (1 - st.tanhC.Data[k]*st.tanhC.Data[k])
	}
	dz := NewMat(batch, 4*hid)
	dcPrev = NewMat(batch, hid)
	for r := 0; r < batch; r++ {
		for j := 0; j < hid; j++ {
			k := r*hid + j
			iv, fv, gv, ov := st.i.Data[k], st.f.Data[k], st.g.Data[k], st.o.Data[k]
			do := dh.Data[k] * st.tanhC.Data[k]
			di := dcTotal.Data[k] * gv
			df := dcTotal.Data[k] * st.cPrev.Data[k]
			dg := dcTotal.Data[k] * iv
			dcPrev.Data[k] = dcTotal.Data[k] * fv
			// Through the gate nonlinearities.
			dz.Data[r*4*hid+j] = di * iv * (1 - iv)
			dz.Data[r*4*hid+hid+j] = df * fv * (1 - fv)
			dz.Data[r*4*hid+2*hid+j] = dg * (1 - gv*gv)
			dz.Data[r*4*hid+3*hid+j] = do * ov * (1 - ov)
		}
	}
	AddInto(l.Wx.Grad, MatTMul(st.x, dz))
	AddInto(l.Wh.Grad, MatTMul(st.hPrev, dz))
	AddInto(l.B.Grad, SumRows(dz))
	dx = MatMulT(dz, l.Wx.Value)
	dhPrev = MatMulT(dz, l.Wh.Value)
	return dx, dhPrev, dcPrev
}

// Backward backpropagates through a full Forward pass. dhs[t] is the
// gradient of the loss with respect to the hidden output at timestep t
// (nil entries mean zero). It returns the gradient for each input.
func (l *LSTM) Backward(dhs []*Mat) []*Mat {
	n := len(dhs)
	if n == 0 {
		return nil
	}
	var batch int
	for _, d := range dhs {
		if d != nil {
			batch = d.Rows
			break
		}
	}
	dh := NewMat(batch, l.Hidden)
	dc := NewMat(batch, l.Hidden)
	dxs := make([]*Mat, n)
	for t := n - 1; t >= 0; t-- {
		if dhs[t] != nil {
			AddInto(dh, dhs[t])
		}
		var dx *Mat
		dx, dh, dc = l.StepBackward(dh, dc)
		dxs[t] = dx
	}
	return dxs
}

// BiLSTM is a bidirectional LSTM: a forward pass and a backward pass over
// the reversed sequence, with outputs concatenated per timestep to
// (batch, 2*hidden) — the discriminator's recurrent core (Fig. 6).
type BiLSTM struct {
	Fwd, Bwd *LSTM
}

// NewBiLSTM returns an initialized bidirectional LSTM.
func NewBiLSTM(in, hidden int, rng *rand.Rand) *BiLSTM {
	return &BiLSTM{Fwd: NewLSTM(in, hidden, rng), Bwd: NewLSTM(in, hidden, rng)}
}

// Params implements Module.
func (b *BiLSTM) Params() []*Param {
	return append(b.Fwd.Params(), b.Bwd.Params()...)
}

// Reset discards cached state in both directions.
func (b *BiLSTM) Reset() { b.Fwd.Reset(); b.Bwd.Reset() }

// Forward returns per-timestep concatenations [fwd_t | bwd_t].
func (b *BiLSTM) Forward(xs []*Mat) []*Mat {
	n := len(xs)
	fw := b.Fwd.Forward(xs)
	rev := make([]*Mat, n)
	for t := 0; t < n; t++ {
		rev[t] = xs[n-1-t]
	}
	bwRev := b.Bwd.Forward(rev)
	out := make([]*Mat, n)
	for t := 0; t < n; t++ {
		out[t] = ConcatCols(fw[t], bwRev[n-1-t])
	}
	return out
}

// Backward splits per-timestep gradients into the two directions and
// backpropagates both, returning per-timestep input gradients.
func (b *BiLSTM) Backward(douts []*Mat) []*Mat {
	n := len(douts)
	hid := b.Fwd.Hidden
	dfw := make([]*Mat, n)
	dbwRev := make([]*Mat, n)
	for t := 0; t < n; t++ {
		if douts[t] == nil {
			continue
		}
		l, r := SplitCols(douts[t], hid)
		dfw[t] = l
		dbwRev[n-1-t] = r
	}
	dxFw := b.Fwd.Backward(dfw)
	dxBwRev := b.Bwd.Backward(dbwRev)
	out := make([]*Mat, n)
	for t := 0; t < n; t++ {
		g := dxFw[t].Clone()
		AddInto(g, dxBwRev[n-1-t])
		out[t] = g
	}
	return out
}
