// Package nn is a compact, dependency-free deep-learning stack sufficient to
// reproduce the paper's conditional GAN (Fig. 6): dense layers, embeddings,
// LSTM and bidirectional LSTM with full backpropagation-through-time,
// dropout, sigmoid/BCE loss, and the Adam optimizer. It replaces the
// PyTorch + RTX 1080Ti training setup of §9.2 (see DESIGN.md).
//
// All math is float64 on dense row-major matrices; a matrix of shape
// (batch, features) flows through every layer.
package nn

import (
	"math"
	"math/rand"

	"rfprotect/internal/dsp"
)

// Mat is a dense row-major matrix (alias of the dsp matrix type).
type Mat = dsp.Matrix

// NewMat returns a zeroed rows×cols matrix.
func NewMat(rows, cols int) *Mat { return dsp.NewMatrix(rows, cols) }

// RandMat returns a rows×cols matrix with entries drawn N(0, std²).
func RandMat(rows, cols int, std float64, rng *rand.Rand) *Mat {
	m := NewMat(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * std
	}
	return m
}

// XavierStd returns the Glorot-uniform-equivalent normal std for a layer
// with the given fan-in and fan-out.
func XavierStd(fanIn, fanOut int) float64 {
	return math.Sqrt(2.0 / float64(fanIn+fanOut))
}

// MatMul returns a·b.
func MatMul(a, b *Mat) *Mat { return a.Mul(b) }

// MatMulT returns a·bᵀ without materializing the transpose.
func MatMulT(a, b *Mat) *Mat {
	if a.Cols != b.Cols {
		panic("nn: MatMulT inner dimension mismatch")
	}
	out := NewMat(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		ar := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j := 0; j < b.Rows; j++ {
			br := b.Data[j*b.Cols : (j+1)*b.Cols]
			s := 0.0
			for k, v := range ar {
				s += v * br[k]
			}
			out.Data[i*out.Cols+j] = s
		}
	}
	return out
}

// MatTMul returns aᵀ·b without materializing the transpose.
func MatTMul(a, b *Mat) *Mat {
	if a.Rows != b.Rows {
		panic("nn: MatTMul inner dimension mismatch")
	}
	out := NewMat(a.Cols, b.Cols)
	for k := 0; k < a.Rows; k++ {
		ar := a.Data[k*a.Cols : (k+1)*a.Cols]
		br := b.Data[k*b.Cols : (k+1)*b.Cols]
		for i, av := range ar {
			if av == 0 {
				continue
			}
			row := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, bv := range br {
				row[j] += av * bv
			}
		}
	}
	return out
}

// AddInto accumulates src into dst element-wise.
func AddInto(dst, src *Mat) {
	for i, v := range src.Data {
		dst.Data[i] += v
	}
}

// AddRowVec adds the 1×cols row vector v to every row of m, in place.
func AddRowVec(m, v *Mat) {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j := range row {
			row[j] += v.Data[j]
		}
	}
}

// SumRows returns the 1×cols column-wise sum of m (the bias gradient).
func SumRows(m *Mat) *Mat {
	out := NewMat(1, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			out.Data[j] += v
		}
	}
	return out
}

// ConcatCols concatenates a and b horizontally (same row count).
func ConcatCols(a, b *Mat) *Mat {
	if a.Rows != b.Rows {
		panic("nn: ConcatCols row mismatch")
	}
	out := NewMat(a.Rows, a.Cols+b.Cols)
	for i := 0; i < a.Rows; i++ {
		copy(out.Data[i*out.Cols:], a.Data[i*a.Cols:(i+1)*a.Cols])
		copy(out.Data[i*out.Cols+a.Cols:], b.Data[i*b.Cols:(i+1)*b.Cols])
	}
	return out
}

// SplitCols splits m into a left block of leftCols columns and the rest.
func SplitCols(m *Mat, leftCols int) (left, right *Mat) {
	if leftCols < 0 || leftCols > m.Cols {
		panic("nn: SplitCols out of range")
	}
	left = NewMat(m.Rows, leftCols)
	right = NewMat(m.Rows, m.Cols-leftCols)
	for i := 0; i < m.Rows; i++ {
		copy(left.Data[i*left.Cols:], m.Data[i*m.Cols:i*m.Cols+leftCols])
		copy(right.Data[i*right.Cols:], m.Data[i*m.Cols+leftCols:(i+1)*m.Cols])
	}
	return left, right
}

// Apply returns f applied element-wise to m as a new matrix.
func Apply(m *Mat, f func(float64) float64) *Mat {
	out := m.Clone()
	for i, v := range out.Data {
		out.Data[i] = f(v)
	}
	return out
}

// HadamardInto multiplies dst by src element-wise in place.
func HadamardInto(dst, src *Mat) {
	for i, v := range src.Data {
		dst.Data[i] *= v
	}
}
