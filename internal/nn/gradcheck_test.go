package nn

import (
	"math"
	"math/rand"
	"testing"
)

// numericalGrad perturbs each entry of p.Value and measures the change in
// loss() to approximate dLoss/dp.
func numericalGrad(p *Param, loss func() float64) []float64 {
	const eps = 1e-6
	out := make([]float64, len(p.Value.Data))
	for i := range p.Value.Data {
		orig := p.Value.Data[i]
		p.Value.Data[i] = orig + eps
		lp := loss()
		p.Value.Data[i] = orig - eps
		lm := loss()
		p.Value.Data[i] = orig
		out[i] = (lp - lm) / (2 * eps)
	}
	return out
}

func checkGrads(t *testing.T, name string, p *Param, want []float64) {
	t.Helper()
	for i, w := range want {
		got := p.Grad.Data[i]
		scale := math.Max(math.Max(math.Abs(got), math.Abs(w)), 1e-4)
		if math.Abs(got-w)/scale > 1e-4 {
			t.Fatalf("%s grad[%d]: analytic %v numeric %v", name, i, got, w)
		}
	}
}

func TestLinearGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(4, 3, rng)
	x := RandMat(5, 4, 1, rng)
	target := RandMat(5, 3, 1, rng)
	loss := func() float64 {
		l.Reset()
		y := l.Forward(x)
		v, _ := MSE(y, target)
		return v
	}
	ZeroGrads(l)
	l.Reset()
	y := l.Forward(x)
	_, dy := MSE(y, target)
	dx := l.Backward(dy)
	checkGrads(t, "W", l.W, numericalGrad(l.W, loss))
	checkGrads(t, "B", l.B, numericalGrad(l.B, loss))
	// Check dx numerically too.
	xp := newParam("x", x)
	xp.Grad = dx
	checkGrads(t, "x", xp, numericalGrad(xp, loss))
}

func TestEmbeddingGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e := NewEmbedding(5, 3, rng)
	labels := []int{0, 2, 2, 4}
	target := RandMat(4, 3, 1, rng)
	loss := func() float64 {
		e.Reset()
		y := e.Forward(labels)
		v, _ := MSE(y, target)
		return v
	}
	ZeroGrads(e)
	e.Reset()
	y := e.Forward(labels)
	_, dy := MSE(y, target)
	e.Backward(dy)
	checkGrads(t, "W", e.W, numericalGrad(e.W, loss))
}

func TestTanhGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var th TanhLayer
	x := RandMat(3, 4, 1, rng)
	target := RandMat(3, 4, 1, rng)
	loss := func() float64 {
		th.Reset()
		y := th.Forward(x)
		v, _ := MSE(y, target)
		return v
	}
	th.Reset()
	y := th.Forward(x)
	_, dy := MSE(y, target)
	dx := th.Backward(dy)
	xp := newParam("x", x)
	xp.Grad = dx
	checkGrads(t, "x", xp, numericalGrad(xp, loss))
}

func TestLSTMGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := NewLSTM(3, 4, rng)
	seq := 5
	batch := 2
	xs := make([]*Mat, seq)
	targets := make([]*Mat, seq)
	for i := range xs {
		xs[i] = RandMat(batch, 3, 1, rng)
		targets[i] = RandMat(batch, 4, 1, rng)
	}
	loss := func() float64 {
		l.Reset()
		hs := l.Forward(xs)
		total := 0.0
		for i, h := range hs {
			v, _ := MSE(h, targets[i])
			total += v
		}
		return total
	}
	ZeroGrads(l)
	l.Reset()
	hs := l.Forward(xs)
	dhs := make([]*Mat, seq)
	for i, h := range hs {
		_, dhs[i] = MSE(h, targets[i])
	}
	dxs := l.Backward(dhs)
	checkGrads(t, "Wx", l.Wx, numericalGrad(l.Wx, loss))
	checkGrads(t, "Wh", l.Wh, numericalGrad(l.Wh, loss))
	checkGrads(t, "B", l.B, numericalGrad(l.B, loss))
	// Input gradient of the first timestep (flows through the whole BPTT).
	xp := newParam("x0", xs[0])
	xp.Grad = dxs[0]
	checkGrads(t, "x0", xp, numericalGrad(xp, loss))
}

func TestBiLSTMGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := NewBiLSTM(3, 4, rng)
	seq := 4
	batch := 2
	xs := make([]*Mat, seq)
	targets := make([]*Mat, seq)
	for i := range xs {
		xs[i] = RandMat(batch, 3, 1, rng)
		targets[i] = RandMat(batch, 8, 1, rng)
	}
	loss := func() float64 {
		b.Reset()
		hs := b.Forward(xs)
		total := 0.0
		for i, h := range hs {
			v, _ := MSE(h, targets[i])
			total += v
		}
		return total
	}
	ZeroGrads(b)
	b.Reset()
	hs := b.Forward(xs)
	dhs := make([]*Mat, seq)
	for i, h := range hs {
		_, dhs[i] = MSE(h, targets[i])
	}
	dxs := b.Backward(dhs)
	for _, p := range b.Params() {
		checkGrads(t, p.Name, p, numericalGrad(p, loss))
	}
	xp := newParam("x1", xs[1])
	xp.Grad = dxs[1]
	checkGrads(t, "x1", xp, numericalGrad(xp, loss))
}

func TestBCEWithLogitsGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	logits := RandMat(4, 1, 2, rng)
	targets := []float64{1, 0, 1, 0}
	_, dl := BCEWithLogits(logits, targets)
	lp := newParam("logits", logits)
	lp.Grad = dl
	loss := func() float64 {
		v, _ := BCEWithLogits(logits, targets)
		return v
	}
	checkGrads(t, "logits", lp, numericalGrad(lp, loss))
}

func TestDropoutGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := NewDropout(0.5, rand.New(rand.NewSource(8)))
	x := RandMat(3, 4, 1, rng)
	target := RandMat(3, 4, 1, rng)
	// Freeze a single mask by replaying the same rng seed.
	d.rng = rand.New(rand.NewSource(9))
	y := d.Forward(x)
	_, dy := MSE(y, target)
	dx := d.Backward(dy)
	loss := func() float64 {
		d.Reset()
		d.rng = rand.New(rand.NewSource(9))
		y := d.Forward(x)
		v, _ := MSE(y, target)
		return v
	}
	xp := newParam("x", x)
	xp.Grad = dx
	checkGrads(t, "x", xp, numericalGrad(xp, loss))
}
