package nn

import "math"

// Adam implements the Adam optimizer (Kingma & Ba '15) — the optimizer the
// paper trains its cGAN with (§9.2, lr 1e-4 generator / 2e-4 discriminator).
type Adam struct {
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64
	t     int
	m, v  map[*Param][]float64
}

// NewAdam returns an Adam optimizer with the standard β₁=0.9, β₂=0.999.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR:    lr,
		Beta1: 0.9,
		Beta2: 0.999,
		Eps:   1e-8,
		m:     make(map[*Param][]float64),
		v:     make(map[*Param][]float64),
	}
}

// Step applies one update to every parameter from its accumulated gradient,
// then leaves the gradients untouched (call ZeroGrads before the next
// accumulation).
func (a *Adam) Step(params []*Param) {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = make([]float64, len(p.Value.Data))
			a.m[p] = m
		}
		v, ok := a.v[p]
		if !ok {
			v = make([]float64, len(p.Value.Data))
			a.v[p] = v
		}
		for i, g := range p.Grad.Data {
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mHat := m[i] / bc1
			vHat := v[i] / bc2
			p.Value.Data[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
		}
	}
}
