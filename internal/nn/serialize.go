package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// snapshot is the on-disk form of a parameter set.
type snapshot struct {
	Names  []string
	Rows   []int
	Cols   []int
	Values [][]float64
}

// Save writes the parameter values of the given modules to w with
// encoding/gob, in module order.
func Save(w io.Writer, mods ...Module) error {
	var s snapshot
	for _, p := range CollectParams(mods...) {
		s.Names = append(s.Names, p.Name)
		s.Rows = append(s.Rows, p.Value.Rows)
		s.Cols = append(s.Cols, p.Value.Cols)
		vals := make([]float64, len(p.Value.Data))
		copy(vals, p.Value.Data)
		s.Values = append(s.Values, vals)
	}
	return gob.NewEncoder(w).Encode(s)
}

// Load restores parameter values previously written with Save into modules
// of identical architecture.
func Load(r io.Reader, mods ...Module) error {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return fmt.Errorf("nn: decode snapshot: %w", err)
	}
	params := CollectParams(mods...)
	if len(params) != len(s.Values) {
		return fmt.Errorf("nn: snapshot has %d tensors, model has %d", len(s.Values), len(params))
	}
	for i, p := range params {
		if p.Value.Rows != s.Rows[i] || p.Value.Cols != s.Cols[i] {
			return fmt.Errorf("nn: tensor %d (%s) shape %dx%d, snapshot %dx%d",
				i, p.Name, p.Value.Rows, p.Value.Cols, s.Rows[i], s.Cols[i])
		}
		copy(p.Value.Data, s.Values[i])
	}
	return nil
}
