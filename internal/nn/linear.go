package nn

import "math/rand"

// Linear is a fully connected layer: y = x·W + b, with x of shape
// (batch, in) and W of shape (in, out).
//
// Forward calls push their input onto an internal stack and Backward calls
// pop it, so a layer applied at every timestep of a sequence is
// backpropagated by calling Backward in reverse timestep order — the
// natural BPTT order.
type Linear struct {
	W, B *Param

	stack []*Mat
}

// NewLinear returns a Xavier-initialized dense layer.
func NewLinear(in, out int, rng *rand.Rand) *Linear {
	return &Linear{
		W: newParam("linear.W", RandMat(in, out, XavierStd(in, out), rng)),
		B: newParam("linear.B", NewMat(1, out)),
	}
}

// Forward computes y = x·W + b and caches x for the backward pass.
func (l *Linear) Forward(x *Mat) *Mat {
	l.stack = append(l.stack, x)
	y := MatMul(x, l.W.Value)
	AddRowVec(y, l.B.Value)
	return y
}

// Backward accumulates parameter gradients for upstream gradient dy against
// the most recent unconsumed Forward input, and returns dx. It panics if
// called more times than Forward.
func (l *Linear) Backward(dy *Mat) *Mat {
	if len(l.stack) == 0 {
		panic("nn: Linear.Backward without matching Forward")
	}
	x := l.stack[len(l.stack)-1]
	l.stack = l.stack[:len(l.stack)-1]
	AddInto(l.W.Grad, MatTMul(x, dy))
	AddInto(l.B.Grad, SumRows(dy))
	return MatMulT(dy, l.W.Value)
}

// Reset discards any cached forward activations.
func (l *Linear) Reset() { l.stack = l.stack[:0] }

// Params implements Module.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }
