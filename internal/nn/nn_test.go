package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestMatHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandMat(3, 4, 1, rng)
	b := RandMat(5, 4, 1, rng)
	// MatMulT(a, b) == a·bᵀ.
	got := MatMulT(a, b)
	want := a.Mul(b.Transpose())
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-12 {
			t.Fatal("MatMulT mismatch")
		}
	}
	// MatTMul(a, c) == aᵀ·c.
	c := RandMat(3, 2, 1, rng)
	got2 := MatTMul(a, c)
	want2 := a.Transpose().Mul(c)
	for i := range want2.Data {
		if math.Abs(got2.Data[i]-want2.Data[i]) > 1e-12 {
			t.Fatal("MatTMul mismatch")
		}
	}
}

func TestConcatSplitRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := RandMat(3, 2, 1, rng)
	b := RandMat(3, 5, 1, rng)
	cat := ConcatCols(a, b)
	if cat.Rows != 3 || cat.Cols != 7 {
		t.Fatalf("shape %dx%d", cat.Rows, cat.Cols)
	}
	l, r := SplitCols(cat, 2)
	for i := range a.Data {
		if l.Data[i] != a.Data[i] {
			t.Fatal("left mismatch")
		}
	}
	for i := range b.Data {
		if r.Data[i] != b.Data[i] {
			t.Fatal("right mismatch")
		}
	}
}

func TestSumRowsAddRowVec(t *testing.T) {
	m := NewMat(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	s := SumRows(m)
	if s.Data[0] != 5 || s.Data[1] != 7 || s.Data[2] != 9 {
		t.Fatalf("SumRows = %v", s.Data)
	}
	v := NewMat(1, 3)
	copy(v.Data, []float64{10, 20, 30})
	AddRowVec(m, v)
	if m.Data[0] != 11 || m.Data[5] != 36 {
		t.Fatalf("AddRowVec = %v", m.Data)
	}
}

func TestAdamMinimizesQuadratic(t *testing.T) {
	// Minimize f(w) = ||w - target||² with Adam.
	rng := rand.New(rand.NewSource(3))
	p := newParam("w", RandMat(1, 8, 1, rng))
	target := RandMat(1, 8, 1, rng)
	opt := NewAdam(0.05)
	for i := 0; i < 500; i++ {
		p.ZeroGrad()
		_, g := MSE(p.Value, target)
		copy(p.Grad.Data, g.Data)
		opt.Step([]*Param{p})
	}
	final, _ := MSE(p.Value, target)
	if final > 1e-4 {
		t.Fatalf("Adam failed to converge: loss %v", final)
	}
}

func TestLinearLearnsMapping(t *testing.T) {
	// y = 2x + 1 learned from samples.
	rng := rand.New(rand.NewSource(4))
	l := NewLinear(1, 1, rng)
	opt := NewAdam(0.05)
	for i := 0; i < 400; i++ {
		x := RandMat(16, 1, 1, rng)
		target := Apply(x, func(v float64) float64 { return 2*v + 1 })
		ZeroGrads(l)
		l.Reset()
		y := l.Forward(x)
		_, dy := MSE(y, target)
		l.Backward(dy)
		opt.Step(l.Params())
	}
	if math.Abs(l.W.Value.Data[0]-2) > 0.05 || math.Abs(l.B.Value.Data[0]-1) > 0.05 {
		t.Fatalf("learned w=%v b=%v", l.W.Value.Data[0], l.B.Value.Data[0])
	}
}

func TestLSTMLearnsRunningSum(t *testing.T) {
	// Output target: tanh-squashed running mean of inputs — requires memory.
	rng := rand.New(rand.NewSource(5))
	lstm := NewLSTM(1, 8, rng)
	head := NewLinear(8, 1, rng)
	opt := NewAdam(0.01)
	seq := 6
	var lastLoss float64
	firstLoss := -1.0
	for iter := 0; iter < 300; iter++ {
		xs := make([]*Mat, seq)
		sum := NewMat(4, 1)
		targets := make([]*Mat, seq)
		for tIdx := range xs {
			xs[tIdx] = RandMat(4, 1, 0.5, rng)
			AddInto(sum, xs[tIdx])
			targets[tIdx] = Apply(sum, func(v float64) float64 { return math.Tanh(v / float64(tIdx+1)) })
		}
		ZeroGrads(lstm, head)
		lstm.Reset()
		head.Reset()
		hs := lstm.Forward(xs)
		total := 0.0
		douts := make([]*Mat, seq)
		ys := make([]*Mat, seq)
		for tIdx := 0; tIdx < seq; tIdx++ {
			ys[tIdx] = head.Forward(hs[tIdx])
		}
		for tIdx := seq - 1; tIdx >= 0; tIdx-- {
			v, dy := MSE(ys[tIdx], targets[tIdx])
			total += v
			douts[tIdx] = head.Backward(dy)
		}
		lstm.Backward(douts)
		ClipGradNorm(CollectParams(lstm, head), 5)
		opt.Step(CollectParams(lstm, head))
		lastLoss = total / float64(seq)
		if firstLoss < 0 {
			firstLoss = lastLoss
		}
	}
	if lastLoss > firstLoss*0.5 {
		t.Fatalf("LSTM did not learn: first %v last %v", firstLoss, lastLoss)
	}
}

func TestDropoutStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := NewDropout(0.5, rng)
	x := NewMat(100, 100)
	for i := range x.Data {
		x.Data[i] = 1
	}
	y := d.Forward(x)
	zeros, scaled := 0, 0
	for _, v := range y.Data {
		switch v {
		case 0:
			zeros++
		case 2:
			scaled++
		default:
			t.Fatalf("unexpected value %v", v)
		}
	}
	frac := float64(zeros) / float64(len(y.Data))
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("drop fraction %v", frac)
	}
	// Inference mode is identity.
	d.Train = false
	y2 := d.Forward(x)
	for i := range x.Data {
		if y2.Data[i] != x.Data[i] {
			t.Fatal("inference dropout must be identity")
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l1 := NewLinear(3, 4, rng)
	lstm1 := NewLSTM(4, 5, rng)
	var buf bytes.Buffer
	if err := Save(&buf, l1, lstm1); err != nil {
		t.Fatal(err)
	}
	l2 := NewLinear(3, 4, rand.New(rand.NewSource(99)))
	lstm2 := NewLSTM(4, 5, rand.New(rand.NewSource(99)))
	if err := Load(&buf, l2, lstm2); err != nil {
		t.Fatal(err)
	}
	for i, p := range CollectParams(l1, lstm1) {
		q := CollectParams(l2, lstm2)[i]
		for j := range p.Value.Data {
			if p.Value.Data[j] != q.Value.Data[j] {
				t.Fatal("weights differ after round trip")
			}
		}
	}
	// Shape mismatch must error.
	var buf2 bytes.Buffer
	if err := Save(&buf2, l1); err != nil {
		t.Fatal(err)
	}
	wrong := NewLinear(3, 5, rng)
	if err := Load(&buf2, wrong); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestClipGradNorm(t *testing.T) {
	p := newParam("w", NewMat(1, 2))
	p.Grad.Data[0] = 3
	p.Grad.Data[1] = 4
	norm := ClipGradNorm([]*Param{p}, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Fatalf("norm %v", norm)
	}
	if math.Abs(math.Hypot(p.Grad.Data[0], p.Grad.Data[1])-1) > 1e-9 {
		t.Fatal("not clipped to 1")
	}
	// Below max: untouched.
	p.Grad.Data[0], p.Grad.Data[1] = 0.3, 0.4
	ClipGradNorm([]*Param{p}, 1)
	if p.Grad.Data[0] != 0.3 {
		t.Fatal("clipped when under the limit")
	}
}

func TestBCEWithLogitsValues(t *testing.T) {
	logits := NewMat(1, 2)
	logits.Data[0] = 100  // certain positive
	logits.Data[1] = -100 // certain negative
	loss, _ := BCEWithLogits(logits, []float64{1, 0})
	if loss > 1e-9 {
		t.Fatalf("perfect prediction loss %v", loss)
	}
	loss2, _ := BCEWithLogits(logits, []float64{0, 1})
	if loss2 < 50 {
		t.Fatalf("catastrophic prediction loss %v", loss2)
	}
}

func TestEmbeddingPanicsOutOfRange(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	e := NewEmbedding(3, 2, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Forward([]int{5})
}
