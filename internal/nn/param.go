package nn

import "math"

// Param is one trainable tensor with its gradient accumulator.
type Param struct {
	Name  string
	Value *Mat
	Grad  *Mat
}

// newParam wraps a value matrix with a zeroed gradient of the same shape.
func newParam(name string, value *Mat) *Param {
	return &Param{Name: name, Value: value, Grad: NewMat(value.Rows, value.Cols)}
}

// ZeroGrad clears the gradient.
func (p *Param) ZeroGrad() {
	for i := range p.Grad.Data {
		p.Grad.Data[i] = 0
	}
}

// Module is a trainable component exposing its parameters.
type Module interface {
	Params() []*Param
}

// ZeroGrads clears the gradients of every parameter of the given modules.
func ZeroGrads(mods ...Module) {
	for _, m := range mods {
		for _, p := range m.Params() {
			p.ZeroGrad()
		}
	}
}

// CollectParams flattens the parameters of the given modules.
func CollectParams(mods ...Module) []*Param {
	var out []*Param
	for _, m := range mods {
		out = append(out, m.Params()...)
	}
	return out
}

// ClipGradNorm scales the gradients of params so their global L2 norm does
// not exceed maxNorm, returning the pre-clip norm. GAN-LSTM training is
// prone to exploding gradients; the paper's PyTorch setup gets this from
// the framework.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	total := 0.0
	for _, p := range params {
		for _, g := range p.Grad.Data {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if maxNorm > 0 && norm > maxNorm {
		scale := maxNorm / norm
		for _, p := range params {
			for i := range p.Grad.Data {
				p.Grad.Data[i] *= scale
			}
		}
	}
	return norm
}
