// Package replayspoof implements the FMCW distance-spoofing *attacker*
// designs RF-Protect is compared against in §12 (Komissarov & Wool; Miura
// et al.; Nashimoto et al.): an active device that receives the radar's
// chirp, and re-transmits a delayed, amplified copy so targets appear
// farther away.
//
// The paper's two criticisms of this family are modeled explicitly:
//
//  1. Active transmission — the spoofer radiates a signal of its own.
//  2. Synchronization lag — it needs time to notice the radar's state, so a
//     radar that abruptly stops transmitting catches the spoofer still
//     emitting (Kapoor et al. [27]), while RF-Protect's passive reflections
//     vanish instantly.
package replayspoof

import (
	"math"

	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
)

// Spoofer is a replay-based active FMCW spoofer.
type Spoofer struct {
	// Position of the spoofer's antenna.
	Position geom.Point
	// ExtraDelay is added to the replayed chirp (spoofed extra distance
	// C·ExtraDelay/2 one-way).
	ExtraDelay float64
	// DelayRate sweeps ExtraDelay over time (seconds of delay per second),
	// moving the phantom radially at C·DelayRate/2 m/s — how replay designs
	// animate a phantom so it survives a tracker's clutter rejection.
	DelayRate float64
	// Gain is the replay amplifier's amplitude gain.
	Gain float64
	// SyncLag is how long the spoofer takes to react to the radar turning
	// on or off; real designs need tens of milliseconds to re-synchronize.
	SyncLag float64
	// SyncJitter is the half-width (seconds) of the per-chirp timing error
	// in the spoofer's chirp entrainment: each replayed chirp's delay
	// wanders by up to ±SyncJitter because the spoofer re-locks onto every
	// chirp with finite clock accuracy. The wander shows up as range jitter
	// of up to ±C·SyncJitter/2 at the victim — the fingerprint
	// detect.JitterScore keys on. Zero models a perfectly entrained
	// spoofer.
	SyncJitter float64
	// SyncJitterSeed selects the deterministic jitter sequence; the jitter
	// at time t is a pure function of (t, SyncJitterSeed).
	SyncJitterSeed int64

	trueState      bool    // radar's actual transmit state as last observed
	stateBefore    bool    // belief held before the most recent transition
	lastTransition float64 // time of the most recent observed transition
}

// New returns a spoofer with a typical 80 ms synchronization lag.
func New(pos geom.Point, extraDelay, gain float64) *Spoofer {
	return &Spoofer{Position: pos, ExtraDelay: extraDelay, Gain: gain, SyncLag: 0.08}
}

// ObserveRadar informs the spoofer of the radar's true transmit state at
// time t; the spoofer's belief (and hence its own transmission) follows
// after SyncLag. Calls must be in non-decreasing time order.
func (s *Spoofer) ObserveRadar(t float64, on bool) {
	if on != s.trueState {
		s.stateBefore = s.trueState
		s.trueState = on
		s.lastTransition = t
	}
}

// TransmitsAt reports whether the spoofer is radiating at time t: it
// follows the radar's state with SyncLag delay, so for SyncLag seconds
// after the radar goes quiet the spoofer keeps transmitting — the tell the
// probe exploits.
func (s *Spoofer) TransmitsAt(t float64) bool {
	if t < s.lastTransition+s.SyncLag {
		return s.stateBefore
	}
	return s.trueState
}

// EmittedPower returns the spoofer's radiated power at time t as sensed by
// a listening receiver at the given position — the radar-off probe of [27].
// A passive reflector (RF-Protect) contributes zero here because it has
// nothing to reflect when the radar is silent.
func (s *Spoofer) EmittedPower(t float64, at geom.Point) float64 {
	if !s.TransmitsAt(t) {
		return 0
	}
	d := s.Position.Dist(at)
	if d < 0.3 {
		d = 0.3
	}
	a := s.Gain / d
	return a * a
}

// ReturnsAt implements scene.ReturnSource for the radar-on case: the
// replayed chirp appears as a return from the spoofer's direction with the
// extra programmed delay. (If the spoofer believes the radar is off it
// replays nothing.)
func (s *Spoofer) ReturnsAt(t float64, radar fmcw.Array) []fmcw.Return {
	if !s.TransmitsAt(t) {
		return nil
	}
	d := radar.DistanceOf(s.Position)
	if d < 0.3 {
		d = 0.3
	}
	// One-way incident capture, re-transmit: amplitude falls as 1/d each
	// way, boosted by the replay gain.
	amp := s.Gain / (d * d)
	return []fmcw.Return{{
		Delay:     2*d/fmcw.C + s.ExtraDelay + s.DelayRate*t + s.jitterAt(t),
		Amplitude: amp,
		AoA:       radar.AoAOf(s.Position),
	}}
}

// jitterAt returns the chirp-entrainment timing error applied to the replay
// at time t: uniform in ±SyncJitter, deterministic in (t, SyncJitterSeed).
func (s *Spoofer) jitterAt(t float64) float64 {
	if s.SyncJitter == 0 {
		return 0
	}
	return s.SyncJitter * (2*hashUnit(t, s.SyncJitterSeed) - 1)
}

// hashUnit maps (t, seed) to a uniform value in [0, 1) with a splitmix64
// finalizer over the time's bit pattern — stateless, so replays at the same
// instant always jitter identically regardless of call order.
func hashUnit(t float64, seed int64) float64 {
	x := math.Float64bits(t) ^ uint64(seed)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// SpoofedDistance returns the apparent target distance the replay creates.
func (s *Spoofer) SpoofedDistance(radar fmcw.Array) float64 {
	return radar.DistanceOf(s.Position) + fmcw.C*s.ExtraDelay/2
}

// DetectByProbe runs the radar-off probe of [27] over a listening window:
// given emission-power samples taken while the radar was silent, it reports
// whether an active spoofer gave itself away. threshold guards against the
// receiver noise floor.
func DetectByProbe(samples []float64, threshold float64) bool {
	for _, p := range samples {
		if p > threshold {
			return true
		}
	}
	return false
}

// MaxFloat returns the maximum of xs (0 for empty), a small helper for
// probe reports.
func MaxFloat(xs []float64) float64 {
	m := 0.0
	for _, v := range xs {
		m = math.Max(m, v)
	}
	return m
}
