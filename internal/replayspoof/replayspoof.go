// Package replayspoof implements the FMCW distance-spoofing *attacker*
// designs RF-Protect is compared against in §12 (Komissarov & Wool; Miura
// et al.; Nashimoto et al.): an active device that receives the radar's
// chirp, and re-transmits a delayed, amplified copy so targets appear
// farther away.
//
// The paper's two criticisms of this family are modeled explicitly:
//
//  1. Active transmission — the spoofer radiates a signal of its own.
//  2. Synchronization lag — it needs time to notice the radar's state, so a
//     radar that abruptly stops transmitting catches the spoofer still
//     emitting (Kapoor et al. [27]), while RF-Protect's passive reflections
//     vanish instantly.
package replayspoof

import (
	"math"

	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
)

// Spoofer is a replay-based active FMCW spoofer.
type Spoofer struct {
	// Position of the spoofer's antenna.
	Position geom.Point
	// ExtraDelay is added to the replayed chirp (spoofed extra distance
	// C·ExtraDelay/2 one-way).
	ExtraDelay float64
	// Gain is the replay amplifier's amplitude gain.
	Gain float64
	// SyncLag is how long the spoofer takes to react to the radar turning
	// on or off; real designs need tens of milliseconds to re-synchronize.
	SyncLag float64

	trueState      bool    // radar's actual transmit state as last observed
	stateBefore    bool    // belief held before the most recent transition
	lastTransition float64 // time of the most recent observed transition
}

// New returns a spoofer with a typical 80 ms synchronization lag.
func New(pos geom.Point, extraDelay, gain float64) *Spoofer {
	return &Spoofer{Position: pos, ExtraDelay: extraDelay, Gain: gain, SyncLag: 0.08}
}

// ObserveRadar informs the spoofer of the radar's true transmit state at
// time t; the spoofer's belief (and hence its own transmission) follows
// after SyncLag. Calls must be in non-decreasing time order.
func (s *Spoofer) ObserveRadar(t float64, on bool) {
	if on != s.trueState {
		s.stateBefore = s.trueState
		s.trueState = on
		s.lastTransition = t
	}
}

// TransmitsAt reports whether the spoofer is radiating at time t: it
// follows the radar's state with SyncLag delay, so for SyncLag seconds
// after the radar goes quiet the spoofer keeps transmitting — the tell the
// probe exploits.
func (s *Spoofer) TransmitsAt(t float64) bool {
	if t < s.lastTransition+s.SyncLag {
		return s.stateBefore
	}
	return s.trueState
}

// EmittedPower returns the spoofer's radiated power at time t as sensed by
// a listening receiver at the given position — the radar-off probe of [27].
// A passive reflector (RF-Protect) contributes zero here because it has
// nothing to reflect when the radar is silent.
func (s *Spoofer) EmittedPower(t float64, at geom.Point) float64 {
	if !s.TransmitsAt(t) {
		return 0
	}
	d := s.Position.Dist(at)
	if d < 0.3 {
		d = 0.3
	}
	a := s.Gain / d
	return a * a
}

// ReturnsAt implements scene.ReturnSource for the radar-on case: the
// replayed chirp appears as a return from the spoofer's direction with the
// extra programmed delay. (If the spoofer believes the radar is off it
// replays nothing.)
func (s *Spoofer) ReturnsAt(t float64, radar fmcw.Array) []fmcw.Return {
	if !s.TransmitsAt(t) {
		return nil
	}
	d := radar.DistanceOf(s.Position)
	if d < 0.3 {
		d = 0.3
	}
	// One-way incident capture, re-transmit: amplitude falls as 1/d each
	// way, boosted by the replay gain.
	amp := s.Gain / (d * d)
	return []fmcw.Return{{
		Delay:     2*d/fmcw.C + s.ExtraDelay,
		Amplitude: amp,
		AoA:       radar.AoAOf(s.Position),
	}}
}

// SpoofedDistance returns the apparent target distance the replay creates.
func (s *Spoofer) SpoofedDistance(radar fmcw.Array) float64 {
	return radar.DistanceOf(s.Position) + fmcw.C*s.ExtraDelay/2
}

// DetectByProbe runs the radar-off probe of [27] over a listening window:
// given emission-power samples taken while the radar was silent, it reports
// whether an active spoofer gave itself away. threshold guards against the
// receiver noise floor.
func DetectByProbe(samples []float64, threshold float64) bool {
	for _, p := range samples {
		if p > threshold {
			return true
		}
	}
	return false
}

// MaxFloat returns the maximum of xs (0 for empty), a small helper for
// probe reports.
func MaxFloat(xs []float64) float64 {
	m := 0.0
	for _, v := range xs {
		m = math.Max(m, v)
	}
	return m
}
