package replayspoof

import (
	"math"
	"testing"

	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
)

func TestSpoofedDistance(t *testing.T) {
	radar := fmcw.Array{Position: geom.Point{}, Facing: 1}
	sp := New(geom.Point{X: 0, Y: 2}, 20e-9, 10) // 20 ns -> +3 m
	want := 2 + fmcw.C*20e-9/2
	if got := sp.SpoofedDistance(radar); math.Abs(got-want) > 1e-9 {
		t.Fatalf("spoofed distance %v, want %v", got, want)
	}
}

func TestReplayAppearsAtSpoofedRange(t *testing.T) {
	radar := fmcw.Array{Position: geom.Point{}, Facing: 1}
	sp := New(geom.Point{X: 0, Y: 2}, 20e-9, 10)
	sp.ObserveRadar(0, true)
	rets := sp.ReturnsAt(1, radar)
	if len(rets) != 1 {
		t.Fatalf("returns %v", rets)
	}
	gotDist := rets[0].Delay * fmcw.C / 2
	if math.Abs(gotDist-sp.SpoofedDistance(radar)) > 1e-9 {
		t.Fatalf("return at %v m, want %v m", gotDist, sp.SpoofedDistance(radar))
	}
}

func TestSyncLagStateMachine(t *testing.T) {
	sp := New(geom.Point{X: 0, Y: 2}, 0, 10)
	sp.SyncLag = 0.1
	sp.ObserveRadar(0, true)
	if sp.TransmitsAt(0.05) {
		t.Fatal("should still be off during sync-up")
	}
	if !sp.TransmitsAt(0.2) {
		t.Fatal("should transmit once synced")
	}
	// Radar turns off at t=1: spoofer keeps transmitting for SyncLag.
	sp.ObserveRadar(1, false)
	if !sp.TransmitsAt(1.05) {
		t.Fatal("the tell: spoofer must still transmit right after radar-off")
	}
	if sp.TransmitsAt(1.2) {
		t.Fatal("spoofer should have stopped after SyncLag")
	}
}

func TestEmittedPowerAndProbe(t *testing.T) {
	sp := New(geom.Point{X: 0, Y: 2}, 0, 10)
	sp.ObserveRadar(0, true)
	listener := geom.Point{X: 0, Y: 0}
	if p := sp.EmittedPower(0.5, listener); p <= 0 {
		t.Fatal("no emission while transmitting")
	}
	// Power falls off with distance squared.
	near := sp.EmittedPower(0.5, geom.Point{X: 0, Y: 1})
	far := sp.EmittedPower(0.5, geom.Point{X: 0, Y: 0})
	if near <= far {
		t.Fatal("power should fall with distance")
	}
	sp.ObserveRadar(1, false)
	if p := sp.EmittedPower(2, listener); p != 0 {
		t.Fatalf("emission after shutdown: %v", p)
	}
	if !DetectByProbe([]float64{0, 0, 0.5}, 0.1) {
		t.Fatal("probe missed emission")
	}
	if DetectByProbe([]float64{0.01, 0.02}, 0.1) {
		t.Fatal("probe false alarm on noise floor")
	}
	if MaxFloat(nil) != 0 || MaxFloat([]float64{1, 3, 2}) != 3 {
		t.Fatal("MaxFloat")
	}
}

func TestReplaySilentBeforeSync(t *testing.T) {
	radar := fmcw.Array{Position: geom.Point{}, Facing: 1}
	sp := New(geom.Point{X: 0, Y: 2}, 0, 10)
	// Never observed the radar on: no replay.
	if rets := sp.ReturnsAt(0, radar); rets != nil {
		t.Fatalf("replay without sync: %v", rets)
	}
}
