package scene

import (
	"context"
	"io"
	"math/rand"

	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
)

// ReturnSource is anything that contributes radar returns: the RF-Protect
// reflector (internal/reflector) implements this so it can be dropped into a
// Scene next to the humans it protects.
type ReturnSource interface {
	// ReturnsAt reports the reflections this source produces at time t as
	// seen by the given radar array.
	ReturnsAt(t float64, radar fmcw.Array) []fmcw.Return
}

// Scene is a complete simulated environment: a room, a radar, and everything
// that reflects.
type Scene struct {
	Room    Room
	Radar   fmcw.Array
	Params  fmcw.Params
	Humans  []*Human
	Clutter []Clutter
	Fans    []Fan
	Sources []ReturnSource // e.g. the RF-Protect reflector

	// Multipath enables first-order image reflections of moving scatterers
	// across the room's mirrors.
	Multipath bool
	// RefDistance is the distance at which a unit-RCS scatterer has unit
	// amplitude; amplitude falls off as (RefDistance/d)². Zero means 1 m.
	RefDistance float64

	// pool, when set with UseFramePool, supplies recycled storage for every
	// frame the scene synthesizes.
	pool *fmcw.FramePool
	// plan, when set with UseSynthPlan, is the compiled synthesis plan every
	// capture path runs through; nil means compile (or fetch the shared plan
	// for Params) on first use.
	plan *fmcw.SynthPlan
}

// UseFramePool routes every capture path — FrameAt, FrameAtCtx,
// CaptureBurst, and streams built by Stream (unless overridden per stream
// with FrameStream.UsePool) — through the given pool, which must be
// configured with the scene's Params: frames synthesize into recycled pool
// storage instead of fresh allocations. Emitted frames are bit-identical to
// the unpooled paths'; ownership of each frame passes to the caller, who
// recycles it with pool.Put once done. It returns s for chaining.
func (s *Scene) UseFramePool(pool *fmcw.FramePool) *Scene {
	s.pool = pool
	return s
}

// UseSynthPlan routes every capture path through the given pre-compiled
// synthesis plan, which must be compiled for the scene's Params. Frames are
// bit-identical for any plan of the right shape — plans are stateless apart
// from their warmed executor free lists — so sharing one plan across many
// scenes of one shape (as the service's room manager does) costs nothing but
// saves each scene its own phasor-table scratch. It returns s for chaining.
func (s *Scene) UseSynthPlan(pl *fmcw.SynthPlan) *Scene {
	s.plan = pl
	return s
}

// synthPlan returns the scene's synthesis plan, fetching the process-wide
// shared plan for Params on first use (or after Params changed shape).
func (s *Scene) synthPlan() *fmcw.SynthPlan {
	if s.plan == nil || s.plan.Params() != s.Params {
		s.plan = fmcw.PlanSynth(s.Params)
	}
	return s.plan
}

// NewScene assembles a scene with the radar mounted at the middle of the
// bottom wall facing into the room, matching the paper's deployments
// (eavesdropper along a wall).
func NewScene(room Room, params fmcw.Params) *Scene {
	return &Scene{
		Room:   room,
		Params: params,
		Radar: fmcw.Array{
			Position:  geom.Point{X: room.Width / 2, Y: 0},
			AxisAngle: 0, // array along the wall (x axis)
			Facing:    1, // looking into the room (+y)
		},
		Multipath: true,
	}
}

func (s *Scene) refDist() float64 {
	if s.RefDistance > 0 {
		return s.RefDistance
	}
	return 1
}

// amplitudeAt applies the radar-equation 1/d² amplitude falloff.
func (s *Scene) amplitudeAt(rcs float64, p geom.Point) float64 {
	d := s.Radar.DistanceOf(p)
	r0 := s.refDist()
	if d < r0 {
		d = r0
	}
	return rcs * (r0 / d) * (r0 / d)
}

// movingReturn builds the direct return plus optional first-order multipath
// images for a moving scatterer at p.
func (s *Scene) movingReturn(p geom.Point, rcs, extraPhase float64, out []fmcw.Return) []fmcw.Return {
	out = append(out, s.Radar.ReturnFrom(p, s.amplitudeAt(rcs, p), 0, extraPhase))
	if s.Multipath {
		for _, m := range s.Room.Mirrors() {
			img := m.Reflect(p)
			amp := s.amplitudeAt(rcs, img) * m.Reflectivity
			if amp < 1e-6 {
				continue
			}
			out = append(out, s.Radar.ReturnFrom(img, amp, 0, extraPhase))
		}
	}
	return out
}

// ReturnsAt assembles every reflection in the scene at time t.
func (s *Scene) ReturnsAt(t float64) []fmcw.Return { return s.AppendReturnsAt(nil, t) }

// AppendReturnsAt appends every reflection in the scene at time t to dst and
// returns the extended slice — the scratch-reusing form of ReturnsAt, so a
// streaming consumer can feed the same backing array through every frame.
// The appended contents are identical to ReturnsAt's for any dst.
func (s *Scene) AppendReturnsAt(dst []fmcw.Return, t float64) []fmcw.Return {
	out := dst
	for _, h := range s.Humans {
		p := h.PositionAt(t)
		// Breathing shifts the reflecting surface radially: extra round-trip
		// path 2·δ(t), visible as carrier phase 4π·δ/λ.
		delta := h.Breathing.Displacement(t)
		extraPhase := 4 * 3.141592653589793 * delta / s.Params.Wavelength()
		out = s.movingReturn(p, h.RCS, extraPhase, out)
	}
	for _, f := range s.Fans {
		out = s.movingReturn(f.PositionAt(t), f.Amplitude, 0, out)
	}
	for _, c := range s.Clutter {
		out = append(out, s.Radar.ReturnFrom(c.Pos, c.Amplitude, 0, 0))
	}
	for _, src := range s.Sources {
		out = append(out, src.ReturnsAt(t, s.Radar)...)
	}
	return out
}

// FrameAt synthesizes the radar frame captured at time t, adding the room's
// diffuse-multipath speckle (random weak companion reflections near every
// return) when rng is non-nil.
func (s *Scene) FrameAt(t float64, rng *rand.Rand) *fmcw.Frame {
	f, _ := s.FrameAtCtx(nil, t, rng)
	return f
}

// FrameAtCtx is FrameAt with cooperative cancellation threaded into the
// synthesis fan-out; it returns (nil, ctx.Err()) once ctx is done. The rng
// consumption order is identical to FrameAt (speckle draws, then one noise
// base draw), so for a nil or never-canceled ctx the frame is bit-identical
// to the batch path.
func (s *Scene) FrameAtCtx(ctx context.Context, t float64, rng *rand.Rand) (*fmcw.Frame, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	returns := s.AppendReturnsAt(nil, t)
	if rng != nil && s.Room.Speckle > 0 {
		returns = s.appendSpeckle(returns, rng)
	}
	pl := s.synthPlan()
	if s.pool != nil {
		f := s.pool.Get(t)
		if err := pl.SynthesizeInto(ctx, f, returns, rng, 0); err != nil {
			s.pool.Put(f) // partially written: zero and recycle
			return nil, err
		}
		return f, nil
	}
	f := fmcw.NewFrame(s.Params, t)
	if err := pl.SynthesizeInto(ctx, f, returns, rng, 0); err != nil {
		return nil, err
	}
	return f, nil
}

// appendSpeckle appends one weak companion per return: a diffuse bounce
// arriving slightly later and from a slightly different direction, with
// random phase. Rich-scattering rooms (office) perturb peak locations this
// way; it affects humans and RF-Protect ghosts identically, which is why
// §11.1 sees larger errors for both in the office.
//
// Companions append to the input slice itself, iterating only the prefix
// that existed on entry — the same companions from the same rng draws, in
// the same order, as the historical two-slice implementation, but without a
// per-frame allocation when the slice has capacity.
func (s *Scene) appendSpeckle(returns []fmcw.Return, rng *rand.Rand) []fmcw.Return {
	lvl := s.Room.Speckle
	binDelay := 2 * s.Params.RangeResolution() / fmcw.C
	n0 := len(returns)
	for i := 0; i < n0; i++ {
		r := returns[i]
		if r.Amplitude < 1e-4 {
			continue
		}
		c := r
		c.Amplitude = r.Amplitude * lvl * (0.5 + 0.5*rng.Float64())
		c.Delay += (rng.Float64() - 0.5) * 2 * binDelay
		// Angular spread grows with scattering richness.
		c.AoA += rng.NormFloat64() * 0.12 * lvl
		c.Phase += rng.Float64() * 2 * 3.141592653589793
		returns = append(returns, c)
	}
	return returns
}

// CaptureBurst synthesizes a chirp burst for Doppler processing: nChirps
// consecutive chirps spaced pri seconds apart starting at t0.
func (s *Scene) CaptureBurst(t0 float64, nChirps int, pri float64, rng *rand.Rand) []*fmcw.Frame {
	out := make([]*fmcw.Frame, nChirps)
	for k := range out {
		out[k] = s.FrameAt(t0+float64(k)*pri, rng)
	}
	return out
}

// Capture synthesizes n consecutive frames starting at t0 at the params'
// frame rate. It is the batch wrapper over Stream: both paths synthesize
// the same frames in the same order from the same rng draws, so a drained
// stream is bit-identical to a capture.
func (s *Scene) Capture(t0 float64, n int, rng *rand.Rand) []*fmcw.Frame {
	out, _ := s.CaptureCtx(nil, t0, n, rng)
	return out
}

// CaptureCtx is Capture with cooperative cancellation: it returns the
// frames synthesized so far plus ctx.Err() once ctx is done. A nil ctx is
// exactly Capture.
func (s *Scene) CaptureCtx(ctx context.Context, t0 float64, n int, rng *rand.Rand) ([]*fmcw.Frame, error) {
	out := make([]*fmcw.Frame, 0, n)
	st := s.Stream(t0, n, rng)
	for {
		f, err := st.Next(ctx)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, f)
	}
}

// FrameStream emits a capture one frame at a time: the scene-side Source of
// the streaming pipeline (internal/pipeline). It holds no frame history, so
// a stream of any length runs in O(1) frame memory; with UsePool it also
// runs in O(1) frame *allocations*, synthesizing every frame into recycled
// pool storage.
type FrameStream struct {
	scene   *Scene
	t0      float64
	dt      float64
	n       int
	i       int
	rng     *rand.Rand
	pool    *fmcw.FramePool
	plan    *fmcw.SynthPlan
	workers int
	rets    []fmcw.Return // per-frame returns scratch, reused across Next calls
}

// Stream returns a FrameStream over the same n frames Capture(t0, n, rng)
// would synthesize: frame i is captured at t0 + i/FrameRate, and rng is
// consumed in frame order, so draining the stream consumes rng exactly as
// the batch capture does. n < 0 means an unbounded stream (frames forever,
// until the consumer stops). A scene configured with UseFramePool passes
// its pool to the stream; FrameStream.UsePool overrides it per stream.
func (s *Scene) Stream(t0 float64, n int, rng *rand.Rand) *FrameStream {
	return &FrameStream{scene: s, t0: t0, dt: 1 / s.Params.FrameRate, n: n, rng: rng, pool: s.pool, plan: s.synthPlan()}
}

// UsePool makes the stream synthesize every frame into storage from the
// given pool (which must be configured with the scene's Params) instead of
// allocating a fresh frame per Next. Emitted frames are bit-identical to
// the unpooled stream's; ownership of each frame passes to the caller, who
// recycles it with pool.Put once done — the streaming pipeline does this
// automatically when wired with pipeline.UsePools. It returns st for
// chaining.
func (st *FrameStream) UsePool(pool *fmcw.FramePool) *FrameStream {
	st.pool = pool
	return st
}

// UseSynthPlan makes the stream synthesize through the given pre-compiled
// plan (which must match the scene's Params) instead of the one the scene
// resolved at Stream time. Frames are bit-identical for any plan of the
// right shape. It returns st for chaining.
func (st *FrameStream) UseSynthPlan(pl *fmcw.SynthPlan) *FrameStream {
	st.plan = pl
	return st
}

// UseWorkers bounds the synthesis fan-out width per frame (<= 0, the
// default, means one worker per available CPU). Frames are bit-identical
// for any value; 1 keeps synthesis inline and allocation-free in the pooled
// steady state. It returns st for chaining.
func (st *FrameStream) UseWorkers(workers int) *FrameStream {
	st.workers = workers
	return st
}

// Next synthesizes and returns the next frame. It returns io.EOF once the
// stream is exhausted, or ctx.Err() once ctx is done (a nil ctx never
// cancels).
func (st *FrameStream) Next(ctx context.Context) (*fmcw.Frame, error) {
	if st.n >= 0 && st.i >= st.n {
		return nil, io.EOF
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	sc := st.scene
	t := st.t0 + float64(st.i)*st.dt
	st.rets = sc.AppendReturnsAt(st.rets[:0], t)
	if st.rng != nil && sc.Room.Speckle > 0 {
		st.rets = sc.appendSpeckle(st.rets, st.rng)
	}
	var f *fmcw.Frame
	if st.pool != nil {
		f = st.pool.Get(t)
	} else {
		f = fmcw.NewFrame(sc.Params, t)
	}
	if err := st.plan.SynthesizeInto(ctx, f, st.rets, st.rng, st.workers); err != nil {
		if st.pool != nil {
			st.pool.Put(f) // partially written: zero and recycle
		}
		return nil, err
	}
	st.i++
	return f, nil
}
