package scene

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rfprotect/internal/fmcw"
	"rfprotect/internal/geom"
)

func TestRooms(t *testing.T) {
	office := OfficeRoom()
	if office.Width != 10.0 || office.Height != 6.6 {
		t.Fatalf("office dims %vx%v", office.Width, office.Height)
	}
	if len(office.Cabinets) == 0 {
		t.Fatal("office should have cabinet multipath sources")
	}
	home := HomeRoom()
	if home.Width != 15.24 || home.Height != 7.62 {
		t.Fatalf("home dims %vx%v", home.Width, home.Height)
	}
	if len(home.Cabinets) != 0 {
		t.Fatal("home should have no cabinets")
	}
	if home.WallReflectivity >= office.WallReflectivity {
		t.Fatal("office must be the harsher multipath environment")
	}
	if len(office.Mirrors()) != 4+len(office.Cabinets) {
		t.Fatal("mirrors = walls + cabinets")
	}
}

func TestRoomContainsClamp(t *testing.T) {
	r := HomeRoom()
	if !r.Contains(geom.Point{X: 1, Y: 1}) {
		t.Fatal("interior point")
	}
	if r.Contains(geom.Point{X: -1, Y: 1}) {
		t.Fatal("exterior point")
	}
	c := r.Clamp(geom.Point{X: -5, Y: 100}, 0.5)
	if c.X != 0.5 || c.Y != r.Height-0.5 {
		t.Fatalf("Clamp = %v", c)
	}
}

func TestMirrorReflect(t *testing.T) {
	m := Mirror{Point: geom.Point{X: 0, Y: 2}, Normal: geom.Point{X: 0, Y: 1}}
	got := m.Reflect(geom.Point{X: 3, Y: 5})
	if got.Dist(geom.Point{X: 3, Y: -1}) > 1e-12 {
		t.Fatalf("Reflect = %v", got)
	}
}

func TestMirrorReflectInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := rng.Float64() * 2 * math.Pi
		m := Mirror{
			Point:  geom.Point{X: rng.NormFloat64() * 3, Y: rng.NormFloat64() * 3},
			Normal: geom.Point{X: math.Cos(a), Y: math.Sin(a)},
		}
		p := geom.Point{X: rng.NormFloat64() * 5, Y: rng.NormFloat64() * 5}
		return m.Reflect(m.Reflect(p)).Dist(p) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBreathingDisplacement(t *testing.T) {
	b := Breathing{Rate: 0.25, Amplitude: 0.005}
	if b.Displacement(0) != 0 {
		t.Fatal("phase 0 at t=0")
	}
	if got := b.Displacement(1); math.Abs(got-0.005) > 1e-12 {
		t.Fatalf("quarter period displacement %v", got)
	}
	if (Breathing{}).Displacement(1) != 0 {
		t.Fatal("zero breathing should be zero")
	}
}

func TestHumanPositionInterpolation(t *testing.T) {
	h := NewHuman(geom.Trajectory{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}}, 2) // 2 samples/s
	if h.PositionAt(-1) != (geom.Point{X: 0, Y: 0}) {
		t.Fatal("before start")
	}
	if p := h.PositionAt(0.25); p.Dist(geom.Point{X: 0.5, Y: 0}) > 1e-12 {
		t.Fatalf("t=0.25: %v", p)
	}
	if p := h.PositionAt(10); p != (geom.Point{X: 1, Y: 1}) {
		t.Fatalf("after end: %v", p)
	}
	if !h.Active(0.5) || h.Active(1.5) {
		t.Fatal("Active window wrong")
	}
	empty := &Human{}
	if empty.PositionAt(0) != (geom.Point{}) || empty.Active(0) {
		t.Fatal("empty human")
	}
}

func TestHumanStartOffset(t *testing.T) {
	h := NewHuman(geom.Trajectory{{X: 0, Y: 0}, {X: 2, Y: 0}}, 1)
	h.Start = 5
	if p := h.PositionAt(5.5); p.Dist(geom.Point{X: 1, Y: 0}) > 1e-12 {
		t.Fatalf("offset start: %v", p)
	}
}

func TestFanOrbit(t *testing.T) {
	f := Fan{Center: geom.Point{X: 2, Y: 2}, Radius: 0.3, RotationRate: 1}
	p0 := f.PositionAt(0)
	pHalf := f.PositionAt(0.5)
	if p0.Dist(geom.Point{X: 2.3, Y: 2}) > 1e-12 {
		t.Fatalf("t=0: %v", p0)
	}
	if pHalf.Dist(geom.Point{X: 1.7, Y: 2}) > 1e-9 {
		t.Fatalf("t=0.5: %v", pHalf)
	}
	// Orbit radius is constant.
	for i := 0; i < 10; i++ {
		if math.Abs(f.PositionAt(float64(i)*0.137).Dist(f.Center)-0.3) > 1e-9 {
			t.Fatal("fan left its orbit")
		}
	}
}

func TestSceneReturnsComposition(t *testing.T) {
	s := NewScene(HomeRoom(), fmcw.DefaultParams())
	s.Multipath = false
	s.Humans = []*Human{NewHuman(geom.Trajectory{{X: 5, Y: 3}, {X: 5, Y: 4}}, 1)}
	s.Clutter = []Clutter{{Pos: geom.Point{X: 2, Y: 2}, Amplitude: 0.5}}
	s.Fans = []Fan{{Center: geom.Point{X: 10, Y: 5}, Radius: 0.2, RotationRate: 2, Amplitude: 0.3}}
	rets := s.ReturnsAt(0)
	if len(rets) != 3 {
		t.Fatalf("got %d returns, want 3", len(rets))
	}
	s.Multipath = true
	rets = s.ReturnsAt(0)
	// Human and fan each gain 4 wall images; clutter does not.
	if len(rets) <= 3 {
		t.Fatalf("multipath should add image returns, got %d", len(rets))
	}
}

func TestSceneAmplitudeFalloff(t *testing.T) {
	s := NewScene(HomeRoom(), fmcw.DefaultParams())
	s.Multipath = false
	near := NewHuman(geom.Trajectory{{X: s.Radar.Position.X, Y: 2}}, 1)
	far := NewHuman(geom.Trajectory{{X: s.Radar.Position.X, Y: 4}}, 1)
	s.Humans = []*Human{near, far}
	rets := s.ReturnsAt(0)
	// Amplitude ratio must follow (d_far/d_near)^2 = 4.
	ratio := rets[0].Amplitude / rets[1].Amplitude
	if math.Abs(ratio-4) > 1e-9 {
		t.Fatalf("falloff ratio %v, want 4", ratio)
	}
}

func TestSceneBreathingPhase(t *testing.T) {
	s := NewScene(HomeRoom(), fmcw.DefaultParams())
	s.Multipath = false
	h := NewHuman(geom.Trajectory{{X: 5, Y: 3}}, 1)
	h.Breathing = Breathing{Rate: 0.25, Amplitude: 0.005}
	s.Humans = []*Human{h}
	// At t=1s (quarter period) displacement is +5mm; phase = 4π·δ/λ.
	rets := s.ReturnsAt(1)
	want := 4 * math.Pi * 0.005 / s.Params.Wavelength()
	if math.Abs(rets[0].Phase-want) > 1e-9 {
		t.Fatalf("breathing phase %v, want %v", rets[0].Phase, want)
	}
}

type fixedSource struct{ rets []fmcw.Return }

func (f fixedSource) ReturnsAt(t float64, radar fmcw.Array) []fmcw.Return { return f.rets }

func TestSceneExternalSource(t *testing.T) {
	s := NewScene(HomeRoom(), fmcw.DefaultParams())
	s.Sources = []ReturnSource{fixedSource{rets: []fmcw.Return{{Delay: 1e-8, Amplitude: 1}}}}
	rets := s.ReturnsAt(0)
	if len(rets) != 1 || rets[0].Delay != 1e-8 {
		t.Fatalf("external source returns not included: %v", rets)
	}
}

func TestCaptureTiming(t *testing.T) {
	s := NewScene(HomeRoom(), fmcw.DefaultParams())
	frames := s.Capture(1.0, 3, rand.New(rand.NewSource(1)))
	if len(frames) != 3 {
		t.Fatalf("frames = %d", len(frames))
	}
	dt := 1 / s.Params.FrameRate
	for i, f := range frames {
		want := 1.0 + float64(i)*dt
		if math.Abs(f.Time-want) > 1e-12 {
			t.Fatalf("frame %d time %v want %v", i, f.Time, want)
		}
	}
}

// TestUseFramePoolBitIdentical checks the scene-level pool routing: FrameAt
// and CaptureBurst through UseFramePool must synthesize bit-identical frames
// to the allocating paths (same rng draw order), and recycled storage must
// not leak one frame's samples into the next.
func TestUseFramePoolBitIdentical(t *testing.T) {
	build := func() *Scene {
		s := NewScene(OfficeRoom(), fmcw.DefaultParams())
		s.Humans = []*Human{NewHuman(geom.Trajectory{{X: 5, Y: 3}, {X: 6, Y: 4}}, 1)}
		return s
	}
	plain := build()
	pooled := build().UseFramePool(fmcw.NewFramePool(plain.Params))

	want := plain.FrameAt(0.5, rand.New(rand.NewSource(7)))
	got := pooled.FrameAt(0.5, rand.New(rand.NewSource(7)))
	if len(got.Data) != len(want.Data) {
		t.Fatalf("antenna count %d vs %d", len(got.Data), len(want.Data))
	}
	for k := range want.Data {
		for i, w := range want.Data[k] {
			g := got.Data[k][i]
			if math.Float64bits(real(g)) != math.Float64bits(real(w)) ||
				math.Float64bits(imag(g)) != math.Float64bits(imag(w)) {
				t.Fatalf("antenna %d sample %d: %v vs %v", k, i, g, w)
			}
		}
	}
	// Recycle and capture a different instant: the reused storage must hold
	// exactly the fresh path's samples.
	pooled.pool.Put(got)
	want2 := plain.FrameAt(0.9, rand.New(rand.NewSource(9)))
	got2 := pooled.FrameAt(0.9, rand.New(rand.NewSource(9)))
	for k := range want2.Data {
		for i, w := range want2.Data[k] {
			if got2.Data[k][i] != w {
				t.Fatalf("recycled frame differs at antenna %d sample %d", k, i)
			}
		}
	}
	// Burst path routes through the same pool.
	wb := plain.CaptureBurst(0, 3, 1e-3, rand.New(rand.NewSource(3)))
	gb := pooled.CaptureBurst(0, 3, 1e-3, rand.New(rand.NewSource(3)))
	for j := range wb {
		for k := range wb[j].Data {
			for i, w := range wb[j].Data[k] {
				if gb[j].Data[k][i] != w {
					t.Fatalf("burst chirp %d antenna %d sample %d differs", j, k, i)
				}
			}
		}
	}
	// Streams inherit the scene pool.
	if st := pooled.Stream(0, 1, nil); st.pool == nil {
		t.Fatal("Stream did not inherit the scene pool")
	}
}
